// Benchmarks regenerating every experiment table (E1–E12, one per
// quantitative claim of the paper — see DESIGN.md's per-experiment index)
// plus end-to-end solver benchmarks. Run:
//
//	go test -bench=. -benchmem
package treesched_test

import (
	"context"
	"math/rand"
	"testing"

	"treesched"
	"treesched/internal/bench"
)

// benchTable runs one experiment per iteration with a small deterministic
// config; the table content itself is validated by the harness (panics on
// infeasible solutions or broken certificates).
func benchTable(b *testing.B, f func(bench.Config) *bench.Table) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := f(bench.Config{Seed: 1, Quick: true, Trials: 1})
		if len(t.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkE1TreeUnit(b *testing.B)     { benchTable(b, bench.E1TreeUnitRatios) }
func BenchmarkE2Rounds(b *testing.B)       { benchTable(b, bench.E2Rounds) }
func BenchmarkE3Narrow(b *testing.B)       { benchTable(b, bench.E3Narrow) }
func BenchmarkE4Arbitrary(b *testing.B)    { benchTable(b, bench.E4Arbitrary) }
func BenchmarkE5LineUnit(b *testing.B)     { benchTable(b, bench.E5LineUnit) }
func BenchmarkE6LineArb(b *testing.B)      { benchTable(b, bench.E6LineArbitrary) }
func BenchmarkE7Decomp(b *testing.B)       { benchTable(b, bench.E7Decomp) }
func BenchmarkE8Steps(b *testing.B)        { benchTable(b, bench.E8Steps) }
func BenchmarkE9Sequential(b *testing.B)   { benchTable(b, bench.E9Sequential) }
func BenchmarkE10Capacitated(b *testing.B) { benchTable(b, bench.E10Capacitated) }
func BenchmarkE11Ablation(b *testing.B)    { benchTable(b, bench.E11DecompAblation) }
func BenchmarkE12Stages(b *testing.B)      { benchTable(b, bench.E12StageAblation) }

// End-to-end solver benchmarks on a fixed mid-size workload.

func treeWorkload(seed int64, n, demands int, unit bool) *treesched.Problem {
	rng := rand.New(rand.NewSource(seed))
	cfg := treesched.TreeWorkload{N: n, Trees: 3, Demands: demands, Unit: unit}
	if !unit {
		cfg.HMin, cfg.HMax = 0.1, 1.0
	}
	return treesched.GenerateTreeProblem(cfg, rng)
}

func BenchmarkSolveTreeUnit(b *testing.B) {
	p := treeWorkload(1, 128, 64, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := treesched.SolveTreeUnit(p, treesched.Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveArbitrary(b *testing.B) {
	p := treeWorkload(2, 96, 48, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := treesched.SolveArbitrary(p, treesched.Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveLineUnit(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := treesched.GenerateLineProblem(treesched.LineWorkload{
		Slots: 128, Resources: 3, Demands: 64, Unit: true, MaxProc: 16,
	}, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := treesched.SolveLineUnit(p, treesched.Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveDistributedUnit(b *testing.B) {
	p := treeWorkload(4, 64, 32, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := treesched.SolveDistributedUnit(p, treesched.Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveSequential(b *testing.B) {
	p := treeWorkload(5, 128, 64, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := treesched.SolveSequential(p, treesched.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveGreedy(b *testing.B) {
	p := treeWorkload(6, 128, 64, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := treesched.SolveGreedy(p); err != nil {
			b.Fatal(err)
		}
	}
}

// Compile-once benchmarks: the same problem solved many times through a
// CompiledProblem vs recompiling per solve (the pre-service behavior).

func BenchmarkCompiledSolveMany(b *testing.B) {
	p := treeWorkload(7, 128, 64, true)
	c, err := treesched.CompileProblem(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.TreeUnit(treesched.Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileProblem(b *testing.B) {
	p := treeWorkload(7, 128, 64, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := treesched.CompileProblem(p); err != nil {
			b.Fatal(err)
		}
	}
}

// Service benchmarks: one engine, three cache regimes.
//
//   - Cold: every request is a new problem (compiled miss + result miss).
//   - CompiledWarm: same problem, fresh solver seed per request
//     (compiled hit + result miss) — measures the compiled-instance
//     cache speedup.
//   - ResultWarm: identical request (result hit) — measures full
//     memoization.

func serviceBenchRequest(scenarioSeed int64, solverSeed uint64) *treesched.SolveRequest {
	return &treesched.SolveRequest{
		Algo:         "tree-unit",
		Scenario:     "caterpillar-backbone",
		ScenarioSeed: scenarioSeed,
		Seed:         solverSeed,
	}
}

func BenchmarkServiceSolveCold(b *testing.B) {
	e := treesched.NewEngine(treesched.EngineConfig{})
	defer e.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Solve(ctx, serviceBenchRequest(int64(i)+1, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServiceSolveCompiledWarm(b *testing.B) {
	e := treesched.NewEngine(treesched.EngineConfig{})
	defer e.Close()
	ctx := context.Background()
	if _, err := e.Solve(ctx, serviceBenchRequest(1, 0)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Solve(ctx, serviceBenchRequest(1, uint64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServiceSolveResultWarm(b *testing.B) {
	e := treesched.NewEngine(treesched.EngineConfig{})
	defer e.Close()
	ctx := context.Background()
	if _, err := e.Solve(ctx, serviceBenchRequest(1, 1)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Solve(ctx, serviceBenchRequest(1, 1)); err != nil {
			b.Fatal(err)
		}
	}
}
