package online

import (
	"encoding/json"
	"math"
	"math/rand"
	"sync"
	"testing"

	"treesched/internal/gen"
	"treesched/internal/instance"
)

func lineNetwork() *instance.Problem {
	return &instance.Problem{Kind: instance.KindLine, NumSlots: 24, NumResources: 2}
}

func lineJobs(n int, seed int64) []Job {
	rng := rand.New(rand.NewSource(seed))
	p := gen.LineProblem(gen.LineConfig{Slots: 24, Resources: 2, Demands: n, Unit: true, AccessProb: 0.6}, rng)
	jobs := make([]Job, n)
	for i, d := range p.Demands {
		jobs[i] = Job{ID: int64(100 + i), Demand: d}
	}
	return jobs
}

func TestSessionLifecycle(t *testing.T) {
	s, err := NewSession(lineNetwork(), Config{Algo: "line-unit", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	jobs := lineJobs(12, 5)
	for i := range jobs[:8] {
		if _, err := s.Apply(Event{Op: OpAdd, Job: &jobs[i]}); err != nil {
			t.Fatal(err)
		}
	}
	sched, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sched.Jobs != 8 || sched.Incremental {
		t.Fatalf("first resolve: jobs=%d incremental=%t", sched.Jobs, sched.Incremental)
	}
	if len(sched.JobIDs) != len(sched.Result.Selected) {
		t.Fatalf("JobIDs len %d vs %d selected", len(sched.JobIDs), len(sched.Result.Selected))
	}
	for k, d := range sched.Result.Selected {
		if want := jobs[d.Demand].ID; sched.JobIDs[k] != want {
			t.Fatalf("selected %d maps to job %d, want %d", k, sched.JobIDs[k], want)
		}
	}

	// Small churn: remove one, add one → delta path.
	if _, err := s.Apply(Event{Op: OpRemove, ID: jobs[2].ID}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(Event{Op: OpAdd, Job: &jobs[8]}); err != nil {
		t.Fatal(err)
	}
	sched2, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !sched2.Incremental {
		t.Fatal("small-churn resolve did not take the delta path")
	}
	if sched2.Jobs != 8 {
		t.Fatalf("jobs=%d after swap, want 8", sched2.Jobs)
	}

	// Unchanged set → cached.
	sched3, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sched3 != sched2 {
		t.Fatal("unchanged resolve did not serve the cached schedule")
	}
	st := s.Stats()
	if st.Resolves != 3 || st.CachedResolves != 1 || st.IncrementalResolves != 1 || st.FullResolves != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSessionMatchesFromScratch replays a random event stream and checks
// every resolve against an independent session fed the same final state
// cold — the session-level face of the WithJobs equivalence suite.
func TestSessionMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	jobs := lineJobs(30, 7)
	s, err := NewSession(lineNetwork(), Config{Algo: "line-unit", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	live := map[int64]Job{}
	next := 0
	for round := 0; round < 6; round++ {
		for k := 1 + rng.Intn(4); k > 0 && next < len(jobs); k-- {
			j := jobs[next]
			next++
			if _, err := s.Apply(Event{Op: OpAdd, Job: &j}); err != nil {
				t.Fatal(err)
			}
			live[j.ID] = j
		}
		for id := range live {
			if rng.Intn(6) == 0 {
				if _, err := s.Apply(Event{Op: OpRemove, ID: id}); err != nil {
					t.Fatal(err)
				}
				delete(live, id)
			}
		}
		got, err := s.Resolve()
		if err != nil {
			t.Fatal(err)
		}

		// Fresh session, same live set added in the same relative order.
		ref, err := NewSession(lineNetwork(), Config{Algo: "line-unit", Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range liveOrder(s) {
			j := live[id]
			if _, err := ref.Apply(Event{Op: OpAdd, Job: &j}); err != nil {
				t.Fatal(err)
			}
		}
		want, err := ref.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		g, _ := json.Marshal(got.Result.Selected)
		w, _ := json.Marshal(want.Result.Selected)
		if string(g) != string(w) || got.Result.Profit != want.Result.Profit {
			t.Fatalf("round %d diverged:\n got %s (profit %g)\nwant %s (profit %g)",
				round, g, got.Result.Profit, w, want.Result.Profit)
		}
	}
}

// liveOrder exposes the committed order for the reference replay.
func liveOrder(s *Session) []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.order...)
}

// TestSessionConcurrentEvents hammers one session from many goroutines;
// the mutex must serialize them so every add lands exactly once and the
// final resolve sees the full set. Run under -race in CI.
func TestSessionConcurrentEvents(t *testing.T) {
	s, err := NewSession(lineNetwork(), Config{Algo: "line-unit"})
	if err != nil {
		t.Fatal(err)
	}
	jobs := lineJobs(40, 11)
	var wg sync.WaitGroup
	errs := make(chan error, len(jobs)+8)
	for i := range jobs {
		wg.Add(1)
		go func(j Job) {
			defer wg.Done()
			if _, err := s.Apply(Event{Op: OpAdd, Job: &j}); err != nil {
				errs <- err
			}
		}(jobs[i])
	}
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Resolve(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	sched, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sched.Jobs != len(jobs) {
		t.Fatalf("resolved %d jobs, want %d", sched.Jobs, len(jobs))
	}
	if st := s.Stats(); st.Events != int64(len(jobs)) {
		t.Fatalf("events = %d, want %d", st.Events, len(jobs))
	}
}

func TestSessionEventValidation(t *testing.T) {
	s, err := NewSession(lineNetwork(), Config{Algo: "line-unit"})
	if err != nil {
		t.Fatal(err)
	}
	j := lineJobs(1, 3)[0]
	if _, err := s.Apply(Event{Op: OpAdd, Job: &j}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(Event{Op: OpAdd, Job: &j}); err == nil {
		t.Fatal("duplicate add did not error")
	}
	if _, err := s.Apply(Event{Op: OpRemove, ID: 999}); err == nil {
		t.Fatal("remove of unknown job did not error")
	}
	if _, err := s.Apply(Event{Op: "noop"}); err == nil {
		t.Fatal("unknown op did not error")
	}
	// Add-then-remove between resolves never reaches the compiler.
	if _, err := s.Apply(Event{Op: OpRemove, ID: j.ID}); err != nil {
		t.Fatal(err)
	}
	sched, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sched.Jobs != 0 {
		t.Fatalf("jobs = %d, want 0", sched.Jobs)
	}

	if _, err := NewSession(lineNetwork(), Config{Algo: "nope"}); err == nil {
		t.Fatal("unknown algorithm did not error")
	}
	if _, err := NewSession(lineNetwork(), Config{Algo: "line-unit", Epsilon: 1.5}); err == nil {
		t.Fatal("bad epsilon did not error")
	}
	if _, err := NewSession(lineNetwork(), Config{Algo: "line-unit", ChurnThreshold: -1}); err == nil {
		t.Fatal("negative churn threshold did not error")
	}
	if _, err := NewSession(lineNetwork(), Config{Algo: "line-unit", ChurnThreshold: math.NaN()}); err == nil {
		t.Fatal("NaN churn threshold did not error")
	}
}

// TestSessionFailedResolveKeepsState: a resolve whose solve fails (algo
// precondition) must leave the staged delta intact so a later resolve
// can succeed — and must not corrupt the job set.
func TestSessionFailedResolveKeepsState(t *testing.T) {
	// tree-unit on a session fed a fractional-height job fails its
	// unit-height precondition.
	rng := rand.New(rand.NewSource(2))
	p := gen.TreeProblem(gen.TreeConfig{N: 12, Trees: 1, Demands: 4, Unit: true}, rng)
	net := *p
	net.Demands = nil
	s, err := NewSession(&net, Config{Algo: "tree-unit"})
	if err != nil {
		t.Fatal(err)
	}
	frac := p.Demands[0]
	frac.Height = 0.4
	if _, err := s.Apply(Event{Op: OpAdd, Job: &Job{ID: 1, Demand: frac}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resolve(); err == nil {
		t.Fatal("tree-unit on fractional heights should fail")
	}
	if _, err := s.Apply(Event{Op: OpRemove, ID: 1}); err != nil {
		t.Fatalf("session corrupted after failed resolve: %v", err)
	}
	if _, err := s.Apply(Event{Op: OpAdd, Job: &Job{ID: 2, Demand: p.Demands[1]}}); err != nil {
		t.Fatal(err)
	}
	sched, err := s.Resolve()
	if err != nil {
		t.Fatalf("recovery resolve: %v", err)
	}
	if sched.Jobs != 1 {
		t.Fatalf("jobs = %d, want 1", sched.Jobs)
	}
}

func TestAlgorithmsListsCore(t *testing.T) {
	for _, want := range []string{"tree-unit", "line-unit", "arbitrary", "dist-unit"} {
		found := false
		for _, a := range Algorithms() {
			if a == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Algorithms() missing %s: %v", want, Algorithms())
		}
	}
}
