// Package trace records and replays dynamic-session workloads: a trace
// is a network header plus an ordered stream of arrival/departure/resolve
// events, generated deterministically from the scenario presets (and so
// from internal/gen configs) and serialized as NDJSON — one header line,
// one line per event. Equal (config, seed) pairs produce identical
// traces, and replaying a trace is deterministic end to end, so traces
// double as regression fixtures for the online subsystem and as the
// input format of `schedtool replay` and `schedbench -online`.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"treesched/internal/instance"
	"treesched/internal/online"
	"treesched/internal/scenario"
)

// Header is the first NDJSON line: everything needed to open the session
// the events replay into.
type Header struct {
	// Name labels the trace (scenario name for generated traces).
	Name string `json:"name,omitempty"`
	// Algo is the algorithm every resolve runs (see online.Algorithms).
	Algo string `json:"algo"`
	// Seed and Epsilon configure the solver (not the generator). Seed is
	// int64 like every seed the generators and Config take: a negative
	// seed must survive the NDJSON round trip as written, not wrap
	// through uint64 into an 18-million-trillion literal that a re-read
	// Config no longer matches. The one unsigned consumer —
	// online.Config's Luby-priority seed — converts at that boundary
	// (see Replay), not here.
	Seed    int64   `json:"seed,omitempty"`
	Epsilon float64 `json:"epsilon,omitempty"`
	// Network is the fixed network the session runs against; its demand
	// list must be empty (jobs arrive as events).
	Network *instance.Problem `json:"network"`
}

// Trace is one recorded workload.
type Trace struct {
	Header Header
	Events []online.Event
}

// Config parameterizes deterministic trace generation from a scenario
// preset. The preset's generator (an internal/gen config) supplies both
// the network and the job pool.
type Config struct {
	// Scenario names the preset (see internal/scenario).
	Scenario string
	// Params overrides the preset sizing (zero fields keep defaults).
	Params scenario.Params
	// Seed drives workload generation and churn choices.
	Seed int64
	// Algo overrides the preset's default algorithm.
	Algo string
	// InitialFrac is the fraction of the pool live at the first resolve
	// (default 0.5).
	InitialFrac float64
	// Churn is the fraction of live jobs swapped per batch (0 = default
	// 0.1; each batch swaps at least one job, so zero-churn traces are
	// unrepresentable and negative values error).
	Churn float64
	// Batches is the number of churn-and-resolve batches after the
	// initial resolve (default 20).
	Batches int
}

// FromScenario generates a trace from a preset: the preset's generated
// demands become the job pool, a fraction goes live up front, and each
// batch departs and admits Churn·live jobs before resolving.
func FromScenario(cfg Config) (*Trace, error) {
	s, ok := scenario.Get(cfg.Scenario)
	if !ok {
		return nil, fmt.Errorf("trace: unknown scenario %q", cfg.Scenario)
	}
	p, err := s.Generate(cfg.Params, cfg.Seed)
	if err != nil {
		return nil, err
	}
	algo := cfg.Algo
	if algo == "" {
		algo = s.DefaultAlgo
	}
	churn := cfg.Churn
	if churn == 0 {
		churn = 0.1
	}
	initial := cfg.InitialFrac
	if initial == 0 {
		initial = 0.5
	}
	batches := cfg.Batches
	if batches == 0 {
		batches = 20
	}
	return FromPool(cfg.Scenario, p, algo, cfg.Seed, initial, churn, batches)
}

// FromPool generates a trace from any generated problem (e.g. a raw
// internal/gen config's output): p's networks become the session
// network, p's demands the job pool. Deterministic in (p, seed). Unlike
// FromScenario, parameters are taken at face value — out-of-range values
// error instead of silently becoming defaults (a zero-churn control
// trace is unrepresentable: every batch swaps at least one job).
func FromPool(name string, p *instance.Problem, algo string, seed int64, initialFrac, churn float64, batches int) (*Trace, error) {
	if len(p.Demands) == 0 {
		return nil, fmt.Errorf("trace: pool problem has no demands")
	}
	if !(initialFrac > 0 && initialFrac <= 1) {
		return nil, fmt.Errorf("trace: initial fraction %g outside (0,1]", initialFrac)
	}
	if !(churn > 0 && churn <= 1) {
		return nil, fmt.Errorf("trace: churn %g outside (0,1] (each batch swaps at least one job; zero churn is unrepresentable)", churn)
	}
	if batches <= 0 {
		return nil, fmt.Errorf("trace: batches %d must be positive", batches)
	}
	network := *p
	network.Demands = nil
	tr := &Trace{Header: Header{Name: name, Algo: algo, Seed: seed, Network: &network}}

	rng := rand.New(rand.NewSource(seed))
	// queue holds the payloads not currently live: the tail of the pool
	// first, then recycled departures — so arrivals never run dry.
	var queue []instance.Demand
	nextID := int64(1)
	var live []int64
	payload := map[int64]instance.Demand{}

	admit := func() {
		// Arrivals can run dry under extreme churn (removals stop at one
		// live job while admissions ask for k); they resume as later
		// departures refill the queue.
		if len(queue) == 0 {
			return
		}
		d := queue[0]
		queue = queue[1:]
		id := nextID
		nextID++
		payload[id] = d
		live = append(live, id)
		tr.Events = append(tr.Events, online.Event{Op: online.OpAdd, Job: &online.Job{ID: id, Demand: d}})
	}

	initial := int(float64(len(p.Demands))*initialFrac + 0.5)
	if initial < 1 {
		initial = 1
	}
	queue = append(queue, p.Demands...)
	for i := 0; i < initial; i++ {
		admit()
	}
	tr.Events = append(tr.Events, online.Event{Op: online.OpResolve})

	for b := 0; b < batches; b++ {
		k := int(float64(len(live))*churn + 0.5)
		if k < 1 {
			k = 1
		}
		for i := 0; i < k && len(live) > 1; i++ {
			at := rng.Intn(len(live))
			id := live[at]
			live = append(live[:at], live[at+1:]...)
			queue = append(queue, payload[id])
			delete(payload, id)
			tr.Events = append(tr.Events, online.Event{Op: online.OpRemove, ID: id})
		}
		for i := 0; i < k; i++ {
			admit()
		}
		tr.Events = append(tr.Events, online.Event{Op: online.OpResolve})
	}
	return tr, nil
}

// Write serializes a trace as NDJSON: the header line, then one line per
// event. The encoding is deterministic, so Write∘Read∘Write is the
// identity on bytes.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(tr.Header); err != nil {
		return err
	}
	for i := range tr.Events {
		if err := enc.Encode(&tr.Events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a Write-format NDJSON stream.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 32<<20)
	tr := &Trace{}
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty stream")
	}
	if err := json.Unmarshal(sc.Bytes(), &tr.Header); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if tr.Header.Network == nil {
		return nil, fmt.Errorf("trace: header has no network")
	}
	if len(tr.Header.Network.Demands) != 0 {
		return nil, fmt.Errorf("trace: header network carries %d demands; jobs must arrive as events", len(tr.Header.Network.Demands))
	}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev online.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		tr.Events = append(tr.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Outcome is the deterministic per-event replay record. LatencyNS is
// measured wall time and deliberately excluded from the JSON form:
// replaying the same trace twice must yield identical NDJSON.
type Outcome struct {
	Seq     int    `json:"seq"`
	Op      string `json:"op"`
	Version uint64 `json:"version"`
	Jobs    int    `json:"jobs"`
	// Resolve events only.
	Scheduled   int     `json:"scheduled,omitempty"`
	Profit      float64 `json:"profit,omitempty"`
	Incremental bool    `json:"incremental,omitempty"`

	LatencyNS int64 `json:"-"`
}

// Replay drives a trace through a fresh session and returns the
// per-event outcomes plus the session (for inspection). The outcome
// stream — everything but the latencies — is deterministic.
func Replay(tr *Trace) ([]Outcome, *online.Session, error) {
	s, err := online.NewSession(tr.Header.Network, online.Config{
		Algo:    tr.Header.Algo,
		Epsilon: tr.Header.Epsilon,
		// The Luby-priority seed is unsigned; this cast is the single
		// signed→unsigned boundary, deterministic in the header value.
		Seed: uint64(tr.Header.Seed),
	})
	if err != nil {
		return nil, nil, err
	}
	outcomes := make([]Outcome, 0, len(tr.Events))
	for i, ev := range tr.Events {
		begin := time.Now() //schedlint:statsonly per-event latency for Outcome.LatencyNS reporting only
		sched, err := s.Apply(ev)
		lat := time.Since(begin).Nanoseconds() //schedlint:statsonly Outcome.LatencyNS is reporting-only; schedules ignore it
		if err != nil {
			return nil, nil, fmt.Errorf("trace: event %d (%s): %w", i, ev.Op, err)
		}
		st := s.Stats()
		o := Outcome{Seq: i, Op: ev.Op, Version: st.Version, Jobs: st.Jobs, LatencyNS: lat}
		if sched != nil {
			o.Scheduled = len(sched.Result.Selected)
			o.Profit = sched.Result.Profit
			o.Incremental = sched.Incremental
		}
		outcomes = append(outcomes, o)
	}
	return outcomes, s, nil
}
