package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestFromScenarioDeterministic(t *testing.T) {
	cfg := Config{Scenario: "videowall-line", Seed: 4, Batches: 6}
	a, err := FromScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wa, wb bytes.Buffer
	if err := Write(&wa, a); err != nil {
		t.Fatal(err)
	}
	if err := Write(&wb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wa.Bytes(), wb.Bytes()) {
		t.Fatal("equal configs produced different traces")
	}
	if a.Header.Algo != "line-unit" {
		t.Fatalf("default algo = %q", a.Header.Algo)
	}
	resolves := 0
	for _, ev := range a.Events {
		if ev.Op == "resolve" {
			resolves++
		}
	}
	if resolves != 7 { // initial + 6 batches
		t.Fatalf("resolves = %d, want 7", resolves)
	}
}

func TestRoundTrip(t *testing.T) {
	tr, err := FromScenario(Config{Scenario: "caterpillar-backbone", Seed: 2, Batches: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := Write(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("Write∘Read∘Write is not the identity")
	}
}

// TestNegativeSeedRoundTrip: Header.Seed is int64 like Config.Seed; a
// negative generation seed must come back from NDJSON exactly as
// written (it used to be stored as uint64, so -7 serialized as
// 18446744073709551609 — a silent wrap that made the re-read header
// disagree with the Config that produced it) and the trace must replay
// deterministically.
func TestNegativeSeedRoundTrip(t *testing.T) {
	const seed = int64(-7)
	tr, err := FromScenario(Config{Scenario: "caterpillar-backbone", Seed: seed, Batches: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Seed != seed {
		t.Fatalf("generated header seed = %d, want %d", tr.Header.Seed, seed)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"seed":-7`)) {
		t.Fatalf("serialized header does not carry the literal negative seed:\n%s",
			bytes.SplitN(buf.Bytes(), []byte("\n"), 2)[0])
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Seed != seed {
		t.Fatalf("round-tripped header seed = %d, want %d", got.Header.Seed, seed)
	}
	out1, _, err := Replay(got)
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := Replay(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(out1) != len(out2) {
		t.Fatal("negative-seed replays disagree on length")
	}
	for i := range out1 {
		a, b := out1[i], out2[i]
		a.LatencyNS, b.LatencyNS = 0, 0
		if a != b {
			t.Fatalf("negative-seed replay diverged at event %d: %+v vs %+v", i, a, b)
		}
	}
}

// TestExtremeChurnDoesNotPanic: churn 1.0 drains the arrival queue
// (removals stop at one live job, admissions ask for the full set);
// admit must go quiet instead of dereferencing an empty queue.
func TestExtremeChurnDoesNotPanic(t *testing.T) {
	tr, err := FromScenario(Config{Scenario: "videowall-line", Seed: 1, Churn: 1, Batches: 80})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Replay(tr); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejects(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream did not error")
	}
	if _, err := Read(bytes.NewReader([]byte("{\"algo\":\"line-unit\"}\n"))); err == nil {
		t.Fatal("missing network did not error")
	}
}

// TestReplayDeterministic replays the same trace twice and asserts the
// serialized outcome streams are byte-identical (latencies excluded) —
// the satellite guarantee behind `schedtool replay`.
func TestReplayDeterministic(t *testing.T) {
	tr, err := FromScenario(Config{Scenario: "videowall-line", Seed: 6, Batches: 8})
	if err != nil {
		t.Fatal(err)
	}
	serialize := func() []byte {
		outs, _, err := Replay(tr)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for i := range outs {
			if err := enc.Encode(&outs[i]); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	a, b := serialize(), serialize()
	if !bytes.Equal(a, b) {
		t.Fatal("two replays of one trace diverged")
	}
}

// TestReplayUsesDeltaPath asserts steady-state batches actually engage
// the incremental recompile (the point of the subsystem).
func TestReplayUsesDeltaPath(t *testing.T) {
	tr, err := FromScenario(Config{Scenario: "videowall-line", Seed: 1, Batches: 10})
	if err != nil {
		t.Fatal(err)
	}
	outs, s, err := Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	inc := 0
	for _, o := range outs {
		if o.Op == "resolve" && o.Incremental {
			inc++
		}
	}
	if inc < 8 {
		t.Fatalf("only %d of 10 churn batches took the delta path", inc)
	}
	st := s.Stats()
	if st.IncrementalResolves != int64(inc) {
		t.Fatalf("session stats disagree: %d vs %d", st.IncrementalResolves, inc)
	}
}
