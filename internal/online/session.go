// Package online implements dynamic scheduling sessions: a client opens
// a session against a fixed network (trees or a timeline, with their
// capacities), streams AddJob/RemoveJob events as demands arrive and
// depart, and asks for fresh schedules at Resolve points. Consecutive
// schedules are computed by delta recompilation (core.Compiled.WithJobs):
// only the compiled rows touched by the arrivals and departures are
// rebuilt, the tree decompositions and pooled solver scratch carry across
// generations, and past a churn threshold the session transparently falls
// back to a full recompile. Either way the schedule is byte-identical to
// compiling and solving the current job set from scratch — the
// equivalence suite in internal/core pins that property.
//
// A Session serializes its own event stream (one mutex); different
// sessions are independent. The serving layer (internal/service) exposes
// sessions over HTTP with LRU eviction; cmd/schedtool's replay
// subcommand drives recorded traces (internal/online/trace) through one.
package online

import (
	"fmt"
	"sort"
	"sync"

	"treesched/internal/core"
	"treesched/internal/instance"
)

// Op names an event operation.
const (
	OpAdd     = "add"
	OpRemove  = "remove"
	OpResolve = "resolve"
)

// Job is one client-visible unit of work: a stable client-chosen ID plus
// the demand payload (endpoints or window, profit, height, access set).
// The Demand's own ID field is ignored — sessions renumber demands
// internally as the job set churns.
type Job struct {
	ID     int64           `json:"id"`
	Demand instance.Demand `json:"demand"`
}

// Event is one element of a session's input stream.
type Event struct {
	Op  string `json:"op"`
	Job *Job   `json:"job,omitempty"` // add
	ID  int64  `json:"id,omitempty"`  // remove
}

// Config parameterizes a session.
type Config struct {
	// Algo names the algorithm run at every resolve; see Algorithms.
	Algo string
	// Epsilon is the ε of the (c+ε) guarantees (0 = solver default 0.25).
	Epsilon float64
	// Seed drives the deterministic Luby priorities.
	Seed uint64
	// ChurnThreshold overrides the WithJobs fallback fraction
	// (0 = core.DefaultChurnThreshold).
	ChurnThreshold float64
	// MaxJobs bounds the live job set (0 = 20000).
	MaxJobs int
}

// Stats is a session's observable state. Version counts applied
// mutating (add/remove) events; a schedule is current exactly when its
// Version equals it.
type Stats struct {
	Version             uint64 `json:"version"`
	Jobs                int    `json:"jobs"`
	Events              int64  `json:"events"`
	Resolves            int64  `json:"resolves"`
	IncrementalResolves int64  `json:"incremental_resolves"`
	FullResolves        int64  `json:"full_resolves"`
	CachedResolves      int64  `json:"cached_resolves"`
}

// Schedule is the outcome of one resolve.
type Schedule struct {
	// Result is the solver output on the current effective problem.
	Result *core.Result
	// Problem is the effective problem the schedule was computed for —
	// captured with the result so consumers (e.g. the serving layer's
	// feasibility gate) never race a later resolve for it. Immutable.
	Problem *instance.Problem
	// JobIDs maps Result.Selected positionally to the session's job ids.
	JobIDs []int64
	// Version is the mutation version the schedule reflects (equal to
	// Stats.Version when the schedule is current).
	Version uint64
	// Jobs is the live job count.
	Jobs int
	// Incremental reports whether the recompile behind this schedule took
	// the delta path (false for the first resolve, cache hits and
	// past-threshold fallbacks).
	Incremental bool
}

// solvers is the algorithm registry sessions dispatch on: every solver
// with compiled-model form and no extra budget knob. The distributed
// drivers run on delta-compiled models like any other.
var solvers = map[string]func(*core.Compiled, core.Options) (*core.Result, error){
	"tree-unit":  (*core.Compiled).TreeUnit,
	"line-unit":  (*core.Compiled).LineUnit,
	"narrow":     (*core.Compiled).NarrowOnly,
	"arbitrary":  (*core.Compiled).Arbitrary,
	"sequential": (*core.Compiled).Sequential,
	"seq-line":   (*core.Compiled).SequentialLine,
	"ps":         (*core.Compiled).PanconesiSozioUnit,
	"greedy":     func(c *core.Compiled, _ core.Options) (*core.Result, error) { return c.Greedy() },
	"dist-unit": func(c *core.Compiled, opts core.Options) (*core.Result, error) {
		dr, err := c.DistributedUnit(opts)
		if err != nil {
			return nil, err
		}
		return dr.Result, nil
	},
	"dist-narrow": func(c *core.Compiled, opts core.Options) (*core.Result, error) {
		dr, err := c.DistributedNarrow(opts)
		if err != nil {
			return nil, err
		}
		return dr.Result, nil
	},
	"dist-ps": func(c *core.Compiled, opts core.Options) (*core.Result, error) {
		dr, err := c.DistributedPanconesiSozio(opts)
		if err != nil {
			return nil, err
		}
		return dr.Result, nil
	},
}

// Algorithms returns the session-dispatchable algorithm names, sorted.
func Algorithms() []string {
	out := make([]string, 0, len(solvers))
	for n := range solvers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Session is one dynamic scheduling session. All methods are safe for
// concurrent use; events racing on one session are serialized in arrival
// order by the session mutex.
type Session struct {
	mu      sync.Mutex
	cfg     Config
	network *instance.Problem // demand-less network template

	jobs  map[int64]instance.Demand // live + pending-added payloads
	order []int64                   // committed demand order: order[d] = job id of demand d

	pendingAdd    []int64
	pendingRemove map[int64]bool

	compiled *core.Compiled
	last     *Schedule

	stats Stats
}

// NewSession opens a session on network's networks (its trees or
// timeline and capacities). Demands already on network become the
// initial job set with ids 0..m-1; the usual pattern is an empty demand
// list with every job arriving as an event.
func NewSession(network *instance.Problem, cfg Config) (*Session, error) {
	if _, ok := solvers[cfg.Algo]; !ok {
		return nil, fmt.Errorf("online: unknown algorithm %q (known: %v)", cfg.Algo, Algorithms())
	}
	if cfg.Epsilon < 0 || cfg.Epsilon >= 1 {
		return nil, fmt.Errorf("online: epsilon %g outside [0,1)", cfg.Epsilon)
	}
	// 0 means the core default; the comparison form also rejects NaN,
	// which would otherwise silently disable the delta path forever.
	if !(cfg.ChurnThreshold >= 0 && cfg.ChurnThreshold <= 1) {
		return nil, fmt.Errorf("online: churn threshold %g outside [0,1]", cfg.ChurnThreshold)
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 20000
	}
	if err := network.Validate(); err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}
	if len(network.Demands) > cfg.MaxJobs {
		return nil, fmt.Errorf("online: %d initial jobs exceed the limit %d", len(network.Demands), cfg.MaxJobs)
	}
	tmpl := *network
	tmpl.Demands = nil
	s := &Session{
		cfg:           cfg,
		network:       &tmpl,
		jobs:          make(map[int64]instance.Demand),
		pendingRemove: make(map[int64]bool),
	}
	for i, d := range network.Demands {
		s.jobs[int64(i)] = d
		s.pendingAdd = append(s.pendingAdd, int64(i))
	}
	return s, nil
}

// Config returns the session configuration.
func (s *Session) Config() Config { return s.cfg }

// Problem returns the effective problem of the last committed resolve
// (nil before the first). Treat as immutable — it is shared with the
// compiled model.
func (s *Session) Problem() *instance.Problem {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.compiled == nil {
		return nil
	}
	return s.compiled.Problem()
}

// Stats returns a snapshot of the session counters.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Jobs = s.liveJobsLocked()
	return st
}

func (s *Session) liveJobsLocked() int {
	return len(s.order) + len(s.pendingAdd) - len(s.pendingRemove)
}

// Apply feeds one event into the session. Add and remove events only
// stage the mutation; a resolve event (or a Resolve call) commits every
// staged delta in one recompilation and returns the fresh schedule —
// resolve events return it, add/remove events return nil.
func (s *Session) Apply(ev Event) (*Schedule, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch ev.Op {
	case OpAdd:
		if ev.Job == nil {
			return nil, fmt.Errorf("online: add event without a job")
		}
		if _, dup := s.jobs[ev.Job.ID]; dup && !s.pendingRemove[ev.Job.ID] {
			return nil, fmt.Errorf("online: job %d already present", ev.Job.ID)
		}
		if s.pendingRemove[ev.Job.ID] {
			return nil, fmt.Errorf("online: job %d is pending removal; re-add it after a resolve", ev.Job.ID)
		}
		if s.liveJobsLocked() >= s.cfg.MaxJobs {
			return nil, fmt.Errorf("online: job limit %d reached", s.cfg.MaxJobs)
		}
		s.jobs[ev.Job.ID] = ev.Job.Demand
		s.pendingAdd = append(s.pendingAdd, ev.Job.ID)
	case OpRemove:
		if _, ok := s.jobs[ev.ID]; !ok {
			return nil, fmt.Errorf("online: job %d not present", ev.ID)
		}
		if s.pendingRemove[ev.ID] {
			return nil, fmt.Errorf("online: job %d already pending removal", ev.ID)
		}
		// A job that was added and removed between two resolves never
		// reaches the compiler at all.
		for k, id := range s.pendingAdd {
			if id == ev.ID {
				s.pendingAdd = append(s.pendingAdd[:k], s.pendingAdd[k+1:]...)
				delete(s.jobs, ev.ID)
				s.stats.Events++
				s.stats.Version++
				return nil, nil
			}
		}
		s.pendingRemove[ev.ID] = true
	case OpResolve:
		// Resolve events count as events but do not bump the version:
		// Version tracks mutations, so an up-to-date schedule always
		// satisfies schedule.Version == stats.Version (a cached resolve
		// would otherwise lag forever).
		s.stats.Events++
		return s.resolveLocked()
	default:
		return nil, fmt.Errorf("online: unknown event op %q", ev.Op)
	}
	s.stats.Events++
	s.stats.Version++
	return nil, nil
}

// Resolve commits the staged deltas and returns the schedule for the
// current job set. With no staged changes it returns the cached schedule
// of the previous resolve (sessions are deterministic: re-solving an
// unchanged set reproduces it bit for bit).
func (s *Session) Resolve() (*Schedule, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resolveLocked()
}

func (s *Session) resolveLocked() (*Schedule, error) {
	if s.last != nil && len(s.pendingAdd) == 0 && len(s.pendingRemove) == 0 {
		s.stats.Resolves++
		s.stats.CachedResolves++
		return s.last, nil
	}

	// Stage the committed order the delta would produce; nothing is
	// mutated until the solve succeeds.
	var removedIdx []int
	newOrder := make([]int64, 0, len(s.order)+len(s.pendingAdd))
	for d, id := range s.order {
		if s.pendingRemove[id] {
			removedIdx = append(removedIdx, d)
			continue
		}
		newOrder = append(newOrder, id)
	}
	var added []instance.Demand
	for _, id := range s.pendingAdd {
		added = append(added, s.jobs[id])
		newOrder = append(newOrder, id)
	}

	var compiled *core.Compiled
	var err error
	if s.compiled == nil {
		p := *s.network
		p.Demands = make([]instance.Demand, len(newOrder))
		for d, id := range newOrder {
			dem := s.jobs[id]
			dem.ID = d
			p.Demands[d] = dem
		}
		compiled, err = core.Compile(&p, 0)
		if err == nil && s.cfg.ChurnThreshold != 0 {
			compiled.SetChurnThreshold(s.cfg.ChurnThreshold)
		}
	} else {
		compiled, err = s.compiled.WithJobs(added, removedIdx)
	}
	if err != nil {
		return nil, err
	}

	solve := solvers[s.cfg.Algo]
	res, err := solve(compiled, core.Options{Epsilon: s.cfg.Epsilon, Seed: s.cfg.Seed})
	if err != nil {
		return nil, err
	}

	// Only now that the solve succeeded does the session commit.
	s.compiled = compiled
	s.order = newOrder
	s.pendingAdd = nil
	for id := range s.pendingRemove {
		delete(s.jobs, id)
	}
	clear(s.pendingRemove)

	sched := &Schedule{
		Result:      res,
		Problem:     compiled.Problem(),
		Version:     s.stats.Version,
		Jobs:        len(s.order),
		Incremental: compiled.Incremental(),
	}
	for _, d := range res.Selected {
		sched.JobIDs = append(sched.JobIDs, s.order[d.Demand])
	}
	s.last = sched
	s.stats.Resolves++
	if compiled.Incremental() {
		s.stats.IncrementalResolves++
	} else {
		s.stats.FullResolves++
	}
	return sched, nil
}
