// Package verify checks feasibility of solutions against the original
// problem definition (§2): accessibility, one placement per demand, window
// containment, endpoint consistency, and per-edge bandwidth.
package verify

import (
	"fmt"

	"treesched/internal/instance"
)

// tol absorbs floating-point accumulation in load sums.
const tol = 1e-9

// Solution validates a selected instance set against p. It returns nil
// when the solution is feasible.
func Solution(p *instance.Problem, sel []instance.Inst) error {
	seen := make(map[int32]bool)
	load := make(map[int32]float64)
	for _, d := range sel {
		if int(d.Demand) < 0 || int(d.Demand) >= len(p.Demands) {
			return fmt.Errorf("verify: instance references demand %d of %d", d.Demand, len(p.Demands))
		}
		dem := p.Demands[d.Demand]
		if seen[d.Demand] {
			return fmt.Errorf("verify: demand %d scheduled twice", d.Demand)
		}
		seen[d.Demand] = true

		// Accessibility (§2 condition i).
		ok := false
		for _, q := range dem.Access {
			if q == int(d.Net) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("verify: demand %d scheduled on inaccessible network %d", d.Demand, d.Net)
		}

		if d.Height != dem.Height {
			return fmt.Errorf("verify: demand %d height changed: %g vs %g", d.Demand, d.Height, dem.Height)
		}

		switch p.Kind {
		case instance.KindTree:
			if int(d.U) != dem.U || int(d.V) != dem.V {
				return fmt.Errorf("verify: demand %d endpoints (%d,%d) differ from (%d,%d)",
					d.Demand, d.U, d.V, dem.U, dem.V)
			}
		case instance.KindLine:
			if int(d.U) < dem.Release || int(d.V) > dem.Deadline {
				return fmt.Errorf("verify: demand %d run [%d,%d] outside window [%d,%d]",
					d.Demand, d.U, d.V, dem.Release, dem.Deadline)
			}
			if int(d.Len()) != dem.ProcTime {
				return fmt.Errorf("verify: demand %d runs %d slots, needs %d", d.Demand, d.Len(), dem.ProcTime)
			}
		}

		// Bandwidth (§2 condition ii).
		for _, e := range p.PathEdges(d) {
			load[e] += d.Height
			if load[e] > p.Capacity(e)+tol {
				return fmt.Errorf("verify: edge %d overloaded: %g > capacity %g", e, load[e], p.Capacity(e))
			}
		}
	}
	return nil
}

// EdgeDisjoint additionally checks the unit-height reading of feasibility:
// no two selected instances share an edge at all.
func EdgeDisjoint(p *instance.Problem, sel []instance.Inst) error {
	owner := make(map[int32]int32)
	for _, d := range sel {
		for _, e := range p.PathEdges(d) {
			if prev, dup := owner[e]; dup {
				return fmt.Errorf("verify: demands %d and %d share edge %d", prev, d.Demand, e)
			}
			owner[e] = d.Demand
		}
	}
	return nil
}
