package verify

import (
	"math/rand"
	"testing"

	"treesched/internal/gen"
	"treesched/internal/instance"
)

func treeProblem(t *testing.T) *instance.Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	p := gen.TreeProblem(gen.TreeConfig{N: 12, Trees: 2, Demands: 6, Unit: true}, rng)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEmptySolutionIsFeasible(t *testing.T) {
	p := treeProblem(t)
	if err := Solution(p, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingleInstanceFeasible(t *testing.T) {
	p := treeProblem(t)
	insts := p.Expand()
	if err := Solution(p, insts[:1]); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsDuplicateDemand(t *testing.T) {
	p := treeProblem(t)
	insts := p.Expand()
	var two []instance.Inst
	for _, d := range insts {
		if d.Demand == 0 {
			two = append(two, d)
		}
	}
	if len(two) < 2 {
		t.Skip("demand 0 has a single instance under this seed")
	}
	if err := Solution(p, two[:2]); err == nil {
		t.Fatal("accepted two placements of one demand")
	}
}

func TestRejectsInaccessibleNetwork(t *testing.T) {
	p := treeProblem(t)
	d := p.Expand()[0]
	// Point the instance at a network outside the demand's access set.
	for q := 0; q < p.NumNetworks(); q++ {
		allowed := false
		for _, a := range p.Demands[d.Demand].Access {
			if a == q {
				allowed = true
			}
		}
		if !allowed {
			d.Net = int32(q)
			if err := Solution(p, []instance.Inst{d}); err == nil {
				t.Fatal("accepted inaccessible placement")
			}
			return
		}
	}
	t.Skip("demand 0 can access every network under this seed")
}

func TestRejectsChangedEndpoints(t *testing.T) {
	p := treeProblem(t)
	d := p.Expand()[0]
	d.U, d.V = d.V+1, d.U // corrupt
	if int(d.U) >= p.NumVertices {
		d.U = 0
	}
	if err := Solution(p, []instance.Inst{d}); err == nil {
		t.Fatal("accepted altered endpoints")
	}
}

func TestRejectsChangedHeight(t *testing.T) {
	p := treeProblem(t)
	d := p.Expand()[0]
	d.Height = 0.25
	if err := Solution(p, []instance.Inst{d}); err == nil {
		t.Fatal("accepted altered height")
	}
}

func TestRejectsOverloadedEdge(t *testing.T) {
	// Figure 2's tree: all three unit-height demands cross edge 4-5, so
	// any two together overload it.
	pp := gen.PaperFigure2Problem(true)
	insts := pp.Expand()
	// All three demands share edge 4-5; any two together are infeasible.
	if err := Solution(pp, insts[:2]); err == nil {
		t.Fatal("accepted two unit demands on a shared edge")
	}
	if err := EdgeDisjoint(pp, insts[:2]); err == nil {
		t.Fatal("EdgeDisjoint accepted a shared edge")
	}
}

func TestWindowViolationsRejected(t *testing.T) {
	p := &instance.Problem{
		Kind: instance.KindLine, NumSlots: 10, NumResources: 1,
		Demands: []instance.Demand{
			{ID: 0, Release: 2, Deadline: 7, ProcTime: 3, Profit: 1, Height: 1, Access: []int{0}},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Run outside the window.
	bad := instance.Inst{ID: 0, Demand: 0, Net: 0, U: 0, V: 2, Profit: 1, Height: 1}
	if err := Solution(p, []instance.Inst{bad}); err == nil {
		t.Fatal("accepted run starting before release")
	}
	// Wrong duration.
	short := instance.Inst{ID: 0, Demand: 0, Net: 0, U: 3, V: 4, Profit: 1, Height: 1}
	if err := Solution(p, []instance.Inst{short}); err == nil {
		t.Fatal("accepted too-short run")
	}
	// Correct placement passes.
	good := instance.Inst{ID: 0, Demand: 0, Net: 0, U: 3, V: 5, Profit: 1, Height: 1}
	if err := Solution(p, []instance.Inst{good}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityRespectedWithNonUniformBandwidth(t *testing.T) {
	p := &instance.Problem{
		Kind: instance.KindLine, NumSlots: 4, NumResources: 1,
		Capacities: [][]float64{{2, 2, 0.5, 2}},
		Demands: []instance.Demand{
			{ID: 0, Release: 0, Deadline: 3, ProcTime: 4, Profit: 1, Height: 1, Access: []int{0}},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	inst := p.Expand()[0]
	// Height 1 exceeds the 0.5-capacity slot 2.
	if err := Solution(p, []instance.Inst{inst}); err == nil {
		t.Fatal("accepted overloaded low-capacity slot")
	}
}

func TestRejectsUnknownDemandID(t *testing.T) {
	p := treeProblem(t)
	d := p.Expand()[0]
	d.Demand = 99
	if err := Solution(p, []instance.Inst{d}); err == nil {
		t.Fatal("accepted out-of-range demand id")
	}
}
