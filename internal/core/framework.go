// Package core implements the paper's primary contribution: the two-phase
// primal-dual framework (§3.2) and the distributed scheduling algorithms
// built on it —
//
//   - the (7+ε)-approximation for unit-height tree networks (§5, Thm 5.3),
//   - the (73+ε) narrow-instance and (80+ε) arbitrary-height tree
//     algorithms (§6, Lemma 6.2, Thm 6.3),
//   - the (4+ε) unit and (23+ε) arbitrary-height line-network algorithms
//     with windows (§7, Thms 7.1–7.2),
//   - the sequential Appendix-A algorithm (∆=2, λ=1; 3-approximation),
//   - the Panconesi–Sozio single-stage baselines, and
//   - exact and greedy reference solvers.
//
// Every algorithm runs in two interchangeable drivers: a fast centralized
// driver and a goroutine-per-processor message-passing driver
// (distributed.go) that produce identical outputs for equal seeds.
package core

import (
	"fmt"
	"math"
	"slices"

	"treesched/internal/conflict"
	"treesched/internal/lp"
	"treesched/internal/mis"
	"treesched/internal/model"
	"treesched/internal/obs"
)

// Schedule fixes the first-phase loop structure: epochs (one per layer
// group), stages within each epoch, and the per-stage satisfaction
// thresholds (§5).
type Schedule struct {
	// Epochs is the number of layer groups ℓmax.
	Epochs int
	// Stages is b, the per-epoch stage count.
	Stages int
	// Xi is the stage base: after stage j all group instances are
	// (1−ξ^j)-satisfied. For single-stage (Panconesi–Sozio style)
	// schedules Xi is unused.
	Xi float64
	// Thresholds[j-1] is the satisfaction fraction targeted by stage j.
	Thresholds []float64
	// Lambda is the slackness guaranteed once the first phase ends: the
	// final threshold.
	Lambda float64
	// MaxSteps caps the while-loop iterations of one stage as a safety
	// net; Lemma 5.1 bounds the true count by 1+log2(pmax/pmin).
	MaxSteps int
	// SingleStage marks Panconesi–Sozio style schedules, whose step
	// count per stage grows with 1/ε rather than Lemma 5.1's bound.
	SingleStage bool
}

// UnitXi returns the paper's stage base for the unit-height rule with
// critical sets of size ≤ delta: ξ = 2∆'/(2∆'+1) with ∆' = ∆+1 — 14/15 for
// trees (∆=6), 8/9 for lines (∆=3).
func UnitXi(delta int) float64 {
	dp := float64(delta + 1)
	return 2 * dp / (2*dp + 1)
}

// NarrowXi returns the stage base for the narrow rule: ξ = c/(c+hmin) with
// c = 1+∆². The choice makes the kill argument of Lemma 5.1 double profits:
// a killed instance satisfies p(d2)/p(d1) ≥ 2ξhmin/((1−ξ)(1+∆²)) ≥ 2.
func NarrowXi(delta int, hmin float64) float64 {
	c := 1 + float64(delta*delta)
	return c / (c + hmin)
}

// NewSchedule builds the multi-stage schedule of §5: stages until
// ξ^b ≤ ε, thresholds 1−ξ^j, λ = 1−ξ^b ≥ 1−ε.
func NewSchedule(m *model.Model, xi, eps float64) Schedule {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("core: epsilon %g outside (0,1)", eps))
	}
	b := 1
	for math.Pow(xi, float64(b)) > eps {
		b++
	}
	s := Schedule{
		Epochs: m.NumGroups,
		Stages: b,
		Xi:     xi,
	}
	for j := 1; j <= b; j++ {
		s.Thresholds = append(s.Thresholds, 1-math.Pow(xi, float64(j)))
	}
	s.Lambda = s.Thresholds[b-1]
	s.MaxSteps = stepCap(m)
	return s
}

// NewSingleStageSchedule builds the Panconesi–Sozio style schedule: one
// stage per epoch with a fixed threshold λ (their λ = 1/(5+ε)). The step
// cap is larger than the multi-stage one: single-stage kill chains grow
// profits by only (1−λ)/(λ(∆+1)) per kill — 1+ε/4 on lines — so the chain
// length is O((1/ε)·log(pmax/pmin)) rather than O(log(pmax/pmin)).
func NewSingleStageSchedule(m *model.Model, lambda float64) Schedule {
	return Schedule{
		Epochs:      m.NumGroups,
		Stages:      1,
		Xi:          lambda,
		Thresholds:  []float64{lambda},
		Lambda:      lambda,
		MaxSteps:    64 * stepCap(m),
		SingleStage: true,
	}
}

// FixedSteps returns the paper's deterministic per-stage step count for
// multi-stage schedules ("we can count the number of epochs, stages and
// iterations exactly", §5): Lemma 5.1's 1+log2(pmax/pmin) plus slack for
// the raise tolerance. Single-stage schedules have no such bound and
// return 0.
func (s Schedule) FixedSteps(m *model.Model) int {
	if s.SingleStage {
		return 0
	}
	spread := 1.0
	if m.PMin > 0 {
		spread = m.PMax / m.PMin
	}
	return 3 + int(math.Ceil(math.Log2(spread)))
}

// stepCap returns a generous safety cap on steps per stage: the theory
// bound is 1+log2(pmax/pmin) (Lemma 5.1); exceeding 8× that plus slack
// indicates a bug and aborts the run.
func stepCap(m *model.Model) int {
	spread := 1.0
	if m.PMin > 0 {
		spread = m.PMax / m.PMin
	}
	return 8*(2+int(math.Log2(spread))) + 64
}

// RaiseEvent records one dual raise for trace-based invariant checks.
type RaiseEvent struct {
	Inst  int32
	Delta float64
	Epoch int
	Stage int
	Step  int
}

// Trace optionally captures the full raise history of a run.
type Trace struct {
	Events []RaiseEvent
	// StepsPerStage[k][j] is the number of while-iterations of stage j+1
	// in epoch k+1.
	StepsPerStage [][]int
	// MISPhases totals Luby phases across all steps.
	MISPhases int
}

// Steps returns the total number of steps (framework iterations).
func (t *Trace) Steps() int {
	total := 0
	for _, epoch := range t.StepsPerStage {
		for _, s := range epoch {
			total += s
		}
	}
	return total
}

// StackEntry is one pushed independent set with its schedule position.
type StackEntry struct {
	Epoch, Stage, Step int
	Set                []int32
}

// implicitThreshold is the instance count above which Phase1 switches from
// the explicit conflict graph (cliques materialized as adjacency, possibly
// quadratic) to clique-cover aggregation. The two paths compute identical
// sets (see mis.LubyFuncImplicit). The cover costs O(Σ|clique|) to build
// where the adjacency is quadratic in clique sizes, and since the Luby
// routines walk only the undecided frontier the per-solve costs are
// comparable — so the cold path prefers the cover for everything but tiny
// models, where the densest adjacency is still a handful of cache lines.
const implicitThreshold = 32

// misFunc computes a maximal independent set of the active instances
// under the given priority function, returning the set and the number of
// Luby phases used. The returned set aliases the scratch and is
// overwritten by the next call.
type misFunc func(sc *mis.Scratch, active []bool, prio func(int32, int) float64) ([]int32, int)

// newMISFunc builds the MIS routine for m, choosing the explicit or
// implicit conflict representation by instance count, and reports the
// clique count the routine's scratch must be sized for (0 for the
// explicit path). Building the conflict structure is the expensive part;
// Compiled caches the returned closure so repeated solves pay it once.
func newMISFunc(m *model.Model) (misFunc, int) {
	if len(m.Insts) > implicitThreshold {
		im := conflict.BuildImplicit(m)
		return func(sc *mis.Scratch, active []bool, prio func(int32, int) float64) ([]int32, int) {
			return sc.LubyFuncImplicit(im, active, prio)
		}, im.NumCliques()
	}
	cg := conflict.Build(m)
	return func(sc *mis.Scratch, active []bool, prio func(int32, int) float64) ([]int32, int) {
		return sc.LubyFunc(cg.Adj, active, prio)
	}, 0
}

// solveScratch holds every reusable buffer of one centralized solve:
// duals, the Phase1 active flags and recheck stamps, the stack and its
// set arena, the Phase2 feasibility state, and the Luby scratch. A warm
// Compiled pools these per sub-model (see solverModel), so a steady-state
// solve touches the heap only for its Result.
type solveScratch struct {
	duals    lp.Duals
	active   []bool
	stamp    []int32
	stampGen int32
	// lhs caches, per instance, the value of the last full rule.LHS
	// recomputation; dirty marks instances whose duals moved since. Reads
	// recompute on dirty and reuse the cache otherwise, so every
	// satisfaction test compares exactly the number a fresh recomputation
	// would produce — float-identical to the rescan reference.
	lhs   []float64
	dirty []bool
	// setArena backs every StackEntry.Set of one solve; entries are
	// capped sub-slices, so later appends never alias earlier sets. When
	// the arena grows, superseded backing arrays stay referenced by the
	// already-pushed sets until the solve ends.
	setArena []int32
	stack    []StackEntry
	load     []float64
	used     []bool
	selected []int32
	mis      *mis.Scratch
}

func newSolveScratch(m *model.Model, numCliques int) *solveScratch {
	n := len(m.Insts)
	return &solveScratch{
		duals: lp.Duals{
			Alpha: make([]float64, m.NumDemands),
			Beta:  make([]float64, m.EdgeSpace),
		},
		active: make([]bool, n),
		stamp:  make([]int32, n),
		lhs:    make([]float64, n),
		dirty:  make([]bool, n),
		load:   make([]float64, m.EdgeSpace),
		used:   make([]bool, m.NumDemands),
		mis:    mis.NewScratch(n, numCliques),
	}
}

// grow returns s resized to length n, reusing its backing array when the
// capacity suffices. Contents are unspecified — every solveScratch field
// is cleared by reset or by its consuming phase before use.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// adapt resizes a scratch pooled for one model so it serves another —
// the delta-recompilation path hands the parent compilation's scratch to
// the child, so a small-churn re-solve keeps its warm allocation profile
// even though every dimension (instances, demands, cliques) may have
// shifted slightly. The Luby scratch resizes itself per call.
func (sc *solveScratch) adapt(m *model.Model) {
	n := len(m.Insts)
	sc.duals.Alpha = grow(sc.duals.Alpha, m.NumDemands)
	sc.duals.Beta = grow(sc.duals.Beta, m.EdgeSpace)
	sc.active = grow(sc.active, n)
	sc.stamp = grow(sc.stamp, n)
	sc.lhs = grow(sc.lhs, n)
	sc.dirty = grow(sc.dirty, n)
	sc.load = grow(sc.load, m.EdgeSpace)
	sc.used = grow(sc.used, m.NumDemands)
}

// reset prepares the scratch for a fresh Phase1 (phase2 clears its own
// buffers). active is all-false whenever a stage loop terminates
// normally; it is cleared anyway so a pooled scratch recovers from an
// aborted (error-path) solve.
func (sc *solveScratch) reset() {
	clear(sc.duals.Alpha)
	clear(sc.duals.Beta)
	clear(sc.active)
	clear(sc.stamp)
	sc.stampGen = 0
	for i := range sc.dirty {
		sc.dirty[i] = true
	}
	sc.setArena = sc.setArena[:0]
	sc.stack = sc.stack[:0]
}

// Phase1 runs the first phase (§3.2/§5) centrally: per epoch and stage,
// repeatedly find a maximal independent set of the still-unsatisfied group
// members (via deterministic-priority Luby, seeded), raise them tight, and
// push the set. It returns the dual assignment and the stack.
func Phase1(m *model.Model, rule lp.Rule, sched Schedule, seed uint64, trace *Trace) (*lp.Duals, []StackEntry, error) {
	misFn, nc := newMISFunc(m)
	return phase1(m, misFn, rule, sched, seed, trace, nil, newSolveScratch(m, nc))
}

// phase1 is Phase1 with the MIS routine and scratch supplied by the
// caller (cached and pooled in a solverModel, or freshly built). The
// returned duals and stack alias the scratch: a pooling caller must
// finish with them before releasing it. A non-nil tel records one span
// per epoch with per-stage child spans (steps, raises, Luby MIS phase
// counts); tel is read-only observation and never alters the
// computation — with tel == nil the loop pays one predictable branch
// per stage and per step.
//
// The active set is tracked incrementally instead of rescanned: each
// stage starts with one scan of the epoch's layer-group bucket, and each
// step re-evaluates satisfaction only for instances a raise could have
// moved — the raised demand's instances (α changed) and the instances
// whose path crosses a raised critical edge (β changed). Raises only
// ever increase dual LHS values, so an untouched instance's satisfaction
// cannot change and the tracked set stays exactly the rescan set; the
// equivalence suite asserts byte-identical duals and stacks against a
// full-rescan reference.
func phase1(m *model.Model, misFn misFunc, rule lp.Rule, sched Schedule, seed uint64, trace *Trace, tel *obs.Trace, sc *solveScratch) (*lp.Duals, []StackEntry, error) {
	sc.reset()
	duals := &sc.duals
	active := sc.active
	stepCounter := uint64(0)

	// One priority closure per solve; prioStep is rebound each step.
	prioStep := uint64(0)
	prio := func(i int32, phase int) float64 {
		return mis.Priority(seed, i, prioStep, phase)
	}
	// satisfied is lp.Satisfied through the lazy LHS cache: recompute on
	// dirty, reuse the last recomputation otherwise. The cached value is
	// always itself a full rule.LHS evaluation of the current duals, so
	// the comparison is float-identical to an uncached rescan.
	threshold := 0.0
	satisfied := func(i int32) bool {
		if sc.dirty[i] {
			sc.lhs[i] = rule.LHS(m, duals, i)
			sc.dirty[i] = false
		}
		return sc.lhs[i] >= threshold*m.Insts[i].Profit-lp.Tol
	}
	// touch marks one raise-affected instance dirty and, when it is in
	// the running stage's active set, re-evaluates it; the stamp
	// deduplicates multi-edge hits within one step.
	count := 0
	touch := func(i int32) {
		if sc.stamp[i] == sc.stampGen {
			return
		}
		sc.stamp[i] = sc.stampGen
		sc.dirty[i] = true
		if active[i] && satisfied(i) {
			active[i] = false
			count--
		}
	}

	for k := 1; k <= sched.Epochs; k++ {
		epochSpan := tel.Begin("epoch")
		var group []int32
		if k <= m.GroupInsts.Rows() {
			group = m.GroupInsts.Row(int32(k - 1))
		}
		var stageSteps []int
		for j := 1; j <= sched.Stages; j++ {
			stageSpan := obs.NoSpan
			var stageRaises, stagePhases int
			if tel != nil {
				stageSpan = tel.Begin("stage")
			}
			threshold = sched.Thresholds[j-1]
			// U = group-k instances that are threshold-unsatisfied. One
			// bucket scan per stage — cached LHS reads, so only instances
			// raises touched since their last read walk their path; the
			// step loop below maintains the set incrementally.
			count = 0
			for _, i := range group {
				if !satisfied(i) {
					active[i] = true
					count++
				}
			}
			steps := 0
			for count > 0 {
				steps++
				if steps > sched.MaxSteps {
					return nil, nil, fmt.Errorf("core: stage (%d,%d) exceeded %d steps — kill-chain bound violated", k, j, sched.MaxSteps)
				}
				stepCounter++
				prioStep = stepCounter
				set, phases := misFn(sc.mis, active, prio)
				if trace != nil {
					trace.MISPhases += phases
				}
				if tel != nil {
					stagePhases += phases
					stageRaises += len(set)
				}
				// The MIS scratch reuses its output buffer, so the set is
				// copied into the solve's arena before it is retained.
				start := len(sc.setArena)
				sc.setArena = append(sc.setArena, set...)
				set = sc.setArena[start:len(sc.setArena):len(sc.setArena)]
				for _, i := range set {
					delta := rule.Raise(m, duals, i)
					if trace != nil {
						trace.Events = append(trace.Events, RaiseEvent{
							Inst: i, Delta: delta, Epoch: k, Stage: j, Step: steps,
						})
					}
				}
				sc.stack = append(sc.stack, StackEntry{Epoch: k, Stage: j, Step: steps, Set: set})
				// Delta-driven maintenance: a raise moves α of its demand
				// and β of its critical edges, so the instances it could
				// have satisfied — or whose cached LHS it staled — are the
				// demand's instances and those whose path crosses a raised
				// critical edge. Everything else keeps a valid cache.
				sc.stampGen++
				for _, i := range set {
					for _, o := range m.InstsOf.Row(m.Insts[i].Demand) {
						touch(o)
					}
					for _, e := range m.Pi.Row(i) {
						for _, o := range m.EdgeInsts.Row(e) {
							touch(o)
						}
					}
				}
			}
			if trace != nil {
				stageSteps = append(stageSteps, steps)
			}
			if tel != nil {
				tel.Add(stageSpan, "steps", int64(steps))
				tel.Add(stageSpan, "raises", int64(stageRaises))
				tel.Add(stageSpan, "mis_phases", int64(stagePhases))
				tel.End(stageSpan)
			}
		}
		if trace != nil {
			trace.StepsPerStage = append(trace.StepsPerStage, stageSteps)
		}
		tel.End(epochSpan)
	}
	return duals, sc.stack, nil
}

// Phase2 pops the stack in reverse and greedily adds instances that keep
// the solution feasible (§3.2): at most one instance per demand, and on
// every edge the selected heights fit within capacity. For unit heights
// and unit capacities this is exactly edge-disjointness, and for wide
// instances (h > cap/2) capacity-fit coincides with pairwise conflict, so
// one implementation serves all variants.
func Phase2(m *model.Model, stack []StackEntry) []int32 {
	return phase2(m, stack, make([]float64, m.EdgeSpace), make([]bool, m.NumDemands), nil)
}

// phase2 is Phase2 over caller-supplied buffers (pooled in a
// solveScratch): load and used are cleared here, selections are appended
// to selected (sliced to zero length by the caller when reusing).
func phase2(m *model.Model, stack []StackEntry, load []float64, used []bool, selected []int32) []int32 {
	clear(load)
	clear(used)
	for s := len(stack) - 1; s >= 0; s-- {
		for _, i := range stack[s].Set {
			if used[m.Insts[i].Demand] {
				continue
			}
			h := m.Insts[i].Height
			fits := true
			for _, e := range m.Paths.Row(i) {
				if load[e]+h > m.Cap[e]+lp.Tol {
					fits = false
					break
				}
			}
			if !fits {
				continue
			}
			used[m.Insts[i].Demand] = true
			for _, e := range m.Paths.Row(i) {
				load[e] += h
			}
			selected = append(selected, i)
		}
	}
	slices.Sort(selected)
	return selected
}
