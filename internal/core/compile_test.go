package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"treesched/internal/gen"
	"treesched/internal/verify"
)

func compileTestTreeProblem(t *testing.T, unit bool) *Compiled {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	cfg := gen.TreeConfig{N: 24, Trees: 2, Demands: 24, Unit: unit}
	if !unit {
		cfg.HMin, cfg.HMax = 0.1, 1.0
	}
	c, err := Compile(gen.TreeProblem(cfg, rng), 0)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

// TestCompiledMatchesPackageLevel: solving through a Compiled must give
// exactly what the one-shot package-level entry points give.
func TestCompiledMatchesPackageLevel(t *testing.T) {
	c := compileTestTreeProblem(t, true)
	opts := Options{Seed: 3}

	fromCompiled, err := c.TreeUnit(opts)
	if err != nil {
		t.Fatalf("compiled TreeUnit: %v", err)
	}
	fresh, err := TreeUnit(c.Problem(), opts)
	if err != nil {
		t.Fatalf("package TreeUnit: %v", err)
	}
	if !SameSelection(fromCompiled, fresh) || fromCompiled.Profit != fresh.Profit {
		t.Fatal("compiled and package-level TreeUnit disagree")
	}

	seq1, err := c.Sequential(opts)
	if err != nil {
		t.Fatalf("compiled Sequential: %v", err)
	}
	seq2, err := Sequential(c.Problem(), opts)
	if err != nil {
		t.Fatalf("package Sequential: %v", err)
	}
	if !SameSelection(seq1, seq2) {
		t.Fatal("compiled and package-level Sequential disagree")
	}
}

// TestCompiledSolveMany: repeated and mixed solves on one Compiled are
// deterministic, feasible, and leave the shared models unchanged.
func TestCompiledSolveMany(t *testing.T) {
	c := compileTestTreeProblem(t, false)
	first, err := c.Arbitrary(Options{Seed: 1})
	if err != nil {
		t.Fatalf("Arbitrary: %v", err)
	}
	for trial := 0; trial < 3; trial++ {
		r, err := c.Arbitrary(Options{Seed: 1})
		if err != nil {
			t.Fatalf("Arbitrary trial %d: %v", trial, err)
		}
		if !SameSelection(first, r) || r.Profit != first.Profit {
			t.Fatalf("trial %d: repeated solve diverged", trial)
		}
		if err := verify.Solution(c.Problem(), r.Selected); err != nil {
			t.Fatalf("trial %d: infeasible: %v", trial, err)
		}
	}
	// Mixing in other algorithms must not perturb subsequent solves.
	// (NarrowOnly may legitimately reject the mixed-height workload.)
	c.NarrowOnly(Options{}) // nolint:errcheck
	if _, err := c.Greedy(); err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	again, err := c.Arbitrary(Options{Seed: 1})
	if err != nil {
		t.Fatalf("Arbitrary after mixing: %v", err)
	}
	if !SameSelection(first, again) {
		t.Fatal("solve after mixed algorithms diverged — shared model mutated?")
	}
}

// TestCompiledSequentialLineIsolated: the end-slot π rewrite must live in
// the dedicated line model, leaving the full model's critical sets alone.
func TestCompiledSequentialLineIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := gen.LineProblem(gen.LineConfig{Slots: 24, Resources: 2, Demands: 20, Unit: true}, rng)
	c, err := Compile(p, 0)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	before, err := c.LineUnit(Options{Seed: 2})
	if err != nil {
		t.Fatalf("LineUnit: %v", err)
	}
	if _, err := c.SequentialLine(Options{}); err != nil {
		t.Fatalf("SequentialLine: %v", err)
	}
	fullM, err := c.Model()
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	if fullM.Delta == 1 {
		t.Fatal("SequentialLine mutated the shared full model's Delta")
	}
	after, err := c.LineUnit(Options{Seed: 2})
	if err != nil {
		t.Fatalf("LineUnit after SequentialLine: %v", err)
	}
	if !SameSelection(before, after) {
		t.Fatal("LineUnit diverged after SequentialLine — π sets leaked")
	}
}

// TestCompiledConcurrentSolves exercises one Compiled from many
// goroutines (run under -race in CI).
func TestCompiledConcurrentSolves(t *testing.T) {
	c := compileTestTreeProblem(t, true)
	want, err := c.TreeUnit(Options{Seed: 9})
	if err != nil {
		t.Fatalf("TreeUnit: %v", err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var r *Result
			var err error
			switch g % 3 {
			case 0:
				r, err = c.TreeUnit(Options{Seed: 9})
			case 1:
				r, err = c.Arbitrary(Options{Seed: 9})
			default:
				r, err = c.Sequential(Options{Seed: 9})
			}
			if err != nil {
				errs <- err
				return
			}
			if g%3 == 0 && !SameSelection(r, want) {
				errs <- errors.New("concurrent TreeUnit diverged")
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent solve: %v", err)
	}
}
