package core

import (
	"fmt"
	"sort"

	"treesched/internal/instance"
	"treesched/internal/model"
)

// ExactSingleLineUnit solves the special case of one line resource with
// unit heights exactly in polynomial time by weighted job-interval
// scheduling DP over the expanded instances: among instances sorted by end
// slot, best[t] is the maximum profit using slots < t, and each demand may
// contribute at most one instance.
//
// With windows a demand has many instances, so plain interval DP (which
// could pick two placements of one demand) is only an upper bound; this
// implementation therefore restricts itself to problems where each demand
// has exactly one instance (ProcTime == window length). For the general
// windowed case use Exact. The function exists as an independently-derived
// optimum for cross-checking the branch-and-bound solver.
func ExactSingleLineUnit(p *instance.Problem) (*Result, error) {
	if p.Kind != instance.KindLine {
		return nil, fmt.Errorf("core: ExactSingleLineUnit on %v problem", p.Kind)
	}
	if p.NumResources != 1 {
		return nil, fmt.Errorf("core: ExactSingleLineUnit needs exactly one resource, got %d", p.NumResources)
	}
	if !p.UnitHeight() {
		return nil, fmt.Errorf("core: ExactSingleLineUnit requires unit heights")
	}
	for _, d := range p.Demands {
		if d.Deadline-d.Release+1 != d.ProcTime {
			return nil, fmt.Errorf("core: ExactSingleLineUnit requires tight windows (demand %d has slack)", d.ID)
		}
	}
	m, err := model.Build(p, model.Options{})
	if err != nil {
		return nil, err
	}
	insts := append([]instance.Inst(nil), m.Insts...)
	sort.Slice(insts, func(a, b int) bool { return insts[a].V < insts[b].V })

	// best[k]: optimum over the first k instances (in end order);
	// choice[k]: whether instance k-1 is taken in that optimum.
	n := len(insts)
	best := make([]float64, n+1)
	take := make([]int, n+1) // predecessor index when taking, -1 when skipping
	// lastBefore[k]: largest j ≤ k with insts[j-1].V < insts[k-1].U.
	for k := 1; k <= n; k++ {
		// Skip.
		best[k] = best[k-1]
		take[k] = -1
		// Take: find the latest instance ending before this one starts.
		lo, hi := 0, k-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if insts[mid-1].V < insts[k-1].U {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		if v := best[lo] + insts[k-1].Profit; v > best[k] {
			best[k] = v
			take[k] = lo
		}
	}
	res := &Result{Name: "exact-interval-dp", Lambda: 1, Bound: 1}
	for k := n; k > 0; {
		if take[k] < 0 {
			k--
			continue
		}
		res.Selected = append(res.Selected, insts[k-1])
		res.Profit += insts[k-1].Profit
		k = take[k]
	}
	res.DualUB = res.Profit
	res.CertifiedRatio = 1
	return res, nil
}
