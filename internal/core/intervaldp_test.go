package core

import (
	"math"
	"math/rand"
	"testing"

	"treesched/internal/gen"
	"treesched/internal/instance"
	"treesched/internal/verify"
)

// tightLineProblem draws a single-resource unit-height problem whose
// windows equal the processing times (one instance per demand).
func tightLineProblem(rng *rand.Rand, slots, demands int) *instance.Problem {
	p := &instance.Problem{Kind: instance.KindLine, NumSlots: slots, NumResources: 1}
	for i := 0; i < demands; i++ {
		rho := 1 + rng.Intn(slots/3)
		rt := rng.Intn(slots - rho + 1)
		p.Demands = append(p.Demands, instance.Demand{
			ID: i, Release: rt, Deadline: rt + rho - 1, ProcTime: rho,
			Profit: 1 + rng.Float64()*9, Height: 1, Access: []int{0},
		})
	}
	return p
}

func TestIntervalDPMatchesBranchAndBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		p := tightLineProblem(rng, 12+rng.Intn(24), 3+rng.Intn(12))
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		dp, err := ExactSingleLineUnit(p)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := Exact(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dp.Profit-bb.Profit) > 1e-9 {
			t.Fatalf("trial %d: DP %g vs B&B %g", trial, dp.Profit, bb.Profit)
		}
		if err := verify.Solution(p, dp.Selected); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestIntervalDPRejections(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tree := gen.TreeProblem(gen.TreeConfig{N: 6, Trees: 1, Demands: 2, Unit: true}, rng)
	if _, err := ExactSingleLineUnit(tree); err == nil {
		t.Fatal("accepted tree problem")
	}
	multi := gen.LineProblem(gen.LineConfig{Slots: 10, Resources: 2, Demands: 3, Unit: true}, rng)
	if _, err := ExactSingleLineUnit(multi); err == nil {
		t.Fatal("accepted multi-resource problem")
	}
	slack := &instance.Problem{Kind: instance.KindLine, NumSlots: 10, NumResources: 1,
		Demands: []instance.Demand{{ID: 0, Release: 0, Deadline: 5, ProcTime: 2, Profit: 1, Height: 1, Access: []int{0}}}}
	if _, err := ExactSingleLineUnit(slack); err == nil {
		t.Fatal("accepted windowed demand")
	}
	nonUnit := tightLineProblem(rng, 10, 3)
	nonUnit.Demands[0].Height = 0.5
	if _, err := ExactSingleLineUnit(nonUnit); err == nil {
		t.Fatal("accepted non-unit heights")
	}
}

func TestIntervalDPKnownInstance(t *testing.T) {
	// Classic example: three jobs [0,3] p=4, [2,5] p=5, [4,7] p=4 —
	// optimum takes the two outer jobs (profit 8).
	p := &instance.Problem{Kind: instance.KindLine, NumSlots: 8, NumResources: 1,
		Demands: []instance.Demand{
			{ID: 0, Release: 0, Deadline: 3, ProcTime: 4, Profit: 4, Height: 1, Access: []int{0}},
			{ID: 1, Release: 2, Deadline: 5, ProcTime: 4, Profit: 5, Height: 1, Access: []int{0}},
			{ID: 2, Release: 4, Deadline: 7, ProcTime: 4, Profit: 4, Height: 1, Access: []int{0}},
		}}
	dp, err := ExactSingleLineUnit(p)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Profit != 8 || len(dp.Selected) != 2 {
		t.Fatalf("profit %g with %d jobs, want 8 with 2", dp.Profit, len(dp.Selected))
	}
}
