package core

// The telemetry suite guards the zero-overhead discipline of the
// internal/obs integration from the solver side:
//
//   - attaching a Trace must never change what any entry point computes
//     (byte-identical results, selections, network stats and errors);
//   - the warm solve path with tracing off must stay within the pinned
//     allocation budgets — TestWarmSolveAllocations in equivalence_test.go
//     runs with Options.Telemetry nil and is that guard; the test here
//     pins that a nil trace adds no allocations at all;
//   - a recorded timeline must actually account for the solve: root spans
//     cover ≥95% of the entry point's wall time.

import (
	"reflect"
	"testing"
	"time"

	"treesched/internal/obs"
	"treesched/internal/scenario"
)

// tracedEntryPoints enumerates all 12 solver entry points with an
// explicit telemetry argument (Exact and Greedy take no Options, so
// their hook is the *Traced variant).
var tracedEntryPoints = []struct {
	name string
	run  func(c *Compiled, opts Options, tel *obs.Trace) (*Result, *DistributedResult, error)
}{
	{"tree-unit", func(c *Compiled, o Options, tel *obs.Trace) (*Result, *DistributedResult, error) {
		o.Telemetry = tel
		r, err := c.TreeUnit(o)
		return r, nil, err
	}},
	{"line-unit", func(c *Compiled, o Options, tel *obs.Trace) (*Result, *DistributedResult, error) {
		o.Telemetry = tel
		r, err := c.LineUnit(o)
		return r, nil, err
	}},
	{"narrow", func(c *Compiled, o Options, tel *obs.Trace) (*Result, *DistributedResult, error) {
		o.Telemetry = tel
		r, err := c.NarrowOnly(o)
		return r, nil, err
	}},
	{"arbitrary", func(c *Compiled, o Options, tel *obs.Trace) (*Result, *DistributedResult, error) {
		o.Telemetry = tel
		r, err := c.Arbitrary(o)
		return r, nil, err
	}},
	{"sequential", func(c *Compiled, o Options, tel *obs.Trace) (*Result, *DistributedResult, error) {
		o.Telemetry = tel
		r, err := c.Sequential(o)
		return r, nil, err
	}},
	{"seq-line", func(c *Compiled, o Options, tel *obs.Trace) (*Result, *DistributedResult, error) {
		o.Telemetry = tel
		r, err := c.SequentialLine(o)
		return r, nil, err
	}},
	{"greedy", func(c *Compiled, _ Options, tel *obs.Trace) (*Result, *DistributedResult, error) {
		r, err := c.GreedyTraced(tel)
		return r, nil, err
	}},
	{"exact", func(c *Compiled, _ Options, tel *obs.Trace) (*Result, *DistributedResult, error) {
		r, err := c.ExactTraced(500_000, tel)
		return r, nil, err
	}},
	{"ps", func(c *Compiled, o Options, tel *obs.Trace) (*Result, *DistributedResult, error) {
		o.Telemetry = tel
		r, err := c.PanconesiSozioUnit(o)
		return r, nil, err
	}},
	{"dist-unit", func(c *Compiled, o Options, tel *obs.Trace) (*Result, *DistributedResult, error) {
		o.Telemetry = tel
		d, err := c.DistributedUnit(o)
		return resOf(d), d, err
	}},
	{"dist-narrow", func(c *Compiled, o Options, tel *obs.Trace) (*Result, *DistributedResult, error) {
		o.Telemetry = tel
		d, err := c.DistributedNarrow(o)
		return resOf(d), d, err
	}},
	{"dist-ps", func(c *Compiled, o Options, tel *obs.Trace) (*Result, *DistributedResult, error) {
		o.Telemetry = tel
		d, err := c.DistributedPanconesiSozio(o)
		return resOf(d), d, err
	}},
}

// TestTelemetryEquivalence runs all 12 entry points over every scenario
// and three seeds, once with Telemetry nil and once with a fresh Trace,
// and requires byte-identical outcomes — including identical
// precondition errors where an algorithm does not apply. Telemetry is
// read-only observation; any divergence here is a solver perturbation.
func TestTelemetryEquivalence(t *testing.T) {
	for name, p := range scenarioProblems(t) {
		c, err := Compile(p, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, ep := range tracedEntryPoints {
			for seed := uint64(1); seed <= 3; seed++ {
				opts := Options{Epsilon: 0.25, Seed: seed}
				plain := outcomeOf(ep.run(c, opts, nil))
				tel := obs.NewTrace()
				traced := outcomeOf(ep.run(c, opts, tel))
				if !reflect.DeepEqual(plain, traced) {
					t.Fatalf("%s/%s seed %d: traced solve diverged:\n  %+v\nvs\n  %+v",
						name, ep.name, seed, plain, traced)
				}
				if plain.Err == "" && len(tel.Spans()) == 0 {
					t.Fatalf("%s/%s seed %d: successful traced solve recorded no spans", name, ep.name, seed)
				}
			}
		}
	}
}

// TestTelemetryNilTraceAddsNoAllocations pins the off-switch: a warm
// solve with Options.Telemetry nil allocates exactly as much as before
// the telemetry hooks existed (the budget pinned by
// TestWarmSolveAllocations), and the nil-receiver Trace methods the
// hooks call allocate nothing (TestNilTraceZeroAlloc in internal/obs).
// Here the two are composed: the same warm solve measured with the nil
// hook path must not allocate more than with the hooks short-circuited
// by constant-folding — i.e. the delta budget is zero.
func TestTelemetryNilTraceAddsNoAllocations(t *testing.T) {
	s, ok := scenario.Get("caterpillar-backbone")
	if !ok {
		t.Fatal("missing scenario")
	}
	p, err := s.Generate(scenario.Params{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	solve := func() {
		if _, err := c.TreeUnit(Options{Seed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	solve() // warm the lazy model and scratch pool
	// Runtime noise (GC, and the race runtime when enabled) only ever
	// adds allocations, so the minimum of a few measurements is the
	// honest per-solve cost.
	best := testing.AllocsPerRun(20, solve)
	for i := 0; i < 2; i++ {
		if a := testing.AllocsPerRun(20, solve); a < best {
			best = a
		}
	}
	// The budget itself is pinned by TestWarmSolveAllocations (64); this
	// test fails loudly if the nil-telemetry path starts allocating per
	// solve (e.g. a hook creating a Trace or boxing an interface).
	if best > 64 {
		t.Fatalf("warm solve with Telemetry nil allocates %.1f/solve, budget 64", best)
	}
}

// TestTraceCoversSolveWallTime requires a recorded timeline to account
// for ≥95% of the entry point's wall time: the sum of root spans
// (compile, phase1, verify_lambda, phase2, assemble) against a clock
// around the call. Takes the best coverage of a few runs — the gaps
// between spans are deterministic straight-line code, but a GC pause
// landing between two spans would otherwise flake the bound.
func TestTraceCoversSolveWallTime(t *testing.T) {
	s, ok := scenario.Get("videowall-line")
	if !ok {
		t.Fatal("missing scenario")
	}
	p, err := s.Generate(scenario.Params{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LineUnit(Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for run := 0; run < 5; run++ {
		tel := obs.NewTrace()
		begin := time.Now()
		if _, err := c.LineUnit(Options{Seed: 1, Telemetry: tel}); err != nil {
			t.Fatal(err)
		}
		wall := time.Since(begin).Nanoseconds()
		if wall == 0 {
			continue
		}
		if cov := float64(tel.RootNs()) / float64(wall); cov > best {
			best = cov
		}
	}
	if best < 0.95 {
		t.Fatalf("trace covers %.1f%% of solve wall time, want ≥95%%", best*100)
	}
}
