package core

import (
	"fmt"
	"math/rand"
	"testing"

	"treesched/internal/gen"
	"treesched/internal/instance"
	"treesched/internal/treedecomp"
	"treesched/internal/verify"
)

// TestAlgorithmTopologyMatrix sweeps every centralized algorithm across
// every topology family and height regime it supports, asserting the full
// postcondition set each time: feasibility, certificate ≤ bound, and
// profit within the dual upper bound. This is the systematic coverage
// net — any regression in decomposition, layering, raising or selection
// trips it.
func TestAlgorithmTopologyMatrix(t *testing.T) {
	shapes := []gen.TreeShape{
		gen.ShapeRandom, gen.ShapeBinary, gen.ShapeCaterpillar,
		gen.ShapePath, gen.ShapeStar, gen.ShapeSpider,
	}
	type algo struct {
		name string
		unit bool
		run  func(p *instanceProblemT, seed uint64) (*Result, error)
	}
	algos := []algo{
		{"tree-unit", true, func(p *instanceProblemT, s uint64) (*Result, error) {
			return TreeUnit(p, Options{Epsilon: 0.25, Seed: s})
		}},
		{"sequential", true, func(p *instanceProblemT, s uint64) (*Result, error) {
			return Sequential(p, Options{})
		}},
		{"arbitrary", false, func(p *instanceProblemT, s uint64) (*Result, error) {
			return Arbitrary(p, Options{Epsilon: 0.25, Seed: s})
		}},
		{"greedy", false, func(p *instanceProblemT, s uint64) (*Result, error) {
			return Greedy(p)
		}},
	}
	rng := rand.New(rand.NewSource(99))
	for _, shape := range shapes {
		for _, a := range algos {
			t.Run(fmt.Sprintf("%s/%s", a.name, shape), func(t *testing.T) {
				cfg := gen.TreeConfig{
					N: 17, Trees: 2, Demands: 10, Shape: shape, Unit: a.unit,
				}
				if !a.unit {
					cfg.HMin, cfg.HMax = 0.1, 1.0
				}
				p := gen.TreeProblem(cfg, rng)
				res, err := a.run(p, 7)
				if err != nil {
					t.Fatal(err)
				}
				if err := verify.Solution(p, res.Selected); err != nil {
					t.Fatal(err)
				}
				if res.Bound > 0 && res.CertifiedRatio > res.Bound+1e-6 {
					t.Fatalf("certified ratio %.3f > bound %.3f", res.CertifiedRatio, res.Bound)
				}
				if res.Profit > res.DualUB+1e-6 && res.Bound > 0 {
					t.Fatalf("profit %g above its own dual bound %g", res.Profit, res.DualUB)
				}
			})
		}
	}
}

// instanceProblemT keeps the matrix signatures readable.
type instanceProblemT = instance.Problem

// TestDecompositionKindMatrix runs TreeUnit under all three decomposition
// kinds on all shapes — the framework must stay correct (only ∆ and the
// epoch count change).
func TestDecompositionKindMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, shape := range []gen.TreeShape{gen.ShapeRandom, gen.ShapePath, gen.ShapeStar} {
		for _, kind := range []treedecomp.Kind{treedecomp.KindIdeal, treedecomp.KindBalancing, treedecomp.KindRootFixing} {
			p := gen.TreeProblem(gen.TreeConfig{N: 20, Trees: 2, Demands: 10, Unit: true, Shape: shape}, rng)
			res, err := TreeUnit(p, Options{Epsilon: 0.25, Seed: 3, DecompKind: kind, CollectTrace: true})
			if err != nil {
				t.Fatalf("%v/%v: %v", shape, kind, err)
			}
			if err := verify.Solution(p, res.Selected); err != nil {
				t.Fatalf("%v/%v: %v", shape, kind, err)
			}
			if err := CheckInterference(res.Model, res.Trace); err != nil {
				t.Fatalf("%v/%v: %v", shape, kind, err)
			}
			if res.CertifiedRatio > res.Bound+1e-6 {
				t.Fatalf("%v/%v: ratio above bound", shape, kind)
			}
		}
	}
}
