package core

import (
	"math"
	"math/rand"
	"testing"

	"treesched/internal/gen"
	"treesched/internal/verify"
)

func TestDistributedMatchesCentralizedTreeUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		p := gen.TreeProblem(gen.TreeConfig{
			N: 10 + rng.Intn(25), Trees: 1 + rng.Intn(3), Demands: 4 + rng.Intn(16), Unit: true,
		}, rng)
		seed := uint64(100 + trial)
		central, err := TreeUnit(p, Options{Epsilon: 0.25, Seed: seed})
		if err != nil {
			t.Fatalf("trial %d central: %v", trial, err)
		}
		distrib, err := DistributedUnit(p, Options{Epsilon: 0.25, Seed: seed})
		if err != nil {
			t.Fatalf("trial %d distributed: %v", trial, err)
		}
		if !SameSelection(central, distrib.Result) {
			t.Fatalf("trial %d: selections differ: central %v vs distributed %v",
				trial, central.Selected, distrib.Selected)
		}
		if math.Abs(central.Profit-distrib.Profit) > 1e-9 {
			t.Fatalf("trial %d: profits differ: %g vs %g", trial, central.Profit, distrib.Profit)
		}
		if math.Abs(central.DualUB-distrib.DualUB) > 1e-6*(1+central.DualUB) {
			t.Fatalf("trial %d: dual objectives differ: %g vs %g", trial, central.DualUB, distrib.DualUB)
		}
		if err := verify.Solution(p, distrib.Selected); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if distrib.Net.Rounds == 0 || distrib.Net.Messages == 0 {
			t.Fatalf("trial %d: no communication recorded: %+v", trial, distrib.Net)
		}
	}
}

func TestDistributedMatchesCentralizedLineUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 6; trial++ {
		p := gen.LineProblem(gen.LineConfig{
			Slots: 16 + rng.Intn(24), Resources: 1 + rng.Intn(3), Demands: 4 + rng.Intn(10), Unit: true,
		}, rng)
		seed := uint64(trial)
		central, err := LineUnit(p, Options{Epsilon: 0.25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		distrib, err := DistributedUnit(p, Options{Epsilon: 0.25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !SameSelection(central, distrib.Result) {
			t.Fatalf("trial %d: selections differ", trial)
		}
	}
}

func TestDistributedNarrowMatchesCentralized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		p := gen.TreeProblem(gen.TreeConfig{
			N: 10 + rng.Intn(15), Trees: 1 + rng.Intn(2), Demands: 4 + rng.Intn(10),
			HMin: 0.2, HMax: 0.5,
		}, rng)
		seed := uint64(trial)
		central, err := NarrowOnly(p, Options{Epsilon: 0.25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		distrib, err := DistributedNarrow(p, Options{Epsilon: 0.25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !SameSelection(central, distrib.Result) {
			t.Fatalf("trial %d: narrow selections differ", trial)
		}
		if err := verify.Solution(p, distrib.Selected); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDistributedNarrowCapacitated(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := gen.TreeProblem(gen.TreeConfig{
		N: 12, Trees: 2, Demands: 8, HMin: 0.2, HMax: 0.45,
		Capacity: 1.5, CapJitter: 0.4,
	}, rng)
	seed := uint64(9)
	central, err := NarrowOnly(p, Options{Epsilon: 0.25, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	distrib, err := DistributedNarrow(p, Options{Epsilon: 0.25, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !SameSelection(central, distrib.Result) {
		t.Fatal("capacitated narrow selections differ")
	}
	if err := verify.Solution(p, distrib.Selected); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedRoundsScaleWithLogN(t *testing.T) {
	// Not a strict bound, but rounds should stay polylogarithmic-ish:
	// quadrupling n should far less than quadruple the rounds.
	rng := rand.New(rand.NewSource(5))
	rounds := func(n int) int {
		p := gen.TreeProblem(gen.TreeConfig{N: n, Trees: 2, Demands: 20, Unit: true}, rng)
		d, err := DistributedUnit(p, Options{Epsilon: 0.25, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return d.Net.Rounds
	}
	r16, r256 := rounds(16), rounds(256)
	if r256 > 16*r16 {
		t.Fatalf("rounds grew superlinearly with n: %d (n=16) vs %d (n=256)", r16, r256)
	}
	t.Logf("rounds: n=16 → %d, n=256 → %d", r16, r256)
}
