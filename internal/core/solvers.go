package core

import (
	"fmt"

	"treesched/internal/instance"
	"treesched/internal/lp"
	"treesched/internal/model"
	"treesched/internal/obs"
	"treesched/internal/treedecomp"
)

// Result is the outcome of one algorithm run.
type Result struct {
	// Name of the algorithm variant.
	Name string
	// Selected holds the chosen demand instances (descriptors, so results
	// from split sub-runs can be merged).
	Selected []instance.Inst
	// Profit is the total profit of Selected.
	Profit float64
	// DualUB is an upper bound on p(Opt) certified by weak duality:
	// Σ dual objective / λ over the (sub)runs.
	DualUB float64
	// CertifiedRatio = DualUB / Profit ≥ p(Opt)/p(S): an instance-specific
	// certificate that the approximation bound held.
	CertifiedRatio float64
	// Bound is the paper's worst-case guarantee for this variant, e.g.
	// 7/(1−ε) for unit trees.
	Bound float64
	// Lambda is the verified slackness of the final dual assignment.
	Lambda float64
	// Trace is the raise history (nil unless requested).
	Trace *Trace
	// Model is the compiled model (nil for combined runs; see Parts).
	Model *model.Model
	// Parts holds the sub-results of combined (wide/narrow) runs.
	Parts []*Result
}

// Options configures a run.
type Options struct {
	// Epsilon is the ε of the (c+ε) guarantees. Default 0.25.
	Epsilon float64
	// Seed drives the deterministic Luby priorities.
	Seed uint64
	// CollectTrace records all raise events (needed by the interference
	// checker and the E8 experiment).
	CollectTrace bool
	// DecompKind overrides the tree decomposition (default ideal) for
	// ablations.
	DecompKind treedecomp.Kind
	// FixedRounds makes the distributed drivers run the paper's
	// deterministic schedule — exactly FixedSteps steps per stage and a
	// fixed Luby phase budget — eliminating global aggregations entirely
	// (§5 "Distributed Implementation": with pmax/pmin known, "we can
	// count the number of epochs, stages and iterations exactly"). The
	// execution differs from the adaptive one (different step numbering
	// feeds the priority function), but all certificates still hold.
	// Multi-stage schedules only. Ignored by centralized drivers.
	FixedRounds bool
	// DistWorkers selects the BSP engine of the distributed drivers:
	// ≥ 0 runs the sharded worker pool (0 = one worker per GOMAXPROCS
	// core — the default, which carries 100k-processor networks on a
	// handful of goroutines), < 0 the goroutine-per-processor reference
	// runtime (the benchmark anchor). Stats and selections are
	// byte-identical across all settings; only execution cost differs.
	// Ignored by centralized drivers.
	DistWorkers int
	// CompileWorkers bounds the model-build fan-out of any lazy
	// compilation this solve triggers: 0 keeps the compilation's current
	// setting (default GOMAXPROCS), 1 (or any negative value) is the
	// serial oracle path, ≥ 2 caps the goroutine count. Models are
	// byte-identical at every setting — shard boundaries are fixed
	// functions of the instance index and all reductions run serially —
	// so this knob only moves compile wall-clock, never output.
	// Centralized and distributed drivers alike.
	CompileWorkers int
	// Telemetry, when non-nil, records a phase-level span timeline of the
	// solve — compile (with the model.BuildStats breakdown when this call
	// performed the build), Phase1 per epoch and stage (steps, raises,
	// Luby MIS phases), the λ-certificate verification, Phase2 and result
	// assembly, plus per-superstep round samples for the distributed
	// drivers. Telemetry is strictly read-only observation: it never
	// perturbs results (the equivalence suite pins byte-identical output
	// with and without it), and a nil Telemetry costs only predictable
	// nil-checks on the hot path (the alloc-budget tests pin warm-solve
	// allocation counts unchanged). A Trace belongs to one solve call on
	// one goroutine; concurrent solves need one Trace each. The serving
	// layer strips Telemetry from cache keys — it never identifies a
	// result.
	Telemetry *obs.Trace
}

func (o Options) withDefaults() Options {
	if o.Epsilon == 0 {
		o.Epsilon = 0.25
	}
	return o
}

// ErrCertificate tags slackness-certificate failures: the dual
// assignment produced by a run did not λ-satisfy every instance. This is
// an internal invariant violation (a solver bug), never a property of
// the input — callers serving requests should map it to a server-side
// error, not a client error.
var ErrCertificate = fmt.Errorf("slackness certificate failed")

// runPhases executes phase 1 + verification + phase 2 on a compiled model
// and assembles a Result. The solve runs entirely on the solverModel's
// pooled scratch: everything scratch-aliased (duals, stack, selection) is
// consumed before the deferred release, and only the Result escapes.
func runPhases(name string, sm *solverModel, rule lp.Rule, sched Schedule, opts Options, bound float64) (*Result, error) {
	m := sm.m
	tel := opts.Telemetry
	var trace *Trace
	if opts.CollectTrace {
		trace = &Trace{}
	}
	sc := sm.acquire()
	defer sm.release(sc)
	sp := tel.Begin("phase1")
	duals, stack, err := phase1(m, sm.misFn(), rule, sched, opts.Seed, trace, tel, sc)
	if err != nil {
		tel.End(sp)
		return nil, err
	}
	if tel != nil {
		tel.Add(sp, "stack_sets", int64(len(stack)))
	}
	tel.End(sp)
	sp = tel.Begin("verify_lambda")
	if len(m.Insts) > 0 {
		if err := lp.VerifyLambdaSatisfied(rule, m, duals, sched.Lambda); err != nil {
			tel.End(sp)
			return nil, fmt.Errorf("core: %s: %w: %v", name, ErrCertificate, err)
		}
	}
	tel.End(sp)
	sp = tel.Begin("phase2")
	sel := phase2(m, stack, sc.load, sc.used, sc.selected[:0])
	sc.selected = sel
	if tel != nil {
		tel.Add(sp, "selected", int64(len(sel)))
	}
	tel.End(sp)
	sp = tel.Begin("assemble")
	res := &Result{
		Name:   name,
		Lambda: sched.Lambda,
		Bound:  bound,
		Trace:  trace,
		Model:  m,
	}
	for _, i := range sel {
		res.Selected = append(res.Selected, m.Insts[i])
		res.Profit += m.Insts[i].Profit
	}
	res.DualUB = lp.DualObjective(rule, m, duals) / sched.Lambda
	if res.Profit > 0 {
		res.CertifiedRatio = res.DualUB / res.Profit
	}
	tel.End(sp)
	return res, nil
}

// TreeUnit runs the paper's main algorithm (§5, Theorem 5.3): the
// distributed (7+ε)-approximation for unit-height demands on tree
// networks, using the ideal tree decomposition (∆=6) and the multi-stage
// schedule (λ = 1−ε). This entry point uses the fast centralized driver;
// see DistributedRun for the goroutine message-passing driver.
func TreeUnit(p *instance.Problem, opts Options) (*Result, error) {
	c, err := Compile(p, opts.DecompKind)
	if err != nil {
		return nil, err
	}
	return c.TreeUnit(opts)
}

// TreeUnit is the compiled-model form of the package-level TreeUnit.
func (c *Compiled) TreeUnit(opts Options) (*Result, error) {
	opts = c.prep(opts)
	if c.p.Kind != instance.KindTree {
		return nil, fmt.Errorf("core: TreeUnit on %v problem", c.p.Kind)
	}
	if !c.p.UnitHeight() {
		return nil, fmt.Errorf("core: TreeUnit requires unit heights; use TreeArbitrary")
	}
	sm, err := telModel(opts.Telemetry, c.fullModel)
	if err != nil {
		return nil, err
	}
	m := sm.m
	sched := NewSchedule(m, UnitXi(m.Delta), opts.Epsilon)
	bound := float64(m.Delta+1) / sched.Lambda
	return runPhases("tree-unit", sm, lp.Unit{}, sched, opts, bound)
}

// LineUnit runs the improved unit-height line-network algorithm with
// windows (§7, Theorem 7.1): ∆=3 length-doubling layers, λ = 1−ε, bound
// 4+ε (vs Panconesi–Sozio's 20+ε).
func LineUnit(p *instance.Problem, opts Options) (*Result, error) {
	c, err := Compile(p, opts.DecompKind)
	if err != nil {
		return nil, err
	}
	return c.LineUnit(opts)
}

// LineUnit is the compiled-model form of the package-level LineUnit.
func (c *Compiled) LineUnit(opts Options) (*Result, error) {
	opts = c.prep(opts)
	if c.p.Kind != instance.KindLine {
		return nil, fmt.Errorf("core: LineUnit on %v problem", c.p.Kind)
	}
	if !c.p.UnitHeight() {
		return nil, fmt.Errorf("core: LineUnit requires unit heights; use LineArbitrary")
	}
	sm, err := telModel(opts.Telemetry, c.fullModel)
	if err != nil {
		return nil, err
	}
	m := sm.m
	sched := NewSchedule(m, UnitXi(m.Delta), opts.Epsilon)
	bound := float64(m.Delta+1) / sched.Lambda
	return runPhases("line-unit", sm, lp.Unit{}, sched, opts, bound)
}

// narrowRule selects the capacity-aware rule when the problem declares
// non-uniform bandwidths.
func narrowRule(p *instance.Problem) lp.Rule {
	if p.Capacities != nil {
		return lp.Capacitated{}
	}
	return lp.Narrow{}
}

// NarrowOnly runs the §6.1 narrow-instance algorithm (Lemma 6.2) on a
// problem whose demands all have effective height ≤ 1/2. The guarantee is
// (2∆²+1)/(1−ε): 73+ε on trees, 19+ε on lines.
func NarrowOnly(p *instance.Problem, opts Options) (*Result, error) {
	c, err := Compile(p, opts.DecompKind)
	if err != nil {
		return nil, err
	}
	return c.NarrowOnly(opts)
}

// NarrowOnly is the compiled-model form of the package-level NarrowOnly.
func (c *Compiled) NarrowOnly(opts Options) (*Result, error) {
	opts = c.prep(opts)
	sm, err := telModel(opts.Telemetry, c.fullModel)
	if err != nil {
		return nil, err
	}
	m := sm.m
	hmin, err := effHMin(m, "NarrowOnly")
	if err != nil {
		return nil, err
	}
	sched := NewSchedule(m, NarrowXi(m.Delta, hmin), opts.Epsilon)
	bound := float64(2*m.Delta*m.Delta+1) / sched.Lambda
	return runPhases("narrow", sm, narrowRule(c.p), sched, opts, bound)
}

// Arbitrary runs the combined arbitrary-height algorithm (§6, Theorem 6.3
// for trees; §7, Theorem 7.2 for lines): demands are classified wide
// (effective height > 1/2) or narrow, the unit-height algorithm handles
// the wide class, the narrow algorithm the rest, and per network the more
// profitable of the two sub-solutions is kept. Bounds: 80+ε (trees),
// 23+ε (lines).
func Arbitrary(p *instance.Problem, opts Options) (*Result, error) {
	c, err := Compile(p, opts.DecompKind)
	if err != nil {
		return nil, err
	}
	return c.Arbitrary(opts)
}

// Arbitrary is the compiled-model form of the package-level Arbitrary.
// The demand-level wide/narrow classification keeps every demand entirely
// in one class, which the combining step relies on (§6 "Overall
// Algorithm"); the two sub-models are built once per Compiled.
func (c *Compiled) Arbitrary(opts Options) (*Result, error) {
	opts = c.prep(opts)
	tel := opts.Telemetry
	sp := tel.Begin("compile")
	wideModel, narrowModel, err := c.splitModels()
	tel.End(sp)
	if err != nil {
		return nil, err
	}

	var parts []*Result
	if len(wideModel.m.Insts) > 0 {
		m := wideModel.m
		sched := NewSchedule(m, UnitXi(m.Delta), opts.Epsilon)
		r, err := runPhases("wide", wideModel, lp.Unit{}, sched, opts,
			float64(m.Delta+1)/sched.Lambda)
		if err != nil {
			return nil, err
		}
		parts = append(parts, r)
	}
	if len(narrowModel.m.Insts) > 0 {
		m := narrowModel.m
		hmin := 1.0
		for i := range m.Insts {
			if eff := m.EffHeight(int32(i)); eff < hmin {
				hmin = eff
			}
		}
		sched := NewSchedule(m, NarrowXi(m.Delta, hmin), opts.Epsilon)
		r, err := runPhases("narrow", narrowModel, narrowRule(c.p), sched, opts,
			float64(2*m.Delta*m.Delta+1)/sched.Lambda)
		if err != nil {
			return nil, err
		}
		parts = append(parts, r)
	}
	return combinePerNetwork(c.p, "arbitrary", parts)
}

// combinePerNetwork merges sub-results by keeping, for every network, the
// sub-solution with higher profit on that network (§6 "Overall
// Algorithm"). Feasibility holds because each sub-solution is feasible per
// network and the classes partition the demands.
func combinePerNetwork(p *instance.Problem, name string, parts []*Result) (*Result, error) {
	res := &Result{Name: name, Parts: parts, Lambda: 1}
	if len(parts) == 0 {
		return res, nil
	}
	if len(parts) == 1 {
		only := parts[0]
		return &Result{
			Name: name, Selected: only.Selected, Profit: only.Profit,
			DualUB: only.DualUB, CertifiedRatio: only.CertifiedRatio,
			Bound: only.Bound, Lambda: only.Lambda, Parts: parts,
		}, nil
	}
	r := p.NumNetworks()
	profitOn := make([][]float64, len(parts))
	for pi, part := range parts {
		profitOn[pi] = make([]float64, r)
		for _, d := range part.Selected {
			profitOn[pi][d.Net] += d.Profit
		}
	}
	for q := 0; q < r; q++ {
		best := 0
		for pi := range parts {
			if profitOn[pi][q] > profitOn[best][q] {
				best = pi
			}
		}
		for _, d := range parts[best].Selected {
			if int(d.Net) == q {
				res.Selected = append(res.Selected, d)
				res.Profit += d.Profit
			}
		}
	}
	res.Bound = 0
	for _, part := range parts {
		res.DualUB += part.DualUB
		res.Bound += part.Bound
		if part.Lambda < res.Lambda {
			res.Lambda = part.Lambda
		}
	}
	if res.Profit > 0 {
		res.CertifiedRatio = res.DualUB / res.Profit
	}
	return res, nil
}

// PanconesiSozioUnit is the baseline of [15,16] reformulated in the
// framework (see the paper's Remark after Theorem 5.3): the same
// length-doubling layered decomposition but a single stage per epoch with
// fixed threshold λ = 1/(5+ε), giving the guarantee 4(5+ε) = 20+ε on line
// networks. It is restricted to lines (∆=3): single-stage kill chains grow
// profits by (4+ε)/(∆+1) per kill, which only exceeds 1 when ∆ ≤ 3 —
// exactly why [16] could not go beyond line networks and the multi-stage
// schedule of §5 is needed for trees. The arbitrary-height baseline of
// [16] is not reproduced: the supplied text does not specify its raise
// rule (see DESIGN.md).
func PanconesiSozioUnit(p *instance.Problem, opts Options) (*Result, error) {
	c, err := Compile(p, opts.DecompKind)
	if err != nil {
		return nil, err
	}
	return c.PanconesiSozioUnit(opts)
}

// PanconesiSozioUnit is the compiled-model form of the package-level
// PanconesiSozioUnit.
func (c *Compiled) PanconesiSozioUnit(opts Options) (*Result, error) {
	opts = c.prep(opts)
	if c.p.Kind != instance.KindLine {
		return nil, fmt.Errorf("core: PanconesiSozioUnit is a line-network baseline (got %v)", c.p.Kind)
	}
	if !c.p.UnitHeight() {
		return nil, fmt.Errorf("core: PanconesiSozioUnit requires unit heights")
	}
	sm, err := telModel(opts.Telemetry, c.fullModel)
	if err != nil {
		return nil, err
	}
	m := sm.m
	lambda := 1 / (5 + opts.Epsilon)
	sched := NewSingleStageSchedule(m, lambda)
	bound := float64(m.Delta+1) / lambda
	return runPhases("panconesi-sozio-unit", sm, lp.Unit{}, sched, opts, bound)
}
