package core

import (
	"encoding/json"
	"math/rand"
	"testing"

	"treesched/internal/gen"
	"treesched/internal/instance"
)

// The WithJobs equivalence guard (the online-session correctness
// property): after ANY sequence of add/remove deltas — small ones served
// by the incremental rebuild, large ones by the churn fallback — solving
// the delta-compiled problem must be byte-identical to a from-scratch
// Compile + solve of the same effective instance, for every algorithm
// applicable to the problem class.

// wjSolvers maps algorithm names to compiled solves returning a
// canonical, comparable form.
var wjSolvers = map[string]func(c *Compiled, opts Options) (*Result, error){
	"tree-unit":  (*Compiled).TreeUnit,
	"line-unit":  (*Compiled).LineUnit,
	"narrow":     (*Compiled).NarrowOnly,
	"arbitrary":  (*Compiled).Arbitrary,
	"sequential": (*Compiled).Sequential,
	"seq-line":   (*Compiled).SequentialLine,
	"ps":         (*Compiled).PanconesiSozioUnit,
	"greedy":     func(c *Compiled, _ Options) (*Result, error) { return c.Greedy() },
	"dist-unit": func(c *Compiled, opts Options) (*Result, error) {
		dr, err := c.DistributedUnit(opts)
		if err != nil {
			return nil, err
		}
		return dr.Result, nil
	},
}

// canonical marshals the deterministic face of a Result: everything a
// serving response would carry. Byte equality of two canonical forms is
// the test's identity notion.
func canonical(t *testing.T, r *Result) []byte {
	t.Helper()
	sel := r.Selected
	if sel == nil {
		sel = []instance.Inst{}
	}
	data, err := json.Marshal(struct {
		Name           string
		Selected       []instance.Inst
		Profit         float64
		DualUB         float64
		CertifiedRatio float64
		Bound          float64
		Lambda         float64
	}{r.Name, sel, r.Profit, r.DualUB, r.CertifiedRatio, r.Bound, r.Lambda})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

type wjConfig struct {
	name  string
	algos []string
	gen   func(demands int, rng *rand.Rand) *instance.Problem
}

var wjConfigs = []wjConfig{
	{
		name:  "tree-unit",
		algos: []string{"tree-unit", "sequential", "greedy", "arbitrary", "dist-unit"},
		gen: func(m int, rng *rand.Rand) *instance.Problem {
			return gen.TreeProblem(gen.TreeConfig{N: 20, Trees: 2, Demands: m, Unit: true, AccessProb: 0.6}, rng)
		},
	},
	{
		name:  "line-unit",
		algos: []string{"line-unit", "ps", "seq-line", "greedy", "arbitrary"},
		gen: func(m int, rng *rand.Rand) *instance.Problem {
			return gen.LineProblem(gen.LineConfig{Slots: 24, Resources: 2, Demands: m, Unit: true, AccessProb: 0.6}, rng)
		},
	},
	{
		name:  "tree-capacitated",
		algos: []string{"arbitrary", "greedy"},
		gen: func(m int, rng *rand.Rand) *instance.Problem {
			return gen.TreeProblem(gen.TreeConfig{N: 20, Trees: 2, Demands: m, HMin: 0.1, HMax: 1.0, Capacity: 1.5, CapJitter: 0.4, AccessProb: 0.6}, rng)
		},
	},
	{
		name:  "tree-narrow",
		algos: []string{"narrow", "greedy", "arbitrary"},
		gen: func(m int, rng *rand.Rand) *instance.Problem {
			return gen.TreeProblem(gen.TreeConfig{N: 20, Trees: 2, Demands: m, HMin: 0.05, HMax: 0.5, AccessProb: 0.6}, rng)
		},
	},
}

// TestWithJobsEquivalence fuzzes event sequences over every config × 3
// seeds: each round applies a random delta through WithJobs and asserts
// the solve output is byte-identical to a cold Compile + solve of the
// effective problem, for every applicable algorithm. One round per seed
// forces churn past the threshold so the fallback path is exercised too.
func TestWithJobsEquivalence(t *testing.T) {
	for _, cfg := range wjConfigs {
		for _, seed := range []int64{1, 2, 3} {
			t.Run(cfg.name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				pool := cfg.gen(48, rng)
				reservoir := pool.Demands[16:]
				next := 0

				cur := *pool
				cur.Demands = append([]instance.Demand(nil), pool.Demands[:16]...)
				c, err := Compile(&cur, 0)
				if err != nil {
					t.Fatal(err)
				}
				// The delta path requires a built model; a first solve
				// (any algorithm) builds it, as a session's first resolve
				// would.
				if _, err := wjSolvers[cfg.algos[0]](c, Options{Seed: uint64(seed)}); err != nil {
					t.Fatal(err)
				}

				for round := 0; round < 5; round++ {
					m := len(c.Problem().Demands)
					var removed []int
					var added []instance.Demand
					if round == 3 {
						// Past-threshold round: remove most of the set.
						for i := 0; i < m*3/4; i++ {
							removed = append(removed, i)
						}
					} else {
						for i := 0; i < m; i++ {
							if rng.Intn(8) == 0 {
								removed = append(removed, i)
							}
						}
					}
					for k := rng.Intn(4); k > 0; k-- {
						added = append(added, reservoir[next%len(reservoir)])
						next++
					}
					nc, err := c.WithJobs(added, removed)
					if err != nil {
						t.Fatalf("round %d: WithJobs: %v", round, err)
					}
					if round == 3 && nc.Incremental() {
						t.Fatalf("round %d: churn %d/%d should have fallen back", round, len(removed)+len(added), m)
					}

					ref, err := Compile(nc.Problem(), 0)
					if err != nil {
						t.Fatalf("round %d: reference compile: %v", round, err)
					}
					for _, algo := range cfg.algos {
						got, err := wjSolvers[algo](nc, Options{Seed: uint64(seed)})
						if err != nil {
							t.Fatalf("round %d: %s on delta: %v", round, algo, err)
						}
						want, err := wjSolvers[algo](ref, Options{Seed: uint64(seed)})
						if err != nil {
							t.Fatalf("round %d: %s on reference: %v", round, algo, err)
						}
						g, w := canonical(t, got), canonical(t, want)
						if string(g) != string(w) {
							t.Fatalf("round %d: %s diverged (incremental=%t)\n got %s\nwant %s",
								round, algo, nc.Incremental(), g, w)
						}
						// The pooled re-solve must reproduce itself.
						again, err := wjSolvers[algo](nc, Options{Seed: uint64(seed)})
						if err != nil {
							t.Fatalf("round %d: %s re-solve: %v", round, algo, err)
						}
						if string(canonical(t, again)) != string(g) {
							t.Fatalf("round %d: %s not deterministic on pooled scratch", round, algo)
						}
					}
					c = nc
				}
			})
		}
	}
}

// TestWithJobsRejects pins the argument validation.
func TestWithJobsRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := gen.TreeProblem(gen.TreeConfig{N: 12, Trees: 1, Demands: 6, Unit: true}, rng)
	c, err := Compile(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WithJobs(nil, []int{6}); err == nil {
		t.Fatal("out-of-range removal did not error")
	}
	if _, err := c.WithJobs(nil, []int{1, 1}); err == nil {
		t.Fatal("duplicate removal did not error")
	}
	bad := p.Demands[0]
	bad.Access = []int{5}
	if _, err := c.WithJobs([]instance.Demand{bad}, nil); err == nil {
		t.Fatal("invalid added demand did not error")
	}
}

// TestWithJobsIncrementalFlag asserts the delta path actually engages for
// small churn once a model exists, and that WithJobs before any solve
// falls back cleanly.
func TestWithJobsIncrementalFlag(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := gen.LineProblem(gen.LineConfig{Slots: 24, Resources: 2, Demands: 20, Unit: true}, rng)
	c, err := Compile(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	nc, err := c.WithJobs(nil, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if nc.Incremental() {
		t.Fatal("WithJobs before the first solve cannot be incremental")
	}
	if _, err := c.LineUnit(Options{}); err != nil {
		t.Fatal(err)
	}
	nc, err = c.WithJobs(nil, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !nc.Incremental() {
		t.Fatal("small-churn WithJobs after a solve should take the delta path")
	}
}
