package core

import (
	"math/rand"
	"testing"

	"treesched/internal/gen"
	"treesched/internal/graph"
	"treesched/internal/instance"
	"treesched/internal/verify"
)

func TestEmptyDemandSet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := &instance.Problem{
		Kind:        instance.KindTree,
		NumVertices: 5,
		Trees:       []*graph.Tree{graph.RandomTree(5, rng)},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func() (*Result, error){
		"tree-unit":  func() (*Result, error) { return TreeUnit(p, Options{}) },
		"sequential": func() (*Result, error) { return Sequential(p, Options{}) },
		"arbitrary":  func() (*Result, error) { return Arbitrary(p, Options{}) },
		"exact":      func() (*Result, error) { return Exact(p, 0) },
		"greedy":     func() (*Result, error) { return Greedy(p) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Profit != 0 || len(res.Selected) != 0 {
			t.Fatalf("%s: non-empty result on empty problem", name)
		}
	}
	d, err := DistributedUnit(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Profit != 0 {
		t.Fatal("distributed: non-empty result on empty problem")
	}
}

func TestAllDemandsIdentical(t *testing.T) {
	// m copies of the same demand on one tree: exactly one can win.
	rng := rand.New(rand.NewSource(2))
	tr := graph.RandomTree(10, rng)
	p := &instance.Problem{Kind: instance.KindTree, NumVertices: 10, Trees: []*graph.Tree{tr}}
	for i := 0; i < 8; i++ {
		p.Demands = append(p.Demands, instance.Demand{
			ID: i, U: 0, V: 9, Profit: 1, Height: 1, Access: []int{0},
		})
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := TreeUnit(p, Options{Epsilon: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 1 {
		t.Fatalf("identical overlapping demands: %d selected, want 1", len(res.Selected))
	}
	opt, err := Exact(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Profit != 1 {
		t.Fatalf("optimum %g want 1", opt.Profit)
	}
}

func TestSpanningDemandOnPathTree(t *testing.T) {
	// One demand spanning the entire path plus per-edge demands: the
	// optimum picks the per-edge demands when they outweigh the spanner.
	n := 9
	p := &instance.Problem{Kind: instance.KindTree, NumVertices: n, Trees: []*graph.Tree{graph.NewPath(n)}}
	p.Demands = append(p.Demands, instance.Demand{ID: 0, U: 0, V: n - 1, Profit: 3, Height: 1, Access: []int{0}})
	id := 1
	for v := 0; v+1 < n; v += 2 {
		p.Demands = append(p.Demands, instance.Demand{ID: id, U: v, V: v + 1, Profit: 1, Height: 1, Access: []int{0}})
		id++
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	opt, err := Exact(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Profit != 4 { // four disjoint unit-profit demands beat the 3-profit spanner
		t.Fatalf("optimum %g want 4", opt.Profit)
	}
	res, err := TreeUnit(p, Options{Epsilon: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Profit/res.Profit > res.Bound {
		t.Fatalf("ratio %.3f above bound", opt.Profit/res.Profit)
	}
}

func TestTwoVertexTree(t *testing.T) {
	p := &instance.Problem{Kind: instance.KindTree, NumVertices: 2, Trees: []*graph.Tree{graph.NewPath(2)},
		Demands: []instance.Demand{
			{ID: 0, U: 0, V: 1, Profit: 2, Height: 1, Access: []int{0}},
			{ID: 1, U: 1, V: 0, Profit: 5, Height: 1, Access: []int{0}},
		}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := TreeUnit(p, Options{Epsilon: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 1 || res.Selected[0].Demand != 1 {
		t.Fatalf("want the profit-5 demand alone, got %v", res.Selected)
	}
	seq, err := Sequential(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Profit != 5 {
		t.Fatalf("sequential picked %g, want 5", seq.Profit)
	}
}

func TestSingleSlotLineProblem(t *testing.T) {
	p := &instance.Problem{Kind: instance.KindLine, NumSlots: 1, NumResources: 2,
		Demands: []instance.Demand{
			{ID: 0, Release: 0, Deadline: 0, ProcTime: 1, Profit: 1, Height: 1, Access: []int{0, 1}},
			{ID: 1, Release: 0, Deadline: 0, ProcTime: 1, Profit: 2, Height: 1, Access: []int{0}},
		}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := LineUnit(p, Options{Epsilon: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Both demands fit: demand 1 on resource 0, demand 0 on resource 1.
	if res.Profit != 3 {
		t.Fatalf("profit %g want 3 (both demands placeable)", res.Profit)
	}
	if err := verify.Solution(p, res.Selected); err != nil {
		t.Fatal(err)
	}
}

func TestWideOnlyArbitraryEqualsUnitBehavior(t *testing.T) {
	// All heights > 1/2: Arbitrary must reduce to the wide (unit-rule)
	// path alone.
	rng := rand.New(rand.NewSource(5))
	p := gen.TreeProblem(gen.TreeConfig{N: 14, Trees: 2, Demands: 8, HMin: 0.6, HMax: 1.0}, rng)
	res, err := Arbitrary(p, Options{Epsilon: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 1 || res.Parts[0].Name != "wide" {
		t.Fatalf("wide-only input produced parts %v", len(res.Parts))
	}
	if err := verify.Solution(p, res.Selected); err != nil {
		t.Fatal(err)
	}
}

func TestNarrowOnlyArbitrarySinglePart(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := gen.TreeProblem(gen.TreeConfig{N: 14, Trees: 2, Demands: 8, HMin: 0.1, HMax: 0.45}, rng)
	res, err := Arbitrary(p, Options{Epsilon: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 1 || res.Parts[0].Name != "narrow" {
		t.Fatal("narrow-only input should produce exactly the narrow part")
	}
}
