package core

import (
	"math/rand"
	"testing"

	"treesched/internal/gen"
	"treesched/internal/instance"
	"treesched/internal/verify"
)

// FuzzSolveVerify fuzzes generator configurations and seeds, runs the
// combined arbitrary-height solver (which dispatches every problem kind
// and height regime), and asserts the two invariants every run must
// satisfy regardless of workload:
//
//  1. the selection passes the independent feasibility checker, and
//  2. weak duality holds: DualUB ≥ Profit.
//
// Run continuously with:
//
//	go test ./internal/core -run xxx -fuzz FuzzSolveVerify
func FuzzSolveVerify(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(12), uint8(2), uint8(0), false, false, false)
	f.Add(int64(7), uint8(9), uint8(20), uint8(1), uint8(2), true, true, false)
	f.Add(int64(42), uint8(30), uint8(8), uint8(3), uint8(4), false, false, true)
	f.Add(int64(-3), uint8(5), uint8(5), uint8(1), uint8(5), true, false, true)

	f.Fuzz(func(t *testing.T, seed int64, size, demands, nets, shape uint8, line, unit, capacitated bool) {
		n := 4 + int(size)%28    // 4..31 vertices or slots
		m := 1 + int(demands)%24 // 1..24 demands
		r := 1 + int(nets)%3     // 1..3 networks
		rng := rand.New(rand.NewSource(seed))

		capVal, jitter := 0.0, 0.0
		if capacitated {
			capVal, jitter = 1.5, 0.4
		}
		var p *instance.Problem
		if line {
			p = gen.LineProblem(gen.LineConfig{
				Slots: n, Resources: r, Demands: m, Unit: unit,
				HMin: 0.1, HMax: 1.0, Capacity: capVal, CapJitter: jitter,
			}, rng)
		} else {
			p = gen.TreeProblem(gen.TreeConfig{
				N: n, Trees: r, Demands: m, Unit: unit,
				Shape: gen.TreeShape(int(shape) % 6),
				HMin:  0.1, HMax: 1.0, Capacity: capVal, CapJitter: jitter,
			}, rng)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("generator emitted an invalid problem: %v", err)
		}

		res, err := Arbitrary(p, Options{Epsilon: 0.25, Seed: uint64(seed)})
		if err != nil {
			t.Fatalf("Arbitrary: %v", err)
		}
		if err := verify.Solution(p, res.Selected); err != nil {
			t.Fatalf("infeasible selection: %v", err)
		}
		if res.DualUB+1e-6 < res.Profit {
			t.Fatalf("weak duality violated: DualUB %g < Profit %g", res.DualUB, res.Profit)
		}
		if res.Profit < 0 {
			t.Fatalf("negative profit %g", res.Profit)
		}
	})
}
