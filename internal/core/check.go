package core

import (
	"fmt"

	"treesched/internal/lp"
	"treesched/internal/model"
)

// CheckInterference verifies the interference property of §3.2 on a raise
// trace: for any pair of overlapping demand instances d1 raised before d2,
// path(d2) must include at least one critical edge of π(d1). This is the
// hypothesis of Lemma 3.1, so every run of every algorithm must satisfy
// it; tests and the E-experiments call this on collected traces. O(R²).
func CheckInterference(m *model.Model, trace *Trace) error {
	if trace == nil {
		return fmt.Errorf("core: CheckInterference needs a collected trace")
	}
	paths := make([]map[int32]bool, len(m.Insts))
	pathSet := func(i int32) map[int32]bool {
		if paths[i] == nil {
			s := make(map[int32]bool, m.Paths.RowLen(i))
			for _, e := range m.Paths.Row(i) {
				s[e] = true
			}
			paths[i] = s
		}
		return paths[i]
	}
	for a := 0; a < len(trace.Events); a++ {
		for b := a + 1; b < len(trace.Events); b++ {
			d1, d2 := trace.Events[a].Inst, trace.Events[b].Inst
			if !m.P.Overlap(m.Insts[d1], m.Insts[d2]) {
				continue
			}
			hit := false
			p2 := pathSet(d2)
			for _, e := range m.Pi.Row(d1) {
				if p2[e] {
					hit = true
					break
				}
			}
			if !hit {
				return fmt.Errorf("core: interference violated: instance %d (event %d, epoch %d) raised before overlapping %d (event %d, epoch %d) but path(d2) misses π(d1)",
					d1, a, trace.Events[a].Epoch, d2, b, trace.Events[b].Epoch)
			}
		}
	}
	return nil
}

// CheckPhase2Coverage verifies the property the Lemma 3.1 profit bound
// rests on: every instance raised in the first phase is either selected,
// or blocked by the selection — its demand is already scheduled, or some
// path edge cannot fit its height. Equivalently, "for any d' ∈ R, either
// d' ∈ S or a successor of d' belongs to S".
func CheckPhase2Coverage(m *model.Model, stack []StackEntry, selected []int32) error {
	load := make([]float64, m.EdgeSpace)
	used := make([]bool, m.NumDemands)
	inSel := make(map[int32]bool, len(selected))
	for _, i := range selected {
		inSel[i] = true
		used[m.Insts[i].Demand] = true
		for _, e := range m.Paths.Row(i) {
			load[e] += m.Insts[i].Height
		}
	}
	for _, entry := range stack {
		for _, i := range entry.Set {
			if inSel[i] {
				continue
			}
			if used[m.Insts[i].Demand] {
				continue // killed via K1: its demand is scheduled
			}
			blocked := false
			for _, e := range m.Paths.Row(i) {
				if load[e]+m.Insts[i].Height > m.Cap[e]+lp.Tol {
					blocked = true
					break
				}
			}
			if !blocked {
				return fmt.Errorf("core: raised instance %d neither selected nor blocked — phase 2 missed it", i)
			}
		}
	}
	return nil
}

// CheckRaisedSetsIndependent verifies that every stack entry pushed in the
// first phase was an independent set (pairwise non-conflicting), as the
// framework requires for parallel raising.
func CheckRaisedSetsIndependent(m *model.Model, stack []StackEntry) error {
	for s, entry := range stack {
		for x := 0; x < len(entry.Set); x++ {
			for y := x + 1; y < len(entry.Set); y++ {
				if m.Conflict(entry.Set[x], entry.Set[y]) {
					return fmt.Errorf("core: stack entry %d holds conflicting instances %d,%d",
						s, entry.Set[x], entry.Set[y])
				}
			}
		}
	}
	return nil
}
