package core

import (
	"reflect"
	"testing"

	"treesched/internal/instance"
	"treesched/internal/scenario"
)

// TestParallelCompileEquivalence is the determinism contract of the
// parallel compiler: for every scenario, every solver entry point and
// three seeds, a Compiled built with CompileWorkers 2 or GOMAXPROCS
// produces exactly the outcome of the serial oracle (CompileWorkers=1) —
// identical selections, profits, duals, network stats, and identical
// precondition errors. The models themselves must be deep-equal too, so
// a scheduling-dependent divergence can never hide behind a solver that
// happens not to read the differing field.
func TestParallelCompileEquivalence(t *testing.T) {
	for name, p := range scenarioProblems(t) {
		oracle, err := Compile(p, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		oracle.SetCompileWorkers(1)
		oracleModel, err := oracle.Model()
		if err != nil {
			t.Fatalf("%s: oracle model: %v", name, err)
		}
		for _, w := range []int{2, 0} {
			c, err := Compile(p, 0)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			c.SetCompileWorkers(w)
			m, err := c.Model()
			if err != nil {
				t.Fatalf("%s workers=%d: model: %v", name, w, err)
			}
			if !reflect.DeepEqual(oracleModel, m) {
				t.Fatalf("%s: model built with workers=%d differs from the serial oracle", name, w)
			}
			for _, ep := range entryPoints {
				for seed := uint64(1); seed <= 3; seed++ {
					opts := Options{Epsilon: 0.25, Seed: seed}
					want := outcomeOf(ep.run(oracle, opts))
					got := outcomeOf(ep.run(c, opts))
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("%s/%s seed %d workers=%d: diverged from serial oracle:\n  %+v\nvs\n  %+v",
							name, ep.name, seed, w, got, want)
					}
				}
			}
		}
	}
}

// TestCompileWorkersOptionThreading pins the Options route of the knob:
// a CompileWorkers passed to the first solve must drive the lazy build
// (and stick for later generations via WithJobs), with results identical
// to the serial oracle either way.
func TestCompileWorkersOptionThreading(t *testing.T) {
	s, ok := scenario.Get("caterpillar-backbone")
	if !ok {
		t.Fatal("missing scenario caterpillar-backbone")
	}
	p, err := s.Generate(scenario.Params{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Compile(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want solveOutcome
	{
		r, err := oracle.TreeUnit(Options{Seed: 3, CompileWorkers: 1})
		want = outcomeOf(r, nil, err)
	}
	c, err := Compile(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.TreeUnit(Options{Seed: 3, CompileWorkers: 2})
	if got := outcomeOf(r, nil, err); !reflect.DeepEqual(want, got) {
		t.Fatalf("CompileWorkers=2 via Options diverged:\n  %+v\nvs\n  %+v", got, want)
	}
	if got := c.compileWorkers(); got != 2 {
		t.Fatalf("compileWorkers after Options{CompileWorkers:2} = %d, want 2", got)
	}

	// The knob carries across WithJobs generations (delta or fallback).
	nc, err := c.WithJobs(nil, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if got := nc.compileWorkers(); got != 2 {
		t.Fatalf("compileWorkers after WithJobs = %d, want 2", got)
	}
	no, err := oracle.WithJobs(nil, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	rw, errw := nc.TreeUnit(Options{Seed: 3})
	ro, erro := no.TreeUnit(Options{Seed: 3})
	if got, want := outcomeOf(rw, nil, errw), outcomeOf(ro, nil, erro); !reflect.DeepEqual(want, got) {
		t.Fatalf("WithJobs generation diverged from serial oracle:\n  %+v\nvs\n  %+v", got, want)
	}
}

// TestCompileBatchMatchesLoop requires CompileBatch to be a drop-in for
// the equivalent compile loop — per-slot errors included: an invalid
// problem fails its own slot and leaves every other slot intact.
func TestCompileBatchMatchesLoop(t *testing.T) {
	var ps []*instance.Problem
	for _, name := range []string{"caterpillar-backbone", "videowall-line", "narrow-stream", "capacitated-tree"} {
		s, ok := scenario.Get(name)
		if !ok {
			t.Fatalf("missing scenario %s", name)
		}
		p, err := s.Generate(scenario.Params{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	bad := 2
	ps = append(ps[:bad], append([]*instance.Problem{{Kind: instance.KindTree}}, ps[bad:]...)...)

	for _, workers := range []int{1, 4} {
		cs, errs := CompileBatch(ps, 0, workers)
		for i, p := range ps {
			if i == bad {
				if errs[i] == nil || cs[i] != nil {
					t.Fatalf("workers=%d: invalid slot %d: err=%v compiled=%v", workers, i, errs[i], cs[i])
				}
				continue
			}
			if errs[i] != nil {
				t.Fatalf("workers=%d: slot %d: %v", workers, i, errs[i])
			}
			want, err := Compile(p, 0)
			if err != nil {
				t.Fatal(err)
			}
			want.SetCompileWorkers(1)
			wm, err := want.Model()
			if err != nil {
				t.Fatal(err)
			}
			gm, err := cs[i].Model()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wm, gm) {
				t.Fatalf("workers=%d: slot %d model differs from serial Compile", workers, i)
			}
		}

		res, serrs := SolveBatch(cs, workers, func(_ int, c *Compiled) (*Result, error) {
			return c.Greedy()
		})
		for i := range ps {
			if i == bad {
				if res[i] != nil || serrs[i] != nil {
					t.Fatalf("workers=%d: nil slot %d not skipped: %v %v", workers, i, res[i], serrs[i])
				}
				continue
			}
			if serrs[i] != nil {
				t.Fatalf("workers=%d: solve slot %d: %v", workers, i, serrs[i])
			}
			want, err := cs[i].Greedy()
			if err != nil {
				t.Fatal(err)
			}
			if got, want := outcomeOf(res[i], nil, nil), outcomeOf(want, nil, nil); !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d: solve slot %d diverged:\n  %+v\nvs\n  %+v", workers, i, got, want)
			}
		}
	}
}

// TestSolveBatchWarmAllocations pins the allocation budget of the warm
// batch path: once the compilations are warm, a SolveBatch pass may
// allocate only the result slices, the per-item Results and pool
// trimmings — the same order as the individual warm solves it wraps.
func TestSolveBatchWarmAllocations(t *testing.T) {
	s, ok := scenario.Get("caterpillar-backbone")
	if !ok {
		t.Fatal("missing scenario caterpillar-backbone")
	}
	cs := make([]*Compiled, 4)
	for i := range cs {
		p, err := s.Generate(scenario.Params{}, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if cs[i], err = Compile(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	solve := func() {
		_, errs := SolveBatch(cs, 1, func(_ int, c *Compiled) (*Result, error) {
			return c.TreeUnit(Options{Seed: 1})
		})
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	solve() // warm the lazy models + pools
	const perSolveBudget = 80
	if avg := testing.AllocsPerRun(20, solve); avg > perSolveBudget*float64(len(cs)) {
		t.Errorf("warm SolveBatch: %.1f allocs for %d solves, budget %d",
			avg, len(cs), perSolveBudget*len(cs))
	}
}
