package core

// The equivalence suite guards the CSR + incremental-Phase1 refactor: the
// optimized solvers must produce byte-identical outputs to the
// pre-refactor semantics. Three angles:
//
//   - refPhase1 reimplements the old first phase (full O(n·|path|) rescan
//     of every instance on every step, no LHS caching) and must agree with
//     the delta-driven phase1 on exact float duals and identical stacks;
//   - every solver entry point must return identical results on a fresh
//     Compiled, a warm Compiled, and a warm Compiled again (pooled-scratch
//     reuse — catches scratch contamination);
//   - the pooled warm solve path must stay allocation-free up to the
//     Result itself (testing.AllocsPerRun regression bounds).

import (
	"fmt"
	"reflect"
	"testing"

	"treesched/internal/conflict"
	"treesched/internal/instance"
	"treesched/internal/lp"
	"treesched/internal/mis"
	"treesched/internal/model"
	"treesched/internal/scenario"
)

// refPhase1 is the pre-refactor Phase1 loop, kept verbatim as the
// reference: per step it rescans all n instances, evaluating each dual
// constraint from scratch.
func refPhase1(m *model.Model, rule lp.Rule, sched Schedule, seed uint64) (*lp.Duals, []StackEntry, error) {
	cg := conflict.Build(m)
	duals := lp.NewDuals(m)
	n := len(m.Insts)
	active := make([]bool, n)
	var stack []StackEntry
	stepCounter := uint64(0)

	for k := 1; k <= sched.Epochs; k++ {
		for j := 1; j <= sched.Stages; j++ {
			threshold := sched.Thresholds[j-1]
			steps := 0
			for {
				anyActive := false
				for i := 0; i < n; i++ {
					active[i] = int(m.Group[i]) == k &&
						!lp.Satisfied(rule, m, duals, int32(i), threshold)
					anyActive = anyActive || active[i]
				}
				if !anyActive {
					break
				}
				steps++
				if steps > sched.MaxSteps {
					return nil, nil, fmt.Errorf("ref: stage (%d,%d) exceeded %d steps", k, j, sched.MaxSteps)
				}
				stepCounter++
				sc := stepCounter
				set, _ := mis.LubyFunc(cg.Adj, active, func(i int32, phase int) float64 {
					return mis.Priority(seed, i, sc, phase)
				})
				for _, i := range set {
					rule.Raise(m, duals, i)
				}
				stack = append(stack, StackEntry{Epoch: k, Stage: j, Step: steps, Set: set})
			}
		}
	}
	return duals, stack, nil
}

// scenarioProblems materializes every registered scenario with a fixed
// generation seed — default params, except the benchmark-scale presets,
// which are sized down (the equivalence properties are size-independent;
// a 10^5-demand reference phase1 is not a unit test).
func scenarioProblems(t *testing.T) map[string]*instance.Problem {
	t.Helper()
	out := map[string]*instance.Problem{}
	for _, s := range scenario.All() {
		params := scenario.Params{}
		if s.Scale {
			params = scenario.Params{Demands: 48, Size: 64, Networks: 8}
		}
		p, err := s.Generate(params, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		out[s.Name] = p
	}
	if len(out) < 10 {
		t.Fatalf("expected ≥10 scenarios, got %d", len(out))
	}
	return out
}

// phase1Combo is one (model, rule, schedule) configuration a solver
// entry point would run.
type phase1Combo struct {
	name  string
	m     *model.Model
	rule  lp.Rule
	sched Schedule
}

// phase1Combos lists the combinations the solvers run on a compiled
// problem, mirroring the entry points' configuration.
func phase1Combos(t *testing.T, c *Compiled) []phase1Combo {
	t.Helper()
	var combos []phase1Combo
	p := c.Problem()
	full, err := c.Model()
	if err != nil {
		t.Fatal(err)
	}
	if p.UnitHeight() {
		combos = append(combos, phase1Combo{"unit", full, lp.Unit{}, NewSchedule(full, UnitXi(full.Delta), 0.25)})
		if p.Kind == instance.KindLine {
			combos = append(combos, phase1Combo{"ps", full, lp.Unit{}, NewSingleStageSchedule(full, 1/(5+0.25))})
		}
	}
	wide, narrow, err := c.splitModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(wide.m.Insts) > 0 {
		combos = append(combos, phase1Combo{"wide", wide.m, lp.Unit{}, NewSchedule(wide.m, UnitXi(wide.m.Delta), 0.25)})
	}
	if len(narrow.m.Insts) > 0 {
		nm := narrow.m
		if hmin, err := effHMin(nm, "equivalence"); err == nil {
			combos = append(combos, phase1Combo{"narrow", nm, narrowRule(p), NewSchedule(nm, NarrowXi(nm.Delta, hmin), 0.25)})
		}
	}
	return combos
}

// TestPhase1MatchesFullRescanReference drives the incremental Phase1 and
// the pre-refactor full-rescan reference over every scenario and every
// applicable (rule, schedule) combination and requires exactly equal
// duals (float bit equality) and identical stacks.
func TestPhase1MatchesFullRescanReference(t *testing.T) {
	for name, p := range scenarioProblems(t) {
		c, err := Compile(p, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, combo := range phase1Combos(t, c) {
			for seed := uint64(1); seed <= 3; seed++ {
				gotDuals, gotStack, err := Phase1(combo.m, combo.rule, combo.sched, seed, nil)
				if err != nil {
					t.Fatalf("%s/%s seed %d: phase1: %v", name, combo.name, seed, err)
				}
				wantDuals, wantStack, err := refPhase1(combo.m, combo.rule, combo.sched, seed)
				if err != nil {
					t.Fatalf("%s/%s seed %d: refPhase1: %v", name, combo.name, seed, err)
				}
				for i := range wantDuals.Alpha {
					if gotDuals.Alpha[i] != wantDuals.Alpha[i] {
						t.Fatalf("%s/%s seed %d: α[%d]=%v want %v", name, combo.name, seed, i, gotDuals.Alpha[i], wantDuals.Alpha[i])
					}
				}
				for e := range wantDuals.Beta {
					if gotDuals.Beta[e] != wantDuals.Beta[e] {
						t.Fatalf("%s/%s seed %d: β[%d]=%v want %v", name, combo.name, seed, e, gotDuals.Beta[e], wantDuals.Beta[e])
					}
				}
				if len(gotStack) != len(wantStack) {
					t.Fatalf("%s/%s seed %d: stack len %d want %d", name, combo.name, seed, len(gotStack), len(wantStack))
				}
				for s := range wantStack {
					g, w := gotStack[s], wantStack[s]
					if g.Epoch != w.Epoch || g.Stage != w.Stage || g.Step != w.Step || !reflect.DeepEqual(g.Set, w.Set) {
						t.Fatalf("%s/%s seed %d: stack[%d] = %+v want %+v", name, combo.name, seed, s, g, w)
					}
				}
				// The selections downstream of identical stacks must agree
				// too (exercises the pooled phase2 against the wrapper).
				if got, want := Phase2(combo.m, gotStack), Phase2(combo.m, wantStack); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/%s seed %d: phase2 %v want %v", name, combo.name, seed, got, want)
				}
			}
		}
	}
}

// solveOutcome is the comparable projection of one entry-point run:
// either an error string or the result fields that must be identical
// across fresh/warm/pooled executions.
type solveOutcome struct {
	Err      string
	Name     string
	Selected []instance.Inst
	Profit   float64
	DualUB   float64
	Ratio    float64
	Bound    float64
	Lambda   float64
	Rounds   int
	Messages int64
	Entries  int64
	Aggs     int
}

func outcomeOf(res *Result, dres *DistributedResult, err error) solveOutcome {
	if err != nil {
		return solveOutcome{Err: err.Error()}
	}
	out := solveOutcome{
		Name: res.Name, Selected: res.Selected, Profit: res.Profit,
		DualUB: res.DualUB, Ratio: res.CertifiedRatio, Bound: res.Bound,
		Lambda: res.Lambda,
	}
	if dres != nil {
		out.Rounds = dres.Net.Rounds
		out.Messages = dres.Net.Messages
		out.Entries = dres.Net.Entries
		out.Aggs = dres.Net.Aggregations
	}
	return out
}

// entryPoints enumerates all 12 solver entry points in compiled form.
var entryPoints = []struct {
	name string
	run  func(c *Compiled, opts Options) (*Result, *DistributedResult, error)
}{
	{"tree-unit", func(c *Compiled, o Options) (*Result, *DistributedResult, error) { r, err := c.TreeUnit(o); return r, nil, err }},
	{"line-unit", func(c *Compiled, o Options) (*Result, *DistributedResult, error) { r, err := c.LineUnit(o); return r, nil, err }},
	{"narrow", func(c *Compiled, o Options) (*Result, *DistributedResult, error) { r, err := c.NarrowOnly(o); return r, nil, err }},
	{"arbitrary", func(c *Compiled, o Options) (*Result, *DistributedResult, error) { r, err := c.Arbitrary(o); return r, nil, err }},
	{"sequential", func(c *Compiled, o Options) (*Result, *DistributedResult, error) { r, err := c.Sequential(o); return r, nil, err }},
	{"seq-line", func(c *Compiled, o Options) (*Result, *DistributedResult, error) { r, err := c.SequentialLine(o); return r, nil, err }},
	{"greedy", func(c *Compiled, o Options) (*Result, *DistributedResult, error) { r, err := c.Greedy(); return r, nil, err }},
	{"exact", func(c *Compiled, o Options) (*Result, *DistributedResult, error) { r, err := c.Exact(500_000); return r, nil, err }},
	{"ps", func(c *Compiled, o Options) (*Result, *DistributedResult, error) { r, err := c.PanconesiSozioUnit(o); return r, nil, err }},
	{"dist-unit", func(c *Compiled, o Options) (*Result, *DistributedResult, error) { d, err := c.DistributedUnit(o); return resOf(d), d, err }},
	{"dist-narrow", func(c *Compiled, o Options) (*Result, *DistributedResult, error) { d, err := c.DistributedNarrow(o); return resOf(d), d, err }},
	{"dist-ps", func(c *Compiled, o Options) (*Result, *DistributedResult, error) { d, err := c.DistributedPanconesiSozio(o); return resOf(d), d, err }},
}

func resOf(d *DistributedResult) *Result {
	if d == nil {
		return nil
	}
	return d.Result
}

// TestEntryPointsFreshWarmPooledIdentical runs all 12 solver entry points
// on all 10 scenarios three ways — fresh Compiled, warm Compiled, warm
// again on the pooled scratch — and requires identical outcomes
// (including identical precondition errors where an algorithm does not
// apply to a scenario).
func TestEntryPointsFreshWarmPooledIdentical(t *testing.T) {
	opts := Options{Epsilon: 0.25, Seed: 7}
	for name, p := range scenarioProblems(t) {
		warm, err := Compile(p, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, ep := range entryPoints {
			first := outcomeOf(ep.run(warm, opts))
			again := outcomeOf(ep.run(warm, opts))
			fresh, err := Compile(p, 0)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			cold := outcomeOf(ep.run(fresh, opts))
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("%s/%s: pooled re-solve diverged:\n  %+v\nvs\n  %+v", name, ep.name, first, again)
			}
			if !reflect.DeepEqual(first, cold) {
				t.Fatalf("%s/%s: warm vs fresh diverged:\n  %+v\nvs\n  %+v", name, ep.name, first, cold)
			}
		}
	}
}

// TestWarmSolveAllocations pins the allocation budget of the pooled warm
// solve path: after the first solve has warmed a Compiled, subsequent
// solves may allocate only the Result and trimmings. The bounds are ~4×
// the measured values so real regressions (a rescan loop, an unpooled
// buffer) trip them while noise does not.
func TestWarmSolveAllocations(t *testing.T) {
	cases := []struct {
		scenario string
		algo     string
		run      func(c *Compiled) error
		maxAlloc float64
	}{
		{"videowall-line", "line-unit", func(c *Compiled) error { _, err := c.LineUnit(Options{Seed: 1}); return err }, 64},
		{"caterpillar-backbone", "tree-unit", func(c *Compiled) error { _, err := c.TreeUnit(Options{Seed: 1}); return err }, 64},
		{"narrow-stream", "narrow", func(c *Compiled) error { _, err := c.NarrowOnly(Options{Seed: 1}); return err }, 96},
		{"capacitated-tree", "arbitrary", func(c *Compiled) error { _, err := c.Arbitrary(Options{Seed: 1}); return err }, 192},
	}
	for _, tc := range cases {
		s, ok := scenario.Get(tc.scenario)
		if !ok {
			t.Fatalf("unknown scenario %s", tc.scenario)
		}
		p, err := s.Generate(scenario.Params{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := tc.run(c); err != nil { // warm the lazy models + pool
			t.Fatalf("%s/%s: %v", tc.scenario, tc.algo, err)
		}
		avg := testing.AllocsPerRun(20, func() {
			if err := tc.run(c); err != nil {
				t.Fatalf("%s/%s: %v", tc.scenario, tc.algo, err)
			}
		})
		if avg > tc.maxAlloc {
			t.Errorf("%s/%s: %.1f allocs/solve on the warm path, budget %g",
				tc.scenario, tc.algo, avg, tc.maxAlloc)
		}
	}
}
