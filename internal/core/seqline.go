package core

import (
	"fmt"
	"sort"

	"treesched/internal/instance"
	"treesched/internal/lp"
)

// SequentialLine runs the classical sequential 2-approximation for
// unit-height line networks with windows, in the style of Bar-Noy et al.
// and Berman–Dasgupta (§1 of the paper; both are reformulations of the
// same primal-dual idea the two-phase framework captures):
//
// Demand instances are processed in increasing order of their end slot.
// Any instance overlapping a previously processed one must contain that
// instance's end slot, so π(d) = {end(d)} satisfies the interference
// property with ∆ = 1, and λ = 1 as every constraint is made tight. By
// Lemma 3.1 the ratio is (∆+1)/λ = 2, matching [4,5].
func SequentialLine(p *instance.Problem, opts Options) (*Result, error) {
	c, err := Compile(p, opts.DecompKind)
	if err != nil {
		return nil, err
	}
	return c.SequentialLine(opts)
}

// SequentialLine is the compiled-model form of the package-level
// SequentialLine. The end-slot critical sets (π(d) = {end(d)}, ∆ = 1) are
// materialized once in the Compiled's dedicated line model.
func (c *Compiled) SequentialLine(opts Options) (*Result, error) {
	opts = c.prep(opts)
	p := c.p
	if p.Kind != instance.KindLine {
		return nil, fmt.Errorf("core: SequentialLine on %v problem", p.Kind)
	}
	if !p.UnitHeight() {
		return nil, fmt.Errorf("core: SequentialLine requires unit heights")
	}
	tel := opts.Telemetry
	sm, err := telModel(tel, c.sequentialLineModel)
	if err != nil {
		return nil, err
	}
	m := sm.m

	order := make([]int32, len(m.Insts))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if m.Insts[ia].V != m.Insts[ib].V {
			return m.Insts[ia].V < m.Insts[ib].V
		}
		return ia < ib
	})

	rule := lp.Unit{}
	duals := lp.NewDuals(m)
	var trace *Trace
	if opts.CollectTrace {
		trace = &Trace{}
	}
	var stack []StackEntry
	step := 0
	sp := tel.Begin("phase1")
	for _, i := range order {
		if lp.Satisfied(rule, m, duals, i, 1.0) {
			continue
		}
		step++
		delta := rule.Raise(m, duals, i)
		if trace != nil {
			trace.Events = append(trace.Events, RaiseEvent{
				Inst: i, Delta: delta, Epoch: 1, Stage: 1, Step: step,
			})
		}
		stack = append(stack, StackEntry{Epoch: 1, Stage: 1, Step: step, Set: []int32{i}})
	}
	if tel != nil {
		tel.Add(sp, "raises", int64(step))
	}
	tel.End(sp)
	sp = tel.Begin("verify_lambda")
	if err := lp.VerifyLambdaSatisfied(rule, m, duals, 1.0); err != nil {
		tel.End(sp)
		return nil, fmt.Errorf("core: sequential-line (λ=1): %w: %v", ErrCertificate, err)
	}
	tel.End(sp)
	sp = tel.Begin("phase2")
	sel := Phase2(m, stack)
	tel.End(sp)
	sp = tel.Begin("assemble")
	defer tel.End(sp)
	res := &Result{Name: "sequential-line", Lambda: 1, Bound: 2, Trace: trace, Model: m}
	for _, i := range sel {
		res.Selected = append(res.Selected, m.Insts[i])
		res.Profit += m.Insts[i].Profit
	}
	res.DualUB = lp.DualObjective(rule, m, duals)
	if res.Profit > 0 {
		res.CertifiedRatio = res.DualUB / res.Profit
	}
	return res, nil
}
