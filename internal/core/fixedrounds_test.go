package core

import (
	"math/rand"
	"testing"

	"treesched/internal/gen"
	"treesched/internal/model"
	"treesched/internal/verify"
)

func TestFixedRoundsModeRunsWithoutAggregations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		p := gen.TreeProblem(gen.TreeConfig{
			N: 12 + rng.Intn(20), Trees: 1 + rng.Intn(2), Demands: 4 + rng.Intn(12), Unit: true,
		}, rng)
		d, err := DistributedUnit(p, Options{Epsilon: 0.25, Seed: uint64(trial), FixedRounds: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d.Net.Aggregations != 0 {
			t.Fatalf("trial %d: fixed schedule used %d aggregations", trial, d.Net.Aggregations)
		}
		if err := verify.Solution(p, d.Selected); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The certificate machinery still holds (λ-satisfaction was
		// verified inside; the ratio must respect the bound).
		if d.CertifiedRatio > d.Bound+1e-6 {
			t.Fatalf("trial %d: certified ratio %.3f > bound %.3f", trial, d.CertifiedRatio, d.Bound)
		}
	}
}

func TestFixedRoundsDeterministicCost(t *testing.T) {
	// The whole point of the fixed schedule: the round count is a
	// function of the schedule alone, so two problems with identical
	// shape parameters (groups, profit spread, instance count) cost
	// identical rounds regardless of the demands drawn.
	rng := rand.New(rand.NewSource(2))
	p := gen.TreeProblem(gen.TreeConfig{N: 16, Trees: 2, Demands: 8, Unit: true}, rng)
	a, err := DistributedUnit(p, Options{Epsilon: 0.25, Seed: 1, FixedRounds: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DistributedUnit(p, Options{Epsilon: 0.25, Seed: 99, FixedRounds: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Net.Rounds != b.Net.Rounds {
		t.Fatalf("fixed schedule rounds differ across seeds: %d vs %d", a.Net.Rounds, b.Net.Rounds)
	}
}

func TestFixedRoundsRejectsSingleStage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := gen.LineProblem(gen.LineConfig{Slots: 12, Resources: 1, Demands: 4, Unit: true}, rng)
	m, err := model.Build(p, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched := NewSingleStageSchedule(m, 0.2)
	if sched.FixedSteps(m) != 0 {
		t.Fatal("single-stage schedule must not claim a fixed step bound")
	}
}

func TestFixedRoundsNarrow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := gen.TreeProblem(gen.TreeConfig{
		N: 14, Trees: 2, Demands: 8, HMin: 0.25, HMax: 0.5,
	}, rng)
	d, err := DistributedNarrow(p, Options{Epsilon: 0.25, Seed: 2, FixedRounds: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Net.Aggregations != 0 {
		t.Fatal("fixed narrow run used aggregations")
	}
	if err := verify.Solution(p, d.Selected); err != nil {
		t.Fatal(err)
	}
}
