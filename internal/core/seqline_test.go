package core

import (
	"math/rand"
	"testing"

	"treesched/internal/gen"
	"treesched/internal/verify"
)

func TestSequentialLineEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 12; trial++ {
		p := gen.LineProblem(gen.LineConfig{
			Slots: 16 + rng.Intn(32), Resources: 1 + rng.Intn(3), Demands: 4 + rng.Intn(14),
			Unit: true, MaxProc: 8,
		}, rng)
		res, err := SequentialLine(p, Options{CollectTrace: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := verify.Solution(p, res.Selected); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Bound != 2 {
			t.Fatalf("trial %d: bound %g want 2", trial, res.Bound)
		}
		if res.CertifiedRatio > 2+1e-6 {
			t.Fatalf("trial %d: certified ratio %.3f > 2", trial, res.CertifiedRatio)
		}
		if err := CheckInterference(res.Model, res.Trace); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSequentialLineAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		p := gen.LineProblem(gen.LineConfig{
			Slots: 14, Resources: 1 + rng.Intn(2), Demands: 4 + rng.Intn(6),
			Unit: true, MaxProc: 5,
		}, rng)
		res, err := SequentialLine(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Exact(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Profit > 0 && opt.Profit/res.Profit > 2+1e-9 {
			t.Fatalf("trial %d: true ratio %.3f > 2", trial, opt.Profit/res.Profit)
		}
		if opt.Profit > res.DualUB+1e-6 {
			t.Fatalf("trial %d: OPT above dual UB", trial)
		}
	}
}

func TestSequentialLineMatchesIntervalDPOnTightWindows(t *testing.T) {
	// With one resource and tight windows the DP optimum is available;
	// the 2-approximation must be within factor 2 of it (usually equal on
	// easy instances, but never above).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		p := tightLineProblem(rng, 20, 8)
		seq, err := SequentialLine(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		dp, err := ExactSingleLineUnit(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Profit > dp.Profit+1e-9 {
			t.Fatalf("trial %d: 2-approx beat the optimum", trial)
		}
		if dp.Profit > 2*seq.Profit+1e-9 {
			t.Fatalf("trial %d: ratio %.3f above 2", trial, dp.Profit/seq.Profit)
		}
	}
}

func TestSequentialLineRejections(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tp := gen.TreeProblem(gen.TreeConfig{N: 8, Trees: 1, Demands: 3, Unit: true}, rng)
	if _, err := SequentialLine(tp, Options{}); err == nil {
		t.Fatal("accepted tree problem")
	}
	nu := gen.LineProblem(gen.LineConfig{Slots: 10, Resources: 1, Demands: 3, HMin: 0.3, HMax: 0.5}, rng)
	if _, err := SequentialLine(nu, Options{}); err == nil {
		t.Fatal("accepted non-unit heights")
	}
}
