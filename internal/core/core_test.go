package core

import (
	"math"
	"math/rand"
	"testing"

	"treesched/internal/gen"
	"treesched/internal/verify"
)

func TestTreeUnitEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 12; trial++ {
		p := gen.TreeProblem(gen.TreeConfig{
			N: 10 + rng.Intn(40), Trees: 1 + rng.Intn(3), Demands: 5 + rng.Intn(30), Unit: true,
		}, rng)
		res, err := TreeUnit(p, Options{Epsilon: 0.25, Seed: uint64(trial), CollectTrace: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := verify.Solution(p, res.Selected); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := verify.EdgeDisjoint(p, res.Selected); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Profit <= 0 && len(p.Demands) > 0 {
			t.Fatalf("trial %d: empty solution", trial)
		}
		// Lemma 3.1: val(α,β) ≤ (∆+1)·p(S) ⇒ certified ratio ≤ bound.
		if res.CertifiedRatio > res.Bound+1e-6 {
			t.Fatalf("trial %d: certified ratio %.3f exceeds bound %.3f", trial, res.CertifiedRatio, res.Bound)
		}
		if res.Bound > 7/(1-0.25)+1e-9 {
			t.Fatalf("trial %d: bound %.3f exceeds 7+ε", trial, res.Bound)
		}
		if err := CheckInterference(res.Model, res.Trace); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestTreeUnitAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	worst := 1.0
	for trial := 0; trial < 10; trial++ {
		p := gen.TreeProblem(gen.TreeConfig{
			N: 8 + rng.Intn(8), Trees: 1 + rng.Intn(2), Demands: 4 + rng.Intn(8), Unit: true,
		}, rng)
		res, err := TreeUnit(p, Options{Epsilon: 0.25, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Exact(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Profit > opt.Profit+1e-9 {
			t.Fatalf("trial %d: algorithm beat the optimum?! %g > %g", trial, res.Profit, opt.Profit)
		}
		// DualUB really is an upper bound on OPT.
		if opt.Profit > res.DualUB+1e-6 {
			t.Fatalf("trial %d: OPT %g exceeds dual bound %g", trial, opt.Profit, res.DualUB)
		}
		ratio := opt.Profit / res.Profit
		if ratio > 7/(1-0.25)+1e-9 {
			t.Fatalf("trial %d: true ratio %.3f exceeds 7+ε", trial, ratio)
		}
		if ratio > worst {
			worst = ratio
		}
	}
	t.Logf("worst true ratio over trials: %.3f", worst)
}

func TestLineUnitEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 12; trial++ {
		p := gen.LineProblem(gen.LineConfig{
			Slots: 20 + rng.Intn(40), Resources: 1 + rng.Intn(3), Demands: 5 + rng.Intn(20), Unit: true,
		}, rng)
		res, err := LineUnit(p, Options{Epsilon: 0.25, Seed: uint64(trial), CollectTrace: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := verify.Solution(p, res.Selected); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.CertifiedRatio > res.Bound+1e-6 {
			t.Fatalf("trial %d: certified ratio %.3f > bound %.3f", trial, res.CertifiedRatio, res.Bound)
		}
		if res.Bound > 4/(1-0.25)+1e-9 {
			t.Fatalf("trial %d: bound %.3f exceeds 4+ε", trial, res.Bound)
		}
		if err := CheckInterference(res.Model, res.Trace); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestLineUnitAgainstExactAndPS(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		p := gen.LineProblem(gen.LineConfig{
			Slots: 16, Resources: 1 + rng.Intn(2), Demands: 4 + rng.Intn(6), Unit: true, MaxProc: 5,
		}, rng)
		res, err := LineUnit(p, Options{Epsilon: 0.25, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		ps, err := PanconesiSozioUnit(p, Options{Epsilon: 0.25, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.Solution(p, ps.Selected); err != nil {
			t.Fatal(err)
		}
		opt, err := Exact(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range []*Result{res, ps} {
			if opt.Profit > r.DualUB+1e-6 {
				t.Fatalf("%s: OPT %g above dual UB %g", r.Name, opt.Profit, r.DualUB)
			}
			if r.Profit > opt.Profit+1e-9 {
				t.Fatalf("%s beat optimum", r.Name)
			}
		}
		// The bound ordering the paper claims: ours 4+ε vs theirs 20+ε.
		if res.Bound >= ps.Bound {
			t.Fatalf("multi-stage bound %.2f should beat single-stage %.2f", res.Bound, ps.Bound)
		}
	}
}

func TestNarrowOnlyEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		p := gen.TreeProblem(gen.TreeConfig{
			N: 12 + rng.Intn(20), Trees: 1 + rng.Intn(2), Demands: 5 + rng.Intn(15),
			HMin: 0.15, HMax: 0.5,
		}, rng)
		res, err := NarrowOnly(p, Options{Epsilon: 0.25, Seed: uint64(trial), CollectTrace: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := verify.Solution(p, res.Selected); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Lemma 6.1: val ≤ (2∆²+1)p(S) ⇒ certified ratio ≤ (2∆²+1)/λ.
		if res.CertifiedRatio > res.Bound+1e-6 {
			t.Fatalf("trial %d: certified ratio %.3f > bound %.3f", trial, res.CertifiedRatio, res.Bound)
		}
		if err := CheckInterference(res.Model, res.Trace); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestNarrowOnlyRejectsWide(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := gen.TreeProblem(gen.TreeConfig{N: 10, Trees: 1, Demands: 5, HMin: 0.8, HMax: 0.9}, rng)
	if _, err := NarrowOnly(p, Options{}); err == nil {
		t.Fatal("accepted wide instances")
	}
}

func TestArbitraryEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		p := gen.TreeProblem(gen.TreeConfig{
			N: 12 + rng.Intn(20), Trees: 1 + rng.Intn(2), Demands: 6 + rng.Intn(14),
			HMin: 0.1, HMax: 1.0,
		}, rng)
		res, err := Arbitrary(p, Options{Epsilon: 0.25, Seed: uint64(trial)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := verify.Solution(p, res.Selected); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The per-network combine never loses profit against the better
		// part: p(S) ≥ max(p(S1), p(S2)) (§6 "Overall Algorithm").
		for _, part := range res.Parts {
			if res.Profit < part.Profit-1e-9 {
				t.Fatalf("trial %d: combined profit %g below part %q's %g",
					trial, res.Profit, part.Name, part.Profit)
			}
		}
		if res.CertifiedRatio > res.Bound+1e-6 {
			t.Fatalf("trial %d: certified ratio %.3f > combined bound %.3f", trial, res.CertifiedRatio, res.Bound)
		}
		// Theorem 6.3: combined bound ≤ (7+ε)+(73+ε) = 80+2ε.
		if res.Bound > 80/(1-0.25)+1e-6 {
			t.Fatalf("trial %d: bound %.3f above 80+ε scale", trial, res.Bound)
		}
	}
}

func TestArbitraryLineEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 8; trial++ {
		p := gen.LineProblem(gen.LineConfig{
			Slots: 24, Resources: 1 + rng.Intn(2), Demands: 6 + rng.Intn(10),
			HMin: 0.1, HMax: 1.0, MaxProc: 6,
		}, rng)
		res, err := Arbitrary(p, Options{Epsilon: 0.25, Seed: uint64(trial)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := verify.Solution(p, res.Selected); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Theorem 7.2: bound (4+ε)+(19+ε) = 23+2ε.
		if res.Bound > 23/(1-0.25)+1e-6 {
			t.Fatalf("trial %d: line arbitrary bound %.3f too large", trial, res.Bound)
		}
		opt, err := Exact(p, 0)
		if err == nil && opt.Profit > res.DualUB+1e-6 {
			t.Fatalf("trial %d: OPT above combined dual UB", trial)
		}
	}
}

func TestSequentialEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		trees := 1 + rng.Intn(3)
		p := gen.TreeProblem(gen.TreeConfig{
			N: 8 + rng.Intn(12), Trees: trees, Demands: 4 + rng.Intn(10), Unit: true,
		}, rng)
		res, err := Sequential(p, Options{CollectTrace: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := verify.Solution(p, res.Selected); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		wantBound := 3.0
		if trees == 1 {
			wantBound = 2.0
		}
		if res.Bound != wantBound {
			t.Fatalf("trial %d: bound %g want %g", trial, res.Bound, wantBound)
		}
		if res.CertifiedRatio > wantBound+1e-6 {
			t.Fatalf("trial %d: certified ratio %.3f > %g", trial, res.CertifiedRatio, wantBound)
		}
		if err := CheckInterference(res.Model, res.Trace); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := Exact(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Profit/res.Profit > wantBound+1e-9 {
			t.Fatalf("trial %d: true ratio %.3f above %g", trial, opt.Profit/res.Profit, wantBound)
		}
	}
}

func TestExactMatchesBruteForceTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 6; trial++ {
		p := gen.TreeProblem(gen.TreeConfig{N: 6, Trees: 1, Demands: 4, Unit: true}, rng)
		opt, err := Exact(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over all demand subsets with the only instance each.
		insts := p.Expand()
		best := 0.0
		for mask := 0; mask < 1<<len(insts); mask++ {
			var sel []int
			for b := 0; b < len(insts); b++ {
				if mask&(1<<b) != 0 {
					sel = append(sel, b)
				}
			}
			feasible := true
			var picked []int
			for _, x := range sel {
				picked = append(picked, x)
			}
			// Check pairwise conflicts.
			total := 0.0
			for ai := 0; ai < len(picked) && feasible; ai++ {
				total += insts[picked[ai]].Profit
				for bi := ai + 1; bi < len(picked); bi++ {
					if p.Conflict(insts[picked[ai]], insts[picked[bi]]) {
						feasible = false
						break
					}
				}
			}
			if feasible && total > best {
				best = total
			}
		}
		if math.Abs(best-opt.Profit) > 1e-9 {
			t.Fatalf("trial %d: exact %g vs brute force %g", trial, opt.Profit, best)
		}
	}
}

func TestExactNodeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := gen.TreeProblem(gen.TreeConfig{N: 30, Trees: 3, Demands: 40, Unit: true}, rng)
	if _, err := Exact(p, 10); err == nil {
		t.Fatal("node budget not enforced")
	}
}

func TestGreedyFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 6; trial++ {
		p := gen.TreeProblem(gen.TreeConfig{N: 15, Trees: 2, Demands: 12, HMin: 0.2, HMax: 1}, rng)
		res, err := Greedy(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.Solution(p, res.Selected); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := gen.TreeProblem(gen.TreeConfig{N: 25, Trees: 2, Demands: 18, Unit: true}, rng)
	a, err := TreeUnit(p, Options{Epsilon: 0.2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TreeUnit(p, Options{Epsilon: 0.2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !SameSelection(a, b) || a.Profit != b.Profit {
		t.Fatal("same seed produced different results")
	}
	c, err := TreeUnit(p, Options{Epsilon: 0.2, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	_ = c // different seed may or may not differ; just must be feasible
	if err := verify.Solution(p, c.Selected); err != nil {
		t.Fatal(err)
	}
}

func TestPaperFigure2Golden(t *testing.T) {
	// Unit heights: the three demands pairwise share edge ⟨4,5⟩, so the
	// optimum picks exactly the max-profit demand (profit 3).
	p := gen.PaperFigure2Problem(true)
	opt, err := Exact(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Profit != 3 || len(opt.Selected) != 1 {
		t.Fatalf("unit optimum = %g with %d demands, want 3 with 1", opt.Profit, len(opt.Selected))
	}
	res, err := TreeUnit(p, Options{Epsilon: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Solution(p, res.Selected); err != nil {
		t.Fatal(err)
	}
	// Heights 0.4/0.7/0.3: first and third demands fit together (0.7 on
	// the shared edge), so the optimum is 3+1 = 4.
	p2 := gen.PaperFigure2Problem(false)
	opt2, err := Exact(p2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt2.Profit != 4 || len(opt2.Selected) != 2 {
		t.Fatalf("arbitrary optimum = %g with %d demands, want 4 with 2", opt2.Profit, len(opt2.Selected))
	}
}

func TestPaperFigure1Golden(t *testing.T) {
	// Figure 1: {A,C} and {B,C} feasible, {A,B} not ⇒ optimum is {A,C}
	// with profit 9 under our profits (A=5, B=6, C=4: {B,C}=10).
	p := gen.PaperFigure1Problem()
	opt, err := Exact(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Profit != 10 {
		t.Fatalf("optimum %g want 10 ({B,C})", opt.Profit)
	}
	res, err := Arbitrary(p, Options{Epsilon: 0.25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Solution(p, res.Selected); err != nil {
		t.Fatal(err)
	}
}

func TestTraceStepsBookkeeping(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	p := gen.TreeProblem(gen.TreeConfig{N: 20, Trees: 2, Demands: 15, Unit: true}, rng)
	res, err := TreeUnit(p, Options{Epsilon: 0.25, Seed: 3, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Steps() == 0 {
		t.Fatal("no steps recorded")
	}
	if len(res.Trace.Events) == 0 {
		t.Fatal("no raise events recorded")
	}
	// Every raise's δ must be positive: raised instances were unsatisfied.
	for _, ev := range res.Trace.Events {
		if ev.Delta <= 0 {
			t.Fatalf("non-positive δ=%g at event %+v", ev.Delta, ev)
		}
	}
}

func TestKindChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	tp := gen.TreeProblem(gen.TreeConfig{N: 8, Trees: 1, Demands: 3, Unit: true}, rng)
	lpb := gen.LineProblem(gen.LineConfig{Slots: 10, Resources: 1, Demands: 3, Unit: true}, rng)
	if _, err := TreeUnit(lpb, Options{}); err == nil {
		t.Fatal("TreeUnit accepted line problem")
	}
	if _, err := LineUnit(tp, Options{}); err == nil {
		t.Fatal("LineUnit accepted tree problem")
	}
	if _, err := PanconesiSozioUnit(tp, Options{}); err == nil {
		t.Fatal("PS baseline accepted tree problem")
	}
	nonUnit := gen.TreeProblem(gen.TreeConfig{N: 8, Trees: 1, Demands: 3, HMin: 0.3, HMax: 0.4}, rng)
	if _, err := TreeUnit(nonUnit, Options{}); err == nil {
		t.Fatal("TreeUnit accepted non-unit heights")
	}
	if _, err := Sequential(nonUnit, Options{}); err == nil {
		t.Fatal("Sequential accepted non-unit heights")
	}
}
