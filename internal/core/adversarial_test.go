package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"treesched/internal/gen"
	"treesched/internal/verify"
)

func TestAdversarialHubStaysWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sawMultiStepStage := false
	for trial := 0; trial < 10; trial++ {
		p := gen.AdversarialHub(4, 3, 2, 16, rng)
		res, err := TreeUnit(p, Options{Epsilon: 0.25, Seed: uint64(trial), CollectTrace: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := verify.Solution(p, res.Selected); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.CertifiedRatio > res.Bound+1e-6 {
			t.Fatalf("trial %d: certified ratio %.3f exceeds bound %.3f under adversarial load",
				trial, res.CertifiedRatio, res.Bound)
		}
		if err := CheckInterference(res.Model, res.Trace); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, epoch := range res.Trace.StepsPerStage {
			for _, s := range epoch {
				if s > 1 {
					sawMultiStepStage = true
				}
			}
		}
		// Exact comparison: all demands pairwise conflict per network, so
		// OPT is easy to eyeball and B&B is fast.
		opt, err := Exact(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Profit/res.Profit > res.Bound+1e-9 {
			t.Fatalf("trial %d: true ratio %.3f above bound", trial, opt.Profit/res.Profit)
		}
	}
	if !sawMultiStepStage {
		t.Fatal("adversarial workload never produced a kill chain (geometric profits should)")
	}
}

func TestAdversarialDistributedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := gen.AdversarialHub(3, 4, 2, 12, rng)
	central, err := TreeUnit(p, Options{Epsilon: 0.25, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	distrib, err := DistributedUnit(p, Options{Epsilon: 0.25, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if !SameSelection(central, distrib.Result) {
		t.Fatal("adversarial workload broke the distributed/centralized equivalence")
	}
}

// TestTreeUnitPropertyBased drives the full pipeline from arbitrary quick
// inputs: any generated problem must yield a feasible solution whose
// certified ratio respects the instantiated bound.
func TestTreeUnitPropertyBased(t *testing.T) {
	f := func(seed int64, rawN, rawR, rawM uint8, rawEps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen.TreeProblem(gen.TreeConfig{
			N:       4 + int(rawN)%28,
			Trees:   1 + int(rawR)%3,
			Demands: 1 + int(rawM)%16,
			Unit:    true,
		}, rng)
		eps := 0.05 + float64(rawEps%80)/100.0
		res, err := TreeUnit(p, Options{Epsilon: eps, Seed: uint64(seed)})
		if err != nil {
			return false
		}
		if verify.Solution(p, res.Selected) != nil {
			return false
		}
		return res.CertifiedRatio <= res.Bound+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLineUnitPropertyBased mirrors the tree property test for lines with
// windows.
func TestLineUnitPropertyBased(t *testing.T) {
	f := func(seed int64, rawN, rawR, rawM uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen.LineProblem(gen.LineConfig{
			Slots:     6 + int(rawN)%40,
			Resources: 1 + int(rawR)%3,
			Demands:   1 + int(rawM)%12,
			Unit:      true,
		}, rng)
		res, err := LineUnit(p, Options{Epsilon: 0.25, Seed: uint64(seed)})
		if err != nil {
			return false
		}
		if verify.Solution(p, res.Selected) != nil {
			return false
		}
		return res.CertifiedRatio <= res.Bound+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestArbitraryPropertyBased covers the combined algorithm with random
// height mixes and capacities.
func TestArbitraryPropertyBased(t *testing.T) {
	f := func(seed int64, rawN, rawM uint8, withCaps bool) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := gen.TreeConfig{
			N:       6 + int(rawN)%20,
			Trees:   2,
			Demands: 2 + int(rawM)%12,
			HMin:    0.1, HMax: 1.0,
		}
		if withCaps {
			cfg.Capacity = 1.5
			cfg.CapJitter = 0.4
		}
		p := gen.TreeProblem(cfg, rng)
		res, err := Arbitrary(p, Options{Epsilon: 0.25, Seed: uint64(seed)})
		if err != nil {
			return false
		}
		if verify.Solution(p, res.Selected) != nil {
			return false
		}
		return res.Profit >= 0 && res.CertifiedRatio <= res.Bound+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEpsilonExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := gen.TreeProblem(gen.TreeConfig{N: 16, Trees: 2, Demands: 10, Unit: true}, rng)
	// Tight epsilon: more stages, tighter λ.
	tight, err := TreeUnit(p, Options{Epsilon: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := TreeUnit(p, Options{Epsilon: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Lambda <= loose.Lambda {
		t.Fatalf("λ(ε=0.01)=%g should exceed λ(ε=0.9)=%g", tight.Lambda, loose.Lambda)
	}
	if tight.Lambda < 0.99 {
		t.Fatalf("λ=%g < 1-ε for ε=0.01", tight.Lambda)
	}
	for _, r := range []*Result{tight, loose} {
		if err := verify.Solution(p, r.Selected); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSingleDemandProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := gen.TreeProblem(gen.TreeConfig{N: 8, Trees: 1, Demands: 1, Unit: true}, rng)
	res, err := TreeUnit(p, Options{Epsilon: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 1 {
		t.Fatalf("single unconflicted demand must be scheduled, got %d", len(res.Selected))
	}
	d, err := DistributedUnit(p, Options{Epsilon: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Selected) != 1 {
		t.Fatal("distributed single-demand run failed to schedule")
	}
}
