package core

import (
	"fmt"
	"sync"

	"treesched/internal/instance"
	"treesched/internal/lp"
	"treesched/internal/model"
	"treesched/internal/treedecomp"
)

// This file makes problem compilation a separable, reusable step: a
// Compiled holds every model.Build artifact the algorithm family may need
// for one problem — the full model, the §6 wide/narrow split, the
// Appendix-A sequential model and the end-slot line model — each built at
// most once and shared by all subsequent solves (compile once, solve
// many). The serving layer (internal/service) caches Compiled values
// keyed on a canonical problem hash.
//
// All models reachable from a Compiled are immutable after construction,
// so a single Compiled may serve concurrent solves.

// solverModel couples a compiled model with its lazily built MIS routine
// — so repeated solves skip conflict-structure construction (the explicit
// conflict graph is the quadratic part of compilation) — and a pool of
// solve scratches, so a warm solve reuses duals, active flags, stacks and
// MIS buffers instead of reallocating them (see solveScratch).
type solverModel struct {
	m        *model.Model
	once     sync.Once
	mis      misFunc
	ncliques int
	pool     sync.Pool // *solveScratch
}

func (sm *solverModel) misFn() misFunc {
	sm.once.Do(func() { sm.mis, sm.ncliques = newMISFunc(sm.m) })
	return sm.mis
}

// acquire returns a scratch sized for this model, reusing a pooled one
// when available. release returns it after the solve has finished with
// every scratch-aliased value (duals, stack, selection).
func (sm *solverModel) acquire() *solveScratch {
	sm.misFn() // ensure ncliques is resolved
	if v := sm.pool.Get(); v != nil {
		return v.(*solveScratch)
	}
	return newSolveScratch(sm.m, sm.ncliques)
}

func (sm *solverModel) release(sc *solveScratch) { sm.pool.Put(sc) }

// lazyModel builds a solverModel at most once. Build errors are cached
// too — they are deterministic properties of the problem, so retrying
// cannot succeed.
type lazyModel struct {
	once sync.Once
	sm   *solverModel
	err  error
}

func (l *lazyModel) get(build func() (*model.Model, error)) (*solverModel, error) {
	l.once.Do(func() {
		m, err := build()
		if err != nil {
			l.err = err
			return
		}
		l.sm = &solverModel{m: m}
	})
	return l.sm, l.err
}

// Compiled is the reusable compiled form of one problem under one tree
// decomposition. Obtain it with Compile; every centralized and
// distributed solver is available as a method. Methods ignore
// Options.DecompKind — the decomposition is fixed at Compile time.
// Every sub-model is built lazily on first use (each behind its own
// sync.Once, so building one never blocks solvers needing another), and
// algorithms that never touch the full model (Sequential,
// SequentialLine) pay only for their own compilation.
type Compiled struct {
	p      *instance.Problem
	decomp treedecomp.Kind

	full    lazyModel // all instances, the Compile-time decomposition
	seqTree lazyModel // Appendix A: root-fixing decomp, capture-wing π
	seqLine lazyModel // end-slot π singleton, ∆=1

	// The §6 wide/narrow split shares one classification pass, so the
	// two sub-models initialize together.
	splitOnce    sync.Once
	wide, narrow *solverModel
	splitErr     error
}

// Compile validates p and prepares it for repeated solving. decomp
// selects the tree decomposition (zero value = KindIdeal, the paper's
// choice); it is ignored for line problems.
func Compile(p *instance.Problem, decomp treedecomp.Kind) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Compiled{p: p, decomp: decomp}, nil
}

// Problem returns the problem this compilation is bound to.
func (c *Compiled) Problem() *instance.Problem { return c.p }

// fullModel lazily builds the full model (all instances).
func (c *Compiled) fullModel() (*solverModel, error) {
	return c.full.get(func() (*model.Model, error) {
		return model.Build(c.p, model.Options{DecompKind: c.decomp})
	})
}

// Model returns the full compiled model, building it on first use.
func (c *Compiled) Model() (*model.Model, error) {
	sm, err := c.fullModel()
	if err != nil {
		return nil, err
	}
	return sm.m, nil
}

// splitModels lazily builds the §6 wide/narrow sub-models. The
// classification is demand-level: a demand is wide when any of its
// instances has effective height > 1/2.
func (c *Compiled) splitModels() (wide, narrow *solverModel, err error) {
	fullSM, err := c.fullModel()
	if err != nil {
		return nil, nil, err
	}
	c.splitOnce.Do(func() {
		full := fullSM.m
		wideDemand := make([]bool, len(c.p.Demands))
		for i := range full.Insts {
			if full.EffHeight(int32(i)) > 0.5+lp.Tol {
				wideDemand[full.Insts[i].Demand] = true
			}
		}
		// The sub-models reuse the full model's tree decompositions: they
		// depend only on the trees and the decomposition kind, both fixed
		// at Compile time.
		wm, err := model.Build(c.p, model.Options{
			DecompKind: c.decomp,
			Decomps:    full.Decomps,
			Filter:     func(d instance.Inst) bool { return wideDemand[d.Demand] },
		})
		if err != nil {
			c.splitErr = err
			return
		}
		nm, err := model.Build(c.p, model.Options{
			DecompKind: c.decomp,
			Decomps:    full.Decomps,
			Filter:     func(d instance.Inst) bool { return !wideDemand[d.Demand] },
		})
		if err != nil {
			c.splitErr = err
			return
		}
		c.wide, c.narrow = &solverModel{m: wm}, &solverModel{m: nm}
	})
	return c.wide, c.narrow, c.splitErr
}

// sequentialModel lazily builds the Appendix-A model: root-fixing
// decompositions and capture-wing critical sets (∆ ≤ 2).
func (c *Compiled) sequentialModel() (*solverModel, error) {
	return c.seqTree.get(func() (*model.Model, error) {
		return model.Build(c.p, model.Options{
			DecompKind:     treedecomp.KindRootFixing,
			CaptureWingsPi: true,
		})
	})
}

// sequentialLineModel lazily builds the Bar-Noy/Berman–Dasgupta line
// model: critical sets replaced by the end-slot singleton, ∆ = 1. The
// rewrite happens once here so the shared model is never mutated by a
// solve.
func (c *Compiled) sequentialLineModel() (*solverModel, error) {
	return c.seqLine.get(func() (*model.Model, error) {
		m, err := model.Build(c.p, model.Options{})
		if err != nil {
			return nil, err
		}
		pi := model.CSR{
			Off:  make([]int32, len(m.Insts)+1),
			Data: make([]int32, len(m.Insts)),
		}
		for i := range m.Insts {
			pi.Data[i] = c.p.GlobalEdge(int(m.Insts[i].Net), m.Insts[i].V)
			pi.Off[i+1] = int32(i + 1)
		}
		m.Pi = pi
		m.Delta = 1
		return m, nil
	})
}

// effHMin returns the minimum effective height over a model's instances,
// erroring when any exceeds 1/2 (the narrow-instance precondition of
// Lemma 6.2). context names the caller for the error message.
func effHMin(m *model.Model, context string) (float64, error) {
	hmin := 1.0
	for i := range m.Insts {
		eff := m.EffHeight(int32(i))
		if eff > 0.5+lp.Tol {
			return 0, fmt.Errorf("core: %s: instance %d has effective height %g > 1/2", context, i, eff)
		}
		if eff < hmin {
			hmin = eff
		}
	}
	return hmin, nil
}
