package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"treesched/internal/instance"
	"treesched/internal/lp"
	"treesched/internal/model"
	"treesched/internal/obs"
	"treesched/internal/treedecomp"
)

// This file makes problem compilation a separable, reusable step: a
// Compiled holds every model.Build artifact the algorithm family may need
// for one problem — the full model, the §6 wide/narrow split, the
// Appendix-A sequential model and the end-slot line model — each built at
// most once and shared by all subsequent solves (compile once, solve
// many). The serving layer (internal/service) caches Compiled values
// keyed on a canonical problem hash.
//
// All models reachable from a Compiled are immutable after construction,
// so a single Compiled may serve concurrent solves.

// solverModel couples a compiled model with its lazily built MIS routine
// — so repeated solves skip conflict-structure construction (the explicit
// conflict graph is the quadratic part of compilation) — and a pool of
// solve scratches, so a warm solve reuses duals, active flags, stacks and
// MIS buffers instead of reallocating them (see solveScratch).
type solverModel struct {
	m        *model.Model
	stats    model.BuildStats // per-phase build cost of m (zero for copies)
	once     sync.Once
	mis      misFunc
	ncliques int
	pool     sync.Pool // *solveScratch
}

func (sm *solverModel) misFn() misFunc {
	sm.once.Do(func() { sm.mis, sm.ncliques = newMISFunc(sm.m) })
	return sm.mis
}

// acquire returns a scratch sized for this model, reusing a pooled one
// when available. release returns it after the solve has finished with
// every scratch-aliased value (duals, stack, selection).
func (sm *solverModel) acquire() *solveScratch {
	sm.misFn() // ensure ncliques is resolved
	if v := sm.pool.Get(); v != nil {
		return v.(*solveScratch)
	}
	return newSolveScratch(sm.m, sm.ncliques)
}

func (sm *solverModel) release(sc *solveScratch) { sm.pool.Put(sc) }

// lazyModel builds a solverModel at most once. Build errors are cached
// too — they are deterministic properties of the problem, so retrying
// cannot succeed.
type lazyModel struct {
	once  sync.Once
	ready atomic.Bool
	sm    *solverModel
	err   error
}

// get builds through a closure that receives the BuildStats sink, so
// every lazy build's per-phase cost is captured on the solverModel and
// later solves can attach it to their compile spans.
func (l *lazyModel) get(build func(st *model.BuildStats) (*model.Model, error)) (*solverModel, error) {
	l.once.Do(func() {
		var st model.BuildStats
		m, err := build(&st)
		if err != nil {
			l.err = err
			return
		}
		l.sm = &solverModel{m: m, stats: st}
		l.ready.Store(true)
	})
	return l.sm, l.err
}

// peek returns the solver model if it has been built, nil otherwise —
// without triggering a build. The atomic publish in get/preset makes the
// read safe against a concurrent first build.
func (l *lazyModel) peek() *solverModel {
	if !l.ready.Load() {
		return nil
	}
	return l.sm
}

// preset installs an externally built solver model (the delta
// recompilation path), consuming the once so later get calls return it.
func (l *lazyModel) preset(sm *solverModel) {
	l.once.Do(func() {
		l.sm = sm
		l.ready.Store(true)
	})
}

// Compiled is the reusable compiled form of one problem under one tree
// decomposition. Obtain it with Compile; every centralized and
// distributed solver is available as a method. Methods ignore
// Options.DecompKind — the decomposition is fixed at Compile time.
// Every sub-model is built lazily on first use (each behind its own
// sync.Once, so building one never blocks solvers needing another), and
// algorithms that never touch the full model (Sequential,
// SequentialLine) pay only for their own compilation.
type Compiled struct {
	p      *instance.Problem
	decomp treedecomp.Kind

	full    lazyModel // all instances, the Compile-time decomposition
	seqTree lazyModel // Appendix A: root-fixing decomp, capture-wing π
	seqLine lazyModel // end-slot π singleton, ∆=1

	// The §6 wide/narrow split shares one classification pass, so the
	// two sub-models initialize together. splitReady publishes the built
	// split for race-free peeking (scratch migration in WithJobs).
	splitOnce    sync.Once
	splitReady   atomic.Bool
	wide, narrow *solverModel
	splitErr     error

	// Delta-recompilation state (WithJobs). decompsHint/seqDecompsHint
	// carry prebuilt tree decompositions across generations so even the
	// churn-threshold fallback never rebuilds them; churn overrides the
	// fallback threshold (0 = DefaultChurnThreshold); incremental records
	// whether this Compiled was produced by the delta path.
	decompsHint    []*treedecomp.Decomposition
	seqDecompsHint []*treedecomp.Decomposition
	churn          float64
	incremental    bool

	// adoptWide/adoptNarrow hold solver scratches migrated from the
	// parent generation's wide/narrow sub-models, consumed (under
	// splitOnce) when this generation builds its own split.
	adoptWide, adoptNarrow *solveScratch

	// workers is the compile fan-out knob (model.Options.Workers
	// semantics: 0 = GOMAXPROCS, 1 = the serial oracle) consumed by every
	// lazy model build this compilation triggers. Set by
	// SetCompileWorkers or adopted from Options.CompileWorkers at the
	// entry points; stored atomically because concurrent first solves may
	// carry different options. The knob only selects how many cores a
	// build spends — the built model is byte-identical at every setting
	// (pinned by the parallel-compile equivalence suite) — so whichever
	// racing store lands before the once-guarded build wins harmlessly.
	workers atomic.Int32
}

// SetCompileWorkers fixes the compile fan-out for every lazy model build
// of this compilation: 0 (the default) uses GOMAXPROCS, 1 keeps the
// serial path, n uses n workers. Output never depends on the setting.
func (c *Compiled) SetCompileWorkers(w int) { c.workers.Store(int32(w)) }

// compileWorkers returns the current fan-out knob for a model build.
func (c *Compiled) compileWorkers() int {
	w := int(c.workers.Load())
	if w < 0 {
		return 1
	}
	return w
}

// prep applies the option defaults and adopts a non-zero CompileWorkers
// before any lazy build the call may trigger. Every compiled-model entry
// point that accepts Options runs through it.
func (c *Compiled) prep(opts Options) Options {
	if opts.CompileWorkers != 0 {
		c.workers.Store(int32(opts.CompileWorkers))
	}
	return opts.withDefaults()
}

// Compile validates p and prepares it for repeated solving. decomp
// selects the tree decomposition (zero value = KindIdeal, the paper's
// choice); it is ignored for line problems.
func Compile(p *instance.Problem, decomp treedecomp.Kind) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Compiled{p: p, decomp: decomp}, nil
}

// Problem returns the problem this compilation is bound to.
func (c *Compiled) Problem() *instance.Problem { return c.p }

// fullModel lazily builds the full model (all instances), reusing
// prebuilt tree decompositions when a previous generation supplies them.
// The build fans out across compileWorkers() cores; the resulting model
// is identical at any fan-out.
func (c *Compiled) fullModel() (*solverModel, error) {
	return c.full.get(func(st *model.BuildStats) (*model.Model, error) {
		return model.Build(c.p, model.Options{
			DecompKind: c.decomp,
			Decomps:    c.decompsHint,
			Workers:    c.compileWorkers(),
			Stats:      st,
		})
	})
}

// telModel wraps a lazy model getter in a "compile" span on tel. The
// span times this call's share of compilation — near zero when the
// model is already built — while the attached build_* counters always
// describe the model's original build cost (model.BuildStats), so a
// trace can tell "compiled here" from "served from the compile cache".
func telModel(tel *obs.Trace, get func() (*solverModel, error)) (*solverModel, error) {
	if tel == nil {
		return get()
	}
	sp := tel.Begin("compile")
	sm, err := get()
	if err == nil && sm.stats.TotalNs > 0 {
		tel.Add(sp, "build_total_ns", sm.stats.TotalNs)
		tel.Add(sp, "build_decomp_ns", sm.stats.DecompNs)
		tel.Add(sp, "build_layer_ns", sm.stats.LayerNs)
		tel.Add(sp, "build_path_ns", sm.stats.PathNs)
		tel.Add(sp, "build_index_ns", sm.stats.IndexNs)
	}
	tel.End(sp)
	return sm, err
}

// Model returns the full compiled model, building it on first use.
func (c *Compiled) Model() (*model.Model, error) {
	sm, err := c.fullModel()
	if err != nil {
		return nil, err
	}
	return sm.m, nil
}

// splitModels lazily builds the §6 wide/narrow sub-models. The
// classification is demand-level: a demand is wide when any of its
// instances has effective height > 1/2.
func (c *Compiled) splitModels() (wide, narrow *solverModel, err error) {
	fullSM, err := c.fullModel()
	if err != nil {
		return nil, nil, err
	}
	c.splitOnce.Do(func() {
		full := fullSM.m
		wideDemand := make([]bool, len(c.p.Demands))
		for i := range full.Insts {
			if full.EffHeight(int32(i)) > 0.5+lp.Tol {
				wideDemand[full.Insts[i].Demand] = true
			}
		}
		// The sub-models are row copies of the full model: the layered
		// rows are per-instance functions, so filtering by copying (no
		// tree walks, no path rebuilds) produces the model a filtered
		// Build would — see model.FilterCopy.
		wm, err := full.FilterCopy(func(d instance.Inst) bool { return wideDemand[d.Demand] })
		if err != nil {
			c.splitErr = err
			return
		}
		nm, err := full.FilterCopy(func(d instance.Inst) bool { return !wideDemand[d.Demand] })
		if err != nil {
			c.splitErr = err
			return
		}
		c.wide, c.narrow = &solverModel{m: wm}, &solverModel{m: nm}
		// Delta generations migrate the parent's sub-model scratches so
		// the first re-solve of each class allocates like a warm solve.
		if c.adoptWide != nil {
			c.adoptWide.adapt(wm)
			c.wide.pool.Put(c.adoptWide)
			c.adoptWide = nil
		}
		if c.adoptNarrow != nil {
			c.adoptNarrow.adapt(nm)
			c.narrow.pool.Put(c.adoptNarrow)
			c.adoptNarrow = nil
		}
		c.splitReady.Store(true)
	})
	return c.wide, c.narrow, c.splitErr
}

// sequentialModel lazily builds the Appendix-A model: root-fixing
// decompositions and capture-wing critical sets (∆ ≤ 2). A delta
// generation reuses the parent's root-fixing decompositions.
func (c *Compiled) sequentialModel() (*solverModel, error) {
	return c.seqTree.get(func(st *model.BuildStats) (*model.Model, error) {
		return model.Build(c.p, model.Options{
			DecompKind:     treedecomp.KindRootFixing,
			CaptureWingsPi: true,
			Decomps:        c.seqDecompsHint,
			Workers:        c.compileWorkers(),
			Stats:          st,
		})
	})
}

// sequentialLineModel lazily builds the Bar-Noy/Berman–Dasgupta line
// model: critical sets replaced by the end-slot singleton, ∆ = 1. The
// rewrite happens once here so the shared model is never mutated by a
// solve.
func (c *Compiled) sequentialLineModel() (*solverModel, error) {
	return c.seqLine.get(func(st *model.BuildStats) (*model.Model, error) {
		m, err := model.Build(c.p, model.Options{Workers: c.compileWorkers(), Stats: st})
		if err != nil {
			return nil, err
		}
		pi := model.CSR{
			Off:  make([]int32, len(m.Insts)+1),
			Data: make([]int32, len(m.Insts)),
		}
		for i := range m.Insts {
			pi.Data[i] = c.p.GlobalEdge(int(m.Insts[i].Net), m.Insts[i].V)
			pi.Off[i+1] = int32(i + 1)
		}
		m.Pi = pi
		m.Delta = 1
		return m, nil
	})
}

// DefaultChurnThreshold is the fraction of the demand set that may
// change in one WithJobs delta before the incremental rebuild is
// abandoned for a full recompile: past it the copy bookkeeping
// approaches the cost of computing every row afresh, and a full Build
// (still reusing the tree decompositions) is simpler and no slower.
const DefaultChurnThreshold = 0.5

// SetChurnThreshold overrides the WithJobs fallback threshold for this
// compilation and every generation derived from it (0 restores the
// default). Not safe to call concurrently with WithJobs.
func (c *Compiled) SetChurnThreshold(t float64) { c.churn = t }

// Incremental reports whether this Compiled was produced by the WithJobs
// delta path (false for fresh compiles and churn-threshold fallbacks) —
// the observability hook for session metrics and the online benchmark.
func (c *Compiled) Incremental() bool { return c.incremental }

// seqHint returns the best available root-fixing decompositions to carry
// into the next generation.
func (c *Compiled) seqHint() []*treedecomp.Decomposition {
	if sm := c.seqTree.peek(); sm != nil {
		return sm.m.Decomps
	}
	return c.seqDecompsHint
}

// WithJobs returns the compilation of the problem obtained by removing
// the demands whose current ids are listed in removed and appending the
// added demands (ids are reassigned; survivors keep their relative order
// and are renumbered densely, then added demands follow in input order).
// The networks — trees or timeline, and their capacities — are fixed for
// the lifetime of a session; only the demand set changes.
//
// When the full model of c has been built and the delta is below the
// churn threshold, the new model is rebuilt incrementally
// (model.WithDelta): rows of surviving demands are copied, only added
// demands pay tree walks and path materialization, the conflict clique
// cover is repacked from the rebuilt indexes, and a pooled solver
// scratch migrates from c so the re-solve allocates like a warm solve.
// Past the threshold — or when c was never solved — it falls back to a
// full recompile that still reuses the tree decompositions. Either way
// the result is indistinguishable from Compile on the effective problem:
// the equivalence suite asserts byte-identical solver output.
func (c *Compiled) WithJobs(added []instance.Demand, removed []int) (*Compiled, error) {
	old := len(c.p.Demands)
	rm := make([]bool, old)
	for _, id := range removed {
		if id < 0 || id >= old {
			return nil, fmt.Errorf("core: WithJobs: removed demand %d outside 0..%d", id, old-1)
		}
		if rm[id] {
			return nil, fmt.Errorf("core: WithJobs: demand %d removed twice", id)
		}
		rm[id] = true
	}

	demands := make([]instance.Demand, 0, old-len(removed)+len(added))
	oldOf := make([]int32, 0, old-len(removed)+len(added))
	for i, d := range c.p.Demands {
		if rm[i] {
			continue
		}
		d.ID = len(demands)
		demands = append(demands, d)
		oldOf = append(oldOf, int32(i))
	}
	for _, d := range added {
		d.ID = len(demands)
		demands = append(demands, d)
		oldOf = append(oldOf, -1)
	}
	np := &instance.Problem{
		Kind:         c.p.Kind,
		Trees:        c.p.Trees,
		NumVertices:  c.p.NumVertices,
		NumSlots:     c.p.NumSlots,
		NumResources: c.p.NumResources,
		Capacities:   c.p.Capacities,
		Demands:      demands,
	}

	threshold := c.churn
	if threshold == 0 {
		threshold = DefaultChurnThreshold
	}
	base := old
	if base < 1 {
		base = 1
	}
	parent := c.full.peek()

	if parent == nil || float64(len(added)+len(removed)) > threshold*float64(base) {
		// Full recompile: either there is no model to delta from, or the
		// churn makes copying pointless. Tree decompositions still carry
		// over (they depend only on the fixed networks).
		nc, err := Compile(np, c.decomp)
		if err != nil {
			return nil, err
		}
		nc.churn = c.churn
		nc.workers.Store(c.workers.Load())
		nc.seqDecompsHint = c.seqHint()
		if parent != nil {
			nc.decompsHint = parent.m.Decomps
		} else {
			nc.decompsHint = c.decompsHint
		}
		return nc, nil
	}

	nm, err := parent.m.WithDelta(np, oldOf)
	if err != nil {
		return nil, err
	}
	nc := &Compiled{
		p:              np,
		decomp:         c.decomp,
		churn:          c.churn,
		incremental:    true,
		decompsHint:    nm.Decomps,
		seqDecompsHint: c.seqHint(),
	}
	nc.workers.Store(c.workers.Load())
	sm := &solverModel{m: nm}
	// Scratch adoption: hand one of the parent's pooled scratches to the
	// child so the first re-solve reuses warm buffers instead of
	// reallocating them. The parent is typically discarded after a delta,
	// so this steals nothing that would be missed.
	if v := parent.pool.Get(); v != nil {
		sc := v.(*solveScratch)
		sc.adapt(nm)
		sm.pool.Put(sc)
	}
	// The split sub-models (Arbitrary) pool their own scratches; migrate
	// one of each if the parent ever built its split (splitReady makes
	// the peek race-free against a concurrent first split build).
	if c.splitReady.Load() {
		if v := c.wide.pool.Get(); v != nil {
			nc.adoptWide = v.(*solveScratch)
		}
		if v := c.narrow.pool.Get(); v != nil {
			nc.adoptNarrow = v.(*solveScratch)
		}
	}
	nc.full.preset(sm)
	return nc, nil
}

// effHMin returns the minimum effective height over a model's instances,
// erroring when any exceeds 1/2 (the narrow-instance precondition of
// Lemma 6.2). context names the caller for the error message.
func effHMin(m *model.Model, context string) (float64, error) {
	hmin := 1.0
	for i := range m.Insts {
		eff := m.EffHeight(int32(i))
		if eff > 0.5+lp.Tol {
			return 0, fmt.Errorf("core: %s: instance %d has effective height %g > 1/2", context, i, eff)
		}
		if eff < hmin {
			hmin = eff
		}
	}
	return hmin, nil
}
