package core

import (
	"fmt"
	"sort"

	"treesched/internal/instance"
	"treesched/internal/lp"
)

// Sequential runs the Appendix-A sequential algorithm for the unit-height
// case of tree networks: root-fixing decompositions, instances processed
// tree by tree in descending capture depth, singleton raises with
// π(d) = wings of the capture node (∆=2), slackness λ=1. The guarantee is
// 3 (Lemma 3.1 with ∆=2, λ=1), improving to 2 when there is a single
// tree-network (the α variables are dropped, matching Lewin-Eytan et al.).
func Sequential(p *instance.Problem, opts Options) (*Result, error) {
	c, err := Compile(p, opts.DecompKind)
	if err != nil {
		return nil, err
	}
	return c.Sequential(opts)
}

// Sequential is the compiled-model form of the package-level Sequential.
// It uses the Compiled's lazily built Appendix-A model (root-fixing
// decomposition, capture-wing critical sets), not the full model.
func (c *Compiled) Sequential(opts Options) (*Result, error) {
	opts = c.prep(opts)
	p := c.p
	if p.Kind != instance.KindTree {
		return nil, fmt.Errorf("core: Sequential on %v problem", p.Kind)
	}
	if !p.UnitHeight() {
		return nil, fmt.Errorf("core: Sequential requires unit heights")
	}
	tel := opts.Telemetry
	sm, err := telModel(tel, c.sequentialModel)
	if err != nil {
		return nil, err
	}
	m := sm.m

	var rule lp.Rule = lp.Unit{}
	bound := 3.0
	if len(p.Trees) == 1 {
		rule = lp.UnitNoAlpha{}
		bound = 2.0
	}

	// σ(T_q): instances of tree q ordered by descending capture depth
	// (= ascending group), ties by id; trees processed in index order.
	order := make([]int32, len(m.Insts))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if m.Insts[ia].Net != m.Insts[ib].Net {
			return m.Insts[ia].Net < m.Insts[ib].Net
		}
		if m.Group[ia] != m.Group[ib] {
			return m.Group[ia] < m.Group[ib]
		}
		return ia < ib
	})

	duals := lp.NewDuals(m)
	var trace *Trace
	if opts.CollectTrace {
		trace = &Trace{}
	}
	var stack []StackEntry
	step := 0
	sp := tel.Begin("phase1")
	// One pass suffices: raising an instance never lowers any LHS, and
	// every instance is examined in σ order — exactly the "earliest
	// unsatisfied" loop of Figure 8.
	for _, i := range order {
		if lp.Satisfied(rule, m, duals, i, 1.0) {
			continue
		}
		step++
		delta := rule.Raise(m, duals, i)
		if trace != nil {
			trace.Events = append(trace.Events, RaiseEvent{
				Inst: i, Delta: delta,
				Epoch: int(m.Insts[i].Net) + 1, Stage: 1, Step: step,
			})
		}
		stack = append(stack, StackEntry{
			Epoch: int(m.Insts[i].Net) + 1, Stage: 1, Step: step,
			Set: []int32{i},
		})
	}
	if tel != nil {
		tel.Add(sp, "raises", int64(step))
	}
	tel.End(sp)
	sp = tel.Begin("verify_lambda")
	if err := lp.VerifyLambdaSatisfied(rule, m, duals, 1.0); err != nil {
		tel.End(sp)
		return nil, fmt.Errorf("core: sequential (λ=1): %w: %v", ErrCertificate, err)
	}
	tel.End(sp)
	sp = tel.Begin("phase2")
	sel := Phase2(m, stack)
	tel.End(sp)
	sp = tel.Begin("assemble")
	defer tel.End(sp)
	res := &Result{
		Name:   "sequential",
		Lambda: 1,
		Bound:  bound,
		Trace:  trace,
		Model:  m,
	}
	for _, i := range sel {
		res.Selected = append(res.Selected, m.Insts[i])
		res.Profit += m.Insts[i].Profit
	}
	res.DualUB = lp.DualObjective(rule, m, duals)
	if res.Profit > 0 {
		res.CertifiedRatio = res.DualUB / res.Profit
	}
	return res, nil
}
