package core

import (
	"math"
	"math/rand"
	"testing"

	"treesched/internal/gen"
	"treesched/internal/lp"
	"treesched/internal/model"
	"treesched/internal/verify"
)

func TestUnitXiMatchesPaperConstants(t *testing.T) {
	// §5: ξ = 14/15 for trees (∆=6); §7: ξ = 8/9 for lines (∆=3).
	if got := UnitXi(6); math.Abs(got-14.0/15.0) > 1e-15 {
		t.Fatalf("UnitXi(6)=%g want 14/15", got)
	}
	if got := UnitXi(3); math.Abs(got-8.0/9.0) > 1e-15 {
		t.Fatalf("UnitXi(3)=%g want 8/9", got)
	}
}

func TestNarrowXiDoublingGuarantee(t *testing.T) {
	// The kill argument needs 2·ξ·hmin/((1−ξ)(1+∆²)) ≥ 2 — verify the
	// chosen ξ satisfies it across the parameter range.
	for _, delta := range []int{1, 2, 3, 6} {
		for _, hmin := range []float64{0.5, 0.25, 0.1, 0.01} {
			xi := NarrowXi(delta, hmin)
			if xi <= 0 || xi >= 1 {
				t.Fatalf("ξ=%g outside (0,1)", xi)
			}
			growth := 2 * xi * hmin / ((1 - xi) * (1 + float64(delta*delta)))
			if growth < 2-1e-9 {
				t.Fatalf("∆=%d hmin=%g: growth factor %g < 2", delta, hmin, growth)
			}
		}
	}
}

func TestNewScheduleStagesReachEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := gen.TreeProblem(gen.TreeConfig{N: 16, Trees: 2, Demands: 8, Unit: true}, rng)
	m, err := model.Build(p, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.5, 0.25, 0.1, 0.01} {
		s := NewSchedule(m, UnitXi(m.Delta), eps)
		if math.Pow(s.Xi, float64(s.Stages)) > eps {
			t.Fatalf("ε=%g: ξ^b = %g > ε", eps, math.Pow(s.Xi, float64(s.Stages)))
		}
		if s.Stages > 1 && math.Pow(s.Xi, float64(s.Stages-1)) <= eps {
			t.Fatalf("ε=%g: b=%d not minimal", eps, s.Stages)
		}
		if s.Lambda < 1-eps-1e-12 {
			t.Fatalf("ε=%g: λ=%g below 1-ε", eps, s.Lambda)
		}
		// Thresholds are increasing and end at λ.
		for j := 1; j < len(s.Thresholds); j++ {
			if s.Thresholds[j] <= s.Thresholds[j-1] {
				t.Fatal("thresholds not increasing")
			}
		}
		if s.Thresholds[len(s.Thresholds)-1] != s.Lambda {
			t.Fatal("final threshold != λ")
		}
	}
}

func TestNewSchedulePanicsOnBadEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := gen.TreeProblem(gen.TreeConfig{N: 8, Trees: 1, Demands: 3, Unit: true}, rng)
	m, err := model.Build(p, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ε=%g accepted", eps)
				}
			}()
			NewSchedule(m, 14.0/15.0, eps)
		}()
	}
}

func TestPhase2CoverageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		p := gen.TreeProblem(gen.TreeConfig{
			N: 12 + rng.Intn(20), Trees: 1 + rng.Intn(2), Demands: 5 + rng.Intn(15), Unit: true,
		}, rng)
		m, err := model.Build(p, model.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sched := NewSchedule(m, UnitXi(m.Delta), 0.25)
		duals, stack, err := Phase1(m, lp.Unit{}, sched, uint64(trial), nil)
		if err != nil {
			t.Fatal(err)
		}
		_ = duals
		sel := Phase2(m, stack)
		if err := CheckPhase2Coverage(m, stack, sel); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := CheckRaisedSetsIndependent(m, stack); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestDistributedPSMatchesCentralized(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 4; trial++ {
		p := gen.LineProblem(gen.LineConfig{
			Slots: 20, Resources: 2, Demands: 8, Unit: true, MaxProc: 6,
		}, rng)
		seed := uint64(trial)
		central, err := PanconesiSozioUnit(p, Options{Epsilon: 0.25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		distrib, err := DistributedPanconesiSozio(p, Options{Epsilon: 0.25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !SameSelection(central, distrib.Result) {
			t.Fatalf("trial %d: PS distributed selection differs", trial)
		}
		if err := verify.Solution(p, distrib.Selected); err != nil {
			t.Fatal(err)
		}
	}
	// Rejections.
	tp := gen.TreeProblem(gen.TreeConfig{N: 8, Trees: 1, Demands: 3, Unit: true}, rng)
	if _, err := DistributedPanconesiSozio(tp, Options{}); err == nil {
		t.Fatal("accepted tree problem")
	}
}
