package core

import (
	"fmt"
	"slices"
	"sort"

	"treesched/internal/instance"
	"treesched/internal/lp"
	"treesched/internal/obs"
)

// ErrExactTooLarge is returned when branch and bound exceeds its node
// budget.
var ErrExactTooLarge = fmt.Errorf("core: exact solver exceeded its node budget")

// Exact computes the optimal solution by branch and bound, for measuring
// true approximation ratios on small instances (the problem is NP-hard —
// §1 — so this cannot scale). maxNodes caps the search-tree size; 0 means
// 50 million.
func Exact(p *instance.Problem, maxNodes int64) (*Result, error) {
	c, err := Compile(p, 0)
	if err != nil {
		return nil, err
	}
	return c.Exact(maxNodes)
}

// Exact is the compiled-model form of the package-level Exact.
func (c *Compiled) Exact(maxNodes int64) (*Result, error) {
	return c.ExactTraced(maxNodes, nil)
}

// ExactTraced is Exact with a phase timeline recorded on tel (Exact
// takes no Options, so the telemetry hook is explicit here). A nil tel
// is exactly Exact.
func (c *Compiled) ExactTraced(maxNodes int64, tel *obs.Trace) (*Result, error) {
	sm, err := telModel(tel, c.fullModel)
	if err != nil {
		return nil, err
	}
	m := sm.m
	if maxNodes == 0 {
		maxNodes = 50_000_000
	}
	n := len(m.Insts)
	// Order instances by profit descending for earlier good incumbents.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return m.Insts[order[a]].Profit > m.Insts[order[b]].Profit
	})
	// ub[k] bounds the profit attainable from order[k:]: each demand's
	// best remaining instance counted once.
	ub := make([]float64, n+1)
	bestOf := make(map[int32]float64)
	for k := n - 1; k >= 0; k-- {
		d := m.Insts[order[k]]
		ub[k] = ub[k+1]
		if d.Profit > bestOf[d.Demand] {
			ub[k] += d.Profit - bestOf[d.Demand]
			bestOf[d.Demand] = d.Profit
		}
	}

	sp := tel.Begin("search")
	load := make([]float64, m.EdgeSpace)
	used := make([]bool, m.NumDemands)
	var best float64
	var bestSet []int32
	cur := make([]int32, 0, n)
	var nodes int64

	var dfs func(k int, profit float64) error
	dfs = func(k int, profit float64) error {
		nodes++
		if nodes > maxNodes {
			return ErrExactTooLarge
		}
		if profit > best {
			best = profit
			bestSet = append(bestSet[:0], cur...)
		}
		if k == n || profit+ub[k] <= best+lp.Tol {
			return nil
		}
		i := order[k]
		d := m.Insts[i]
		// Branch 1: take i if feasible.
		if !used[d.Demand] {
			fits := true
			for _, e := range m.Paths.Row(i) {
				if load[e]+d.Height > m.Cap[e]+lp.Tol {
					fits = false
					break
				}
			}
			if fits {
				used[d.Demand] = true
				for _, e := range m.Paths.Row(i) {
					load[e] += d.Height
				}
				cur = append(cur, i)
				if err := dfs(k+1, profit+d.Profit); err != nil {
					return err
				}
				cur = cur[:len(cur)-1]
				for _, e := range m.Paths.Row(i) {
					load[e] -= d.Height
				}
				used[d.Demand] = false
			}
		}
		// Branch 2: skip i.
		return dfs(k+1, profit)
	}
	err = dfs(0, 0)
	if tel != nil {
		tel.Add(sp, "nodes", nodes)
	}
	tel.End(sp)
	if err != nil {
		return nil, err
	}
	sp = tel.Begin("assemble")
	defer tel.End(sp)
	res := &Result{Name: "exact", Lambda: 1, Bound: 1, Model: m}
	slices.Sort(bestSet)
	for _, i := range bestSet {
		res.Selected = append(res.Selected, m.Insts[i])
		res.Profit += m.Insts[i].Profit
	}
	res.DualUB = res.Profit
	res.CertifiedRatio = 1
	return res, nil
}

// Greedy is the naive baseline: instances by descending profit, added when
// they fit. No approximation guarantee; used for experiment context.
func Greedy(p *instance.Problem) (*Result, error) {
	c, err := Compile(p, 0)
	if err != nil {
		return nil, err
	}
	return c.Greedy()
}

// Greedy is the compiled-model form of the package-level Greedy.
func (c *Compiled) Greedy() (*Result, error) {
	return c.GreedyTraced(nil)
}

// GreedyTraced is Greedy with a phase timeline recorded on tel (Greedy
// takes no Options, so the telemetry hook is explicit here). A nil tel
// is exactly Greedy.
func (c *Compiled) GreedyTraced(tel *obs.Trace) (*Result, error) {
	sm, err := telModel(tel, c.fullModel)
	if err != nil {
		return nil, err
	}
	m := sm.m
	n := len(m.Insts)
	sp := tel.Begin("select")
	defer tel.End(sp)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return m.Insts[order[a]].Profit > m.Insts[order[b]].Profit
	})
	load := make([]float64, m.EdgeSpace)
	used := make([]bool, m.NumDemands)
	res := &Result{Name: "greedy", Model: m}
	for _, i := range order {
		d := m.Insts[i]
		if used[d.Demand] {
			continue
		}
		fits := true
		for _, e := range m.Paths.Row(i) {
			if load[e]+d.Height > m.Cap[e]+lp.Tol {
				fits = false
				break
			}
		}
		if !fits {
			continue
		}
		used[d.Demand] = true
		for _, e := range m.Paths.Row(i) {
			load[e] += d.Height
		}
		res.Selected = append(res.Selected, d)
		res.Profit += d.Profit
	}
	sort.Slice(res.Selected, func(a, b int) bool { return res.Selected[a].ID < res.Selected[b].ID })
	return res, nil
}

// instanceKey identifies an instance descriptor for set comparisons.
func instanceKey(d instance.Inst) [4]int32 {
	return [4]int32{d.Demand, d.Net, d.U, d.V}
}

// SameSelection reports whether two results selected identical instance
// sets (by demand, network and placement).
func SameSelection(a, b *Result) bool {
	if len(a.Selected) != len(b.Selected) {
		return false
	}
	set := make(map[[4]int32]bool, len(a.Selected))
	for _, d := range a.Selected {
		set[instanceKey(d)] = true
	}
	for _, d := range b.Selected {
		if !set[instanceKey(d)] {
			return false
		}
	}
	return true
}
