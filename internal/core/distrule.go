package core

import (
	"treesched/internal/lp"
	"treesched/internal/model"
)

// distRule is the node-local mirror of an lp.Rule: it evaluates the dual
// constraint and computes raise increments from a processor's private β
// copies instead of the shared duals. Keeping the three rule variants
// behind this interface is what lets one protocol engine (distproto.go)
// drive every distributed algorithm, the same way lp.Rule lets runPhases
// drive every centralized one.
//
// The arithmetic must match lp.Rule exactly — the tested invariant is
// that distributed and centralized runs select identical instances for
// equal seeds — and it does, because every raiser of an edge relevant to
// a node shares a resource with that node, so local β copies never drift
// (cross-checked again in assembleDistributed).
type distRule interface {
	// lhs evaluates the dual constraint LHS of owned instance i from local
	// state; matches lp.Rule.LHS.
	lhs(m *model.Model, ns *nodeState, i int32) float64
	// delta returns the raise amount for instance i given slack s and
	// critical-set size k; matches lp.Rule.Raise's α increment.
	delta(m *model.Model, i int32, s, k float64) float64
	// betaInc returns the β increment on critical edge e implied by a
	// raise of δ on an instance with critical-set size k.
	betaInc(m *model.Model, e int32, k, delta float64) float64
}

// localRule maps an lp.Rule to its node-local mirror.
func localRule(rule lp.Rule) distRule {
	switch rule.(type) {
	case lp.Unit:
		return unitLocal{}
	case lp.Narrow:
		return narrowLocal{}
	case lp.Capacitated:
		return capLocal{}
	default:
		panic("core: distributed protocol does not support rule " + rule.Name())
	}
}

// unitLocal mirrors lp.Unit: LHS = α + Σβ, δ = s/(k+1), β += δ.
type unitLocal struct{}

func (unitLocal) lhs(m *model.Model, ns *nodeState, i int32) float64 {
	sum := 0.0
	for _, e := range m.Paths.Row(i) {
		sum += ns.beta[e]
	}
	return ns.alpha + sum
}

func (unitLocal) delta(m *model.Model, i int32, s, k float64) float64 {
	return s / (k + 1)
}

func (unitLocal) betaInc(m *model.Model, e int32, k, delta float64) float64 {
	return delta
}

// narrowLocal mirrors lp.Narrow: LHS = α + h·Σβ, δ = s/(1+2hk²),
// β += 2kδ.
type narrowLocal struct{}

func (narrowLocal) lhs(m *model.Model, ns *nodeState, i int32) float64 {
	sum := 0.0
	for _, e := range m.Paths.Row(i) {
		sum += ns.beta[e]
	}
	return ns.alpha + m.Insts[i].Height*sum
}

func (narrowLocal) delta(m *model.Model, i int32, s, k float64) float64 {
	h := m.Insts[i].Height
	return s / (1 + 2*h*k*k)
}

func (narrowLocal) betaInc(m *model.Model, e int32, k, delta float64) float64 {
	return 2 * k * delta
}

// capLocal mirrors lp.Capacitated: LHS = α + h·Σβ/c(e), δ = s/(1+2hk²),
// β += 2k·c(e)·δ.
type capLocal struct{}

func (capLocal) lhs(m *model.Model, ns *nodeState, i int32) float64 {
	sum := 0.0
	for _, e := range m.Paths.Row(i) {
		sum += ns.beta[e] / m.Cap[e]
	}
	return ns.alpha + m.Insts[i].Height*sum
}

func (capLocal) delta(m *model.Model, i int32, s, k float64) float64 {
	h := m.Insts[i].Height
	return s / (1 + 2*h*k*k)
}

func (capLocal) betaInc(m *model.Model, e int32, k, delta float64) float64 {
	return 2 * k * m.Cap[e] * delta
}

// nodeState is the per-processor private state of the protocol.
type nodeState struct {
	mine       []int32           // instance ids owned by this processor
	alpha      float64           // α of the owned demand
	beta       map[int32]float64 // local copies of β for relevant edges
	relevant   map[int32]bool    // edges on any owned instance's path
	stack      []int32           // raised instances, in raise order
	raiseSteps []int             // global step number of each raise (parallel to stack)
	selected   []int32           // phase-2 output
}

func newNodeState(m *model.Model, u int) *nodeState {
	ns := &nodeState{
		mine:     m.InstsOf.Row(int32(u)),
		beta:     map[int32]float64{},
		relevant: map[int32]bool{},
	}
	for _, i := range ns.mine {
		for _, e := range m.Paths.Row(i) {
			ns.relevant[e] = true
		}
	}
	return ns
}

// raiseLocal raises owned instance i tight against local state and
// returns δ; mirrors lp.Rule.Raise.
func (ns *nodeState) raiseLocal(m *model.Model, dr distRule, i int32) float64 {
	s := m.Insts[i].Profit - dr.lhs(m, ns, i)
	if s <= lp.Tol {
		return 0
	}
	pi := m.Pi.Row(i)
	k := float64(len(pi))
	delta := dr.delta(m, i, s, k)
	ns.alpha += delta
	for _, e := range pi {
		ns.applyBeta(e, dr.betaInc(m, e, k, delta))
	}
	return delta
}

// applyRemoteRaise folds a neighbor's announced raise into local β copies.
func (ns *nodeState) applyRemoteRaise(m *model.Model, dr distRule, i int32, delta float64) {
	pi := m.Pi.Row(i)
	k := float64(len(pi))
	for _, e := range pi {
		ns.applyBeta(e, dr.betaInc(m, e, k, delta))
	}
}

func (ns *nodeState) applyBeta(e int32, inc float64) {
	if ns.relevant[e] {
		ns.beta[e] += inc
	}
}
