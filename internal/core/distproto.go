package core

import (
	"fmt"

	"treesched/internal/dist"
	"treesched/internal/instance"
	"treesched/internal/lp"
	"treesched/internal/mis"
	"treesched/internal/model"
	"treesched/internal/obs"
)

// This file is the shared protocol engine behind every Distributed*
// driver: the first-phase epoch/stage/step loop with its embedded Luby
// MIS subprotocol, the dual-raise announcements, and the reverse-stack
// second phase. A driver contributes only a distProtocol value — name,
// rule, schedule, bound — mirroring how the centralized drivers in
// solvers.go are thin configurations of runPhases.
//
// The per-processor body is a *resumable state machine* (a dist.Proc):
// each Step call consumes the previous collective's result and produces
// the next collective request. Written this way, one protocol text runs
// on both dist engines — the sharded worker pool (dist.RunProcs, the
// default, which carries 10^5-processor networks on GOMAXPROCS
// goroutines) and the goroutine-per-processor runtime
// (dist.RunProcsBlocking, selected by Options.DistWorkers < 0, the
// reference semantics and benchmark anchor). The collective sequence is
// identical either way, so Stats and selections are byte-identical
// across engines — a tested invariant, like the centralized/distributed
// selection equality.

// Message payloads exchanged by the protocol. Every payload names demand
// instances by id; a processor that learns an instance id can reconstruct
// its path and critical edges from the globally known topology, so each
// payload entry is O(M) bits in the paper's accounting (§5 "Distributed
// Implementation"). All payloads implement dist.Sizer so the runtime can
// tally Stats.Entries.
type (
	// prioPayload announces the sender's still-undecided participating
	// instances and their Luby priorities for the current phase.
	prioPayload struct {
		Insts []int32
		Prios []float64
	}
	// winPayload announces instances that joined the MIS this phase.
	winPayload struct {
		Insts []int32
	}
	// raisePayload announces dual raises: instance ids and their δ; the
	// receivers recompute the β increments from the shared rule.
	raisePayload struct {
		Insts  []int32
		Deltas []float64
	}
	// selPayload announces instances selected in the second phase.
	selPayload struct {
		Insts []int32
	}
)

func (p *prioPayload) PayloadEntries() int  { return len(p.Insts) }
func (p *winPayload) PayloadEntries() int   { return len(p.Insts) }
func (p *raisePayload) PayloadEntries() int { return len(p.Insts) }
func (p *selPayload) PayloadEntries() int   { return len(p.Insts) }

// payloadArena double-buffers each payload type so the hot path sends
// without allocating. Reuse is safe because every next* call produces the
// payload of exactly one collective: a buffer handed to the runtime for
// collective t is truncated no earlier than the node's second-next flip
// of that type, i.e. while preparing collective t+2 — and by then every
// live receiver has finished reading the collective-t payload (receivers
// consume inboxes inside the Step/collective that produces their t+1
// request, which completes before t+2 begins on either engine). Flipping
// a buffer without sending it in the same collective would break this
// argument and race receivers.
type payloadArena struct {
	prioFlip, winFlip, raiseFlip, selFlip uint8

	prio  [2]prioPayload
	win   [2]winPayload
	raise [2]raisePayload
	sel   [2]selPayload
}

func (a *payloadArena) nextPrio() *prioPayload {
	a.prioFlip ^= 1
	p := &a.prio[a.prioFlip]
	p.Insts, p.Prios = p.Insts[:0], p.Prios[:0]
	return p
}

func (a *payloadArena) nextWin() *winPayload {
	a.winFlip ^= 1
	p := &a.win[a.winFlip]
	p.Insts = p.Insts[:0]
	return p
}

func (a *payloadArena) nextRaise() *raisePayload {
	a.raiseFlip ^= 1
	p := &a.raise[a.raiseFlip]
	p.Insts, p.Deltas = p.Insts[:0], p.Deltas[:0]
	return p
}

func (a *payloadArena) nextSel() *selPayload {
	a.selFlip ^= 1
	p := &a.sel[a.selFlip]
	p.Insts = p.Insts[:0]
	return p
}

// distProtocol parameterizes the engine: a distributed driver is nothing
// more than a named (rule, schedule, bound) triple over a compiled model.
type distProtocol struct {
	name  string
	rule  lp.Rule
	sched Schedule
	opts  Options
	bound float64
}

// run executes the protocol on the BSP runtime — communication only
// between processors sharing a resource — and assembles the merged,
// certificate-checked result. Options.DistWorkers picks the engine:
// ≥ 0 runs the sharded worker pool (0 = GOMAXPROCS workers), < 0 the
// goroutine-per-processor reference. With equal seeds every engine and
// worker count selects exactly the instances the centralized
// Phase1/Phase2 pair selects — a tested invariant.
func (cfg *distProtocol) run(p *instance.Problem, m *model.Model) (*DistributedResult, error) {
	// Fixed-rounds mode: the paper's deterministic accounting. Every node
	// runs exactly fixedSteps steps per stage and fixedPhases Luby phases
	// per step, in lockstep, with no global aggregation at all.
	fixedSteps, fixedPhases := 0, 0
	if cfg.opts.FixedRounds {
		fixedSteps = cfg.sched.FixedSteps(m)
		if fixedSteps == 0 {
			return nil, fmt.Errorf("core: FixedRounds requires a multi-stage schedule")
		}
		// Luby finishes in O(log N) phases w.h.p. (N = mr instances,
		// [14]); exceeding the budget is detected and reported.
		nn := len(m.Insts)
		fixedPhases = 8
		for v := nn; v > 0; v >>= 1 {
			fixedPhases += 4
		}
	}

	dr := localRule(cfg.rule)
	nodes := make([]*nodeState, m.NumDemands)
	machines := make([]*protoEngine, m.NumDemands)
	// mk is called once per processor, possibly concurrently for distinct
	// ids (the pool engine constructs shard-parallel); it touches only
	// per-id state.
	mk := func(u int) dist.Proc {
		e := &protoEngine{
			cfg:         cfg,
			m:           m,
			dr:          dr,
			ns:          newNodeState(m, u),
			fixedSteps:  fixedSteps,
			fixedPhases: fixedPhases,
			undecided:   map[int32]bool{},
			prio:        map[int32]float64{},
		}
		nodes[u] = e.ns
		machines[u] = e
		return e
	}
	tr := dist.NewLocalTransport(p.CommGraph())
	tel := cfg.opts.Telemetry
	var rl *obs.RoundLog
	if tel != nil {
		rl = &obs.RoundLog{}
	}
	sp := tel.Begin("protocol")
	var stats dist.Stats
	if cfg.opts.DistWorkers < 0 {
		stats = dist.RunProcsBlockingObserved(tr, mk, rl)
	} else {
		stats = dist.RunProcsObserved(tr, cfg.opts.DistWorkers, mk, rl)
	}
	if tel != nil {
		tel.Add(sp, "rounds", int64(stats.Rounds))
		tel.Add(sp, "aggregations", int64(stats.Aggregations))
		tel.Add(sp, "messages", stats.Messages)
		tel.Add(sp, "entries", stats.Entries)
		tel.AddRounds(rl.Samples)
	}
	tel.End(sp)
	for _, e := range machines {
		if e != nil && e.err != nil {
			return nil, e.err
		}
	}
	sp = tel.Begin("assemble")
	defer tel.End(sp)
	return assembleDistributed(cfg.name, m, cfg.rule, cfg.sched, nodes, stats, cfg.bound)
}

// protoState is the resume point of a protocol machine: which collective
// it is waiting on (psStart before the first request, psDone after
// departure).
type protoState uint8

const (
	psStart    protoState = iota
	psStageAgg            // stage-top "anyone unsatisfied?" aggregate
	psLubyPrio            // Luby round A: priority exchange
	psLubyWin             // Luby round B: winner exchange
	psLubyAgg             // Luby "anyone undecided?" aggregate
	psRaise               // dual-raise announcement exchange
	psPhase2              // one reverse-walk selection exchange
	psDone
)

// protoEngine is the per-processor executor: protocol state plus the
// state-machine position. The scratch fields are reused across steps and
// phases so the steady state allocates nothing. The epoch/stage/step
// counters are per-node state but identical on every node (loop
// terminations are global aggregates or fixed counts), which is what
// lets the priority function and the phase-2 reverse walk agree across
// the network.
type protoEngine struct {
	cfg         *distProtocol
	m           *model.Model
	dr          distRule
	ns          *nodeState
	fixedSteps  int
	fixedPhases int

	state protoState
	err   error // terminal protocol error; reported after the run

	k, j        int    // current epoch and stage (1-based)
	steps       int    // steps taken in the current stage
	totalSteps  int    // steps across all finished stages (phase-2 length)
	phase       int    // current Luby phase within the step
	stepCounter uint64 // global step number

	arena         payloadArena
	participating []int32
	undecided     map[int32]bool
	prio          map[int32]float64
	nbr           []prioCand
	phaseWinners  []int32
	winners       []int32
	allWinners    []int32

	// Phase-2 reverse-walk state.
	p2load       map[int32]float64
	p2demandUsed bool
	p2stackTop   int
	p2t          int
}

// prioCand is a neighbor's announced (instance, priority) pair.
type prioCand struct {
	inst int32
	prio float64
}

func (e *protoEngine) conflicts(i, j int32) bool {
	return e.m.Insts[i].Demand == e.m.Insts[j].Demand || e.m.P.Overlap(e.m.Insts[i], e.m.Insts[j])
}

// Step implements dist.Proc: consume the previous collective's result,
// advance the protocol to its next collective, and return the request.
// The transitions mirror the first-phase while-loops and the phase-2
// reverse walk exactly — same collectives, same order, same local
// arithmetic — so the machine is observationally identical to the
// original blocking body on every engine.
func (e *protoEngine) Step(in dist.In) dist.Req {
	switch e.state {
	case psStart:
		e.k, e.j = 1, 1
		if e.k > e.cfg.sched.Epochs {
			return e.beginPhase2()
		}
		return e.stageTop()
	case psStageAgg:
		if !in.Agg {
			return e.advanceStage()
		}
		return e.beginStep()
	case psLubyPrio:
		e.lubyDecide(in.Msgs)
		return e.reqWin()
	case psLubyWin:
		still := e.lubyAbsorb(in.Msgs)
		if e.fixedPhases > 0 {
			// Fixed mode runs exactly fixedPhases lockstep phases: no
			// early exit, no aggregation.
			if e.phase >= e.fixedPhases {
				if still {
					return e.fail(fmt.Errorf("core: Luby exceeded the fixed %d-phase budget (w.h.p. bound missed; reseed)", e.fixedPhases))
				}
				return e.reqRaise()
			}
			e.phase++
			return e.reqPrio()
		}
		e.state = psLubyAgg
		return dist.Req{Op: dist.OpAggregate, Vote: still}
	case psLubyAgg:
		if in.Agg {
			e.phase++
			return e.reqPrio()
		}
		return e.reqRaise()
	case psRaise:
		e.absorbRaises(in.Msgs)
		return e.stageTop()
	case psPhase2:
		e.absorbSelections(in.Msgs)
		e.p2t--
		return e.p2Round()
	default:
		panic("core: Step on a departed protocol machine")
	}
}

// fail departs with a terminal protocol error; the run reports it after
// the network drains.
func (e *protoEngine) fail(err error) dist.Req {
	e.err = err
	e.state = psDone
	return dist.Req{Op: dist.OpDone}
}

// stageTop evaluates the while-condition of stage (k, j): find the owned
// group-k instances still below the stage threshold, then either ask the
// network whether anyone has work (adaptive) or consult the fixed step
// budget (fixed-rounds).
func (e *protoEngine) stageTop() dist.Req {
	threshold := e.cfg.sched.Thresholds[e.j-1]
	e.participating = e.participating[:0]
	for _, i := range e.ns.mine {
		if int(e.m.Group[i]) == e.k &&
			e.dr.lhs(e.m, e.ns, i) < threshold*e.m.Insts[i].Profit-lp.Tol {
			e.participating = append(e.participating, i)
		}
	}
	if e.fixedSteps > 0 {
		if e.steps >= e.fixedSteps {
			if len(e.participating) > 0 {
				return e.fail(fmt.Errorf("core: fixed schedule left instances unsatisfied after %d steps in stage (%d,%d)", e.fixedSteps, e.k, e.j))
			}
			return e.advanceStage()
		}
		return e.beginStep()
	}
	e.state = psStageAgg
	return dist.Req{Op: dist.OpAggregate, Vote: len(e.participating) > 0}
}

// advanceStage closes stage (k, j) — banking its step count for the
// phase-2 walk — and moves to the next (epoch, stage) tuple, or into the
// second phase after the last.
func (e *protoEngine) advanceStage() dist.Req {
	e.totalSteps += e.steps
	e.steps = 0
	e.j++
	if e.j > e.cfg.sched.Stages {
		e.j = 1
		e.k++
	}
	if e.k > e.cfg.sched.Epochs {
		return e.beginPhase2()
	}
	return e.stageTop()
}

// beginStep opens one step of the stage loop: bump the global step
// counter, reset the Luby state over the participating instances, and
// issue the first priority round.
func (e *protoEngine) beginStep() dist.Req {
	e.steps++
	if e.steps > e.cfg.sched.MaxSteps {
		return e.fail(fmt.Errorf("core: distributed stage (%d,%d) exceeded %d steps", e.k, e.j, e.cfg.sched.MaxSteps))
	}
	e.stepCounter++
	clear(e.undecided)
	for _, i := range e.participating {
		e.undecided[i] = true
	}
	e.winners = e.winners[:0]
	e.phase = 1
	return e.reqPrio()
}

// reqPrio issues Luby round A: announce undecided instances and their
// phase priorities (silent when none remain).
func (e *protoEngine) reqPrio() dist.Req {
	clear(e.prio)
	pp := e.arena.nextPrio()
	for _, i := range e.participating {
		if e.undecided[i] {
			pr := mis.Priority(e.cfg.opts.Seed, i, e.stepCounter, e.phase)
			e.prio[i] = pr
			pp.Insts = append(pp.Insts, i)
			pp.Prios = append(pp.Prios, pr)
		}
	}
	e.state = psLubyPrio
	if len(pp.Insts) > 0 {
		return dist.Req{Op: dist.OpExchange, Payload: pp}
	}
	return dist.Req{Op: dist.OpExchange}
}

// lubyDecide consumes round A's inbox: collect the neighbors' candidates
// and decide which owned undecided instances beat every conflicting
// undecided instance by (priority, id).
func (e *protoEngine) lubyDecide(in []dist.Message) {
	e.nbr = e.nbr[:0]
	for _, msg := range in {
		pl := msg.Payload.(*prioPayload)
		for x, inst := range pl.Insts {
			e.nbr = append(e.nbr, prioCand{inst: inst, prio: pl.Prios[x]})
		}
	}
	e.phaseWinners = e.phaseWinners[:0]
	for _, i := range e.participating {
		if !e.undecided[i] {
			continue
		}
		best := true
		for _, o := range e.ns.mine {
			if o != i && e.undecided[o] &&
				(e.prio[o] < e.prio[i] || (e.prio[o] == e.prio[i] && o < i)) {
				best = false
				break
			}
		}
		for _, c := range e.nbr {
			if !best {
				break
			}
			if e.conflicts(i, c.inst) &&
				(c.prio < e.prio[i] || (c.prio == e.prio[i] && c.inst < i)) {
				best = false
			}
		}
		if best {
			e.phaseWinners = append(e.phaseWinners, i)
		}
	}
}

// reqWin issues Luby round B: announce this phase's winners.
func (e *protoEngine) reqWin() dist.Req {
	e.state = psLubyWin
	if len(e.phaseWinners) > 0 {
		wp := e.arena.nextWin()
		wp.Insts = append(wp.Insts, e.phaseWinners...)
		return dist.Req{Op: dist.OpExchange, Payload: wp}
	}
	return dist.Req{Op: dist.OpExchange}
}

// lubyAbsorb consumes round B's inbox: commit own winners, exclude
// dominated instances, and report whether any owned instance is still
// undecided.
func (e *protoEngine) lubyAbsorb(in []dist.Message) (stillAny bool) {
	for _, i := range e.phaseWinners {
		e.undecided[i] = false
		e.winners = append(e.winners, i)
	}
	e.allWinners = append(e.allWinners[:0], e.phaseWinners...)
	for _, msg := range in {
		e.allWinners = append(e.allWinners, msg.Payload.(*winPayload).Insts...)
	}
	for _, i := range e.participating {
		if !e.undecided[i] {
			continue
		}
		for _, w := range e.allWinners {
			if e.conflicts(i, w) {
				e.undecided[i] = false
				break
			}
		}
	}
	for _, i := range e.participating {
		if e.undecided[i] {
			return true
		}
	}
	return false
}

// reqRaise closes the step: raise the elected winners tight and announce
// the raises. The MIS picks at most one instance per demand (same-demand
// instances conflict), so winners has length ≤ 1 here.
func (e *protoEngine) reqRaise() dist.Req {
	rp := e.arena.nextRaise()
	for _, i := range e.winners {
		delta := e.ns.raiseLocal(e.m, e.dr, i)
		e.ns.stack = append(e.ns.stack, i)
		e.ns.raiseSteps = append(e.ns.raiseSteps, int(e.stepCounter))
		rp.Insts = append(rp.Insts, i)
		rp.Deltas = append(rp.Deltas, delta)
	}
	e.state = psRaise
	if len(rp.Insts) > 0 {
		return dist.Req{Op: dist.OpExchange, Payload: rp}
	}
	return dist.Req{Op: dist.OpExchange}
}

// absorbRaises folds the neighbors' announced raises into the local β
// copies.
func (e *protoEngine) absorbRaises(in []dist.Message) {
	for _, msg := range in {
		pl := msg.Payload.(*raisePayload)
		for x, inst := range pl.Insts {
			e.ns.applyRemoteRaise(e.m, e.dr, inst, pl.Deltas[x])
		}
	}
}

// beginPhase2 enters the distributed reverse-stack selection. All nodes
// observed identical step counts (the loop terminations are global
// aggregates or fixed budgets), so they walk the same global step
// sequence in reverse: one communication round per step. Feasibility is
// tracked on the node's relevant edges from its own selections and the
// neighbors' announcements.
func (e *protoEngine) beginPhase2() dist.Req {
	e.p2load = map[int32]float64{}
	e.p2stackTop = len(e.ns.stack) - 1
	e.p2t = e.totalSteps
	return e.p2Round()
}

// p2Round plays reverse step t: pop the stack if this node raised at t,
// keep the instance when it still fits, announce it — then wait for the
// peers' announcements of the same step. After step 1 the walk is done
// and the processor departs.
func (e *protoEngine) p2Round() dist.Req {
	if e.p2t < 1 {
		e.state = psDone
		return dist.Req{Op: dist.OpDone}
	}
	announce := int32(-1)
	if e.p2stackTop >= 0 && e.ns.raiseSteps[e.p2stackTop] == e.p2t {
		i := e.ns.stack[e.p2stackTop]
		e.p2stackTop--
		d := e.m.Insts[i]
		fits := !e.p2demandUsed
		if fits {
			for _, edge := range e.m.Paths.Row(i) {
				if e.p2load[edge]+d.Height > e.m.Cap[edge]+lp.Tol {
					fits = false
					break
				}
			}
		}
		if fits {
			e.p2demandUsed = true
			for _, edge := range e.m.Paths.Row(i) {
				e.p2load[edge] += d.Height
			}
			e.ns.selected = append(e.ns.selected, i)
			announce = i
		}
	}
	e.state = psPhase2
	if announce >= 0 {
		sp := e.arena.nextSel()
		sp.Insts = append(sp.Insts, announce)
		return dist.Req{Op: dist.OpExchange, Payload: sp}
	}
	return dist.Req{Op: dist.OpExchange}
}

// absorbSelections folds the peers' phase-2 announcements into the load
// of this node's relevant edges.
func (e *protoEngine) absorbSelections(in []dist.Message) {
	for _, msg := range in {
		for _, inst := range msg.Payload.(*selPayload).Insts {
			h := e.m.Insts[inst].Height
			for _, edge := range e.m.Paths.Row(inst) {
				if e.ns.relevant[edge] {
					e.p2load[edge] += h
				}
			}
		}
	}
}
