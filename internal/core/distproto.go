package core

import (
	"fmt"

	"treesched/internal/dist"
	"treesched/internal/instance"
	"treesched/internal/lp"
	"treesched/internal/mis"
	"treesched/internal/model"
)

// This file is the shared protocol engine behind every Distributed*
// driver: the first-phase epoch/stage/step loop with its embedded Luby
// MIS subprotocol, the dual-raise announcements, and the reverse-stack
// second phase, all expressed as collective operations on the dist BSP
// runtime. A driver contributes only a distProtocol value — name, rule,
// schedule, bound — mirroring how the centralized drivers in solvers.go
// are thin configurations of runPhases.

// Message payloads exchanged by the protocol. Every payload names demand
// instances by id; a processor that learns an instance id can reconstruct
// its path and critical edges from the globally known topology, so each
// payload entry is O(M) bits in the paper's accounting (§5 "Distributed
// Implementation"). All payloads implement dist.Sizer so the runtime can
// tally Stats.Entries.
type (
	// prioPayload announces the sender's still-undecided participating
	// instances and their Luby priorities for the current phase.
	prioPayload struct {
		Insts []int32
		Prios []float64
	}
	// winPayload announces instances that joined the MIS this phase.
	winPayload struct {
		Insts []int32
	}
	// raisePayload announces dual raises: instance ids and their δ; the
	// receivers recompute the β increments from the shared rule.
	raisePayload struct {
		Insts  []int32
		Deltas []float64
	}
	// selPayload announces instances selected in the second phase.
	selPayload struct {
		Insts []int32
	}
)

func (p *prioPayload) PayloadEntries() int  { return len(p.Insts) }
func (p *winPayload) PayloadEntries() int   { return len(p.Insts) }
func (p *raisePayload) PayloadEntries() int { return len(p.Insts) }
func (p *selPayload) PayloadEntries() int   { return len(p.Insts) }

// payloadArena double-buffers each payload type so the hot path sends
// without allocating. Reuse is safe because every next* call is followed
// by a collective barrier before the same buffer comes around again: a
// buffer broadcast at collective t is truncated no earlier than the
// node's second-next flip of that type, and by then the node has passed
// at least one intervening barrier — which every live receiver also
// entered, after it finished reading the collective-t payload (the
// dist.Message contract). Adding a next* call that is not followed by a
// collective would break this argument and race receivers.
type payloadArena struct {
	prioFlip, winFlip, raiseFlip, selFlip uint8

	prio  [2]prioPayload
	win   [2]winPayload
	raise [2]raisePayload
	sel   [2]selPayload
}

func (a *payloadArena) nextPrio() *prioPayload {
	a.prioFlip ^= 1
	p := &a.prio[a.prioFlip]
	p.Insts, p.Prios = p.Insts[:0], p.Prios[:0]
	return p
}

func (a *payloadArena) nextWin() *winPayload {
	a.winFlip ^= 1
	p := &a.win[a.winFlip]
	p.Insts = p.Insts[:0]
	return p
}

func (a *payloadArena) nextRaise() *raisePayload {
	a.raiseFlip ^= 1
	p := &a.raise[a.raiseFlip]
	p.Insts, p.Deltas = p.Insts[:0], p.Deltas[:0]
	return p
}

func (a *payloadArena) nextSel() *selPayload {
	a.selFlip ^= 1
	p := &a.sel[a.selFlip]
	p.Insts = p.Insts[:0]
	return p
}

// distProtocol parameterizes the engine: a distributed driver is nothing
// more than a named (rule, schedule, bound) triple over a compiled model.
type distProtocol struct {
	name  string
	rule  lp.Rule
	sched Schedule
	opts  Options
	bound float64
}

// run executes the protocol on the BSP runtime — one goroutine per
// processor, communication only between processors sharing a resource —
// and assembles the merged, certificate-checked result. With equal seeds
// it selects exactly the instances the centralized Phase1/Phase2 pair
// selects — a tested invariant.
func (cfg *distProtocol) run(p *instance.Problem, m *model.Model) (*DistributedResult, error) {
	// Fixed-rounds mode: the paper's deterministic accounting. Every node
	// runs exactly fixedSteps steps per stage and fixedPhases Luby phases
	// per step, in lockstep, with no global aggregation at all.
	fixedSteps, fixedPhases := 0, 0
	if cfg.opts.FixedRounds {
		fixedSteps = cfg.sched.FixedSteps(m)
		if fixedSteps == 0 {
			return nil, fmt.Errorf("core: FixedRounds requires a multi-stage schedule")
		}
		// Luby finishes in O(log N) phases w.h.p. (N = mr instances,
		// [14]); exceeding the budget is detected and reported.
		nn := len(m.Insts)
		fixedPhases = 8
		for v := nn; v > 0; v >>= 1 {
			fixedPhases += 4
		}
	}

	dr := localRule(cfg.rule)
	nodes := make([]*nodeState, m.NumDemands)
	errs := make([]error, m.NumDemands)
	stats := dist.Run(p.CommGraph(), func(api *dist.API) {
		u := api.ID()
		e := &protoEngine{
			cfg:         cfg,
			m:           m,
			dr:          dr,
			api:         api,
			ns:          newNodeState(m, u),
			fixedSteps:  fixedSteps,
			fixedPhases: fixedPhases,
			undecided:   map[int32]bool{},
			prio:        map[int32]float64{},
		}
		nodes[u] = e.ns
		errs[u] = e.run()
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return assembleDistributed(cfg.name, m, cfg.rule, cfg.sched, nodes, stats, cfg.bound)
}

// protoEngine is the per-processor executor. The scratch fields are
// reused across steps and phases so the steady state allocates nothing.
type protoEngine struct {
	cfg         *distProtocol
	m           *model.Model
	dr          distRule
	api         *dist.API
	ns          *nodeState
	fixedSteps  int
	fixedPhases int

	// stepCounter is the global step number; it is per-node state but
	// identical on every node (loop terminations are global aggregates or
	// fixed counts), which is what lets the priority function and the
	// phase-2 reverse walk agree across the network.
	stepCounter uint64

	arena         payloadArena
	participating []int32
	undecided     map[int32]bool
	prio          map[int32]float64
	nbr           []prioCand
	phaseWinners  []int32
	winners       []int32
	allWinners    []int32
}

// prioCand is a neighbor's announced (instance, priority) pair.
type prioCand struct {
	inst int32
	prio float64
}

func (e *protoEngine) conflicts(i, j int32) bool {
	return e.m.Insts[i].Demand == e.m.Insts[j].Demand || e.m.P.Overlap(e.m.Insts[i], e.m.Insts[j])
}

// run executes the first phase over all (epoch, stage) tuples, then the
// second phase over the global step sequence in reverse.
func (e *protoEngine) run() error {
	totalSteps := 0
	for k := 1; k <= e.cfg.sched.Epochs; k++ {
		for j := 1; j <= e.cfg.sched.Stages; j++ {
			steps, err := e.stage(k, j)
			if err != nil {
				return err
			}
			totalSteps += steps
		}
	}
	e.phase2(totalSteps)
	return nil
}

// stage runs the while-loop of one (epoch, stage) tuple: find the owned
// group-k instances still below the stage threshold, elect an independent
// set of them via Luby, raise the winners tight, announce the raises —
// until no processor has unsatisfied instances (global aggregate) or the
// fixed step budget is spent.
func (e *protoEngine) stage(k, j int) (int, error) {
	threshold := e.cfg.sched.Thresholds[j-1]
	steps := 0
	for {
		// Participation: owned group-k instances that are
		// threshold-unsatisfied under local duals.
		e.participating = e.participating[:0]
		for _, i := range e.ns.mine {
			if int(e.m.Group[i]) == k &&
				e.dr.lhs(e.m, e.ns, i) < threshold*e.m.Insts[i].Profit-lp.Tol {
				e.participating = append(e.participating, i)
			}
		}
		if e.fixedSteps > 0 {
			if steps >= e.fixedSteps {
				if len(e.participating) > 0 {
					return 0, fmt.Errorf("core: fixed schedule left instances unsatisfied after %d steps in stage (%d,%d)", e.fixedSteps, k, j)
				}
				break
			}
		} else if !e.api.Aggregate(len(e.participating) > 0) {
			break
		}
		steps++
		if steps > e.cfg.sched.MaxSteps {
			return 0, fmt.Errorf("core: distributed stage (%d,%d) exceeded %d steps", k, j, e.cfg.sched.MaxSteps)
		}
		e.stepCounter++

		winners, err := e.lubyMIS()
		if err != nil {
			return 0, err
		}
		e.raiseAndAnnounce(winners)
	}
	return steps, nil
}

// lubyMIS elects a maximal independent set of the participating instances
// by deterministic-priority Luby: each phase is two rounds (priorities,
// then winners), and the loop ends when a global aggregate reports no
// undecided instance anywhere (or the fixed phase budget is reached).
func (e *protoEngine) lubyMIS() ([]int32, error) {
	clear(e.undecided)
	for _, i := range e.participating {
		e.undecided[i] = true
	}
	e.winners = e.winners[:0]
	for phase := 1; ; phase++ {
		// Round A: announce undecided instances + priorities.
		clear(e.prio)
		pp := e.arena.nextPrio()
		for _, i := range e.participating {
			if e.undecided[i] {
				pr := mis.Priority(e.cfg.opts.Seed, i, e.stepCounter, phase)
				e.prio[i] = pr
				pp.Insts = append(pp.Insts, i)
				pp.Prios = append(pp.Prios, pr)
			}
		}
		var in []dist.Message
		if len(pp.Insts) > 0 {
			in = e.api.Broadcast(pp)
		} else {
			in = e.api.Exchange(nil)
		}
		e.nbr = e.nbr[:0]
		for _, msg := range in {
			pl := msg.Payload.(*prioPayload)
			for x, inst := range pl.Insts {
				e.nbr = append(e.nbr, prioCand{inst: inst, prio: pl.Prios[x]})
			}
		}
		// Local win decision for each owned undecided instance: beat
		// every conflicting undecided instance by (priority, id).
		e.phaseWinners = e.phaseWinners[:0]
		for _, i := range e.participating {
			if !e.undecided[i] {
				continue
			}
			best := true
			for _, o := range e.ns.mine {
				if o != i && e.undecided[o] &&
					(e.prio[o] < e.prio[i] || (e.prio[o] == e.prio[i] && o < i)) {
					best = false
					break
				}
			}
			for _, c := range e.nbr {
				if !best {
					break
				}
				if e.conflicts(i, c.inst) &&
					(c.prio < e.prio[i] || (c.prio == e.prio[i] && c.inst < i)) {
					best = false
				}
			}
			if best {
				e.phaseWinners = append(e.phaseWinners, i)
			}
		}
		// Round B: announce winners; exclude dominated.
		var winIn []dist.Message
		if len(e.phaseWinners) > 0 {
			wp := e.arena.nextWin()
			wp.Insts = append(wp.Insts, e.phaseWinners...)
			winIn = e.api.Broadcast(wp)
		} else {
			winIn = e.api.Exchange(nil)
		}
		for _, i := range e.phaseWinners {
			e.undecided[i] = false
			e.winners = append(e.winners, i)
		}
		e.allWinners = append(e.allWinners[:0], e.phaseWinners...)
		for _, msg := range winIn {
			e.allWinners = append(e.allWinners, msg.Payload.(*winPayload).Insts...)
		}
		for _, i := range e.participating {
			if !e.undecided[i] {
				continue
			}
			for _, w := range e.allWinners {
				if e.conflicts(i, w) {
					e.undecided[i] = false
					break
				}
			}
		}
		stillAny := false
		for _, i := range e.participating {
			if e.undecided[i] {
				stillAny = true
				break
			}
		}
		if e.fixedPhases > 0 {
			if phase >= e.fixedPhases {
				if stillAny {
					return nil, fmt.Errorf("core: Luby exceeded the fixed %d-phase budget (w.h.p. bound missed; reseed)", e.fixedPhases)
				}
				break
			}
			continue
		}
		if !e.api.Aggregate(stillAny) {
			break
		}
	}
	return e.winners, nil
}

// raiseAndAnnounce raises the step's winners tight and broadcasts the
// raises; receivers fold them into their β copies. The MIS picks at most
// one instance per demand (same-demand instances conflict), so winners
// has length ≤ 1 here.
func (e *protoEngine) raiseAndAnnounce(winners []int32) {
	rp := e.arena.nextRaise()
	for _, i := range winners {
		delta := e.ns.raiseLocal(e.m, e.dr, i)
		e.ns.stack = append(e.ns.stack, i)
		e.ns.raiseSteps = append(e.ns.raiseSteps, int(e.stepCounter))
		rp.Insts = append(rp.Insts, i)
		rp.Deltas = append(rp.Deltas, delta)
	}
	var raiseIn []dist.Message
	if len(rp.Insts) > 0 {
		raiseIn = e.api.Broadcast(rp)
	} else {
		raiseIn = e.api.Exchange(nil)
	}
	for _, msg := range raiseIn {
		pl := msg.Payload.(*raisePayload)
		for x, inst := range pl.Insts {
			e.ns.applyRemoteRaise(e.m, e.dr, inst, pl.Deltas[x])
		}
	}
}

// phase2 is the distributed reverse-stack selection. All nodes observed
// identical step counts (the loop breaks are global aggregates or fixed
// budgets), so they walk the same global step sequence in reverse: one
// communication round per step. Feasibility is tracked on the node's
// relevant edges from its own selections and the neighbors'
// announcements.
func (e *protoEngine) phase2(totalSteps int) {
	load := map[int32]float64{}
	demandUsed := false
	stackTop := len(e.ns.stack) - 1
	for t := totalSteps; t >= 1; t-- {
		announce := int32(-1)
		if stackTop >= 0 && e.ns.raiseSteps[stackTop] == t {
			i := e.ns.stack[stackTop]
			stackTop--
			d := e.m.Insts[i]
			fits := !demandUsed
			if fits {
				for _, edge := range e.m.Paths.Row(i) {
					if load[edge]+d.Height > e.m.Cap[edge]+lp.Tol {
						fits = false
						break
					}
				}
			}
			if fits {
				demandUsed = true
				for _, edge := range e.m.Paths.Row(i) {
					load[edge] += d.Height
				}
				e.ns.selected = append(e.ns.selected, i)
				announce = i
			}
		}
		var selIn []dist.Message
		if announce >= 0 {
			sp := e.arena.nextSel()
			sp.Insts = append(sp.Insts, announce)
			selIn = e.api.Broadcast(sp)
		} else {
			selIn = e.api.Exchange(nil)
		}
		for _, msg := range selIn {
			for _, inst := range msg.Payload.(*selPayload).Insts {
				h := e.m.Insts[inst].Height
				for _, edge := range e.m.Paths.Row(inst) {
					if e.ns.relevant[edge] {
						load[edge] += h
					}
				}
			}
		}
	}
}
