package core

import (
	"math/rand"
	"testing"

	"treesched/internal/gen"
	"treesched/internal/verify"
)

// TestLargeInstanceCountUsesImplicitPath pushes past the implicit
// threshold (many windowed instances) and checks the pipeline end to end.
func TestLargeInstanceCountUsesImplicitPath(t *testing.T) {
	if testing.Short() {
		t.Skip("large workload")
	}
	rng := rand.New(rand.NewSource(1))
	p := gen.LineProblem(gen.LineConfig{
		Slots: 120, Resources: 3, Demands: 150, Unit: true, MaxProc: 10, Slack: 20,
	}, rng)
	insts := p.Expand()
	if len(insts) <= implicitThreshold {
		t.Fatalf("workload too small to exercise the implicit path: %d instances", len(insts))
	}
	res, err := LineUnit(p, Options{Epsilon: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Solution(p, res.Selected); err != nil {
		t.Fatal(err)
	}
	if res.CertifiedRatio > res.Bound+1e-6 {
		t.Fatalf("certified ratio %.3f > bound %.3f at scale", res.CertifiedRatio, res.Bound)
	}
	t.Logf("%d instances, %d scheduled, certified ratio %.3f",
		len(insts), len(res.Selected), res.CertifiedRatio)
}

// TestImplicitExplicitPhase1Agree pins determinism near the implicit
// threshold: the same seed must reproduce the same selection. (The
// explicit/implicit MIS equivalence itself is proved per-call in
// internal/mis; the large test above exercises the implicit framework
// path end to end.)
func TestImplicitExplicitPhase1Agree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := gen.LineProblem(gen.LineConfig{
		Slots: 80, Resources: 2, Demands: 90, Unit: true, MaxProc: 8, Slack: 16,
	}, rng)
	a, err := LineUnit(p, Options{Epsilon: 0.25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LineUnit(p, Options{Epsilon: 0.25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !SameSelection(a, b) {
		t.Fatal("repeat run differs")
	}
}

func BenchmarkLineUnitLargeImplicit(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := gen.LineProblem(gen.LineConfig{
		Slots: 160, Resources: 4, Demands: 200, Unit: true, MaxProc: 12, Slack: 24,
	}, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LineUnit(p, Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
