package core

import (
	"treesched/internal/instance"
	"treesched/internal/par"
	"treesched/internal/treedecomp"
)

// CompileBatch compiles many problems on a bounded worker pool and eagerly
// builds each full model, so a following solve pass starts warm. workers
// bounds the TOTAL goroutine fan-out (0 = GOMAXPROCS, ≤1 = serial):
// problems are spread across the pool first, and whatever width is left
// over (workers / len(ps), floored at 1) goes to each problem's internal
// model-build shards — many small problems parallelize across items, few
// huge ones parallelize inside the build. Results and errors are returned
// in input order, one slot per problem; a failed slot leaves a nil
// *Compiled and its error, and never disturbs its neighbours.
func CompileBatch(ps []*instance.Problem, decomp treedecomp.Kind, workers int) ([]*Compiled, []error) {
	w := par.Resolve(workers)
	inner := w / max(1, len(ps))
	if inner < 1 {
		inner = 1
	}
	cs := make([]*Compiled, len(ps))
	errs := make([]error, len(ps))
	par.Each(w, len(ps), func(i int) {
		c, err := Compile(ps[i], decomp)
		if err != nil {
			errs[i] = err
			return
		}
		c.SetCompileWorkers(inner)
		if _, err := c.Model(); err != nil {
			errs[i] = err
			return
		}
		cs[i] = c
	})
	return cs, errs
}

// SolveBatch runs fn over every compilation on a bounded worker pool
// (workers: 0 = GOMAXPROCS, ≤1 = serial) and collects results and errors
// in input order. Solves on distinct Compiled values are independent —
// each draws scratch from its own pool — and solves sharing one Compiled
// are safe too (the pools exist for exactly that), so fn only needs to be
// safe for the i it is handed. Nil slots in cs (e.g. CompileBatch
// failures) are skipped, leaving nil Result and nil error.
func SolveBatch(cs []*Compiled, workers int, fn func(i int, c *Compiled) (*Result, error)) ([]*Result, []error) {
	res := make([]*Result, len(cs))
	errs := make([]error, len(cs))
	par.Each(par.Resolve(workers), len(cs), func(i int) {
		if cs[i] == nil {
			return
		}
		res[i], errs[i] = fn(i, cs[i])
	})
	return res, errs
}
