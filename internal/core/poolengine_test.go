package core

import (
	"math"
	"reflect"
	"testing"

	"treesched/internal/scenario"
)

// distEngineAlgos are the distributed drivers the engine-equivalence
// sweep tries on every scenario; inapplicable (scenario, algo) pairs
// (wrong kind or height class) must fail identically on both engines.
var distEngineAlgos = []struct {
	name string
	run  func(c *Compiled, opts Options) (*DistributedResult, error)
}{
	{"dist-unit", (*Compiled).DistributedUnit},
	{"dist-narrow", (*Compiled).DistributedNarrow},
	{"dist-ps", (*Compiled).DistributedPanconesiSozio},
}

// equivParams caps a preset's sizing so the sweep stays fast: the large-
// network presets run the same generators at benchmark scale, but the
// engine-equivalence property is size-independent.
func equivParams(s *scenario.Scenario) scenario.Params {
	p := s.Defaults
	if p.Demands > 48 {
		p.Demands = 48
	}
	if p.Networks > 8 {
		p.Networks = 8
	}
	if p.Size > 128 {
		p.Size = 128
	}
	return p
}

// TestPoolEngineMatchesBlockingEverywhere is the tentpole acceptance
// sweep: for every scenario preset × distributed algorithm × 3 seeds,
// the sharded worker-pool engine (DistWorkers ≥ 0, several worker
// counts) must produce byte-identical Stats and schedules to the
// goroutine-per-processor baseline (DistWorkers < 0).
func TestPoolEngineMatchesBlockingEverywhere(t *testing.T) {
	for _, s := range scenario.All() {
		for _, algo := range distEngineAlgos {
			for seed := uint64(1); seed <= 3; seed++ {
				p, err := s.Generate(equivParams(s), int64(seed))
				if err != nil {
					t.Fatalf("%s: generate: %v", s.Name, err)
				}
				c, err := Compile(p, 0)
				if err != nil {
					t.Fatalf("%s: compile: %v", s.Name, err)
				}
				base := Options{Epsilon: 0.25, Seed: seed}

				blockOpts := base
				blockOpts.DistWorkers = -1
				ref, refErr := algo.run(c, blockOpts)

				for _, workers := range []int{0, 1, 3} {
					poolOpts := base
					poolOpts.DistWorkers = workers
					got, gotErr := algo.run(c, poolOpts)
					if (refErr == nil) != (gotErr == nil) {
						t.Fatalf("%s/%s seed %d workers %d: engines disagree on applicability: blocking err %v, pool err %v",
							s.Name, algo.name, seed, workers, refErr, gotErr)
					}
					if refErr != nil {
						if refErr.Error() != gotErr.Error() {
							t.Fatalf("%s/%s seed %d workers %d: errors differ: %v vs %v",
								s.Name, algo.name, seed, workers, refErr, gotErr)
						}
						continue
					}
					assertDistEqual(t, s.Name, algo.name, seed, workers, ref, got)
				}
				if refErr != nil {
					break // inapplicable pair: no need to re-try seeds
				}
			}
		}
	}
}

// TestPoolEngineMatchesBlockingFixedRounds covers the deterministic
// fixed-rounds schedule (no aggregations at all) on the round-scaling
// workload.
func TestPoolEngineMatchesBlockingFixedRounds(t *testing.T) {
	s, ok := scenario.Get("binary-fanout")
	if !ok {
		t.Fatal("binary-fanout preset missing")
	}
	for seed := uint64(1); seed <= 3; seed++ {
		p, err := s.Generate(scenario.Params{}, int64(seed))
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		base := Options{Epsilon: 0.25, Seed: seed, FixedRounds: true}
		blockOpts := base
		blockOpts.DistWorkers = -1
		ref, err := c.DistributedUnit(blockOpts)
		if err != nil {
			t.Fatalf("seed %d blocking: %v", seed, err)
		}
		if ref.Net.Aggregations != 0 {
			t.Fatalf("seed %d: fixed-rounds run recorded %d aggregations", seed, ref.Net.Aggregations)
		}
		poolOpts := base
		poolOpts.DistWorkers = 2
		got, err := c.DistributedUnit(poolOpts)
		if err != nil {
			t.Fatalf("seed %d pool: %v", seed, err)
		}
		assertDistEqual(t, "binary-fanout(fixed)", "dist-unit", seed, 2, ref, got)
	}
}

func assertDistEqual(t *testing.T, scen, algo string, seed uint64, workers int, ref, got *DistributedResult) {
	t.Helper()
	if got.Net != ref.Net {
		t.Fatalf("%s/%s seed %d workers %d: Stats differ: pool %+v vs blocking %+v",
			scen, algo, seed, workers, got.Net, ref.Net)
	}
	if !reflect.DeepEqual(got.Selected, ref.Selected) {
		t.Fatalf("%s/%s seed %d workers %d: schedules differ:\npool     %v\nblocking %v",
			scen, algo, seed, workers, got.Selected, ref.Selected)
	}
	if got.Profit != ref.Profit || got.Lambda != ref.Lambda || got.Bound != ref.Bound {
		t.Fatalf("%s/%s seed %d workers %d: result scalars differ", scen, algo, seed, workers)
	}
	if math.Abs(got.DualUB-ref.DualUB) > 1e-12*(1+math.Abs(ref.DualUB)) {
		t.Fatalf("%s/%s seed %d workers %d: dual objectives differ: %g vs %g",
			scen, algo, seed, workers, got.DualUB, ref.DualUB)
	}
}
