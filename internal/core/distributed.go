package core

import (
	"fmt"
	"math"

	"treesched/internal/dist"
	"treesched/internal/instance"
	"treesched/internal/lp"
	"treesched/internal/model"
)

// The distributed drivers in this file are thin configurations of the
// shared protocol engine in distproto.go: each contributes a rule, a
// schedule and a bound, exactly as the centralized drivers in solvers.go
// configure runPhases. The node-local dual arithmetic lives in
// distrule.go; the synchronous runtime the protocol executes on is
// internal/dist.

// DistributedResult couples an algorithm Result with the measured network
// cost of the message-passing execution.
type DistributedResult struct {
	*Result
	// Net reports communication rounds, messages, payload entries and
	// global aggregations measured by the simulator (see the internal/dist
	// package comment for the accounting rules).
	Net dist.Stats
}

// DistributedUnit runs the unit-height algorithm (§5 for trees, §7 for
// lines) as a real message-passing protocol: one goroutine per processor,
// Luby MIS by priority exchange, dual raises propagated to resource-sharing
// neighbors, and a distributed reverse-stack second phase. With the same
// seed it selects exactly what TreeUnit/LineUnit select.
func DistributedUnit(p *instance.Problem, opts Options) (*DistributedResult, error) {
	c, err := Compile(p, opts.DecompKind)
	if err != nil {
		return nil, err
	}
	return c.DistributedUnit(opts)
}

// DistributedUnit is the compiled-model form of the package-level
// DistributedUnit.
func (c *Compiled) DistributedUnit(opts Options) (*DistributedResult, error) {
	opts = c.prep(opts)
	p := c.p
	if !p.UnitHeight() {
		return nil, fmt.Errorf("core: DistributedUnit requires unit heights")
	}
	sm, err := telModel(opts.Telemetry, c.fullModel)
	if err != nil {
		return nil, err
	}
	m := sm.m
	sched := NewSchedule(m, UnitXi(m.Delta), opts.Epsilon)
	name := "tree-unit"
	if p.Kind == instance.KindLine {
		name = "line-unit"
	}
	cfg := &distProtocol{
		name:  name,
		rule:  lp.Unit{},
		sched: sched,
		opts:  opts,
		bound: float64(m.Delta+1) / sched.Lambda,
	}
	return cfg.run(p, m)
}

// DistributedPanconesiSozio runs the single-stage line-network baseline of
// [15,16] as a message-passing protocol — historically the setting those
// papers targeted. Unit heights, line networks only.
func DistributedPanconesiSozio(p *instance.Problem, opts Options) (*DistributedResult, error) {
	c, err := Compile(p, opts.DecompKind)
	if err != nil {
		return nil, err
	}
	return c.DistributedPanconesiSozio(opts)
}

// DistributedPanconesiSozio is the compiled-model form of the
// package-level DistributedPanconesiSozio.
func (c *Compiled) DistributedPanconesiSozio(opts Options) (*DistributedResult, error) {
	opts = c.prep(opts)
	p := c.p
	if p.Kind != instance.KindLine {
		return nil, fmt.Errorf("core: DistributedPanconesiSozio is a line-network baseline (got %v)", p.Kind)
	}
	if !p.UnitHeight() {
		return nil, fmt.Errorf("core: DistributedPanconesiSozio requires unit heights")
	}
	if opts.FixedRounds {
		return nil, fmt.Errorf("core: FixedRounds requires a multi-stage schedule")
	}
	sm, err := telModel(opts.Telemetry, c.fullModel)
	if err != nil {
		return nil, err
	}
	m := sm.m
	lambda := 1 / (5 + opts.Epsilon)
	sched := NewSingleStageSchedule(m, lambda)
	cfg := &distProtocol{
		name:  "panconesi-sozio-unit",
		rule:  lp.Unit{},
		sched: sched,
		opts:  opts,
		bound: float64(m.Delta+1) / lambda,
	}
	return cfg.run(p, m)
}

// DistributedNarrow runs the §6.1 narrow-instance algorithm as a
// message-passing protocol; all demands must have effective height ≤ 1/2.
func DistributedNarrow(p *instance.Problem, opts Options) (*DistributedResult, error) {
	c, err := Compile(p, opts.DecompKind)
	if err != nil {
		return nil, err
	}
	return c.DistributedNarrow(opts)
}

// DistributedNarrow is the compiled-model form of the package-level
// DistributedNarrow.
func (c *Compiled) DistributedNarrow(opts Options) (*DistributedResult, error) {
	opts = c.prep(opts)
	sm, err := telModel(opts.Telemetry, c.fullModel)
	if err != nil {
		return nil, err
	}
	m := sm.m
	hmin, err := effHMin(m, "DistributedNarrow")
	if err != nil {
		return nil, err
	}
	sched := NewSchedule(m, NarrowXi(m.Delta, hmin), opts.Epsilon)
	cfg := &distProtocol{
		name:  "narrow",
		rule:  narrowRule(c.p),
		sched: sched,
		opts:  opts,
		bound: float64(2*m.Delta*m.Delta+1) / sched.Lambda,
	}
	return cfg.run(c.p, m)
}

// assembleDistributed merges per-node state into a Result: global duals are
// reconstructed (and their per-edge copies cross-checked), the slackness
// certificate verified, and the union of selections collected.
func assembleDistributed(name string, m *model.Model, rule lp.Rule, sched Schedule, nodes []*nodeState, stats dist.Stats, bound float64) (*DistributedResult, error) {
	duals := lp.NewDuals(m)
	betaSeen := make(map[int32]float64)
	for u, ns := range nodes {
		if ns == nil {
			continue
		}
		duals.Alpha[u] = ns.alpha
		//schedlint:ordered keyed writes: each edge e is first-seen exactly once and later copies are verified equal, so the merged β is order-independent
		for e, v := range ns.beta {
			if prev, ok := betaSeen[e]; ok {
				if math.Abs(prev-v) > 1e-6*(1+math.Abs(prev)) {
					return nil, fmt.Errorf("core: distributed β copies diverged on edge %d: %g vs %g", e, prev, v)
				}
			} else {
				betaSeen[e] = v
				duals.Beta[e] = v
			}
		}
	}
	if len(m.Insts) > 0 {
		if err := lp.VerifyLambdaSatisfied(rule, m, duals, sched.Lambda); err != nil {
			return nil, fmt.Errorf("core: %s (distributed): %w: %v", name, ErrCertificate, err)
		}
	}
	res := &Result{Name: name + "-distributed", Lambda: sched.Lambda, Bound: bound, Model: m}
	for _, ns := range nodes {
		if ns == nil {
			continue
		}
		for _, i := range ns.selected {
			res.Selected = append(res.Selected, m.Insts[i])
			res.Profit += m.Insts[i].Profit
		}
	}
	res.DualUB = lp.DualObjective(rule, m, duals) / sched.Lambda
	if res.Profit > 0 {
		res.CertifiedRatio = res.DualUB / res.Profit
	}
	return &DistributedResult{Result: res, Net: stats}, nil
}
