package core

import (
	"fmt"
	"math"

	"treesched/internal/dist"
	"treesched/internal/instance"
	"treesched/internal/lp"
	"treesched/internal/mis"
	"treesched/internal/model"
)

// DistributedResult couples an algorithm Result with the measured network
// cost of the message-passing execution.
type DistributedResult struct {
	*Result
	// Net reports communication rounds, messages and global aggregations
	// measured by the simulator.
	Net dist.Stats
}

// Message payloads exchanged by the protocol. Every payload names demand
// instances by id; a processor that learns an instance id can reconstruct
// its path and critical edges from the globally known topology, so each
// payload entry is O(M) bits in the paper's accounting (§5 "Distributed
// Implementation").
type (
	// prioPayload announces the sender's still-undecided participating
	// instances and their Luby priorities for the current phase.
	prioPayload struct {
		Insts []int32
		Prios []float64
	}
	// winPayload announces instances that joined the MIS this phase.
	winPayload struct {
		Insts []int32
	}
	// raisePayload announces dual raises: instance ids and their δ; the
	// receivers recompute the β increments from the shared rule.
	raisePayload struct {
		Insts  []int32
		Deltas []float64
	}
	// selPayload announces instances selected in the second phase.
	selPayload struct {
		Insts []int32
	}
)

// nodeState is the per-processor private state of the protocol.
type nodeState struct {
	mine       []int32           // instance ids owned by this processor
	alpha      float64           // α of the owned demand
	beta       map[int32]float64 // local copies of β for relevant edges
	relevant   map[int32]bool    // edges on any owned instance's path
	stack      []int32           // raised instances, in raise order
	raiseSteps []int             // global step number of each raise (parallel to stack)
	selected   []int32           // phase-2 output
}

// lhsLocal evaluates the dual constraint LHS of an owned instance from
// local state; it matches lp.Rule.LHS exactly because local β copies stay
// consistent (every raiser of a relevant edge shares a resource with us).
func (ns *nodeState) lhsLocal(m *model.Model, rule lp.Rule, i int32) float64 {
	sum := 0.0
	switch rule.(type) {
	case lp.Unit:
		for _, e := range m.Paths[i] {
			sum += ns.beta[e]
		}
		return ns.alpha + sum
	case lp.Narrow:
		for _, e := range m.Paths[i] {
			sum += ns.beta[e]
		}
		return ns.alpha + m.Insts[i].Height*sum
	case lp.Capacitated:
		for _, e := range m.Paths[i] {
			sum += ns.beta[e] / m.Cap[e]
		}
		return ns.alpha + m.Insts[i].Height*sum
	default:
		panic("core: distributed protocol does not support rule " + rule.Name())
	}
}

// raiseLocal applies the raise of owned instance i to local state and
// returns δ; mirrors lp.Rule.Raise.
func (ns *nodeState) raiseLocal(m *model.Model, rule lp.Rule, i int32) float64 {
	s := m.Insts[i].Profit - ns.lhsLocal(m, rule, i)
	if s <= lp.Tol {
		return 0
	}
	pi := m.Pi[i]
	k := float64(len(pi))
	var delta float64
	switch rule.(type) {
	case lp.Unit:
		delta = s / (k + 1)
		ns.alpha += delta
		for _, e := range pi {
			ns.applyBeta(e, delta)
		}
	case lp.Narrow:
		h := m.Insts[i].Height
		delta = s / (1 + 2*h*k*k)
		ns.alpha += delta
		for _, e := range pi {
			ns.applyBeta(e, 2*k*delta)
		}
	case lp.Capacitated:
		h := m.Insts[i].Height
		delta = s / (1 + 2*h*k*k)
		ns.alpha += delta
		for _, e := range pi {
			ns.applyBeta(e, 2*k*m.Cap[e]*delta)
		}
	}
	return delta
}

// applyRemoteRaise folds a neighbor's announced raise into local β copies.
func (ns *nodeState) applyRemoteRaise(m *model.Model, rule lp.Rule, i int32, delta float64) {
	pi := m.Pi[i]
	k := float64(len(pi))
	for _, e := range pi {
		if !ns.relevant[e] {
			continue
		}
		switch rule.(type) {
		case lp.Unit:
			ns.applyBeta(e, delta)
		case lp.Narrow:
			ns.applyBeta(e, 2*k*delta)
		case lp.Capacitated:
			ns.applyBeta(e, 2*k*m.Cap[e]*delta)
		}
	}
}

func (ns *nodeState) applyBeta(e int32, inc float64) {
	if ns.relevant[e] {
		ns.beta[e] += inc
	}
}

// distributedRun executes phase 1 and phase 2 of the framework as a
// message-passing protocol on the BSP simulator: one goroutine per
// processor, communication only between processors sharing a resource.
// With equal seeds it selects exactly the instances the centralized
// Phase1/Phase2 pair selects — a tested invariant.
func distributedRun(name string, p *instance.Problem, m *model.Model, rule lp.Rule, sched Schedule, opts Options, bound float64) (*DistributedResult, error) {
	adj := p.CommGraph()
	nodes := make([]*nodeState, m.NumDemands)
	var protoErr error

	// Fixed-rounds mode: the paper's deterministic accounting. Every node
	// runs exactly fixedSteps steps per stage and fixedPhases Luby phases
	// per step, in lockstep, with no global aggregation at all.
	fixedSteps, fixedPhases := 0, 0
	if opts.FixedRounds {
		fixedSteps = sched.FixedSteps(m)
		if fixedSteps == 0 {
			return nil, fmt.Errorf("core: FixedRounds requires a multi-stage schedule")
		}
		// Luby finishes in O(log N) phases w.h.p. (N = mr instances,
		// [14]); exceeding the budget is detected and reported.
		nn := len(m.Insts)
		fixedPhases = 8
		for v := nn; v > 0; v >>= 1 {
			fixedPhases += 4
		}
	}

	stats := dist.Run(adj, func(api *dist.API) {
		u := api.ID()
		ns := &nodeState{
			mine:     m.InstsOf[u],
			beta:     map[int32]float64{},
			relevant: map[int32]bool{},
		}
		nodes[u] = ns
		for _, i := range ns.mine {
			for _, e := range m.Paths[i] {
				ns.relevant[e] = true
			}
		}

		conflicts := func(i, j int32) bool {
			return m.Insts[i].Demand == m.Insts[j].Demand || m.P.Overlap(m.Insts[i], m.Insts[j])
		}

		// ---- First phase ----
		stepCounter := uint64(0)
		var tupleSteps []int // steps of each (epoch,stage), identical on all nodes
		for k := 1; k <= sched.Epochs; k++ {
			for j := 1; j <= sched.Stages; j++ {
				threshold := sched.Thresholds[j-1]
				steps := 0
				for {
					// Participation: owned group-k instances that are
					// threshold-unsatisfied under local duals.
					var participating []int32
					for _, i := range ns.mine {
						if int(m.Group[i]) == k &&
							ns.lhsLocal(m, rule, i) < threshold*m.Insts[i].Profit-lp.Tol {
							participating = append(participating, i)
						}
					}
					if fixedSteps > 0 {
						if steps >= fixedSteps {
							if len(participating) > 0 {
								protoErr = fmt.Errorf("core: fixed schedule left instances unsatisfied after %d steps in stage (%d,%d)", fixedSteps, k, j)
								return
							}
							break
						}
					} else if !api.Aggregate(len(participating) > 0) {
						break
					}
					steps++
					if steps > sched.MaxSteps {
						protoErr = fmt.Errorf("core: distributed stage (%d,%d) exceeded %d steps", k, j, sched.MaxSteps)
						return
					}
					stepCounter++

					// Luby MIS over the participating instances.
					undecided := map[int32]bool{}
					for _, i := range participating {
						undecided[i] = true
					}
					var winners []int32
					for phase := 1; ; phase++ {
						// Round A: announce undecided instances + priorities.
						var pp prioPayload
						prio := map[int32]float64{}
						for _, i := range participating {
							if undecided[i] {
								pr := mis.Priority(opts.Seed, i, stepCounter, phase)
								prio[i] = pr
								pp.Insts = append(pp.Insts, i)
								pp.Prios = append(pp.Prios, pr)
							}
						}
						var in []dist.Message
						if len(pp.Insts) > 0 {
							in = api.Broadcast(pp)
						} else {
							in = api.Exchange(nil)
						}
						type cand struct {
							inst int32
							prio float64
						}
						var nbr []cand
						for _, msg := range in {
							pl := msg.Payload.(prioPayload)
							for x, inst := range pl.Insts {
								nbr = append(nbr, cand{inst, pl.Prios[x]})
							}
						}
						// Local win decision for each owned undecided
						// instance: beat every conflicting undecided
						// instance by (priority, id).
						var phaseWinners []int32
						for _, i := range participating {
							if !undecided[i] {
								continue
							}
							best := true
							for _, o := range ns.mine {
								if o != i && undecided[o] &&
									(prio[o] < prio[i] || (prio[o] == prio[i] && o < i)) {
									best = false
									break
								}
							}
							for _, c := range nbr {
								if !best {
									break
								}
								if conflicts(i, c.inst) &&
									(c.prio < prio[i] || (c.prio == prio[i] && c.inst < i)) {
									best = false
								}
							}
							if best {
								phaseWinners = append(phaseWinners, i)
							}
						}
						// Round B: announce winners; exclude dominated.
						var winIn []dist.Message
						if len(phaseWinners) > 0 {
							winIn = api.Broadcast(winPayload{Insts: phaseWinners})
						} else {
							winIn = api.Exchange(nil)
						}
						for _, i := range phaseWinners {
							undecided[i] = false
							winners = append(winners, i)
						}
						var allWinners []int32
						allWinners = append(allWinners, phaseWinners...)
						for _, msg := range winIn {
							allWinners = append(allWinners, msg.Payload.(winPayload).Insts...)
						}
						for _, i := range participating {
							if !undecided[i] {
								continue
							}
							for _, w := range allWinners {
								if conflicts(i, w) {
									undecided[i] = false
									break
								}
							}
						}
						stillAny := false
						for _, i := range participating {
							if undecided[i] {
								stillAny = true
								break
							}
						}
						if fixedPhases > 0 {
							if phase >= fixedPhases {
								if stillAny {
									protoErr = fmt.Errorf("core: Luby exceeded the fixed %d-phase budget (w.h.p. bound missed; reseed)", fixedPhases)
									return
								}
								break
							}
							continue
						}
						if !api.Aggregate(stillAny) {
							break
						}
					}

					// Raise winners and announce the raises. The MIS picks
					// at most one instance per demand (same-demand
					// instances conflict), so winners has length ≤ 1 here.
					var rp raisePayload
					for _, i := range winners {
						delta := ns.raiseLocal(m, rule, i)
						ns.stack = append(ns.stack, i)
						ns.raiseSteps = append(ns.raiseSteps, int(stepCounter))
						rp.Insts = append(rp.Insts, i)
						rp.Deltas = append(rp.Deltas, delta)
					}
					var raiseIn []dist.Message
					if len(rp.Insts) > 0 {
						raiseIn = api.Broadcast(rp)
					} else {
						raiseIn = api.Exchange(nil)
					}
					for _, msg := range raiseIn {
						pl := msg.Payload.(raisePayload)
						for x, inst := range pl.Insts {
							ns.applyRemoteRaise(m, rule, inst, pl.Deltas[x])
						}
					}
				}
				tupleSteps = append(tupleSteps, steps)
			}
		}

		// ---- Second phase ----
		// All nodes observed identical step counts (the loop breaks are
		// global aggregates), so they walk the same global step sequence
		// in reverse: one communication round per step tuple. Feasibility
		// is tracked on the node's relevant edges from its own selections
		// and the neighbors' announcements.
		load := map[int32]float64{}
		demandUsed := false
		stackTop := len(ns.stack) - 1
		totalSteps := 0
		for _, s := range tupleSteps {
			totalSteps += s
		}
		for t := totalSteps; t >= 1; t-- {
			var announce []int32
			if stackTop >= 0 && ns.raiseSteps[stackTop] == t {
				i := ns.stack[stackTop]
				stackTop--
				d := m.Insts[i]
				fits := !demandUsed
				if fits {
					for _, e := range m.Paths[i] {
						if load[e]+d.Height > m.Cap[e]+lp.Tol {
							fits = false
							break
						}
					}
				}
				if fits {
					demandUsed = true
					for _, e := range m.Paths[i] {
						load[e] += d.Height
					}
					ns.selected = append(ns.selected, i)
					announce = append(announce, i)
				}
			}
			var selIn []dist.Message
			if len(announce) > 0 {
				selIn = api.Broadcast(selPayload{Insts: announce})
			} else {
				selIn = api.Exchange(nil)
			}
			for _, msg := range selIn {
				for _, inst := range msg.Payload.(selPayload).Insts {
					h := m.Insts[inst].Height
					for _, e := range m.Paths[inst] {
						if ns.relevant[e] {
							load[e] += h
						}
					}
				}
			}
		}
	})
	if protoErr != nil {
		return nil, protoErr
	}

	return assembleDistributed(name, m, rule, sched, nodes, stats, bound)
}

// DistributedUnit runs the unit-height algorithm (§5 for trees, §7 for
// lines) as a real message-passing protocol: one goroutine per processor,
// Luby MIS by priority exchange, dual raises propagated to resource-sharing
// neighbors, and a distributed reverse-stack second phase. With the same
// seed it selects exactly what TreeUnit/LineUnit select.
func DistributedUnit(p *instance.Problem, opts Options) (*DistributedResult, error) {
	opts = opts.withDefaults()
	if !p.UnitHeight() {
		return nil, fmt.Errorf("core: DistributedUnit requires unit heights")
	}
	m, err := model.Build(p, model.Options{DecompKind: opts.DecompKind})
	if err != nil {
		return nil, err
	}
	sched := NewSchedule(m, UnitXi(m.Delta), opts.Epsilon)
	bound := float64(m.Delta+1) / sched.Lambda
	name := "tree-unit"
	if p.Kind == instance.KindLine {
		name = "line-unit"
	}
	return distributedRun(name, p, m, lp.Unit{}, sched, opts, bound)
}

// DistributedPanconesiSozio runs the single-stage line-network baseline of
// [15,16] as a message-passing protocol — historically the setting those
// papers targeted. Unit heights, line networks only.
func DistributedPanconesiSozio(p *instance.Problem, opts Options) (*DistributedResult, error) {
	opts = opts.withDefaults()
	if p.Kind != instance.KindLine {
		return nil, fmt.Errorf("core: DistributedPanconesiSozio is a line-network baseline (got %v)", p.Kind)
	}
	if !p.UnitHeight() {
		return nil, fmt.Errorf("core: DistributedPanconesiSozio requires unit heights")
	}
	if opts.FixedRounds {
		return nil, fmt.Errorf("core: FixedRounds requires a multi-stage schedule")
	}
	m, err := model.Build(p, model.Options{})
	if err != nil {
		return nil, err
	}
	lambda := 1 / (5 + opts.Epsilon)
	sched := NewSingleStageSchedule(m, lambda)
	bound := float64(m.Delta+1) / lambda
	return distributedRun("panconesi-sozio-unit", p, m, lp.Unit{}, sched, opts, bound)
}

// DistributedNarrow runs the §6.1 narrow-instance algorithm as a
// message-passing protocol; all demands must have effective height ≤ 1/2.
func DistributedNarrow(p *instance.Problem, opts Options) (*DistributedResult, error) {
	opts = opts.withDefaults()
	m, err := model.Build(p, model.Options{DecompKind: opts.DecompKind})
	if err != nil {
		return nil, err
	}
	hmin := 1.0
	for i := range m.Insts {
		eff := m.EffHeight(int32(i))
		if eff > 0.5+lp.Tol {
			return nil, fmt.Errorf("core: DistributedNarrow: instance %d has effective height %g > 1/2", i, eff)
		}
		if eff < hmin {
			hmin = eff
		}
	}
	sched := NewSchedule(m, NarrowXi(m.Delta, hmin), opts.Epsilon)
	bound := float64(2*m.Delta*m.Delta+1) / sched.Lambda
	return distributedRun("narrow", p, m, narrowRule(p), sched, opts, bound)
}

// assembleDistributed merges per-node state into a Result: global duals are
// reconstructed (and their per-edge copies cross-checked), the slackness
// certificate verified, and the union of selections collected.
func assembleDistributed(name string, m *model.Model, rule lp.Rule, sched Schedule, nodes []*nodeState, stats dist.Stats, bound float64) (*DistributedResult, error) {
	duals := lp.NewDuals(m)
	betaSeen := make(map[int32]float64)
	for u, ns := range nodes {
		if ns == nil {
			continue
		}
		duals.Alpha[u] = ns.alpha
		for e, v := range ns.beta {
			if prev, ok := betaSeen[e]; ok {
				if math.Abs(prev-v) > 1e-6*(1+math.Abs(prev)) {
					return nil, fmt.Errorf("core: distributed β copies diverged on edge %d: %g vs %g", e, prev, v)
				}
			} else {
				betaSeen[e] = v
				duals.Beta[e] = v
			}
		}
	}
	if len(m.Insts) > 0 {
		if err := lp.VerifyLambdaSatisfied(rule, m, duals, sched.Lambda); err != nil {
			return nil, fmt.Errorf("core: %s (distributed): %w", name, err)
		}
	}
	res := &Result{Name: name + "-distributed", Lambda: sched.Lambda, Bound: bound, Model: m}
	for _, ns := range nodes {
		if ns == nil {
			continue
		}
		for _, i := range ns.selected {
			res.Selected = append(res.Selected, m.Insts[i])
			res.Profit += m.Insts[i].Profit
		}
	}
	res.DualUB = lp.DualObjective(rule, m, duals) / sched.Lambda
	if res.Profit > 0 {
		res.CertifiedRatio = res.DualUB / res.Profit
	}
	return &DistributedResult{Result: res, Net: stats}, nil
}
