package dist

import (
	"testing"

	"treesched/internal/obs"
)

// runMirrorObserved is runMirror with a round log attached: same mirror
// protocol, observed engine entry points.
func runMirrorObserved(adj [][]int32, rounds, aggRounds, workers int, blocking bool) (Stats, *obs.RoundLog) {
	mk := func(u int) Proc {
		return &mirrorProc{id: u, rounds: rounds, aggRounds: aggRounds}
	}
	tr := NewLocalTransport(adj)
	rl := new(obs.RoundLog)
	var stats Stats
	if blocking {
		stats = RunProcsBlockingObserved(tr, mk, rl)
	} else {
		stats = RunProcsObserved(tr, workers, mk, rl)
	}
	return stats, rl
}

// shape strips the wall-clock component of a round log, leaving the
// deterministic (Kind, Messages, Entries) sequence.
func shape(rl *obs.RoundLog) []obs.RoundSample {
	out := make([]obs.RoundSample, len(rl.Samples))
	for i, s := range rl.Samples {
		s.StepNs = 0
		out[i] = s
	}
	return out
}

// TestRoundLogMatchesStats cross-checks the round log against the
// engine's own accounting, on both engines: one exchange sample per
// round, one aggregate sample per reduction, samples in collective
// order, and per-sample delivery counts summing to Stats.Messages and
// Stats.Entries. The log is a decomposition of Stats, not a second
// opinion — any drift means an engine sampled the wrong barrier.
func TestRoundLogMatchesStats(t *testing.T) {
	const rounds, aggRounds = 14, 5
	for _, tc := range []struct {
		name string
		adj  [][]int32
	}{
		{"ring64", ring(64)},
		{"complete24", complete(24)},
		{"isolated", [][]int32{{}, {}, {}}},
	} {
		for _, eng := range []struct {
			name     string
			blocking bool
			workers  int
		}{
			{"blocking", true, 0},
			{"pool-w1", false, 1},
			{"pool-w3", false, 3},
			{"pool-auto", false, 0},
		} {
			stats, rl := runMirrorObserved(tc.adj, rounds, aggRounds, eng.workers, eng.blocking)
			var exch, aggs int
			var msgs, entries int64
			for i, s := range rl.Samples {
				switch s.Kind {
				case "exchange":
					exch++
					msgs += s.Messages
					entries += s.Entries
				case "aggregate":
					aggs++
					if s.Messages != 0 || s.Entries != 0 {
						t.Fatalf("%s/%s: aggregate sample %d carries deliveries: %+v", tc.name, eng.name, i, s)
					}
				default:
					t.Fatalf("%s/%s: sample %d has unknown kind %q", tc.name, eng.name, i, s.Kind)
				}
				if s.StepNs < 0 {
					t.Fatalf("%s/%s: sample %d has negative StepNs %d", tc.name, eng.name, i, s.StepNs)
				}
			}
			if exch != stats.Rounds || aggs != stats.Aggregations {
				t.Fatalf("%s/%s: log has %d exchange / %d aggregate samples, stats say %d rounds / %d aggregations",
					tc.name, eng.name, exch, aggs, stats.Rounds, stats.Aggregations)
			}
			if msgs != stats.Messages || entries != stats.Entries {
				t.Fatalf("%s/%s: log sums to %d msgs / %d entries, stats say %d / %d",
					tc.name, eng.name, msgs, entries, stats.Messages, stats.Entries)
			}
		}
	}
}

// TestRoundLogEngineEquivalence pins the observed engines against each
// other: the blocking coordinator and the worker pool (across worker
// counts) must record the identical (Kind, Messages, Entries) sequence
// for the same protocol. Only StepNs — wall time — may differ.
func TestRoundLogEngineEquivalence(t *testing.T) {
	const rounds, aggRounds = 14, 5
	for _, tc := range []struct {
		name string
		adj  [][]int32
	}{
		{"ring64", ring(64)},
		{"complete24", complete(24)},
		{"path3", [][]int32{{1}, {0, 2}, {1}}},
	} {
		refStats, refLog := runMirrorObserved(tc.adj, rounds, aggRounds, 0, true)
		ref := shape(refLog)
		for _, workers := range []int{1, 2, 7, 0} {
			stats, rl := runMirrorObserved(tc.adj, rounds, aggRounds, workers, false)
			if stats != refStats {
				t.Fatalf("%s workers=%d: stats %+v, blocking reference %+v", tc.name, workers, stats, refStats)
			}
			got := shape(rl)
			if len(got) != len(ref) {
				t.Fatalf("%s workers=%d: %d samples, blocking reference has %d", tc.name, workers, len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("%s workers=%d: sample %d is %+v, blocking reference %+v",
						tc.name, workers, i, got[i], ref[i])
				}
			}
		}
	}
}
