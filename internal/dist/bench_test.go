package dist

import "testing"

// benchBody is a protocol shaped like the core hot path: every processor
// broadcasts a small payload each round, double-buffering the payload the
// same way the protocol engine's arena does, and folds its inbox.
func benchBody(rounds, entries int) func(*API) {
	return func(api *API) {
		var bufs [2]idsPayload
		for i := range bufs {
			bufs[i].Ids = make([]int32, entries)
		}
		sink := int64(0)
		for r := 0; r < rounds; r++ {
			p := &bufs[r&1]
			for x := range p.Ids {
				p.Ids[x] = int32(api.ID() + r + x)
			}
			for _, m := range api.Broadcast(p) {
				sink += int64(m.Payload.(*idsPayload).Ids[0])
			}
		}
		_ = sink
	}
}

// BenchmarkRingBroadcast measures the per-round cost of the runtime
// itself: barrier + batched delivery on a 64-cycle, 32 rounds per run.
func BenchmarkRingBroadcast(b *testing.B) {
	adj := ring(64)
	body := benchBody(32, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunOn(NewLocalTransport(adj), body)
	}
}

// BenchmarkCompleteBroadcast stresses delivery fan-out: 32 processors,
// all-to-all, 16 rounds per run.
func BenchmarkCompleteBroadcast(b *testing.B) {
	adj := complete(32)
	body := benchBody(16, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunOn(NewLocalTransport(adj), body)
	}
}

// BenchmarkAggregate measures the global-OR barrier alone.
func BenchmarkAggregate(b *testing.B) {
	adj := ring(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(adj, func(api *API) {
			for r := 0; r < 32; r++ {
				api.Aggregate(r%7 == 0)
			}
		})
	}
}

// benchPoolBody mirrors benchBody as a resumable Proc.
type benchPoolProc struct {
	id, rounds, entries int
	r                   int
	sink                int64
	bufs                [2]idsPayload
}

func (p *benchPoolProc) Step(in In) Req {
	for _, m := range in.Msgs {
		p.sink += int64(m.Payload.(*idsPayload).Ids[0])
	}
	if p.r == p.rounds {
		return Req{Op: OpDone}
	}
	pl := &p.bufs[p.r&1]
	if len(pl.Ids) == 0 {
		pl.Ids = make([]int32, p.entries)
	}
	for x := range pl.Ids {
		pl.Ids[x] = int32(p.id + p.r + x)
	}
	p.r++
	return Req{Op: OpExchange, Payload: pl}
}

// benchPool measures the pool engine on the same workload shapes as the
// blocking benchmarks above — the rounds/sec comparison behind
// BENCH_dist.json at micro scale.
func benchPool(b *testing.B, adj [][]int32, rounds, entries int) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunProcs(NewLocalTransport(adj), 0, func(u int) Proc {
			return &benchPoolProc{id: u, rounds: rounds, entries: entries}
		})
	}
}

// BenchmarkPoolRingBroadcast is BenchmarkRingBroadcast on the pool
// engine.
func BenchmarkPoolRingBroadcast(b *testing.B) { benchPool(b, ring(64), 32, 4) }

// BenchmarkPoolCompleteBroadcast is BenchmarkCompleteBroadcast on the
// pool engine.
func BenchmarkPoolCompleteBroadcast(b *testing.B) { benchPool(b, complete(32), 16, 4) }

// BenchmarkPoolRingBroadcast10k is the scale regime the pool engine
// exists for: 10^4 processors on a handful of goroutines, a size the
// goroutine-per-processor runtime is not benchmarked at.
func BenchmarkPoolRingBroadcast10k(b *testing.B) { benchPool(b, ring(10000), 8, 4) }
