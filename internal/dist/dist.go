// Package dist is a synchronous message-passing (BSP) simulator: the
// execution substrate of the paper's distributed protocols (§2 "the
// distributed setting", §5 "Distributed Implementation"). Every processor
// runs as one goroutine; processors advance in barrier-synchronized
// rounds, and in each round a processor may hand one payload to the
// transport, which delivers it to every neighbor in the communication
// graph before any processor starts the next round.
//
// # Cost accounting
//
// Stats measures the communication complexity currency of the paper:
//
//   - Rounds counts synchronous communication rounds — one per
//     Broadcast/Exchange barrier. This is the quantity bounded by
//     Theorem 5.3's O(Time(MIS)·log m·log pmax/ε) round complexity.
//   - Messages counts point-to-point deliveries: a Broadcast by a
//     processor of degree d costs d messages. Silent participation
//     (Exchange(nil)) costs a round but no messages.
//   - Aggregations counts global boolean OR reductions (Aggregate).
//     The paper realizes these as convergecasts over a spanning tree at
//     O(diameter) rounds each; they are tallied separately so both
//     accountings can be reported. The fixed-rounds schedules of §5
//     eliminate them entirely.
//   - Entries counts the payload entries delivered (instance ids or
//     (id, value) pairs). Each entry is O(log m + log pmax) bits, so
//     Entries is the simulator's proxy for total bits on the wire.
//     Payloads opt in by implementing Sizer; opaque payloads count 0.
//
// All four counters are deterministic functions of the protocol and its
// seed: delivery order within a round is fixed (ascending sender id) and
// barriers hide goroutine scheduling, so equal seeds yield byte-identical
// Stats and — for the core protocols — exactly the centralized solver's
// selections.
//
// # Early exit
//
// A processor may return from its body at any point (e.g. on a protocol
// error). Departed processors leave the barrier group: they send nothing,
// receive nothing (deliveries to them are neither made nor counted), vote
// false, and the remaining processors keep advancing — no deadlock.
package dist

import (
	"sync"
	"time"

	"treesched/internal/obs"
)

// Message is one delivered payload.
type Message struct {
	// From is the sending processor's id.
	From int32
	// Payload is the value the sender passed to Broadcast/Exchange.
	// Received payloads are shared, not copied: receivers must treat them
	// as read-only and must not retain them past their next collective
	// call (senders may reuse payload buffers two rounds later).
	Payload any
}

// Sizer lets a payload report how many entries it carries for the
// Stats.Entries bit-complexity proxy.
type Sizer interface {
	// PayloadEntries returns the number of entries (ids or (id, value)
	// pairs) in the payload.
	PayloadEntries() int
}

// Stats is the measured network cost of one Run. See the package comment
// for the accounting rules.
type Stats struct {
	// Rounds is the number of synchronous communication rounds
	// (Broadcast/Exchange barriers).
	Rounds int
	// Messages is the number of point-to-point payload deliveries.
	Messages int64
	// Aggregations is the number of global boolean OR reductions.
	Aggregations int
	// Entries is the total number of payload entries delivered.
	Entries int64
}

// API is a processor's handle to the runtime, valid only inside the body
// passed to Run.
type API struct {
	id int
	c  *coordinator
}

// ID returns the processor id (an index into the adjacency lists; for the
// scheduling protocols, the demand/processor id).
func (a *API) ID() int { return a.id }

// Broadcast sends payload to every neighbor and returns the messages
// received this round, in ascending sender order. It blocks until every
// live processor has entered the round. The returned slice and the
// received payloads are only valid until the processor's next collective
// call.
func (a *API) Broadcast(payload any) []Message {
	if payload == nil {
		panic("dist: Broadcast requires a payload; use Exchange(nil) to stay silent")
	}
	msgs, _ := a.c.collective(a.id, opExchange, payload, false)
	return msgs
}

// Exchange participates in one communication round, sending payload to
// every neighbor if non-nil and nothing otherwise, and returns the
// messages received. Exchange(nil) is how a processor with nothing to say
// stays in lockstep with its peers.
func (a *API) Exchange(payload any) []Message {
	msgs, _ := a.c.collective(a.id, opExchange, payload, false)
	return msgs
}

// Aggregate performs a global boolean OR over all live processors: it
// returns true iff any live processor voted true this round. Every live
// processor must call Aggregate in the same round (the protocols use it
// as their loop-termination test).
func (a *API) Aggregate(vote bool) bool {
	_, r := a.c.collective(a.id, opAggregate, nil, vote)
	return r
}

// Run executes body once per processor of the communication graph adj
// (adjacency lists over processor ids) on the in-process goroutine
// transport and returns the measured network cost.
func Run(adj [][]int32, body func(*API)) Stats {
	return RunOn(NewLocalTransport(adj), body)
}

// RunOn executes body once per processor on an arbitrary Transport.
func RunOn(tr Transport, body func(*API)) Stats {
	return RunOnObserved(tr, body, nil)
}

// RunOnObserved is RunOn with per-superstep telemetry: when rl is
// non-nil, every completed collective appends one obs.RoundSample
// (kind, messages, entries, and the wall time since the previous
// round's completion). Sampling never alters the execution — Stats and
// every observation stream are identical with rl nil or not — and a
// nil rl costs one pointer check per round.
func RunOnObserved(tr Transport, body func(*API), rl *obs.RoundLog) Stats {
	n := tr.NumNodes()
	if n == 0 {
		return Stats{}
	}
	c := newCoordinator(tr, n)
	c.observe(rl)
	var wg sync.WaitGroup
	for u := 0; u < n; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			defer c.depart(u)
			body(&API{id: u, c: c})
		}(u)
	}
	wg.Wait()
	return c.stats
}

// opKind tags the collective operation a round performs; mixing kinds in
// one round is a protocol bug and panics.
type opKind uint8

const (
	opNone opKind = iota
	opExchange
	opAggregate
)

// coordinator implements the barrier: processors entering a collective
// deposit their contribution and block; the last arrival completes the
// round — one batched Transport.Deliver call for an exchange, one OR for
// an aggregation — and releases everyone. No per-message channel sends:
// the whole round is two lock acquisitions per processor plus a single
// delivery pass.
type coordinator struct {
	tr Transport

	mu      sync.Mutex
	cond    *sync.Cond
	waiting int    // processors blocked in the current collective
	live    int    // processors that have not returned from their body
	seq     uint64 // completed-collective counter; release condition
	kind    opKind

	out       []any       // per-processor outbox for the current round
	in        [][]Message // per-processor inboxes, backing arrays reused
	alive     []bool      // alive[u] false once processor u departed
	vote      bool        // running OR of the current aggregation
	aggResult bool        // result of the last completed aggregation

	stats Stats

	// rl, when non-nil, receives one sample per completed collective;
	// lastMark anchors each sample's StepNs at the previous completion.
	rl       *obs.RoundLog
	lastMark time.Time
}

// observe attaches a round log before the first round.
func (c *coordinator) observe(rl *obs.RoundLog) {
	c.rl = rl
	if rl != nil {
		c.lastMark = time.Now() //schedlint:statsonly anchors RoundSample.StepNs; never read by solver state
	}
}

func newCoordinator(tr Transport, n int) *coordinator {
	c := &coordinator{
		tr:    tr,
		live:  n,
		out:   make([]any, n),
		in:    make([][]Message, n),
		alive: make([]bool, n),
	}
	for u := range c.alive {
		c.alive[u] = true
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *coordinator) collective(id int, kind opKind, payload any, vote bool) ([]Message, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.kind == opNone {
		c.kind = kind
	} else if c.kind != kind {
		panic("dist: processors issued mismatched collective operations in one round")
	}
	switch kind {
	case opExchange:
		c.out[id] = payload
	case opAggregate:
		c.vote = c.vote || vote
	}
	seq := c.seq
	c.waiting++
	if c.waiting == c.live {
		c.finishRound()
	} else {
		for c.seq == seq {
			c.cond.Wait()
		}
	}
	return c.in[id], c.aggResult
}

// finishRound completes the pending collective. Caller holds c.mu.
func (c *coordinator) finishRound() {
	switch c.kind {
	case opExchange:
		c.stats.Rounds++
		msgs, entries := c.tr.Deliver(c.out, c.in, c.alive)
		c.stats.Messages += msgs
		c.stats.Entries += entries
		for i := range c.out {
			c.out[i] = nil
		}
		if c.rl != nil {
			c.sample("exchange", msgs, entries)
		}
	case opAggregate:
		c.stats.Aggregations++
		c.aggResult = c.vote
		c.vote = false
		if c.rl != nil {
			c.sample("aggregate", 0, 0)
		}
	}
	c.kind = opNone
	c.waiting = 0
	c.seq++
	c.cond.Broadcast()
}

// sample appends one round sample. Caller holds c.mu and has checked
// c.rl != nil, so the unobserved path never reads the clock.
func (c *coordinator) sample(kind string, msgs, entries int64) {
	now := time.Now() //schedlint:statsonly feeds RoundSample.StepNs telemetry only; rounds/messages are clock-free
	c.rl.Add(obs.RoundSample{
		Kind:     kind,
		Messages: msgs,
		Entries:  entries,
		StepNs:   now.Sub(c.lastMark).Nanoseconds(),
	})
	c.lastMark = now
}

// depart removes a processor whose body returned from the barrier group.
// If everyone else is already blocked on the current collective, the
// departure is what completes it.
//
// Audited edge case (pinned by TestDepartureVoteRace, on both engines):
// a processor may return between a peer's deposit and finishRound. The
// deposited contribution is safe — votes accumulate in c.vote and
// payloads in c.out under c.mu, and finishRound reads them under the
// same lock no matter who triggers it — and waiters cannot strand: every
// depart re-evaluates waiting == live after decrementing, so the last
// live depositor is always released either by a later arrival or by the
// departure itself. A departing processor that never deposited simply
// counts as a false vote / silent sender, per the package contract.
func (c *coordinator) depart(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.live--
	c.alive[id] = false
	c.out[id] = nil
	c.in[id] = nil
	if c.live > 0 && c.waiting == c.live {
		c.finishRound()
	}
}
