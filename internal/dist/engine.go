package dist

// The sharded worker-pool BSP engine: the scale substrate behind the
// goroutine-per-processor runtime in dist.go. The blocking runtime is the
// natural way to *write* a protocol, but at the network sizes where the
// paper's O(log m) round bounds matter (10^5 processors, cf. the SINR
// link-scheduling benchmarks of Pei–Kumar and Halldórsson–Mitra) it
// drowns in goroutine stacks and a single contended barrier mutex. Here a
// processor is instead a *resumable step function* (Proc): W workers each
// own one contiguous shard of processors and advance them cooperatively,
// one Step call per processor per collective, so a whole network runs on
// W ≈ GOMAXPROCS goroutines.
//
// # Round structure and the two-level barrier
//
// One collective (one "superstep") is:
//
//	phase A (step)     each worker resumes its shard's live processors
//	                   and accumulates a shard summary: the collective
//	                   kind, the shard's vote-OR, its sender list, its
//	                   live count. This is the per-shard barrier level —
//	                   pure sequential accumulation, no locks.
//	barrier 1          the last worker to arrive combines the shard
//	                   summaries: checks the kinds agree, resolves the
//	                   global aggregate OR, concatenates the sender list,
//	                   bumps Rounds/Aggregations.
//	phase B (deliver)  exchange rounds only: each worker rebuilds the
//	                   inboxes of its own shard, in its own arena,
//	                   reading the (now frozen) global outbox vector.
//	barrier 2          the last worker sums the per-shard message and
//	                   entry counts into Stats.
//
// Aggregate rounds skip phase B and barrier 2. Workers only rendezvous at
// the two barriers, so a round costs O(messages/P + shard size) per
// worker plus two barrier crossings of W parties — not n lock
// acquisitions of one mutex.
//
// # Determinism
//
// The engine is observationally identical to running the same Procs on
// the blocking runtime (RunProcsBlocking), and that equivalence is
// tested: shards partition the id space contiguously, each worker steps
// its shard in ascending id order, delivery produces ascending-sender
// inboxes, and all cross-shard combination (votes, message counts) is
// order-independent (OR and sums). Stats and every processor's
// observation stream are byte-identical across engines, worker counts and
// runs.
//
// # Departure
//
// A Proc departs by returning Req{Op: OpDone} — the pooled analogue of
// returning from the blocking body. Departure semantics mirror the
// blocking coordinator exactly (see the dist_test.go departure race
// tests, which pin them on both engines): a departed processor sends
// nothing, receives nothing, votes false, and never blocks the round —
// its departure is processed at its step slot, before the barrier, so the
// round completes with precisely the surviving participants.

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"treesched/internal/obs"
)

// OpKind names the collective operation a resumable processor requests.
type OpKind uint8

const (
	// OpDone departs: the processor's body is finished. Terminal.
	OpDone OpKind = iota
	// OpExchange participates in a communication round; a nil Payload
	// stays silent (the Exchange(nil) of the blocking API).
	OpExchange
	// OpAggregate contributes Vote to a global boolean OR.
	OpAggregate
)

// Req is a processor's contribution to its next collective: what the
// blocking API expresses as a Broadcast/Exchange/Aggregate call or a
// body return, expressed as a value.
type Req struct {
	Op      OpKind
	Payload any  // OpExchange: the payload to send; nil = silent
	Vote    bool // OpAggregate: the processor's vote
}

// In carries the result of the previous collective into the next Step
// call. Exactly one field is meaningful, per the previous Req's kind; the
// first Step of a processor receives the zero In.
type In struct {
	// Msgs is the inbox of the previous exchange, ascending sender order.
	// Valid only for the duration of the Step call: the backing arena is
	// rewritten by the next delivery.
	Msgs []Message
	// Agg is the result of the previous aggregation.
	Agg bool
}

// Proc is a resumable processor body: the runtime calls Step once per
// collective, handing it the previous collective's result and receiving
// the next request. Step must not retain In.Msgs or the received payloads
// past its return (the same sharing contract as the blocking Message
// doc), and must not block.
type Proc interface {
	Step(in In) Req
}

// RunProcs executes one Proc per processor of tr's communication graph on
// the sharded worker-pool engine and returns the measured network cost.
// workers ≤ 0 defaults to GOMAXPROCS; the engine runs on exactly
// min(workers, n) goroutines regardless of network size. Stats and every
// processor's observation stream are identical to RunProcsBlocking(tr, mk)
// — and so to the goroutine-per-processor runtime — for any worker count.
func RunProcs(tr Transport, workers int, mk func(u int) Proc) Stats {
	return RunProcsObserved(tr, workers, mk, nil)
}

// RunProcsObserved is RunProcs with per-superstep telemetry: a non-nil
// rl receives one obs.RoundSample per completed collective. The sample
// sequence (kind, messages, entries) is byte-identical to the one
// RunOnObserved records for the same protocol — only StepNs, a wall
// measurement, differs. A nil rl costs one pointer check per round.
func RunProcsObserved(tr Transport, workers int, mk func(u int) Proc, rl *obs.RoundLog) Stats {
	n := tr.NumNodes()
	if n == 0 {
		return Stats{}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	e := newPoolEngine(tr, n, workers, mk)
	e.observe(rl)
	e.run()
	return e.stats
}

// RunProcsBlocking executes the same resumable processors on the
// goroutine-per-processor runtime: each Proc is driven by a blocking
// adapter goroutine through the original coordinator. This is the
// reference semantics of RunProcs, the equivalence-test oracle, and the
// benchmark anchor the pool engine is measured against.
func RunProcsBlocking(tr Transport, mk func(u int) Proc) Stats {
	return RunProcsBlockingObserved(tr, mk, nil)
}

// RunProcsBlockingObserved is RunProcsBlocking with the round log of
// RunOnObserved attached — the observed analogue on the
// goroutine-per-processor runtime.
func RunProcsBlockingObserved(tr Transport, mk func(u int) Proc, rl *obs.RoundLog) Stats {
	return RunOnObserved(tr, func(api *API) {
		p := mk(api.ID())
		var in In
		for {
			req := p.Step(in)
			switch req.Op {
			case OpDone:
				return
			case OpExchange:
				in = In{Msgs: api.Exchange(req.Payload)}
			case OpAggregate:
				in = In{Agg: api.Aggregate(req.Vote)}
			default:
				panic(fmt.Sprintf("dist: invalid OpKind %d", req.Op))
			}
		}
	}, rl)
}

// shardState is one worker's private slice of the engine plus its round
// summary. Workers write only their own shard's entries of the global
// vectors between barriers, so no field here is ever contended.
type shardState struct {
	lo, hi int // processor id range [lo, hi)
	live   int // processors of the shard that have not departed

	kind    opKind  // collective kind stepped this round (opNone if none live)
	vote    bool    // OR of the shard's aggregate votes this round
	senders []int32 // shard's non-silent exchangers this round, ascending

	msgs, entries int64 // per-round delivery counts (phase B)

	arena InboxArena // the shard's inbox storage, reused across rounds
}

// poolEngine is the shared state of one RunProcs execution.
type poolEngine struct {
	tr  Transport
	str ShardTransport // tr if it supports sharded delivery, else nil

	n       int
	workers int
	procs   []Proc
	alive   []bool
	out     []any
	in      [][]Message
	shards  []shardState

	bar barrier

	// Round state, written only by the barrier-1 leader and read by all
	// workers after the barrier (the barrier publishes the writes).
	roundKind opKind
	prevKind  opKind
	aggResult bool
	liveTotal int
	finished  bool
	senders   []int32 // global ascending sender list of the round

	stats Stats

	// rl, when non-nil, receives one sample per completed collective:
	// aggregates sample at barrier 1 (combine), exchanges at barrier 2
	// (tally), once the round's delivery counts exist. Both leader
	// actions run with every worker parked, so the appends are ordered
	// exactly like the blocking coordinator's. lastMark anchors StepNs.
	rl       *obs.RoundLog
	lastMark time.Time
}

// observe attaches a round log before the first round.
func (e *poolEngine) observe(rl *obs.RoundLog) {
	e.rl = rl
	if rl != nil {
		e.lastMark = time.Now() //schedlint:statsonly anchors RoundSample.StepNs; never read by solver state
	}
}

// sample appends one round sample. Called only from a barrier leader
// action with e.rl already checked non-nil.
func (e *poolEngine) sample(kind string, msgs, entries int64) {
	now := time.Now() //schedlint:statsonly feeds RoundSample.StepNs telemetry only; rounds/messages are clock-free
	e.rl.Add(obs.RoundSample{
		Kind:     kind,
		Messages: msgs,
		Entries:  entries,
		StepNs:   now.Sub(e.lastMark).Nanoseconds(),
	})
	e.lastMark = now
}

func newPoolEngine(tr Transport, n, workers int, mk func(u int) Proc) *poolEngine {
	e := &poolEngine{
		tr:      tr,
		n:       n,
		workers: workers,
		procs:   make([]Proc, n),
		alive:   make([]bool, n),
		out:     make([]any, n),
		in:      make([][]Message, n),
		shards:  make([]shardState, workers),
	}
	if st, ok := tr.(ShardTransport); ok {
		e.str = st
	}
	e.bar.init(workers)
	e.liveTotal = n
	for u := 0; u < n; u++ {
		e.alive[u] = true
	}
	// Contiguous shards, sizes differing by at most one. Construction of
	// the Procs happens on the owning worker (concurrently), so mk must be
	// safe for concurrent calls with distinct u — the protocol engines
	// only touch per-processor state there.
	per, extra := n/workers, n%workers
	lo := 0
	for w := range e.shards {
		size := per
		if w < extra {
			size++
		}
		e.shards[w] = shardState{lo: lo, hi: lo + size, live: size}
		lo += size
	}
	e.mkProcs(mk)
	return e
}

// mkProcs constructs the per-processor machines shard-parallel: at 10^5
// processors construction is real work (per-node state allocation).
func (e *poolEngine) mkProcs(mk func(u int) Proc) {
	var wg sync.WaitGroup
	for w := range e.shards {
		wg.Add(1)
		go func(sh *shardState) {
			defer wg.Done()
			for u := sh.lo; u < sh.hi; u++ {
				e.procs[u] = mk(u)
			}
		}(&e.shards[w])
	}
	wg.Wait()
}

func (e *poolEngine) run() {
	var wg sync.WaitGroup
	for w := range e.shards {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.worker(w)
		}(w)
	}
	wg.Wait()
}

// worker drives one shard until every processor in the network departed.
func (e *poolEngine) worker(w int) {
	sh := &e.shards[w]
	for {
		// Phase A: resume the shard's live processors in id order.
		kind := opNone
		vote := false
		sh.senders = sh.senders[:0]
		prev := e.prevKind
		for u := sh.lo; u < sh.hi; u++ {
			if !e.alive[u] {
				continue
			}
			var in In
			switch prev {
			case opExchange:
				in.Msgs = e.in[u]
			case opAggregate:
				in.Agg = e.aggResult
			}
			req := e.procs[u].Step(in)
			switch req.Op {
			case OpDone:
				e.alive[u] = false
				e.out[u] = nil
				e.in[u] = nil
				sh.live--
			case OpExchange:
				if kind == opNone {
					kind = opExchange
				} else if kind != opExchange {
					panic("dist: processors issued mismatched collective operations in one round")
				}
				e.out[u] = req.Payload
				if req.Payload != nil {
					sh.senders = append(sh.senders, int32(u))
				}
			case OpAggregate:
				if kind == opNone {
					kind = opAggregate
				} else if kind != opAggregate {
					panic("dist: processors issued mismatched collective operations in one round")
				}
				vote = vote || req.Vote
			default:
				panic(fmt.Sprintf("dist: invalid OpKind %d", req.Op))
			}
		}
		sh.kind, sh.vote = kind, vote

		e.bar.await(e.combine)
		if e.finished {
			return
		}
		if e.roundKind != opExchange {
			continue // aggregate rounds have no delivery phase
		}

		// Phase B: shard-parallel delivery into the shard's arena.
		if e.str != nil {
			sh.msgs, sh.entries = e.str.DeliverShard(e.out, e.senders, e.alive, e.in, &sh.arena, sh.lo, sh.hi)
		} else if w == 0 {
			// Unsharded transport: one worker routes the whole round.
			sh.msgs, sh.entries = e.tr.Deliver(e.out, e.in, e.alive)
		} else {
			sh.msgs, sh.entries = 0, 0
		}
		e.bar.await(e.tally)
	}
}

// combine is the barrier-1 leader action: fold the shard summaries into
// the round decision. Runs with every worker parked, so it may touch
// anything.
func (e *poolEngine) combine() {
	kind := opNone
	vote := false
	live := 0
	for w := range e.shards {
		sh := &e.shards[w]
		live += sh.live
		if sh.kind == opNone {
			continue
		}
		if kind == opNone {
			kind = sh.kind
		} else if kind != sh.kind {
			panic("dist: processors issued mismatched collective operations in one round")
		}
		vote = vote || sh.vote
	}
	e.liveTotal = live
	e.roundKind = kind
	e.prevKind = kind
	switch kind {
	case opNone:
		// Nobody requested anything: the network has fully departed.
		e.finished = true
	case opExchange:
		e.stats.Rounds++
		e.senders = e.senders[:0]
		for w := range e.shards {
			e.senders = append(e.senders, e.shards[w].senders...)
		}
	case opAggregate:
		e.stats.Aggregations++
		e.aggResult = vote
		if e.rl != nil {
			e.sample("aggregate", 0, 0)
		}
	}
}

// tally is the barrier-2 leader action: sum the per-shard delivery
// counts of an exchange round.
func (e *poolEngine) tally() {
	var msgs, entries int64
	for w := range e.shards {
		msgs += e.shards[w].msgs
		entries += e.shards[w].entries
	}
	e.stats.Messages += msgs
	e.stats.Entries += entries
	if e.rl != nil {
		e.sample("exchange", msgs, entries)
	}
}

// barrier is the global rendezvous of the two-level scheme: W parties
// (one per shard), the last arrival runs the leader action under the
// barrier lock and releases the rest. Reused every phase; generation
// counting handles spurious wakeups.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	count   int
	gen     uint64
}

func (b *barrier) init(parties int) {
	b.parties = parties
	b.cond = sync.NewCond(&b.mu)
}

// await blocks until all parties have arrived; the last arrival runs
// leader (if non-nil) before anyone proceeds. The mutex-protected
// generation bump publishes the leader's writes to every released party.
func (b *barrier) await(leader func()) {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.parties {
		if leader != nil {
			leader()
		}
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
