package dist

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

// mirrorProc is the resumable form of TestDeterminism's blocking body:
// rounds exchange rounds (silent every third slot), folding received ids
// into a digest, then aggRounds aggregates (voting on round parity),
// then departure. It exercises every Req kind and the In plumbing.
type mirrorProc struct {
	id, rounds, aggRounds int
	r                     int
	digest                int64
	aggDigest             int64
	// payloads is double-buffered per the Message sharing contract:
	// a sent buffer may not be reused until two collectives later.
	payloads [2]idsPayload
	done     bool
}

func (p *mirrorProc) Step(in In) Req {
	if p.r > 0 && p.r <= p.rounds {
		for _, m := range in.Msgs {
			pl := m.Payload.(*idsPayload)
			p.digest += int64(m.From) + int64(pl.Ids[0])*3 + int64(pl.Ids[1])
		}
	}
	if p.r > p.rounds {
		p.aggDigest = p.aggDigest*2 + int64(boolToInt(in.Agg))
	}
	if p.r == p.rounds+p.aggRounds {
		p.done = true
		return Req{Op: OpDone}
	}
	r := p.r
	p.r++
	if r < p.rounds {
		if (p.id+r)%3 == 0 {
			return Req{Op: OpExchange} // silent round
		}
		pl := &p.payloads[r&1]
		pl.Ids = append(pl.Ids[:0], int32(p.id), int32(r))
		return Req{Op: OpExchange, Payload: pl}
	}
	return Req{Op: OpAggregate, Vote: (p.id+r)%5 == 0}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// runMirror executes the mirror protocol on the given engine and returns
// the stats plus per-node digests.
func runMirror(adj [][]int32, rounds, aggRounds, workers int, blocking bool) (Stats, []int64, []int64) {
	n := len(adj)
	procs := make([]*mirrorProc, n)
	mk := func(u int) Proc {
		procs[u] = &mirrorProc{id: u, rounds: rounds, aggRounds: aggRounds}
		return procs[u]
	}
	tr := NewLocalTransport(adj)
	var stats Stats
	if blocking {
		stats = RunProcsBlocking(tr, mk)
	} else {
		stats = RunProcs(tr, workers, mk)
	}
	dig := make([]int64, n)
	agg := make([]int64, n)
	for u, p := range procs {
		if !p.done {
			panic("mirror proc did not finish")
		}
		dig[u], agg[u] = p.digest, p.aggDigest
	}
	return stats, dig, agg
}

// TestPoolMatchesBlocking is the engine-equivalence oracle: the same
// resumable processors produce byte-identical Stats and per-node
// observation digests on the worker pool (across worker counts) and on
// the goroutine-per-processor runtime.
func TestPoolMatchesBlocking(t *testing.T) {
	const rounds, aggRounds = 14, 5
	for _, tc := range []struct {
		name string
		adj  [][]int32
	}{
		{"ring64", ring(64)},
		{"complete24", complete(24)},
		{"path3", [][]int32{{1}, {0, 2}, {1}}},
		{"isolated", [][]int32{{}, {}, {}}},
	} {
		refStats, refDig, refAgg := runMirror(tc.adj, rounds, aggRounds, 0, true)
		if refStats.Rounds != rounds || refStats.Aggregations != aggRounds {
			t.Fatalf("%s: blocking reference ran %d rounds / %d aggs, want %d / %d",
				tc.name, refStats.Rounds, refStats.Aggregations, rounds, aggRounds)
		}
		for _, workers := range []int{1, 2, 3, 7, 0} {
			stats, dig, agg := runMirror(tc.adj, rounds, aggRounds, workers, false)
			if stats != refStats {
				t.Fatalf("%s workers=%d: stats %+v, blocking reference %+v", tc.name, workers, stats, refStats)
			}
			if !reflect.DeepEqual(dig, refDig) || !reflect.DeepEqual(agg, refAgg) {
				t.Fatalf("%s workers=%d: per-node digests diverged from the blocking engine", tc.name, workers)
			}
		}
	}
}

// TestPoolAdapterMatchesBlockingAPI pins the Proc abstraction against the
// original blocking *API: the same protocol written both ways records
// identical Stats.
func TestPoolAdapterMatchesBlockingAPI(t *testing.T) {
	const n, rounds, aggRounds = 9, 12, 4
	adj := ring(n)
	apiStats := Run(adj, func(api *API) {
		id := api.ID()
		for r := 0; r < rounds; r++ {
			if (id+r)%3 == 0 {
				api.Exchange(nil)
			} else {
				api.Broadcast(&idsPayload{Ids: []int32{int32(id), int32(r)}})
			}
		}
		for r := rounds; r < rounds+aggRounds; r++ {
			api.Aggregate((id+r)%5 == 0)
		}
	})
	poolStats, _, _ := runMirror(adj, rounds, aggRounds, 3, false)
	if apiStats != poolStats {
		t.Fatalf("pool stats %+v differ from blocking-API stats %+v", poolStats, apiStats)
	}
}

// departProc broadcasts for departAt rounds and then departs; survivors
// with aggRounds > 0 follow with aggregates, voting true only on their
// designated round. Used to pin the departure semantics on the pool
// engine against the blocking engine's (see TestDepartureVoteRace).
type departProc struct {
	id, departAt, aggRounds int
	r                       int
	heard                   []int
	aggSeen                 []bool
	payload                 idsPayload
}

func (p *departProc) Step(in In) Req {
	if p.r > 0 && p.r <= p.departAt {
		p.heard = append(p.heard, len(in.Msgs))
	}
	if p.r > p.departAt {
		p.aggSeen = append(p.aggSeen, in.Agg)
	}
	if p.r == p.departAt+p.aggRounds {
		return Req{Op: OpDone}
	}
	r := p.r
	p.r++
	if r < p.departAt {
		p.payload.Ids = append(p.payload.Ids[:0], int32(p.id))
		return Req{Op: OpExchange, Payload: &p.payload}
	}
	return Req{Op: OpAggregate, Vote: r-p.departAt == p.id}
}

// TestPoolDepartureSemantics re-runs the staggered-departure scenario of
// TestDepartedProcessorsLeaveTheBarrier on the pool engine: processor u
// survives u+1 exchange rounds; the longest-lived processor follows with
// solo aggregates. Departed processors must stop sending, receiving and
// voting, with the same Stats the blocking engine records.
func TestPoolDepartureSemantics(t *testing.T) {
	const n = 5
	run := func(workers int, blocking bool) (Stats, [][]int, [][]bool) {
		procs := make([]*departProc, n)
		mk := func(u int) Proc {
			agg := 0
			if u == n-1 {
				agg = 2
			}
			procs[u] = &departProc{id: u, departAt: u + 1, aggRounds: agg}
			return procs[u]
		}
		tr := NewLocalTransport(complete(n))
		var stats Stats
		if blocking {
			stats = RunProcsBlocking(tr, mk)
		} else {
			stats = RunProcs(tr, workers, mk)
		}
		heard := make([][]int, n)
		aggs := make([][]bool, n)
		for u, p := range procs {
			heard[u], aggs[u] = p.heard, p.aggSeen
		}
		return stats, heard, aggs
	}
	refStats, refHeard, refAggs := run(0, true)
	for id := 0; id < n; id++ {
		for r, got := range refHeard[id] {
			if want := n - 1 - r; got != want {
				t.Fatalf("blocking: node %d round %d heard %d, want %d", id, r, got, want)
			}
		}
	}
	// The survivor's solo aggregates: round 0 after its departAt has
	// vote (r-departAt == id) false for id=4 at r=5... vote true exactly
	// when r-departAt == id, i.e. never within 2 rounds — both false.
	if !reflect.DeepEqual(refAggs[n-1], []bool{false, false}) {
		t.Fatalf("blocking: solo aggregates = %v, want [false false]", refAggs[n-1])
	}
	var wantMsgs int64
	for r := 0; r < n; r++ {
		live := int64(n - r)
		wantMsgs += live * (live - 1)
	}
	if refStats.Messages != wantMsgs {
		t.Fatalf("blocking: messages = %d, want %d", refStats.Messages, wantMsgs)
	}
	for _, workers := range []int{1, 2, 3, 0} {
		stats, heard, aggs := run(workers, false)
		if stats != refStats {
			t.Fatalf("workers=%d: stats %+v, blocking %+v", workers, stats, refStats)
		}
		if !reflect.DeepEqual(heard, refHeard) || !reflect.DeepEqual(aggs, refAggs) {
			t.Fatalf("workers=%d: observations diverged from the blocking engine", workers)
		}
	}
}

// TestDepartureVoteRace is the targeted audit of the coordinator's
// departure path (blocking engine): a processor returning from its body
// between a peer's deposit and the round's completion must neither lose
// that peer's aggregation vote nor strand waiters. Voters deposit
// Aggregate(true) and block while the remaining processors depart at
// staggered moments — under -race and across 10 trials the aggregate
// must always come back true (the deposited vote survives no matter
// which departure completes the round) and the run must always drain
// (nobody stranded). The same schedule then runs as step machines on the
// pool engine, which must reproduce the blocking Stats exactly — the
// ported-semantics check.
func TestDepartureVoteRace(t *testing.T) {
	const n = 8 // processors 0,1 vote; 2..7 depart without voting
	for trial := 0; trial < 10; trial++ {
		var departed atomic.Int32
		results := make([]bool, 2)
		stats := Run(complete(n), func(api *API) {
			id := api.ID()
			stagger(id, trial)
			if id < 2 {
				// Deposit a true vote and block until some departure or
				// deposit completes the round.
				results[id] = api.Aggregate(true)
				// Second round: every voter still live votes false; the
				// OR must now be false (departed votes are false, and
				// no true vote may leak over from round one).
				if api.Aggregate(false) {
					panic("stale vote leaked into the second aggregation")
				}
				return
			}
			// Departers: leave at staggered times, some instantly, some
			// after yielding — exercising "return between a peer's
			// deposit and finishRound".
			for i := 0; i < (id*3+trial)%7; i++ {
				runtime.Gosched()
			}
			departed.Add(1)
		})
		for id, got := range results {
			if !got {
				t.Fatalf("trial %d: voter %d lost the true vote (aggregate returned false)", trial, id)
			}
		}
		if departed.Load() != n-2 {
			t.Fatalf("trial %d: only %d departers ran", trial, departed.Load())
		}
		want := Stats{Aggregations: 2}
		if stats != want {
			t.Fatalf("trial %d: stats = %+v, want %+v", trial, stats, want)
		}
	}

	// Port check: the same (deterministic) schedule as resumable
	// machines on the pool engine — departers return OpDone on their
	// first step, voters run the two aggregates — must produce the same
	// Stats and votes.
	for _, workers := range []int{1, 3, 0} {
		votes := make([]bool, 2)
		mk := func(u int) Proc {
			return &voteThenDepartProc{id: u, votes: votes}
		}
		stats := RunProcs(NewLocalTransport(complete(n)), workers, mk)
		want := Stats{Aggregations: 2}
		if stats != want {
			t.Fatalf("pool workers=%d: stats = %+v, want %+v", workers, stats, want)
		}
		if !votes[0] || !votes[1] {
			t.Fatalf("pool workers=%d: a voter lost the true vote: %v", workers, votes)
		}
	}
}

// voteThenDepartProc is the pool-engine half of TestDepartureVoteRace.
type voteThenDepartProc struct {
	id    int
	r     int
	votes []bool
}

func (p *voteThenDepartProc) Step(in In) Req {
	if p.id >= 2 {
		return Req{Op: OpDone}
	}
	switch p.r {
	case 0:
		p.r++
		return Req{Op: OpAggregate, Vote: true}
	case 1:
		p.votes[p.id] = in.Agg
		p.r++
		return Req{Op: OpAggregate, Vote: false}
	default:
		if in.Agg {
			panic("stale vote leaked into the second aggregation")
		}
		return Req{Op: OpDone}
	}
}

// TestPoolGoroutineBound: the pool engine must run a large network on
// workers + O(1) goroutines — the property that makes 100k-processor
// networks feasible (the blocking engine would need one goroutine per
// processor).
func TestPoolGoroutineBound(t *testing.T) {
	const n, workers = 20000, 4
	base := runtime.NumGoroutine()
	var peak atomic.Int64
	mk := func(u int) Proc {
		return &goroutineProbeProc{peak: &peak}
	}
	RunProcs(NewLocalTransport(ring(n)), workers, mk)
	limit := int64(base + workers + 4)
	if got := peak.Load(); got > limit {
		t.Fatalf("peak goroutines during pooled run = %d, want ≤ %d (base %d + %d workers + O(1))",
			got, limit, base, workers)
	}
}

type goroutineProbeProc struct {
	r    int
	peak *atomic.Int64
	pl   idsPayload
}

func (p *goroutineProbeProc) Step(in In) Req {
	// CAS max: a plain load-then-store would let a smaller concurrent
	// sample overwrite a bound violation.
	g := int64(runtime.NumGoroutine())
	for {
		cur := p.peak.Load()
		if g <= cur || p.peak.CompareAndSwap(cur, g) {
			break
		}
	}
	if p.r == 3 {
		return Req{Op: OpDone}
	}
	p.r++
	p.pl.Ids = append(p.pl.Ids[:0], int32(p.r))
	return Req{Op: OpExchange, Payload: &p.pl}
}

// TestDeliverShardMatchesDeliver: for random sender densities (forcing
// both the push and the pull strategy) and any contiguous shard
// partition, DeliverShard must reassemble exactly the inboxes Deliver
// builds.
func TestDeliverShardMatchesDeliver(t *testing.T) {
	adjs := map[string][][]int32{"ring": ring(17), "complete": complete(9)}
	for name, adj := range adjs {
		tr := NewLocalTransport(adj)
		n := len(adj)
		payloads := make([]*idsPayload, n)
		for u := range payloads {
			payloads[u] = &idsPayload{Ids: []int32{int32(u), int32(u * 2)}}
		}
		for _, density := range []int{1, 3, n} { // 1/density of nodes speak
			out := make([]any, n)
			var senders []int32
			live := make([]bool, n)
			for u := 0; u < n; u++ {
				live[u] = u%5 != 4 // a few departed receivers too
				if u%density == 0 && live[u] {
					out[u] = payloads[u]
					senders = append(senders, int32(u))
				}
			}
			wantIn := make([][]Message, n)
			wantMsgs, wantEntries := tr.Deliver(out, wantIn, live)

			for _, shards := range [][]int{{n}, {1, n - 1}, {n / 2, n - n/2}, {3, 3, n - 6}} {
				gotIn := make([][]Message, n)
				var arena InboxArena
				var msgs, entries int64
				lo := 0
				for _, size := range shards {
					m, e := tr.DeliverShard(out, senders, live, gotIn, &arena, lo, lo+size)
					// A fresh arena per shard mimics per-worker arenas;
					// reusing one across shards of a round would alias.
					arena = InboxArena{}
					msgs, entries = msgs+m, entries+e
					lo += size
				}
				if msgs != wantMsgs || entries != wantEntries {
					t.Fatalf("%s density=%d shards=%v: counts (%d,%d), want (%d,%d)",
						name, density, shards, msgs, entries, wantMsgs, wantEntries)
				}
				for u := 0; u < n; u++ {
					if !messagesEqual(gotIn[u], wantIn[u]) {
						t.Fatalf("%s density=%d shards=%v: inbox %d = %v, want %v",
							name, density, shards, u, gotIn[u], wantIn[u])
					}
				}
			}
		}
	}
}

func messagesEqual(a, b []Message) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].From != b[i].From || a[i].Payload != b[i].Payload {
			return false
		}
	}
	return true
}
