package dist

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// idsPayload is a test payload carrying a few ids; it implements Sizer.
type idsPayload struct {
	Ids []int32
}

func (p *idsPayload) PayloadEntries() int { return len(p.Ids) }

// ring returns the cycle graph 0-1-...-(n-1)-0.
func ring(n int) [][]int32 {
	adj := make([][]int32, n)
	for u := 0; u < n; u++ {
		adj[u] = []int32{int32((u + n - 1) % n), int32((u + 1) % n)}
	}
	return adj
}

// complete returns the complete graph on n processors.
func complete(n int) [][]int32 {
	adj := make([][]int32, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if v != u {
				adj[u] = append(adj[u], int32(v))
			}
		}
	}
	return adj
}

// stagger perturbs goroutine scheduling so barrier bugs that depend on
// arrival order get a chance to fire: a deterministic per-(node, round)
// jitter plus yields.
func stagger(id, round int) {
	for i := 0; i < (id*7+round*3)%5; i++ {
		runtime.Gosched()
	}
	if (id+round)%4 == 0 {
		time.Sleep(time.Duration((id*13+round)%3) * time.Millisecond)
	}
}

// TestDeterminism runs the same protocol 10 times under staggered
// scheduling and requires byte-identical Stats and per-node data: the
// property the core protocols rely on for centralized/distributed
// selection equality.
func TestDeterminism(t *testing.T) {
	const n, rounds = 9, 12
	run := func() (Stats, []int64) {
		sums := make([]int64, n)
		stats := Run(ring(n), func(api *API) {
			id := api.ID()
			var sum int64
			for r := 0; r < rounds; r++ {
				stagger(id, r)
				var in []Message
				if (id+r)%3 == 0 {
					in = api.Exchange(nil) // silent round
				} else {
					in = api.Broadcast(&idsPayload{Ids: []int32{int32(id), int32(r)}})
				}
				for _, m := range in {
					pl := m.Payload.(*idsPayload)
					sum += int64(m.From) + int64(pl.Ids[0])*3 + int64(pl.Ids[1])
				}
			}
			sums[id] = sum
		})
		return stats, sums
	}
	first, firstSums := run()
	if first.Rounds != rounds {
		t.Fatalf("rounds = %d, want %d", first.Rounds, rounds)
	}
	if first.Messages == 0 || first.Entries == 0 {
		t.Fatalf("no traffic recorded: %+v", first)
	}
	for trial := 1; trial < 10; trial++ {
		stats, sums := run()
		if stats != first {
			t.Fatalf("trial %d: stats diverged: %+v vs %+v", trial, stats, first)
		}
		if !reflect.DeepEqual(sums, firstSums) {
			t.Fatalf("trial %d: per-node data diverged: %v vs %v", trial, sums, firstSums)
		}
	}
}

// TestBarrierLockstep checks the BSP contract under staggered scheduling:
// every message received in round r was sent in round r (no processor
// runs ahead), and inboxes arrive in ascending sender order.
func TestBarrierLockstep(t *testing.T) {
	const n, rounds = 8, 20
	errs := make([]error, n)
	Run(complete(n), func(api *API) {
		id := api.ID()
		for r := 0; r < rounds; r++ {
			stagger(id, r)
			in := api.Broadcast(&idsPayload{Ids: []int32{int32(r)}})
			if len(in) != n-1 {
				errs[id] = fmt.Errorf("round %d: got %d messages, want %d", r, len(in), n-1)
				return
			}
			prev := int32(-1)
			for _, m := range in {
				if m.From <= prev {
					errs[id] = fmt.Errorf("round %d: senders out of order: %d after %d", r, m.From, prev)
					return
				}
				prev = m.From
				if got := m.Payload.(*idsPayload).Ids[0]; got != int32(r) {
					errs[id] = fmt.Errorf("round %d: received round-%d payload from %d — barrier broken", r, got, m.From)
					return
				}
			}
		}
	})
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
	}
}

// TestAggregateSemantics: Aggregate is a global OR — true iff any live
// processor voted true — and every processor observes the same value.
func TestAggregateSemantics(t *testing.T) {
	const n = 6
	results := make([][]bool, n)
	stats := Run(complete(n), func(api *API) {
		id := api.ID()
		// Round r: only processor r votes true; the last round is
		// unanimous false and must short-circuit every loop together.
		for r := 0; r <= n; r++ {
			stagger(id, r)
			got := api.Aggregate(id == r) // r == n: nobody votes true
			results[id] = append(results[id], got)
		}
	})
	if stats.Aggregations != n+1 {
		t.Fatalf("aggregations = %d, want %d", stats.Aggregations, n+1)
	}
	if stats.Rounds != 0 || stats.Messages != 0 {
		t.Fatalf("aggregations must not count as rounds/messages: %+v", stats)
	}
	for id := 0; id < n; id++ {
		for r := 0; r <= n; r++ {
			want := r < n // one voter in rounds 0..n-1, none in round n
			if results[id][r] != want {
				t.Fatalf("node %d round %d: aggregate = %v, want %v", id, r, results[id][r], want)
			}
		}
	}
}

// TestDepartedProcessorsLeaveTheBarrier: processors that return early
// stop sending and voting, and the survivors keep advancing — the
// behavior the fixed-rounds protocols rely on when one node aborts.
func TestDepartedProcessorsLeaveTheBarrier(t *testing.T) {
	const n = 5
	counts := make([][]int, n)
	soloFalse, soloTrue := true, false
	stats := Run(complete(n), func(api *API) {
		id := api.ID()
		// Processor u survives u+1 exchange rounds, then departs; the
		// longest-lived processor follows with aggregations.
		for r := 0; r <= id; r++ {
			stagger(id, r)
			in := api.Broadcast(&idsPayload{Ids: []int32{int32(id)}})
			counts[id] = append(counts[id], len(in))
		}
		if id == n-1 {
			// Alone now: the OR is exactly this processor's own vote.
			soloFalse = api.Aggregate(false)
			soloTrue = api.Aggregate(true)
		}
	})
	for id := 0; id < n; id++ {
		for r, got := range counts[id] {
			// In round r the processors still alive are r..n-1, so a
			// live processor hears from the other n-1-r of them.
			want := n - 1 - r
			if got != want {
				t.Fatalf("node %d round %d: heard %d neighbors, want %d", id, r, got, want)
			}
		}
	}
	if soloFalse {
		t.Fatal("solo Aggregate(false) returned true — departed processors voted")
	}
	if !soloTrue {
		t.Fatal("solo Aggregate(true) returned false")
	}
	// Departed processors must not inflate the accounting: in round r the
	// n-r live processors each broadcast to the other n-r-1.
	var wantMsgs int64
	for r := 0; r < n; r++ {
		live := int64(n - r)
		wantMsgs += live * (live - 1)
	}
	if stats.Messages != wantMsgs {
		t.Fatalf("messages = %d, want %d (deliveries to departed processors must not count)", stats.Messages, wantMsgs)
	}
}

// TestAccounting pins the Stats formulas on a known topology: a 3-path
// where everyone broadcasts one 2-entry payload per round.
func TestAccounting(t *testing.T) {
	adj := [][]int32{{1}, {0, 2}, {1}} // path 0-1-2
	const rounds = 4
	stats := Run(adj, func(api *API) {
		p := &idsPayload{Ids: []int32{1, 2}}
		for r := 0; r < rounds; r++ {
			api.Broadcast(p)
		}
	})
	if stats.Rounds != rounds {
		t.Fatalf("rounds = %d, want %d", stats.Rounds, rounds)
	}
	// 2 graph edges → 4 deliveries per round.
	if want := int64(4 * rounds); stats.Messages != want {
		t.Fatalf("messages = %d, want %d", stats.Messages, want)
	}
	if want := int64(2 * 4 * rounds); stats.Entries != want {
		t.Fatalf("entries = %d, want %d", stats.Entries, want)
	}
	if stats.Aggregations != 0 {
		t.Fatalf("aggregations = %d, want 0", stats.Aggregations)
	}
}

// TestEdgeTopologies: zero processors is a no-op; an isolated processor
// still pays rounds but hears nothing.
func TestEdgeTopologies(t *testing.T) {
	if stats := Run(nil, func(api *API) { t.Error("body ran with no processors") }); stats != (Stats{}) {
		t.Fatalf("empty run recorded traffic: %+v", stats)
	}
	stats := Run([][]int32{{}}, func(api *API) {
		if in := api.Broadcast(&idsPayload{Ids: []int32{7}}); len(in) != 0 {
			t.Errorf("isolated processor received %d messages", len(in))
		}
		if api.Aggregate(true) != true || api.Aggregate(false) != false {
			t.Error("solo aggregate is not the identity")
		}
	})
	if stats.Rounds != 1 || stats.Messages != 0 || stats.Aggregations != 2 {
		t.Fatalf("unexpected stats for isolated processor: %+v", stats)
	}
}

// TestUnsortedAdjacencyIsNormalized: the transport must deliver in
// ascending sender order even when the caller's adjacency lists are not
// sorted (Problem.CommGraph emits access-order lists).
func TestUnsortedAdjacencyIsNormalized(t *testing.T) {
	adj := [][]int32{{2, 1}, {0, 2}, {1, 0}}
	Run(adj, func(api *API) {
		in := api.Broadcast(&idsPayload{Ids: []int32{int32(api.ID())}})
		prev := int32(-1)
		for _, m := range in {
			if m.From <= prev {
				t.Errorf("node %d: delivery out of order: %d after %d", api.ID(), m.From, prev)
			}
			prev = m.From
		}
	})
}
