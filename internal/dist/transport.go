package dist

import "slices"

// Transport routes one synchronous round of batched outboxes to inboxes.
// Implementations must be deterministic: for a fixed topology and outbox
// vector, every inbox must come out identical across calls — the runtime
// relies on this for reproducible Stats and protocol executions.
//
// The in-process LocalTransport is the first implementation; the
// interface is the seam for future ones (sharded in-process delivery,
// socket-backed multi-machine execution) without touching the protocols.
type Transport interface {
	// NumNodes returns the number of processors.
	NumNodes() int
	// Deliver routes one round: out[v] is processor v's payload (nil =
	// silent). For every live processor u it must rebuild in[u] — reusing
	// the backing array via in[u][:0] — appending Message{From: v,
	// Payload: out[v]} for each neighbor v with a non-nil payload, in
	// ascending sender order. Departed processors (live[u] false) receive
	// nothing and contribute nothing to the counts; their inboxes must be
	// emptied so they stop retaining payloads. It returns the number of
	// messages delivered and the total payload entries (per the Sizer
	// protocol) across deliveries.
	Deliver(out []any, in [][]Message, live []bool) (msgs, entries int64)
}

// ShardTransport is the optional Transport extension the worker-pool
// engine (RunProcs) uses to run delivery shard-parallel: DeliverShard
// rebuilds only the inboxes of receivers in [lo, hi), writing them into
// the caller's arena, so W workers can route one round concurrently with
// no shared mutable state. Implementations must produce exactly the
// inboxes Deliver would (same messages, same ascending sender order) —
// the engines' byte-identical-Stats equivalence rests on it.
type ShardTransport interface {
	Transport
	// DeliverShard routes one round for receivers u in [lo, hi) only:
	// in[u] is rebuilt inside arena for live receivers and nilled for
	// departed ones; entries of in outside the range are untouched.
	// senders lists the processors with non-nil outboxes in ascending id
	// order (a routing hint — sparse rounds are delivered sender-side in
	// O(Σ deg(senders)) instead of scanning the whole shard's adjacency).
	// Returns the messages and payload entries delivered to the shard.
	DeliverShard(out []any, senders []int32, live []bool, in [][]Message, arena *InboxArena, lo, hi int) (msgs, entries int64)
}

// InboxArena is one shard's reusable inbox storage: every inbox built by
// a DeliverShard call is a window into buf, so a round allocates nothing
// once the arena has grown to the shard's peak round size.
type InboxArena struct {
	buf  []Message
	ends []int32 // per-receiver end offsets (pull) / fill cursors (push)
	cnt  []int32 // per-receiver message counts (push pass 1)
}

// grow readies the per-receiver scratch for a shard of the given size.
func (a *InboxArena) grow(receivers int) {
	if cap(a.ends) < receivers {
		a.ends = make([]int32, receivers)
		a.cnt = make([]int32, receivers)
	}
	a.ends = a.ends[:receivers]
	a.cnt = a.cnt[:receivers]
}

// LocalTransport delivers rounds in-process over a fixed undirected
// communication graph: processor u receives from every neighbor in
// adj[u]. Delivery is one pass over the adjacency lists per round —
// batched, allocation-free after warm-up, no channels.
type LocalTransport struct {
	adj [][]int32
}

// NewLocalTransport builds the in-process transport for a communication
// graph given as adjacency lists over processor ids. The lists are copied
// and sorted so delivery order (and thus the protocols' executions) is
// independent of how the caller ordered neighbors.
func NewLocalTransport(adj [][]int32) *LocalTransport {
	sorted := make([][]int32, len(adj))
	for u, nbrs := range adj {
		s := make([]int32, len(nbrs))
		copy(s, nbrs)
		slices.Sort(s)
		sorted[u] = s
	}
	return &LocalTransport{adj: sorted}
}

// NumNodes returns the number of processors.
func (t *LocalTransport) NumNodes() int { return len(t.adj) }

// Deliver implements Transport.
func (t *LocalTransport) Deliver(out []any, in [][]Message, live []bool) (int64, int64) {
	var msgs, entries int64
	for u := range t.adj {
		if !live[u] {
			in[u] = nil
			continue
		}
		box := in[u][:0]
		for _, v := range t.adj[u] {
			if p := out[v]; p != nil {
				box = append(box, Message{From: v, Payload: p})
				msgs++
				if s, ok := p.(Sizer); ok {
					entries += int64(s.PayloadEntries())
				}
			}
		}
		in[u] = box
	}
	return msgs, entries
}

// DeliverShard implements ShardTransport. It picks between two
// strategies per call, both producing identical inboxes:
//
//   - receiver-side ("pull"): scan every live shard receiver's adjacency
//     list against the outbox vector — O(Σ deg(shard)), right for dense
//     rounds where most processors spoke;
//   - sender-side ("push"): walk only the senders' adjacency lists,
//     counting then placing — O(Σ deg(senders)), the win on sparse
//     rounds (a lone phase-2 announcer among 10^5 silent processors).
//
// The strategy choice is shard-local and invisible in the output, so
// different shards (or runs) choosing differently cannot perturb the
// protocol execution.
func (t *LocalTransport) DeliverShard(out []any, senders []int32, live []bool, in [][]Message, arena *InboxArena, lo, hi int) (msgs, entries int64) {
	shardDeg := 0
	for u := lo; u < hi; u++ {
		if live[u] {
			shardDeg += len(t.adj[u])
		}
	}
	senderDeg := 0
	for _, v := range senders {
		senderDeg += len(t.adj[v])
	}
	arena.grow(hi - lo)
	if 2*senderDeg < shardDeg {
		return t.deliverPush(out, senders, live, in, arena, lo, hi)
	}
	return t.deliverPull(out, live, in, arena, lo, hi)
}

// deliverPull is the receiver-side strategy: the Deliver loop restricted
// to [lo, hi), appending into the arena. Inbox views are attached after
// the pass so buffer growth cannot invalidate them.
func (t *LocalTransport) deliverPull(out []any, live []bool, in [][]Message, arena *InboxArena, lo, hi int) (msgs, entries int64) {
	buf := arena.buf[:0]
	for u := lo; u < hi; u++ {
		if live[u] {
			for _, v := range t.adj[u] {
				if p := out[v]; p != nil {
					buf = append(buf, Message{From: v, Payload: p})
					msgs++
					if s, ok := p.(Sizer); ok {
						entries += int64(s.PayloadEntries())
					}
				}
			}
		}
		arena.ends[u-lo] = int32(len(buf))
	}
	arena.buf = buf
	start := int32(0)
	for u := lo; u < hi; u++ {
		end := arena.ends[u-lo]
		if live[u] {
			in[u] = buf[start:end:end]
		} else {
			in[u] = nil
		}
		start = end
	}
	return msgs, entries
}

// deliverPush is the sender-side strategy: pass 1 counts each shard
// receiver's messages, pass 2 places them at prefix-summed offsets.
// Senders are walked in ascending id order both times, so every inbox
// comes out in ascending sender order — the same order pull produces.
func (t *LocalTransport) deliverPush(out []any, senders []int32, live []bool, in [][]Message, arena *InboxArena, lo, hi int) (msgs, entries int64) {
	cnt := arena.cnt
	for i := range cnt {
		cnt[i] = 0
	}
	for _, v := range senders {
		for _, u := range t.adj[v] {
			if int(u) >= lo && int(u) < hi && live[u] {
				cnt[u-int32(lo)]++
			}
		}
	}
	total := int32(0)
	cursor := arena.ends
	for i, c := range cnt {
		cursor[i] = total
		total += c
	}
	if cap(arena.buf) < int(total) {
		arena.buf = make([]Message, total, total+total/4)
	}
	buf := arena.buf[:total]
	arena.buf = buf
	for _, v := range senders {
		p := out[v]
		pe := int64(0)
		if s, ok := p.(Sizer); ok {
			pe = int64(s.PayloadEntries())
		}
		for _, u := range t.adj[v] {
			if int(u) >= lo && int(u) < hi && live[u] {
				buf[cursor[u-int32(lo)]] = Message{From: v, Payload: p}
				cursor[u-int32(lo)]++
				entries += pe
			}
		}
	}
	msgs = int64(total)
	start := int32(0)
	for u := lo; u < hi; u++ {
		end := cursor[u-lo] // == start + cnt[u-lo] after the fill pass
		if live[u] {
			in[u] = buf[start:end:end]
		} else {
			in[u] = nil
		}
		start = end
	}
	return msgs, entries
}
