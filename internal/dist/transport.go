package dist

import "slices"

// Transport routes one synchronous round of batched outboxes to inboxes.
// Implementations must be deterministic: for a fixed topology and outbox
// vector, every inbox must come out identical across calls — the runtime
// relies on this for reproducible Stats and protocol executions.
//
// The in-process LocalTransport is the first implementation; the
// interface is the seam for future ones (sharded in-process delivery,
// socket-backed multi-machine execution) without touching the protocols.
type Transport interface {
	// NumNodes returns the number of processors.
	NumNodes() int
	// Deliver routes one round: out[v] is processor v's payload (nil =
	// silent). For every live processor u it must rebuild in[u] — reusing
	// the backing array via in[u][:0] — appending Message{From: v,
	// Payload: out[v]} for each neighbor v with a non-nil payload, in
	// ascending sender order. Departed processors (live[u] false) receive
	// nothing and contribute nothing to the counts; their inboxes must be
	// emptied so they stop retaining payloads. It returns the number of
	// messages delivered and the total payload entries (per the Sizer
	// protocol) across deliveries.
	Deliver(out []any, in [][]Message, live []bool) (msgs, entries int64)
}

// LocalTransport delivers rounds in-process over a fixed undirected
// communication graph: processor u receives from every neighbor in
// adj[u]. Delivery is one pass over the adjacency lists per round —
// batched, allocation-free after warm-up, no channels.
type LocalTransport struct {
	adj [][]int32
}

// NewLocalTransport builds the in-process transport for a communication
// graph given as adjacency lists over processor ids. The lists are copied
// and sorted so delivery order (and thus the protocols' executions) is
// independent of how the caller ordered neighbors.
func NewLocalTransport(adj [][]int32) *LocalTransport {
	sorted := make([][]int32, len(adj))
	for u, nbrs := range adj {
		s := make([]int32, len(nbrs))
		copy(s, nbrs)
		slices.Sort(s)
		sorted[u] = s
	}
	return &LocalTransport{adj: sorted}
}

// NumNodes returns the number of processors.
func (t *LocalTransport) NumNodes() int { return len(t.adj) }

// Deliver implements Transport.
func (t *LocalTransport) Deliver(out []any, in [][]Message, live []bool) (int64, int64) {
	var msgs, entries int64
	for u := range t.adj {
		if !live[u] {
			in[u] = nil
			continue
		}
		box := in[u][:0]
		for _, v := range t.adj[u] {
			if p := out[v]; p != nil {
				box = append(box, Message{From: v, Payload: p})
				msgs++
				if s, ok := p.(Sizer); ok {
					entries += int64(s.PayloadEntries())
				}
			}
		}
		in[u] = box
	}
	return msgs, entries
}
