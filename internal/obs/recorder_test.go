package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRecorderClassesAndBounds: the three completed classes retain what
// they should and never grow past their configured capacity.
func TestRecorderClassesAndBounds(t *testing.T) {
	r := NewRecorder(RecorderConfig{PerClass: 4, Events: 8, Shards: 1, SlowNs: int64(10 * time.Millisecond)})

	for i := 0; i < 10; i++ {
		rq := r.Begin(fmt.Sprintf("fast-%d", i), "solve")
		rq.SetOutcome("solved")
		rq.Finish(int64(time.Millisecond), "")
	}
	slow := r.Begin("slow-1", "solve")
	slow.Finish(int64(20 * time.Millisecond), "")
	bad := r.Begin("bad-1", "solve")
	bad.Finish(int64(time.Millisecond), "boom")

	recent := r.Completed(ClassRecent, 0)
	if len(recent) != 4 {
		t.Fatalf("recent retained %d records, capacity is 4", len(recent))
	}
	for i := 1; i < len(recent); i++ {
		if recent[i-1].Seq <= recent[i].Seq {
			t.Fatalf("recent not newest-first: seq %d before %d", recent[i-1].Seq, recent[i].Seq)
		}
	}
	if got := r.Completed(ClassSlow, 0); len(got) != 1 || got[0].ID != "slow-1" {
		t.Fatalf("slow class = %+v, want exactly slow-1", got)
	}
	if got := r.Completed(ClassError, 0); len(got) != 1 || got[0].ID != "bad-1" || got[0].Error != "boom" {
		t.Fatalf("error class = %+v, want exactly bad-1", got)
	}
	if n := r.ActiveCount(); n != 0 {
		t.Fatalf("%d requests still active after Finish", n)
	}

	// Events are bounded the same way.
	for i := 0; i < 40; i++ {
		r.Event("evict_result", "", fmt.Sprintf("key-%d", i))
	}
	evs := r.Events(0)
	if len(evs) != 8 {
		t.Fatalf("event log retained %d entries, capacity is 8", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i-1].Seq <= evs[i].Seq {
			t.Fatalf("events not newest-first: seq %d before %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if len(r.Events(3)) != 3 {
		t.Fatalf("Events(max) did not truncate")
	}
}

// TestRecorderSampleZeroAllocatesNoTrace: the byte-identical mode — no
// request carries a span tree.
func TestRecorderSampleZeroAllocatesNoTrace(t *testing.T) {
	r := NewRecorder(RecorderConfig{Shards: 1})
	if r.Sampling() {
		t.Fatal("Sample=0 recorder reports sampling on")
	}
	rq := r.Begin("a", "solve")
	if rq.Trace() != nil {
		t.Fatal("Sample=0 request carries a Trace")
	}
	rq.Finish(int64(time.Hour), "") // even slow-class records get no trace: none exists
	rec, ok := r.Lookup("a")
	if !ok {
		t.Fatal("record not retained")
	}
	if rec.Trace != nil {
		t.Fatal("Sample=0 record retained a span timeline")
	}
}

// TestRecorderSlowAlwaysKeepsTimeline: with any sampling enabled, slow
// and errored requests retain their span tree even when the dice said
// no for the recent ring.
func TestRecorderSlowAlwaysKeepsTimeline(t *testing.T) {
	// Sample small enough that the recent-ring dice will practically
	// never retain, but > 0 so traces are recorded at all.
	r := NewRecorder(RecorderConfig{Shards: 1, Sample: 1e-12, SlowNs: int64(10 * time.Millisecond)})

	slow := r.Begin("slow-req", "solve")
	tr := slow.Trace()
	if tr == nil {
		t.Fatal("sampling enabled but request has no Trace")
	}
	id := tr.Begin("solve")
	tr.End(id)
	slow.Finish(int64(time.Second), "")

	rec, ok := r.Lookup("slow-req")
	if !ok || rec.Trace == nil {
		t.Fatalf("slow request lost its timeline: ok=%v rec=%+v", ok, rec)
	}
	if len(rec.Trace.Spans) != 1 || rec.Trace.Spans[0].Name != "solve" {
		t.Fatalf("timeline spans = %+v", rec.Trace.Spans)
	}

	bad := r.Begin("bad-req", "solve")
	bad.Finish(int64(time.Millisecond), "boom")
	rec, ok = r.Lookup("bad-req")
	if !ok || rec.Trace == nil {
		t.Fatal("errored request lost its timeline")
	}

	// Listings strip timelines; only Lookup serves them.
	for _, c := range []string{ClassRecent, ClassSlow, ClassError} {
		for _, rec := range r.Completed(c, 0) {
			if rec.Trace != nil {
				t.Fatalf("class %s listing leaked a span timeline", c)
			}
		}
	}
}

// TestRecorderSampleOneRetainsEverywhere: full tracing retains the
// timeline even for ordinary fast requests.
func TestRecorderSampleOneRetainsEverywhere(t *testing.T) {
	r := NewRecorder(RecorderConfig{Shards: 1, Sample: 1})
	rq := r.Begin("x", "solve")
	rq.SetAlgo("tree-unit")
	rq.SetOutcome("solved")
	rq.Finish(int64(time.Millisecond), "")
	rec, ok := r.Lookup("x")
	if !ok || rec.Trace == nil {
		t.Fatal("fully sampled fast request lost its timeline")
	}
	if rec.Algo != "tree-unit" || rec.Outcome != "solved" {
		t.Fatalf("record fields = %+v", rec)
	}
}

// TestRecorderActiveAndLink: in-flight requests list with their live
// phase; follower records carry their leader's id.
func TestRecorderActiveAndLink(t *testing.T) {
	r := NewRecorder(RecorderConfig{Shards: 2})
	leader := r.Begin("", "solve") // minted id
	leader.SetPhase(PhaseSolve)
	follower := r.Begin("", "solve")
	follower.SetPhase(PhaseFlightWait)
	follower.Link(leader.ID())

	act := r.Active()
	if len(act) != 2 {
		t.Fatalf("%d active requests, want 2", len(act))
	}
	phases := map[string]string{}
	for _, a := range act {
		phases[a.ID] = a.Phase
	}
	if phases[leader.ID()] != "solve" || phases[follower.ID()] != "flight_wait" {
		t.Fatalf("active phases = %v", phases)
	}
	if leader.ID() == follower.ID() || leader.ID() == "" {
		t.Fatalf("minted ids not unique: %q vs %q", leader.ID(), follower.ID())
	}

	fid := follower.ID()
	follower.Finish(1, "")
	leader.Finish(1, "")
	rec, ok := r.Lookup(fid)
	if !ok || rec.LinkedTo == "" {
		t.Fatalf("follower record lost its leader link: %+v", rec)
	}
}

// TestRecorderConcurrent hammers every mutating surface from many
// goroutines (run under -race in CI) and then asserts the merged views
// are sequence-ordered and memory stayed bounded.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(RecorderConfig{PerClass: 16, Events: 32, Shards: 4, SlowNs: 1, Sample: 0.5})
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rq := r.Begin(fmt.Sprintf("w%d-%d", w, i), "solve")
				rq.SetPhase(PhaseSolve)
				rq.SetAlgo("tree-unit")
				if i%3 == 0 {
					rq.Finish(2, "boom") // error class (and slow: durNs > 1)
				} else {
					rq.Finish(2, "")
				}
				if i%5 == 0 {
					r.Event("coalesce", rq.ID(), "leader=x")
				}
				_ = r.Active()
			}
		}(w)
	}
	wg.Wait()

	if n := r.ActiveCount(); n != 0 {
		t.Fatalf("%d requests leaked in the active table", n)
	}
	for _, c := range []string{ClassRecent, ClassSlow, ClassError} {
		recs := r.Completed(c, 0)
		if len(recs) == 0 || len(recs) > 16 {
			t.Fatalf("class %s retained %d records, capacity 16", c, len(recs))
		}
		for i := 1; i < len(recs); i++ {
			if recs[i-1].Seq <= recs[i].Seq {
				t.Fatalf("class %s merged view out of order", c)
			}
		}
	}
	evs := r.Events(0)
	if len(evs) == 0 || len(evs) > 32 {
		t.Fatalf("event log retained %d entries, capacity 32", len(evs))
	}
}

// TestRecorderNilSafety: the entire API is a no-op on a nil recorder
// and a nil request handle — serving code instruments unconditionally.
func TestRecorderNilSafety(t *testing.T) {
	var r *Recorder
	rq := r.Begin("id", "solve")
	if rq != nil {
		t.Fatal("nil recorder returned a live handle")
	}
	rq.SetPhase(PhaseSolve)
	rq.SetAlgo("a")
	rq.SetOutcome("o")
	rq.Link("x")
	if rq.ID() != "" || rq.Trace() != nil {
		t.Fatal("nil handle not inert")
	}
	rq.Finish(1, "")
	r.Event("t", "", "")
	if r.Active() != nil || r.ActiveCount() != 0 || r.Events(0) != nil {
		t.Fatal("nil recorder reads not empty")
	}
	if _, ok := r.Lookup("id"); ok {
		t.Fatal("nil recorder found a record")
	}
	if r.Completed(ClassRecent, 0) != nil {
		t.Fatal("nil recorder listed records")
	}
}

// TestRecorderOnRecordSink: the request-log hook observes every
// completion exactly once, with the retention-resolved trace.
func TestRecorderOnRecordSink(t *testing.T) {
	r := NewRecorder(RecorderConfig{Shards: 1})
	var got []ReqRecord
	r.OnRecord = func(rec *ReqRecord) { got = append(got, *rec) }
	for i := 0; i < 3; i++ {
		rq := r.Begin(fmt.Sprintf("s-%d", i), "solve")
		rq.Finish(1, "")
	}
	if len(got) != 3 {
		t.Fatalf("sink observed %d records, want 3", len(got))
	}
	for i, rec := range got {
		if rec.ID != fmt.Sprintf("s-%d", i) {
			t.Fatalf("sink order: record %d is %q", i, rec.ID)
		}
	}
}
