package obs

import (
	"strings"
	"testing"
)

func TestRegistryPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	req := r.Counter("sched_requests_total", "total requests")
	byAlgo := r.Counter("sched_requests_by_algo_total", "requests per algorithm",
		Label{Name: "algo", Value: "tree-unit"})
	weird := r.Counter("sched_weird_total", "label escaping",
		Label{Name: "path", Value: "a\\b\"c\nd"})
	inflight := r.Gauge("sched_in_flight", "in-flight requests")
	r.GaugeFunc("sched_uptime_seconds", "uptime", func() float64 { return 12.5 })
	lat := r.Histogram("sched_solve_latency_ns", "solve latency")

	req.Add(3)
	byAlgo.Inc()
	weird.Inc()
	inflight.Set(2)
	for i := int64(1); i <= 100; i++ {
		lat.Observe(i * 1000)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	get := func(name string) *ExpoFamily {
		f := fams[name]
		if f == nil {
			t.Fatalf("family %s missing:\n%s", name, text)
		}
		if f.Help == "" || f.Type == "" {
			t.Fatalf("family %s lacks HELP/TYPE:\n%s", name, text)
		}
		return f
	}
	if f := get("sched_requests_total"); f.Type != "counter" || f.Samples[0].Value != 3 {
		t.Fatalf("requests family = %+v", f)
	}
	if f := get("sched_requests_by_algo_total"); f.Samples[0].Labels["algo"] != "tree-unit" {
		t.Fatalf("algo label = %+v", f.Samples[0])
	}
	if f := get("sched_weird_total"); f.Samples[0].Labels["path"] != "a\\b\"c\nd" {
		t.Fatalf("escaped label round-trip = %q", f.Samples[0].Labels["path"])
	}
	if f := get("sched_in_flight"); f.Type != "gauge" || f.Samples[0].Value != 2 {
		t.Fatalf("gauge family = %+v", f)
	}
	if f := get("sched_uptime_seconds"); f.Samples[0].Value != 12.5 {
		t.Fatalf("gauge func = %+v", f)
	}
	f := get("sched_solve_latency_ns")
	if f.Type != "summary" {
		t.Fatalf("histogram exposed as %q", f.Type)
	}
	var sawQ, sawSum, sawCount bool
	for _, s := range f.Samples {
		switch {
		case s.Name == "sched_solve_latency_ns_sum":
			sawSum = s.Value > 0
		case s.Name == "sched_solve_latency_ns_count":
			sawCount = s.Value == 100
		case s.Labels["quantile"] == "0.5":
			sawQ = true
			// p50 of 1k..100k ns should sit near 50k (within a bucket).
			if s.Value < 45_000 || s.Value > 55_000 {
				t.Fatalf("p50 = %v", s.Value)
			}
		}
	}
	if !sawQ || !sawSum || !sawCount {
		t.Fatalf("summary series incomplete:\n%s", text)
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad metric name", func() { r.Counter("9bad", "") })
	mustPanic("bad label name", func() { r.Counter("ok_total", "", Label{Name: "1x", Value: "v"}) })
	r.Counter("twice", "")
	mustPanic("kind clash", func() { r.Gauge("twice", "") })
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	bad := []string{
		"no_type_line 5",                                     // sample without TYPE
		"# TYPE x widget\nx 1",                               // unknown type
		"# TYPE x counter\nx -1",                             // negative counter
		"# TYPE x counter\nx{l=\"unterminated} 1",            // bad quoting
		"# TYPE x counter\nx{l=\"v\"} notanumber",            // bad value
		"# TYPE x counter\nx 1\n# TYPE x counter\nx 2",       // duplicate TYPE
		"# TYPE x counter\nx{bad-label=\"v\"} 1",             // bad label name
		"# TYPE x counter\nx{l=\"a\",l=\"b\"} 1",             // duplicate label
		"# HELP x h\n# HELP x h2\n# TYPE x counter\nx 1",     // duplicate HELP
		"# TYPE x summary\nx{quantile=\"0.5\"} 1\nx_sum bad", // bad sum value
	}
	for _, text := range bad {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Fatalf("accepted malformed exposition:\n%s", text)
		}
	}
	// And a legal corner: bare comments, timestamps, empty label set text.
	ok := "# scrape note\n# TYPE y gauge\ny{a=\"b\\\"c\"} 2.5 1700000000\n"
	fams, err := ParseExposition(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("rejected legal exposition: %v", err)
	}
	if fams["y"].Samples[0].Labels["a"] != `b"c` {
		t.Fatalf("escape handling = %+v", fams["y"].Samples[0])
	}
}

func TestExpoSampleKeyStable(t *testing.T) {
	a := ExpoSample{Name: "m", Labels: map[string]string{"b": "2", "a": "1"}}
	b := ExpoSample{Name: "m", Labels: map[string]string{"a": "1", "b": "2"}}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	if c := (ExpoSample{Name: "m"}); c.Key() != "m" {
		t.Fatalf("unlabeled key = %q", c.Key())
	}
}
