// Package obs is the repo's dependency-free instrumentation layer:
// lock-free sharded counters and gauges, log-bucketed latency
// histograms with quantile extraction, and a cheap span recorder
// (Trace) for per-solve phase timelines.
//
// The package-wide discipline is zero overhead when disabled: every
// Trace method is nil-safe and a nil *Trace performs no time reads and
// no allocations, so solver hot paths can be instrumented
// unconditionally and pay only a predictable nil-check when telemetry
// is off. Counters and histograms are always-on primitives meant for
// the serving tier, where a single atomic add per request is the
// budget.
package obs

import (
	"math/rand/v2"
	"sync/atomic"
)

// counterShards is the stripe width of a Counter. Power of two so the
// shard pick is a mask. 16 shards × 64-byte padding = 1KiB per
// counter, enough to spread a hot request counter across cores without
// making per-algo counter maps expensive.
const counterShards = 16

type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte // pad to a cache line so shards don't false-share
}

// Counter is a lock-free monotonically written counter striped across
// cache-line-padded shards. Add picks a shard with the runtime's
// per-core fast RNG, so concurrent writers rarely contend on the same
// cache line; Load sums the stripes and is exact regardless of shard
// placement.
type Counter struct {
	shards [counterShards]paddedInt64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	c.shards[rand.Uint32()&(counterShards-1)].v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the exact current total.
func (c *Counter) Load() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is a single atomic instantaneous value (in-flight requests,
// open sessions). Gauges move both ways and are read at their write
// rate, so striping buys nothing — one atomic is the right cost.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by d (d may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
