package obs

// SLO accounting: a latency objective tracked as good/total counters
// plus burn-rate gauges. Burn rate is the SRE consumption ratio — the
// observed bad fraction divided by the error budget (1 - target) — so
// 1.0 means "burning budget exactly as fast as the objective allows",
// anything sustained above 1.0 means the objective will be missed.
// Alongside the cumulative rate the tracker keeps a short sliding
// window (fixed ring of coarse time buckets) so the exported gauge
// reacts to a regression within minutes instead of being averaged away
// by a long uptime.

import (
	"sync"
	"time"
)

// sloWindowBuckets × sloBucketNs is the sliding-window span: 20 × 15s
// = 5 minutes, the classic fast-burn alerting window.
const (
	sloWindowBuckets = 20
	sloBucketNs      = int64(15 * time.Second)
)

type sloBucket struct {
	epoch int64 // bucket timestamp (unix ns / sloBucketNs); stale buckets are skipped
	good  int64
	total int64
}

// SLO tracks one endpoint class against a latency objective. Good and
// Total are supplied by the caller (typically registry-owned counters,
// so the raw series appear in /metrics.prom); the window ring is
// internal. Safe for concurrent use.
type SLO struct {
	// ObjectiveNs is the latency objective: a request is good when it
	// succeeds within this budget.
	ObjectiveNs int64
	// Target is the good-fraction objective (e.g. 0.99); the error
	// budget is 1 - Target.
	Target float64
	// Good counts requests that met the objective; Total counts every
	// accounted request.
	Good  *Counter
	Total *Counter

	mu      sync.Mutex
	buckets [sloWindowBuckets]sloBucket

	// now is a test seam; nil means time.Now.
	now func() int64
}

// NewSLO builds a tracker over caller-registered counters.
func NewSLO(objective time.Duration, target float64, good, total *Counter) *SLO {
	return &SLO{ObjectiveNs: objective.Nanoseconds(), Target: target, Good: good, Total: total}
}

func (s *SLO) nowNs() int64 {
	if s.now != nil {
		return s.now()
	}
	return time.Now().UnixNano()
}

// Observe accounts one request: failed marks a server-side failure
// (client errors should not be fed here — they spend no error budget).
func (s *SLO) Observe(durNs int64, failed bool) {
	good := !failed && durNs <= s.ObjectiveNs
	s.Total.Add(1)
	if good {
		s.Good.Add(1)
	}
	epoch := s.nowNs() / sloBucketNs
	b := &s.buckets[epoch%sloWindowBuckets]
	s.mu.Lock()
	if b.epoch != epoch {
		b.epoch, b.good, b.total = epoch, 0, 0
	}
	b.total++
	if good {
		b.good++
	}
	s.mu.Unlock()
}

// burn converts a good/total pair to a burn rate against the error
// budget. A fully spent budget with a zero budget denominator cannot
// happen (Target < 1 is enforced by the caller's defaults); no traffic
// burns nothing.
func (s *SLO) burn(good, total int64) float64 {
	if total == 0 {
		return 0
	}
	budget := 1 - s.Target
	if budget <= 0 {
		budget = 1e-9
	}
	bad := float64(total-good) / float64(total)
	return bad / budget
}

// BurnRate returns the sliding-window burn rate (the last ~5 minutes).
func (s *SLO) BurnRate() float64 {
	epoch := s.nowNs() / sloBucketNs
	var good, total int64
	s.mu.Lock()
	for i := range s.buckets {
		b := &s.buckets[i]
		if b.epoch > epoch-sloWindowBuckets {
			good += b.good
			total += b.total
		}
	}
	s.mu.Unlock()
	return s.burn(good, total)
}

// TotalBurnRate returns the cumulative burn rate since construction.
func (s *SLO) TotalBurnRate() float64 {
	return s.burn(s.Good.Load(), s.Total.Load())
}
