package obs

import "time"

// SpanID indexes a span inside one Trace. The nil-trace sentinel is
// NoSpan; every Trace method treats it (and a nil receiver) as a
// no-op, so instrumented code never branches on "is tracing on"
// beyond the nil-check the method itself performs.
type SpanID int32

// NoSpan is the id returned by Begin on a nil Trace.
const NoSpan SpanID = -1

// SpanCounter is one named count attached to a span (raises, steps,
// MIS phases, messages...).
type SpanCounter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Span is one timed phase of a solve. Start offsets are relative to
// the trace origin so a timeline renders without wall-clock epochs.
type Span struct {
	Name     string        `json:"name"`
	Parent   SpanID        `json:"parent"` // NoSpan for roots
	StartNs  int64         `json:"start_ns"`
	DurNs    int64         `json:"dur_ns"`
	Counters []SpanCounter `json:"counters,omitempty"`
}

// RoundSample is the per-superstep telemetry of a BSP run: what kind
// of collective the round was, how much crossed the wire, and how long
// the superstep took (compute + synchronization, measured from the
// previous round's completion).
type RoundSample struct {
	Kind     string `json:"kind"` // "exchange" or "aggregate"
	Messages int64  `json:"messages"`
	Entries  int64  `json:"entries"`
	StepNs   int64  `json:"step_ns"`
}

// RoundLog collects RoundSamples. The dist runtimes append to one when
// observed; a nil *RoundLog costs the engines a single pointer check
// per round.
type RoundLog struct {
	Samples []RoundSample
}

// Add appends one sample. Nil-safe.
func (l *RoundLog) Add(s RoundSample) {
	if l == nil {
		return
	}
	l.Samples = append(l.Samples, s)
}

// Trace records a tree of timed spans for one solve. It is not safe
// for concurrent use: a trace belongs to exactly one solve call on one
// goroutine (concurrent solves each get their own Trace).
//
// The zero-overhead contract: all methods are nil-safe, and on a nil
// receiver they return immediately without reading the clock or
// allocating. Instrumented code therefore calls Begin/End/Add
// unconditionally.
type Trace struct {
	origin time.Time
	spans  []Span
	open   []SpanID // stack of open spans, for parenting
	rounds []RoundSample
}

// NewTrace starts an empty trace anchored at the current time.
func NewTrace() *Trace {
	return &Trace{origin: time.Now()}
}

// Begin opens a span named name, parented to the innermost open span.
func (t *Trace) Begin(name string) SpanID {
	if t == nil {
		return NoSpan
	}
	parent := NoSpan
	if n := len(t.open); n > 0 {
		parent = t.open[n-1]
	}
	id := SpanID(len(t.spans))
	t.spans = append(t.spans, Span{
		Name:    name,
		Parent:  parent,
		StartNs: time.Since(t.origin).Nanoseconds(),
		DurNs:   -1,
	})
	t.open = append(t.open, id)
	return id
}

// End closes the span, recording its duration. Any spans opened after
// id and still open are closed with it (leniency keeps error paths
// from corrupting the stack).
func (t *Trace) End(id SpanID) {
	if t == nil || id < 0 || int(id) >= len(t.spans) {
		return
	}
	now := time.Since(t.origin).Nanoseconds()
	for n := len(t.open); n > 0; n = len(t.open) {
		top := t.open[n-1]
		t.open = t.open[:n-1]
		if sp := &t.spans[top]; sp.DurNs < 0 {
			sp.DurNs = now - sp.StartNs
		}
		if top == id {
			return
		}
	}
}

// Add accumulates a named counter on the span (summing on repeat keys).
func (t *Trace) Add(id SpanID, name string, v int64) {
	if t == nil || id < 0 || int(id) >= len(t.spans) {
		return
	}
	sp := &t.spans[id]
	for i := range sp.Counters {
		if sp.Counters[i].Name == name {
			sp.Counters[i].Value += v
			return
		}
	}
	sp.Counters = append(sp.Counters, SpanCounter{Name: name, Value: v})
}

// AddRounds attaches per-superstep samples from a BSP run.
func (t *Trace) AddRounds(samples []RoundSample) {
	if t == nil || len(samples) == 0 {
		return
	}
	t.rounds = append(t.rounds, samples...)
}

// RootNs sums the durations of top-level spans — the portion of wall
// time the trace accounts for.
func (t *Trace) RootNs() int64 {
	if t == nil {
		return 0
	}
	var sum int64
	for i := range t.spans {
		if t.spans[i].Parent == NoSpan && t.spans[i].DurNs > 0 {
			sum += t.spans[i].DurNs
		}
	}
	return sum
}

// Spans returns the recorded spans (shared slice; do not mutate).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Rounds returns the attached BSP round samples.
func (t *Trace) Rounds() []RoundSample {
	if t == nil {
		return nil
	}
	return t.rounds
}

// PhaseNs returns the summed duration of all spans named name.
func (t *Trace) PhaseNs(name string) int64 {
	if t == nil {
		return 0
	}
	var sum int64
	for i := range t.spans {
		if t.spans[i].Name == name && t.spans[i].DurNs > 0 {
			sum += t.spans[i].DurNs
		}
	}
	return sum
}

// CounterTotal sums counter name across all spans named span (any span
// when span is empty).
func (t *Trace) CounterTotal(span, name string) int64 {
	if t == nil {
		return 0
	}
	var sum int64
	for i := range t.spans {
		if span != "" && t.spans[i].Name != span {
			continue
		}
		for _, c := range t.spans[i].Counters {
			if c.Name == name {
				sum += c.Value
			}
		}
	}
	return sum
}

// RoundsSummary aggregates the wall-clock axis of the attached BSP
// rounds: per-kind totals and the worst single superstep. The time
// axis of individual rounds is the prefix sum of their step_ns fields
// (each StepNs is measured from the previous collective's completion).
type RoundsSummary struct {
	Rounds      int   `json:"rounds"`
	Exchanges   int   `json:"exchanges"`
	Aggregates  int   `json:"aggregates"`
	ExchangeNs  int64 `json:"exchange_ns"`
	AggregateNs int64 `json:"aggregate_ns"`
	TotalStepNs int64 `json:"total_step_ns"`
	MaxStepNs   int64 `json:"max_step_ns"`
}

// SummarizeRounds reduces samples to their wall-clock summary.
func SummarizeRounds(samples []RoundSample) RoundsSummary {
	var s RoundsSummary
	for i := range samples {
		r := &samples[i]
		s.Rounds++
		s.TotalStepNs += r.StepNs
		if r.StepNs > s.MaxStepNs {
			s.MaxStepNs = r.StepNs
		}
		switch r.Kind {
		case "exchange":
			s.Exchanges++
			s.ExchangeNs += r.StepNs
		case "aggregate":
			s.Aggregates++
			s.AggregateNs += r.StepNs
		}
	}
	return s
}

// TraceExport is the JSON shape written by schedtool solve -trace-out.
type TraceExport struct {
	TotalNs int64         `json:"total_ns"` // origin → Export call
	Spans   []Span        `json:"spans"`
	Rounds  []RoundSample `json:"rounds,omitempty"`
	// RoundsSummary gives distributed solves a wall-clock round axis at
	// a glance; nil when the trace attached no BSP rounds.
	RoundsSummary *RoundsSummary `json:"rounds_summary,omitempty"`
}

// Export freezes the trace for serialization.
func (t *Trace) Export() TraceExport {
	if t == nil {
		return TraceExport{}
	}
	out := TraceExport{
		TotalNs: time.Since(t.origin).Nanoseconds(),
		Spans:   t.spans,
		Rounds:  t.rounds,
	}
	if len(t.rounds) > 0 {
		s := SummarizeRounds(t.rounds)
		out.RoundsSummary = &s
	}
	return out
}
