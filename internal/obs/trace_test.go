package obs

import (
	"encoding/json"
	"testing"
)

// TestNilTraceZeroAlloc pins the zero-overhead contract: a nil Trace
// must cost no allocations (and, by construction, no clock reads) on
// every method of the instrumentation surface.
func TestNilTraceZeroAlloc(t *testing.T) {
	var tr *Trace
	var rl *RoundLog
	allocs := testing.AllocsPerRun(1000, func() {
		id := tr.Begin("phase1")
		tr.Add(id, "raises", 3)
		tr.End(id)
		tr.AddRounds(nil)
		rl.Add(RoundSample{})
		_ = tr.RootNs()
		_ = tr.Spans()
		_ = tr.Rounds()
	})
	if allocs != 0 {
		t.Fatalf("nil trace allocated %v times per op, want 0", allocs)
	}
	if id := tr.Begin("x"); id != NoSpan {
		t.Fatalf("nil Begin = %d, want NoSpan", id)
	}
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace()
	solve := tr.Begin("solve")
	p1 := tr.Begin("phase1")
	e1 := tr.Begin("epoch")
	tr.Add(e1, "raises", 4)
	tr.Add(e1, "raises", 2) // accumulates
	tr.End(e1)
	tr.End(p1)
	p2 := tr.Begin("phase2")
	tr.End(p2)
	tr.End(solve)

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["solve"].Parent != NoSpan {
		t.Fatalf("solve parent = %d", byName["solve"].Parent)
	}
	if spans[byName["phase1"].Parent].Name != "solve" {
		t.Fatalf("phase1 not parented to solve")
	}
	if spans[byName["epoch"].Parent].Name != "phase1" {
		t.Fatalf("epoch not parented to phase1")
	}
	if got := tr.CounterTotal("epoch", "raises"); got != 6 {
		t.Fatalf("raises total = %d, want 6", got)
	}
	for _, s := range spans {
		if s.DurNs < 0 {
			t.Fatalf("span %s left open (dur %d)", s.Name, s.DurNs)
		}
	}
	if root := tr.RootNs(); root <= 0 || root != byName["solve"].DurNs {
		t.Fatalf("RootNs = %d, want solve dur %d", root, byName["solve"].DurNs)
	}
}

// End must tolerate out-of-order closes (error paths): closing an
// outer span closes any still-open children.
func TestTraceEndLenient(t *testing.T) {
	tr := NewTrace()
	outer := tr.Begin("outer")
	_ = tr.Begin("inner") // never explicitly ended
	tr.End(outer)
	for _, s := range tr.Spans() {
		if s.DurNs < 0 {
			t.Fatalf("span %s left open after outer End", s.Name)
		}
	}
	next := tr.Begin("next")
	if tr.Spans()[next].Parent != NoSpan {
		t.Fatalf("stack not drained: next parented to %d", tr.Spans()[next].Parent)
	}
	tr.End(next)
	tr.End(SpanID(99)) // out of range: no-op
}

func TestTraceExportJSON(t *testing.T) {
	tr := NewTrace()
	sp := tr.Begin("compile")
	tr.Add(sp, "decomp_ns", 120)
	tr.End(sp)
	tr.AddRounds([]RoundSample{{Kind: "exchange", Messages: 10, Entries: 20, StepNs: 100}})

	raw, err := json.Marshal(tr.Export())
	if err != nil {
		t.Fatal(err)
	}
	var back TraceExport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != 1 || back.Spans[0].Name != "compile" {
		t.Fatalf("round-trip spans = %+v", back.Spans)
	}
	if len(back.Rounds) != 1 || back.Rounds[0].Messages != 10 {
		t.Fatalf("round-trip rounds = %+v", back.Rounds)
	}
	if back.TotalNs <= 0 {
		t.Fatalf("TotalNs = %d", back.TotalNs)
	}
	if got := tr.PhaseNs("compile"); got != back.Spans[0].DurNs {
		t.Fatalf("PhaseNs = %d, want %d", got, back.Spans[0].DurNs)
	}
}
