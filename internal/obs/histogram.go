package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram buckets are log-linear: each power-of-two octave is split
// into 2^histSubBits equal-width sub-buckets, so any value inside a
// bucket is within bucketWidth/bucketLo ≤ 2^-histSubBits = 1/16 of the
// bucket bounds. Values below histSubCount get exact unit buckets.
// That bounds the relative error of any quantile estimate at 1/16
// (6.25%) — tight enough for latency SLOs, cheap enough that Observe
// is two atomic adds, a CAS-max loop, and a bit scan.
const (
	histSubBits  = 4
	histSubCount = 1 << histSubBits // sub-buckets per octave

	// Octaves cover exponents histSubBits..62 (int64 range) plus the
	// exact block for values < histSubCount.
	histBlocks  = 64 - histSubBits
	histBuckets = histBlocks * histSubCount
)

// Histogram is a fixed-size log-bucketed latency histogram safe for
// concurrent Observe. Counts are exact (atomic per-bucket adds);
// Snapshot is taken bucket-by-bucket and is consistent enough for
// monitoring (concurrent Observes may straddle a snapshot but are
// never lost).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// histBucketOf maps a non-negative value to its bucket index.
func histBucketOf(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v)) // floor(log2 v) ≥ histSubBits
	sub := int((uint64(v) >> (exp - histSubBits)) & (histSubCount - 1))
	return (exp-histSubBits+1)*histSubCount + sub
}

// histBucketBounds returns the [lo, hi) value range of bucket i.
func histBucketBounds(i int) (lo, hi int64) {
	block, sub := i/histSubCount, int64(i%histSubCount)
	if block == 0 {
		return sub, sub + 1
	}
	exp := uint(block - 1 + histSubBits)
	width := int64(1) << (exp - histSubBits)
	lo = int64(1)<<exp + sub*width
	hi = lo + width
	if hi < lo { // the final bucket's bound is 2^63; clamp into int64
		hi = math.MaxInt64
	}
	return lo, hi
}

// histRepresentative is the value reported for a quantile landing in
// bucket i: exact for the unit block, bucket midpoint otherwise (which
// halves the worst-case error versus either bound).
func histRepresentative(i int) int64 {
	lo, hi := histBucketBounds(i)
	if hi-lo <= 1 {
		return lo
	}
	return lo + (hi-lo)/2
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	h.buckets[histBucketOf(v)].Add(1)
}

// HistSnapshot is a point-in-time copy of a Histogram's state.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Max     int64
	buckets [histBuckets]int64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile returns the nearest-rank q-quantile estimate (q in [0,1])
// from the snapshot: the representative value of the bucket holding
// the ceil(q·count)-th smallest observation. Zero if empty.
func (s *HistSnapshot) Quantile(q float64) int64 {
	n := s.Count
	if n <= 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i := range s.buckets {
		cum += s.buckets[i]
		if cum >= rank {
			// A bucket representative is its upper bound, which can
			// overshoot the exactly-tracked max when the largest
			// observation sits low in the last occupied bucket; clamp so
			// no quantile estimate exceeds a value known exactly.
			if v := histRepresentative(i); v < s.Max {
				return v
			}
			return s.Max
		}
	}
	return s.Max
}

// Quantile is Snapshot().Quantile for callers that need one value.
func (h *Histogram) Quantile(q float64) int64 {
	s := h.Snapshot()
	return s.Quantile(q)
}

// Summary is the JSON-friendly digest of a histogram: count, mean and
// the standard latency quantiles, all in the unit that was observed
// (nanoseconds everywhere in this repo).
type Summary struct {
	Count  int64   `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P90Ns  int64   `json:"p90_ns"`
	P99Ns  int64   `json:"p99_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// Summarize digests the snapshot.
func (s *HistSnapshot) Summarize() Summary {
	out := Summary{Count: s.Count, MaxNs: s.Max}
	if s.Count > 0 {
		out.MeanNs = float64(s.Sum) / float64(s.Count)
		out.P50Ns = s.Quantile(0.50)
		out.P90Ns = s.Quantile(0.90)
		out.P99Ns = s.Quantile(0.99)
	}
	return out
}

// Summarize digests the histogram's current state.
func (h *Histogram) Summarize() Summary {
	s := h.Snapshot()
	return s.Summarize()
}
