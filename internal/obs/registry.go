package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one Prometheus label pair.
type Label struct {
	Name  string
	Value string
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindSummary
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindSummary:
		return "summary"
	}
	return "untyped"
}

type metric struct {
	labels []Label
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

type family struct {
	name    string
	help    string
	kind    metricKind
	metrics []*metric
}

// Registry names and exposes obs primitives. Registration
// (Counter/Gauge/Histogram/GaugeFunc) takes a lock and is meant for
// startup; the returned primitives are lock-free on the hot path.
// WritePrometheus renders the text exposition format (v0.0.4):
// families sorted by name, HELP/TYPE comments, escaped label values,
// histograms as summaries with quantile series.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help string, kind metricKind, labels []Label) *metric {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !validMetricName(l.Name) || strings.Contains(l.Name, ":") {
			panic("obs: invalid label name " + strconv.Quote(l.Name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind, kind))
	}
	m := &metric{labels: labels}
	f.metrics = append(f.metrics, m)
	return m
}

// Counter registers (and returns) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, kindCounter, labels)
	m.c = new(Counter)
	return m.c
}

// Gauge registers (and returns) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(name, help, kindGauge, labels)
	m.g = new(Gauge)
	return m.g
}

// GaugeFunc registers a gauge series computed at exposition time (for
// values owned elsewhere: cache sizes, open sessions, uptime).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	m := r.register(name, help, kindGaugeFunc, labels)
	m.fn = fn
}

// Histogram registers (and returns) a latency histogram series,
// exposed as a Prometheus summary (quantile series + _sum + _count).
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	m := r.register(name, help, kindSummary, labels)
	m.h = new(Histogram)
	return m.h
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func writeLabels(b *strings.Builder, labels []Label, extra ...Label) {
	all := labels
	if len(extra) > 0 {
		all = append(append([]Label{}, labels...), extra...)
	}
	if len(all) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func writeSample(b *strings.Builder, name string, labels []Label, value float64, extra ...Label) {
	b.WriteString(name)
	writeLabels(b, labels, extra...)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(value, 'g', -1, 64))
	b.WriteByte('\n')
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, m := range f.metrics {
			switch f.kind {
			case kindCounter:
				writeSample(&b, f.name, m.labels, float64(m.c.Load()))
			case kindGauge:
				writeSample(&b, f.name, m.labels, float64(m.g.Load()))
			case kindGaugeFunc:
				writeSample(&b, f.name, m.labels, m.fn())
			case kindSummary:
				s := m.h.Snapshot()
				for _, q := range [...]float64{0.5, 0.9, 0.99} {
					writeSample(&b, f.name, m.labels, float64(s.Quantile(q)),
						Label{Name: "quantile", Value: strconv.FormatFloat(q, 'g', -1, 64)})
				}
				writeSample(&b, f.name+"_sum", m.labels, float64(s.Sum))
				writeSample(&b, f.name+"_count", m.labels, float64(s.Count))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
