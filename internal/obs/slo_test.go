package obs

import (
	"testing"
	"time"
)

// testSLO builds a tracker with an injected clock starting at epoch 0.
func testSLO(objective time.Duration, target float64) (*SLO, *int64) {
	now := new(int64)
	s := NewSLO(objective, target, new(Counter), new(Counter))
	s.now = func() int64 { return *now }
	return s, now
}

// TestSLOBurnRate: the burn rate is the bad fraction over the error
// budget — 1.0 means spending budget exactly at the allowed rate.
func TestSLOBurnRate(t *testing.T) {
	s, _ := testSLO(100*time.Millisecond, 0.99)

	for i := 0; i < 99; i++ {
		s.Observe(int64(time.Millisecond), false)
	}
	if br := s.BurnRate(); br != 0 {
		t.Fatalf("all-good burn rate = %g, want 0", br)
	}

	// One bad request in 100: bad fraction 0.01 over a 0.01 budget = 1.0.
	s.Observe(int64(time.Second), false) // objective miss counts as bad
	if br := s.BurnRate(); br < 0.99 || br > 1.01 {
		t.Fatalf("burn rate = %g, want ~1.0", br)
	}
	if br := s.TotalBurnRate(); br < 0.99 || br > 1.01 {
		t.Fatalf("total burn rate = %g, want ~1.0", br)
	}
	if g, tot := s.Good.Load(), s.Total.Load(); g != 99 || tot != 100 {
		t.Fatalf("good/total = %d/%d, want 99/100", g, tot)
	}

	// A fast failure is bad too.
	s.Observe(int64(time.Millisecond), true)
	if br := s.BurnRate(); br <= 1.0 {
		t.Fatalf("burn rate after failure = %g, want > 1", br)
	}
}

// TestSLOWindowExpiry: the sliding window forgets a regression after
// ~5 minutes while the cumulative rate remembers it.
func TestSLOWindowExpiry(t *testing.T) {
	s, now := testSLO(100*time.Millisecond, 0.99)

	s.Observe(int64(time.Millisecond), true) // one bad request at t=0
	if br := s.BurnRate(); br <= 0 {
		t.Fatalf("fresh failure invisible in the window: %g", br)
	}

	*now = int64(10 * time.Minute) // well past the 5-minute window
	if br := s.BurnRate(); br != 0 {
		t.Fatalf("expired failure still burning the window: %g", br)
	}
	if br := s.TotalBurnRate(); br <= 0 {
		t.Fatalf("cumulative rate forgot the failure: %g", br)
	}

	// Fresh traffic lands in current buckets, replacing stale epochs.
	for i := 0; i < 10; i++ {
		s.Observe(int64(time.Millisecond), false)
	}
	if br := s.BurnRate(); br != 0 {
		t.Fatalf("good-only window burns: %g", br)
	}
}

// TestRoundsSummary pins the wall-clock reduction of BSP round samples
// and its attachment to trace exports.
func TestRoundsSummary(t *testing.T) {
	samples := []RoundSample{
		{Kind: "exchange", Messages: 10, Entries: 20, StepNs: 100},
		{Kind: "aggregate", Messages: 1, Entries: 2, StepNs: 300},
		{Kind: "exchange", Messages: 5, Entries: 5, StepNs: 50},
	}
	s := SummarizeRounds(samples)
	if s.Rounds != 3 || s.Exchanges != 2 || s.Aggregates != 1 {
		t.Fatalf("counts = %+v", s)
	}
	if s.ExchangeNs != 150 || s.AggregateNs != 300 || s.TotalStepNs != 450 || s.MaxStepNs != 300 {
		t.Fatalf("times = %+v", s)
	}

	tr := NewTrace()
	tr.AddRounds(samples)
	exp := tr.Export()
	if exp.RoundsSummary == nil || exp.RoundsSummary.TotalStepNs != 450 {
		t.Fatalf("export rounds summary = %+v", exp.RoundsSummary)
	}

	var empty *Trace
	if empty.Export().RoundsSummary != nil {
		t.Fatal("nil trace export grew a rounds summary")
	}
}
