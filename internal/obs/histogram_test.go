package obs

import (
	"math"
	"math/rand/v2"
	"slices"
	"sync"
	"testing"
)

// exactQuantile is the nearest-rank quantile over the raw samples —
// the definition HistSnapshot.Quantile approximates bucket-wise.
func exactQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// TestHistogramQuantileVsExact fuzzes latency sets from several shapes
// and checks every extracted quantile against the exact sorted-sample
// quantile: the estimate must land in the same log bucket as the exact
// value, which bounds its relative error by the bucket width (1/16).
func TestHistogramQuantileVsExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	shapes := map[string]func() int64{
		"uniform":   func() int64 { return rng.Int64N(5_000_000) },
		"exp":       func() int64 { return int64(rng.ExpFloat64() * 250_000) },
		"lognormal": func() int64 { return int64(math.Exp(rng.NormFloat64()*2 + 10)) },
		"tiny":      func() int64 { return rng.Int64N(40) },
		"spiky": func() int64 {
			if rng.IntN(100) == 0 {
				return 1_000_000_000 + rng.Int64N(1_000_000_000)
			}
			return 50_000 + rng.Int64N(1000)
		},
	}
	quantiles := []float64{0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	for name, gen := range shapes {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.IntN(3000)
			var h Histogram
			samples := make([]int64, n)
			for i := range samples {
				samples[i] = gen()
				h.Observe(samples[i])
			}
			slices.Sort(samples)
			snap := h.Snapshot()
			if snap.Count != int64(n) {
				t.Fatalf("%s: count = %d, want %d", name, snap.Count, n)
			}
			if snap.Max != samples[n-1] {
				t.Fatalf("%s: max = %d, want %d", name, snap.Max, samples[n-1])
			}
			for _, q := range quantiles {
				est := snap.Quantile(q)
				exact := exactQuantile(samples, q)
				if histBucketOf(est) != histBucketOf(exact) {
					t.Fatalf("%s trial %d: q=%v estimate %d not in exact value %d's bucket",
						name, trial, q, est, exact)
				}
				lo, hi := histBucketBounds(histBucketOf(exact))
				width := hi - lo
				if d := est - exact; d > width || d < -width {
					t.Fatalf("%s trial %d: q=%v |%d-%d| exceeds bucket width %d",
						name, trial, q, est, exact, width)
				}
			}
		}
	}
}

func TestHistogramBucketsPartitionInt64(t *testing.T) {
	// Bounds must tile: each bucket's hi is the next bucket's lo, and
	// bucketOf(lo) == i, bucketOf(hi-1) == i.
	prevHi := int64(0)
	for i := 0; i < histBuckets; i++ {
		lo, hi := histBucketBounds(i)
		if lo != prevHi {
			t.Fatalf("bucket %d: lo %d != previous hi %d", i, lo, prevHi)
		}
		if hi <= lo {
			t.Fatalf("bucket %d: empty range [%d,%d)", i, lo, hi)
		}
		if histBucketOf(lo) != i {
			t.Fatalf("bucketOf(%d) = %d, want %d", lo, histBucketOf(lo), i)
		}
		if histBucketOf(hi-1) != i {
			t.Fatalf("bucketOf(%d) = %d, want %d", hi-1, histBucketOf(hi-1), i)
		}
		prevHi = hi
	}
	if histBucketOf(math.MaxInt64) >= histBuckets {
		t.Fatalf("MaxInt64 bucket %d out of range", histBucketOf(math.MaxInt64))
	}
}

// TestHistogramConcurrentCounts pins down that concurrent recording
// loses nothing: G goroutines each observe a known multiset and the
// final snapshot must hold the exact union. Run under -race in CI.
func TestHistogramConcurrentCounts(t *testing.T) {
	const goroutines, per = 8, 5000
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 3))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int64N(10_000_000))
			}
		}(g)
	}
	wg.Wait()

	// Replay serially with the same seeds to compute the expectation.
	var want Histogram
	var wantSum, wantMax int64
	for g := 0; g < goroutines; g++ {
		rng := rand.New(rand.NewPCG(uint64(g), 3))
		for i := 0; i < per; i++ {
			v := rng.Int64N(10_000_000)
			want.Observe(v)
			wantSum += v
			if v > wantMax {
				wantMax = v
			}
		}
	}
	got, exp := h.Snapshot(), want.Snapshot()
	if got.Count != int64(goroutines*per) || got.Sum != wantSum || got.Max != wantMax {
		t.Fatalf("count/sum/max = %d/%d/%d, want %d/%d/%d",
			got.Count, got.Sum, got.Max, int64(goroutines*per), wantSum, wantMax)
	}
	if got.buckets != exp.buckets {
		t.Fatalf("concurrent bucket counts differ from serial replay")
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
	if s := h.Summarize(); s.Count != 0 || s.MeanNs != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	h.Observe(-5) // clamps to 0
	if got := h.Quantile(1); got != 0 {
		t.Fatalf("negative observation: quantile = %d, want 0", got)
	}
}

func TestCounterConcurrentExact(t *testing.T) {
	var c Counter
	const goroutines, per = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Add(5)
	g.Add(-2)
	if got := g.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	g.Set(42)
	if got := g.Load(); got != 42 {
		t.Fatalf("gauge = %d, want 42", got)
	}
}
