package obs

// The flight recorder: a lock-sharded, fixed-size, always-on store of
// per-request observability for the serving tier, in the spirit of
// x/net/trace but dependency-free like the rest of this package.
//
// A Recorder holds three things:
//
//   - an active table of in-flight requests (id, endpoint, age, the
//     phase each request is in right now), for "what is the server
//     doing at this instant";
//   - fixed-size ring buffers of completed request records in three
//     classes — recent (every completion), slow (duration above the
//     configured threshold) and error — so the interesting requests
//     survive long after the recent ring has churned past them;
//   - a structured event log (cache evictions, coalesce outcomes,
//     session lifecycle, rejections) ordered by a global sequence.
//
// Memory is bounded by construction: rings never grow, the active
// table holds only in-flight requests, and request handles are pooled.
// All methods are safe for concurrent use; reads merge the shards and
// order by the global sequence, so concurrent writers produce one
// deterministic timeline.
//
// Span trees ride on top: when sampling is enabled (Sample > 0) every
// request carries a *Trace that instrumented code (core.Options.
// Telemetry) fills with its phase timeline. The sample rate gates only
// what the recent ring retains — slow and errored requests always keep
// their full timeline. Sample == 0 is the zero-overhead mode: no Trace
// is ever allocated and no span is recorded, leaving only the constant
// per-request cost of the record itself.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Phase is the coarse request state shown for in-flight requests.
type Phase int32

const (
	PhaseStart Phase = iota
	PhaseValidate
	PhaseCacheCheck
	PhaseFlightWait // waiting on another request's identical in-flight solve
	PhaseQueued     // waiting for a worker-pool slot
	PhaseCompile
	PhaseSolve
	PhaseVerify
	PhaseRespond
	PhaseSession // applying session events / resolving
)

var phaseNames = [...]string{
	PhaseStart:      "start",
	PhaseValidate:   "validate",
	PhaseCacheCheck: "cache_check",
	PhaseFlightWait: "flight_wait",
	PhaseQueued:     "queued",
	PhaseCompile:    "compile",
	PhaseSolve:      "solve",
	PhaseVerify:     "verify",
	PhaseRespond:    "respond",
	PhaseSession:    "session",
}

// String returns the wire name of the phase.
func (p Phase) String() string {
	if p >= 0 && int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// ReqRecord is one completed request: the flight-recorder line written
// into the class rings, handed to the OnRecord sink (the NDJSON request
// log), and served by /debug/requests. Seq is the global recorder
// sequence — merged views sort by it, so ordering is deterministic even
// with concurrent writers.
type ReqRecord struct {
	Seq      uint64 `json:"seq"`
	ID       string `json:"id"`
	Endpoint string `json:"endpoint"`
	Algo     string `json:"algo,omitempty"`
	// Outcome is how the request was served: result_hit, solved,
	// coalesced, session_resolve, error...
	Outcome string `json:"outcome,omitempty"`
	Error   string `json:"error,omitempty"`
	// LinkedTo names the singleflight leader whose solve served this
	// request (coalesced followers only) — the leader's record carries
	// the span timeline both requests share.
	LinkedTo    string `json:"linked_to,omitempty"`
	StartUnixNs int64  `json:"start_unix_ns"`
	DurNs       int64  `json:"dur_ns"`
	// Trace is the span timeline, present when the request was sampled
	// (recent class) or always for slow/error-class records when
	// sampling is enabled at all.
	Trace *TraceExport `json:"trace,omitempty"`
}

// ActiveReq is one in-flight request as listed by /debug/requests.
type ActiveReq struct {
	ID          string `json:"id"`
	Endpoint    string `json:"endpoint"`
	Algo        string `json:"algo,omitempty"`
	Phase       string `json:"phase"`
	StartUnixNs int64  `json:"start_unix_ns"`
	AgeNs       int64  `json:"age_ns"`
	Traced      bool   `json:"traced"`
}

// Event is one structured entry of the recorder's event log: evictions,
// coalesce outcomes, session lifecycle, rejections. The same schema
// backs the optional per-request NDJSON log (type "request" lines carry
// the ReqRecord fields instead).
type Event struct {
	Seq        uint64 `json:"seq"`
	TimeUnixNs int64  `json:"ts_unix_ns"`
	Type       string `json:"type"`
	ID         string `json:"id,omitempty"`
	Detail     string `json:"detail,omitempty"`
}

// Completed-record class names.
const (
	ClassRecent = "recent"
	ClassSlow   = "slow"
	ClassError  = "error"
)

// RecorderConfig sizes a Recorder. Zero fields take the listed defaults.
type RecorderConfig struct {
	// PerClass is the total ring capacity of each completed class
	// (default 128). Capacity is divided across shards, rounding up.
	PerClass int
	// Events is the total event-log capacity (default 256).
	Events int
	// Shards is the lock-shard count; rounded up to a power of two
	// (default 8).
	Shards int
	// SlowNs classifies completions slower than this into the slow ring
	// (default 500ms).
	SlowNs int64
	// Sample is the probability that an ordinary completed request
	// retains its span timeline in the recent ring. Any value > 0
	// enables span recording for every request (slow and errored
	// completions always retain theirs); 0 disables span trees entirely
	// — the byte-identical zero-overhead mode.
	Sample float64
}

func (c RecorderConfig) withDefaults() RecorderConfig {
	if c.PerClass <= 0 {
		c.PerClass = 128
	}
	if c.Events <= 0 {
		c.Events = 256
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.SlowNs <= 0 {
		c.SlowNs = (500 * time.Millisecond).Nanoseconds()
	}
	p := 1
	for p < c.Shards {
		p <<= 1
	}
	c.Shards = p
	return c
}

// ring is a fixed-capacity overwrite buffer of ReqRecords.
type ring struct {
	buf   []ReqRecord
	next  int
	total uint64
}

func (r *ring) push(rec ReqRecord) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	r.total++
}

func (r *ring) appendAll(out []ReqRecord) []ReqRecord {
	n := len(r.buf)
	if r.total < uint64(n) {
		n = int(r.total)
	}
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(r.next-1-i+2*len(r.buf))%len(r.buf)])
	}
	return out
}

// eventRing is the Event analogue of ring.
type eventRing struct {
	buf   []Event
	next  int
	total uint64
}

func (r *eventRing) push(ev Event) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	r.total++
}

func (r *eventRing) appendAll(out []Event) []Event {
	n := len(r.buf)
	if r.total < uint64(n) {
		n = int(r.total)
	}
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(r.next-1-i+2*len(r.buf))%len(r.buf)])
	}
	return out
}

type recorderShard struct {
	mu sync.Mutex
	// active is a swap-remove slice, not a map: Begin appends and stores
	// the index in the handle, Finish swap-removes by it — the per-request
	// hot path never hashes the id. Debug reads scan; they are rare.
	active []*Req
	recent ring
	slow   ring
	errs   ring
	events eventRing
	_      [24]byte // keep shards off one cache line
}

// Recorder is the flight recorder. One per serving engine; safe for
// concurrent use.
type Recorder struct {
	cfg    RecorderConfig
	shards []recorderShard
	mask   uint64
	seq    atomic.Uint64 // global record/event order
	idSeq  atomic.Uint64 // generated request ids
	dice   atomic.Uint64 // splitmix64 state for retention sampling
	pool   sync.Pool     // *Req

	// OnRecord, when non-nil, observes every completed request record
	// (the structured request log). Set before serving traffic; called
	// outside all recorder locks, one call per completion, records with
	// the retention-resolved Trace attached.
	OnRecord func(*ReqRecord)
}

// NewRecorder builds a recorder from cfg.
func NewRecorder(cfg RecorderConfig) *Recorder {
	cfg = cfg.withDefaults()
	r := &Recorder{
		cfg:    cfg,
		shards: make([]recorderShard, cfg.Shards),
		mask:   uint64(cfg.Shards - 1),
	}
	perClass := (cfg.PerClass + cfg.Shards - 1) / cfg.Shards
	perEvents := (cfg.Events + cfg.Shards - 1) / cfg.Shards
	for i := range r.shards {
		s := &r.shards[i]
		s.active = make([]*Req, 0, 8)
		s.recent.buf = make([]ReqRecord, perClass)
		s.slow.buf = make([]ReqRecord, perClass)
		s.errs.buf = make([]ReqRecord, perClass)
		s.events.buf = make([]Event, perEvents)
	}
	r.pool.New = func() any { return new(Req) }
	return r
}

// SlowNs reports the slow-class threshold, 0 on a nil recorder.
func (r *Recorder) SlowNs() int64 {
	if r == nil {
		return 0
	}
	return r.cfg.SlowNs
}

// Sampling reports whether span trees are being recorded at all;
// a nil recorder samples nothing.
func (r *Recorder) Sampling() bool {
	if r == nil {
		return false
	}
	return r.cfg.Sample > 0
}

// NextID mints a recorder-scoped request id ("r-N") for requests that
// arrived without one. One buffer, one allocation — this runs on the
// per-request hot path for every API caller that sends no id.
//
//schedlint:nonnil ids are meaningless without recorder state; the sole call site (http.go) checks e.rec != nil first
func (r *Recorder) NextID() string {
	n := r.idSeq.Add(1)
	var b [22]byte
	i := len(b)
	for {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	i -= 2
	b[i], b[i+1] = 'r', '-'
	return string(b[i:])
}

// splitmix64 advances the retention-sampling stream: deterministic for
// a fresh recorder, independent of request timing.
//
//schedlint:nonnil only reachable from BeginAt past its own nil guard
func (r *Recorder) rollDice() float64 {
	z := r.dice.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// Req is the handle of one in-flight request. The owning goroutine
// calls SetPhase/SetAlgo/SetOutcome/Link and finally Finish; the debug
// listing reads the atomic fields concurrently.
type Req struct {
	rec      *Recorder
	shard    *recorderShard // the shard holding this handle's active slot
	slot     int            // index in shard.active, maintained by swap-remove
	id       string
	endpoint string
	start    time.Time
	seq      uint64
	sampled  bool   // retain spans in the recent ring
	trace    *Trace // non-nil when sampling is enabled

	phase   atomic.Int32
	algo    atomic.Pointer[string]
	outcome atomic.Pointer[string]
	linked  atomic.Pointer[string]
}

// Begin registers an in-flight request under id (minted via NextID when
// empty) and returns its handle. Nil-safe: a nil recorder returns a nil
// handle, and every Req method tolerates a nil receiver, so serving
// code instruments unconditionally.
func (r *Recorder) Begin(id, endpoint string) *Req {
	if r == nil {
		return nil
	}
	return r.BeginAt(id, endpoint, time.Now())
}

// BeginAt is Begin with the caller's own timestamp — serving code that
// already read the clock for its latency measurement passes it along
// instead of paying a second time.Now on the per-request hot path.
func (r *Recorder) BeginAt(id, endpoint string, start time.Time) *Req {
	if r == nil {
		return nil
	}
	if id == "" {
		id = r.NextID()
	}
	rq := r.pool.Get().(*Req)
	rq.rec = r
	rq.id = id
	rq.endpoint = endpoint
	rq.start = start
	rq.seq = r.seq.Add(1)
	rq.phase.Store(int32(PhaseStart))
	rq.algo.Store(nil)
	rq.outcome.Store(nil)
	rq.linked.Store(nil)
	if r.cfg.Sample > 0 {
		rq.trace = NewTrace()
		rq.sampled = r.cfg.Sample >= 1 || r.rollDice() < r.cfg.Sample
	} else {
		rq.trace = nil
		rq.sampled = false
	}
	// Shard by sequence, not id: spreads writers evenly with no hashing,
	// and merged views re-sort by Seq anyway.
	s := &r.shards[rq.seq&r.mask]
	rq.shard = s
	s.mu.Lock()
	rq.slot = len(s.active)
	s.active = append(s.active, rq)
	s.mu.Unlock()
	return rq
}

// ID returns the request id ("" on a nil handle).
func (q *Req) ID() string {
	if q == nil {
		return ""
	}
	return q.id
}

// Trace returns the request's span tree, nil when sampling is off (or
// on a nil handle) — callers pass it straight to core.Options.Telemetry
// and rely on the Trace nil-receiver contract.
func (q *Req) Trace() *Trace {
	if q == nil {
		return nil
	}
	return q.trace
}

// SetPhase moves the request's coarse phase (shown for active requests).
func (q *Req) SetPhase(p Phase) {
	if q == nil {
		return
	}
	q.phase.Store(int32(p))
}

// SetAlgo records the algorithm the request dispatched to.
func (q *Req) SetAlgo(algo string) {
	if q == nil || algo == "" {
		return
	}
	q.algo.Store(&algo)
}

// SetOutcome records how the request was served (pass package-level
// constants; the pointer is stored as-is).
func (q *Req) SetOutcome(outcome string) {
	if q == nil || outcome == "" {
		return
	}
	q.outcome.Store(&outcome)
}

// Link marks the request a singleflight follower of leaderID.
func (q *Req) Link(leaderID string) {
	if q == nil || leaderID == "" {
		return
	}
	q.linked.Store(&leaderID)
}

func loadStr(p *atomic.Pointer[string]) string {
	if s := p.Load(); s != nil {
		return *s
	}
	return ""
}

// Finish completes the request: removes it from the active table,
// classifies the record into the rings (recent always; slow when over
// the threshold; error when errMsg is non-empty), applies span
// retention, and feeds the OnRecord sink. durNs <= 0 measures from the
// handle's own start. The handle is recycled — no field may be touched
// after Finish.
func (q *Req) Finish(durNs int64, errMsg string) {
	if q == nil {
		return
	}
	r := q.rec
	if durNs <= 0 {
		durNs = time.Since(q.start).Nanoseconds()
	}
	rec := ReqRecord{
		Seq:         q.seq,
		ID:          q.id,
		Endpoint:    q.endpoint,
		Algo:        loadStr(&q.algo),
		Outcome:     loadStr(&q.outcome),
		Error:       errMsg,
		LinkedTo:    loadStr(&q.linked),
		StartUnixNs: q.start.UnixNano(),
		DurNs:       durNs,
	}
	var full *TraceExport
	if q.trace != nil {
		exp := q.trace.Export()
		full = &exp
	}
	slow := durNs > r.cfg.SlowNs
	isErr := errMsg != ""
	sampled := q.sampled

	s := q.shard
	s.mu.Lock()
	// Swap-remove this handle's active slot; fix the moved handle's index.
	if last := len(s.active) - 1; q.slot <= last && s.active[q.slot] == q {
		moved := s.active[last]
		s.active[q.slot] = moved
		moved.slot = q.slot
		s.active[last] = nil
		s.active = s.active[:last]
	}
	if sampled {
		rec.Trace = full
	} else {
		rec.Trace = nil
	}
	s.recent.push(rec)
	rec.Trace = full // slow/error always keep the timeline
	if slow {
		s.slow.push(rec)
	}
	if isErr {
		s.errs.push(rec)
	}
	s.mu.Unlock()

	if sink := r.OnRecord; sink != nil {
		sink(&rec)
	}

	q.trace = nil
	q.rec = nil
	q.shard = nil
	r.pool.Put(q)
}

// Event appends one entry to the structured event log.
func (r *Recorder) Event(typ, id, detail string) {
	if r == nil {
		return
	}
	seq := r.seq.Add(1)
	ev := Event{
		Seq:        seq,
		TimeUnixNs: time.Now().UnixNano(),
		Type:       typ,
		ID:         id,
		Detail:     detail,
	}
	s := &r.shards[seq&r.mask] // spread writers; merged views re-sort by Seq
	s.mu.Lock()
	s.events.push(ev)
	s.mu.Unlock()
}

// Active lists in-flight requests, oldest first (ties broken by id).
func (r *Recorder) Active() []ActiveReq {
	if r == nil {
		return nil
	}
	now := time.Now()
	var out []ActiveReq
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for _, q := range s.active {
			if q == nil {
				continue
			}
			out = append(out, ActiveReq{
				ID:          q.id,
				Endpoint:    q.endpoint,
				Algo:        loadStr(&q.algo),
				Phase:       Phase(q.phase.Load()).String(),
				StartUnixNs: q.start.UnixNano(),
				AgeNs:       now.Sub(q.start).Nanoseconds(),
				Traced:      q.trace != nil,
			})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartUnixNs != out[j].StartUnixNs {
			return out[i].StartUnixNs < out[j].StartUnixNs
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ActiveCount reports the number of in-flight requests.
func (r *Recorder) ActiveCount() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n += len(s.active)
		s.mu.Unlock()
	}
	return n
}

// Completed returns the retained records of one class (ClassRecent,
// ClassSlow, ClassError), newest first, at most max (0 = all retained).
// Listings strip span timelines — Lookup serves the full record.
func (r *Recorder) Completed(class string, max int) []ReqRecord {
	recs := r.completed(class)
	for i := range recs {
		recs[i].Trace = nil
	}
	if max > 0 && len(recs) > max {
		recs = recs[:max]
	}
	return recs
}

func (r *Recorder) completed(class string) []ReqRecord {
	if r == nil {
		return nil
	}
	var out []ReqRecord
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		switch class {
		case ClassRecent:
			out = s.recent.appendAll(out)
		case ClassSlow:
			out = s.slow.appendAll(out)
		case ClassError:
			out = s.errs.appendAll(out)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// Lookup finds a completed request by id, with its span timeline when
// one was retained. Classes are searched error → slow → recent, so the
// most detailed retained copy wins; within a class the newest record
// for the id wins.
func (r *Recorder) Lookup(id string) (ReqRecord, bool) {
	if r == nil {
		return ReqRecord{}, false
	}
	var best ReqRecord
	found := false
	for _, class := range [...]string{ClassError, ClassSlow, ClassRecent} {
		for _, rec := range r.completed(class) {
			if rec.ID == id {
				// Prefer a copy that kept its timeline, then the newest.
				if !found || (best.Trace == nil && rec.Trace != nil) {
					best, found = rec, true
				}
			}
		}
		if found && best.Trace != nil {
			return best, true
		}
	}
	return best, found
}

// Events returns the retained event log, newest first, at most max
// (0 = all retained).
func (r *Recorder) Events(max int) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		out = s.events.appendAll(out)
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}
