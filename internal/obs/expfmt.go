package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is a strict reader for the Prometheus text exposition
// format (v0.0.4) — the in-repo contract checker for /metrics.prom.
// It validates structure (HELP/TYPE comment lines, metric and label
// name grammar, quote escaping in label values, parseable sample
// values) and returns the samples so tests can assert semantics
// (counter monotonicity across scrapes, expected families present).

// ExpoSample is one parsed sample line.
type ExpoSample struct {
	Name   string // full sample name (may carry _sum/_count suffix)
	Labels map[string]string
	Value  float64
}

// Key is a stable identity for the sample: name plus sorted labels.
func (s ExpoSample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	names := make([]string, 0, len(s.Labels))
	for n := range s.Labels {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, s.Labels[n])
	}
	b.WriteByte('}')
	return b.String()
}

// ExpoFamily is one parsed metric family.
type ExpoFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ExpoSample
}

var expoTypes = map[string]bool{
	"counter": true, "gauge": true, "summary": true,
	"histogram": true, "untyped": true,
}

// familyOf strips the summary/histogram sample suffixes so samples
// attach to their declaring family.
func familyOf(sample string, families map[string]*ExpoFamily) string {
	for _, suf := range [...]string{"_sum", "_count", "_bucket"} {
		if base, ok := strings.CutSuffix(sample, suf); ok {
			if f := families[base]; f != nil && (f.Type == "summary" || f.Type == "histogram") {
				return base
			}
		}
	}
	return sample
}

// ParseExposition reads and validates a Prometheus text exposition.
// Any grammar violation is an error with the offending line number.
func ParseExposition(r io.Reader) (map[string]*ExpoFamily, error) {
	families := make(map[string]*ExpoFamily)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, families); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		famName := familyOf(s.Name, families)
		f := families[famName]
		if f == nil {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE line", lineNo, s.Name)
		}
		if f.Type == "counter" && s.Value < 0 {
			return nil, fmt.Errorf("line %d: counter %s has negative value %v", lineNo, s.Name, s.Value)
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return families, nil
}

func parseComment(line string, families map[string]*ExpoFamily) error {
	rest, ok := strings.CutPrefix(line, "# ")
	if !ok {
		return nil // bare comment: legal, ignored
	}
	kw, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch kw {
	case "HELP":
		name, help, _ := strings.Cut(rest, " ")
		if !validMetricName(name) {
			return fmt.Errorf("HELP for invalid metric name %q", name)
		}
		f := families[name]
		if f == nil {
			f = &ExpoFamily{Name: name}
			families[name] = f
		}
		if f.Help != "" {
			return fmt.Errorf("duplicate HELP for %s", name)
		}
		f.Help = help
	case "TYPE":
		name, typ, ok := strings.Cut(rest, " ")
		if !ok || !validMetricName(name) {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		if !expoTypes[typ] {
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		f := families[name]
		if f == nil {
			f = &ExpoFamily{Name: name}
			families[name] = f
		}
		if f.Type != "" {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		f.Type = typ
	default:
		return nil // other # comments are legal
	}
	return nil
}

func parseSample(line string) (ExpoSample, error) {
	s := ExpoSample{}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		var err error
		s.Labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return s, fmt.Errorf("sample %s: %w", s.Name, err)
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %s: want value [timestamp], got %q", s.Name, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("sample %s: bad value %q", s.Name, fields[0])
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("sample %s: bad timestamp %q", s.Name, fields[1])
		}
	}
	return s, nil
}

// parseLabels consumes `name="value",...}` and returns the remainder
// of the line after the closing brace.
func parseLabels(rest string) (map[string]string, string, error) {
	labels := make(map[string]string)
	for {
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if rest[0] == '}' {
			return labels, rest[1:], nil
		}
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '=' in %q", rest)
		}
		name := strings.TrimSpace(rest[:eq])
		if !validMetricName(name) || strings.Contains(name, ":") {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", name)
		}
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			return nil, "", fmt.Errorf("label %s: value not quoted", name)
		}
		val, rem, err := parseQuoted(rest[1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %w", name, err)
		}
		labels[name] = val
		rest = rem
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		switch rest[0] {
		case ',':
			rest = rest[1:]
		case '}':
			return labels, rest[1:], nil
		default:
			return nil, "", fmt.Errorf("unexpected %q after label value", rest[0])
		}
	}
}

// parseQuoted consumes a label value after its opening quote,
// honoring the \\, \n and \" escapes of the exposition format.
func parseQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case '"':
				b.WriteByte('"')
			default:
				return "", "", fmt.Errorf("bad escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}
