package mis

import (
	"math/rand"
	"testing"

	"treesched/internal/conflict"
	"treesched/internal/gen"
	"treesched/internal/model"
)

func TestPriorityDeterministicAndUniformish(t *testing.T) {
	a := Priority(1, 5, 10, 2)
	b := Priority(1, 5, 10, 2)
	if a != b {
		t.Fatal("Priority not deterministic")
	}
	if a < 0 || a >= 1 {
		t.Fatalf("Priority %g outside [0,1)", a)
	}
	// Changing any coordinate changes the value (with overwhelming
	// probability for these fixed inputs).
	if Priority(2, 5, 10, 2) == a || Priority(1, 6, 10, 2) == a ||
		Priority(1, 5, 11, 2) == a || Priority(1, 5, 10, 3) == a {
		t.Fatal("Priority collision across coordinates")
	}
	// Crude uniformity check: mean of many draws near 0.5.
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		sum += Priority(7, int32(i), 3, 1)
	}
	mean := sum / float64(n)
	if mean < 0.48 || mean > 0.52 {
		t.Fatalf("mean %g far from 0.5", mean)
	}
}

func TestLubyFuncExplicitImplicitAgree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := gen.TreeProblem(gen.TreeConfig{N: 25, Trees: 2, Demands: 18, Unit: true}, rng)
		m, err := model.Build(p, model.Options{})
		if err != nil {
			t.Fatal(err)
		}
		g := conflict.Build(m)
		im := conflict.BuildImplicit(m)
		active := make([]bool, g.N)
		for i := range active {
			active[i] = rng.Intn(5) > 0
		}
		prio := func(i int32, phase int) float64 {
			return Priority(uint64(seed), i, 9, phase)
		}
		s1, p1 := LubyFunc(g.Adj, active, prio)
		s2, p2 := LubyFuncImplicit(im, active, prio)
		if p1 != p2 || len(s1) != len(s2) {
			t.Fatalf("seed %d: phases %d/%d sizes %d/%d", seed, p1, p2, len(s1), len(s2))
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("seed %d: sets differ at %d", seed, i)
			}
		}
		if err := VerifyMaximalIndependent(g, active, s1); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestLubyFuncMatchesRNGVariantSemantics(t *testing.T) {
	// LubyFunc with priorities drawn from an rng-lookup table must equal
	// Luby run with the same table (both use (prio, index) tie-break).
	rng := rand.New(rand.NewSource(3))
	p := gen.TreeProblem(gen.TreeConfig{N: 20, Trees: 2, Demands: 15, Unit: true}, rng)
	m, err := model.Build(p, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := conflict.Build(m)
	active := make([]bool, g.N)
	for i := range active {
		active[i] = true
	}
	prio := func(i int32, phase int) float64 {
		return Priority(42, i, 1, phase)
	}
	set, phases := LubyFunc(g.Adj, active, prio)
	if phases < 1 || len(set) == 0 {
		t.Fatal("degenerate MIS")
	}
	if err := VerifyMaximalIndependent(g, active, set); err != nil {
		t.Fatal(err)
	}
}
