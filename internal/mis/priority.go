package mis

import (
	"math"

	"treesched/internal/conflict"
)

// Priority returns a deterministic pseudo-random priority in [0,1) for a
// demand instance at a given (step, phase) position of the algorithm. The
// centralized and distributed executors both draw priorities through this
// function, so with equal seeds they compute identical maximal independent
// sets — the equivalence the tests assert.
//
// The generator is splitmix64 over the packed coordinates.
func Priority(seed uint64, inst int32, step uint64, phase int) float64 {
	x := seed
	x ^= uint64(inst) * 0x9E3779B97F4A7C15
	x ^= step * 0xBF58476D1CE4E5B9
	x ^= uint64(phase) * 0x94D049BB133111EB
	// splitmix64 finalizer.
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z = z ^ (z >> 31)
	return float64(z>>11) / float64(1<<53)
}

// LubyFuncImplicit mirrors LubyFunc over a clique cover: winners are the
// per-clique minima by (priority, index), exclusions are clique
// co-members. With the same priority function it returns exactly the same
// set and phase count as LubyFunc on the corresponding explicit graph, at
// O(Σ|clique|) per phase instead of O(edges).
func LubyFuncImplicit(im *conflict.Implicit, active []bool, prio func(i int32, phase int) float64) ([]int32, int) {
	st := make([]state, im.N)
	remaining := 0
	for i := range st {
		if active[i] {
			st[i] = undecided
			remaining++
		} else {
			st[i] = inactive
		}
	}
	p := make([]float64, im.N)
	nc := im.NumCliques()
	top1 := make([]int32, nc)
	var mis []int32
	phase := 0
	better := func(a, b int32) bool {
		return p[a] < p[b] || (p[a] == p[b] && a < b)
	}
	for remaining > 0 {
		phase++
		for i := 0; i < im.N; i++ {
			if st[i] == undecided {
				p[i] = prio(int32(i), phase)
			}
		}
		for k := 0; k < nc; k++ {
			top1[k] = -1
			for _, i := range im.Clique(int32(k)) {
				if st[i] != undecided {
					continue
				}
				if top1[k] < 0 || better(i, top1[k]) {
					top1[k] = i
				}
			}
		}
		var winners []int32
		for i := int32(0); int(i) < im.N; i++ {
			if st[i] != undecided {
				continue
			}
			best := true
			for _, k := range im.CliquesOf[i] {
				if top1[k] != i {
					best = false
					break
				}
			}
			if best {
				winners = append(winners, i)
			}
		}
		for _, i := range winners {
			st[i] = inMIS
			remaining--
			mis = append(mis, i)
		}
		for _, i := range winners {
			for _, k := range im.CliquesOf[i] {
				for _, j := range im.Clique(k) {
					if st[j] == undecided {
						st[j] = excluded
						remaining--
					}
				}
			}
		}
	}
	sortInt32(mis)
	return mis, phase
}

// LubyFunc computes a maximal independent set like Luby, but with
// priorities supplied by prio(vertex, phase) instead of an rng — the hook
// the deterministic distributed/centralized equivalence uses. It returns
// the set (ascending) and the number of phases.
func LubyFunc(adj [][]int32, active []bool, prio func(i int32, phase int) float64) ([]int32, int) {
	n := len(adj)
	st := make([]state, n)
	remaining := 0
	for i := range st {
		if active[i] {
			st[i] = undecided
			remaining++
		} else {
			st[i] = inactive
		}
	}
	p := make([]float64, n)
	var mis []int32
	phase := 0
	for remaining > 0 {
		phase++
		for i := 0; i < n; i++ {
			if st[i] == undecided {
				p[i] = prio(int32(i), phase)
			} else {
				p[i] = math.Inf(1)
			}
		}
		var winners []int32
		for i := int32(0); int(i) < n; i++ {
			if st[i] != undecided {
				continue
			}
			best := true
			for _, j := range adj[i] {
				if st[j] != undecided {
					continue
				}
				if p[j] < p[i] || (p[j] == p[i] && j < i) {
					best = false
					break
				}
			}
			if best {
				winners = append(winners, i)
			}
		}
		for _, i := range winners {
			st[i] = inMIS
			remaining--
			mis = append(mis, i)
		}
		for _, i := range winners {
			for _, j := range adj[i] {
				if st[j] == undecided {
					st[j] = excluded
					remaining--
				}
			}
		}
	}
	sortInt32(mis)
	return mis, phase
}
