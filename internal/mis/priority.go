package mis

import (
	"treesched/internal/conflict"
)

// Priority returns a deterministic pseudo-random priority in [0,1) for a
// demand instance at a given (step, phase) position of the algorithm. The
// centralized and distributed executors both draw priorities through this
// function, so with equal seeds they compute identical maximal independent
// sets — the equivalence the tests assert.
//
// The generator is splitmix64 over the packed coordinates.
func Priority(seed uint64, inst int32, step uint64, phase int) float64 {
	x := seed
	x ^= uint64(inst) * 0x9E3779B97F4A7C15
	x ^= step * 0xBF58476D1CE4E5B9
	x ^= uint64(phase) * 0x94D049BB133111EB
	// splitmix64 finalizer.
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z = z ^ (z >> 31)
	return float64(z>>11) / float64(1<<53)
}

// Scratch holds the reusable state of the deterministic-priority Luby
// routines so a solver calling them once per framework step allocates
// nothing in steady state. A Scratch is single-goroutine; size it for the
// largest (vertex count, clique count) pair it will see. The set returned
// by its methods aliases an internal buffer and is overwritten by the
// next call — callers that retain sets must copy them out.
type Scratch struct {
	st      []state
	prio    []float64
	und     []int32
	winners []int32
	out     []int32
	// Per-clique phase minima, reset lazily: a clique's top1 entry is
	// valid only when its stamp matches the current generation, so phases
	// touch only the cliques of still-undecided vertices.
	top1        []int32
	cliqueStamp []int32
	cliqueGen   int32
}

// NewScratch sizes a scratch for n vertices and numCliques cliques
// (numCliques may be 0 when only the explicit-graph routine is used).
func NewScratch(n, numCliques int) *Scratch {
	return &Scratch{
		st:          make([]state, n),
		prio:        make([]float64, n),
		top1:        make([]int32, numCliques),
		cliqueStamp: make([]int32, numCliques),
	}
}

// ensure re-sizes the buffers for a call on n vertices / nc cliques.
func (s *Scratch) ensure(n, nc int) {
	if cap(s.st) < n {
		s.st = make([]state, n)
		s.prio = make([]float64, n)
	}
	s.st = s.st[:n]
	s.prio = s.prio[:n]
	if cap(s.top1) < nc {
		s.top1 = make([]int32, nc)
		s.cliqueStamp = make([]int32, nc)
	}
	s.top1 = s.top1[:nc]
	s.cliqueStamp = s.cliqueStamp[:nc]
	s.und = s.und[:0]
	s.winners = s.winners[:0]
	s.out = s.out[:0]
}

// initStates seeds the per-vertex states and the ascending undecided
// worklist from the active flags.
func (s *Scratch) initStates(active []bool) {
	for i := range s.st {
		if active[i] {
			s.st[i] = undecided
			s.und = append(s.und, int32(i))
		} else {
			s.st[i] = inactive
		}
	}
}

// compactUndecided drops decided vertices from the worklist, preserving
// ascending order.
func (s *Scratch) compactUndecided() {
	keep := s.und[:0]
	for _, i := range s.und {
		if s.st[i] == undecided {
			keep = append(keep, i)
		}
	}
	s.und = keep
}

// LubyFuncImplicit mirrors LubyFunc over a clique cover: winners are the
// per-clique minima by (priority, index), exclusions are clique
// co-members. With the same priority function it returns exactly the same
// set and phase count as LubyFunc on the corresponding explicit graph.
// Each phase walks only the undecided vertices and their cliques (minima
// accumulated with lazily-stamped per-clique slots), so the cost tracks
// the shrinking frontier rather than the full cover.
func (s *Scratch) LubyFuncImplicit(im *conflict.Implicit, active []bool, prio func(i int32, phase int) float64) ([]int32, int) {
	s.ensure(im.N, im.NumCliques())
	s.initStates(active)
	st, p, top1 := s.st, s.prio, s.top1
	phase := 0
	better := func(a, b int32) bool {
		return p[a] < p[b] || (p[a] == p[b] && a < b)
	}
	for len(s.und) > 0 {
		phase++
		for _, i := range s.und {
			p[i] = prio(i, phase)
		}
		// Ascending accumulation over the undecided worklist reproduces
		// each clique's minimum over its undecided members exactly.
		s.cliqueGen++
		for _, i := range s.und {
			for _, k := range im.CliquesOf.Row(i) {
				if s.cliqueStamp[k] != s.cliqueGen {
					s.cliqueStamp[k] = s.cliqueGen
					top1[k] = i
				} else if better(i, top1[k]) {
					top1[k] = i
				}
			}
		}
		s.winners = s.winners[:0]
		for _, i := range s.und {
			best := true
			for _, k := range im.CliquesOf.Row(i) {
				if top1[k] != i {
					best = false
					break
				}
			}
			if best {
				s.winners = append(s.winners, i)
			}
		}
		for _, i := range s.winners {
			st[i] = inMIS
			s.out = append(s.out, i)
		}
		for _, i := range s.winners {
			for _, k := range im.CliquesOf.Row(i) {
				for _, j := range im.Clique(k) {
					if st[j] == undecided {
						st[j] = excluded
					}
				}
			}
		}
		s.compactUndecided()
	}
	sortInt32(s.out)
	return s.out, phase
}

// LubyFunc computes a maximal independent set like Luby, but with
// priorities supplied by prio(vertex, phase) instead of an rng — the hook
// the deterministic distributed/centralized equivalence uses. It returns
// the set (ascending) and the number of phases.
func (s *Scratch) LubyFunc(adj [][]int32, active []bool, prio func(i int32, phase int) float64) ([]int32, int) {
	s.ensure(len(adj), 0)
	s.initStates(active)
	st, p := s.st, s.prio
	phase := 0
	for len(s.und) > 0 {
		phase++
		// Priorities of decided vertices are never read (the winner scan
		// skips them before comparing), so only the worklist draws.
		for _, i := range s.und {
			p[i] = prio(i, phase)
		}
		s.winners = s.winners[:0]
		for _, i := range s.und {
			best := true
			for _, j := range adj[i] {
				if st[j] != undecided {
					continue
				}
				if p[j] < p[i] || (p[j] == p[i] && j < i) {
					best = false
					break
				}
			}
			if best {
				s.winners = append(s.winners, i)
			}
		}
		for _, i := range s.winners {
			st[i] = inMIS
			s.out = append(s.out, i)
		}
		for _, i := range s.winners {
			for _, j := range adj[i] {
				if st[j] == undecided {
					st[j] = excluded
				}
			}
		}
		s.compactUndecided()
	}
	sortInt32(s.out)
	return s.out, phase
}

// LubyFuncImplicit is the allocating form of Scratch.LubyFuncImplicit;
// the returned set is freshly allocated and safe to retain.
func LubyFuncImplicit(im *conflict.Implicit, active []bool, prio func(i int32, phase int) float64) ([]int32, int) {
	set, phases := NewScratch(im.N, im.NumCliques()).LubyFuncImplicit(im, active, prio)
	out := make([]int32, len(set))
	copy(out, set)
	return out, phases
}

// LubyFunc is the allocating form of Scratch.LubyFunc; the returned set
// is freshly allocated and safe to retain.
func LubyFunc(adj [][]int32, active []bool, prio func(i int32, phase int) float64) ([]int32, int) {
	set, phases := NewScratch(len(adj), 0).LubyFunc(adj, active, prio)
	out := make([]int32, len(set))
	copy(out, set)
	return out, phases
}
