// Package mis implements Luby's randomized maximal independent set
// algorithm [Luby 1986], the MIS subroutine named by the paper for its
// distributed iterations (§5). Two equivalent executions are provided:
//
//   - Luby: over an explicit conflict graph;
//   - LubyImplicit: over a clique cover, aggregating priorities per clique
//     (top-2 minima) so each phase costs O(Σ|clique|) instead of O(edges).
//
// Both draw per-phase priorities for the undecided vertices in increasing
// index order from the caller's rng, so with equal seeds they return
// identical sets — a property the tests rely on.
package mis

import (
	"fmt"
	"math/rand"
	"slices"

	"treesched/internal/conflict"
)

// state tracks per-vertex progress within one MIS computation.
type state uint8

const (
	undecided state = iota
	inMIS
	excluded
	inactive
)

// Luby computes a maximal independent set of the subgraph of g induced by
// active vertices. It returns the set (ascending order) and the number of
// phases used; each phase corresponds to O(1) communication rounds in the
// distributed implementation.
func Luby(g *conflict.Graph, active []bool, rng *rand.Rand) ([]int32, int) {
	st := make([]state, g.N)
	remaining := 0
	for i := range st {
		if active[i] {
			st[i] = undecided
			remaining++
		} else {
			st[i] = inactive
		}
	}
	prio := make([]float64, g.N)
	var mis []int32
	phases := 0
	for remaining > 0 {
		phases++
		for i := 0; i < g.N; i++ {
			if st[i] == undecided {
				prio[i] = rng.Float64()
			}
		}
		// A vertex joins when it beats every undecided neighbor by
		// (priority, index) order.
		var winners []int32
		for i := int32(0); int(i) < g.N; i++ {
			if st[i] != undecided {
				continue
			}
			best := true
			for _, j := range g.Adj[i] {
				if st[j] != undecided {
					continue
				}
				if prio[j] < prio[i] || (prio[j] == prio[i] && j < i) {
					best = false
					break
				}
			}
			if best {
				winners = append(winners, i)
			}
		}
		for _, i := range winners {
			st[i] = inMIS
			remaining--
			mis = append(mis, i)
		}
		for _, i := range winners {
			for _, j := range g.Adj[i] {
				if st[j] == undecided {
					st[j] = excluded
					remaining--
				}
			}
		}
	}
	sortInt32(mis)
	return mis, phases
}

// LubyImplicit runs the same algorithm over a clique cover. Per phase,
// each clique computes its two smallest (priority, index) pairs among
// undecided members; a vertex wins when it is the strict minimum of every
// clique containing it.
func LubyImplicit(im *conflict.Implicit, active []bool, rng *rand.Rand) ([]int32, int) {
	st := make([]state, im.N)
	remaining := 0
	for i := range st {
		if active[i] {
			st[i] = undecided
			remaining++
		} else {
			st[i] = inactive
		}
	}
	prio := make([]float64, im.N)
	nc := im.NumCliques()
	top1 := make([]int32, nc) // index of clique minimum; -1 if none
	var mis []int32
	phases := 0
	better := func(a, b int32) bool {
		return prio[a] < prio[b] || (prio[a] == prio[b] && a < b)
	}
	for remaining > 0 {
		phases++
		for i := 0; i < im.N; i++ {
			if st[i] == undecided {
				prio[i] = rng.Float64()
			}
		}
		for k := 0; k < nc; k++ {
			top1[k] = -1
			for _, i := range im.Clique(int32(k)) {
				if st[i] != undecided {
					continue
				}
				if top1[k] < 0 || better(i, top1[k]) {
					top1[k] = i
				}
			}
		}
		var winners []int32
		for i := int32(0); int(i) < im.N; i++ {
			if st[i] != undecided {
				continue
			}
			best := true
			for _, k := range im.CliquesOf.Row(i) {
				if top1[k] != i {
					best = false
					break
				}
			}
			if best {
				winners = append(winners, i)
			}
		}
		for _, i := range winners {
			st[i] = inMIS
			remaining--
			mis = append(mis, i)
		}
		for _, i := range winners {
			for _, k := range im.CliquesOf.Row(i) {
				for _, j := range im.Clique(k) {
					if st[j] == undecided {
						st[j] = excluded
						remaining--
					}
				}
			}
		}
	}
	sortInt32(mis)
	return mis, phases
}

// Greedy returns the deterministic lowest-index-first MIS, used as a
// reference implementation in tests.
func Greedy(g *conflict.Graph, active []bool) []int32 {
	st := make([]state, g.N)
	for i := range st {
		if !active[i] {
			st[i] = inactive
		}
	}
	var mis []int32
	for i := int32(0); int(i) < g.N; i++ {
		if st[i] != undecided {
			continue
		}
		st[i] = inMIS
		mis = append(mis, i)
		for _, j := range g.Adj[i] {
			if st[j] == undecided {
				st[j] = excluded
			}
		}
	}
	return mis
}

// VerifyMaximalIndependent checks that set is independent in g and maximal
// within the active subgraph.
func VerifyMaximalIndependent(g *conflict.Graph, active []bool, set []int32) error {
	in := make([]bool, g.N)
	for _, i := range set {
		if !active[i] {
			return fmt.Errorf("mis: vertex %d in set but not active", i)
		}
		in[i] = true
	}
	for _, i := range set {
		for _, j := range g.Adj[i] {
			if in[j] {
				return fmt.Errorf("mis: adjacent vertices %d,%d both in set", i, j)
			}
		}
	}
	for i := int32(0); int(i) < g.N; i++ {
		if !active[i] || in[i] {
			continue
		}
		dominated := false
		for _, j := range g.Adj[i] {
			if in[j] {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("mis: active vertex %d neither in set nor dominated", i)
		}
	}
	return nil
}

func sortInt32(s []int32) {
	slices.Sort(s)
}
