package mis

import (
	"math/rand"
	"testing"

	"treesched/internal/conflict"
	"treesched/internal/gen"
	"treesched/internal/model"
)

func buildGraphs(t testing.TB, seed int64) (*model.Model, *conflict.Graph, *conflict.Implicit) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := gen.TreeProblem(gen.TreeConfig{N: 25, Trees: 3, Demands: 20, Unit: true}, rng)
	m, err := model.Build(p, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m, conflict.Build(m), conflict.BuildImplicit(m)
}

func TestLubyProducesMaximalIndependentSets(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		_, g, _ := buildGraphs(t, seed)
		rng := rand.New(rand.NewSource(seed * 31))
		active := make([]bool, g.N)
		for i := range active {
			active[i] = true
		}
		set, phases := Luby(g, active, rng)
		if phases < 1 {
			t.Fatal("no phases")
		}
		if err := VerifyMaximalIndependent(g, active, set); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestLubyRespectsActiveSubset(t *testing.T) {
	_, g, _ := buildGraphs(t, 3)
	rng := rand.New(rand.NewSource(99))
	active := make([]bool, g.N)
	for i := 0; i < g.N; i += 2 {
		active[i] = true
	}
	set, _ := Luby(g, active, rng)
	for _, i := range set {
		if i%2 != 0 {
			t.Fatalf("inactive vertex %d selected", i)
		}
	}
	if err := VerifyMaximalIndependent(g, active, set); err != nil {
		t.Fatal(err)
	}
}

func TestExplicitAndImplicitLubyAgree(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		_, g, im := buildGraphs(t, seed)
		active := make([]bool, g.N)
		rng := rand.New(rand.NewSource(seed))
		for i := range active {
			active[i] = rng.Intn(4) > 0
		}
		r1 := rand.New(rand.NewSource(1234 + seed))
		r2 := rand.New(rand.NewSource(1234 + seed))
		s1, p1 := Luby(g, active, r1)
		s2, p2 := LubyImplicit(im, active, r2)
		if p1 != p2 {
			t.Fatalf("seed %d: phases %d vs %d", seed, p1, p2)
		}
		if len(s1) != len(s2) {
			t.Fatalf("seed %d: sizes %d vs %d", seed, len(s1), len(s2))
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("seed %d: element %d: %d vs %d", seed, i, s1[i], s2[i])
			}
		}
	}
}

func TestGreedyIsMaximalIndependent(t *testing.T) {
	_, g, _ := buildGraphs(t, 5)
	active := make([]bool, g.N)
	for i := range active {
		active[i] = true
	}
	set := Greedy(g, active)
	if err := VerifyMaximalIndependent(g, active, set); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyActiveSet(t *testing.T) {
	_, g, im := buildGraphs(t, 6)
	active := make([]bool, g.N)
	rng := rand.New(rand.NewSource(1))
	if set, phases := Luby(g, active, rng); len(set) != 0 || phases != 0 {
		t.Fatal("empty active set should need 0 phases")
	}
	if set, phases := LubyImplicit(im, active, rng); len(set) != 0 || phases != 0 {
		t.Fatal("implicit: empty active set should need 0 phases")
	}
	if set := Greedy(g, active); len(set) != 0 {
		t.Fatal("greedy on empty active set")
	}
}

func TestVerifierCatchesViolations(t *testing.T) {
	_, g, _ := buildGraphs(t, 7)
	active := make([]bool, g.N)
	for i := range active {
		active[i] = true
	}
	// Non-maximal: empty set with non-empty active graph.
	if err := VerifyMaximalIndependent(g, active, nil); err == nil {
		t.Fatal("verifier accepted empty non-maximal set")
	}
	// Dependent: two adjacent vertices.
	var a int32 = -1
	for i := int32(0); int(i) < g.N; i++ {
		if len(g.Adj[i]) > 0 {
			a = i
			break
		}
	}
	if a >= 0 {
		b := g.Adj[a][0]
		if err := VerifyMaximalIndependent(g, active, []int32{a, b}); err == nil {
			t.Fatal("verifier accepted adjacent pair")
		}
	}
}

func TestLubyPhaseCountIsLogarithmicish(t *testing.T) {
	// Not a strict bound test — just guards against pathological phase
	// explosion: expected phases are O(log N) w.h.p., so 10 trials on a
	// ~60-vertex graph should never need 40 phases.
	for seed := int64(0); seed < 10; seed++ {
		_, g, _ := buildGraphs(t, seed+100)
		active := make([]bool, g.N)
		for i := range active {
			active[i] = true
		}
		_, phases := Luby(g, active, rand.New(rand.NewSource(seed)))
		if phases > 40 {
			t.Fatalf("seed %d: %d phases on %d vertices", seed, phases, g.N)
		}
	}
}

func BenchmarkLubyExplicit(b *testing.B) {
	_, g, _ := buildGraphs(b, 1)
	active := make([]bool, g.N)
	for i := range active {
		active[i] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		_, _ = Luby(g, active, rng)
	}
}

func BenchmarkLubyImplicit(b *testing.B) {
	_, _, im := buildGraphs(b, 1)
	active := make([]bool, im.N)
	for i := range active {
		active[i] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		_, _ = LubyImplicit(im, active, rng)
	}
}
