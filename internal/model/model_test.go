package model

import (
	"math/rand"
	"testing"

	"treesched/internal/gen"
	"treesched/internal/instance"
	"treesched/internal/treedecomp"
)

func TestBuildTreeModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := gen.TreeProblem(gen.TreeConfig{N: 30, Trees: 3, Demands: 20, Unit: true}, rng)
	m, err := Build(p, Options{DecompKind: treedecomp.KindIdeal})
	if err != nil {
		t.Fatal(err)
	}
	if m.Delta > 6 {
		t.Fatalf("∆=%d > 6", m.Delta)
	}
	if m.NumGroups < 1 {
		t.Fatal("no groups")
	}
	if len(m.Decomps) != 3 {
		t.Fatal("decompositions missing")
	}
	if m.EdgeSpace != 3*30 {
		t.Fatalf("edge space %d", m.EdgeSpace)
	}
	total := 0
	for a := 0; a < m.InstsOf.Rows(); a++ {
		insts := m.InstsOf.Row(int32(a))
		total += len(insts)
		for _, i := range insts {
			if int(m.Insts[i].Demand) != a {
				t.Fatal("InstsOf inconsistent")
			}
		}
	}
	if total != len(m.Insts) {
		t.Fatal("InstsOf misses instances")
	}
	if m.PMin <= 0 || m.PMax < m.PMin {
		t.Fatalf("profit range (%g,%g)", m.PMin, m.PMax)
	}
}

func TestBuildLineModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := gen.LineProblem(gen.LineConfig{Slots: 40, Resources: 2, Demands: 15, Unit: true}, rng)
	m, err := Build(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Delta > 3 {
		t.Fatalf("line ∆=%d > 3", m.Delta)
	}
	for i := range m.Insts {
		if m.Paths.RowLen(int32(i)) != int(m.Insts[i].Len()) {
			t.Fatal("line path length mismatch")
		}
	}
}

func TestBuildFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := gen.TreeProblem(gen.TreeConfig{N: 20, Trees: 2, Demands: 15, HMin: 0.1, HMax: 1.0}, rng)
	full, err := Build(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := Build(p, Options{Filter: func(d instance.Inst) bool { return d.Height <= 0.5 }})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Build(p, Options{Filter: func(d instance.Inst) bool { return d.Height > 0.5 }})
	if err != nil {
		t.Fatal(err)
	}
	if len(narrow.Insts)+len(wide.Insts) != len(full.Insts) {
		t.Fatalf("split %d+%d != %d", len(narrow.Insts), len(wide.Insts), len(full.Insts))
	}
	for i := range narrow.Insts {
		if int(narrow.Insts[i].ID) != i {
			t.Fatal("filtered ids not re-numbered")
		}
		if narrow.Insts[i].Height > 0.5 {
			t.Fatal("filter leaked wide instance")
		}
	}
}

func TestEffHeightWithCapacities(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := gen.LineProblem(gen.LineConfig{Slots: 10, Resources: 1, Demands: 5, HMin: 0.4, HMax: 0.4}, rng)
	p.Capacities = [][]float64{make([]float64, 10)}
	for e := range p.Capacities[0] {
		p.Capacities[0][e] = 2
	}
	m, err := Build(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Insts {
		if got := m.EffHeight(int32(i)); got != 0.2 {
			t.Fatalf("eff height %g want 0.2", got)
		}
	}
}

func TestConflictPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := gen.TreeProblem(gen.TreeConfig{N: 15, Trees: 2, Demands: 10, Unit: true}, rng)
	m, err := Build(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); int(i) < len(m.Insts); i++ {
		for j := int32(0); int(j) < len(m.Insts); j++ {
			if i == j {
				continue
			}
			got := m.Conflict(i, j)
			want := m.Insts[i].Demand == m.Insts[j].Demand || m.P.Overlap(m.Insts[i], m.Insts[j])
			if got != want {
				t.Fatalf("Conflict(%d,%d)=%v want %v", i, j, got, want)
			}
		}
	}
}

func TestBuildRejectsInvalidProblem(t *testing.T) {
	p := &instance.Problem{Kind: instance.KindTree}
	if _, err := Build(p, Options{}); err == nil {
		t.Fatal("accepted invalid problem")
	}
}
