// Package model compiles a Problem into the flat representation the
// two-phase framework (internal/core) operates on: demand instances with
// materialized global-edge paths, critical edge sets π(d), layer groups,
// per-edge capacities, and per-demand instance lists.
//
// Compiling once up front keeps the framework generic over tree and line
// problems and over full or filtered (e.g. narrow-only, wide-only)
// instance sets.
package model

import (
	"fmt"
	"time"

	"treesched/internal/instance"
	"treesched/internal/layered"
	"treesched/internal/par"
	"treesched/internal/treedecomp"
)

// Model is the compiled form of a (sub)problem.
type Model struct {
	P     *instance.Problem
	Insts []instance.Inst

	// Paths row i lists the global edge ids of instance i's path.
	Paths CSR
	// Pi row i is the critical edge set π(d) of instance i (⊆ path).
	Pi CSR
	// Group[i] is the 1-based layer group (epoch) of instance i.
	Group     []int32
	NumGroups int
	// Delta is max |π(d)|: 6 for ideal tree decompositions, 3 for lines.
	Delta int

	// Cap[e] is the capacity of global edge e (all 1 in the paper's core
	// setting); MaxCap is its maximum, precomputed for the Capacitated
	// rule's per-raise objective bound.
	Cap    []float64
	MaxCap float64

	// InstsOf row a lists the instance indices of demand a (possibly
	// empty for filtered models).
	InstsOf CSR
	// GroupInsts row g-1 lists the instances of layer group g, ascending
	// — the per-epoch bucket Phase1 scans instead of all instances.
	GroupInsts CSR
	// EdgeInsts row e lists the instances whose path contains edge e,
	// ascending — the inverse of Paths. It drives the delta-driven
	// Phase1 re-evaluation and the edge cliques of the conflict cover.
	EdgeInsts CSR

	NumDemands int
	EdgeSpace  int

	PMin, PMax float64 // profit range over Insts
	HMin       float64 // minimum height over Insts

	// Decomps holds the tree decompositions used (nil for line problems),
	// exposed for experiments.
	Decomps []*treedecomp.Decomposition

	// captureWings records Options.CaptureWingsPi and filtered records a
	// non-nil Options.Filter (or a FilterCopy). WithDelta requires a full
	// model — neither flag set — because it copies rows for surviving
	// demands assuming the Lemma 4.2 critical sets over the complete
	// expansion.
	captureWings bool
	filtered     bool
}

// Options configures compilation.
type Options struct {
	// DecompKind selects the tree decomposition (ignored for lines).
	// Default: KindIdeal.
	DecompKind treedecomp.Kind
	// Decomps, when non-nil, reuses prebuilt tree decompositions instead
	// of rebuilding them — they depend only on the trees and DecompKind,
	// so sub-model builds (e.g. the §6 wide/narrow split) share the full
	// model's. Must match p.Trees and DecompKind.
	Decomps []*treedecomp.Decomposition
	// Filter, when non-nil, keeps only instances where Filter(inst) is
	// true (used for the wide/narrow split of §6).
	Filter func(instance.Inst) bool
	// CaptureWingsPi selects the Appendix-A critical sets (wings of the
	// capture node only, ∆ ≤ 2) instead of the Lemma 4.2 sets. Only the
	// sequential algorithm may use this; tree problems only.
	CaptureWingsPi bool
	// Workers bounds the compile fan-out: 0 = GOMAXPROCS, 1 (or below) =
	// the serial path, n = n workers. The built model is byte-identical
	// at every setting — shard boundaries are fixed functions of index
	// and results are stitched in index order — so Workers only chooses
	// how many cores the build spends, never what it produces. Workers=1
	// is kept as the equivalence oracle (plain loops, no goroutines).
	Workers int
	// Stats, when non-nil, receives the per-phase wall-clock breakdown of
	// this build (decomposition / layering / paths / indexes). The hook
	// behind the BENCH_core compile-phase columns; works at any Workers
	// setting so the serial breakdown anchors the parallel one.
	Stats *BuildStats
}

// BuildStats is the per-phase wall-clock breakdown of one Build call.
type BuildStats struct {
	// DecompNs is the tree-decomposition phase (0 for lines or when
	// prebuilt decompositions were supplied via Options.Decomps).
	DecompNs int64 `json:"decomp_ns"`
	// LayerNs is the layered row construction (groups + critical sets).
	LayerNs int64 `json:"layer_ns"`
	// PathNs is the path materialization into the Paths CSR.
	PathNs int64 `json:"path_ns"`
	// IndexNs covers capacities, the consistency check and the derived
	// indexes (InstsOf/GroupInsts/EdgeInsts).
	IndexNs int64 `json:"index_ns"`
	// TotalNs is the whole Build call.
	TotalNs int64 `json:"total_ns"`
}

// phase records the elapsed time since *last into dst and resets *last —
// the four calls a Build makes cost nanoseconds next to any phase.
func (s *BuildStats) phase(dst *int64, last *time.Time) {
	now := time.Now() //schedlint:statsonly BuildStats is observational; TestBuildStatsDoesNotInfluenceModel pins that it never shapes the model
	*dst += now.Sub(*last).Nanoseconds()
	*last = now
}

// Build compiles p. The instance set is p.Expand() filtered by
// opts.Filter.
func Build(p *instance.Problem, opts Options) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	insts := p.Expand()
	if opts.Filter != nil {
		kept := insts[:0:0]
		for _, d := range insts {
			if opts.Filter(d) {
				kept = append(kept, d)
			}
		}
		insts = kept
		// Re-number ids to stay dense.
		for i := range insts {
			insts[i].ID = int32(i)
		}
	}

	m := &Model{
		P:            p,
		Insts:        insts,
		NumDemands:   len(p.Demands),
		EdgeSpace:    p.EdgeSpace(),
		captureWings: opts.CaptureWingsPi,
		filtered:     opts.Filter != nil,
	}

	workers := par.Resolve(opts.Workers)
	stats := opts.Stats
	if stats == nil {
		stats = &BuildStats{} // throwaway: keeps the phase marks branch-free
	}
	last := time.Now() //schedlint:statsonly phase-mark anchor for BuildStats; model bytes are clock-independent
	begin := last

	var asg *layered.Assignment
	var err error
	if p.Kind == instance.KindTree {
		if opts.Decomps != nil {
			m.Decomps = opts.Decomps
		} else {
			m.Decomps = treedecomp.BuildAll(p.Trees, opts.DecompKind, workers)
		}
		stats.phase(&stats.DecompNs, &last)
		if opts.CaptureWingsPi {
			asg, err = layered.ForTreesCaptureWingsSharded(p, insts, m.Decomps, workers)
		} else {
			asg, err = layered.ForTreesSharded(p, insts, m.Decomps, workers)
		}
	} else {
		if opts.CaptureWingsPi {
			return nil, fmt.Errorf("model: CaptureWingsPi is tree-only")
		}
		asg, err = layered.ForLinesSharded(p, insts, workers)
	}
	if err != nil {
		return nil, err
	}
	m.Pi = NewCSR(asg.Pi)
	m.Group = asg.Group
	stats.phase(&stats.LayerNs, &last)

	m.Paths = buildPaths(p, insts, workers)
	stats.phase(&stats.PathNs, &last)

	m.Cap = make([]float64, m.EdgeSpace)
	for e := range m.Cap {
		m.Cap[e] = p.Capacity(int32(e))
		if m.Cap[e] > m.MaxCap {
			m.MaxCap = m.Cap[e]
		}
	}

	if err := m.finalize(workers); err != nil {
		return nil, err
	}
	stats.phase(&stats.IndexNs, &last)
	stats.TotalNs += time.Since(begin).Nanoseconds() //schedlint:statsonly BuildStats.TotalNs is observational only
	return m, nil
}

// pathShard is the instances-per-shard granule of the parallel path fill
// (cheap per-instance work: one LCA walk or a slot loop).
const pathShard = 1024

// buildPaths materializes every instance path into one exactly-sized CSR:
// a counted first pass over PathLen fixes each row's offset (replacing
// the grow-by-append build, measurable by itself at the 10^5-instance
// presets), then the rows are filled in place — sharded across workers,
// each shard writing only its own rows, so the slab is byte-identical at
// any fan-out.
func buildPaths(p *instance.Problem, insts []instance.Inst, workers int) CSR {
	off := make([]int32, len(insts)+1)
	par.Shards(workers, len(insts), pathShard, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			off[i+1] = int32(p.PathLen(insts[i]))
		}
	})
	for i := 0; i < len(insts); i++ {
		off[i+1] += off[i]
	}
	data := make([]int32, off[len(insts)])
	par.Shards(workers, len(insts), pathShard, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p.FillPathEdges(data[off[i]:off[i+1]], insts[i])
		}
	})
	return CSR{Off: off, Data: data}
}

// finalize computes everything derivable from a model whose Insts, Paths,
// Pi, Group and Cap are in place: the Delta and NumGroups scalars, the
// profit/height ranges, the internal consistency check, and the
// InstsOf/GroupInsts/EdgeInsts indexes. Build and the incremental
// rebuilds (WithDelta, FilterCopy) share it, so a delta-built model's
// derived state is computed by the exact code a fresh Build runs.
//
// With workers > 1 the independent pieces run concurrently — first
// {InstsOf, check} (neither reads the other), then, only on a validated
// model, {GroupInsts, EdgeInsts} — each writing its own field, so the
// derived state is identical to the serial order.
func (m *Model) finalize(workers int) error {
	m.deriveScalars()
	var checkErr error
	par.Go(workers,
		func() {
			//schedlint:owned this thunk is the sole writer of m.InstsOf; m is local to finalize's caller chain
			m.InstsOf = BucketCSR(m.NumDemands, len(m.Insts), func(i int32) int32 {
				return m.Insts[i].Demand
			})
		},
		//schedlint:owned sole writer of checkErr; read only after par.Go returns
		func() { checkErr = m.check() },
	)
	if checkErr != nil {
		return checkErr
	}
	// The derived indexes are built after check so their bucket functions
	// only see validated groups and edge ids.
	par.Go(workers,
		func() {
			//schedlint:owned sole writer of m.GroupInsts; sibling thunk writes only m.EdgeInsts
			m.GroupInsts = BucketCSR(m.NumGroups, len(m.Insts), func(i int32) int32 {
				return m.Group[i] - 1
			})
		},
		//schedlint:owned sole writer of m.EdgeInsts; sibling thunk writes only m.GroupInsts
		func() { m.EdgeInsts = InvertCSR(&m.Paths, m.EdgeSpace) },
	)
	return nil
}

// deriveScalars computes the scalars derivable from Insts/Pi/Group:
// Delta, NumGroups and the profit/height ranges. Shared by finalize and
// the incremental rebuild so a scalar added here reaches both paths.
func (m *Model) deriveScalars() {
	m.Delta, m.NumGroups = 0, 0
	m.PMin, m.PMax, m.HMin = 0, 0, 0
	for i, d := range m.Insts {
		if l := m.Pi.RowLen(int32(i)); l > m.Delta {
			m.Delta = l
		}
		if g := int(m.Group[i]); g > m.NumGroups {
			m.NumGroups = g
		}
		if i == 0 || d.Profit < m.PMin {
			m.PMin = d.Profit
		}
		if i == 0 || d.Profit > m.PMax {
			m.PMax = d.Profit
		}
		if i == 0 || d.Height < m.HMin {
			m.HMin = d.Height
		}
	}
}

// check validates internal consistency (π ⊆ path, groups in range). The
// path-membership test uses one reusable seen-stamp slice — stamping edge
// e with instance i marks "e on path(i)" without a per-instance map.
func (m *Model) check() error {
	seen := make([]int32, m.EdgeSpace)
	for e := range seen {
		seen[e] = -1
	}
	for i := range m.Insts {
		if m.Group[i] < 1 || int(m.Group[i]) > m.NumGroups {
			return fmt.Errorf("model: instance %d group %d outside 1..%d", i, m.Group[i], m.NumGroups)
		}
		for _, e := range m.Paths.Row(int32(i)) {
			if e < 0 || int(e) >= m.EdgeSpace {
				return fmt.Errorf("model: instance %d path edge %d outside edge space %d", i, e, m.EdgeSpace)
			}
			seen[e] = int32(i)
		}
		for _, e := range m.Pi.Row(int32(i)) {
			if e < 0 || int(e) >= m.EdgeSpace || seen[e] != int32(i) {
				return fmt.Errorf("model: instance %d critical edge %d not on its path", i, e)
			}
		}
	}
	return nil
}

// Conflict reports whether instances i and j conflict (same demand or
// overlapping paths).
func (m *Model) Conflict(i, j int32) bool {
	return m.P.Conflict(m.Insts[i], m.Insts[j])
}

// TotalProfit sums the profits of the given instance indices.
func (m *Model) TotalProfit(sel []int32) float64 {
	sum := 0.0
	for _, i := range sel {
		sum += m.Insts[i].Profit
	}
	return sum
}

// EffHeight returns the effective (capacity-normalized) height of instance
// i: max over its path of Height/Cap(e). With uniform unit capacities this
// is just the height.
func (m *Model) EffHeight(i int32) float64 {
	h := m.Insts[i].Height
	max := 0.0
	for _, e := range m.Paths.Row(i) {
		if v := h / m.Cap[e]; v > max {
			max = v
		}
	}
	return max
}
