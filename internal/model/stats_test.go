package model

import (
	"math/rand"
	"reflect"
	"testing"

	"treesched/internal/gen"
	"treesched/internal/instance"
	"treesched/internal/treedecomp"
)

// TestBuildStatsDoesNotInfluenceModel pins the //schedlint:statsonly
// rationale on Build's clock reads: BuildStats is pure observation, so
// a model built with stats collection attached must be deeply identical
// to one built without. If a timing value ever leaked into compilation
// (a phase ordered by elapsed time, a capacity rounded by a timestamp),
// this test fails before the wallclock annotation goes stale.
func TestBuildStatsDoesNotInfluenceModel(t *testing.T) {
	problems := map[string]*instance.Problem{
		"tree": gen.TreeProblem(gen.TreeConfig{N: 30, Trees: 3, Demands: 20, Unit: true}, rand.New(rand.NewSource(7))),
		"line": gen.LineProblem(gen.LineConfig{Slots: 40, Resources: 2, Demands: 15, Unit: true}, rand.New(rand.NewSource(7))),
	}
	for name, p := range problems {
		opts := Options{}
		if p.Kind == instance.KindTree {
			opts.DecompKind = treedecomp.KindIdeal
		}
		bare, err := Build(p, opts)
		if err != nil {
			t.Fatalf("%s: build without stats: %v", name, err)
		}
		stats := &BuildStats{}
		opts.Stats = stats
		observed, err := Build(p, opts)
		if err != nil {
			t.Fatalf("%s: build with stats: %v", name, err)
		}
		if stats.TotalNs <= 0 {
			t.Errorf("%s: stats were not collected (TotalNs=%d)", name, stats.TotalNs)
		}
		if !reflect.DeepEqual(bare, observed) {
			t.Errorf("%s: model built with BuildStats attached differs from one built without", name)
		}
	}
}
