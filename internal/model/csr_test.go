package model

import (
	"reflect"
	"testing"
)

func TestNewCSRRoundTrip(t *testing.T) {
	rows := [][]int32{{3, 1}, {}, {2}, {5, 5, 0}}
	c := NewCSR(rows)
	if c.Rows() != len(rows) {
		t.Fatalf("rows %d want %d", c.Rows(), len(rows))
	}
	for i, want := range rows {
		got := c.Row(int32(i))
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("row %d = %v want %v", i, got, want)
		}
		if c.RowLen(int32(i)) != len(want) {
			t.Fatalf("rowlen %d = %d want %d", i, c.RowLen(int32(i)), len(want))
		}
	}
	var empty CSR
	if empty.Rows() != 0 {
		t.Fatalf("zero CSR has %d rows", empty.Rows())
	}
}

func TestBucketCSRPreservesOrder(t *testing.T) {
	// Items 0..5 into buckets by parity: evens to 0, odds to 1.
	c := BucketCSR(2, 6, func(i int32) int32 { return i % 2 })
	if got := c.Row(0); !reflect.DeepEqual(got, []int32{0, 2, 4}) {
		t.Fatalf("bucket 0 = %v", got)
	}
	if got := c.Row(1); !reflect.DeepEqual(got, []int32{1, 3, 5}) {
		t.Fatalf("bucket 1 = %v", got)
	}
}

func TestInvertCSRIsTranspose(t *testing.T) {
	c := NewCSR([][]int32{{0, 2}, {2}, {1, 0}})
	inv := InvertCSR(&c, 3)
	want := [][]int32{{0, 2}, {2}, {0, 1}}
	for v, w := range want {
		if got := inv.Row(int32(v)); !reflect.DeepEqual(got, w) {
			t.Fatalf("inv row %d = %v want %v", v, got, w)
		}
	}
	// Membership must be exactly inverted.
	total := 0
	for i := 0; i < c.Rows(); i++ {
		total += c.RowLen(int32(i))
	}
	if len(inv.Data) != total {
		t.Fatalf("inverse has %d entries, want %d", len(inv.Data), total)
	}
}
