package model

import (
	"reflect"
	"testing"

	"treesched/internal/instance"
	"treesched/internal/scenario"
)

// parallelTestProblems materializes every registered scenario (scale
// presets sized down — determinism is size-independent) for the
// parallel-build equivalence checks.
func parallelTestProblems(t *testing.T) map[string]*instance.Problem {
	t.Helper()
	out := map[string]*instance.Problem{}
	for _, s := range scenario.All() {
		params := scenario.Params{}
		if s.Scale {
			params = scenario.Params{Demands: 48, Size: 64, Networks: 8}
		}
		p, err := s.Generate(params, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		out[s.Name] = p
	}
	return out
}

// TestBuildParallelMatchesSerial is the model-layer determinism
// contract: Build at any Workers setting returns a model deep-equal to
// the serial build. Shard boundaries are fixed functions of the
// instance index and every reduction runs serially, so there is nothing
// scheduling-dependent to leak — this test is what lets every caller
// treat Workers as a pure wall-clock knob. Worker counts deliberately
// include one above GOMAXPROCS and one that does not divide the typical
// instance counts evenly.
func TestBuildParallelMatchesSerial(t *testing.T) {
	for name, p := range parallelTestProblems(t) {
		want, err := Build(p, Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: serial build: %v", name, err)
		}
		for _, w := range []int{2, 0, 7} {
			got, err := Build(p, Options{Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: build with Workers=%d differs from serial build", name, w)
			}
		}
	}
}

// TestBuildPathsPreallocated pins the counted-first-pass property of the
// path CSR: Data is allocated at exactly its final size, never grown.
func TestBuildPathsPreallocated(t *testing.T) {
	for name, p := range parallelTestProblems(t) {
		for _, w := range []int{1, 0} {
			m, err := Build(p, Options{Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if cap(m.Paths.Data) != len(m.Paths.Data) {
				t.Fatalf("%s workers=%d: Paths.Data cap %d != len %d (not preallocated)",
					name, w, cap(m.Paths.Data), len(m.Paths.Data))
			}
			if got, want := len(m.Paths.Off), len(m.Insts)+1; got != want {
				t.Fatalf("%s workers=%d: Paths.Off len %d, want %d", name, w, got, want)
			}
		}
	}
}

// TestBuildStatsBreakdown checks the per-phase instrumentation: every
// phase is non-negative, the total covers the phases, and the breakdown
// is recorded in serial mode too (it is the anchor the parallel columns
// of BENCH_core are judged against).
func TestBuildStatsBreakdown(t *testing.T) {
	for name, p := range parallelTestProblems(t) {
		for _, w := range []int{1, 0} {
			var st BuildStats
			if _, err := Build(p, Options{Workers: w, Stats: &st}); err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if st.TotalNs <= 0 {
				t.Fatalf("%s workers=%d: TotalNs = %d, want > 0", name, w, st.TotalNs)
			}
			for phase, ns := range map[string]int64{
				"decomp": st.DecompNs, "layer": st.LayerNs,
				"path": st.PathNs, "index": st.IndexNs,
			} {
				if ns < 0 {
					t.Fatalf("%s workers=%d: %s = %d ns, want >= 0", name, w, phase, ns)
				}
			}
			if sum := st.DecompNs + st.LayerNs + st.PathNs + st.IndexNs; sum > st.TotalNs {
				t.Fatalf("%s workers=%d: phase sum %d ns exceeds total %d ns", name, w, sum, st.TotalNs)
			}
			if p.Kind == instance.KindTree && st.LayerNs == 0 && len(p.Demands) > 0 {
				t.Fatalf("%s workers=%d: tree build recorded no layering time", name, w)
			}
		}
	}
}
