package model

// CSR is a compact slice-of-slices: row i is Data[Off[i]:Off[i+1]]. The
// whole structure is two allocations regardless of row count, rows are
// contiguous in memory (cache-linear iteration over consecutive rows),
// and rebuilding it in place costs no per-row allocation — the layout the
// solver hot path iterates millions of times per second. Rows share one
// backing array: callers must not append to a returned row.
type CSR struct {
	// Off has one entry per row plus a terminator: len(Off) = Rows()+1.
	Off []int32
	// Data holds the concatenated rows.
	Data []int32
}

// Rows returns the number of rows.
func (c *CSR) Rows() int {
	if len(c.Off) == 0 {
		return 0
	}
	return len(c.Off) - 1
}

// Row returns row i as a view into the shared backing array.
func (c *CSR) Row(i int32) []int32 {
	return c.Data[c.Off[i]:c.Off[i+1]]
}

// RowLen returns len(Row(i)) without materializing the slice header.
func (c *CSR) RowLen(i int32) int {
	return int(c.Off[i+1] - c.Off[i])
}

// NewCSR flattens rows into a CSR (two allocations, rows copied in
// order).
func NewCSR(rows [][]int32) CSR {
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	c := CSR{
		Off:  make([]int32, len(rows)+1),
		Data: make([]int32, 0, total),
	}
	for i, r := range rows {
		c.Data = append(c.Data, r...)
		c.Off[i+1] = int32(len(c.Data))
	}
	return c
}

// BucketCSR distributes items 0..n-1 into numRows buckets by rowOf; each
// row lists its items in ascending order. Two passes, two allocations.
func BucketCSR(numRows, n int, rowOf func(i int32) int32) CSR {
	counts := make([]int32, numRows+1)
	for i := int32(0); int(i) < n; i++ {
		counts[rowOf(i)+1]++
	}
	for r := 0; r < numRows; r++ {
		counts[r+1] += counts[r]
	}
	c := CSR{Off: counts, Data: make([]int32, n)}
	next := make([]int32, numRows)
	copy(next, c.Off[:numRows])
	for i := int32(0); int(i) < n; i++ {
		r := rowOf(i)
		c.Data[next[r]] = i
		next[r]++
	}
	return c
}

// InvertCSR builds the transpose membership index of c: row v of the
// result lists, in ascending order, every row of c that contains value v.
// All values of c must lie in [0, numRows).
func InvertCSR(c *CSR, numRows int) CSR {
	counts := make([]int32, numRows+1)
	for _, v := range c.Data {
		counts[v+1]++
	}
	for r := 0; r < numRows; r++ {
		counts[r+1] += counts[r]
	}
	inv := CSR{Off: counts, Data: make([]int32, len(c.Data))}
	next := make([]int32, numRows)
	copy(next, inv.Off[:numRows])
	for i := 0; i < c.Rows(); i++ {
		for _, v := range c.Row(int32(i)) {
			inv.Data[next[v]] = int32(i)
			next[v]++
		}
	}
	return inv
}
