package model

import (
	"math/rand"
	"slices"
	"testing"

	"treesched/internal/gen"
	"treesched/internal/instance"
)

// splice builds the effective problem after removing the demand ids in
// removed (a set) and appending added, renumbering ids densely, together
// with the oldOf provenance WithDelta consumes.
func splice(base *instance.Problem, removed map[int]bool, added []instance.Demand) (*instance.Problem, []int32) {
	np := *base
	np.Demands = nil
	var oldOf []int32
	for i, d := range base.Demands {
		if removed[i] {
			continue
		}
		d.ID = len(np.Demands)
		np.Demands = append(np.Demands, d)
		oldOf = append(oldOf, int32(i))
	}
	for _, d := range added {
		d.ID = len(np.Demands)
		np.Demands = append(np.Demands, d)
		oldOf = append(oldOf, -1)
	}
	return &np, oldOf
}

func csrEqual(t *testing.T, name string, got, want CSR) {
	t.Helper()
	if !slices.Equal(got.Off, want.Off) {
		t.Fatalf("%s.Off mismatch:\n got %v\nwant %v", name, got.Off, want.Off)
	}
	if !slices.Equal(got.Data, want.Data) {
		t.Fatalf("%s.Data mismatch:\n got %v\nwant %v", name, got.Data, want.Data)
	}
}

// modelsEqual asserts every field a solver reads is identical.
func modelsEqual(t *testing.T, got, want *Model) {
	t.Helper()
	if !slices.Equal(got.Insts, want.Insts) {
		t.Fatalf("Insts mismatch:\n got %v\nwant %v", got.Insts, want.Insts)
	}
	csrEqual(t, "Paths", got.Paths, want.Paths)
	csrEqual(t, "Pi", got.Pi, want.Pi)
	if !slices.Equal(got.Group, want.Group) {
		t.Fatalf("Group mismatch:\n got %v\nwant %v", got.Group, want.Group)
	}
	if got.NumGroups != want.NumGroups || got.Delta != want.Delta {
		t.Fatalf("NumGroups/Delta = %d/%d, want %d/%d", got.NumGroups, got.Delta, want.NumGroups, want.Delta)
	}
	if !slices.Equal(got.Cap, want.Cap) || got.MaxCap != want.MaxCap {
		t.Fatalf("capacity mismatch")
	}
	csrEqual(t, "InstsOf", got.InstsOf, want.InstsOf)
	csrEqual(t, "GroupInsts", got.GroupInsts, want.GroupInsts)
	csrEqual(t, "EdgeInsts", got.EdgeInsts, want.EdgeInsts)
	if got.NumDemands != want.NumDemands || got.EdgeSpace != want.EdgeSpace {
		t.Fatalf("NumDemands/EdgeSpace = %d/%d, want %d/%d", got.NumDemands, got.EdgeSpace, want.NumDemands, want.EdgeSpace)
	}
	if got.PMin != want.PMin || got.PMax != want.PMax || got.HMin != want.HMin {
		t.Fatalf("ranges = (%g,%g,%g), want (%g,%g,%g)", got.PMin, got.PMax, got.HMin, want.PMin, want.PMax, want.HMin)
	}
}

// deltaProblems returns (base problem, reservoir of addable demands) per
// tested configuration.
func deltaProblems(seed int64) map[string][2]*instance.Problem {
	out := map[string][2]*instance.Problem{}
	rng := rand.New(rand.NewSource(seed))
	tp := gen.TreeProblem(gen.TreeConfig{N: 24, Trees: 2, Demands: 40, HMin: 0.1, HMax: 1.0, AccessProb: 0.6}, rng)
	rng = rand.New(rand.NewSource(seed))
	tc := gen.TreeProblem(gen.TreeConfig{N: 24, Trees: 2, Demands: 40, HMin: 0.1, HMax: 1.0, Capacity: 1.5, CapJitter: 0.4, AccessProb: 0.6}, rng)
	rng = rand.New(rand.NewSource(seed))
	lp := gen.LineProblem(gen.LineConfig{Slots: 30, Resources: 2, Demands: 40, Unit: true, AccessProb: 0.6}, rng)
	for name, pool := range map[string]*instance.Problem{"tree": tp, "tree-cap": tc, "line": lp} {
		base := *pool
		base.Demands = append([]instance.Demand(nil), pool.Demands[:20]...)
		reservoir := *pool
		reservoir.Demands = append([]instance.Demand(nil), pool.Demands[20:]...)
		out[name] = [2]*instance.Problem{&base, &reservoir}
	}
	return out
}

// TestWithDeltaMatchesBuild drives chains of demand splices and asserts
// the incrementally rebuilt model is field-for-field identical to a fresh
// Build of the effective problem.
func TestWithDeltaMatchesBuild(t *testing.T) {
	for name, pair := range deltaProblems(7) {
		t.Run(name, func(t *testing.T) {
			cur, reservoir := pair[0], pair[1].Demands
			m, err := Build(cur, Options{})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			next := 0
			for round := 0; round < 6; round++ {
				removed := map[int]bool{}
				nRemove := rng.Intn(1 + len(cur.Demands)/4)
				for len(removed) < nRemove {
					removed[rng.Intn(len(cur.Demands))] = true
				}
				var added []instance.Demand
				for k := rng.Intn(4); k > 0 && next < len(reservoir); k-- {
					added = append(added, reservoir[next])
					next++
				}
				np, oldOf := splice(cur, removed, added)
				got, err := m.WithDelta(np, oldOf)
				if err != nil {
					t.Fatalf("round %d: WithDelta: %v", round, err)
				}
				want, err := Build(np, Options{Decomps: m.Decomps})
				if err != nil {
					t.Fatalf("round %d: Build: %v", round, err)
				}
				modelsEqual(t, got, want)
				cur, m = np, got // chain: the next delta rebuilds a delta-built model
			}
		})
	}
}

// TestWithDeltaRemoveAll drains every demand and rebuilds from empty.
func TestWithDeltaRemoveAll(t *testing.T) {
	pair := deltaProblems(3)["line"]
	cur := pair[0]
	m, err := Build(cur, Options{})
	if err != nil {
		t.Fatal(err)
	}
	removed := map[int]bool{}
	for i := range cur.Demands {
		removed[i] = true
	}
	np, oldOf := splice(cur, removed, nil)
	got, err := m.WithDelta(np, oldOf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Insts) != 0 || got.NumGroups != 0 {
		t.Fatalf("empty delta model has %d insts, %d groups", len(got.Insts), got.NumGroups)
	}
	// And adding back onto the empty model works.
	np2, oldOf2 := splice(np, nil, pair[1].Demands[:5])
	got2, err := got.WithDelta(np2, oldOf2)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := Build(np2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	modelsEqual(t, got2, want2)
}

// TestWithDeltaRejects covers the guard rails: filtered models, payload
// drift and ID renumbering mistakes are refused.
func TestWithDeltaRejects(t *testing.T) {
	pair := deltaProblems(5)["tree"]
	cur := pair[0]
	m, err := Build(cur, Options{})
	if err != nil {
		t.Fatal(err)
	}

	sub, err := m.FilterCopy(func(d instance.Inst) bool { return d.Height > 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	np, oldOf := splice(cur, map[int]bool{0: true}, nil)
	if _, err := sub.WithDelta(np, oldOf); err == nil {
		t.Fatal("WithDelta on a filtered model did not error")
	}

	// Payload drift: claim to copy demand 0 but change its profit.
	np2, oldOf2 := splice(cur, nil, nil)
	np2.Demands[0].Profit++
	if _, err := m.WithDelta(np2, oldOf2); err == nil {
		t.Fatal("WithDelta with drifted payload did not error")
	}

	// Bad renumbering.
	np3, oldOf3 := splice(cur, nil, nil)
	np3.Demands[1].ID = 7
	if _, err := m.WithDelta(np3, oldOf3); err == nil {
		t.Fatal("WithDelta with bad IDs did not error")
	}
}

// TestFilterCopyMatchesBuild compares row-copied sub-models against
// filtered Builds for both partitions of the wide/narrow split.
func TestFilterCopyMatchesBuild(t *testing.T) {
	for name, pair := range deltaProblems(13) {
		t.Run(name, func(t *testing.T) {
			p := pair[0]
			m, err := Build(p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			wide := make([]bool, len(p.Demands))
			for i := range m.Insts {
				if m.EffHeight(int32(i)) > 0.5 {
					wide[m.Insts[i].Demand] = true
				}
			}
			for _, tc := range []struct {
				name string
				keep func(instance.Inst) bool
			}{
				{"wide", func(d instance.Inst) bool { return wide[d.Demand] }},
				{"narrow", func(d instance.Inst) bool { return !wide[d.Demand] }},
				{"none", func(d instance.Inst) bool { return false }},
			} {
				got, err := m.FilterCopy(tc.keep)
				if err != nil {
					t.Fatalf("%s: FilterCopy: %v", tc.name, err)
				}
				want, err := Build(p, Options{Decomps: m.Decomps, Filter: tc.keep})
				if err != nil {
					t.Fatalf("%s: Build: %v", tc.name, err)
				}
				modelsEqual(t, got, want)
			}
		})
	}
}
