package model

// Incremental model rebuilds. A compiled Model is a per-instance table
// (path, π(d), group) plus derived indexes; the table rows are pure
// per-instance functions of the fixed network structure — the tree
// decompositions for tree problems, the global edge numbering for lines —
// so when the demand set changes, rows of surviving demands are copied
// verbatim and only the rows of newly added demands are computed (tree
// walks, path materialization). The derived indexes
// (InstsOf/GroupInsts/EdgeInsts) and the conflict clique cover embed
// instance ids, which renumber on any removal, so they are repacked by
// the same linear two-pass bucket builds a fresh compile uses — cheap
// next to the per-row tree walks the copy avoids.
//
// The one non-local row component is the line-network group, which
// depends on the global minimum instance length Lmin (§7 length
// doubling): WithDelta recomputes every line group from the new Lmin in
// one O(n) integer pass, keeping the result identical to a fresh Build.

import (
	"fmt"

	"treesched/internal/instance"
	"treesched/internal/layered"
)

// sameDemand reports whether a surviving demand's payload is unchanged
// (IDs are renumbered by the splice, so they are not compared).
func sameDemand(a, b instance.Demand) bool {
	if a.U != b.U || a.V != b.V ||
		a.Release != b.Release || a.Deadline != b.Deadline || a.ProcTime != b.ProcTime ||
		a.Profit != b.Profit || a.Height != b.Height || len(a.Access) != len(b.Access) {
		return false
	}
	for i := range a.Access {
		if a.Access[i] != b.Access[i] {
			return false
		}
	}
	return true
}

// WithDelta builds the full model of p incrementally from m. p must share
// m's networks (same trees or timeline, same capacities) and differ only
// in its demand list; oldOf maps the splice: oldOf[a] is the demand id of
// m.P whose rows are copied for p's demand a, or -1 when a is newly
// added. m must be a full model (no Filter, no CaptureWingsPi).
//
// The result is identical — field for field, row for row — to
// Build(p, Options{Decomps: m.Decomps}): surviving rows are copied, new
// rows are computed by the same per-instance functions Build uses, and
// the derived state is produced by the shared finalize step. The
// equivalence suite in internal/core asserts byte-identical solver output
// over fuzzed delta sequences.
func (m *Model) WithDelta(p *instance.Problem, oldOf []int32) (*Model, error) {
	if m.filtered || m.captureWings {
		return nil, fmt.Errorf("model: WithDelta requires a full model (filtered=%t captureWings=%t)", m.filtered, m.captureWings)
	}
	if p.Kind != m.P.Kind {
		return nil, fmt.Errorf("model: WithDelta across kinds (%v -> %v)", m.P.Kind, p.Kind)
	}
	if p.EdgeSpace() != m.EdgeSpace {
		return nil, fmt.Errorf("model: WithDelta changed the edge space (%d -> %d); networks must be fixed", m.EdgeSpace, p.EdgeSpace())
	}
	if len(oldOf) != len(p.Demands) {
		return nil, fmt.Errorf("model: oldOf has %d entries for %d demands", len(oldOf), len(p.Demands))
	}

	nm := &Model{
		P:          p,
		NumDemands: len(p.Demands),
		EdgeSpace:  m.EdgeSpace,
		Cap:        m.Cap, // networks fixed: capacities shared, immutable
		MaxCap:     m.MaxCap,
		Decomps:    m.Decomps,
	}

	// Pass 1: the new instance list in canonical (demand, access, start)
	// order, with provenance. srcOld[i] is the old instance copied into
	// new instance i, or -1 for instances of newly added demands.
	insts := make([]instance.Inst, 0, len(m.Insts))
	srcOld := make([]int32, 0, len(m.Insts))
	for a, old := range oldOf {
		d := p.Demands[a]
		if d.ID != a {
			return nil, fmt.Errorf("model: demand %d has ID %d (the splice must renumber)", a, d.ID)
		}
		if old >= 0 {
			if int(old) >= len(m.P.Demands) {
				return nil, fmt.Errorf("model: oldOf[%d]=%d outside the %d old demands", a, old, len(m.P.Demands))
			}
			if !sameDemand(m.P.Demands[old], d) {
				return nil, fmt.Errorf("model: demand %d claims to copy old demand %d but the payload changed", a, old)
			}
			for _, i := range m.InstsOf.Row(old) {
				di := m.Insts[i]
				di.ID = int32(len(insts))
				di.Demand = int32(a)
				insts = append(insts, di)
				srcOld = append(srcOld, i)
			}
		} else {
			if err := p.ValidateDemand(a, d); err != nil {
				return nil, err
			}
			start := len(insts)
			insts = p.ExpandDemand(insts, d)
			for range insts[start:] {
				srcOld = append(srcOld, -1)
			}
		}
	}
	nm.Insts = insts

	// Pass 2: compute the fresh rows (the only tree walks of the rebuild).
	var freshPaths, freshPis [][]int32
	var freshGroups []int32
	pathTotal, piTotal := 0, 0
	for i := range insts {
		if s := srcOld[i]; s >= 0 {
			pathTotal += m.Paths.RowLen(s)
			piTotal += m.Pi.RowLen(s)
			continue
		}
		path := p.PathEdges(insts[i])
		var g int32
		var pi []int32
		if p.Kind == instance.KindTree {
			g, pi = layered.TreeRow(p, insts[i], m.Decomps[insts[i].Net], false)
		} else {
			pi = layered.LinePi(p, insts[i])
		}
		freshPaths = append(freshPaths, path)
		freshPis = append(freshPis, pi)
		freshGroups = append(freshGroups, g)
		pathTotal += len(path)
		piTotal += len(pi)
	}

	// The delta path runs per re-solve, so the whole index rebuild is
	// carved out of one slab allocation and assembled by closure-free
	// passes. Semantics are pinned to Build's by the WithDelta-vs-Build
	// model-equality tests. Layout (n insts, D demands, E edges, P path
	// entries, Q π entries; GroupInsts needs NumGroups, computed below):
	n := len(insts)
	D, E := nm.NumDemands, nm.EdgeSpace
	slab := newI32Slab(3*(n+1) + 2*pathTotal + piTotal + (D + 1) + n + 2*E + 1)
	nm.Paths = CSR{Off: slab.take(n + 1), Data: slab.take(pathTotal)}
	nm.Pi = CSR{Off: slab.take(n + 1), Data: slab.take(piTotal)}
	nm.Group = slab.take(n)

	// Pass 3: assemble the row CSRs — copied rows splice in verbatim.
	fresh, pOff, qOff := 0, 0, 0
	for i := range insts {
		var path, pi []int32
		if s := srcOld[i]; s >= 0 {
			path, pi = m.Paths.Row(s), m.Pi.Row(s)
			nm.Group[i] = m.Group[s]
		} else {
			path, pi = freshPaths[fresh], freshPis[fresh]
			nm.Group[i] = freshGroups[fresh]
			fresh++
		}
		pOff += copy(nm.Paths.Data[pOff:], path)
		qOff += copy(nm.Pi.Data[qOff:], pi)
		nm.Paths.Off[i+1] = int32(pOff)
		nm.Pi.Off[i+1] = int32(qOff)
	}

	// Line groups depend on the global Lmin; recompute them all whenever
	// the instance set changed (O(n) integer pass, no allocation).
	if p.Kind == instance.KindLine {
		lmin := layered.LineLmin(insts)
		for i := range insts {
			nm.Group[i] = layered.LineGroup(insts[i].Len(), lmin)
		}
	}

	nm.deriveScalars()

	// InstsOf of a full model is the identity permutation split at the
	// demand block boundaries (instances are generated in demand order).
	nm.InstsOf = CSR{Off: slab.take(D + 1), Data: slab.take(n)}
	for i := range insts {
		nm.InstsOf.Data[i] = int32(i)
	}
	for i, a := 0, 0; a < D; a++ {
		for i < n && insts[i].Demand == int32(a) {
			i++
		}
		nm.InstsOf.Off[a+1] = int32(i)
	}

	if err := nm.check(); err != nil {
		return nil, err
	}

	// GroupInsts: counting bucket build, no closures. The slab cannot
	// serve it (NumGroups is only known now), but it is two small
	// allocations.
	G := nm.NumGroups
	gOff := make([]int32, G+1)
	for i := range insts {
		gOff[nm.Group[i]]++ // count group g at index g (1-based groups)
	}
	for g := 0; g < G; g++ {
		gOff[g+1] += gOff[g]
	}
	gData := make([]int32, n)
	gNext := gOff // gOff[g] is the write cursor of group g+1's bucket
	for i := range insts {
		g := nm.Group[i] - 1
		gData[gNext[g]] = int32(i)
		gNext[g]++
	}
	// gNext[g] has advanced to the end of bucket g: shift back into Off
	// form by prepending 0.
	off := make([]int32, G+1)
	copy(off[1:], gNext[:G])
	nm.GroupInsts = CSR{Off: off, Data: gData}

	// EdgeInsts: the Paths transpose, built by count/prefix/scatter over
	// the slab rows.
	eOff := slab.take(E + 1)
	for _, e := range nm.Paths.Data {
		eOff[e+1]++
	}
	for e := 0; e < E; e++ {
		eOff[e+1] += eOff[e]
	}
	eData := slab.take(pathTotal)
	eNext := slab.take(E)
	copy(eNext, eOff[:E])
	for i := 0; i < n; i++ {
		for _, e := range nm.Paths.Row(int32(i)) {
			eData[eNext[e]] = int32(i)
			eNext[e]++
		}
	}
	nm.EdgeInsts = CSR{Off: eOff, Data: eData}
	return nm, nil
}

// i32Slab carves many exact-size int32 slices out of one allocation —
// the delta rebuild's index arrays are all sized up front, so the whole
// derived state costs one malloc instead of a dozen.
type i32Slab struct{ buf []int32 }

func newI32Slab(total int) *i32Slab { return &i32Slab{buf: make([]int32, total)} }

func (s *i32Slab) take(n int) []int32 {
	if len(s.buf) < n {
		// Sizing bug fallback: stay correct, pay an allocation.
		return make([]int32, n)
	}
	out := s.buf[:n:n]
	s.buf = s.buf[n:]
	return out
}

// FilterCopy builds the sub-model keeping the instances where keep is
// true, by copying rows out of m instead of re-running the per-instance
// computations — the layered rows are per-instance functions, so the
// result equals Build with Options.Filter (instances renumbered dense,
// demand ids preserved) at the cost of a few linear passes. Line groups
// are recomputed against the sub-model's own Lmin, exactly as a filtered
// Build would.
func (m *Model) FilterCopy(keep func(instance.Inst) bool) (*Model, error) {
	nm := &Model{
		P:            m.P,
		NumDemands:   m.NumDemands,
		EdgeSpace:    m.EdgeSpace,
		Cap:          m.Cap,
		MaxCap:       m.MaxCap,
		Decomps:      m.Decomps,
		captureWings: m.captureWings,
		filtered:     true,
	}
	kept := make([]int32, 0, len(m.Insts))
	pathTotal, piTotal := 0, 0
	for i := range m.Insts {
		if keep(m.Insts[i]) {
			kept = append(kept, int32(i))
			pathTotal += m.Paths.RowLen(int32(i))
			piTotal += m.Pi.RowLen(int32(i))
		}
	}
	n := len(kept)
	nm.Insts = make([]instance.Inst, n)
	nm.Paths = CSR{Off: make([]int32, n+1), Data: make([]int32, 0, pathTotal)}
	nm.Pi = CSR{Off: make([]int32, n+1), Data: make([]int32, 0, piTotal)}
	nm.Group = make([]int32, n)
	for i, s := range kept {
		nm.Insts[i] = m.Insts[s]
		nm.Insts[i].ID = int32(i)
		nm.Paths.Data = append(nm.Paths.Data, m.Paths.Row(s)...)
		nm.Pi.Data = append(nm.Pi.Data, m.Pi.Row(s)...)
		nm.Paths.Off[i+1] = int32(len(nm.Paths.Data))
		nm.Pi.Off[i+1] = int32(len(nm.Pi.Data))
		nm.Group[i] = m.Group[s]
	}
	if m.P.Kind == instance.KindLine {
		lmin := layered.LineLmin(nm.Insts)
		for i := range nm.Insts {
			nm.Group[i] = layered.LineGroup(nm.Insts[i].Len(), lmin)
		}
	}
	if err := nm.finalize(1); err != nil {
		return nil, err
	}
	return nm, nil
}
