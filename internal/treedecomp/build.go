package treedecomp

import (
	"fmt"

	"treesched/internal/graph"
)

// RootFixing builds the §4.2 root-fixing decomposition: H is simply T
// rooted at root. Pivot size θ=1; depth can reach n.
func RootFixing(t *graph.Tree, root int) *Decomposition {
	n := t.N()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -2
	}
	parent[root] = -1
	stack := []int32{int32(root)}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range t.Adj(int(v)) {
			if parent[w] == -2 {
				parent[w] = v
				stack = append(stack, w)
			}
		}
	}
	return finish(t, KindRootFixing, root, parent)
}

// splitter provides component-restricted centroid and split operations over
// a tree, using generation marks to avoid reallocating per recursion level.
type splitter struct {
	t    *graph.Tree
	mark []int32 // mark[v] == gen means v belongs to the current component
	gen  int32
	size []int32 // scratch for subtree sizes
}

func newSplitter(t *graph.Tree) *splitter {
	return &splitter{
		t:    t,
		mark: make([]int32, t.N()),
		gen:  0,
		size: make([]int32, t.N()),
	}
}

// claim assigns a fresh generation to the vertices of comp and returns it.
func (s *splitter) claim(comp []int32) int32 {
	s.gen++
	for _, v := range comp {
		s.mark[v] = s.gen
	}
	return s.gen
}

// centroid returns a balancer of the component comp (all marked gen): a
// vertex whose removal splits comp into pieces of size ≤ ⌊|comp|/2⌋.
// Any component contains one (§4.2).
func (s *splitter) centroid(comp []int32, gen int32) int32 {
	if len(comp) == 1 {
		return comp[0]
	}
	root := comp[0]
	// Iterative post-order within the component to compute subtree sizes.
	type frame struct {
		v, parent int32
		idx       int
	}
	stack := []frame{{root, -1, 0}}
	order := make([]frame, 0, len(comp))
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, f)
		for _, w := range s.t.Adj(int(f.v)) {
			if w != f.parent && s.mark[w] == gen {
				stack = append(stack, frame{w, f.v, 0})
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i].v
		s.size[v] = 1
		for _, w := range s.t.Adj(int(v)) {
			if w != order[i].parent && s.mark[w] == gen {
				s.size[v] += s.size[w]
			}
		}
	}
	total := s.size[root]
	if int(total) != len(comp) {
		panic(fmt.Sprintf("treedecomp: component of size %d only reaches %d vertices (disconnected?)", len(comp), total))
	}
	// Walk from the root toward the heavy side until balanced.
	half := total / 2
	v := root
	parent := int32(-1)
	for {
		var heavy int32 = -1
		for _, w := range s.t.Adj(int(v)) {
			if w != parent && s.mark[w] == gen && s.size[w] > half {
				heavy = w
				break
			}
		}
		if heavy < 0 {
			// All below-components ≤ half; the above-component has size
			// total - size[v] ≤ half as well once we stop here.
			if total-s.size[v] > half {
				panic("treedecomp: centroid walk stopped at unbalanced vertex")
			}
			return v
		}
		parent = v
		v = heavy
	}
}

// split removes z from the component (marked gen) and returns the resulting
// sub-components, each as a vertex list. The mark of z is invalidated.
func (s *splitter) split(comp []int32, gen, z int32) [][]int32 {
	s.mark[z] = 0
	var out [][]int32
	for _, w := range s.t.Adj(int(z)) {
		if s.mark[w] != gen {
			continue
		}
		// BFS the piece hanging off w, unmarking as we go so later
		// neighbors of z start fresh pieces.
		piece := []int32{w}
		s.mark[w] = 0
		for i := 0; i < len(piece); i++ {
			v := piece[i]
			for _, x := range s.t.Adj(int(v)) {
				if s.mark[x] == gen {
					s.mark[x] = 0
					piece = append(piece, x)
				}
			}
		}
		out = append(out, piece)
	}
	return out
}

// Balancing builds the §4.2 centroid decomposition of T: depth ≤ ⌈log n⌉+1,
// pivot size up to the depth.
func Balancing(t *graph.Tree) *Decomposition {
	n := t.N()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -2
	}
	s := newSplitter(t)
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	type job struct {
		comp []int32
		hPar int32 // H-parent of this component's root
	}
	var root int32 = -1
	jobs := []job{{all, -1}}
	for len(jobs) > 0 {
		j := jobs[len(jobs)-1]
		jobs = jobs[:len(jobs)-1]
		gen := s.claim(j.comp)
		z := s.centroid(j.comp, gen)
		parent[z] = j.hPar
		if j.hPar < 0 {
			root = z
		}
		for _, piece := range s.split(j.comp, gen, z) {
			jobs = append(jobs, job{piece, z})
		}
	}
	return finish(t, KindBalancing, int(root), parent)
}

// Ideal builds the §4.3 ideal tree decomposition: pivot size θ=2 and depth
// ≤ 2⌈log n⌉ (Lemma 4.1). The construction follows BuildIdealTD: each
// recursion level places a balancer z, and — when both outer attachment
// points of the component fall into the same sub-piece — additionally a
// junction node j (the median of the two attachment points and z's
// neighbor), giving every component at most two neighbors.
func Ideal(t *graph.Tree) *Decomposition {
	n := t.N()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -2
	}
	s := newSplitter(t)

	type job struct {
		comp []int32
		nbrs [2]int32 // Γ(comp); -1 entries unused; len ≤ 2 (precondition)
		hPar int32
	}
	var rootVtx int32 = -1

	// contains reports membership of x in piece.
	contains := func(piece []int32, x int32) bool {
		for _, v := range piece {
			if v == x {
				return true
			}
		}
		return false
	}

	var jobs []job
	if n == 1 {
		parent[0] = -1
		return finish(t, KindIdeal, 0, parent)
	}

	// Top level: balancer g of V, components each with Γ = {g}.
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	gen := s.claim(all)
	g := s.centroid(all, gen)
	parent[g] = -1
	rootVtx = g
	for _, piece := range s.split(all, gen, g) {
		jobs = append(jobs, job{piece, [2]int32{g, -1}, g})
	}

	for len(jobs) > 0 {
		j := jobs[len(jobs)-1]
		jobs = jobs[:len(jobs)-1]
		comp := j.comp
		if len(comp) == 1 {
			parent[comp[0]] = j.hPar
			continue
		}
		gen := s.claim(comp)
		z := s.centroid(comp, gen)
		pieces := s.split(comp, gen, z)

		u1, u2 := j.nbrs[0], j.nbrs[1]
		// Attachment points u'1, u'2 inside comp (unique T-neighbor of
		// each outside neighbor inside the component).
		var a1, a2 int32 = -1, -1
		if u1 >= 0 {
			a1 = attachIn(t, comp, u1)
		}
		if u2 >= 0 {
			a2 = attachIn(t, comp, u2)
		}

		// Locate which piece holds each attachment point (the balancer z
		// itself holds it if a_i == z).
		pieceOf := func(a int32) int {
			if a < 0 || a == z {
				return -1
			}
			for pi, piece := range pieces {
				if contains(piece, a) {
					return pi
				}
			}
			return -1
		}
		p1, p2 := pieceOf(a1), pieceOf(a2)

		if u1 < 0 || u2 < 0 || p1 < 0 || p2 < 0 || p1 != p2 {
			// Case 1 / 2(a) (or attachment on z itself): root the
			// component at z; every piece has ≤ 2 neighbors already.
			parent[z] = j.hPar
			for pi, piece := range pieces {
				nb := [2]int32{z, -1}
				if pi == p1 {
					nb[1] = u1
				} else if pi == p2 {
					nb[1] = u2
				}
				jobs = append(jobs, job{piece, nb, z})
			}
			continue
		}

		// Case 2(b): both attachment points in the same piece C1.
		c1 := pieces[p1]
		// z' = unique T-neighbor of z inside C1.
		zp := attachIn(t, c1, z)
		if zp < 0 {
			panic("treedecomp: split piece not adjacent to balancer")
		}
		jn := int32(t.Median(int(a1), int(a2), int(zp)))
		// Split C1 by the junction.
		genC1 := s.claim(c1)
		sub := s.split(c1, genC1, jn)

		parent[jn] = j.hPar
		parent[z] = jn
		// Pieces of C-z other than C1 hang under z with Γ={z}.
		for pi, piece := range pieces {
			if pi == p1 {
				continue
			}
			jobs = append(jobs, job{piece, [2]int32{z, -1}, z})
		}
		// Pieces of C1-j: the one holding z' goes under z with Γ={j,z};
		// the ones holding attachment points keep their outer neighbor.
		for _, piece := range sub {
			switch {
			case zp != jn && contains(piece, zp):
				jobs = append(jobs, job{piece, [2]int32{jn, z}, z})
			case a1 != jn && contains(piece, a1):
				jobs = append(jobs, job{piece, [2]int32{jn, u1}, jn})
			case a2 != jn && contains(piece, a2):
				jobs = append(jobs, job{piece, [2]int32{jn, u2}, jn})
			default:
				jobs = append(jobs, job{piece, [2]int32{jn, -1}, jn})
			}
		}
	}
	return finish(t, KindIdeal, int(rootVtx), parent)
}

// attachIn returns the unique vertex of comp adjacent (in t) to the outside
// vertex u, or -1 if none. Uniqueness holds because comp is connected and t
// is a tree.
func attachIn(t *graph.Tree, comp []int32, u int32) int32 {
	inComp := make(map[int32]bool, len(comp))
	for _, v := range comp {
		inComp[v] = true
	}
	for _, w := range t.Adj(int(u)) {
		if inComp[w] {
			return w
		}
	}
	return -1
}

// Build constructs a decomposition of the requested kind. RootFixing uses
// vertex 0 as the root.
func Build(t *graph.Tree, kind Kind) *Decomposition {
	switch kind {
	case KindRootFixing:
		return RootFixing(t, 0)
	case KindBalancing:
		return Balancing(t)
	case KindIdeal:
		return Ideal(t)
	default:
		panic(fmt.Sprintf("treedecomp: unknown kind %d", int(kind)))
	}
}
