package treedecomp

import (
	"testing"

	"treesched/internal/graph"
)

// TestIdealPath7Golden pins the exact decomposition of the path
// 0-1-2-3-4-5-6: the centroid 3 roots H, the halves {0,1,2} and {4,5,6}
// are rooted at their own centroids 1 and 5.
func TestIdealPath7Golden(t *testing.T) {
	d := Ideal(graph.NewPath(7))
	if d.Root != 3 {
		t.Fatalf("root %d want 3", d.Root)
	}
	wantParent := map[int]int{0: 1, 2: 1, 4: 5, 6: 5, 1: 3, 5: 3, 3: -1}
	for v, want := range wantParent {
		if got := d.Parent(v); got != want {
			t.Fatalf("parent(%d)=%d want %d", v, got, want)
		}
	}
	if d.MaxDepth() != 3 {
		t.Fatalf("depth %d want 3", d.MaxDepth())
	}
	if d.PivotSize() != 2 {
		t.Fatalf("θ=%d want 2 (inner components see both sides)", d.PivotSize())
	}
}

// TestIdealStarGolden: the hub is the centroid; every leaf is its child.
func TestIdealStarGolden(t *testing.T) {
	d := Ideal(graph.NewStar(6))
	if d.Root != 0 {
		t.Fatalf("root %d want hub 0", d.Root)
	}
	for v := 1; v < 6; v++ {
		if d.Parent(v) != 0 {
			t.Fatalf("leaf %d not a child of the hub", v)
		}
	}
	if d.MaxDepth() != 2 || d.PivotSize() != 1 {
		t.Fatalf("depth=%d θ=%d want 2,1", d.MaxDepth(), d.PivotSize())
	}
}

// TestCaptureOnGoldenPath: demands on the path are captured at the
// minimum-depth vertex of their span.
func TestCaptureOnGoldenPath(t *testing.T) {
	d := Ideal(graph.NewPath(7))
	cases := []struct{ u, v, want int }{
		{0, 6, 3}, // spans the root
		{0, 2, 1}, // left half
		{4, 6, 5}, // right half
		{2, 4, 3}, // crosses the root
		{0, 1, 1},
		{5, 6, 5},
		{6, 6, 6},
	}
	for _, c := range cases {
		if got := d.Capture(c.u, c.v); got != c.want {
			t.Fatalf("capture(%d,%d)=%d want %d", c.u, c.v, got, c.want)
		}
	}
}

// TestIdealJunctionCaseTriggered builds a tree that forces Case 2(b) of
// BuildIdealTD (both attachment points in one split piece) and checks the
// invariants still hold. A long path with a heavy middle bulge does it.
func TestIdealJunctionCaseTriggered(t *testing.T) {
	// Path 0..9 with three extra leaves on vertex 2 — the first balancer
	// sits near the bulge, leaving a two-neighbor component whose
	// attachment points fall together.
	edges := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9},
		{2, 10}, {2, 11}, {2, 12},
	}
	tr, err := graph.NewTree(13, edges)
	if err != nil {
		t.Fatal(err)
	}
	d := Ideal(tr)
	if err := Verify(d); err != nil {
		t.Fatal(err)
	}
	if d.PivotSize() > 2 {
		t.Fatalf("θ=%d > 2", d.PivotSize())
	}
	if d.MaxDepth() > 8 { // 2⌈log 13⌉ = 8
		t.Fatalf("depth %d > 8", d.MaxDepth())
	}
}

// TestBalancingCentroidProperty: the root of the balancing decomposition
// splits the tree into halves.
func TestBalancingCentroidProperty(t *testing.T) {
	for _, n := range []int{2, 3, 8, 31, 100} {
		tr := graph.NewPath(n)
		d := Balancing(tr)
		root := d.Root
		// Removing the root splits the path into two runs of ≤ ⌊n/2⌋.
		left := root
		right := n - root - 1
		if left > n/2 || right > n/2 {
			t.Fatalf("n=%d: root %d is no balancer (%d/%d)", n, root, left, right)
		}
	}
}
