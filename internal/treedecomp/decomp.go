// Package treedecomp implements the paper's tree-decompositions (§4):
// rooted trees H over the vertex set of a tree-network T such that
//
//	(i)  any demand instance passing through x and y also passes through
//	     LCA_H(x,y), and
//	(ii) for every node z, the set C(z) of z and its H-descendants induces
//	     a connected subtree (a "component") of T.
//
// Three constructions are provided, mirroring §4.2–4.3:
//
//   - RootFixing: pivot size θ=1, depth up to n.
//   - Balancing:  depth ≤ ⌈log n⌉+1, pivot size up to ⌈log n⌉.
//   - Ideal:      depth ≤ 2⌈log n⌉, pivot size θ=2 (Lemma 4.1) — the
//     paper's main decomposition, driving the ∆=6 layered decomposition.
package treedecomp

import (
	"fmt"

	"treesched/internal/graph"
)

// Kind names a decomposition construction.
type Kind int

const (
	// KindIdeal is the θ=2, depth≤2⌈log n⌉ decomposition of §4.3 — the
	// paper's main construction and the zero-value default.
	KindIdeal Kind = iota
	// KindRootFixing is the θ=1, depth≤n decomposition of §4.2.
	KindRootFixing
	// KindBalancing is the centroid decomposition of §4.2.
	KindBalancing
)

func (k Kind) String() string {
	switch k {
	case KindRootFixing:
		return "root-fixing"
	case KindBalancing:
		return "balancing"
	case KindIdeal:
		return "ideal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Decomposition is a tree decomposition H of a tree-network T. Node depths
// follow the paper's convention: the root has depth 1.
type Decomposition struct {
	T    *graph.Tree
	Kind Kind
	Root int

	parent   []int32 // parent in H; -1 at root
	depth    []int32 // 1-based depth in H
	children [][]int32
	up       [][]int32 // binary lifting over H
	logN     int
	tin      []int32 // Euler interval of the H-subtree, for ancestor tests
	tout     []int32
	pivots   [][]int32 // χ(z) = Γ[C(z)] per node
	maxDepth int
	maxPivot int
}

// finish derives all query structures from parent pointers.
func finish(t *graph.Tree, kind Kind, root int, parent []int32) *Decomposition {
	n := t.N()
	d := &Decomposition{T: t, Kind: kind, Root: root, parent: parent}
	d.children = make([][]int32, n)
	for v := 0; v < n; v++ {
		if p := parent[v]; p >= 0 {
			d.children[p] = append(d.children[p], int32(v))
		}
	}
	d.depth = make([]int32, n)
	d.tin = make([]int32, n)
	d.tout = make([]int32, n)
	// Iterative DFS over H computing depth and Euler intervals.
	type frame struct {
		v   int32
		idx int
	}
	stack := []frame{{int32(root), 0}}
	d.depth[root] = 1
	timer := int32(0)
	d.tin[root] = timer
	timer++
	visited := 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.idx < len(d.children[f.v]) {
			c := d.children[f.v][f.idx]
			f.idx++
			d.depth[c] = d.depth[f.v] + 1
			d.tin[c] = timer
			timer++
			visited++
			stack = append(stack, frame{c, 0})
			continue
		}
		d.tout[f.v] = timer
		stack = stack[:len(stack)-1]
	}
	if visited != n {
		panic(fmt.Sprintf("treedecomp: H reaches %d of %d vertices", visited, n))
	}
	for v := 0; v < n; v++ {
		if int(d.depth[v]) > d.maxDepth {
			d.maxDepth = int(d.depth[v])
		}
	}
	d.buildLCA()
	d.buildPivots()
	return d
}

func (d *Decomposition) buildLCA() {
	n := d.T.N()
	logN := 1
	for 1<<logN < n {
		logN++
	}
	d.logN = logN
	d.up = make([][]int32, logN+1)
	d.up[0] = make([]int32, n)
	for v := 0; v < n; v++ {
		if d.parent[v] < 0 {
			d.up[0][v] = int32(v)
		} else {
			d.up[0][v] = d.parent[v]
		}
	}
	for k := 1; k <= logN; k++ {
		d.up[k] = make([]int32, n)
		prev := d.up[k-1]
		for v := 0; v < n; v++ {
			d.up[k][v] = prev[prev[v]]
		}
	}
}

// buildPivots computes χ(z) = Γ[C(z)] for every z, bottom-up: the
// neighborhood of C(z) is contained in N_T(z) ∪ ⋃_{c child} χ(c), filtered
// to vertices outside C(z).
func (d *Decomposition) buildPivots() {
	n := d.T.N()
	d.pivots = make([][]int32, n)
	// Process in decreasing tin order? Children have larger tin than the
	// parent in preorder, so iterating vertices by decreasing tin visits
	// children before parents.
	order := make([]int32, n)
	for v := 0; v < n; v++ {
		order[d.tin[v]] = int32(v)
	}
	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	for i := n - 1; i >= 0; i-- {
		z := order[i]
		var piv []int32
		add := func(x int32) {
			if d.InComponent(int(z), int(x)) {
				return
			}
			if seen[x] == z {
				return
			}
			seen[x] = z
			piv = append(piv, x)
		}
		for _, w := range d.T.Adj(int(z)) {
			add(w)
		}
		for _, c := range d.children[z] {
			for _, x := range d.pivots[c] {
				add(x)
			}
		}
		d.pivots[z] = piv
		if len(piv) > d.maxPivot {
			d.maxPivot = len(piv)
		}
	}
}

// Parent returns the H-parent of v (-1 at the root).
func (d *Decomposition) Parent(v int) int { return int(d.parent[v]) }

// Depth returns the 1-based H-depth of v (root has depth 1).
func (d *Decomposition) Depth(v int) int { return int(d.depth[v]) }

// MaxDepth returns the depth of H.
func (d *Decomposition) MaxDepth() int { return d.maxDepth }

// PivotSize returns θ, the maximum pivot-set cardinality over all nodes.
func (d *Decomposition) PivotSize() int { return d.maxPivot }

// Children returns the H-children of v. Do not modify.
func (d *Decomposition) Children(v int) []int32 { return d.children[v] }

// PivotSet returns χ(z) = Γ[C(z)], the T-neighbors of the component of z.
// Do not modify.
func (d *Decomposition) PivotSet(z int) []int32 { return d.pivots[z] }

// InComponent reports whether x ∈ C(z), i.e. x is z or an H-descendant.
func (d *Decomposition) InComponent(z, x int) bool {
	return d.tin[z] <= d.tin[x] && d.tin[x] < d.tout[z]
}

// Component materializes C(z) (z and its H-descendants).
func (d *Decomposition) Component(z int) []int32 {
	out := []int32{int32(z)}
	for i := 0; i < len(out); i++ {
		out = append(out, d.children[out[i]]...)
	}
	return out
}

// LCA returns the lowest common ancestor of u and v in H.
func (d *Decomposition) LCA(u, v int) int {
	if d.depth[u] < d.depth[v] {
		u, v = v, u
	}
	diff := int(d.depth[u] - d.depth[v])
	a := int32(u)
	for k := 0; diff > 0; k++ {
		if diff&1 == 1 {
			a = d.up[k][a]
		}
		diff >>= 1
	}
	b := int32(v)
	if a == b {
		return int(a)
	}
	for k := d.logN; k >= 0; k-- {
		if d.up[k][a] != d.up[k][b] {
			a = d.up[k][a]
			b = d.up[k][b]
		}
	}
	return int(d.up[0][a])
}

// Capture returns µ(d) for a demand instance with endpoints u,v: the unique
// minimum-H-depth node on the T-path between u and v. For a valid tree
// decomposition this is LCA_H(u,v) (see §4.4).
func (d *Decomposition) Capture(u, v int) int { return d.LCA(u, v) }

// CriticalEdges builds π(d) for the demand ⟨u,v⟩ per Lemma 4.2: the wings
// of the capture node z = µ(d) on path(u,v), plus, for each pivot p ∈ χ(z),
// the wings of the bending point of the path with respect to p. u != v is
// required. |π(d)| ≤ 2(θ+1).
func (d *Decomposition) CriticalEdges(u, v int) []graph.EdgeID {
	z := d.Capture(u, v)
	out := d.T.Wings(u, v, z)
	for _, p := range d.pivots[z] {
		y := d.T.Median(int(p), u, v)
		for _, e := range d.T.Wings(u, v, y) {
			dup := false
			for _, f := range out {
				if f == e {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, e)
			}
		}
	}
	return out
}
