package treedecomp

import (
	"fmt"
)

// Verify checks, by direct (brute-force) examination, that d satisfies both
// defining properties of a tree decomposition (§4.1):
//
//	(i)  for any pair of vertices u,v, the minimum-H-depth vertex on the
//	     T-path between them is unique and equals LCA_H(u,v); and
//	(ii) for every node z, C(z) induces a connected subtree of T.
//
// It is O(n² · path length) and intended for tests and the E7 experiment,
// not production use.
func Verify(d *Decomposition) error {
	t := d.T
	n := t.N()
	// Property (ii): components connected.
	for z := 0; z < n; z++ {
		comp := d.Component(z)
		in := make(map[int32]bool, len(comp))
		for _, v := range comp {
			in[v] = true
		}
		// BFS within comp from z must reach all of comp.
		seen := map[int32]bool{int32(z): true}
		queue := []int32{int32(z)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range t.Adj(int(v)) {
				if in[w] && !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		if len(seen) != len(comp) {
			return fmt.Errorf("component C(%d) disconnected: %d of %d reachable", z, len(seen), len(comp))
		}
		// Pivot set sanity: χ(z) must be exactly the outside neighbors.
		want := map[int32]bool{}
		for _, v := range comp {
			for _, w := range t.Adj(int(v)) {
				if !in[w] {
					want[w] = true
				}
			}
		}
		got := d.PivotSet(z)
		if len(got) != len(want) {
			return fmt.Errorf("pivot set of %d has %d entries, want %d", z, len(got), len(want))
		}
		for _, x := range got {
			if !want[x] {
				return fmt.Errorf("pivot set of %d contains non-neighbor %d", z, x)
			}
		}
	}
	// Property (i): min-depth node on every path is unique and is the H-LCA.
	for u := 0; u < n; u++ {
		for v := u; v < n; v++ {
			verts := t.PathVertices(u, v)
			best, count := -1, 0
			for _, x := range verts {
				dep := d.Depth(int(x))
				if best < 0 || dep < d.Depth(best) {
					best, count = int(x), 1
				} else if dep == d.Depth(best) {
					count++
				}
			}
			if count != 1 {
				return fmt.Errorf("path (%d,%d): %d vertices at min depth", u, v, count)
			}
			if l := d.LCA(u, v); l != best {
				return fmt.Errorf("path (%d,%d): min-depth vertex %d != LCA_H %d", u, v, best, l)
			}
		}
	}
	return nil
}
