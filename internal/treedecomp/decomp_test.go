package treedecomp

import (
	"math"
	"math/rand"
	"testing"

	"treesched/internal/graph"
)

func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

func testTrees(rng *rand.Rand) map[string]*graph.Tree {
	return map[string]*graph.Tree{
		"path40":       graph.NewPath(40),
		"star30":       graph.NewStar(30),
		"binary63":     graph.CompleteBinaryTree(63),
		"caterpillar":  graph.Caterpillar(10, 25),
		"spider":       graph.Spider(5, 7),
		"random50a":    graph.RandomTree(50, rng),
		"random50b":    graph.RandomTree(50, rng),
		"random7":      graph.RandomTree(7, rng),
		"two":          graph.NewPath(2),
		"one":          graph.NewPath(1),
		"paperFigure6": graph.PaperFigure6Tree(),
		"paperFigure2": graph.PaperFigure2Tree(),
	}
}

func TestRootFixingProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, tr := range testTrees(rng) {
		d := RootFixing(tr, 0)
		if err := Verify(d); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.PivotSize() > 1 {
			t.Fatalf("%s: root-fixing pivot size %d > 1", name, d.PivotSize())
		}
	}
}

func TestBalancingProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for name, tr := range testTrees(rng) {
		d := Balancing(tr)
		if err := Verify(d); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if want := log2ceil(tr.N()) + 1; d.MaxDepth() > want {
			t.Fatalf("%s: balancing depth %d > ⌈log n⌉+1 = %d (n=%d)", name, d.MaxDepth(), want, tr.N())
		}
		// Pivot size is bounded by the number of proper ancestors.
		if d.PivotSize() > d.MaxDepth() {
			t.Fatalf("%s: balancing pivot %d > depth %d", name, d.PivotSize(), d.MaxDepth())
		}
	}
}

func TestIdealProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for name, tr := range testTrees(rng) {
		d := Ideal(tr)
		if err := Verify(d); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.PivotSize() > 2 {
			t.Fatalf("%s: ideal pivot size θ=%d > 2", name, d.PivotSize())
		}
		if n := tr.N(); n >= 2 {
			if want := 2 * log2ceil(n); d.MaxDepth() > want {
				t.Fatalf("%s: ideal depth %d > 2⌈log n⌉ = %d (n=%d)", name, d.MaxDepth(), want, n)
			}
		}
	}
}

func TestIdealOnManyRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(120)
		var tr *graph.Tree
		switch trial % 3 {
		case 0:
			tr = graph.RandomTree(n, rng)
		case 1:
			tr = graph.RandomBinaryTree(n, rng)
		default:
			tr = graph.Caterpillar(1+n/2, n-1-n/2)
		}
		d := Ideal(tr)
		if err := Verify(d); err != nil {
			t.Fatalf("trial %d (n=%d): %v", trial, tr.N(), err)
		}
		if d.PivotSize() > 2 {
			t.Fatalf("trial %d (n=%d): θ=%d", trial, tr.N(), d.PivotSize())
		}
		if d.MaxDepth() > 2*log2ceil(tr.N()) {
			t.Fatalf("trial %d (n=%d): depth=%d > %d", trial, tr.N(), d.MaxDepth(), 2*log2ceil(tr.N()))
		}
	}
}

func TestCaptureMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(60)
		tr := graph.RandomTree(n, rng)
		for _, kind := range []Kind{KindRootFixing, KindBalancing, KindIdeal} {
			d := Build(tr, kind)
			for q := 0; q < 30; q++ {
				u, v := rng.Intn(n), rng.Intn(n)
				z := d.Capture(u, v)
				// Brute force: min-depth vertex on the path.
				best := -1
				for _, x := range tr.PathVertices(u, v) {
					if best < 0 || d.Depth(int(x)) < d.Depth(best) {
						best = int(x)
					}
				}
				if z != best {
					t.Fatalf("%v n=%d capture(%d,%d)=%d want %d", kind, n, u, v, z, best)
				}
			}
		}
	}
}

func TestCriticalEdgesBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(80)
		tr := graph.RandomTree(n, rng)
		d := Ideal(tr)
		theta := d.PivotSize()
		for q := 0; q < 50; q++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			pi := d.CriticalEdges(u, v)
			if len(pi) == 0 {
				t.Fatalf("empty critical set for (%d,%d)", u, v)
			}
			if len(pi) > 2*(theta+1) {
				t.Fatalf("|π|=%d > 2(θ+1)=%d", len(pi), 2*(theta+1))
			}
			if len(pi) > 6 {
				t.Fatalf("|π|=%d > 6 for ideal decomposition", len(pi))
			}
			seen := map[graph.EdgeID]bool{}
			for _, e := range pi {
				if seen[e] {
					t.Fatalf("duplicate critical edge %d", e)
				}
				seen[e] = true
				if !tr.EdgeOnPath(u, v, e) {
					t.Fatalf("critical edge %d not on path(%d,%d)", e, u, v)
				}
			}
		}
	}
}

func TestComponentAndInComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := graph.RandomTree(40, rng)
	d := Ideal(tr)
	for z := 0; z < 40; z++ {
		comp := d.Component(z)
		in := map[int32]bool{}
		for _, v := range comp {
			in[v] = true
		}
		for x := 0; x < 40; x++ {
			if d.InComponent(z, x) != in[int32(x)] {
				t.Fatalf("InComponent(%d,%d) mismatch", z, x)
			}
		}
	}
}

func TestDecompositionDepthConvention(t *testing.T) {
	// Paper convention: root depth is 1.
	tr := graph.NewPath(5)
	d := RootFixing(tr, 0)
	if d.Depth(0) != 1 {
		t.Fatalf("root depth = %d, want 1", d.Depth(0))
	}
	if d.Depth(4) != 5 {
		t.Fatalf("leaf depth = %d, want 5", d.Depth(4))
	}
	if d.MaxDepth() != 5 {
		t.Fatalf("max depth = %d", d.MaxDepth())
	}
}

func TestPaperFigure3Analogue(t *testing.T) {
	// Figure 3 facts restated on our Figure 6 tree: in a decomposition
	// rooted at 1 (root-fixing), the demand ⟨4,13⟩ is captured at the
	// least-depth path vertex, which is 5.
	tr := graph.PaperFigure6Tree()
	d := RootFixing(tr, 1)
	if z := d.Capture(4, 13); z != 5 {
		t.Fatalf("capture(4,13)=%d want 5", z)
	}
	// C(5) contains the whole subtree below 1 on that side: {5,2,4,9,8,12,13,3,7}
	// in our variant; its only outside neighbor is 1 (θ contribution 1).
	piv := d.PivotSet(5)
	if len(piv) != 1 || piv[0] != 1 {
		t.Fatalf("pivot set of 5 = %v, want [1]", piv)
	}
}

func TestKindString(t *testing.T) {
	if KindIdeal.String() != "ideal" || KindRootFixing.String() != "root-fixing" || KindBalancing.String() != "balancing" {
		t.Fatal("Kind.String names")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func BenchmarkIdealDecomposition(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	tr := graph.RandomTree(2048, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Ideal(tr)
	}
}

func BenchmarkBalancingDecomposition(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	tr := graph.RandomTree(2048, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Balancing(tr)
	}
}

func BenchmarkCriticalEdges(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	tr := graph.RandomTree(2048, rng)
	d := Ideal(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := i % 2048
		v := (i * 2654435761) % 2048
		if u == v {
			v = (v + 1) % 2048
		}
		_ = d.CriticalEdges(u, v)
	}
}
