package treedecomp

import (
	"treesched/internal/graph"
	"treesched/internal/par"
)

// BuildAll builds one decomposition per tree on a bounded worker fan-out
// (workers: 0 = GOMAXPROCS, ≤1 = serial). Each Build is a pure function
// of (tree, kind) and writes only its own result slot, so the returned
// slice is identical at any worker count; only the wall-clock differs.
// At the scale presets (thousands of networks) the per-tree builds are
// the dominant cold-compile phase, and they are embarrassingly parallel
// — the same independence across networks the paper's distributed
// rounds exploit.
func BuildAll(trees []*graph.Tree, kind Kind, workers int) []*Decomposition {
	out := make([]*Decomposition, len(trees))
	par.Each(par.Resolve(workers), len(trees), func(i int) {
		out[i] = Build(trees[i], kind)
	})
	return out
}
