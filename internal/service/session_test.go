package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"treesched/internal/core"
	"treesched/internal/gen"
	"treesched/internal/online"
)

func sessionJobs(n int, seed int64) []online.Job {
	rng := rand.New(rand.NewSource(seed))
	p := gen.LineProblem(gen.LineConfig{Slots: 24, Resources: 2, Demands: n, Unit: true, AccessProb: 0.6}, rng)
	jobs := make([]online.Job, n)
	for i, d := range p.Demands {
		jobs[i] = online.Job{ID: int64(100 + i), Demand: d}
	}
	return jobs
}

// TestSessionEndToEnd drives the engine-level session API: open with
// scenario-derived initial jobs, churn, and observe delta recompiles in
// the metrics.
func TestSessionEndToEnd(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	ctx := context.Background()

	info, err := e.OpenSession(&SessionRequest{Algo: "line-unit", Scenario: "videowall-line", ScenarioSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	id := info.SessionID
	if info.Stats.Jobs == 0 {
		t.Fatal("scenario session opened with no initial jobs")
	}

	first, err := e.SessionSchedule(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if first.Incremental {
		t.Fatal("first resolve cannot be incremental")
	}
	if first.Response.Scheduled == 0 {
		t.Fatal("scheduled nothing")
	}
	if len(first.JobIDs) != first.Response.Scheduled {
		t.Fatalf("%d job ids for %d selected", len(first.JobIDs), first.Response.Scheduled)
	}

	// Small churn: remove two initial jobs, add two new ones.
	jobs := sessionJobs(2, 9)
	res, err := e.SessionEvents(ctx, id, []online.Event{
		{Op: online.OpRemove, ID: 0},
		{Op: online.OpRemove, ID: 1},
		{Op: online.OpAdd, Job: &jobs[0]},
		{Op: online.OpAdd, Job: &jobs[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 4 {
		t.Fatalf("applied %d of 4", res.Applied)
	}
	second, err := e.SessionSchedule(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Incremental {
		t.Fatal("small-churn resolve did not take the delta path")
	}

	m := e.Metrics()
	if m.SessionsOpened != 1 || m.SessionsOpen != 1 {
		t.Fatalf("session gauges: %+v", m)
	}
	if m.SessionResolves != 2 || m.SessionResolvesIncremental != 1 || m.SessionResolvesFull != 1 {
		t.Fatalf("resolve counters: %+v", m)
	}
	if m.SessionEvents != 4 {
		t.Fatalf("event counter = %d", m.SessionEvents)
	}

	if err := e.CloseSession(id); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SessionSchedule(ctx, id); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("closed session lookup: %v", err)
	}
	if m := e.Metrics(); m.SessionsClosed != 1 || m.SessionsOpen != 0 {
		t.Fatalf("close counters: %+v", m)
	}
}

// TestSessionIdleEvictionObservable: an idle session disappears on the
// next manager touch, and the eviction shows in the metrics.
func TestSessionIdleEvictionObservable(t *testing.T) {
	e := New(Config{SessionIdleTimeout: 30 * time.Millisecond})
	defer e.Close()
	ctx := context.Background()

	idle, err := e.OpenSession(&SessionRequest{Algo: "line-unit", Scenario: "videowall-line", ScenarioSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	// Any session operation sweeps; opening a new session is one.
	fresh, err := e.OpenSession(&SessionRequest{Algo: "line-unit", Scenario: "videowall-line", ScenarioSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SessionSchedule(ctx, idle.SessionID); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("idle session survived: %v", err)
	}
	if _, err := e.SessionSchedule(ctx, fresh.SessionID); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.SessionsEvicted < 1 {
		t.Fatalf("eviction not observable: %+v", m)
	}
	if m.SessionsOpen != 1 {
		t.Fatalf("open gauge = %d", m.SessionsOpen)
	}
}

// TestSessionLRUEviction: capacity overflow evicts the least recently
// used session.
func TestSessionLRUEviction(t *testing.T) {
	e := New(Config{MaxSessions: 2})
	defer e.Close()
	ctx := context.Background()

	open := func(seed int64) string {
		info, err := e.OpenSession(&SessionRequest{Algo: "line-unit", Scenario: "videowall-line", ScenarioSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return info.SessionID
	}
	a, b := open(1), open(2)
	// Touch a so b is the LRU when c arrives.
	if _, err := e.SessionSchedule(ctx, a); err != nil {
		t.Fatal(err)
	}
	c := open(3)
	if _, err := e.SessionSchedule(ctx, b); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("LRU session survived: %v", err)
	}
	for _, id := range []string{a, c} {
		if _, err := e.SessionSchedule(ctx, id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if m := e.Metrics(); m.SessionsEvicted != 1 || m.SessionsOpen != 2 {
		t.Fatalf("eviction counters: %+v", m)
	}
}

// TestSessionConcurrentEventsSerialized hammers one session through the
// engine from many goroutines (run under -race in CI): every add lands
// exactly once, resolves interleave safely, and the final job count is
// exact.
func TestSessionConcurrentEventsSerialized(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	ctx := context.Background()
	info, err := e.OpenSession(&SessionRequest{
		Algo:    "line-unit",
		Network: gen.LineProblem(gen.LineConfig{Slots: 24, Resources: 2, Demands: 1, Unit: true}, rand.New(rand.NewSource(3))),
	})
	if err != nil {
		t.Fatal(err)
	}
	id := info.SessionID
	jobs := sessionJobs(32, 5)
	var wg sync.WaitGroup
	errs := make(chan error, len(jobs)+4)
	for i := range jobs {
		wg.Add(1)
		go func(j online.Job) {
			defer wg.Done()
			if _, err := e.SessionEvents(ctx, id, []online.Event{{Op: online.OpAdd, Job: &j}}); err != nil {
				errs <- err
			}
		}(jobs[i])
	}
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.SessionSchedule(ctx, id); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	final, err := e.SessionSchedule(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if final.Jobs != len(jobs)+1 {
		t.Fatalf("final jobs = %d, want %d", final.Jobs, len(jobs)+1)
	}
}

// TestHTTPSessionFlow exercises the four session endpoints over real
// HTTP, including the determinism guarantee: two sessions fed the same
// event stream return byte-identical schedule bodies.
func TestHTTPSessionFlow(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	openBody := `{"algo":"line-unit","scenario":"videowall-line","scenario_seed":3}`
	events := func() string {
		jobs := sessionJobs(2, 13)
		var b strings.Builder
		for i := range jobs {
			line, _ := json.Marshal(online.Event{Op: online.OpAdd, Job: &jobs[i]})
			b.Write(line)
			b.WriteByte('\n')
		}
		line, _ := json.Marshal(online.Event{Op: online.OpRemove, ID: 0})
		b.Write(line)
		b.WriteByte('\n')
		return b.String()
	}()

	runOnce := func() []byte {
		resp, err := http.Post(srv.URL+"/session", "application/json", strings.NewReader(openBody))
		if err != nil {
			t.Fatal(err)
		}
		var info SessionInfo
		decodeBody(t, resp, http.StatusOK, &info)

		resp, err = http.Post(srv.URL+"/session/"+info.SessionID+"/events", "application/x-ndjson", strings.NewReader(events))
		if err != nil {
			t.Fatal(err)
		}
		var evRes SessionEventsResult
		decodeBody(t, resp, http.StatusOK, &evRes)
		if evRes.Applied != 3 {
			t.Fatalf("applied = %d", evRes.Applied)
		}

		resp, err = http.Get(srv.URL + "/session/" + info.SessionID + "/schedule")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("schedule status %d: %s", resp.StatusCode, body)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		// The session id differs per session; strip it before comparing.
		body = bytes.Replace(body, []byte(info.SessionID), []byte("SID"), -1)

		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/session/"+info.SessionID, nil)
		dresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusOK {
			t.Fatalf("delete status %d", dresp.StatusCode)
		}
		return body
	}

	a, b := runOnce(), runOnce()
	if !bytes.Equal(a, b) {
		t.Fatalf("same event stream produced different schedules:\n%s\n%s", a, b)
	}

	// Unknown session → 404.
	resp, err := http.Get(srv.URL + "/session/s-999/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session status %d", resp.StatusCode)
	}
}

func decodeBody(t *testing.T, resp *http.Response, wantStatus int, v any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want %d: %s", resp.StatusCode, wantStatus, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestResultMemoKeyIncludesAlgorithm is the memoization regression
// guard: two algorithms on the identical problem must never share a
// memo entry, even though keyOptions collapses their option sets.
func TestResultMemoKeyIncludesAlgorithm(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	ctx := context.Background()
	p := testProblem(21)

	// greedy and exact both normalize to zero Options — if the key
	// dropped the algorithm they would collide.
	first, err := e.Solve(ctx, &Request{Algo: "greedy", Problem: p})
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Solve(ctx, &Request{Algo: "exact", Problem: p})
	if err != nil {
		t.Fatal(err)
	}
	if first.Algorithm == second.Algorithm {
		t.Fatalf("both responses claim algorithm %q", first.Algorithm)
	}
	m := e.Metrics()
	if m.ResultMisses != 2 {
		t.Fatalf("expected 2 result-cache misses, got %d (memo key collision?)", m.ResultMisses)
	}
	// And replays hit their own entries.
	again, err := e.Solve(ctx, &Request{Algo: "greedy", Problem: p})
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatal("greedy replay did not hit its memo entry")
	}
	if m := e.Metrics(); m.ResultHits != 1 {
		t.Fatalf("expected 1 hit, got %d", m.ResultHits)
	}
	// The raw key strings must differ on algo alone: keyOptions collapses
	// both algorithms' options to the same normal form.
	oa, na := keyOptions("greedy", core.Options{Epsilon: 0.3, Seed: 7}, 5)
	ob, nb := keyOptions("exact", core.Options{Epsilon: 0.3, Seed: 7}, 5)
	ka := resultKey("h", "greedy", oa, na)
	kb := resultKey("h", "exact", ob, nb)
	if ka == kb {
		t.Fatalf("resultKey collision: %q", ka)
	}
}
