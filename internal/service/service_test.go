package service

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"treesched/internal/gen"
	"treesched/internal/instance"
	"treesched/internal/scenario"
)

func testProblem(seed int64) *instance.Problem {
	rng := rand.New(rand.NewSource(seed))
	return gen.TreeProblem(gen.TreeConfig{N: 20, Trees: 2, Demands: 16, Unit: true}, rng)
}

// TestEveryScenarioSolvesEndToEnd: each preset must solve with its
// default algorithm through the engine, for several seeds.
func TestEveryScenarioSolvesEndToEnd(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	for _, s := range scenario.All() {
		for seed := int64(1); seed <= 3; seed++ {
			// Benchmark-scale presets solve at a capped size: the
			// end-to-end property is size-independent and a default-size
			// line-100k solve is a multi-second benchmark, not a unit test.
			var params scenario.Params
			if s.Scale {
				params = scenario.Params{Demands: 40, Size: 64, Networks: 8}
			}
			resp, err := e.Solve(context.Background(), &Request{
				Algo:           s.DefaultAlgo,
				Scenario:       s.Name,
				ScenarioSeed:   seed,
				ScenarioParams: params,
			})
			if err != nil {
				t.Fatalf("%s seed %d (%s): %v", s.Name, seed, s.DefaultAlgo, err)
			}
			if resp.Scheduled == 0 {
				t.Errorf("%s seed %d: scheduled nothing", s.Name, seed)
			}
			if resp.DualUpperBound > 0 && resp.DualUpperBound+1e-6 < resp.Profit {
				t.Errorf("%s seed %d: DualUB %g < profit %g", s.Name, seed, resp.DualUpperBound, resp.Profit)
			}
		}
	}
}

// TestByteIdenticalResponses: equal requests must marshal to identical
// bytes whether served cold (fresh engine) or from the result cache.
func TestByteIdenticalResponses(t *testing.T) {
	req := func() *Request {
		return &Request{Algo: "tree-unit", Scenario: "profit-ladder", ScenarioSeed: 4, Seed: 2}
	}
	e1 := New(Config{})
	defer e1.Close()
	cold, err := e1.Solve(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	cached, err := e1.Solve(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(Config{})
	defer e2.Close()
	otherEngine, err := e2.Solve(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(cold)
	b, _ := json.Marshal(cached)
	c, _ := json.Marshal(otherEngine)
	if string(a) != string(b) {
		t.Error("cold and cached responses differ")
	}
	if string(a) != string(c) {
		t.Error("responses differ across engines")
	}
	m := e1.Metrics()
	if m.ResultHits != 1 || m.ResultMisses != 1 {
		t.Errorf("result cache hits=%d misses=%d, want 1/1", m.ResultHits, m.ResultMisses)
	}
}

// TestCompiledCacheReuse: one problem, many algorithms and seeds — the
// model must compile exactly once.
func TestCompiledCacheReuse(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	p := testProblem(11)
	for _, algo := range []string{"tree-unit", "sequential", "greedy", "dist-unit"} {
		for seed := uint64(0); seed < 2; seed++ {
			if _, err := e.Solve(context.Background(), &Request{Algo: algo, Problem: p, Seed: seed}); err != nil {
				t.Fatalf("%s seed %d: %v", algo, seed, err)
			}
		}
	}
	m := e.Metrics()
	if m.CompiledMisses != 1 {
		t.Errorf("compiled %d times, want 1 (hits %d)", m.CompiledMisses, m.CompiledHits)
	}
	// Key normalization: greedy and sequential ignore the solver seed,
	// so their seed-0/seed-1 pairs share one memoization entry each —
	// 6 distinct keys, 2 result hits, and a compiled lookup per miss.
	if m.ResultMisses != 6 || m.ResultHits != 2 {
		t.Errorf("result cache hits=%d misses=%d, want 2/6", m.ResultHits, m.ResultMisses)
	}
	if m.CompiledHits != 5 {
		t.Errorf("compiled cache hits = %d, want 5", m.CompiledHits)
	}
}

// TestEveryAlgorithmDispatches: the registry must cover all 12 public
// Solve* entry points and each must run on a suitable problem.
func TestEveryAlgorithmDispatches(t *testing.T) {
	want := []string{"arbitrary", "dist-narrow", "dist-ps", "dist-unit", "exact", "greedy",
		"line-unit", "narrow", "ps", "seq-line", "sequential", "tree-unit"}
	got := Algorithms()
	if len(got) != len(want) {
		t.Fatalf("Algorithms() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Algorithms() = %v, want %v", got, want)
		}
	}

	e := New(Config{})
	defer e.Close()
	// A suitable scenario per algorithm family.
	scenarioFor := map[string]string{
		"tree-unit": "caterpillar-backbone", "sequential": "caterpillar-backbone",
		"dist-unit": "caterpillar-backbone", "exact": "star-uplink",
		"greedy": "sensor-tree", "arbitrary": "sensor-tree",
		"narrow": "narrow-stream", "dist-narrow": "narrow-stream",
		"line-unit": "videowall-line", "seq-line": "videowall-line",
		"ps": "videowall-line", "dist-ps": "videowall-line",
	}
	for _, algo := range got {
		sc := scenarioFor[algo]
		req := &Request{Algo: algo, Scenario: sc, ScenarioSeed: 1,
			ScenarioParams: scenario.Params{Demands: 12, Size: 16}}
		if _, err := e.Solve(context.Background(), req); err != nil {
			t.Errorf("%s on %s: %v", algo, sc, err)
		}
	}
}

// TestRequestValidation covers the rejection paths.
func TestRequestValidation(t *testing.T) {
	e := New(Config{MaxDemands: 10})
	defer e.Close()
	ctx := context.Background()
	cases := []struct {
		name string
		req  *Request
	}{
		{"unknown algo", &Request{Algo: "quantum", Scenario: "sensor-tree"}},
		{"no problem or scenario", &Request{Algo: "tree-unit"}},
		{"both problem and scenario", &Request{Algo: "tree-unit", Problem: testProblem(1), Scenario: "sensor-tree"}},
		{"unknown scenario", &Request{Algo: "tree-unit", Scenario: "nope"}},
		{"too many demands", &Request{Algo: "tree-unit", Problem: testProblem(1)}},
		{"kind mismatch", &Request{Algo: "line-unit", Scenario: "sensor-tree", ScenarioParams: scenario.Params{Demands: 5}}},
	}
	for _, tc := range cases {
		if _, err := e.Solve(ctx, tc.req); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
	m := e.Metrics()
	if m.Errors != int64(len(cases)) {
		t.Errorf("error counter = %d, want %d", m.Errors, len(cases))
	}
}

// TestInternalErrorClassification: server-side faults (here: the exact
// solver exhausting its server-imposed node budget) must not be tagged
// ErrBadRequest — the HTTP layer would blame the client with a 400.
func TestInternalErrorClassification(t *testing.T) {
	e := New(Config{MaxExactNodes: 3})
	defer e.Close()
	_, err := e.Solve(context.Background(), &Request{Algo: "exact", Scenario: "star-uplink", ScenarioSeed: 1})
	if err == nil {
		t.Fatal("expected the node budget to be exhausted")
	}
	if errors.Is(err, ErrBadRequest) {
		t.Fatalf("budget exhaustion classified as a client error: %v", err)
	}
}

// TestResultKeyNormalization: an omitted epsilon and the explicit
// default must share one memoization entry, as must solver seeds on
// seed-insensitive algorithms.
func TestResultKeyNormalization(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	ctx := context.Background()
	if _, err := e.Solve(ctx, &Request{Algo: "tree-unit", Scenario: "star-uplink", ScenarioSeed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Solve(ctx, &Request{Algo: "tree-unit", Scenario: "star-uplink", ScenarioSeed: 1, Epsilon: 0.25}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Solve(ctx, &Request{Algo: "greedy", Scenario: "star-uplink", ScenarioSeed: 1, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Solve(ctx, &Request{Algo: "greedy", Scenario: "star-uplink", ScenarioSeed: 1, Seed: 8}); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.ResultMisses != 2 || m.ResultHits != 2 {
		t.Errorf("result cache hits=%d misses=%d, want 2/2", m.ResultHits, m.ResultMisses)
	}
}

// TestHostileRequestsDoNotCrash: requests that drive core into a panic
// (out-of-range epsilon) or the generator into degenerate sizes must
// come back as errors, not kill the process or leak a worker slot.
func TestHostileRequestsDoNotCrash(t *testing.T) {
	e := New(Config{Workers: 1})
	ctx := context.Background()
	hostile := []*Request{
		{Algo: "tree-unit", Scenario: "caterpillar-backbone", Epsilon: -1},
		{Algo: "tree-unit", Scenario: "caterpillar-backbone", Epsilon: 1.5},
		{Algo: "tree-unit", Scenario: "caterpillar-backbone", ScenarioParams: scenario.Params{Size: 1}},
		{Algo: "tree-unit", Scenario: "caterpillar-backbone", ScenarioParams: scenario.Params{Size: -5}},
		{Algo: "tree-unit", Scenario: "caterpillar-backbone", ScenarioParams: scenario.Params{Networks: -1}},
		{Algo: "tree-unit", Scenario: "spider-hub", ScenarioParams: scenario.Params{Size: 2, Demands: 3}},
	}
	for i, req := range hostile {
		if _, err := e.Solve(ctx, req); err == nil {
			t.Errorf("hostile request %d: expected an error", i)
		} else if !errors.Is(err, ErrBadRequest) {
			t.Errorf("hostile request %d: want ErrBadRequest, got %v", i, err)
		}
	}
	// The single worker slot must still be free: a normal solve succeeds.
	if _, err := e.Solve(ctx, &Request{Algo: "greedy", Scenario: "sensor-tree",
		ScenarioParams: scenario.Params{Demands: 5}}); err != nil {
		t.Fatalf("engine unusable after hostile requests: %v", err)
	}
	// And Close must not hang on leaked in-flight work.
	done := make(chan struct{})
	go func() { e.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung — worker slot leaked")
	}
}

// TestClosedEngine: Solve after Close must fail fast.
func TestClosedEngine(t *testing.T) {
	e := New(Config{})
	e.Close()
	if _, err := e.Solve(context.Background(), &Request{Algo: "greedy", Scenario: "sensor-tree"}); err != ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

// TestConcurrentMixedLoad hammers one engine from many goroutines (run
// under -race in CI): mixed algorithms, scenarios and seeds, with heavy
// key overlap so cache hit paths race with misses.
func TestConcurrentMixedLoad(t *testing.T) {
	e := New(Config{Workers: 4})
	defer e.Close()
	algos := []string{"tree-unit", "greedy", "sequential", "arbitrary"}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			req := &Request{
				Algo:         algos[g%len(algos)],
				Scenario:     "caterpillar-backbone",
				ScenarioSeed: int64(g % 2),
				Seed:         uint64(g % 3),
			}
			if _, err := e.Solve(context.Background(), req); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Requests != 32 {
		t.Errorf("requests = %d, want 32", m.Requests)
	}
	if m.CompiledMisses > 4 {
		t.Errorf("compiled %d times for 2 distinct problems", m.CompiledMisses)
	}
}

// TestLRU unit-tests the cache.
func TestLRU(t *testing.T) {
	c := newLRU[int](2)
	c.add("a", 1)
	c.add("b", 2)
	if v, ok := c.get("a"); !ok || v != 1 {
		t.Fatal("lost a")
	}
	c.add("c", 3) // evicts b (least recently used)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c should be present")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}
