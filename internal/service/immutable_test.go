package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"treesched/internal/instance"
)

// The immutability contract of the result-cache value path, audited and
// pinned here: a cached *Response is shared — concurrent requests,
// singleflight followers and later cache hits all receive the same
// pointer. The only writes to a Response happen in execute, before
// results.add publishes it (grep discipline: no assignment to Response
// fields or Selected elements exists after insertion anywhere in this
// package), so sharing is safe exactly as long as nobody mutates. The
// HTTP boundary enforces that for clients by construction: handlers
// marshal the shared object, so a client mutating its own decoded copy
// can never reach the cache.

// TestCachedResponseSharedPointer pins the sharing itself: a result
// cache hit and a singleflight follower both hand out the identical
// object, not a copy. (If this ever changes to deep copies, the
// byte-identical guarantees must be re-proven; this test is the
// tripwire.)
func TestCachedResponseSharedPointer(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	req := func() *Request {
		return &Request{Algo: "tree-unit", Scenario: "profit-ladder", ScenarioSeed: 3}
	}
	first, err := e.Solve(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Solve(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("result-cache hit returned a different *Response: the shared-pointer memoization contract changed")
	}
}

// TestHandlerCannotObserveMutatedCachedResponse: a client that decodes
// a /solve response and scribbles all over its copy (fields and the
// Selected slice) must get byte-identical JSON on the next identical
// request — client-side mutation cannot reach the cached object
// through the HTTP boundary.
func TestHandlerCannotObserveMutatedCachedResponse(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	body := `{"algo":"tree-unit","scenario":"profit-ladder","scenario_seed":5}`
	post := func() []byte {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	original := post() // cold: populates the result cache
	var decoded Response
	if err := json.Unmarshal(original, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Selected) == 0 {
		t.Fatal("want a non-empty selection to mutate")
	}
	// The hostile client: mutate every reachable field of the copy,
	// including elements of the decoded slice.
	decoded.Profit = -1
	decoded.Algorithm = "corrupted"
	decoded.Selected[0] = instance.Inst{}
	decoded.Selected = decoded.Selected[:0]

	cached := post() // result-cache hit: serves the shared *Response
	if !bytes.Equal(original, cached) {
		t.Fatalf("cached response changed after client-side mutation:\nbefore: %s\nafter:  %s", original, cached)
	}
}
