package service

import (
	"hash/fnv"
	"runtime"
)

// shardedCache is the production form of the engine's two LRUs: the key
// space is hash-partitioned across a power-of-two number of independent
// single-lock lru shards, so concurrent hits on different keys contend
// only when they collide on a shard. Each shard keeps the exact
// eviction semantics of the single-lock lru (which the equivalence
// tests pin shard by shard); sharding changes lock layout only, never
// which keys are cached. With one shard it IS the single-lock cache —
// that is the oracle path CacheShards=1 selects.
//
// Capacity is divided evenly across shards, rounding up, so the total
// never falls below the configured capacity; eviction pressure is
// per-shard, which under a hashed key population approximates global
// LRU closely enough for a memoization cache (hot keys stay resident
// in their shard regardless of what other shards evict).
type shardedCache[V any] struct {
	shards []*lru[V]
	mask   uint64
}

// resolveShards maps the CacheShards knob to an effective shard count:
// <=0 derives from GOMAXPROCS (two shards per scheduler thread keeps
// collision contention low at full parallelism), everything rounds up
// to a power of two and is clamped to [1, 256].
func resolveShards(n int) int {
	if n <= 0 {
		n = 2 * runtime.GOMAXPROCS(0)
	}
	if n > 256 {
		n = 256
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// newShardedCache builds a cache of the given total capacity split over
// shards (already resolved by resolveShards; must be a power of two).
func newShardedCache[V any](capacity, shards int) *shardedCache[V] {
	perShard := (capacity + shards - 1) / shards
	c := &shardedCache[V]{
		shards: make([]*lru[V], shards),
		mask:   uint64(shards - 1),
	}
	for i := range c.shards {
		c.shards[i] = newLRU[V](perShard)
	}
	return c
}

// shardIndex picks the shard owning key: FNV-1a over the key, masked
// to the shard count. The canonical problem hash and the result key
// both embed a SHA-256 hex digest, so the low bits are already
// uniform; FNV keeps scenario-form keys (readable, structured) uniform
// too. The equivalence tests partition their oracle caches with this
// exact function.
func (c *shardedCache[V]) shardIndex(key string) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() & c.mask)
}

func (c *shardedCache[V]) shardFor(key string) *lru[V] {
	return c.shards[c.shardIndex(key)]
}

func (c *shardedCache[V]) get(key string) (V, bool) { return c.shardFor(key).get(key) }

// setOnEvict installs fn as every shard's eviction observer (the engine
// routes evictions into the flight recorder's event log). Call before
// the cache is shared; fn runs under the evicting shard's lock and must
// not call back into the cache.
func (c *shardedCache[V]) setOnEvict(fn func(key string)) {
	for _, s := range c.shards {
		s.onEvict = fn
	}
}

func (c *shardedCache[V]) add(key string, val V) { c.shardFor(key).add(key, val) }

// len sums the shard occupancies. Concurrent mutations may skew the
// total slightly; it feeds monitoring gauges only.
func (c *shardedCache[V]) len() int {
	n := 0
	for _, s := range c.shards {
		n += s.len()
	}
	return n
}
