package service

import (
	"container/list"
	"sync"
)

// lru is a small thread-safe least-recently-used cache. It is the
// single-lock reference implementation: production engines run the
// hash-partitioned shardedCache built from per-shard lru instances
// (see shard.go), and the equivalence tests drive this type directly
// as the semantic oracle. Values must be immutable after insertion —
// hits hand out the stored pointer.
type lru[V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *lruEntry[V]
	items map[string]*list.Element
	// onEvict, when set, observes each capacity eviction in order. It
	// runs under mu and must not call back into the cache. Production
	// engines route it into the flight recorder's event log; the
	// equivalence tests use it to compare eviction sequences.
	onEvict func(key string)
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int) *lru[V] {
	return &lru[V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached value and marks it most recently used.
func (c *lru[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// add inserts or refreshes key, evicting the least recently used entry
// when over capacity.
func (c *lru[V]) add(key string, val V) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry[V]{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		k := oldest.Value.(*lruEntry[V]).key
		delete(c.items, k)
		if c.onEvict != nil {
			c.onEvict(k)
		}
	}
}

// len reports the current entry count.
func (c *lru[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// keysMRU dumps the keys most-recent-first without touching recency.
// Test-only: the equivalence suite compares full orderings against the
// sharded cache after a deterministic op sequence.
func (c *lru[V]) keysMRU() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry[V]).key)
	}
	return out
}
