package service

import (
	"container/list"
	"sync"
)

// lru is a small thread-safe least-recently-used cache. The serving
// engine keeps two: compiled problem models keyed on the canonical
// problem hash, and memoized solve responses keyed on
// (problem hash, algorithm, options). Values must be immutable after
// insertion — hits hand out the stored pointer.
type lru[V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *lruEntry[V]
	items map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int) *lru[V] {
	return &lru[V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached value and marks it most recently used.
func (c *lru[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// add inserts or refreshes key, evicting the least recently used entry
// when over capacity.
func (c *lru[V]) add(key string, val V) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry[V]{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
	}
}

// len reports the current entry count.
func (c *lru[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
