package service

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// driveEquivalence applies one deterministic get/add op sequence to a
// sharded cache and to single-lock oracle lrus partitioned by the same
// hash, comparing the hit/miss outcome of every get, the eviction
// trace of every shard, and the final per-shard recency orders.
func driveEquivalence(t *testing.T, shards, capacity, keys, ops int, seed int64) {
	t.Helper()
	sc := newShardedCache[int](capacity, shards)
	perShard := (capacity + shards - 1) / shards
	oracles := make([]*lru[int], shards)
	scEvicts := make([][]string, shards)
	orEvicts := make([][]string, shards)
	for i := range oracles {
		i := i
		oracles[i] = newLRU[int](perShard)
		oracles[i].onEvict = func(k string) { orEvicts[i] = append(orEvicts[i], k) }
		sc.shards[i].onEvict = func(k string) { scEvicts[i] = append(scEvicts[i], k) }
	}

	rng := rand.New(rand.NewSource(seed))
	for op := 0; op < ops; op++ {
		key := fmt.Sprintf("key-%d", rng.Intn(keys))
		idx := sc.shardIndex(key)
		if rng.Intn(3) == 0 {
			sv, sok := sc.get(key)
			ov, ook := oracles[idx].get(key)
			if sok != ook || sv != ov {
				t.Fatalf("op %d: get(%q) = (%d,%t) sharded vs (%d,%t) oracle", op, key, sv, sok, ov, ook)
			}
		} else {
			sc.add(key, op)
			oracles[idx].add(key, op)
		}
	}

	for i := range oracles {
		if got, want := sc.shards[i].keysMRU(), oracles[i].keysMRU(); !reflect.DeepEqual(got, want) {
			t.Fatalf("shard %d recency order diverged:\nsharded: %v\noracle:  %v", i, got, want)
		}
		if !reflect.DeepEqual(scEvicts[i], orEvicts[i]) {
			t.Fatalf("shard %d eviction trace diverged:\nsharded: %v\noracle:  %v", i, scEvicts[i], orEvicts[i])
		}
		if sc.shards[i].len() != oracles[i].len() {
			t.Fatalf("shard %d len %d vs oracle %d", i, sc.shards[i].len(), oracles[i].len())
		}
	}
}

// TestShardedCacheMatchesOracle: under a deterministic key sequence,
// every shard of the sharded cache behaves byte-for-byte like the old
// single-lock lru over that shard's key partition — same hits, same
// misses, same evictions in the same order, same final recency order.
func TestShardedCacheMatchesOracle(t *testing.T) {
	for _, tc := range []struct {
		shards, capacity, keys, ops int
	}{
		{1, 16, 64, 20000},  // the CacheShards=1 oracle path itself
		{4, 32, 200, 20000}, // eviction-heavy: ~6x more keys than capacity
		{8, 64, 96, 20000},  // hit-heavy: keys comparable to capacity
		{4, 3, 50, 5000},    // capacity not divisible by shards (rounds up)
	} {
		t.Run(fmt.Sprintf("shards=%d/cap=%d", tc.shards, tc.capacity), func(t *testing.T) {
			driveEquivalence(t, tc.shards, tc.capacity, tc.keys, tc.ops, 42)
		})
	}
}

// TestResolveShards pins the CacheShards knob semantics: 0 derives
// from GOMAXPROCS (at least one shard), 1 is exactly one shard (the
// oracle path), everything else rounds up to a power of two with a cap.
func TestResolveShards(t *testing.T) {
	if got := resolveShards(1); got != 1 {
		t.Fatalf("resolveShards(1) = %d, want 1 (single-shard oracle path)", got)
	}
	for _, n := range []int{0, -3} {
		got := resolveShards(n)
		if got < 1 || got&(got-1) != 0 {
			t.Fatalf("resolveShards(%d) = %d, want a positive power of two", n, got)
		}
	}
	if got := resolveShards(3); got != 4 {
		t.Fatalf("resolveShards(3) = %d, want 4", got)
	}
	if got := resolveShards(64); got != 64 {
		t.Fatalf("resolveShards(64) = %d, want 64", got)
	}
	if got := resolveShards(100000); got != 256 {
		t.Fatalf("resolveShards(100000) = %d, want the 256 cap", got)
	}
}

// TestEngineShardConfigEquivalence: the same request stream produces
// byte-identical responses and identical result hit/miss totals at one
// shard (the oracle layout) and many shards — sharding is invisible
// above the lock layout. Cache sizes are the defaults, so no eviction
// fires: under eviction pressure per-shard LRU legitimately diverges
// from global LRU (each shard evicts its own tail), which is the one
// semantic difference sharding is allowed to make.
func TestEngineShardConfigEquivalence(t *testing.T) {
	run := func(shardCfg int) (resps []string, snap MetricsSnapshot) {
		e := New(Config{Workers: 2, CacheShards: shardCfg})
		defer e.Close()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 120; i++ {
			resp, err := e.Solve(t.Context(), &Request{
				Algo:         "tree-unit",
				Scenario:     "profit-ladder",
				ScenarioSeed: int64(rng.Intn(6)),
				Seed:         uint64(rng.Intn(2)),
			})
			if err != nil {
				t.Fatal(err)
			}
			resps = append(resps, fmt.Sprintf("%.6f/%d", resp.Profit, resp.Scheduled))
		}
		return resps, e.Metrics()
	}
	oneR, oneS := run(1)
	manyR, manyS := run(16)
	if !reflect.DeepEqual(oneR, manyR) {
		t.Fatal("responses diverged between CacheShards=1 and CacheShards=16")
	}
	if oneS.ResultHits != manyS.ResultHits || oneS.ResultMisses != manyS.ResultMisses {
		t.Fatalf("result hit/miss diverged: 1 shard %d/%d vs 16 shards %d/%d",
			oneS.ResultHits, oneS.ResultMisses, manyS.ResultHits, manyS.ResultMisses)
	}
	if oneS.CacheShards != 1 || manyS.CacheShards != 16 {
		t.Fatalf("cache_shards snapshot = %d/%d, want 1/16", oneS.CacheShards, manyS.CacheShards)
	}
}
