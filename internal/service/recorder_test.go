package service

// Flight-recorder contract tests: the zero-overhead byte-identical
// mode, the slow-request timeline via /debug/requests/{id}, the
// follower→leader trace linkage, the /debug endpoints through the
// strict double-WriteHeader server, the NDJSON request log, session
// lifecycle events and the SLO accounting.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"treesched/internal/obs"
	"treesched/internal/online"
)

// TestTraceSampleZeroByteIdentical: with the recorder enabled and span
// sampling off (the serving default), every response body is
// byte-identical to a DisableRecorder engine's.
func TestTraceSampleZeroByteIdentical(t *testing.T) {
	oracle := New(Config{Workers: 2, DisableRecorder: true})
	defer oracle.Close()
	recorded := New(Config{Workers: 2}) // recorder on, TraceSample 0
	defer recorded.Close()
	if recorded.Recorder() == nil || oracle.Recorder() != nil {
		t.Fatal("engine recorder wiring inverted")
	}

	srvA := httptest.NewServer(oracle.Handler())
	defer srvA.Close()
	srvB := httptest.NewServer(recorded.Handler())
	defer srvB.Close()

	bodies := []struct {
		path, body string
	}{
		{"/solve", `{"algo":"tree-unit","scenario":"caterpillar-backbone","scenario_seed":3}`},
		{"/solve", `{"algo":"tree-unit","scenario":"caterpillar-backbone","scenario_seed":3}`}, // cache hit path
		{"/solve", `{"algo":"dist-unit","scenario":"profit-ladder","scenario_seed":1}`},
		{"/solve", `{"algo":"quantum","scenario":"sensor-tree"}`}, // error path
		{"/batch", `{"algo":"greedy","scenario":"sensor-tree","scenario_seed":2}` + "\n" +
			`{"algo":"line-unit","scenario":"videowall-line","scenario_seed":5}` + "\n"},
		{"/session", `{"algo":"tree-unit","scenario":"caterpillar-backbone","scenario_seed":1}`},
	}
	for _, req := range bodies {
		statusA, bodyA := postJSON(t, srvA.URL+req.path, req.body)
		statusB, bodyB := postJSON(t, srvB.URL+req.path, req.body)
		if statusA != statusB {
			t.Fatalf("%s: status %d vs %d", req.path, statusA, statusB)
		}
		if !bytes.Equal(bodyA, bodyB) {
			t.Fatalf("%s: recorder (sample=0) changed the response body:\n%s\nvs\n%s", req.path, bodyA, bodyB)
		}
	}
}

// TestSlowRequestTimeline is the acceptance scenario: a request over
// the slow threshold is retrievable by its X-Request-ID with a full
// phase timeline via GET /debug/requests/{id}.
func TestSlowRequestTimeline(t *testing.T) {
	e := New(Config{Workers: 2, TraceSample: 1, SlowThreshold: time.Nanosecond})
	defer e.Close()
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	req, err := http.NewRequest(http.MethodPost, srv.URL+"/solve",
		strings.NewReader(`{"algo":"dist-unit","scenario":"profit-ladder","scenario_seed":2}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "diag-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "diag-42" {
		t.Fatalf("response echoed X-Request-ID %q, want diag-42", got)
	}

	dresp, err := http.Get(srv.URL + "/debug/requests/diag-42")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests/diag-42 status %d", dresp.StatusCode)
	}
	var payload debugRequestPayload
	if err := json.NewDecoder(dresp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	rec := payload.Record
	if rec == nil {
		t.Fatalf("no completed record for diag-42: %+v", payload)
	}
	if rec.Endpoint != "solve" || rec.Algo != "dist-unit" || rec.Outcome != outcomeSolved || rec.DurNs <= 0 {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Trace == nil || len(rec.Trace.Spans) == 0 {
		t.Fatal("slow request retained no span timeline")
	}
	names := map[string]bool{}
	for _, sp := range rec.Trace.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"queued", "compiled_model", "solve", "verify"} {
		if !names[want] {
			t.Fatalf("timeline misses the %q phase; spans: %v", want, names)
		}
	}
	// The solver's own phase spans nest under the request tree, and the
	// distributed run surfaces its per-round wall clock.
	if len(rec.Trace.Spans) <= 4 {
		t.Fatalf("no solver-internal spans nested under the request: %d spans", len(rec.Trace.Spans))
	}
	if rec.Trace.RoundsSummary == nil || rec.Trace.RoundsSummary.Rounds <= 0 {
		t.Fatalf("dist solve trace carries no rounds summary: %+v", rec.Trace.RoundsSummary)
	}

	// The request also landed in the slow-class listing (threshold 1ns).
	lresp, err := http.Get(srv.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listing debugRequestsPayload
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range listing.Slow {
		if r.ID == "diag-42" {
			found = true
			if r.Trace != nil {
				t.Fatal("listing leaked a span timeline (Lookup serves those)")
			}
		}
	}
	if !found {
		t.Fatalf("diag-42 missing from the slow class: %+v", listing.Slow)
	}
}

// TestFollowerLinksLeader: a coalesced request's record names the
// leader whose solve served it, and the coalescing lands in the event
// log. The leader is parked on the test gate until the follower has
// joined its flight, so the linkage is deterministic.
func TestFollowerLinksLeader(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()

	gotKey := make(chan string, 1)
	release := make(chan struct{})
	e.solveGate = func(key string) {
		gotKey <- key
		<-release
	}
	req := func() *Request {
		return &Request{Algo: "tree-unit", Scenario: "profit-ladder", ScenarioSeed: 7, Seed: 1}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.Solve(WithRequestID(context.Background(), "leader-1"), req()); err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	key := <-gotKey // the first request is now the flight leader
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.Solve(WithRequestID(context.Background(), "follower-1"), req()); err != nil {
			t.Errorf("follower: %v", err)
		}
	}()
	awaitWaiters(t, &e.solveFlight, key, 1)
	close(release)
	wg.Wait()

	rec, ok := e.Recorder().Lookup("follower-1")
	if !ok {
		t.Fatal("follower record not retained")
	}
	if rec.Outcome != outcomeCoalesced || rec.LinkedTo != "leader-1" {
		t.Fatalf("follower record = %+v, want coalesced + linked to leader-1", rec)
	}
	lead, ok := e.Recorder().Lookup("leader-1")
	if !ok || lead.Outcome != outcomeSolved {
		t.Fatalf("leader record = %+v (ok=%v)", lead, ok)
	}
	var coalesce *obs.Event
	for _, ev := range e.Recorder().Events(0) {
		if ev.Type == "coalesce" && ev.ID == "follower-1" {
			coalesce = &ev
			break
		}
	}
	if coalesce == nil || !strings.Contains(coalesce.Detail, "leader-1") {
		t.Fatalf("no coalesce event naming the leader: %+v", coalesce)
	}
}

// TestDebugEndpointsContract drives the /debug surface through the
// strict server: every response is one status code with one JSON body,
// unknown ids answer a single 404 document, and generated request ids
// are echoed and resolvable.
func TestDebugEndpointsContract(t *testing.T) {
	srv := newStrictServer(t)

	// A request without an id gets one minted and echoed.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/solve",
		strings.NewReader(`{"algo":"greedy","scenario":"sensor-tree","scenario_seed":4}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	minted := resp.Header.Get("X-Request-ID")
	if minted == "" {
		t.Fatal("no X-Request-ID minted for an id-less request")
	}

	dresp, err := http.Get(srv.URL + "/debug/requests/" + minted)
	if err != nil {
		t.Fatal(err)
	}
	var payload debugRequestPayload
	body := decodeAll(t, dresp)
	if dresp.StatusCode != http.StatusOK || json.Unmarshal(body, &payload) != nil || payload.Record == nil {
		t.Fatalf("minted id not resolvable: status %d body %s", dresp.StatusCode, body)
	}
	if payload.Record.Endpoint != "solve" {
		t.Fatalf("record endpoint = %q", payload.Record.Endpoint)
	}

	lresp, err := http.Get(srv.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var listing debugRequestsPayload
	if body := decodeAll(t, lresp); lresp.StatusCode != http.StatusOK || json.Unmarshal(body, &listing) != nil {
		t.Fatalf("/debug/requests: status %d body %s", lresp.StatusCode, body)
	}
	if len(listing.Recent) == 0 {
		t.Fatal("recent class empty after a completed request")
	}
	if listing.Active == nil || listing.Slow == nil || listing.Errors == nil {
		t.Fatal("listing classes must marshal as arrays, never null")
	}

	eresp, err := http.Get(srv.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	var events debugEventsPayload
	if body := decodeAll(t, eresp); eresp.StatusCode != http.StatusOK || json.Unmarshal(body, &events) != nil {
		t.Fatalf("/debug/events: status %d body %s", eresp.StatusCode, body)
	}

	status, body := getStatus(t, srv.URL+"/debug/requests/never-seen")
	wantJSONError(t, "unknown request id", status, http.StatusNotFound, body)
}

// TestDebugDisabledRecorder: with DisableRecorder the /debug surface
// answers a single 404 JSON document.
func TestDebugDisabledRecorder(t *testing.T) {
	e := New(Config{Workers: 1, DisableRecorder: true})
	defer e.Close()
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	for _, path := range []string{"/debug/requests", "/debug/requests/x", "/debug/events"} {
		status, body := getStatus(t, srv.URL+path)
		wantJSONError(t, path, status, http.StatusNotFound, body)
	}
}

func decodeAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func getStatus(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, decodeAll(t, resp)
}

// TestRequestLogNDJSON: Config.RequestLog receives one parseable line
// per completed request, span timelines stripped, errors included.
func TestRequestLogNDJSON(t *testing.T) {
	var buf bytes.Buffer
	e := New(Config{Workers: 2, RequestLog: &buf, TraceSample: 1})
	defer e.Close()
	ctx := context.Background()

	if _, err := e.Solve(WithRequestID(ctx, "log-ok"), &Request{
		Algo: "greedy", Scenario: "sensor-tree", ScenarioSeed: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Solve(WithRequestID(ctx, "log-bad"), &Request{Algo: "quantum"}); err == nil {
		t.Fatal("bad algo solved")
	}
	info, err := e.OpenSession(&SessionRequest{Algo: "tree-unit", Scenario: "caterpillar-backbone", ScenarioSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SessionSchedule(WithRequestID(ctx, "log-sched"), info.SessionID); err != nil {
		t.Fatal(err)
	}

	var recs []obs.ReqRecord
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec obs.ReqRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("unparseable request-log line: %s", sc.Bytes())
		}
		if rec.Trace != nil {
			t.Fatalf("request log leaked a span timeline: %s", sc.Bytes())
		}
		recs = append(recs, rec)
	}
	if len(recs) != 3 {
		t.Fatalf("%d request-log lines, want 3", len(recs))
	}
	byID := map[string]obs.ReqRecord{}
	for _, r := range recs {
		byID[r.ID] = r
	}
	if r := byID["log-ok"]; r.Endpoint != "solve" || r.Algo != "greedy" || r.Error != "" {
		t.Fatalf("log-ok line = %+v", r)
	}
	if r := byID["log-bad"]; r.Error == "" {
		t.Fatalf("log-bad line lost its error: %+v", r)
	}
	if r := byID["log-sched"]; r.Endpoint != "session_schedule" {
		t.Fatalf("log-sched line = %+v", r)
	}
}

// TestSessionLifecycleEvents: open/close/evict (both LRU and idle) and
// resolves appear in the event log with the session id.
func TestSessionLifecycleEvents(t *testing.T) {
	e := New(Config{Workers: 1, MaxSessions: 1, SessionIdleTimeout: 40 * time.Millisecond})
	defer e.Close()
	ctx := context.Background()
	open := func() string {
		t.Helper()
		info, err := e.OpenSession(&SessionRequest{Algo: "tree-unit", Scenario: "caterpillar-backbone", ScenarioSeed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return info.SessionID
	}

	s1 := open()
	if _, err := e.SessionEvents(ctx, s1, []online.Event{{Op: online.OpResolve}}); err != nil {
		t.Fatal(err)
	}
	s2 := open() // capacity 1: evicts s1 via LRU
	time.Sleep(60 * time.Millisecond)
	s3 := open() // idle sweep evicts s2
	if err := e.CloseSession(s3); err != nil {
		t.Fatal(err)
	}

	byType := map[string][]obs.Event{}
	for _, ev := range e.Recorder().Events(0) {
		byType[ev.Type] = append(byType[ev.Type], ev)
	}
	if n := len(byType["session_open"]); n != 3 {
		t.Fatalf("%d session_open events, want 3", n)
	}
	if evs := byType["session_evict_lru"]; len(evs) != 1 || evs[0].Detail != s1 {
		t.Fatalf("session_evict_lru events = %+v, want exactly %s", evs, s1)
	}
	if evs := byType["session_evict_idle"]; len(evs) != 1 || evs[0].Detail != s2 {
		t.Fatalf("session_evict_idle events = %+v, want exactly %s", evs, s2)
	}
	if evs := byType["session_close"]; len(evs) != 1 || evs[0].Detail != s3 {
		t.Fatalf("session_close events = %+v, want exactly %s", evs, s3)
	}
	resolves := byType["session_resolve"]
	if len(resolves) != 1 || !strings.Contains(resolves[0].Detail, "session="+s1) {
		t.Fatalf("session_resolve events = %+v", resolves)
	}
}

// TestSLOAccounting: objective misses and server-side failures burn
// error budget; client errors spend none; the snapshot and Prometheus
// expositions both carry the series.
func TestSLOAccounting(t *testing.T) {
	// A 1ns objective makes every completed solve an objective miss.
	e := New(Config{Workers: 1, SolveSLO: time.Nanosecond, SLOTarget: 0.99})
	defer e.Close()
	ctx := context.Background()

	if _, err := e.Solve(ctx, &Request{Algo: "greedy", Scenario: "sensor-tree", ScenarioSeed: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Solve(ctx, &Request{Algo: "quantum"}); err == nil {
		t.Fatal("bad algo solved")
	}

	slo := e.Metrics().SLO
	solve, ok := slo["solve"]
	if !ok {
		t.Fatalf("metrics snapshot misses the solve SLO: %+v", slo)
	}
	// One accounted request (the client error spends no budget), and it
	// missed the 1ns objective.
	if solve.Total != 1 || solve.Good != 0 {
		t.Fatalf("solve SLO good/total = %d/%d, want 0/1", solve.Good, solve.Total)
	}
	if solve.BurnRate5m < 99 || solve.BurnRateTotal < 99 {
		t.Fatalf("burn rates = %g/%g, want ~100 (bad fraction 1.0 over a 0.01 budget)",
			solve.BurnRate5m, solve.BurnRateTotal)
	}
	if sess, ok := slo["session"]; !ok || sess.Total != 0 {
		t.Fatalf("session SLO = %+v (ok=%v), want present with no traffic", sess, ok)
	}

	var prom bytes.Buffer
	if err := e.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, series := range []string{
		`sched_slo_requests_total{class="solve"} 1`,
		`sched_slo_good_total{class="solve"} 0`,
		`sched_slo_burn_rate{class="solve",window="5m"}`,
		`sched_slo_burn_rate{class="solve",window="total"}`,
		`sched_slo_burn_rate{class="session",window="5m"}`,
		`sched_active_requests`,
	} {
		if !strings.Contains(out, series) {
			t.Fatalf("Prometheus exposition misses %q:\n%s", series, out)
		}
	}
}

// TestCacheEvictionEvents: capacity evictions of the result cache land
// in the event log.
func TestCacheEvictionEvents(t *testing.T) {
	e := New(Config{Workers: 1, ResultCacheSize: 1, CacheShards: 1})
	defer e.Close()
	ctx := context.Background()
	for seed := int64(1); seed <= 3; seed++ {
		if _, err := e.Solve(ctx, &Request{Algo: "greedy", Scenario: "sensor-tree", ScenarioSeed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	for _, ev := range e.Recorder().Events(0) {
		if ev.Type == "evict_result" {
			n++
		}
	}
	if n < 2 {
		t.Fatalf("%d evict_result events after overflowing a 1-entry cache, want >=2", n)
	}
}
