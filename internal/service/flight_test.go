package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"treesched/internal/core"
)

// awaitWaiters polls until the flight has n blocked followers on key.
func awaitWaiters[V any](t *testing.T, g *flightGroup[V], key string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for g.waitersFor(key) < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d followers on %q (have %d)", n, key, g.waitersFor(key))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSingleflightContract is the coalescing contract of the issue: K
// concurrent identical requests perform exactly one underlying solve
// and all K receive byte-identical responses. The leader is parked on
// the test gate until every follower has joined its flight, so the
// coalescing is deterministic, not a lucky interleaving — run under
// -race in CI.
func TestSingleflightContract(t *testing.T) {
	const K = 8
	e := New(Config{Workers: 2})
	defer e.Close()

	gotKey := make(chan string, 1)
	release := make(chan struct{})
	e.solveGate = func(key string) {
		gotKey <- key // exactly one leader reaches the gate
		<-release
	}
	req := func() *Request {
		return &Request{Algo: "tree-unit", Scenario: "profit-ladder", ScenarioSeed: 4, Seed: 2}
	}

	var wg sync.WaitGroup
	resps := make([]*Response, K)
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = e.Solve(context.Background(), req())
		}(i)
	}
	key := <-gotKey
	awaitWaiters(t, &e.solveFlight, key, K-1)
	close(release)
	wg.Wait()

	var first []byte
	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		b, err := json.Marshal(resps[i])
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = b
		} else if !bytes.Equal(first, b) {
			t.Fatalf("request %d response differs:\n%s\nvs\n%s", i, first, b)
		}
	}

	snap := e.Metrics()
	// Exactly one solver execution: the latency histogram observes each
	// actual run and nothing else.
	if snap.SolveLatency.Count != 1 {
		t.Fatalf("underlying solves = %d, want exactly 1", snap.SolveLatency.Count)
	}
	if snap.SolvesCoalesced != K-1 {
		t.Fatalf("solves_coalesced = %d, want %d", snap.SolvesCoalesced, K-1)
	}
	if snap.ResultMisses != K || snap.ResultHits != 0 {
		t.Fatalf("result cache hits/misses = %d/%d, want 0/%d", snap.ResultHits, snap.ResultMisses, K)
	}

	// Memoization oracle from PR 2: a later identical request is a cache
	// hit and still marshals byte-identically.
	e.solveGate = nil
	cached, err := e.Solve(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := json.Marshal(cached); !bytes.Equal(first, b) {
		t.Fatalf("cached response differs from coalesced response:\n%s\nvs\n%s", first, b)
	}
	if snap := e.Metrics(); snap.ResultHits != 1 {
		t.Fatalf("result hits after follow-up = %d, want 1", snap.ResultHits)
	}
}

// TestSingleflightErrorNotCached pins the failure side of the contract:
// a coalesced flight whose leader errors hands the error to exactly the
// concurrent followers, caches nothing (error responses must never be
// memoized — the infeasible-solution gate funnels through the same
// error return), and the next arrival re-executes.
func TestSingleflightErrorNotCached(t *testing.T) {
	const K = 4
	e := New(Config{Workers: 2})
	defer e.Close()

	gotKey := make(chan string, 1)
	release := make(chan struct{})
	e.solveGate = func(key string) {
		gotKey <- key
		<-release
	}
	// Exact with a one-node budget on a nontrivial instance exhausts its
	// branch-and-bound budget: a post-validation, in-solver error.
	req := func() *Request {
		return &Request{Algo: "exact", Scenario: "profit-ladder", ScenarioSeed: 4, MaxNodes: 1}
	}

	var wg sync.WaitGroup
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Solve(context.Background(), req())
		}(i)
	}
	key := <-gotKey
	awaitWaiters(t, &e.solveFlight, key, K-1)
	close(release)
	wg.Wait()

	for i, err := range errs {
		if !errors.Is(err, core.ErrExactTooLarge) {
			t.Fatalf("request %d: err = %v, want ErrExactTooLarge", i, err)
		}
	}
	snap := e.Metrics()
	if snap.SolveLatency.Count != 1 {
		t.Fatalf("underlying solves = %d, want exactly 1", snap.SolveLatency.Count)
	}
	if snap.SolvesCoalesced != K-1 {
		t.Fatalf("solves_coalesced = %d, want %d", snap.SolvesCoalesced, K-1)
	}
	if snap.ResultEntries != 0 {
		t.Fatalf("result cache holds %d entries after an error, want 0", snap.ResultEntries)
	}

	// The error was not cached: a fresh arrival re-executes (and fails
	// again, on its own solver run).
	e.solveGate = nil
	if _, err := e.Solve(context.Background(), req()); !errors.Is(err, core.ErrExactTooLarge) {
		t.Fatalf("follow-up err = %v, want ErrExactTooLarge", err)
	}
	if snap := e.Metrics(); snap.SolveLatency.Count != 2 {
		t.Fatalf("underlying solves after follow-up = %d, want 2 (error must not be cached)", snap.SolveLatency.Count)
	}
}

// TestSingleflightFollowerCancellation: a follower whose own context
// expires abandons the wait with its ctx error while the leader (and
// its other followers) complete normally.
func TestSingleflightFollowerCancellation(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()

	gotKey := make(chan string, 1)
	release := make(chan struct{})
	e.solveGate = func(key string) {
		gotKey <- key
		<-release
	}
	req := func() *Request {
		return &Request{Algo: "tree-unit", Scenario: "profit-ladder", ScenarioSeed: 9}
	}

	leaderErr := make(chan error, 1)
	go func() {
		_, err := e.Solve(context.Background(), req())
		leaderErr <- err
	}()
	key := <-gotKey

	ctx, cancel := context.WithCancel(context.Background())
	followerErr := make(chan error, 1)
	go func() {
		_, err := e.Solve(ctx, req())
		followerErr <- err
	}()
	awaitWaiters(t, &e.solveFlight, key, 1)
	cancel()
	if err := <-followerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v, want context.Canceled", err)
	}
	close(release)
	if err := <-leaderErr; err != nil {
		t.Fatalf("leader err = %v, want nil", err)
	}
}

// TestCompileFlightCoalesces: K concurrent requests that differ in
// algorithm share one problem, so exactly one of them compiles it and
// the other K-1 coalesce on the compile flight. The compile leader is
// parked on the test gate until every other request has missed the
// compiled cache and joined the flight, making the count deterministic.
func TestCompileFlightCoalesces(t *testing.T) {
	algos := []string{"tree-unit", "greedy", "sequential", "dist-unit"}
	e := New(Config{Workers: len(algos)})
	defer e.Close()

	gotHash := make(chan string, 1)
	release := make(chan struct{})
	e.compileGate = func(hash string) {
		gotHash <- hash // distinct algos share one problem: one compile leader
		<-release
	}

	var wg sync.WaitGroup
	errs := make([]error, len(algos))
	for i, algo := range algos {
		wg.Add(1)
		go func(i int, algo string) {
			defer wg.Done()
			_, errs[i] = e.Solve(context.Background(), &Request{
				Algo: algo, Scenario: "profit-ladder", ScenarioSeed: 6,
			})
		}(i, algo)
	}
	// Distinct result keys mean distinct solve flights: all four run as
	// solve leaders and race into compiledFor; the first parks on the
	// gate, the rest must miss the (still empty) compiled cache and wait.
	hash := <-gotHash
	awaitWaiters(t, &e.compileFlight, hash, len(algos)-1)
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", algos[i], err)
		}
	}
	snap := e.Metrics()
	if snap.CompiledMisses != int64(len(algos)) {
		t.Fatalf("compiled misses = %d, want %d", snap.CompiledMisses, len(algos))
	}
	if snap.CompilesCoalesced != int64(len(algos)-1) {
		t.Fatalf("compiles_coalesced = %d, want %d (one compilation per concurrent miss wave)",
			snap.CompilesCoalesced, len(algos)-1)
	}
	if snap.CompiledEntries != 1 {
		t.Fatalf("compiled cache entries = %d, want 1", snap.CompiledEntries)
	}
	if snap.SolvesCoalesced != 0 {
		t.Fatalf("solves_coalesced = %d, want 0 (all result keys distinct)", snap.SolvesCoalesced)
	}
}
