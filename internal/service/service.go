// Package service is the concurrent scheduling service: a bounded worker
// pool executing every solver the library exposes, an LRU cache of
// compiled problem models (internal/core.Compiled — paths, π(d), layer
// groups, conflict structures built once and reused), a memoization
// cache of full results for identical (problem, algorithm, options)
// requests, and structured per-request metrics.
//
// Determinism is preserved end to end: responses contain only solver
// output (never latency or cache state), problems hash canonically, and
// equal requests produce byte-identical JSON — whether served cold, from
// the compiled cache, or from the result cache. cmd/schedserver exposes
// the engine over HTTP (see http.go).
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"treesched/internal/core"
	"treesched/internal/instance"
	"treesched/internal/obs"
	"treesched/internal/scenario"
	"treesched/internal/verify"
)

// ErrBadRequest tags request-side failures (unknown algorithm, invalid
// problem, solver preconditions like non-unit heights). The HTTP layer
// maps it to 400; everything else is 500.
var ErrBadRequest = errors.New("service: bad request")

// ErrClosed is returned by Solve after Close.
var ErrClosed = errors.New("service: engine closed")

// Config sizes an Engine. Zero fields take the listed defaults.
type Config struct {
	// Workers bounds concurrently executing solves (default GOMAXPROCS).
	Workers int
	// CompileWorkers bounds the model-build fan-out of each compilation
	// the engine performs (core.Options.CompileWorkers semantics: 0 =
	// GOMAXPROCS, 1 = serial). Compilation output never depends on it, so
	// it is not part of any cache key. Default 0.
	CompileWorkers int
	// CompiledCacheSize is the max number of compiled problem models kept
	// (default 64).
	CompiledCacheSize int
	// ResultCacheSize is the max number of memoized responses (default 512).
	ResultCacheSize int
	// CacheShards sets the lock-shard count of both caches: 0 derives
	// from GOMAXPROCS, 1 selects the single-shard path (byte-equivalent
	// to the pre-sharding single-lock LRU — the equivalence oracle, same
	// pattern as CompileWorkers=1), larger values round up to a power of
	// two. Shards change lock layout only, never which keys are cached
	// or what responses say, so the knob is not part of any cache key.
	CacheShards int
	// MaxDemands rejects problems with more demands (default 20000).
	MaxDemands int
	// MaxExactNodes caps the branch-and-bound budget of "exact" requests
	// (default 2e6) so a single request cannot monopolize a worker.
	MaxExactNodes int64
	// MaxSessions bounds concurrently open dynamic sessions; the least
	// recently used session is evicted past it (default 64).
	MaxSessions int
	// SessionIdleTimeout evicts sessions untouched for this long
	// (default 15m). Sweeps run on session operations.
	SessionIdleTimeout time.Duration

	// Flight recorder (request-scoped observability; see obs.Recorder).
	//
	// TraceSample is the probability an ordinary completed request
	// retains its span timeline in the recorder's recent class. Any
	// value > 0 turns span recording on for every request — slow and
	// errored requests then always keep their timelines regardless of
	// the dice. 0 (the default) disables span trees entirely: responses
	// are byte-identical to an uninstrumented engine and no Trace is
	// allocated anywhere (the recorder still keeps its constant-cost
	// request records).
	TraceSample float64
	// SlowThreshold classifies completions slower than this into the
	// recorder's slow class (default 500ms).
	SlowThreshold time.Duration
	// RecorderRequests is the per-class retained-record capacity
	// (default 128); RecorderEvents the event-log capacity (default
	// 256). DisableRecorder removes the recorder entirely — the
	// pre-recorder oracle path, used by the overhead benchmarks.
	RecorderRequests int
	RecorderEvents   int
	DisableRecorder  bool
	// RequestLog, when non-nil, receives one NDJSON line per completed
	// request (the recorder's ReqRecord schema, span timelines
	// stripped). Writes are serialized by the engine.
	RequestLog io.Writer

	// SLO objectives per endpoint class (solve covers /solve and /batch
	// lines; session covers session resolves/schedules). A request is
	// "good" when it succeeds within the objective; client errors spend
	// no budget. Defaults: 250ms at a 0.99 target.
	SolveSLO   time.Duration
	SessionSLO time.Duration
	SLOTarget  float64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CompiledCacheSize <= 0 {
		c.CompiledCacheSize = 64
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 512
	}
	if c.MaxDemands <= 0 {
		c.MaxDemands = 20000
	}
	if c.MaxExactNodes <= 0 {
		c.MaxExactNodes = 2_000_000
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.SessionIdleTimeout <= 0 {
		c.SessionIdleTimeout = 15 * time.Minute
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 500 * time.Millisecond
	}
	if c.RecorderRequests <= 0 {
		c.RecorderRequests = 128
	}
	if c.RecorderEvents <= 0 {
		c.RecorderEvents = 256
	}
	if c.SolveSLO <= 0 {
		c.SolveSLO = 250 * time.Millisecond
	}
	if c.SessionSLO <= 0 {
		c.SessionSLO = 250 * time.Millisecond
	}
	if c.SLOTarget <= 0 || c.SLOTarget >= 1 {
		c.SLOTarget = 0.99
	}
	return c
}

// Request is one solve job. Exactly one of Problem or Scenario must be
// set: Problem supplies a full instance inline, Scenario names a preset
// of internal/scenario generated deterministically from ScenarioSeed and
// ScenarioParams.
type Request struct {
	// Algo names the algorithm; see Algorithms() for the registry.
	Algo string `json:"algo"`

	Problem *instance.Problem `json:"problem,omitempty"`

	Scenario       string          `json:"scenario,omitempty"`
	ScenarioSeed   int64           `json:"scenario_seed,omitempty"`
	ScenarioParams scenario.Params `json:"scenario_params,omitzero"`

	// Epsilon is the ε of the (c+ε) guarantees (default 0.25).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Seed drives the deterministic Luby priorities.
	Seed uint64 `json:"seed,omitempty"`
	// FixedRounds selects the paper's deterministic schedule on dist-*
	// algorithms.
	FixedRounds bool `json:"fixed_rounds,omitempty"`
	// MaxNodes caps the "exact" branch and bound (0 = engine default).
	MaxNodes int64 `json:"max_nodes,omitempty"`
}

// Response is the deterministic solver output for a request. It carries
// no latency or cache-state fields on purpose: equal requests must
// marshal byte-identically regardless of how they were served. Cached
// responses are shared — treat as immutable.
type Response struct {
	Algorithm      string  `json:"algorithm"`
	Scenario       string  `json:"scenario,omitempty"`
	Profit         float64 `json:"profit"`
	DualUpperBound float64 `json:"dual_upper_bound,omitempty"`
	CertifiedRatio float64 `json:"certified_ratio,omitempty"`
	Bound          float64 `json:"bound,omitempty"`
	Lambda         float64 `json:"lambda,omitempty"`
	Demands        int     `json:"demands"`
	Scheduled      int     `json:"scheduled"`

	Selected []instance.Inst `json:"selected"`

	// Distributed-driver network cost (dist-* algorithms only).
	Rounds         int   `json:"rounds,omitempty"`
	Messages       int64 `json:"messages,omitempty"`
	Aggregations   int   `json:"aggregations,omitempty"`
	PayloadEntries int64 `json:"payload_entries,omitempty"`
}

// solveFunc adapts one algorithm entry point to the compiled-model form.
type solveFunc func(c *core.Compiled, opts core.Options, maxNodes int64) (*core.Result, *core.DistributedResult, error)

func central(f func(c *core.Compiled, opts core.Options) (*core.Result, error)) solveFunc {
	return func(c *core.Compiled, opts core.Options, _ int64) (*core.Result, *core.DistributedResult, error) {
		r, err := f(c, opts)
		return r, nil, err
	}
}

func distributed(f func(c *core.Compiled, opts core.Options) (*core.DistributedResult, error)) solveFunc {
	return func(c *core.Compiled, opts core.Options, _ int64) (*core.Result, *core.DistributedResult, error) {
		dr, err := f(c, opts)
		if err != nil {
			return nil, nil, err
		}
		return dr.Result, dr, nil
	}
}

// algorithms is the dispatch registry: every Solve* entry point of the
// public API by its schedtool/service name.
var algorithms = map[string]solveFunc{
	"tree-unit":  central((*core.Compiled).TreeUnit),
	"line-unit":  central((*core.Compiled).LineUnit),
	"narrow":     central((*core.Compiled).NarrowOnly),
	"arbitrary":  central((*core.Compiled).Arbitrary),
	"sequential": central((*core.Compiled).Sequential),
	"seq-line":   central((*core.Compiled).SequentialLine),
	"greedy": func(c *core.Compiled, _ core.Options, _ int64) (*core.Result, *core.DistributedResult, error) {
		r, err := c.Greedy()
		return r, nil, err
	},
	"exact": func(c *core.Compiled, _ core.Options, maxNodes int64) (*core.Result, *core.DistributedResult, error) {
		r, err := c.Exact(maxNodes)
		return r, nil, err
	},
	"ps":          central((*core.Compiled).PanconesiSozioUnit),
	"dist-unit":   distributed((*core.Compiled).DistributedUnit),
	"dist-narrow": distributed((*core.Compiled).DistributedNarrow),
	"dist-ps":     distributed((*core.Compiled).DistributedPanconesiSozio),
}

// Algorithms returns the registered algorithm names, sorted.
func Algorithms() []string {
	out := make([]string, 0, len(algorithms))
	for n := range algorithms {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Engine is the concurrent solve engine. Safe for concurrent use.
type Engine struct {
	cfg         Config
	cacheShards int           // effective shard count (resolveShards(cfg.CacheShards))
	sem         chan struct{} // bounded worker pool
	compiled    *shardedCache[*core.Compiled]
	results     *shardedCache[*Response]
	sessions    *sessionManager
	met         *metrics
	start       time.Time

	// rec is the flight recorder (nil only with Config.DisableRecorder —
	// every use is nil-safe). sloSolve/sloSession account the two
	// endpoint classes against their latency objectives.
	rec        *obs.Recorder
	sloSolve   *obs.SLO
	sloSession *obs.SLO
	reqLogMu   sync.Mutex // serializes Config.RequestLog writes

	// solveFlight coalesces concurrent identical requests (same result
	// key) into one executing solve; compileFlight coalesces concurrent
	// compilations of one problem (same canonical hash) across requests
	// that differ only in algorithm or options.
	solveFlight   flightGroup[*Response]
	compileFlight flightGroup[*core.Compiled]
	// solveGate/compileGate, when set (tests only), run at the start of
	// every solve-flight / compile-flight leader — the singleflight
	// contract tests park the leader there until all followers have
	// joined.
	solveGate   func(key string)
	compileGate func(hash string)

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// New builds an Engine from cfg (zero value = all defaults).
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	shards := resolveShards(cfg.CacheShards)
	e := &Engine{
		cfg:         cfg,
		cacheShards: shards,
		sem:         make(chan struct{}, cfg.Workers),
		compiled:    newShardedCache[*core.Compiled](cfg.CompiledCacheSize, shards),
		results:     newShardedCache[*Response](cfg.ResultCacheSize, shards),
		sessions:    newSessionManager(cfg.MaxSessions, cfg.SessionIdleTimeout),
		met:         newMetrics(Algorithms()),
		start:       time.Now(),
	}
	// Occupancy and uptime are owned by their structures, not by counters;
	// expose them as gauges computed at scrape time.
	e.met.reg.GaugeFunc("sched_compiled_cache_entries", "Compiled problem models currently cached.",
		func() float64 { return float64(e.compiled.len()) })
	e.met.reg.GaugeFunc("sched_result_cache_entries", "Memoized responses currently cached.",
		func() float64 { return float64(e.results.len()) })
	e.met.reg.GaugeFunc("sched_sessions_open", "Dynamic sessions currently open.",
		func() float64 { return float64(e.sessions.len()) })
	e.met.reg.GaugeFunc("sched_uptime_seconds", "Seconds since the engine was constructed.",
		func() float64 { return e.Uptime().Seconds() })

	// SLO accounting: good/total counters registered per class (so the
	// raw series scrape), burn rates computed at scrape time.
	e.sloSolve = e.newSLO("solve", cfg.SolveSLO, cfg.SLOTarget)
	e.sloSession = e.newSLO("session", cfg.SessionSLO, cfg.SLOTarget)

	if !cfg.DisableRecorder {
		e.rec = obs.NewRecorder(obs.RecorderConfig{
			PerClass: cfg.RecorderRequests,
			Events:   cfg.RecorderEvents,
			SlowNs:   cfg.SlowThreshold.Nanoseconds(),
			Sample:   cfg.TraceSample,
		})
		e.met.reg.GaugeFunc("sched_active_requests", "Requests currently tracked in flight by the recorder.",
			func() float64 { return float64(e.rec.ActiveCount()) })
		if cfg.RequestLog != nil {
			e.rec.OnRecord = e.writeRequestLog
		}
		// Cache evictions become recorder events — today they are visible
		// only as occupancy deltas.
		e.compiled.setOnEvict(func(key string) { e.rec.Event("evict_compiled", "", key) })
		e.results.setOnEvict(func(key string) { e.rec.Event("evict_result", "", key) })
	}
	return e
}

// newSLO registers one endpoint class's SLO series and builds its
// tracker. Burn rates are exported as gauges: window="5m" reacts to a
// fresh regression, window="total" is the lifetime budget spend.
func (e *Engine) newSLO(class string, objective time.Duration, target float64) *obs.SLO {
	label := obs.Label{Name: "class", Value: class}
	good := e.met.reg.Counter("sched_slo_good_total",
		"Requests that succeeded within their class's latency objective.", label)
	total := e.met.reg.Counter("sched_slo_requests_total",
		"Requests accounted against the class's latency objective (client errors excluded).", label)
	s := obs.NewSLO(objective, target, good, total)
	e.met.reg.GaugeFunc("sched_slo_burn_rate",
		"Error-budget burn rate: bad fraction / (1 - target); sustained >1 means the objective will be missed.",
		s.BurnRate, label, obs.Label{Name: "window", Value: "5m"})
	e.met.reg.GaugeFunc("sched_slo_burn_rate",
		"Error-budget burn rate: bad fraction / (1 - target); sustained >1 means the objective will be missed.",
		s.TotalBurnRate, label, obs.Label{Name: "window", Value: "total"})
	return s
}

// writeRequestLog is the recorder's OnRecord sink when Config.RequestLog
// is set: one NDJSON line per completed request, span timelines
// stripped (the /debug endpoints serve those), writes serialized.
func (e *Engine) writeRequestLog(rec *obs.ReqRecord) {
	line := *rec
	line.Trace = nil
	data, err := json.Marshal(&line)
	if err != nil {
		return
	}
	data = append(data, '\n')
	e.reqLogMu.Lock()
	e.cfg.RequestLog.Write(data) // nolint:errcheck — logging must not fail requests
	e.reqLogMu.Unlock()
}

// Recorder exposes the engine's flight recorder (nil when disabled):
// the /debug handlers and tests read it.
func (e *Engine) Recorder() *obs.Recorder { return e.rec }

// Close marks the engine closed and waits for in-flight solves to drain.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.wg.Wait()
}

func (e *Engine) enter() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.wg.Add(1)
	return nil
}

// Metrics returns a snapshot of the engine counters.
func (e *Engine) Metrics() MetricsSnapshot {
	s := e.met.snapshot(e.compiled.len(), e.results.len(), e.sessions.len())
	s.CacheShards = e.cacheShards
	s.SLO = map[string]SLOSnapshot{
		"solve":   sloSnapshot(e.sloSolve),
		"session": sloSnapshot(e.sloSession),
	}
	return s
}

// WritePrometheus renders the engine's metrics in the Prometheus text
// exposition format (v0.0.4). Every counter in the JSON snapshot is
// present under a sched_-prefixed name; latency histograms appear as
// summaries with p50/p90/p99 quantile series.
func (e *Engine) WritePrometheus(w io.Writer) error {
	return e.met.reg.WritePrometheus(w)
}

// Uptime reports time since New.
func (e *Engine) Uptime() time.Duration { return time.Since(e.start) }

// problemSource resolves the request's problem into a canonical cache
// key and a lazy materializer. Inline problems hash their JSON wire
// form; scenario requests key on (name, effective params, seed) — their
// generators are deterministic — so cache hits skip generation and
// hashing entirely.
func (e *Engine) problemSource(req *Request) (hash string, materialize func() (*instance.Problem, error), err error) {
	switch {
	case req.Problem != nil && req.Scenario != "":
		return "", nil, fmt.Errorf("%w: set either problem or scenario, not both", ErrBadRequest)
	case req.Problem != nil:
		p := req.Problem
		if len(p.Demands) > e.cfg.MaxDemands {
			return "", nil, fmt.Errorf("%w: %d demands exceeds the limit %d", ErrBadRequest, len(p.Demands), e.cfg.MaxDemands)
		}
		hash, err = hashProblem(p)
		if err != nil {
			return "", nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		return hash, func() (*instance.Problem, error) { return p, nil }, nil
	case req.Scenario != "":
		s, ok := scenario.Get(req.Scenario)
		if !ok {
			return "", nil, fmt.Errorf("%w: unknown scenario %q (see GET /scenarios)", ErrBadRequest, req.Scenario)
		}
		eff := s.Effective(req.ScenarioParams)
		if eff.Demands > e.cfg.MaxDemands {
			return "", nil, fmt.Errorf("%w: %d demands exceeds the limit %d", ErrBadRequest, eff.Demands, e.cfg.MaxDemands)
		}
		// Generator limits are validated eagerly so degenerate sizes are
		// rejected before a cache key is formed or a worker slot consumed.
		if err := eff.Validate(); err != nil {
			return "", nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		hash = fmt.Sprintf("scenario:%s|m=%d|n=%d|r=%d|seed=%d",
			s.Name, eff.Demands, eff.Size, eff.Networks, req.ScenarioSeed)
		seed := req.ScenarioSeed
		return hash, func() (*instance.Problem, error) { return s.Generate(eff, seed) }, nil
	default:
		return "", nil, fmt.Errorf("%w: a problem or a scenario is required", ErrBadRequest)
	}
}

// hashProblem returns the canonical problem hash: SHA-256 over the
// deterministic JSON wire form (trees as edge lists, demands in order).
func hashProblem(p *instance.Problem) (string, error) {
	data, err := json.Marshal(p)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// keyOptions normalizes request options for the memoization key so
// semantically identical requests share one cache entry: the epsilon
// default is applied; epsilon/seed are dropped for the deterministic
// single-pass algorithms that ignore them (greedy, exact, sequential,
// seq-line — keep this list in sync with the registry above);
// FixedRounds is dropped for centralized algorithms; and the node
// budget only keys "exact".
func keyOptions(algo string, opts core.Options, maxNodes int64) (core.Options, int64) {
	if opts.Epsilon == 0 {
		opts.Epsilon = 0.25
	}
	switch algo {
	case "greedy", "exact", "sequential", "seq-line":
		opts = core.Options{}
	}
	if !strings.HasPrefix(algo, "dist-") {
		opts.FixedRounds = false
	}
	if algo != "exact" {
		maxNodes = 0
	}
	return opts, maxNodes
}

// resultKey keys the memoization cache on everything that can change a
// response. The algorithm name is a load-bearing component, not an
// option: keyOptions collapses the options of several algorithms to the
// zero value (they ignore them), so without algo in the key, "greedy"
// and "exact" on one problem would collide on identical option strings.
// TestResultMemoKeyIncludesAlgorithm pins this.
func resultKey(problemHash, algo string, opts core.Options, maxNodes int64) string {
	return fmt.Sprintf("%s|algo=%s|eps=%g|seed=%d|fixed=%t|nodes=%d",
		problemHash, algo, opts.Epsilon, opts.Seed, opts.FixedRounds, maxNodes)
}

// ctxKey keys the request-scoped values the HTTP layer deposits for
// the engine: the request id (accepted or minted from X-Request-ID)
// and the endpoint class name.
type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyEndpoint
)

// WithRequestID returns a context carrying the request id the engine
// should record the work under. The HTTP layer calls this with the
// accepted-or-generated X-Request-ID; direct API callers may use it to
// correlate their calls in /debug/requests.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKeyRequestID, id)
}

// RequestIDFrom extracts the request id, "" when absent.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

func withEndpoint(ctx context.Context, endpoint string) context.Context {
	return context.WithValue(ctx, ctxKeyEndpoint, endpoint)
}

func endpointFrom(ctx context.Context, fallback string) string {
	if ep, _ := ctx.Value(ctxKeyEndpoint).(string); ep != "" {
		return ep
	}
	return fallback
}

// beginReq opens a flight-recorder entry for the request on ctx,
// reusing the caller's latency timestamp so the hot path reads the
// clock once. Nil-safe end to end: with the recorder disabled it
// returns a nil handle and every downstream use is a no-op.
func (e *Engine) beginReq(ctx context.Context, fallbackEndpoint string, start time.Time) *obs.Req {
	if e.rec == nil {
		return nil
	}
	return e.rec.BeginAt(RequestIDFrom(ctx), endpointFrom(ctx, fallbackEndpoint), start)
}

// sloAccounting classifies an outcome for the SLO: client errors spend
// no error budget (accounted=false); cancellations are charged to the
// server — from the user's seat a deadline miss is an SLO miss.
func sloAccounting(err error) (accounted, failed bool) {
	if err == nil {
		return true, false
	}
	if errors.Is(err, ErrBadRequest) {
		return false, false
	}
	return true, true
}

// errMsg renders err for a recorder record ("" for nil).
func errMsg(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Solve validates, dispatches and executes one request through the
// worker pool, consulting the result cache first and the compiled-model
// cache second. The returned Response is shared with the cache — treat
// as immutable.
func (e *Engine) Solve(ctx context.Context, req *Request) (*Response, error) {
	if err := e.enter(); err != nil {
		return nil, err
	}
	defer e.wg.Done()
	e.met.requests.Add(1)
	begin := time.Now()
	rq := e.beginReq(ctx, "solve", begin)
	resp, err := e.solve(ctx, rq, req)
	durNs := time.Since(begin).Nanoseconds()
	if err != nil {
		e.met.errors.Add(1)
	}
	if accounted, failed := sloAccounting(err); accounted {
		e.sloSolve.Observe(durNs, failed)
	}
	rq.Finish(durNs, errMsg(err))
	return resp, err
}

// Request outcomes recorded for /debug and the request log.
const (
	outcomeResultHit = "result_hit"
	outcomeCoalesced = "coalesced"
	outcomeSolved    = "solved"
	outcomeError     = "error"
)

func (e *Engine) solve(ctx context.Context, rq *obs.Req, req *Request) (resp *Response, err error) {
	// Core signals violated preconditions it cannot express as errors by
	// panicking (e.g. NewSchedule on an out-of-range epsilon). A panic
	// must fail the one request, never the process — /batch executes
	// solves on bare goroutines where net/http's per-request recover
	// cannot help.
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("service: panic during %q solve: %v", req.Algo, r)
		}
	}()

	rq.SetPhase(obs.PhaseValidate)
	if _, ok := algorithms[req.Algo]; !ok {
		return nil, fmt.Errorf("%w: unknown algorithm %q (known: %v)", ErrBadRequest, req.Algo, Algorithms())
	}
	e.met.countAlgo(req.Algo)
	rq.SetAlgo(req.Algo)
	if req.Epsilon < 0 || req.Epsilon >= 1 {
		return nil, fmt.Errorf("%w: epsilon %g outside [0,1) (0 = default 0.25)", ErrBadRequest, req.Epsilon)
	}

	hash, materialize, err := e.problemSource(req)
	if err != nil {
		return nil, err
	}
	opts := core.Options{Epsilon: req.Epsilon, Seed: req.Seed, FixedRounds: req.FixedRounds}
	maxNodes := req.MaxNodes
	if maxNodes <= 0 || maxNodes > e.cfg.MaxExactNodes {
		maxNodes = e.cfg.MaxExactNodes
	}

	rq.SetPhase(obs.PhaseCacheCheck)
	kOpts, kNodes := keyOptions(req.Algo, opts, maxNodes)
	key := resultKey(hash, req.Algo, kOpts, kNodes)
	if resp, ok := e.results.get(key); ok {
		e.met.resultHits.Add(1)
		rq.SetOutcome(outcomeResultHit)
		return resp, nil
	}
	e.met.resultMisses.Add(1)

	// Singleflight: of N concurrent identical requests, one leader
	// executes and N-1 followers wait for its response — byte-identical
	// by construction, since all N hand out one shared *Response (the
	// same sharing the result cache already implies). Errors are shared
	// with the concurrent followers but never cached: the next arrival
	// re-executes. The leader registers its request id as the flight
	// owner so followers can link their records to the trace that did
	// the work.
	rq.SetPhase(obs.PhaseFlightWait)
	resp, coalesced, leader, err := e.solveFlight.do(ctx, key, rq.ID(), func() (*Response, error) {
		return e.execute(ctx, rq, req, hash, key, materialize, opts, maxNodes)
	})
	if coalesced {
		e.met.solvesCoalesced.Add(1)
		rq.SetOutcome(outcomeCoalesced)
		rq.Link(leader)
		e.rec.Event("coalesce", rq.ID(), "leader="+leader)
	} else if err == nil {
		rq.SetOutcome(outcomeSolved)
	} else {
		rq.SetOutcome(outcomeError)
	}
	return resp, err
}

// execute is the solve-flight leader body: worker slot, compiled model,
// solver run, feasibility gate, memoization. Followers of the flight
// never enter here — a coalesced request holds no worker slot and
// touches no cache. rq is the leader's own recorder handle: its span
// tree (when sampling is on) receives the queue/compile/solve/verify
// timeline, with the solver's phase-level spans nested under "solve"
// via core.Options.Telemetry.
func (e *Engine) execute(ctx context.Context, rq *obs.Req, req *Request, hash, key string, materialize func() (*instance.Problem, error), opts core.Options, maxNodes int64) (resp *Response, err error) {
	// The solve's panic guard must sit inside the flight: a panic that
	// escaped fn would strand the flight's followers, and the leader's
	// followers deserve the same converted error the leader returns.
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("service: panic during %q solve: %v", req.Algo, r)
		}
	}()
	if gate := e.solveGate; gate != nil {
		gate(key)
	}
	// Lost-race recheck: between this request's cache miss and flight
	// entry, a previous leader may have completed and memoized.
	if resp, ok := e.results.get(key); ok {
		return resp, nil
	}

	tel := rq.Trace() // nil unless sampling is enabled — every use below is nil-safe

	// Bounded worker pool: block for a slot, honoring cancellation.
	rq.SetPhase(obs.PhaseQueued)
	qs := tel.Begin("queued")
	select {
	case e.sem <- struct{}{}:
		tel.End(qs)
	case <-ctx.Done():
		tel.End(qs)
		e.rec.Event("reject", rq.ID(), "context expired waiting for a worker slot")
		return nil, ctx.Err()
	}
	defer func() { <-e.sem }()
	e.met.inFlight.Add(1)
	defer e.met.inFlight.Add(-1)

	rq.SetPhase(obs.PhaseCompile)
	cs := tel.Begin("compiled_model") // cache hit, coalesced wait, or a real compile
	c, err := e.compiledFor(ctx, rq, hash, materialize)
	tel.End(cs)
	if err != nil {
		return nil, err
	}

	rq.SetPhase(obs.PhaseSolve)
	run := algorithms[req.Algo] // validated by solve before the flight
	opts.Telemetry = tel        // the solver's phase spans nest under this request's tree
	ss := tel.Begin("solve")
	begin := time.Now()
	res, dres, err := run(c, opts, maxNodes)
	solveNs := time.Since(begin).Nanoseconds()
	tel.End(ss)
	e.met.solveNanos.Add(solveNs)
	e.met.solveLatency.Observe(solveNs)
	if err != nil {
		// Precondition failures (wrong problem kind, non-unit heights,
		// non-narrow instances) are the client's fault; a failed
		// slackness certificate is a solver bug and an exhausted exact
		// budget is a server-imposed limit — both stay server-side.
		if errors.Is(err, core.ErrCertificate) || errors.Is(err, core.ErrExactTooLarge) {
			return nil, fmt.Errorf("service: %w", err)
		}
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	// Safety gate: never serve an infeasible selection. A failure here is
	// a solver bug, not a client error.
	rq.SetPhase(obs.PhaseVerify)
	vs := tel.Begin("verify")
	err = verify.Solution(c.Problem(), res.Selected)
	tel.End(vs)
	if err != nil {
		return nil, fmt.Errorf("service: solver emitted infeasible solution: %w", err)
	}
	rq.SetPhase(obs.PhaseRespond)

	resp = buildResponse(req, c, res, dres)
	e.results.add(key, resp)
	return resp, nil
}

// buildResponse assembles the complete, final Response for a solved
// request. It is the single point where responses are constructed: the
// pointer it returns enters the memoization cache and is shared by every
// future equal request, so no field may be written after it returns
// (the respfreeze analyzer enforces this).
func buildResponse(req *Request, c *core.Compiled, res *core.Result, dres *core.DistributedResult) *Response {
	resp := &Response{
		Algorithm:      res.Name,
		Scenario:       req.Scenario,
		Profit:         res.Profit,
		DualUpperBound: res.DualUB,
		CertifiedRatio: res.CertifiedRatio,
		Bound:          res.Bound,
		Lambda:         res.Lambda,
		Demands:        len(c.Problem().Demands),
		Scheduled:      len(res.Selected),
		Selected:       res.Selected,
	}
	if resp.Selected == nil {
		resp.Selected = []instance.Inst{}
	}
	if dres != nil {
		resp.Rounds = dres.Net.Rounds
		resp.Messages = dres.Net.Messages
		resp.Aggregations = dres.Net.Aggregations
		resp.PayloadEntries = dres.Net.Entries
	}
	return resp
}

// compiledFor returns the compiled model for the hashed problem,
// consulting the compiled cache and coalescing concurrent compilations
// of the same problem: requests that differ in algorithm or options
// share one model, so their first concurrent wave costs one
// compilation. One compilation serves every algorithm and every
// (epsilon, seed) on the same problem. Callers hold a worker slot;
// compile followers keep theirs while waiting (they run a solver the
// moment the model lands), so the flight adds no slot pressure beyond
// the requests themselves.
func (e *Engine) compiledFor(ctx context.Context, rq *obs.Req, hash string, materialize func() (*instance.Problem, error)) (*core.Compiled, error) {
	if c, ok := e.compiled.get(hash); ok {
		e.met.compiledHits.Add(1)
		return c, nil
	}
	e.met.compiledMisses.Add(1)
	c, coalesced, leader, err := e.compileFlight.do(ctx, hash, rq.ID(), func() (*core.Compiled, error) {
		if gate := e.compileGate; gate != nil {
			gate(hash)
		}
		if c, ok := e.compiled.get(hash); ok { // lost-race recheck
			return c, nil
		}
		p, err := materialize()
		if err != nil {
			return nil, err
		}
		c, err := core.Compile(p, 0)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		c.SetCompileWorkers(e.cfg.CompileWorkers)
		e.compiled.add(hash, c)
		return c, nil
	})
	if coalesced {
		e.met.compilesCoalesced.Add(1)
		e.rec.Event("coalesce_compile", rq.ID(), "leader="+leader)
	}
	return c, err
}
