package service

import (
	"bufio"
	"bytes"
	"encoding/json"

	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*Engine, *httptest.Server) {
	t.Helper()
	e := New(Config{Workers: 4})
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return e, srv
}

func postJSON(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestHTTPSolve(t *testing.T) {
	_, srv := newTestServer(t)
	req := `{"algo":"line-unit","scenario":"videowall-line","scenario_seed":7,"seed":1}`

	status, body := postJSON(t, srv.URL+"/solve", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Algorithm != "line-unit" || resp.Scheduled == 0 {
		t.Fatalf("unexpected response: %+v", resp)
	}

	// Equal-seed requests must be byte-identical (second one is cached).
	_, body2 := postJSON(t, srv.URL+"/solve", req)
	if !bytes.Equal(body, body2) {
		t.Fatal("equal requests returned different bytes")
	}
}

func TestHTTPSolveErrors(t *testing.T) {
	_, srv := newTestServer(t)
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"algo":"quantum","scenario":"sensor-tree"}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
		{`{"algo":"tree-unit"}`, http.StatusBadRequest},
	} {
		status, body := postJSON(t, srv.URL+"/solve", tc.body)
		if status != tc.want {
			t.Errorf("%s: status %d (want %d): %s", tc.body, status, tc.want, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body missing: %s", tc.body, body)
		}
	}
}

func TestHTTPBatch(t *testing.T) {
	_, srv := newTestServer(t)
	lines := []string{
		`{"algo":"tree-unit","scenario":"caterpillar-backbone","scenario_seed":1}`,
		`{"algo":"bogus","scenario":"caterpillar-backbone"}`,
		`{"algo":"greedy","scenario":"sensor-tree","scenario_seed":2}`,
		`{"algo":"tree-unit","scenario":"caterpillar-backbone","scenario_seed":1}`,
	}
	resp, err := http.Post(srv.URL+"/batch", "application/x-ndjson",
		strings.NewReader(strings.Join(lines, "\n")+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var out []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxRequestBytes)
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(lines) {
		t.Fatalf("%d response lines for %d request lines:\n%s", len(out), len(lines), strings.Join(out, "\n"))
	}
	// Order preserved: line 2 is the error, others are solutions.
	var r0, r3 Response
	if err := json.Unmarshal([]byte(out[0]), &r0); err != nil || r0.Algorithm != "tree-unit" {
		t.Errorf("line 0: %s", out[0])
	}
	var eb errorBody
	if err := json.Unmarshal([]byte(out[1]), &eb); err != nil || eb.Error == "" {
		t.Errorf("line 1 should be an error: %s", out[1])
	}
	if err := json.Unmarshal([]byte(out[3]), &r3); err != nil {
		t.Errorf("line 3: %s", out[3])
	}
	// Identical requests (lines 0 and 3) must produce identical bytes.
	if out[0] != out[3] {
		t.Error("equal batch lines returned different bytes")
	}
}

func TestHTTPScenarios(t *testing.T) {
	_, srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing scenarioListing
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Scenarios) < 8 {
		t.Errorf("%d scenarios listed, want >= 8", len(listing.Scenarios))
	}
	if len(listing.Algorithms) != 12 {
		t.Errorf("%d algorithms listed, want 12", len(listing.Algorithms))
	}
	for _, s := range listing.Scenarios {
		if s.Doc == "" || s.KindName == "" || s.DefaultAlgo == "" {
			t.Errorf("scenario %q listing incomplete: %+v", s.Name, s)
		}
	}
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	e, srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Drive one solve, then check the counters surface.
	postJSON(t, srv.URL+"/solve", `{"algo":"greedy","scenario":"sensor-tree"}`)
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests != 1 || snap.ResultMisses != 1 {
		t.Errorf("metrics requests=%d misses=%d, want 1/1", snap.Requests, snap.ResultMisses)
	}
	if snap.ByAlgo["greedy"] != 1 {
		t.Errorf("by-algo counter missing: %+v", snap.ByAlgo)
	}
	if e.Metrics().Requests != snap.Requests {
		t.Error("engine metrics and endpoint disagree")
	}
	if snap.SolveNanos <= 0 {
		t.Error("solve latency not recorded")
	}
}

func TestHTTPMethodRouting(t *testing.T) {
	_, srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /solve: status %d, want 405", resp.StatusCode)
	}
}
