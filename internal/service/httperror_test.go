package service

// Error-path contract tests: every handler failure must produce exactly
// one status code with a JSON body, and the NDJSON streams (/batch,
// /session/{id}/events) must never follow partial output with a second
// status line or a bare http.Error. The strict server below captures the
// http.Server error log, where the standard library reports
// "superfluous response.WriteHeader" — a double status write anywhere in
// a handler fails the test even if the client happened to see a sane
// response.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// strictServer wraps httptest.Server with a captured error log.
type strictServer struct {
	*httptest.Server
	mu  sync.Mutex
	buf bytes.Buffer
}

func newStrictServer(t *testing.T) *strictServer {
	t.Helper()
	e := New(Config{Workers: 2})
	s := &strictServer{}
	s.Server = httptest.NewUnstartedServer(e.Handler())
	s.Server.Config.ErrorLog = log.New(&syncWriter{mu: &s.mu, buf: &s.buf}, "", 0)
	s.Server.Start()
	t.Cleanup(func() {
		s.Close()
		e.Close()
		s.assertCleanLog(t)
	})
	return s
}

type syncWriter struct {
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

// assertCleanLog fails if any handler wrote a second status code or
// otherwise tripped the server ("superfluous response.WriteHeader").
func (s *strictServer) assertCleanLog(t *testing.T) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	if logged := s.buf.String(); strings.Contains(logged, "superfluous") {
		t.Errorf("a handler wrote more than one status code:\n%s", logged)
	}
}

// wantJSONError asserts a single well-formed error body.
func wantJSONError(t *testing.T, context string, status, wantStatus int, body []byte) {
	t.Helper()
	if status != wantStatus {
		t.Fatalf("%s: status %d, want %d: %s", context, status, wantStatus, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("%s: body is not a single JSON error object: %s", context, body)
	}
	// Exactly one JSON document: decoding must consume the whole body.
	dec := json.NewDecoder(bytes.NewReader(body))
	if err := dec.Decode(&eb); err != nil {
		t.Fatalf("%s: %v", context, err)
	}
	if dec.More() {
		t.Fatalf("%s: more than one JSON document in an error response: %s", context, body)
	}
}

// TestSessionEventsErrorPaths: the events handler buffers and validates
// the whole NDJSON stream before touching the session, so every failure
// mode — unknown session, malformed line, semantically bad event — is
// one status code with one JSON body, never a status after partial
// output.
func TestSessionEventsErrorPaths(t *testing.T) {
	srv := newStrictServer(t)

	status, body := postJSON(t, srv.URL+"/session/nope/events", `{"op":"resolve"}`)
	wantJSONError(t, "unknown session", status, http.StatusNotFound, body)

	// A real session for the remaining cases.
	status, body = postJSON(t, srv.URL+"/session",
		`{"algo":"tree-unit","scenario":"caterpillar-backbone","scenario_seed":1}`)
	if status != http.StatusOK {
		t.Fatalf("open session: status %d: %s", status, body)
	}
	var info SessionInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	events := srv.URL + "/session/" + info.SessionID + "/events"

	// Malformed JSON on line 2: 400, one body, nothing applied.
	status, body = postJSON(t, events,
		`{"op":"add","job":{"id":1,"demand":{"id":0,"u":0,"v":1,"profit":1,"height":1,"access":[0]}}}`+"\n"+
			`{"op":`+"\n")
	wantJSONError(t, "malformed event line", status, http.StatusBadRequest, body)

	// Semantically bad event mid-stream (remove of a job that does not
	// exist): one status, one JSON body — the error names the event.
	status, body = postJSON(t, events,
		`{"op":"add","job":{"id":1,"demand":{"id":0,"u":0,"v":1,"profit":1,"height":1,"access":[0]}}}`+"\n"+
			`{"op":"remove","id":99}`+"\n"+
			`{"op":"resolve"}`+"\n")
	wantJSONError(t, "bad event mid-stream", status, http.StatusBadRequest, body)

	// Unknown op: same contract.
	status, body = postJSON(t, events, `{"op":"frobnicate"}`)
	wantJSONError(t, "unknown op", status, http.StatusBadRequest, body)

	// Schedule of a session that never resolved anything after the
	// failures above must still be a single clean status.
	resp, err := http.Get(srv.URL + "/session/" + info.SessionID + "/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Unknown session id on the remaining session routes.
	resp, err = http.Get(srv.URL + "/session/nope/schedule")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb errorBody
	if resp.StatusCode != http.StatusNotFound ||
		json.NewDecoder(resp.Body).Decode(&eb) != nil || eb.Error == "" {
		t.Fatalf("schedule of unknown session: status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/session/nope", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	eb = errorBody{}
	if dresp.StatusCode != http.StatusNotFound ||
		json.NewDecoder(dresp.Body).Decode(&eb) != nil || eb.Error == "" {
		t.Fatalf("delete of unknown session: status %d", dresp.StatusCode)
	}
}

// TestBatchErrorPathsStayInBand: /batch commits to a 200 NDJSON stream
// up front, so per-line failures and even a stream-read failure must
// arrive as in-band {"error": ...} lines — every output line valid
// JSON, exactly one status code, no trailing bare http.Error.
func TestBatchErrorPathsStayInBand(t *testing.T) {
	srv := newStrictServer(t)

	// All lines fail: still one 200 + one error line per input line.
	lines := strings.Join([]string{
		`{"algo":"bogus","scenario":"sensor-tree"}`,
		`not json at all`,
		`{"algo":"tree-unit"}`,
	}, "\n") + "\n"
	resp, err := http.Post(srv.URL+"/batch", "application/x-ndjson", strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d, want 200 with in-band errors", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxRequestBytes)
	count := 0
	for sc.Scan() {
		count++
		var eb errorBody
		if err := json.Unmarshal(sc.Bytes(), &eb); err != nil || eb.Error == "" {
			t.Fatalf("line %d is not a JSON error object: %s", count, sc.Bytes())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("%d output lines for 3 failing inputs", count)
	}

	// A line exceeding the scanner buffer kills the read mid-stream:
	// the good line's response is followed by an in-band read-error
	// line, never a second status code.
	huge := `{"algo":"tree-unit","pad":"` + strings.Repeat("x", maxRequestBytes+1024) + `"}`
	resp2, err := http.Post(srv.URL+"/batch", "application/x-ndjson",
		strings.NewReader(`{"algo":"greedy","scenario":"sensor-tree","scenario_seed":2}`+"\n"+huge+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d, want 200", resp2.StatusCode)
	}
	sc2 := bufio.NewScanner(resp2.Body)
	sc2.Buffer(make([]byte, 0, 64*1024), maxRequestBytes)
	var outLines []string
	for sc2.Scan() {
		outLines = append(outLines, sc2.Text())
		if !json.Valid(sc2.Bytes()) {
			t.Fatalf("non-JSON output line after stream failure: %s", sc2.Text())
		}
	}
	if err := sc2.Err(); err != nil {
		t.Fatal(err)
	}
	if len(outLines) != 2 {
		t.Fatalf("want solved line + in-band read-error line, got %d lines:\n%s",
			len(outLines), strings.Join(outLines, "\n"))
	}
	var solved Response
	if err := json.Unmarshal([]byte(outLines[0]), &solved); err != nil || solved.Algorithm == "" {
		t.Fatalf("first line is not the solved response: %s", outLines[0])
	}
	var readErr errorBody
	if err := json.Unmarshal([]byte(outLines[1]), &readErr); err != nil || readErr.Error == "" {
		t.Fatalf("last line is not the in-band read error: %s", outLines[1])
	}
}

// TestSolveErrorSingleDocument: /solve error bodies are exactly one
// JSON document (regression guard against an errorBody followed by a
// second partial write).
func TestSolveErrorSingleDocument(t *testing.T) {
	srv := newStrictServer(t)
	for _, body := range []string{
		`{"algo":"quantum","scenario":"sensor-tree"}`,
		`{`,
		fmt.Sprintf(`{"algo":"tree-unit","scenario":"line-100k","scenario_params":{"demands":%d}}`, 2_000_000),
	} {
		status, resp := postJSON(t, srv.URL+"/solve", body)
		wantJSONError(t, body[:min(len(body), 40)], status, http.StatusBadRequest, resp)
	}
}
