package service

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent calls that share a key: the first
// caller (the leader) executes fn, every caller that arrives while the
// leader is running (a follower) waits and receives the leader's value
// and error. N concurrent identical requests therefore cost one
// execution — the thundering-herd guard in front of the compiled and
// result caches.
//
// Outcomes are shared, never stored: the entry is removed before the
// followers wake, so a call arriving after completion starts a fresh
// flight. Errors thus propagate to exactly the requests that were
// genuinely concurrent with the failed execution and are re-attempted
// by the next arrival — nothing error-shaped is ever cached. That
// includes the leader's cancellation: a follower shares its leader's
// fate, except that a follower whose own context expires first
// abandons the wait with its own ctx.Err() (the leader keeps running
// for the rest).
type flightGroup[V any] struct {
	mu sync.Mutex
	m  map[string]*flightCall[V]
}

type flightCall[V any] struct {
	done    chan struct{} // closed after val/err are final
	waiters int           // followers currently blocked (guarded by group mu)
	owner   string        // the leader's request id, for follower→leader trace linkage
	val     V
	err     error
}

// do executes fn under key as described on flightGroup. coalesced
// reports whether this call was a follower; leader is the owner id the
// flight's leader registered (its request id — followers link their
// flight-recorder records to it, since the leader's trace carries the
// span timeline both share). fn must not call back into the same group
// with the same key (self-deadlock); panics in fn are the caller's
// responsibility to convert to errors — a panic that escapes fn would
// strand followers, so every fn in this package recovers at its top.
func (g *flightGroup[V]) do(ctx context.Context, key, owner string, fn func() (V, error)) (v V, coalesced bool, leader string, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall[V])
	}
	if c, ok := g.m[key]; ok {
		c.waiters++
		leader = c.owner
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, leader, c.err
		case <-ctx.Done():
			var zero V
			return zero, true, leader, ctx.Err()
		}
	}
	c := &flightCall[V]{done: make(chan struct{}), owner: owner}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, "", c.err
}

// waitersFor reports how many followers are currently blocked on key.
// Test-only: the singleflight contract test uses it to hold the leader
// until every concurrent request has joined the flight.
func (g *flightGroup[V]) waitersFor(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.waiters
	}
	return 0
}
