package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"treesched/internal/obs"
	"treesched/internal/online"
)

// scrapeProm fetches /metrics.prom and runs it through the strict
// in-repo exposition parser, so any grammar drift in WritePrometheus
// fails here rather than in a real scraper.
func scrapeProm(t *testing.T, url string) map[string]*obs.ExpoFamily {
	t.Helper()
	resp, err := http.Get(url + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics.prom status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q lacks exposition version", ct)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return fams
}

// flatten indexes every sample of every family by its Key().
func flatten(fams map[string]*obs.ExpoFamily) map[string]float64 {
	out := make(map[string]float64)
	for _, f := range fams {
		for _, s := range f.Samples {
			out[s.Key()] = s.Value
		}
	}
	return out
}

// TestPrometheusExpositionContract is the /metrics.prom contract test:
// the exposition parses under the strict v0.0.4 grammar, every expected
// family is present with HELP and TYPE, counters are monotone across
// scrapes, and the exposition agrees with the JSON snapshot it shares
// instruments with.
func TestPrometheusExpositionContract(t *testing.T) {
	e, srv := newTestServer(t)

	before := flatten(scrapeProm(t, srv.URL))

	// Drive solve traffic: two distinct solves plus a repeat (cache hit)
	// and one error.
	postJSON(t, srv.URL+"/solve", `{"algo":"greedy","scenario":"sensor-tree","scenario_seed":1}`)
	postJSON(t, srv.URL+"/solve", `{"algo":"line-unit","scenario":"videowall-line","scenario_seed":2,"seed":1}`)
	postJSON(t, srv.URL+"/solve", `{"algo":"greedy","scenario":"sensor-tree","scenario_seed":1}`)
	postJSON(t, srv.URL+"/solve", `{"algo":"nope","scenario":"sensor-tree"}`)

	fams := scrapeProm(t, srv.URL)
	for _, want := range []struct {
		family string
		typ    string
	}{
		{"sched_requests_total", "counter"},
		{"sched_errors_total", "counter"},
		{"sched_result_cache_hits_total", "counter"},
		{"sched_result_cache_misses_total", "counter"},
		{"sched_compiled_cache_hits_total", "counter"},
		{"sched_compiled_cache_misses_total", "counter"},
		{"sched_solve_nanos_total", "counter"},
		{"sched_in_flight", "gauge"},
		{"sched_requests_by_algo_total", "counter"},
		{"sched_session_resolve_modes_total", "counter"},
		{"sched_solve_latency_ns", "summary"},
		{"sched_session_solve_latency_ns", "summary"},
		{"sched_compiled_cache_entries", "gauge"},
		{"sched_result_cache_entries", "gauge"},
		{"sched_sessions_open", "gauge"},
		{"sched_uptime_seconds", "gauge"},
	} {
		f := fams[want.family]
		if f == nil {
			t.Fatalf("family %s missing from exposition", want.family)
		}
		if f.Type != want.typ {
			t.Errorf("family %s has type %q, want %q", want.family, f.Type, want.typ)
		}
		if f.Help == "" {
			t.Errorf("family %s has no HELP line", want.family)
		}
		if len(f.Samples) == 0 {
			t.Errorf("family %s exposes no samples", want.family)
		}
	}

	// Counter monotonicity: no counter sample may decrease across scrapes.
	after := flatten(fams)
	for _, f := range fams {
		if f.Type != "counter" {
			continue
		}
		for _, s := range f.Samples {
			if prev, ok := before[s.Key()]; ok && s.Value < prev {
				t.Errorf("counter %s went backwards: %g -> %g", s.Key(), prev, s.Value)
			}
		}
	}

	// Cross-check against the JSON snapshot: same instruments, same
	// values (both reads are quiesced — no in-flight traffic).
	snap := e.Metrics()
	for key, want := range map[string]int64{
		"sched_requests_total":                          snap.Requests,
		"sched_errors_total":                            snap.Errors,
		"sched_result_cache_hits_total":                 snap.ResultHits,
		"sched_result_cache_misses_total":               snap.ResultMisses,
		"sched_requests_by_algo_total{algo=\"greedy\"}": snap.ByAlgo["greedy"],
		"sched_solve_latency_ns_count":                  snap.SolveLatency.Count,
	} {
		if got := after[key]; got != float64(want) {
			t.Errorf("%s = %g in exposition, %d in JSON snapshot", key, got, want)
		}
	}
	if snap.Requests != 4 || snap.Errors != 1 || snap.ResultHits != 1 || snap.ResultMisses != 2 {
		t.Errorf("unexpected traffic accounting: %+v", snap)
	}
	if after["sched_solve_latency_ns{quantile=\"0.99\"}"] <= 0 {
		t.Error("solve latency p99 not exposed after solves")
	}
}

// TestMetricsJSONSessionFields pins the session-side additions to the
// JSON snapshot: under session-only traffic MeanSolveMillis stays 0 (no
// /solve misses) while MeanSessionSolveMillis and the session latency
// summary populate — the split the field comments in metrics.go promise.
func TestMetricsJSONSessionFields(t *testing.T) {
	e, srv := newTestServer(t)

	resp, err := http.Post(srv.URL+"/session", "application/json",
		strings.NewReader(`{"algo":"line-unit","scenario":"videowall-line","scenario_seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	var info SessionInfo
	decodeBody(t, resp, http.StatusOK, &info)

	jobs := sessionJobs(3, 17)
	var b strings.Builder
	for i := range jobs {
		line, _ := json.Marshal(online.Event{Op: online.OpAdd, Job: &jobs[i]})
		b.Write(line)
		b.WriteByte('\n')
	}
	resp, err = http.Post(srv.URL+"/session/"+info.SessionID+"/events",
		"application/x-ndjson", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	var evRes SessionEventsResult
	decodeBody(t, resp, http.StatusOK, &evRes)

	// Events only stage; the resolve (and its latency observation)
	// happens when the schedule is fetched.
	sresp, err := http.Get(srv.URL + "/session/" + info.SessionID + "/schedule")
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("schedule status %d", sresp.StatusCode)
	}

	snap := e.Metrics()
	solved := snap.SessionResolvesIncremental + snap.SessionResolvesFull
	if solved == 0 {
		t.Fatalf("no session resolves recorded: %+v", snap)
	}
	if snap.MeanSolveMillis != 0 || snap.SolveNanos != 0 {
		t.Errorf("session traffic leaked into /solve accounting: mean=%g nanos=%d",
			snap.MeanSolveMillis, snap.SolveNanos)
	}
	if snap.MeanSessionSolveMillis <= 0 {
		t.Errorf("mean_session_solve_millis = %g under session traffic", snap.MeanSessionSolveMillis)
	}
	if snap.SessionSolveLatency.Count != snap.SessionResolves {
		t.Errorf("session latency histogram saw %d resolves, counters say %d",
			snap.SessionSolveLatency.Count, snap.SessionResolves)
	}
	wantMean := float64(snap.SessionSolveNanos) / float64(solved) / 1e6
	if diff := snap.MeanSessionSolveMillis - wantMean; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("mean_session_solve_millis = %g, want %g", snap.MeanSessionSolveMillis, wantMean)
	}

	// The JSON document keeps its historical key set: decode the raw body
	// and check the pre-existing keys are all present (byte-compat for
	// existing consumers) alongside the new ones.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	decodeBody(t, mresp, http.StatusOK, &raw)
	for _, key := range []string{
		"requests", "errors", "result_cache_hits", "result_cache_misses",
		"compiled_cache_hits", "compiled_cache_misses", "in_flight",
		"solve_nanos_total", "mean_solve_millis", "solve_latency",
		"compiled_cache_entries", "result_cache_entries",
		"sessions_open", "sessions_opened", "sessions_closed", "sessions_evicted",
		"session_events", "session_resolves", "session_resolves_incremental",
		"session_resolves_full", "session_resolves_cached",
		"session_solve_nanos_total", "mean_session_solve_millis",
		"session_solve_latency", "requests_by_algo", "algo_names",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("/metrics JSON missing key %q", key)
		}
	}
}
