package service

import (
	"sort"
	"time"

	"treesched/internal/obs"
)

// metrics aggregates per-request counters on internal/obs primitives.
// Every counter is registered in a per-engine obs.Registry so one
// instrument backs both the JSON snapshot (GET /metrics) and the
// Prometheus exposition (GET /metrics.prom). All hot-path updates are
// lock-free: plain counters are sharded atomics, and the per-algorithm
// request counters are prebuilt from the algorithm registry at
// construction — countAlgo is a map read plus an atomic add, with no
// mutex on any request path. Snapshot returns a consistent-enough copy
// (counters are monotone, so slight skew between fields is acceptable).
type metrics struct {
	reg *obs.Registry

	requests       *obs.Counter
	errors         *obs.Counter
	resultHits     *obs.Counter
	resultMisses   *obs.Counter
	compiledHits   *obs.Counter
	compiledMisses *obs.Counter
	solveNanos     *obs.Counter // total wall time spent in actual solves
	inFlight       *obs.Gauge
	// solvesCoalesced counts requests served as singleflight followers
	// (they waited on another request's identical in-flight solve);
	// compilesCoalesced counts compilations avoided the same way.
	solvesCoalesced   *obs.Counter
	compilesCoalesced *obs.Counter

	sessionsOpened      *obs.Counter
	sessionsClosed      *obs.Counter
	sessionsEvicted     *obs.Counter
	sessionEvents       *obs.Counter
	sessionResolves     *obs.Counter
	sessionIncremental  *obs.Counter
	sessionFullCompiles *obs.Counter
	sessionCached       *obs.Counter
	sessionSolveNanos   *obs.Counter // session resolve wall time, kept out of solveNanos so MeanSolveMillis (SolveNanos/ResultMisses) stays a /solve metric

	// solveLatency/sessionSolveLatency are log-bucketed nanosecond
	// histograms over the same intervals the *Nanos counters sum.
	solveLatency        *obs.Histogram
	sessionSolveLatency *obs.Histogram

	// byAlgo maps each registered algorithm name to its request counter.
	// The map is built complete in newMetrics and never mutated after, so
	// concurrent countAlgo calls race on nothing.
	byAlgo map[string]*obs.Counter
}

func newMetrics(algoNames []string) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg:            reg,
		requests:       reg.Counter("sched_requests_total", "Solve requests received (including cache hits and errors)."),
		errors:         reg.Counter("sched_errors_total", "Solve requests that returned an error."),
		resultHits:     reg.Counter("sched_result_cache_hits_total", "Solve requests served from the memoized result cache."),
		resultMisses:   reg.Counter("sched_result_cache_misses_total", "Solve requests that executed a solver."),
		compiledHits:   reg.Counter("sched_compiled_cache_hits_total", "Solves that reused a cached compiled model."),
		compiledMisses: reg.Counter("sched_compiled_cache_misses_total", "Solves that compiled the problem model."),
		solveNanos:     reg.Counter("sched_solve_nanos_total", "Total wall nanoseconds spent executing solvers."),
		inFlight:       reg.Gauge("sched_in_flight", "Solves currently holding a worker slot."),

		solvesCoalesced:   reg.Counter("sched_solves_coalesced_total", "Requests served by waiting on another request's identical in-flight solve (singleflight followers)."),
		compilesCoalesced: reg.Counter("sched_compiles_coalesced_total", "Compilations avoided by waiting on another request's in-flight compile of the same problem."),

		sessionsOpened:      reg.Counter("sched_sessions_opened_total", "Dynamic sessions opened."),
		sessionsClosed:      reg.Counter("sched_sessions_closed_total", "Dynamic sessions closed by clients."),
		sessionsEvicted:     reg.Counter("sched_sessions_evicted_total", "Dynamic sessions evicted (LRU or idle timeout)."),
		sessionEvents:       reg.Counter("sched_session_events_total", "Session events applied (add/remove/resolve)."),
		sessionResolves:     reg.Counter("sched_session_resolves_total", "Session resolves requested."),
		sessionIncremental:  reg.Counter("sched_session_resolve_modes_total", "Session resolves by recompilation mode.", obs.Label{Name: "mode", Value: "incremental"}),
		sessionFullCompiles: reg.Counter("sched_session_resolve_modes_total", "Session resolves by recompilation mode.", obs.Label{Name: "mode", Value: "full"}),
		sessionCached:       reg.Counter("sched_session_resolve_modes_total", "Session resolves by recompilation mode.", obs.Label{Name: "mode", Value: "cached"}),
		sessionSolveNanos:   reg.Counter("sched_session_solve_nanos_total", "Total wall nanoseconds spent in session resolves."),

		solveLatency:        reg.Histogram("sched_solve_latency_ns", "Per-solve wall latency in nanoseconds (result-cache misses only)."),
		sessionSolveLatency: reg.Histogram("sched_session_solve_latency_ns", "Per-resolve wall latency in nanoseconds (cached resolves observe near-zero)."),

		byAlgo: make(map[string]*obs.Counter, len(algoNames)),
	}
	for _, name := range algoNames {
		m.byAlgo[name] = reg.Counter("sched_requests_by_algo_total",
			"Solve requests by algorithm name.", obs.Label{Name: "algo", Value: name})
	}
	return m
}

// countAlgo bumps the per-algorithm request counter. Callers only pass
// names validated against the algorithm registry, which is exactly the
// key set byAlgo was built from; an unknown name is dropped rather than
// reintroducing a lock to grow the map.
func (m *metrics) countAlgo(name string) {
	if c, ok := m.byAlgo[name]; ok {
		c.Inc()
	}
}

// MetricsSnapshot is the exported point-in-time view of the engine's
// counters, serialized by GET /metrics.
type MetricsSnapshot struct {
	Requests       int64 `json:"requests"`
	Errors         int64 `json:"errors"`
	ResultHits     int64 `json:"result_cache_hits"`
	ResultMisses   int64 `json:"result_cache_misses"`
	CompiledHits   int64 `json:"compiled_cache_hits"`
	CompiledMisses int64 `json:"compiled_cache_misses"`
	// SolvesCoalesced counts requests served as singleflight followers:
	// they waited on another request's identical in-flight solve instead
	// of executing their own. CompilesCoalesced is the same for the
	// compilation flight (requests differing in algorithm/options share
	// one in-flight compile of their common problem).
	SolvesCoalesced   int64 `json:"solves_coalesced"`
	CompilesCoalesced int64 `json:"compiles_coalesced"`
	// CacheShards is the effective lock-shard count of the compiled and
	// result caches (Config.CacheShards after GOMAXPROCS derivation).
	CacheShards int   `json:"cache_shards"`
	InFlight    int64 `json:"in_flight"`
	// SolveNanos is total wall time spent executing solvers via /solve
	// and /batch (cache hits contribute nothing), so requests/sec and
	// mean solve latency are both derivable. Session resolve time is
	// accounted separately in SessionSolveNanos — the two pools never
	// mix, so each mean stays a faithful latency for its own endpoint.
	SolveNanos int64 `json:"solve_nanos_total"`
	// MeanSolveMillis is SolveNanos averaged over result-cache misses —
	// a /solve-endpoint metric only. It is 0 (not NaN) until the first
	// miss, and session resolves never move it; see
	// MeanSessionSolveMillis for the session-side counterpart.
	MeanSolveMillis float64 `json:"mean_solve_millis"`
	// SolveLatency summarizes the solve-latency histogram (count, mean
	// and p50/p90/p99/max nanoseconds) over the same solves SolveNanos
	// sums.
	SolveLatency obs.Summary `json:"solve_latency"`
	// CompiledEntries/ResultEntries are current cache occupancies.
	CompiledEntries int `json:"compiled_cache_entries"`
	ResultEntries   int `json:"result_cache_entries"`
	// Dynamic-session counters. SessionsOpen is the current gauge;
	// SessionsEvicted counts LRU/idle evictions (observable liveness of
	// the eviction policy); SessionResolvesIncremental vs
	// SessionResolvesFull split recompilations by whether the WithJobs
	// delta path served them.
	SessionsOpen               int   `json:"sessions_open"`
	SessionsOpened             int64 `json:"sessions_opened"`
	SessionsClosed             int64 `json:"sessions_closed"`
	SessionsEvicted            int64 `json:"sessions_evicted"`
	SessionEvents              int64 `json:"session_events"`
	SessionResolves            int64 `json:"session_resolves"`
	SessionResolvesIncremental int64 `json:"session_resolves_incremental"`
	SessionResolvesFull        int64 `json:"session_resolves_full"`
	SessionResolvesCached      int64 `json:"session_resolves_cached"`
	SessionSolveNanos          int64 `json:"session_solve_nanos_total"`
	// MeanSessionSolveMillis is SessionSolveNanos averaged over the
	// resolves that actually solved (incremental + full; cached resolves
	// spend no solver time). It is the session-side analogue of
	// MeanSolveMillis, which historically read 0 under session-only
	// traffic because ResultMisses stays 0 on that path.
	MeanSessionSolveMillis float64 `json:"mean_session_solve_millis"`
	// SessionSolveLatency summarizes the session resolve-latency
	// histogram over the same resolves SessionSolveNanos sums.
	SessionSolveLatency obs.Summary `json:"session_solve_latency"`
	// ByAlgo counts requests per algorithm name.
	ByAlgo map[string]int64 `json:"requests_by_algo"`
	// AlgoNames is ByAlgo's key set in sorted order, for deterministic
	// iteration by clients.
	AlgoNames []string `json:"algo_names"`
	// SLO reports each endpoint class's standing against its latency
	// objective ("solve" covers /solve and /batch lines, "session"
	// covers session event batches and schedule resolves). Additive:
	// every historical snapshot key above is unchanged.
	SLO map[string]SLOSnapshot `json:"slo"`
}

// SLOSnapshot is one endpoint class's SLO standing. Good/Total are the
// accounted requests (client errors spend no budget and are excluded);
// the burn rates are the bad fraction divided by the error budget
// (1 - Target) — sustained values above 1 mean the objective will be
// missed. BurnRate5m reads a ~5-minute sliding window, BurnRateTotal
// the whole uptime.
type SLOSnapshot struct {
	ObjectiveMillis float64 `json:"objective_millis"`
	Target          float64 `json:"target"`
	Good            int64   `json:"good"`
	Total           int64   `json:"total"`
	BurnRate5m      float64 `json:"burn_rate_5m"`
	BurnRateTotal   float64 `json:"burn_rate_total"`
}

func sloSnapshot(s *obs.SLO) SLOSnapshot {
	return SLOSnapshot{
		ObjectiveMillis: float64(s.ObjectiveNs) / float64(time.Millisecond),
		Target:          s.Target,
		Good:            s.Good.Load(),
		Total:           s.Total.Load(),
		BurnRate5m:      s.BurnRate(),
		BurnRateTotal:   s.TotalBurnRate(),
	}
}

func (m *metrics) snapshot(compiledEntries, resultEntries, sessionsOpen int) MetricsSnapshot {
	s := MetricsSnapshot{
		Requests:          m.requests.Load(),
		Errors:            m.errors.Load(),
		ResultHits:        m.resultHits.Load(),
		ResultMisses:      m.resultMisses.Load(),
		CompiledHits:      m.compiledHits.Load(),
		CompiledMisses:    m.compiledMisses.Load(),
		SolvesCoalesced:   m.solvesCoalesced.Load(),
		CompilesCoalesced: m.compilesCoalesced.Load(),
		InFlight:          m.inFlight.Load(),
		SolveNanos:        m.solveNanos.Load(),
		SolveLatency:      m.solveLatency.Summarize(),
		CompiledEntries:   compiledEntries,
		ResultEntries:     resultEntries,
		ByAlgo:            make(map[string]int64),

		SessionsOpen:               sessionsOpen,
		SessionsOpened:             m.sessionsOpened.Load(),
		SessionsClosed:             m.sessionsClosed.Load(),
		SessionsEvicted:            m.sessionsEvicted.Load(),
		SessionEvents:              m.sessionEvents.Load(),
		SessionResolves:            m.sessionResolves.Load(),
		SessionResolvesIncremental: m.sessionIncremental.Load(),
		SessionResolvesFull:        m.sessionFullCompiles.Load(),
		SessionResolvesCached:      m.sessionCached.Load(),
		SessionSolveNanos:          m.sessionSolveNanos.Load(),
		SessionSolveLatency:        m.sessionSolveLatency.Summarize(),
	}
	if s.ResultMisses > 0 {
		s.MeanSolveMillis = float64(s.SolveNanos) / float64(s.ResultMisses) / float64(time.Millisecond)
	}
	if solved := s.SessionResolvesIncremental + s.SessionResolvesFull; solved > 0 {
		s.MeanSessionSolveMillis = float64(s.SessionSolveNanos) / float64(solved) / float64(time.Millisecond)
	}
	for k, c := range m.byAlgo {
		s.ByAlgo[k] = c.Load()
		s.AlgoNames = append(s.AlgoNames, k)
	}
	sort.Strings(s.AlgoNames)
	return s
}
