package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics aggregates per-request counters. All fields are safe for
// concurrent update; Snapshot returns a consistent-enough copy for the
// /metrics endpoint (counters are monotone, so slight skew between
// fields is acceptable).
type metrics struct {
	requests       atomic.Int64
	errors         atomic.Int64
	resultHits     atomic.Int64
	resultMisses   atomic.Int64
	compiledHits   atomic.Int64
	compiledMisses atomic.Int64
	solveNanos     atomic.Int64 // total wall time spent in actual solves
	inFlight       atomic.Int64

	sessionsOpened      atomic.Int64
	sessionsClosed      atomic.Int64
	sessionsEvicted     atomic.Int64
	sessionEvents       atomic.Int64
	sessionResolves     atomic.Int64
	sessionIncremental  atomic.Int64
	sessionFullCompiles atomic.Int64
	sessionCached       atomic.Int64
	sessionSolveNanos   atomic.Int64 // session resolve wall time, kept out of solveNanos so MeanSolveMillis (SolveNanos/ResultMisses) stays a /solve metric

	mu     sync.Mutex
	byAlgo map[string]int64
}

func newMetrics() *metrics {
	return &metrics{byAlgo: make(map[string]int64)}
}

func (m *metrics) countAlgo(name string) {
	m.mu.Lock()
	m.byAlgo[name]++
	m.mu.Unlock()
}

// MetricsSnapshot is the exported point-in-time view of the engine's
// counters, serialized by GET /metrics.
type MetricsSnapshot struct {
	Requests       int64 `json:"requests"`
	Errors         int64 `json:"errors"`
	ResultHits     int64 `json:"result_cache_hits"`
	ResultMisses   int64 `json:"result_cache_misses"`
	CompiledHits   int64 `json:"compiled_cache_hits"`
	CompiledMisses int64 `json:"compiled_cache_misses"`
	InFlight       int64 `json:"in_flight"`
	// SolveNanos is total wall time spent executing solvers (cache hits
	// contribute nothing), so requests/sec and mean solve latency are
	// both derivable.
	SolveNanos int64 `json:"solve_nanos_total"`
	// MeanSolveMillis is SolveNanos averaged over result-cache misses.
	MeanSolveMillis float64 `json:"mean_solve_millis"`
	// CompiledEntries/ResultEntries are current cache occupancies.
	CompiledEntries int `json:"compiled_cache_entries"`
	ResultEntries   int `json:"result_cache_entries"`
	// Dynamic-session counters. SessionsOpen is the current gauge;
	// SessionsEvicted counts LRU/idle evictions (observable liveness of
	// the eviction policy); SessionResolvesIncremental vs
	// SessionResolvesFull split recompilations by whether the WithJobs
	// delta path served them.
	SessionsOpen               int   `json:"sessions_open"`
	SessionsOpened             int64 `json:"sessions_opened"`
	SessionsClosed             int64 `json:"sessions_closed"`
	SessionsEvicted            int64 `json:"sessions_evicted"`
	SessionEvents              int64 `json:"session_events"`
	SessionResolves            int64 `json:"session_resolves"`
	SessionResolvesIncremental int64 `json:"session_resolves_incremental"`
	SessionResolvesFull        int64 `json:"session_resolves_full"`
	SessionResolvesCached      int64 `json:"session_resolves_cached"`
	SessionSolveNanos          int64 `json:"session_solve_nanos_total"`
	// ByAlgo counts requests per algorithm name.
	ByAlgo map[string]int64 `json:"requests_by_algo"`
	// AlgoNames is ByAlgo's key set in sorted order, for deterministic
	// iteration by clients.
	AlgoNames []string `json:"algo_names"`
}

func (m *metrics) snapshot(compiledEntries, resultEntries, sessionsOpen int) MetricsSnapshot {
	s := MetricsSnapshot{
		Requests:        m.requests.Load(),
		Errors:          m.errors.Load(),
		ResultHits:      m.resultHits.Load(),
		ResultMisses:    m.resultMisses.Load(),
		CompiledHits:    m.compiledHits.Load(),
		CompiledMisses:  m.compiledMisses.Load(),
		InFlight:        m.inFlight.Load(),
		SolveNanos:      m.solveNanos.Load(),
		CompiledEntries: compiledEntries,
		ResultEntries:   resultEntries,
		ByAlgo:          make(map[string]int64),

		SessionsOpen:               sessionsOpen,
		SessionsOpened:             m.sessionsOpened.Load(),
		SessionsClosed:             m.sessionsClosed.Load(),
		SessionsEvicted:            m.sessionsEvicted.Load(),
		SessionEvents:              m.sessionEvents.Load(),
		SessionResolves:            m.sessionResolves.Load(),
		SessionResolvesIncremental: m.sessionIncremental.Load(),
		SessionResolvesFull:        m.sessionFullCompiles.Load(),
		SessionResolvesCached:      m.sessionCached.Load(),
		SessionSolveNanos:          m.sessionSolveNanos.Load(),
	}
	if s.ResultMisses > 0 {
		s.MeanSolveMillis = float64(s.SolveNanos) / float64(s.ResultMisses) / float64(time.Millisecond)
	}
	m.mu.Lock()
	for k, v := range m.byAlgo {
		s.ByAlgo[k] = v
		s.AlgoNames = append(s.AlgoNames, k)
	}
	m.mu.Unlock()
	sort.Strings(s.AlgoNames)
	return s
}
