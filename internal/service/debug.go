package service

// /debug endpoints: the HTTP face of the engine's flight recorder.
//
//	GET /debug/requests       in-flight requests (with their current
//	                          phase) plus the retained completed records
//	                          per class (recent / slow / error), span
//	                          timelines stripped
//	GET /debug/requests/{id}  the full record of one request — the span
//	                          timeline when one was retained, or the
//	                          live view while it is still in flight
//	GET /debug/events         the structured event log (evictions,
//	                          coalesce outcomes, session lifecycle)
//
// All payloads are plain JSON with the single-status contract of the
// rest of the API. With Config.DisableRecorder the endpoints answer 404.

import (
	"net/http"
	"strconv"

	"treesched/internal/obs"
)

// debugListMax caps listing sizes when the client does not pass ?max=N.
const debugListMax = 32

// debugMax parses ?max=N; invalid or absent values take debugListMax.
func debugMax(r *http.Request) int {
	if v := r.URL.Query().Get("max"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return debugListMax
}

// recorderOr404 resolves the engine recorder, answering 404 when the
// engine runs without one.
func (e *Engine) recorderOr404(w http.ResponseWriter) *obs.Recorder {
	if e.rec == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "flight recorder disabled"})
		return nil
	}
	return e.rec
}

// debugRequestsPayload is the GET /debug/requests body.
type debugRequestsPayload struct {
	Active []obs.ActiveReq `json:"active"`
	Recent []obs.ReqRecord `json:"recent"`
	Slow   []obs.ReqRecord `json:"slow"`
	Errors []obs.ReqRecord `json:"errors"`
}

func (e *Engine) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	rec := e.recorderOr404(w)
	if rec == nil {
		return
	}
	max := debugMax(r)
	p := debugRequestsPayload{
		Active: rec.Active(),
		Recent: rec.Completed(obs.ClassRecent, max),
		Slow:   rec.Completed(obs.ClassSlow, max),
		Errors: rec.Completed(obs.ClassError, max),
	}
	// Empty listings marshal as [], never null.
	if p.Active == nil {
		p.Active = []obs.ActiveReq{}
	}
	if p.Recent == nil {
		p.Recent = []obs.ReqRecord{}
	}
	if p.Slow == nil {
		p.Slow = []obs.ReqRecord{}
	}
	if p.Errors == nil {
		p.Errors = []obs.ReqRecord{}
	}
	writeJSON(w, http.StatusOK, p)
}

// debugRequestPayload is the GET /debug/requests/{id} body: exactly one
// of Record (completed, possibly with its span timeline) or Active
// (still in flight) is set.
type debugRequestPayload struct {
	Record *obs.ReqRecord `json:"record,omitempty"`
	Active *obs.ActiveReq `json:"active,omitempty"`
}

func (e *Engine) handleDebugRequest(w http.ResponseWriter, r *http.Request) {
	rec := e.recorderOr404(w)
	if rec == nil {
		return
	}
	id := r.PathValue("id")
	if rq, ok := rec.Lookup(id); ok {
		writeJSON(w, http.StatusOK, debugRequestPayload{Record: &rq})
		return
	}
	for _, a := range rec.Active() {
		if a.ID == id {
			writeJSON(w, http.StatusOK, debugRequestPayload{Active: &a})
			return
		}
	}
	writeJSON(w, http.StatusNotFound, errorBody{Error: "no retained record for request id " + strconv.Quote(id)})
}

// debugEventsPayload is the GET /debug/events body.
type debugEventsPayload struct {
	Events []obs.Event `json:"events"`
}

func (e *Engine) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	rec := e.recorderOr404(w)
	if rec == nil {
		return
	}
	evs := rec.Events(debugMax(r))
	if evs == nil {
		evs = []obs.Event{}
	}
	writeJSON(w, http.StatusOK, debugEventsPayload{Events: evs})
}
