package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"treesched/internal/online"
	"treesched/internal/scenario"
)

// Handler returns the engine's HTTP API:
//
//	POST /solve      one Request JSON -> one Response JSON
//	POST /batch      NDJSON stream of Requests -> NDJSON stream of
//	                 Responses in input order (solved concurrently);
//	                 per-line failures become {"error": "..."} lines
//	GET  /scenarios  the preset library with docs and defaults
//	GET  /healthz    liveness
//	GET  /metrics    MetricsSnapshot JSON
//	GET  /metrics.prom  the same counters in the Prometheus text
//	                 exposition format (v0.0.4), plus latency summaries
//
// Dynamic sessions (internal/online):
//
//	POST   /session                 SessionRequest -> SessionInfo
//	POST   /session/{id}/events     NDJSON stream of events (add/remove/
//	                                resolve) applied in order -> SessionEventsResult
//	GET    /session/{id}/schedule   resolve staged events -> SessionSchedule
//	DELETE /session/{id}            close the session
//
// Flight-recorder introspection (see debug.go):
//
//	GET /debug/requests       active + retained completed requests
//	GET /debug/requests/{id}  one request's full record / span timeline
//	GET /debug/events         the structured event log
//
// Engine endpoints accept an X-Request-ID header (minting one when
// absent) and echo it on the response; the id keys the request's
// flight-recorder record, so a client can quote it to /debug/requests/{id}.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /solve", e.instrumented("solve", e.handleSolve))
	mux.HandleFunc("POST /batch", e.instrumented("batch", e.handleBatch))
	mux.HandleFunc("GET /scenarios", e.handleScenarios)
	mux.HandleFunc("GET /healthz", e.handleHealthz)
	mux.HandleFunc("GET /metrics", e.handleMetrics)
	mux.HandleFunc("GET /metrics.prom", e.handleMetricsProm)
	mux.HandleFunc("POST /session", e.instrumented("session_open", e.handleSessionOpen))
	mux.HandleFunc("POST /session/{id}/events", e.instrumented("session_events", e.handleSessionEvents))
	mux.HandleFunc("GET /session/{id}/schedule", e.instrumented("session_schedule", e.handleSessionSchedule))
	mux.HandleFunc("DELETE /session/{id}", e.instrumented("session_close", e.handleSessionClose))
	mux.HandleFunc("GET /debug/requests", e.handleDebugRequests)
	mux.HandleFunc("GET /debug/requests/{id}", e.handleDebugRequest)
	mux.HandleFunc("GET /debug/events", e.handleDebugEvents)
	return mux
}

// instrumented wraps an engine endpoint: it accepts the client's
// X-Request-ID (minting a recorder id when absent), echoes the id on
// the response header, and deposits id + endpoint class in the request
// context for the engine to record under. With the recorder disabled
// and no client id, behavior is unchanged — no header, no context keys.
func (e *Engine) instrumented(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" && e.rec != nil {
			id = e.rec.NextID()
		}
		if id != "" {
			w.Header().Set("X-Request-ID", id)
		}
		h(w, r.WithContext(withEndpoint(WithRequestID(r.Context(), id), endpoint)))
	}
}

// maxRequestBytes bounds one /solve body or one /batch line.
const maxRequestBytes = 32 << 20

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) // nolint:errcheck — the client is gone if this fails
}

func errStatus(err error) int {
	if errors.Is(err, ErrBadRequest) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (e *Engine) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decode request: %v", err)})
		return
	}
	resp, err := e.Solve(r.Context(), &req)
	if err != nil {
		writeJSON(w, errStatus(err), errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch streams NDJSON: each input line is one Request, each
// output line the matching Response (or an error object) in input
// order. Lines run through orderedSolves — the same ordered-concurrent
// scheduler behind Engine.SolveBatch — whose bounded future queue
// applies back-pressure to the reader so an unbounded stream does not
// accumulate in memory.
func (e *Engine) handleBatch(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)

	encodeLine := func(v any) []byte {
		data, err := json.Marshal(v)
		if err != nil {
			data, _ = json.Marshal(errorBody{Error: err.Error()})
		}
		return data
	}

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxRequestBytes)
	// Each line records under a derived id ("<batch id>.<line>"), so one
	// batch's solves group in /debug/requests under the id the batch
	// response echoed.
	baseID := RequestIDFrom(r.Context())
	lineNo := 0
	e.orderedSolves(
		func() (func() any, bool) {
			for sc.Scan() {
				line := make([]byte, len(sc.Bytes()))
				copy(line, sc.Bytes())
				if len(line) == 0 {
					continue
				}
				idx := lineNo
				lineNo++
				return func() any {
					var req Request
					if err := json.Unmarshal(line, &req); err != nil {
						return encodeLine(errorBody{Error: fmt.Sprintf("decode request: %v", err)})
					}
					ctx := r.Context()
					if baseID != "" {
						ctx = WithRequestID(ctx, fmt.Sprintf("%s.%d", baseID, idx))
					}
					resp, err := e.Solve(ctx, &req)
					if err != nil {
						return encodeLine(errorBody{Error: err.Error()})
					}
					return encodeLine(resp)
				}, true
			}
			return nil, false
		},
		func(v any) {
			w.Write(v.([]byte)) // nolint:errcheck — keep draining on client loss
			w.Write([]byte("\n"))
			if flusher != nil {
				flusher.Flush()
			}
		},
	)
	if err := sc.Err(); err != nil {
		// The stream is already partially written; append a final error
		// line rather than a status code.
		w.Write(encodeLine(errorBody{Error: fmt.Sprintf("read stream: %v", err)})) // nolint:errcheck
		w.Write([]byte("\n"))                                                      // nolint:errcheck
	}
}

// scenarioListing is the /scenarios payload.
type scenarioListing struct {
	Scenarios  []*scenario.Scenario `json:"scenarios"`
	Algorithms []string             `json:"algorithms"`
}

func (e *Engine) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, scenarioListing{
		Scenarios:  scenario.All(),
		Algorithms: Algorithms(),
	})
}

func (e *Engine) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": int64(e.Uptime().Seconds()),
	})
}

func (e *Engine) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, e.Metrics())
}

func (e *Engine) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	e.WritePrometheus(w) // nolint:errcheck — the client is gone if this fails
}

func sessionStatus(err error) int {
	if errors.Is(err, ErrSessionNotFound) {
		return http.StatusNotFound
	}
	return errStatus(err)
}

func (e *Engine) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decode request: %v", err)})
		return
	}
	info, err := e.OpenSession(&req)
	if err != nil {
		writeJSON(w, sessionStatus(err), errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleSessionEvents reads an NDJSON stream of online.Event lines and
// applies them in order; application stops at the first bad event (the
// preceding ones stay applied) and the error names the offending line.
func (e *Engine) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var events []online.Event
	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	sc.Buffer(make([]byte, 0, 64*1024), maxRequestBytes)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev online.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decode event %d: %v", len(events), err)})
			return
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("read stream: %v", err)})
		return
	}
	res, err := e.SessionEvents(r.Context(), id, events)
	if err != nil {
		writeJSON(w, sessionStatus(err), errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (e *Engine) handleSessionSchedule(w http.ResponseWriter, r *http.Request) {
	sched, err := e.SessionSchedule(r.Context(), r.PathValue("id"))
	if err != nil {
		writeJSON(w, sessionStatus(err), errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, sched)
}

func (e *Engine) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	if err := e.CloseSession(r.PathValue("id")); err != nil {
		writeJSON(w, sessionStatus(err), errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "closed"})
}
