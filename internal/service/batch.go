package service

import "context"

// BatchResult pairs one request's outcome with its error, in input order.
type BatchResult struct {
	Response *Response
	Err      error
}

// SolveBatch executes many requests concurrently through the engine's
// worker pool and returns their outcomes in input order, one slot per
// request. It is the slice-form twin of the /batch NDJSON endpoint: both
// run on the same ordered-concurrent scheduler (orderedSolves), so a
// batch enjoys the same result memoization, compiled-model reuse and
// bounded concurrency as a stream of individual Solve calls — but a
// multi-problem batch overlaps its compilations instead of serializing
// them behind one connection.
func (e *Engine) SolveBatch(ctx context.Context, reqs []*Request) []BatchResult {
	out := make([]BatchResult, 0, len(reqs))
	i := 0
	e.orderedSolves(
		func() (func() any, bool) {
			if i >= len(reqs) {
				return nil, false
			}
			req := reqs[i]
			i++
			return func() any {
				resp, err := e.Solve(ctx, req)
				return BatchResult{Response: resp, Err: err}
			}, true
		},
		func(v any) { out = append(out, v.(BatchResult)) },
	)
	return out
}

// orderedSolves is the shared scheduler of SolveBatch and /batch: it
// pulls jobs from next until exhaustion, runs each on its own goroutine,
// and hands results to emit in input order. The bounded future queue
// keeps at most 2×Workers jobs in flight, back-pressuring next so an
// unbounded stream never accumulates in memory; the engine's semaphore
// still bounds the solves actually executing. emit runs on a single
// goroutine.
func (e *Engine) orderedSolves(next func() (func() any, bool), emit func(any)) {
	futures := make(chan chan any, 2*e.cfg.Workers)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for fut := range futures {
			emit(<-fut)
		}
	}()
	for {
		job, ok := next()
		if !ok {
			break
		}
		fut := make(chan any, 1)
		futures <- fut // back-pressure: at most 2×Workers jobs in flight
		go func() { fut <- job() }()
	}
	close(futures)
	<-done
}
