package service

import (
	"context"
	"encoding/json"
	"testing"
)

// TestSolveBatchMatchesIndividualSolves checks the slice batch API:
// results come back in input order, each byte-identical to the response
// an individual Solve returns, with per-slot errors held in-band.
func TestSolveBatchMatchesIndividualSolves(t *testing.T) {
	e := New(Config{Workers: 4})
	defer e.Close()

	reqs := []*Request{
		{Algo: "line-unit", Scenario: "videowall-line", ScenarioSeed: 1},
		{Algo: "tree-unit", Scenario: "caterpillar-backbone", ScenarioSeed: 2},
		{Algo: "nope", Scenario: "videowall-line"},
		{Algo: "greedy", Scenario: "narrow-stream", ScenarioSeed: 3},
		{Algo: "tree-unit", Scenario: "videowall-line", ScenarioSeed: 1}, // kind mismatch
	}
	got := e.SolveBatch(context.Background(), reqs)
	if len(got) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(got), len(reqs))
	}

	fresh := New(Config{Workers: 1})
	defer fresh.Close()
	for i, req := range reqs {
		want, wantErr := fresh.Solve(context.Background(), req)
		if (wantErr == nil) != (got[i].Err == nil) {
			t.Fatalf("slot %d: err = %v, individual solve err = %v", i, got[i].Err, wantErr)
		}
		if wantErr != nil {
			if got[i].Err.Error() != wantErr.Error() {
				t.Fatalf("slot %d: err %q, want %q", i, got[i].Err, wantErr)
			}
			continue
		}
		gj, _ := json.Marshal(got[i].Response)
		wj, _ := json.Marshal(want)
		if string(gj) != string(wj) {
			t.Fatalf("slot %d: batch response differs from individual solve:\n  %s\nvs\n  %s", i, gj, wj)
		}
	}
}
