// Package conflict builds the conflict graph over demand instances (§2):
// two instances conflict when they belong to the same demand or when they
// are scheduled on the same network and their paths share an edge.
//
// The conflict graph is exactly the graph on which the distributed
// algorithm computes maximal independent sets (§5, "Distributed
// Implementation"). Two representations are provided: an explicit
// adjacency-list Graph, and an Implicit clique cover (one clique per
// demand, one per edge) that supports Luby-style aggregation without
// materializing potentially quadratic adjacency.
package conflict

import (
	"fmt"

	"treesched/internal/model"
)

// Graph is an explicit conflict graph over instances 0..N-1.
type Graph struct {
	N   int
	Adj [][]int32
}

// Implicit is a clique cover of the conflict graph stored in CSR form:
// the members of each demand form a clique, and the instances active on
// each edge form a clique. Every conflict edge is covered by at least one
// clique.
type Implicit struct {
	N int
	// Cliques row k lists the members of clique k; demand cliques come
	// first, then edge cliques. Cliques of size < 2 are omitted.
	Cliques model.CSR
	// CliquesOf row i lists the clique ids containing instance i,
	// ascending.
	CliquesOf model.CSR
}

// BuildImplicit constructs the clique cover from a compiled model. The
// member lists are copied out of the model's InstsOf/EdgeInsts indexes
// into two flat arrays — the cover itself adds four allocations total.
func BuildImplicit(m *model.Model) *Implicit {
	im := &Implicit{N: len(m.Insts)}
	nc, total := 0, 0
	for a := 0; a < m.InstsOf.Rows(); a++ {
		if l := m.InstsOf.RowLen(int32(a)); l >= 2 {
			nc++
			total += l
		}
	}
	for e := 0; e < m.EdgeInsts.Rows(); e++ {
		if l := m.EdgeInsts.RowLen(int32(e)); l >= 2 {
			nc++
			total += l
		}
	}
	im.Cliques = model.CSR{
		Off:  make([]int32, 1, nc+1),
		Data: make([]int32, 0, total),
	}
	appendClique := func(members []int32) {
		if len(members) >= 2 {
			im.Cliques.Data = append(im.Cliques.Data, members...)
			im.Cliques.Off = append(im.Cliques.Off, int32(len(im.Cliques.Data)))
		}
	}
	for a := 0; a < m.InstsOf.Rows(); a++ {
		appendClique(m.InstsOf.Row(int32(a)))
	}
	for e := 0; e < m.EdgeInsts.Rows(); e++ {
		appendClique(m.EdgeInsts.Row(int32(e)))
	}
	im.CliquesOf = model.InvertCSR(&im.Cliques, im.N)
	return im
}

// Clique returns the members of clique id k (demand cliques first).
func (im *Implicit) Clique(k int32) []int32 {
	return im.Cliques.Row(k)
}

// NumCliques returns the total clique count.
func (im *Implicit) NumCliques() int {
	return im.Cliques.Rows()
}

// Build materializes the explicit conflict graph from the clique cover.
// Instances active on a common edge form cliques, so the output can be
// quadratic in clique sizes; prefer Implicit for large inputs.
func Build(m *model.Model) *Graph {
	im := BuildImplicit(m)
	g := &Graph{N: im.N, Adj: make([][]int32, im.N)}
	seen := make([]int32, im.N)
	for i := range seen {
		seen[i] = -1
	}
	for i := int32(0); int(i) < im.N; i++ {
		seen[i] = i
		for _, k := range im.CliquesOf.Row(i) {
			for _, j := range im.Clique(k) {
				if seen[j] != i {
					seen[j] = i
					g.Adj[i] = append(g.Adj[i], j)
				}
			}
		}
	}
	return g
}

// Degree returns the degree of instance i.
func (g *Graph) Degree(i int32) int { return len(g.Adj[i]) }

// VerifyAgainstModel cross-checks the explicit graph against the model's
// pairwise Conflict predicate, using a reusable neighbor-stamp slice
// instead of per-vertex hash sets. O(N²); for tests.
func (g *Graph) VerifyAgainstModel(m *model.Model) error {
	mark := make([]int32, g.N)
	for i := range mark {
		mark[i] = -1
	}
	contains := func(u, v int32) bool {
		for _, w := range g.Adj[u] {
			if w == v {
				return true
			}
		}
		return false
	}
	for i := int32(0); int(i) < g.N; i++ {
		for _, j := range g.Adj[i] {
			mark[j] = i
		}
		for j := int32(0); int(j) < g.N; j++ {
			if i == j {
				continue
			}
			has := mark[j] == i
			if want := m.Conflict(i, j); has != want {
				return fmt.Errorf("conflict: edge (%d,%d)=%v want %v", i, j, has, want)
			}
			// One-directional symmetry probe: a missing reverse edge is
			// caught here, a missing forward edge at iteration (j,i).
			if has && !contains(j, i) {
				return fmt.Errorf("conflict: asymmetric edge (%d,%d)", i, j)
			}
		}
	}
	return nil
}
