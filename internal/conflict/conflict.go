// Package conflict builds the conflict graph over demand instances (§2):
// two instances conflict when they belong to the same demand or when they
// are scheduled on the same network and their paths share an edge.
//
// The conflict graph is exactly the graph on which the distributed
// algorithm computes maximal independent sets (§5, "Distributed
// Implementation"). Two representations are provided: an explicit
// adjacency-list Graph, and an Implicit clique cover (one clique per
// demand, one per edge) that supports Luby-style aggregation without
// materializing potentially quadratic adjacency.
package conflict

import (
	"fmt"

	"treesched/internal/model"
)

// Graph is an explicit conflict graph over instances 0..N-1.
type Graph struct {
	N   int
	Adj [][]int32
}

// Implicit is a clique cover of the conflict graph: the members of each
// demand form a clique, and the instances active on each edge form a
// clique. Every conflict edge is covered by at least one clique.
type Implicit struct {
	N int
	// DemandCliques[k] and EdgeCliques[k] list instance indices; cliques
	// of size < 2 are omitted.
	DemandCliques [][]int32
	EdgeCliques   [][]int32
	// CliquesOf[i] lists clique ids containing instance i; demand cliques
	// come first, edge cliques are offset by len(DemandCliques).
	CliquesOf [][]int32
}

// BuildImplicit constructs the clique cover from a compiled model.
func BuildImplicit(m *model.Model) *Implicit {
	im := &Implicit{N: len(m.Insts)}
	edgeInsts := make([][]int32, m.EdgeSpace)
	for i := range m.Insts {
		for _, e := range m.Paths[i] {
			edgeInsts[e] = append(edgeInsts[e], int32(i))
		}
	}
	for _, members := range m.InstsOf {
		if len(members) >= 2 {
			im.DemandCliques = append(im.DemandCliques, members)
		}
	}
	for _, members := range edgeInsts {
		if len(members) >= 2 {
			im.EdgeCliques = append(im.EdgeCliques, members)
		}
	}
	im.CliquesOf = make([][]int32, im.N)
	for k, members := range im.DemandCliques {
		for _, i := range members {
			im.CliquesOf[i] = append(im.CliquesOf[i], int32(k))
		}
	}
	off := int32(len(im.DemandCliques))
	for k, members := range im.EdgeCliques {
		for _, i := range members {
			im.CliquesOf[i] = append(im.CliquesOf[i], off+int32(k))
		}
	}
	return im
}

// Clique returns the members of clique id k (demand cliques first).
func (im *Implicit) Clique(k int32) []int32 {
	if int(k) < len(im.DemandCliques) {
		return im.DemandCliques[k]
	}
	return im.EdgeCliques[int(k)-len(im.DemandCliques)]
}

// NumCliques returns the total clique count.
func (im *Implicit) NumCliques() int {
	return len(im.DemandCliques) + len(im.EdgeCliques)
}

// Build materializes the explicit conflict graph from the clique cover.
// Instances active on a common edge form cliques, so the output can be
// quadratic in clique sizes; prefer Implicit for large inputs.
func Build(m *model.Model) *Graph {
	im := BuildImplicit(m)
	g := &Graph{N: im.N, Adj: make([][]int32, im.N)}
	seen := make([]int32, im.N)
	for i := range seen {
		seen[i] = -1
	}
	for i := int32(0); int(i) < im.N; i++ {
		seen[i] = i
		for _, k := range im.CliquesOf[i] {
			for _, j := range im.Clique(k) {
				if seen[j] != i {
					seen[j] = i
					g.Adj[i] = append(g.Adj[i], j)
				}
			}
		}
	}
	return g
}

// Degree returns the degree of instance i.
func (g *Graph) Degree(i int32) int { return len(g.Adj[i]) }

// VerifyAgainstModel cross-checks the explicit graph against the model's
// pairwise Conflict predicate. O(N²); for tests.
func (g *Graph) VerifyAgainstModel(m *model.Model) error {
	adj := make([]map[int32]bool, g.N)
	for i := range adj {
		adj[i] = map[int32]bool{}
		for _, j := range g.Adj[i] {
			adj[i][j] = true
		}
	}
	for i := int32(0); int(i) < g.N; i++ {
		for j := int32(0); int(j) < g.N; j++ {
			if i == j {
				continue
			}
			want := m.Conflict(i, j)
			if adj[i][j] != want {
				return fmt.Errorf("conflict: edge (%d,%d)=%v want %v", i, j, adj[i][j], want)
			}
			if adj[i][j] != adj[j][i] {
				return fmt.Errorf("conflict: asymmetric edge (%d,%d)", i, j)
			}
		}
	}
	return nil
}
