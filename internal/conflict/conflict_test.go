package conflict

import (
	"math/rand"
	"testing"

	"treesched/internal/gen"
	"treesched/internal/model"
)

func buildModel(t testing.TB, seed int64, tree bool) *model.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var m *model.Model
	var err error
	if tree {
		p := gen.TreeProblem(gen.TreeConfig{N: 20, Trees: 3, Demands: 15, Unit: true}, rng)
		m, err = model.Build(p, model.Options{})
	} else {
		p := gen.LineProblem(gen.LineConfig{Slots: 30, Resources: 2, Demands: 12, Unit: true}, rng)
		m, err = model.Build(p, model.Options{})
	}
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestExplicitMatchesPairwisePredicate(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		for _, tree := range []bool{true, false} {
			m := buildModel(t, seed, tree)
			g := Build(m)
			if err := g.VerifyAgainstModel(m); err != nil {
				t.Fatalf("seed %d tree=%v: %v", seed, tree, err)
			}
		}
	}
}

func TestImplicitCoversAllConflicts(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		m := buildModel(t, seed, true)
		im := BuildImplicit(m)
		// Union of cliques = conflict relation.
		adj := make([]map[int32]bool, im.N)
		for i := range adj {
			adj[i] = map[int32]bool{}
		}
		for k := int32(0); int(k) < im.NumCliques(); k++ {
			members := im.Clique(k)
			for _, i := range members {
				for _, j := range members {
					if i != j {
						adj[i][j] = true
					}
				}
			}
		}
		for i := int32(0); int(i) < im.N; i++ {
			for j := int32(0); int(j) < im.N; j++ {
				if i == j {
					continue
				}
				if adj[i][j] != m.Conflict(i, j) {
					t.Fatalf("seed %d: clique cover edge (%d,%d)=%v, model says %v",
						seed, i, j, adj[i][j], m.Conflict(i, j))
				}
			}
		}
		// CliquesOf must be the exact inverse of Clique membership.
		for i := int32(0); int(i) < im.N; i++ {
			for _, k := range im.CliquesOf.Row(i) {
				found := false
				for _, j := range im.Clique(k) {
					if j == i {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("CliquesOf[%d] lists clique %d that does not contain it", i, k)
				}
			}
		}
	}
}

func TestDegreeAndEmptyGraph(t *testing.T) {
	m := buildModel(t, 7, true)
	g := Build(m)
	for i := int32(0); int(i) < g.N; i++ {
		if g.Degree(i) != len(g.Adj[i]) {
			t.Fatal("Degree mismatch")
		}
	}
}

func BenchmarkBuildExplicit(b *testing.B) {
	m := buildModel(b, 1, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Build(m)
	}
}
