// Package par holds the tiny bounded fan-out helpers the parallel
// compile pipeline is built from. The helpers run work on a bounded
// number of goroutines but never decide *what* is computed: callers
// partition index space by fixed functions of the index alone, and every
// unit writes only to its own preallocated slot, so results are
// byte-identical at any worker count — workers ∈ {1, 2, GOMAXPROCS}
// produce the same bytes, only the wall-clock differs. Workers == 1
// short-circuits to a plain loop on the calling goroutine (the serial
// equivalence oracle: no goroutines, no synchronization, today's cost
// model exactly).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a worker knob to an effective worker count: 0 selects
// GOMAXPROCS (use every core), anything below 1 is the serial path.
func Resolve(workers int) int {
	if workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// Each runs fn(i) for every i in [0, n), on min(workers, n) goroutines
// pulling indices from a shared atomic cursor. fn must confine its writes
// to data owned by index i. workers is used as given (Resolve first).
func Each(workers, n int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Shards partitions [0, n) into contiguous shards of shardSize (the last
// may be short) and runs fn(lo, hi) per shard through Each. Shard
// boundaries are a fixed function of (n, shardSize) — never of workers —
// which is what makes sharded writes stitch identically at any fan-out.
func Shards(workers, n, shardSize int, fn func(lo, hi int)) {
	if n == 0 {
		return
	}
	if shardSize < 1 {
		shardSize = 1
	}
	shards := (n + shardSize - 1) / shardSize
	Each(workers, shards, func(s int) {
		lo := s * shardSize
		hi := lo + shardSize
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// Go runs the given thunks concurrently (each on its own goroutine when
// workers > 1, inline otherwise) and waits for all of them. For the
// handful-of-independent-tasks shape: building a model's three derived
// indexes at once.
func Go(workers int, fns ...func()) {
	if workers <= 1 || len(fns) <= 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	wg.Wait()
}
