package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got, want := Resolve(0), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS %d", got, want)
	}
	for _, w := range []int{-3, -1} {
		if got := Resolve(w); got != 1 {
			t.Fatalf("Resolve(%d) = %d, want 1", w, got)
		}
	}
	for _, w := range []int{1, 2, 9} {
		if got := Resolve(w); got != w {
			t.Fatalf("Resolve(%d) = %d, want %d", w, got, w)
		}
	}
}

func TestEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 100} {
		for _, n := range []int{0, 1, 5, 1000} {
			hits := make([]atomic.Int32, n)
			Each(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestShardsBoundariesFixedAndComplete(t *testing.T) {
	for _, n := range []int{0, 1, 511, 512, 513, 2000} {
		var wantShards [][2]int
		Shards(1, n, 512, func(lo, hi int) { wantShards = append(wantShards, [2]int{lo, hi}) })
		// Coverage: contiguous, in order, exactly [0, n).
		at := 0
		for _, s := range wantShards {
			if s[0] != at || s[1] <= s[0] {
				t.Fatalf("n=%d: shard %v at offset %d is not contiguous", n, s, at)
			}
			at = s[1]
		}
		if at != n {
			t.Fatalf("n=%d: shards cover [0,%d)", n, at)
		}
		// Boundary set is identical at any worker count.
		for _, workers := range []int{2, 5} {
			seen := make(map[[2]int]bool)
			var mu atomic.Int32
			Shards(workers, n, 512, func(lo, hi int) {
				for !mu.CompareAndSwap(0, 1) {
				}
				seen[[2]int{lo, hi}] = true
				mu.Store(0)
			})
			if len(seen) != len(wantShards) {
				t.Fatalf("n=%d workers=%d: %d shards, serial had %d", n, workers, len(seen), len(wantShards))
			}
			for _, s := range wantShards {
				if !seen[s] {
					t.Fatalf("n=%d workers=%d: missing shard %v", n, workers, s)
				}
			}
		}
	}
}

func TestGoRunsAllThunks(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var a, b, c atomic.Int32
		Go(workers, func() { a.Add(1) }, func() { b.Add(1) }, func() { c.Add(1) })
		if a.Load() != 1 || b.Load() != 1 || c.Load() != 1 {
			t.Fatalf("workers=%d: thunks ran %d/%d/%d times", workers, a.Load(), b.Load(), c.Load())
		}
	}
}
