// Package lp holds the primal/dual machinery of §3.1 and §6.1: the dual
// variables α (one per demand) and β (one per network edge), the dual
// constraint of each demand instance, and the raise rules that make
// constraints tight in the two-phase framework.
//
// Three rules implement the paper's variants:
//
//   - Unit (§3.2):   α(a) + Σ_{e∈path} β(e) ≥ p;   raise α and β(π) by δ,
//     δ = s/(|π|+1).
//   - Narrow (§6.1): α(a) + h·Σ_{e∈path} β(e) ≥ p; raise α by δ and β(π)
//     by 2|π|δ, δ = s/(1+2h|π|²).
//   - Capacitated (abstract / IPPS'13 title): per-edge capacities; β is
//     stored pre-multiplied by capacity so the dual objective stays Σα+Σβ.
//
// After the first phase, if every instance is λ-satisfied, (α,β)/λ is dual
// feasible and by weak duality DualObjective/λ ≥ p(Opt) — the certificate
// every experiment reports.
package lp

import (
	"fmt"

	"treesched/internal/model"
)

// Tol is the absolute slack tolerated in feasibility and satisfaction
// checks, guarding float accumulation error.
const Tol = 1e-9

// Duals is a dual assignment ⟨α, β⟩.
type Duals struct {
	Alpha []float64 // per demand
	Beta  []float64 // per global edge
}

// NewDuals returns the all-zero assignment for m.
func NewDuals(m *model.Model) *Duals {
	return &Duals{
		Alpha: make([]float64, m.NumDemands),
		Beta:  make([]float64, m.EdgeSpace),
	}
}

// Clone deep-copies the assignment.
func (d *Duals) Clone() *Duals {
	out := &Duals{
		Alpha: make([]float64, len(d.Alpha)),
		Beta:  make([]float64, len(d.Beta)),
	}
	copy(out.Alpha, d.Alpha)
	copy(out.Beta, d.Beta)
	return out
}

// Rule abstracts the dual-constraint arithmetic of one algorithm variant.
type Rule interface {
	// Name identifies the rule in traces and tables.
	Name() string
	// LHS evaluates the left-hand side of instance i's dual constraint.
	LHS(m *model.Model, d *Duals, i int32) float64
	// Raise makes instance i's constraint tight and returns δ(i).
	Raise(m *model.Model, d *Duals, i int32) float64
	// ObjectivePerRaise bounds the dual-objective increase of one raise in
	// units of δ (e.g. ∆+1 for Unit, 2∆²+1 for Narrow); used by the
	// certified-ratio experiments.
	ObjectivePerRaise(m *model.Model) float64
}

// Slack returns p(i) − LHS(i) under rule r.
func Slack(r Rule, m *model.Model, d *Duals, i int32) float64 {
	return m.Insts[i].Profit - r.LHS(m, d, i)
}

// Satisfied reports whether instance i is ξ-satisfied: LHS ≥ ξ·p − Tol.
func Satisfied(r Rule, m *model.Model, d *Duals, i int32, xi float64) bool {
	return r.LHS(m, d, i) >= xi*m.Insts[i].Profit-Tol
}

// DualObjective returns Σα + Σ cap(e)·β(e) for the Unit and Narrow rules.
// The Capacitated rule stores β pre-multiplied, so for it — and for unit
// capacities under any rule — this equals Σα + Σβ as stored; the rule
// implementations select the right form via their own method below.
func DualObjective(r Rule, m *model.Model, d *Duals) float64 {
	sum := 0.0
	for _, a := range d.Alpha {
		sum += a
	}
	_, pre := r.(Capacitated)
	for e, b := range d.Beta {
		if pre {
			sum += b
		} else {
			sum += m.Cap[e] * b
		}
	}
	return sum
}

// VerifyLambdaSatisfied checks that every instance of m is λ-satisfied —
// i.e. that (α,β)/λ is dual feasible (weak-duality certificate).
func VerifyLambdaSatisfied(r Rule, m *model.Model, d *Duals, lambda float64) error {
	for i := range m.Insts {
		lhs := r.LHS(m, d, int32(i))
		if lhs < lambda*m.Insts[i].Profit-Tol {
			return fmt.Errorf("lp: instance %d only %.6f-satisfied (LHS=%g, p=%g, λ=%g)",
				i, lhs/m.Insts[i].Profit, lhs, m.Insts[i].Profit, lambda)
		}
	}
	return nil
}

// Unit is the §3.2 rule for unit-height demands.
type Unit struct{}

// Name implements Rule.
func (Unit) Name() string { return "unit" }

// LHS implements Rule.
func (Unit) LHS(m *model.Model, d *Duals, i int32) float64 {
	sum := d.Alpha[m.Insts[i].Demand]
	for _, e := range m.Paths.Row(i) {
		sum += d.Beta[e]
	}
	return sum
}

// Raise implements Rule: δ = s/(|π|+1); α(a)+=δ, β(e∈π)+=δ.
func (u Unit) Raise(m *model.Model, d *Duals, i int32) float64 {
	s := Slack(u, m, d, i)
	if s <= Tol {
		return 0
	}
	pi := m.Pi.Row(i)
	delta := s / float64(len(pi)+1)
	d.Alpha[m.Insts[i].Demand] += delta
	for _, e := range pi {
		d.Beta[e] += delta
	}
	return delta
}

// ObjectivePerRaise implements Rule: each raise moves ≤ ∆+1 variables by δ.
func (Unit) ObjectivePerRaise(m *model.Model) float64 { return float64(m.Delta + 1) }

// UnitNoAlpha is the Appendix-A single-tree-network refinement of Unit:
// with one tree, every demand has exactly one instance, so the α variables
// are never shared and can be dropped — δ = s/|π| and only β is raised,
// improving the sequential ratio from 3 to 2.
type UnitNoAlpha struct{}

// Name implements Rule.
func (UnitNoAlpha) Name() string { return "unit-noalpha" }

// LHS implements Rule.
func (UnitNoAlpha) LHS(m *model.Model, d *Duals, i int32) float64 {
	sum := 0.0
	for _, e := range m.Paths.Row(i) {
		sum += d.Beta[e]
	}
	return sum
}

// Raise implements Rule: δ = s/|π|; β(e∈π) += δ.
func (u UnitNoAlpha) Raise(m *model.Model, d *Duals, i int32) float64 {
	s := Slack(u, m, d, i)
	if s <= Tol {
		return 0
	}
	pi := m.Pi.Row(i)
	delta := s / float64(len(pi))
	for _, e := range pi {
		d.Beta[e] += delta
	}
	return delta
}

// ObjectivePerRaise implements Rule: ≤ ∆ variables move by δ.
func (UnitNoAlpha) ObjectivePerRaise(m *model.Model) float64 { return float64(m.Delta) }

// Narrow is the §6.1 rule for narrow (h ≤ 1/2) instances.
type Narrow struct{}

// Name implements Rule.
func (Narrow) Name() string { return "narrow" }

// LHS implements Rule.
func (Narrow) LHS(m *model.Model, d *Duals, i int32) float64 {
	sum := 0.0
	for _, e := range m.Paths.Row(i) {
		sum += d.Beta[e]
	}
	return d.Alpha[m.Insts[i].Demand] + m.Insts[i].Height*sum
}

// Raise implements Rule: δ = s/(1+2h|π|²); α += δ; β(e∈π) += 2|π|δ.
func (r Narrow) Raise(m *model.Model, d *Duals, i int32) float64 {
	s := Slack(r, m, d, i)
	if s <= Tol {
		return 0
	}
	pi := m.Pi.Row(i)
	h := m.Insts[i].Height
	k := float64(len(pi))
	delta := s / (1 + 2*h*k*k)
	d.Alpha[m.Insts[i].Demand] += delta
	inc := 2 * k * delta
	for _, e := range pi {
		d.Beta[e] += inc
	}
	return delta
}

// ObjectivePerRaise implements Rule: α moves by δ and ∆ edges by 2∆δ.
func (Narrow) ObjectivePerRaise(m *model.Model) float64 {
	return float64(2*m.Delta*m.Delta + 1)
}

// Capacitated generalizes Narrow to per-edge capacities (the non-uniform
// bandwidth scope of the IPPS 2013 title). Beta[e] stores cap(e)·β(e), so
// the dual objective is plain Σα+Σβ and the raise arithmetic mirrors
// Narrow with the per-edge coefficient h/cap(e).
type Capacitated struct{}

// Name implements Rule.
func (Capacitated) Name() string { return "capacitated" }

// LHS implements Rule: α(a) + h·Σ_{e∈path} Beta[e]/cap(e).
func (Capacitated) LHS(m *model.Model, d *Duals, i int32) float64 {
	sum := 0.0
	for _, e := range m.Paths.Row(i) {
		sum += d.Beta[e] / m.Cap[e]
	}
	return d.Alpha[m.Insts[i].Demand] + m.Insts[i].Height*sum
}

// Raise implements Rule: δ = s/(1+2h|π|²); α += δ; Beta[e∈π] += 2|π|·cap(e)·δ.
// The constraint tightens because each π edge contributes h·2|π|δ to the LHS.
func (r Capacitated) Raise(m *model.Model, d *Duals, i int32) float64 {
	s := Slack(r, m, d, i)
	if s <= Tol {
		return 0
	}
	pi := m.Pi.Row(i)
	h := m.Insts[i].Height
	k := float64(len(pi))
	delta := s / (1 + 2*h*k*k)
	d.Alpha[m.Insts[i].Demand] += delta
	for _, e := range pi {
		d.Beta[e] += 2 * k * m.Cap[e] * delta
	}
	return delta
}

// ObjectivePerRaise implements Rule: α moves δ, each of ≤∆ edges moves
// 2∆·cap(e)·δ in pre-multiplied form. The capacity maximum is
// precomputed at model build, keeping this O(1) per call.
func (Capacitated) ObjectivePerRaise(m *model.Model) float64 {
	return 2*float64(m.Delta*m.Delta)*m.MaxCap + 1
}
