package lp

import (
	"math"
	"math/rand"
	"testing"

	"treesched/internal/gen"
	"treesched/internal/model"
)

func treeModel(t testing.TB, seed int64, unit bool) *model.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := gen.TreeConfig{N: 20, Trees: 2, Demands: 12, Unit: unit}
	if !unit {
		cfg.HMin, cfg.HMax = 0.05, 0.5 // narrow
	}
	m, err := model.Build(gen.TreeProblem(cfg, rng), model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRaiseMakesConstraintTight(t *testing.T) {
	rules := map[string]struct {
		r    Rule
		unit bool
	}{
		"unit":        {Unit{}, true},
		"narrow":      {Narrow{}, false},
		"capacitated": {Capacitated{}, false},
	}
	for name, tc := range rules {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				m := treeModel(t, seed, tc.unit)
				d := NewDuals(m)
				rng := rand.New(rand.NewSource(seed))
				// Raise a few random instances and check tightness.
				for k := 0; k < 6 && k < len(m.Insts); k++ {
					i := int32(rng.Intn(len(m.Insts)))
					before := tc.r.LHS(m, d, i)
					delta := tc.r.Raise(m, d, i)
					after := tc.r.LHS(m, d, i)
					p := m.Insts[i].Profit
					if before < p-Tol {
						if delta <= 0 {
							t.Fatalf("unsatisfied instance %d raised by δ=%g", i, delta)
						}
						if math.Abs(after-p) > 1e-6 {
							t.Fatalf("after raise LHS=%g != p=%g", after, p)
						}
					} else if delta != 0 {
						t.Fatalf("satisfied instance %d raised by δ=%g", i, delta)
					}
					// Raising never loosens other constraints.
					for j := int32(0); int(j) < len(m.Insts); j++ {
						if Slack(tc.r, m, d, j) > m.Insts[j].Profit+Tol {
							t.Fatalf("slack of %d exceeds profit after raise", j)
						}
					}
				}
			}
		})
	}
}

func TestUnitRaiseDeltaFormula(t *testing.T) {
	m := treeModel(t, 3, true)
	d := NewDuals(m)
	r := Unit{}
	i := int32(0)
	s := Slack(r, m, d, i)
	delta := r.Raise(m, d, i)
	want := s / float64(m.Pi.RowLen(i)+1)
	if math.Abs(delta-want) > 1e-12 {
		t.Fatalf("δ=%g want s/(|π|+1)=%g", delta, want)
	}
	if got := d.Alpha[m.Insts[i].Demand]; math.Abs(got-delta) > 1e-12 {
		t.Fatalf("α=%g want %g", got, delta)
	}
	for _, e := range m.Pi.Row(i) {
		if math.Abs(d.Beta[e]-delta) > 1e-12 {
			t.Fatalf("β[%d]=%g want %g", e, d.Beta[e], delta)
		}
	}
}

func TestNarrowRaiseBetaIncrement(t *testing.T) {
	m := treeModel(t, 4, false)
	d := NewDuals(m)
	r := Narrow{}
	i := int32(0)
	delta := r.Raise(m, d, i)
	k := float64(m.Pi.RowLen(i))
	for _, e := range m.Pi.Row(i) {
		if math.Abs(d.Beta[e]-2*k*delta) > 1e-12 {
			t.Fatalf("β[%d]=%g want 2|π|δ=%g", e, d.Beta[e], 2*k*delta)
		}
	}
}

func TestDualObjectiveMatchesManualSum(t *testing.T) {
	m := treeModel(t, 5, true)
	d := NewDuals(m)
	r := Unit{}
	for i := int32(0); int(i) < len(m.Insts); i++ {
		r.Raise(m, d, i)
	}
	manual := 0.0
	for _, a := range d.Alpha {
		manual += a
	}
	for e, b := range d.Beta {
		manual += m.Cap[e] * b
	}
	if got := DualObjective(r, m, d); math.Abs(got-manual) > 1e-9 {
		t.Fatalf("objective %g want %g", got, manual)
	}
}

func TestObjectiveIncreaseBoundedPerRaise(t *testing.T) {
	// Each raise increases the dual objective by at most
	// ObjectivePerRaise·δ — the inequality behind Lemma 3.1 / 6.1.
	for _, tc := range []struct {
		r    Rule
		unit bool
	}{{Unit{}, true}, {Narrow{}, false}, {Capacitated{}, false}} {
		m := treeModel(t, 6, tc.unit)
		d := NewDuals(m)
		bound := tc.r.ObjectivePerRaise(m)
		for i := int32(0); int(i) < len(m.Insts); i++ {
			before := DualObjective(tc.r, m, d)
			delta := tc.r.Raise(m, d, i)
			after := DualObjective(tc.r, m, d)
			if after-before > bound*delta+1e-9 {
				t.Fatalf("%s: objective jumped %g > %g·δ (δ=%g)",
					tc.r.Name(), after-before, bound, delta)
			}
		}
	}
}

func TestVerifyLambdaSatisfied(t *testing.T) {
	m := treeModel(t, 7, true)
	d := NewDuals(m)
	r := Unit{}
	if err := VerifyLambdaSatisfied(r, m, d, 1.0); err == nil {
		t.Fatal("zero duals cannot be 1-satisfied")
	}
	for i := int32(0); int(i) < len(m.Insts); i++ {
		r.Raise(m, d, i)
	}
	// After raising every instance once in order, every constraint was
	// tight at its own raise and only grew after, so λ=1 holds.
	if err := VerifyLambdaSatisfied(r, m, d, 1.0); err != nil {
		t.Fatal(err)
	}
}

func TestSatisfiedThreshold(t *testing.T) {
	m := treeModel(t, 8, true)
	d := NewDuals(m)
	r := Unit{}
	i := int32(0)
	if Satisfied(r, m, d, i, 0.5) {
		t.Fatal("zero duals satisfy nothing")
	}
	if !Satisfied(r, m, d, i, 0) {
		t.Fatal("everything is 0-satisfied")
	}
	r.Raise(m, d, i)
	if !Satisfied(r, m, d, i, 1.0) {
		t.Fatal("raised instance must be 1-satisfied")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := treeModel(t, 9, true)
	d := NewDuals(m)
	r := Unit{}
	r.Raise(m, d, 0)
	c := d.Clone()
	c.Alpha[0] += 100
	c.Beta[0] += 100
	if d.Alpha[0] == c.Alpha[0] || d.Beta[0] == c.Beta[0] {
		t.Fatal("Clone shares storage")
	}
}

func TestCapacitatedReducesToNarrowOnUnitCaps(t *testing.T) {
	// With all capacities 1, Capacitated and Narrow must agree exactly.
	m := treeModel(t, 10, false)
	d1 := NewDuals(m)
	d2 := NewDuals(m)
	n, c := Narrow{}, Capacitated{}
	for i := int32(0); int(i) < len(m.Insts); i++ {
		dn := n.Raise(m, d1, i)
		dc := c.Raise(m, d2, i)
		if math.Abs(dn-dc) > 1e-12 {
			t.Fatalf("δ differs on unit caps: %g vs %g", dn, dc)
		}
	}
	for e := range d1.Beta {
		if math.Abs(d1.Beta[e]-d2.Beta[e]) > 1e-9 {
			t.Fatalf("β[%d] differs: %g vs %g", e, d1.Beta[e], d2.Beta[e])
		}
	}
}
