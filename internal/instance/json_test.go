package instance

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"treesched/internal/graph"
)

// capTreeProblem builds a two-tree problem with distinct non-uniform
// per-edge capacities on every edge of every network.
func capTreeProblem(t *testing.T) *Problem {
	t.Helper()
	t1, err := graph.NewTree(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := graph.NewTree(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	return &Problem{
		Kind:        KindTree,
		NumVertices: 5,
		Trees:       []*graph.Tree{t1, t2},
		Capacities: [][]float64{
			// Entry 0 is the root's nonexistent parent edge (ignored).
			{0, 1.25, 0.75, 2.5, 1.0},
			{0, 0.5, 3.125, 1.5, 2.0},
		},
		Demands: []Demand{
			{ID: 0, U: 0, V: 4, Profit: 3, Height: 0.5, Access: []int{0, 1}},
			{ID: 1, U: 2, V: 3, Profit: 2, Height: 0.25, Access: []int{1}},
		},
	}
}

// capLineProblem builds a line problem with per-slot capacities.
func capLineProblem() *Problem {
	return &Problem{
		Kind:         KindLine,
		NumSlots:     6,
		NumResources: 2,
		Capacities: [][]float64{
			{1.5, 2.0, 0.875, 1.0, 3.0, 1.25},
			{0.625, 1.0, 2.25, 1.75, 0.5, 2.5},
		},
		Demands: []Demand{
			{ID: 0, Release: 0, Deadline: 3, ProcTime: 2, Profit: 5, Height: 0.4, Access: []int{0}},
			{ID: 1, Release: 2, Deadline: 5, ProcTime: 3, Profit: 4, Height: 0.3, Access: []int{0, 1}},
		},
	}
}

// TestJSONRoundTripNonUniformCapacities: the wire form must preserve
// every per-edge capacity exactly, and Capacity lookups must agree
// before and after a round trip.
func TestJSONRoundTripNonUniformCapacities(t *testing.T) {
	for _, p := range []*Problem{capTreeProblem(t), capLineProblem()} {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var q Problem
		if err := json.Unmarshal(data, &q); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p.Capacities, q.Capacities) {
			t.Fatalf("capacities changed:\n before %v\n after  %v", p.Capacities, q.Capacities)
		}
		for e := 0; e < p.EdgeSpace(); e++ {
			before, after := p.Capacity(int32(e)), q.Capacity(int32(e))
			if math.IsNaN(after) || before != after {
				t.Fatalf("edge %d capacity %g -> %g", e, before, after)
			}
		}
		// Demands and expansion must also survive (placements depend on
		// capacities only at solve time, not in the wire form).
		a, b := p.Expand(), q.Expand()
		if !reflect.DeepEqual(a, b) {
			t.Fatal("expansion changed across round trip")
		}
	}
}

// TestJSONRoundTripIdempotent: marshal(unmarshal(marshal(p))) must be
// byte-identical to marshal(p) — the canonical-hash property the
// serving layer's cache keys rely on.
func TestJSONRoundTripIdempotent(t *testing.T) {
	for _, p := range []*Problem{capTreeProblem(t), capLineProblem()} {
		first, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var q Problem
		if err := json.Unmarshal(first, &q); err != nil {
			t.Fatal(err)
		}
		second, err := json.Marshal(&q)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("wire form not canonical:\n first  %s\n second %s", first, second)
		}
	}
}

// TestJSONRejectsBadCapacities: capacity validation must run on decode.
func TestJSONRejectsBadCapacities(t *testing.T) {
	p := capLineProblem()
	p.Capacities[1][2] = -1
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Problem
	if err := json.Unmarshal(data, &q); err == nil {
		t.Fatal("accepted a negative capacity")
	}

	p = capLineProblem()
	p.Capacities = p.Capacities[:1] // row count != networks
	data, err = json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &q); err == nil {
		t.Fatal("accepted a capacity row count mismatch")
	}
}

// TestJSONRandomizedRoundTrip round-trips randomly capacitated problems
// and compares the full structure.
func TestJSONRandomizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(6)
		p := &Problem{Kind: KindLine, NumSlots: n, NumResources: 1 + rng.Intn(3)}
		p.Capacities = make([][]float64, p.NumResources)
		for q := range p.Capacities {
			p.Capacities[q] = make([]float64, n)
			for e := range p.Capacities[q] {
				p.Capacities[q][e] = 0.25 + rng.Float64()*2
			}
		}
		for i := 0; i < 1+rng.Intn(5); i++ {
			rho := 1 + rng.Intn(n)
			rt := rng.Intn(n - rho + 1)
			p.Demands = append(p.Demands, Demand{
				ID: i, Release: rt, Deadline: rt + rho - 1 + rng.Intn(n-rt-rho+1), ProcTime: rho,
				Profit: 1 + rng.Float64()*9, Height: 0.1 + rng.Float64()*0.9,
				Access: []int{rng.Intn(p.NumResources)},
			})
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid problem: %v", trial, err)
		}
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var q Problem
		if err := json.Unmarshal(data, &q); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(p.Capacities, q.Capacities) || !reflect.DeepEqual(p.Demands, q.Demands) {
			t.Fatalf("trial %d: round trip changed the problem", trial)
		}
	}
}
