// Package instance defines the problem model of §2 and §7: demands owned by
// processors, networks (trees or a timeline of resources), accessibility
// sets, and the expansion of demands into demand instances.
//
// A Problem is the full input; Expand produces the set D of demand
// instances (one copy of each demand per accessible network — and, for
// line networks with windows, per feasible start time).
package instance

import (
	"errors"
	"fmt"

	"treesched/internal/graph"
)

// Kind distinguishes tree-network problems (§2) from line-network problems
// with windows (§7).
type Kind int

const (
	// KindTree: networks are trees over a shared vertex set; a demand is a
	// vertex pair and its path in each tree is unique.
	KindTree Kind = iota
	// KindLine: networks are identical timelines of NumSlots timeslots; a
	// demand is a window [Release, Deadline] with a processing time.
	KindLine
)

func (k Kind) String() string {
	if k == KindTree {
		return "tree"
	}
	return "line"
}

// Demand is the job owned by one processor. Exactly one of the endpoint
// form (U,V — tree problems) or the window form (Release, Deadline,
// ProcTime — line problems) is meaningful, per the Problem's Kind.
type Demand struct {
	ID int `json:"id"`

	// Tree form: the demand wishes to connect U and V.
	U int `json:"u,omitempty"`
	V int `json:"v,omitempty"`

	// Line form: execute for ProcTime contiguous slots within
	// [Release, Deadline] (inclusive, 0-based timeslots).
	Release  int `json:"release,omitempty"`
	Deadline int `json:"deadline,omitempty"`
	ProcTime int `json:"proctime,omitempty"`

	Profit float64 `json:"profit"`
	Height float64 `json:"height"`
	// Access lists the network (resource) indices the owning processor
	// can use.
	Access []int `json:"access"`
}

// Problem is a complete input instance.
type Problem struct {
	Kind Kind

	// Tree problems.
	Trees       []*graph.Tree
	NumVertices int

	// Line problems.
	NumSlots     int
	NumResources int

	Demands []Demand

	// Capacities optionally gives non-uniform edge bandwidths (the IPPS'13
	// title scope): Capacities[q][e] is the capacity of edge e of network
	// q, where e is a child-vertex edge id for trees and a timeslot for
	// lines. nil means every edge has capacity 1 (the paper's §1 setting).
	Capacities [][]float64
}

// NumNetworks returns r, the number of networks (trees or resources).
func (p *Problem) NumNetworks() int {
	if p.Kind == KindTree {
		return len(p.Trees)
	}
	return p.NumResources
}

// edgesPerNetwork returns the size of one network's edge-id space: n for
// trees (ids 1..n-1 used) and NumSlots for lines.
func (p *Problem) edgesPerNetwork() int {
	if p.Kind == KindTree {
		return p.NumVertices
	}
	return p.NumSlots
}

// EdgeSpace returns the size of the global edge-id space across all
// networks. Edge e of network q has global id q*edgesPerNetwork()+e.
func (p *Problem) EdgeSpace() int {
	return p.NumNetworks() * p.edgesPerNetwork()
}

// GlobalEdge maps (network, local edge) to the global edge id.
func (p *Problem) GlobalEdge(net int, e int32) int32 {
	return int32(net*p.edgesPerNetwork()) + e
}

// Capacity returns the capacity of a global edge id (1 when Capacities is
// nil).
func (p *Problem) Capacity(global int32) float64 {
	if p.Capacities == nil {
		return 1
	}
	per := p.edgesPerNetwork()
	return p.Capacities[int(global)/per][int(global)%per]
}

// Validate checks structural well-formedness.
func (p *Problem) Validate() error {
	switch p.Kind {
	case KindTree:
		if len(p.Trees) == 0 {
			return errors.New("instance: tree problem with no trees")
		}
		if p.NumVertices <= 0 {
			return errors.New("instance: NumVertices must be positive")
		}
		for q, t := range p.Trees {
			if t.N() != p.NumVertices {
				return fmt.Errorf("instance: tree %d has %d vertices, problem says %d", q, t.N(), p.NumVertices)
			}
		}
	case KindLine:
		if p.NumSlots <= 0 || p.NumResources <= 0 {
			return errors.New("instance: line problem needs NumSlots and NumResources positive")
		}
	default:
		return fmt.Errorf("instance: unknown kind %d", int(p.Kind))
	}
	if p.Capacities != nil {
		if len(p.Capacities) != p.NumNetworks() {
			return fmt.Errorf("instance: %d capacity rows for %d networks", len(p.Capacities), p.NumNetworks())
		}
		for q, row := range p.Capacities {
			if len(row) != p.edgesPerNetwork() {
				return fmt.Errorf("instance: capacity row %d has %d entries, want %d", q, len(row), p.edgesPerNetwork())
			}
			for e, c := range row {
				// Tree edge ids are child endpoints 1..n-1; slot 0 is the
				// root's nonexistent parent edge and is ignored.
				if p.Kind == KindTree && e == 0 {
					continue
				}
				if c <= 0 {
					return fmt.Errorf("instance: non-positive capacity %g at network %d edge %d", c, q, e)
				}
			}
		}
	}
	for i, d := range p.Demands {
		if d.ID != i {
			return fmt.Errorf("instance: demand %d has ID %d (IDs must be 0..m-1 in order)", i, d.ID)
		}
		if err := p.ValidateDemand(i, d); err != nil {
			return err
		}
	}
	return nil
}

// ValidateDemand checks one demand against the problem's networks (i
// names the demand in error messages). Validate applies it to every
// demand; incremental rebuilds apply it to newly added demands only,
// since removal and renumbering cannot invalidate a surviving demand.
func (p *Problem) ValidateDemand(i int, d Demand) error {
	r := p.NumNetworks()
	if d.Profit <= 0 {
		return fmt.Errorf("instance: demand %d has non-positive profit %g", i, d.Profit)
	}
	if d.Height <= 0 || d.Height > 1 {
		return fmt.Errorf("instance: demand %d has height %g outside (0,1]", i, d.Height)
	}
	if len(d.Access) == 0 {
		return fmt.Errorf("instance: demand %d has empty access set", i)
	}
	seen := map[int]bool{}
	for _, q := range d.Access {
		if q < 0 || q >= r {
			return fmt.Errorf("instance: demand %d accesses network %d of %d", i, q, r)
		}
		if seen[q] {
			return fmt.Errorf("instance: demand %d lists network %d twice", i, q)
		}
		seen[q] = true
	}
	switch p.Kind {
	case KindTree:
		if d.U < 0 || d.U >= p.NumVertices || d.V < 0 || d.V >= p.NumVertices {
			return fmt.Errorf("instance: demand %d endpoints (%d,%d) out of range", i, d.U, d.V)
		}
		if d.U == d.V {
			return fmt.Errorf("instance: demand %d has equal endpoints", i)
		}
	case KindLine:
		if d.ProcTime <= 0 {
			return fmt.Errorf("instance: demand %d has non-positive processing time", i)
		}
		if d.Release < 0 || d.Deadline >= p.NumSlots || d.Release > d.Deadline {
			return fmt.Errorf("instance: demand %d window [%d,%d] invalid for %d slots", i, d.Release, d.Deadline, p.NumSlots)
		}
		if d.Deadline-d.Release+1 < d.ProcTime {
			return fmt.Errorf("instance: demand %d window shorter than processing time", i)
		}
	}
	return nil
}

// Inst is a demand instance (§2): one possible placement of a demand on a
// network. For tree problems U,V are the demand endpoints; for line
// problems U is the first and V the last occupied timeslot.
type Inst struct {
	ID     int32
	Demand int32
	Net    int32
	U, V   int32
	Profit float64
	Height float64
}

// Len returns the line-instance length in timeslots (V-U+1). For tree
// instances it is meaningless.
func (d Inst) Len() int32 { return d.V - d.U + 1 }

// Expand builds the full set D of demand instances in a deterministic
// order: by demand, then by access-list order, then (lines) by start slot.
func (p *Problem) Expand() []Inst {
	var out []Inst
	for _, d := range p.Demands {
		out = p.ExpandDemand(out, d)
	}
	return out
}

// ExpandDemand appends the instances of one demand to out in the
// canonical order (access-list order, then start slot for lines),
// numbering them consecutively from len(out). Expand is the whole-problem
// form; incremental rebuilds expand only the newly added demands.
func (p *Problem) ExpandDemand(out []Inst, d Demand) []Inst {
	id := int32(len(out))
	for _, q := range d.Access {
		switch p.Kind {
		case KindTree:
			out = append(out, Inst{
				ID: id, Demand: int32(d.ID), Net: int32(q),
				U: int32(d.U), V: int32(d.V),
				Profit: d.Profit, Height: d.Height,
			})
			id++
		case KindLine:
			for s := d.Release; s+d.ProcTime-1 <= d.Deadline; s++ {
				out = append(out, Inst{
					ID: id, Demand: int32(d.ID), Net: int32(q),
					U: int32(s), V: int32(s + d.ProcTime - 1),
					Profit: d.Profit, Height: d.Height,
				})
				id++
			}
		}
	}
	return out
}

// PathEdges returns the global edge ids occupied by instance d.
func (p *Problem) PathEdges(d Inst) []int32 {
	if p.Kind == KindTree {
		local := p.Trees[d.Net].PathEdges(int(d.U), int(d.V))
		out := make([]int32, len(local))
		for i, e := range local {
			out[i] = p.GlobalEdge(int(d.Net), e)
		}
		return out
	}
	out := make([]int32, 0, d.V-d.U+1)
	for s := d.U; s <= d.V; s++ {
		out = append(out, p.GlobalEdge(int(d.Net), s))
	}
	return out
}

// PathLen returns len(PathEdges(d)) without materializing the path: the
// tree distance U→V, or the slot count for lines. It is the counting
// pass of the preallocated path build in model.Build.
func (p *Problem) PathLen(d Inst) int {
	if p.Kind == KindTree {
		return p.Trees[d.Net].Dist(int(d.U), int(d.V))
	}
	return int(d.V - d.U + 1)
}

// FillPathEdges writes the global edge ids of instance d's path into dst
// (len(dst) must be PathLen(d)), in exactly PathEdges order — ascending
// from U to the LCA, then descending to V for trees; slot order for
// lines. It is the allocation-free form of PathEdges used to materialize
// paths directly into a preallocated CSR slab.
func (p *Problem) FillPathEdges(dst []int32, d Inst) {
	if p.Kind == KindLine {
		for k, s := 0, d.U; s <= d.V; s++ {
			dst[k] = p.GlobalEdge(int(d.Net), s)
			k++
		}
		return
	}
	t := p.Trees[d.Net]
	l := t.LCA(int(d.U), int(d.V))
	k := 0
	for x := int(d.U); x != l; x = t.Parent(x) {
		dst[k] = p.GlobalEdge(int(d.Net), int32(x))
		k++
	}
	// Edges from the LCA down to V are discovered bottom-up; reverse that
	// suffix in place, mirroring Tree.PathEdges.
	mark := k
	for x := int(d.V); x != l; x = t.Parent(x) {
		dst[k] = p.GlobalEdge(int(d.Net), int32(x))
		k++
	}
	for i, j := mark, k-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// Overlap reports whether two instances share a network edge.
func (p *Problem) Overlap(a, b Inst) bool {
	if a.Net != b.Net {
		return false
	}
	if p.Kind == KindTree {
		return p.Trees[a.Net].PathsOverlap(int(a.U), int(a.V), int(b.U), int(b.V))
	}
	return a.U <= b.V && b.U <= a.V
}

// Conflict reports whether two instances conflict (§2): they belong to the
// same demand or they overlap.
func (p *Problem) Conflict(a, b Inst) bool {
	if a.ID == b.ID {
		return false
	}
	return a.Demand == b.Demand || p.Overlap(a, b)
}

// ProfitRange returns (pmin, pmax) over all demands.
func (p *Problem) ProfitRange() (float64, float64) {
	pmin, pmax := 0.0, 0.0
	for i, d := range p.Demands {
		if i == 0 || d.Profit < pmin {
			pmin = d.Profit
		}
		if i == 0 || d.Profit > pmax {
			pmax = d.Profit
		}
	}
	return pmin, pmax
}

// HeightRange returns (hmin, hmax) over all demands.
func (p *Problem) HeightRange() (float64, float64) {
	hmin, hmax := 0.0, 0.0
	for i, d := range p.Demands {
		if i == 0 || d.Height < hmin {
			hmin = d.Height
		}
		if i == 0 || d.Height > hmax {
			hmax = d.Height
		}
	}
	return hmin, hmax
}

// UnitHeight reports whether every demand has height exactly 1.
func (p *Problem) UnitHeight() bool {
	for _, d := range p.Demands {
		if d.Height != 1 {
			return false
		}
	}
	return true
}

// CommGraph builds the processor communication graph (§2): processors are
// adjacent iff their access sets intersect. Returned as adjacency lists
// over demand/processor ids.
func (p *Problem) CommGraph() [][]int32 {
	r := p.NumNetworks()
	byNet := make([][]int32, r)
	for _, d := range p.Demands {
		for _, q := range d.Access {
			byNet[q] = append(byNet[q], int32(d.ID))
		}
	}
	m := len(p.Demands)
	seen := make([]int32, m)
	for i := range seen {
		seen[i] = -1
	}
	adj := make([][]int32, m)
	for i := 0; i < m; i++ {
		seen[i] = int32(i) // exclude self
		for _, q := range p.Demands[i].Access {
			for _, j := range byNet[q] {
				if seen[j] != int32(i) {
					seen[j] = int32(i)
					adj[i] = append(adj[i], j)
				}
			}
		}
	}
	return adj
}
