package instance

import (
	"encoding/json"
	"math/rand"
	"testing"

	"treesched/internal/graph"
)

// smallTreeProblem builds a 2-tree problem with 3 demands.
func smallTreeProblem(t *testing.T) *Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	p := &Problem{
		Kind:        KindTree,
		NumVertices: 10,
		Trees:       []*graph.Tree{graph.RandomTree(10, rng), graph.RandomTree(10, rng)},
		Demands: []Demand{
			{ID: 0, U: 0, V: 5, Profit: 3, Height: 1, Access: []int{0, 1}},
			{ID: 1, U: 2, V: 7, Profit: 1, Height: 1, Access: []int{0}},
			{ID: 2, U: 4, V: 9, Profit: 2, Height: 1, Access: []int{1}},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func smallLineProblem(t *testing.T) *Problem {
	t.Helper()
	p := &Problem{
		Kind:         KindLine,
		NumSlots:     12,
		NumResources: 2,
		Demands: []Demand{
			{ID: 0, Release: 0, Deadline: 5, ProcTime: 3, Profit: 2, Height: 1, Access: []int{0, 1}},
			{ID: 1, Release: 4, Deadline: 8, ProcTime: 5, Profit: 1, Height: 0.5, Access: []int{1}},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidateRejections(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := graph.RandomTree(5, rng)
	base := func() *Problem {
		return &Problem{
			Kind: KindTree, NumVertices: 5, Trees: []*graph.Tree{tr},
			Demands: []Demand{{ID: 0, U: 0, V: 1, Profit: 1, Height: 1, Access: []int{0}}},
		}
	}
	mutations := map[string]func(*Problem){
		"no trees":        func(p *Problem) { p.Trees = nil },
		"bad id":          func(p *Problem) { p.Demands[0].ID = 7 },
		"zero profit":     func(p *Problem) { p.Demands[0].Profit = 0 },
		"height zero":     func(p *Problem) { p.Demands[0].Height = 0 },
		"height over 1":   func(p *Problem) { p.Demands[0].Height = 1.5 },
		"no access":       func(p *Problem) { p.Demands[0].Access = nil },
		"access range":    func(p *Problem) { p.Demands[0].Access = []int{3} },
		"dup access":      func(p *Problem) { p.Demands[0].Access = []int{0, 0} },
		"equal endpoints": func(p *Problem) { p.Demands[0].V = p.Demands[0].U },
		"endpoint range":  func(p *Problem) { p.Demands[0].V = 99 },
		"bad capacity": func(p *Problem) {
			p.Capacities = [][]float64{{0, 1, 1, 1, -1}}
		},
		"capacity rows": func(p *Problem) {
			p.Capacities = [][]float64{{1, 1, 1, 1, 1}, {1, 1, 1, 1, 1}}
		},
	}
	for name, mutate := range mutations {
		p := base()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Line-specific rejections.
	lp := &Problem{
		Kind: KindLine, NumSlots: 10, NumResources: 1,
		Demands: []Demand{{ID: 0, Release: 2, Deadline: 6, ProcTime: 9, Profit: 1, Height: 1, Access: []int{0}}},
	}
	if err := lp.Validate(); err == nil {
		t.Error("window shorter than proctime accepted")
	}
	lp.Demands[0].ProcTime = 0
	if err := lp.Validate(); err == nil {
		t.Error("zero proctime accepted")
	}
	lp.Demands[0] = Demand{ID: 0, Release: 5, Deadline: 2, ProcTime: 1, Profit: 1, Height: 1, Access: []int{0}}
	if err := lp.Validate(); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestExpandTree(t *testing.T) {
	p := smallTreeProblem(t)
	insts := p.Expand()
	if len(insts) != 4 { // demand 0 twice, demands 1 and 2 once
		t.Fatalf("expanded %d instances, want 4", len(insts))
	}
	for i, d := range insts {
		if int(d.ID) != i {
			t.Fatalf("instance %d has id %d", i, d.ID)
		}
	}
	if insts[0].Net != 0 || insts[1].Net != 1 {
		t.Fatal("access order not preserved")
	}
}

func TestExpandLineWindows(t *testing.T) {
	p := smallLineProblem(t)
	insts := p.Expand()
	// Demand 0: starts 0..3 on two resources = 8; demand 1: start 4 only, one resource.
	if len(insts) != 9 {
		t.Fatalf("expanded %d instances, want 9", len(insts))
	}
	for _, d := range insts {
		dem := p.Demands[d.Demand]
		if int(d.U) < dem.Release || int(d.V) > dem.Deadline {
			t.Fatalf("instance %v outside window [%d,%d]", d, dem.Release, dem.Deadline)
		}
		if int(d.Len()) != dem.ProcTime {
			t.Fatalf("instance length %d, want %d", d.Len(), dem.ProcTime)
		}
	}
}

func TestPathEdgesAndOverlap(t *testing.T) {
	p := smallTreeProblem(t)
	insts := p.Expand()
	for _, d := range insts {
		edges := p.PathEdges(d)
		if len(edges) != p.Trees[d.Net].Dist(int(d.U), int(d.V)) {
			t.Fatalf("path length mismatch for %v", d)
		}
		per := p.NumVertices
		for _, e := range edges {
			if int(e)/per != int(d.Net) {
				t.Fatalf("edge %d not in network %d's range", e, d.Net)
			}
		}
	}
	// Cross-network instances never overlap.
	if p.Overlap(insts[0], insts[1]) {
		t.Fatal("instances on different trees reported overlapping")
	}
	// Same-demand instances conflict regardless.
	if !p.Conflict(insts[0], insts[1]) {
		t.Fatal("same-demand instances must conflict")
	}
}

func TestLineOverlap(t *testing.T) {
	p := smallLineProblem(t)
	a := Inst{ID: 0, Demand: 0, Net: 0, U: 2, V: 4, Profit: 1, Height: 1}
	b := Inst{ID: 1, Demand: 1, Net: 0, U: 4, V: 8, Profit: 1, Height: 1}
	c := Inst{ID: 2, Demand: 1, Net: 0, U: 5, V: 8, Profit: 1, Height: 1}
	if !p.Overlap(a, b) {
		t.Fatal("touching intervals [2,4],[4,8] share slot 4")
	}
	if p.Overlap(a, c) {
		t.Fatal("[2,4] and [5,8] do not overlap")
	}
}

func TestRangesAndCommGraph(t *testing.T) {
	p := smallTreeProblem(t)
	pmin, pmax := p.ProfitRange()
	if pmin != 1 || pmax != 3 {
		t.Fatalf("profit range (%g,%g)", pmin, pmax)
	}
	hmin, hmax := p.HeightRange()
	if hmin != 1 || hmax != 1 || !p.UnitHeight() {
		t.Fatal("height range on unit problem")
	}
	adj := p.CommGraph()
	// Demand 0 shares tree 0 with demand 1 and tree 1 with demand 2.
	if len(adj[0]) != 2 {
		t.Fatalf("processor 0 neighbors: %v", adj[0])
	}
	// Demands 1 and 2 share no resource.
	for _, j := range adj[1] {
		if j == 2 {
			t.Fatal("processors 1 and 2 share no resource but are adjacent")
		}
	}
}

func TestCapacityLookup(t *testing.T) {
	p := smallLineProblem(t)
	if p.Capacity(5) != 1 {
		t.Fatal("default capacity must be 1")
	}
	p.Capacities = make([][]float64, 2)
	for q := range p.Capacities {
		p.Capacities[q] = make([]float64, 12)
		for e := range p.Capacities[q] {
			p.Capacities[q][e] = float64(q + 1)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Capacity(p.GlobalEdge(1, 3)); got != 2 {
		t.Fatalf("capacity of resource 1 = %g want 2", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, p := range []*Problem{smallTreeProblem(t), smallLineProblem(t)} {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var q Problem
		if err := json.Unmarshal(data, &q); err != nil {
			t.Fatal(err)
		}
		if q.Kind != p.Kind || len(q.Demands) != len(p.Demands) {
			t.Fatal("round trip lost structure")
		}
		a, b := p.Expand(), q.Expand()
		if len(a) != len(b) {
			t.Fatal("round trip changed expansion")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("instance %d changed: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

func TestJSONRejectsBadKind(t *testing.T) {
	var p Problem
	if err := json.Unmarshal([]byte(`{"kind":"mesh","demands":[]}`), &p); err == nil {
		t.Fatal("accepted unknown kind")
	}
}
