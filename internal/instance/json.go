package instance

import (
	"encoding/json"
	"fmt"

	"treesched/internal/graph"
)

// problemJSON is the wire form of a Problem; trees are stored as edge lists.
type problemJSON struct {
	Kind         string      `json:"kind"`
	NumVertices  int         `json:"num_vertices,omitempty"`
	TreeEdges    [][][2]int  `json:"tree_edges,omitempty"`
	NumSlots     int         `json:"num_slots,omitempty"`
	NumResources int         `json:"num_resources,omitempty"`
	Demands      []Demand    `json:"demands"`
	Capacities   [][]float64 `json:"capacities,omitempty"`
}

// MarshalJSON encodes the problem with trees as edge lists.
func (p *Problem) MarshalJSON() ([]byte, error) {
	w := problemJSON{
		Kind:         p.Kind.String(),
		NumVertices:  p.NumVertices,
		NumSlots:     p.NumSlots,
		NumResources: p.NumResources,
		Demands:      p.Demands,
		Capacities:   p.Capacities,
	}
	for _, t := range p.Trees {
		w.TreeEdges = append(w.TreeEdges, t.Edges())
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire form and rebuilds the trees.
func (p *Problem) UnmarshalJSON(data []byte) error {
	var w problemJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	switch w.Kind {
	case "tree":
		p.Kind = KindTree
	case "line":
		p.Kind = KindLine
	default:
		return fmt.Errorf("instance: unknown kind %q", w.Kind)
	}
	p.NumVertices = w.NumVertices
	p.NumSlots = w.NumSlots
	p.NumResources = w.NumResources
	p.Demands = w.Demands
	p.Capacities = w.Capacities
	p.Trees = nil
	for q, edges := range w.TreeEdges {
		t, err := graph.NewTree(w.NumVertices, edges)
		if err != nil {
			return fmt.Errorf("instance: tree %d: %w", q, err)
		}
		p.Trees = append(p.Trees, t)
	}
	return p.Validate()
}
