package scenario

import (
	"encoding/json"
	"testing"
)

// TestPresetsGenerateValidProblems: every preset must generate a
// structurally valid problem for several seeds, at default and
// overridden sizes.
func TestPresetsGenerateValidProblems(t *testing.T) {
	if len(All()) < 8 {
		t.Fatalf("scenario library has %d presets, want >= 8", len(All()))
	}
	for _, s := range All() {
		for seed := int64(1); seed <= 3; seed++ {
			p, err := s.Generate(Params{}, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", s.Name, seed, err)
			}
			if err := p.Validate(); err != nil {
				t.Errorf("%s seed %d: invalid problem: %v", s.Name, seed, err)
			}
			if p.Kind != s.Kind {
				t.Errorf("%s: generated kind %v, declared %v", s.Name, p.Kind, s.Kind)
			}
			if len(p.Demands) == 0 {
				t.Errorf("%s seed %d: no demands", s.Name, seed)
			}
		}
		// Overridden sizing must hold too.
		small, err := s.Generate(Params{Demands: 10, Size: 16, Networks: 2}, 1)
		if err != nil {
			t.Fatalf("%s (overridden): %v", s.Name, err)
		}
		if err := small.Validate(); err != nil {
			t.Errorf("%s (overridden): invalid problem: %v", s.Name, err)
		}
		if len(small.Demands) != 10 {
			t.Errorf("%s: override asked 10 demands, got %d", s.Name, len(small.Demands))
		}
		// Degenerate sizes must error, not loop or panic.
		for _, bad := range []Params{{Size: 1}, {Size: -5}, {Networks: -1}, {Demands: -2}} {
			if _, err := s.Generate(bad, 1); err == nil {
				t.Errorf("%s: accepted degenerate params %+v", s.Name, bad)
			}
		}
	}
}

// TestGenerateDeterministic: equal (params, seed) must yield identical
// problems — the serving layer's cache keys depend on it.
func TestGenerateDeterministic(t *testing.T) {
	gen := func(t *testing.T, s *Scenario, seed int64) []byte {
		p, err := s.Generate(Params{}, seed)
		if err != nil {
			t.Fatalf("%s seed %d: %v", s.Name, seed, err)
		}
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	for _, s := range All() {
		a := gen(t, s, 42)
		b := gen(t, s, 42)
		if string(a) != string(b) {
			t.Errorf("%s: same seed produced different problems", s.Name)
		}
		c := gen(t, s, 43)
		if string(a) == string(c) {
			t.Errorf("%s: different seeds produced identical problems", s.Name)
		}
	}
}

// TestRegistryLookup pins the public lookup helpers.
func TestRegistryLookup(t *testing.T) {
	names := Names()
	if len(names) != len(All()) {
		t.Fatalf("Names()=%d entries, All()=%d", len(names), len(All()))
	}
	for _, n := range names {
		s, ok := Get(n)
		if !ok || s.Name != n {
			t.Errorf("Get(%q) = %v, %v", n, s, ok)
		}
		if s.Doc == "" || s.DefaultAlgo == "" {
			t.Errorf("%s: missing doc or default algorithm", n)
		}
	}
	if _, ok := Get("no-such-preset"); ok {
		t.Error("Get accepted an unknown name")
	}
}
