// Package scenario is a library of named, parameterized workload presets
// for the serving layer, the CLI and the benchmarks. Each preset maps a
// real-world-flavoured workload onto the paper's problem classes
// (Chakaravarthy–Roy–Sabharwal, arXiv:1205.1924) and names the paper
// section or experiment (see DESIGN.md's E1–E12 index) it exercises.
//
// Presets are deterministic: Generate(params, seed) returns the same
// problem for the same inputs, so the serving layer's cache keys and the
// byte-identical-response guarantee extend to scenario requests.
package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"treesched/internal/gen"
	"treesched/internal/instance"
)

// Params overrides a preset's default sizing. Zero fields keep the
// preset's defaults, so Params{} always generates the canonical workload.
type Params struct {
	// Demands is the number of demands/processors m.
	Demands int `json:"demands,omitempty"`
	// Size is the vertex count per tree or the timeline length in slots.
	Size int `json:"size,omitempty"`
	// Networks is the number of tree networks or line resources r.
	Networks int `json:"networks,omitempty"`
}

func (p Params) withDefaults(d Params) Params {
	if p.Demands == 0 {
		p.Demands = d.Demands
	}
	if p.Size == 0 {
		p.Size = d.Size
	}
	if p.Networks == 0 {
		p.Networks = d.Networks
	}
	return p
}

// Sizing floors and ceilings every generator requires: below the floors
// the gen package loops or panics (e.g. drawing distinct endpoints on a
// 1-vertex tree); the ceilings keep a single request from exhausting
// memory. Validation lives here so every caller — service, CLI,
// benchmarks — is protected.
const (
	MinSize     = 4
	MaxSize     = 1 << 16
	MaxNetworks = 8192
	MaxDemands  = 1_000_000
)

// Validate checks resolved (post-Effective) params against the
// generator limits.
func (p Params) Validate() error {
	if p.Demands < 1 || p.Demands > MaxDemands {
		return fmt.Errorf("scenario: demands %d outside [1,%d]", p.Demands, MaxDemands)
	}
	if p.Size < MinSize || p.Size > MaxSize {
		return fmt.Errorf("scenario: size %d outside [%d,%d]", p.Size, MinSize, MaxSize)
	}
	if p.Networks < 1 || p.Networks > MaxNetworks {
		return fmt.Errorf("scenario: networks %d outside [1,%d]", p.Networks, MaxNetworks)
	}
	return nil
}

// Scenario is one named preset.
type Scenario struct {
	// Name is the stable identifier used by the service API and the CLI.
	Name string `json:"name"`
	// Doc is a one-sentence description tying the workload to a paper
	// section or experiment.
	Doc string `json:"doc"`
	// Kind is the problem class the preset generates.
	Kind instance.Kind `json:"-"`
	// KindName is Kind as a string, for JSON listings.
	KindName string `json:"kind"`
	// DefaultAlgo is the algorithm name (service registry / schedtool
	// -algo) best matched to the workload.
	DefaultAlgo string `json:"default_algo"`
	// Defaults is the canonical sizing.
	Defaults Params `json:"defaults"`
	// Scale marks benchmark-scale presets (10^4–10^5 processors): the
	// solvers handle their default sizing, but a default-size solve is
	// a deliberate multi-second commitment — library-sweeping tests and
	// interactive callers should size them down via Params.
	Scale bool `json:"scale,omitempty"`

	generate func(p Params, rng *rand.Rand) *instance.Problem
}

// Effective resolves params against the preset defaults: the exact
// sizing Generate will use.
func (s *Scenario) Effective(params Params) Params {
	return params.withDefaults(s.Defaults)
}

// Generate draws the preset's workload. Zero fields of params keep the
// preset defaults; equal (params, seed) pairs yield identical problems.
// Params outside the generator limits (see Params.Validate) error.
func (s *Scenario) Generate(params Params, seed int64) (*instance.Problem, error) {
	eff := s.Effective(params)
	if err := eff.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name, err)
	}
	return s.generate(eff, rand.New(rand.NewSource(seed))), nil
}

var registry = map[string]*Scenario{}

func register(s *Scenario) {
	s.KindName = s.Kind.String()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate name %q", s.Name))
	}
	registry[s.Name] = s
}

// Get looks a preset up by name.
func Get(name string) (*Scenario, bool) {
	s, ok := registry[name]
	return s, ok
}

// Names returns all preset names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns all presets in name order.
func All() []*Scenario {
	var out []*Scenario
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

func init() {
	register(&Scenario{
		Name: "videowall-line",
		Doc: "Video-wall playout slots: unit-height jobs with release/deadline windows on shared " +
			"display timelines — the §7 line-network setting of Theorem 7.1 (experiment E5).",
		Kind:        instance.KindLine,
		DefaultAlgo: "line-unit",
		Defaults:    Params{Demands: 60, Size: 48, Networks: 3},
		generate: func(p Params, rng *rand.Rand) *instance.Problem {
			return gen.LineProblem(gen.LineConfig{
				Slots: p.Size, Resources: p.Networks, Demands: p.Demands,
				Unit: true, AccessProb: 0.6,
			}, rng)
		},
	})
	register(&Scenario{
		Name: "telecom-leasing",
		Doc: "Bandwidth leasing on a telecom line (cf. Even–Medina–Rosén packet scheduling): " +
			"fractional-height connections on links with non-uniform leased capacity — the title scope, experiment E10.",
		Kind:        instance.KindLine,
		DefaultAlgo: "arbitrary",
		Defaults:    Params{Demands: 50, Size: 40, Networks: 2},
		generate: func(p Params, rng *rand.Rand) *instance.Problem {
			return gen.LineProblem(gen.LineConfig{
				Slots: p.Size, Resources: p.Networks, Demands: p.Demands,
				HMin: 0.1, HMax: 1.0, Capacity: 1.5, CapJitter: 0.4,
			}, rng)
		},
	})
	register(&Scenario{
		Name: "sensor-tree",
		Doc: "Sensor-network aggregation: short, locally-biased routes with mixed bandwidth " +
			"demands on a random routing tree — the §6 arbitrary-height tree setting (experiment E4).",
		Kind:        instance.KindTree,
		DefaultAlgo: "arbitrary",
		Defaults:    Params{Demands: 48, Size: 40, Networks: 2},
		generate: func(p Params, rng *rand.Rand) *instance.Problem {
			return gen.TreeProblem(gen.TreeConfig{
				N: p.Size, Trees: p.Networks, Demands: p.Demands,
				HMin: 0.1, HMax: 1.0, LocalBias: 4, AccessProb: 0.6,
			}, rng)
		},
	})
	register(&Scenario{
		Name: "spider-hub",
		Doc: "Adversarial hub congestion: every demand crosses a spider's hub edge and profits " +
			"spread geometrically, forcing the kill chains of Lemma 5.1 — the E1 worst-case stressor.",
		Kind:        instance.KindTree,
		DefaultAlgo: "tree-unit",
		Defaults:    Params{Demands: 40, Size: 33, Networks: 2},
		generate: func(p Params, rng *rand.Rand) *instance.Problem {
			legs := 4
			legLen := (p.Size - 1) / legs
			if legLen < 1 {
				legLen = 1
			}
			return gen.AdversarialHub(legs, legLen, p.Networks, p.Demands, rng)
		},
	})
	register(&Scenario{
		Name: "caterpillar-backbone",
		Doc: "Backbone-with-drops topology: unit-height connections on caterpillar trees, the " +
			"shape family of the decomposition study (Lemmas 4.1/4.3, experiment E7).",
		Kind:        instance.KindTree,
		DefaultAlgo: "tree-unit",
		Defaults:    Params{Demands: 50, Size: 36, Networks: 2},
		generate: func(p Params, rng *rand.Rand) *instance.Problem {
			return gen.TreeProblem(gen.TreeConfig{
				N: p.Size, Trees: p.Networks, Demands: p.Demands,
				Shape: gen.ShapeCaterpillar, Unit: true, AccessProb: 0.6,
			}, rng)
		},
	})
	register(&Scenario{
		Name: "star-uplink",
		Doc: "Star uplink contention: all routes collide at the hub of star networks, the maximal-" +
			"conflict decomposition shape of experiment E7 (§2's processors sharing one switch).",
		Kind:        instance.KindTree,
		DefaultAlgo: "tree-unit",
		Defaults:    Params{Demands: 40, Size: 24, Networks: 3},
		generate: func(p Params, rng *rand.Rand) *instance.Problem {
			return gen.TreeProblem(gen.TreeConfig{
				N: p.Size, Trees: p.Networks, Demands: p.Demands,
				Shape: gen.ShapeStar, Unit: true, AccessProb: 0.5,
			}, rng)
		},
	})
	register(&Scenario{
		Name: "narrow-stream",
		Doc: "Thin media streams: every demand needs at most half an edge's bandwidth, the " +
			"narrow-instance class of §6.1 (Lemma 6.2, experiment E3).",
		Kind:        instance.KindTree,
		DefaultAlgo: "narrow",
		Defaults:    Params{Demands: 48, Size: 32, Networks: 2},
		generate: func(p Params, rng *rand.Rand) *instance.Problem {
			return gen.TreeProblem(gen.TreeConfig{
				N: p.Size, Trees: p.Networks, Demands: p.Demands,
				HMin: 0.05, HMax: 0.5, AccessProb: 0.6,
			}, rng)
		},
	})
	register(&Scenario{
		Name: "capacitated-tree",
		Doc: "Heterogeneous access network: tree links with jittered non-uniform capacities and " +
			"mixed demand heights — the non-uniform-bandwidth title scope on trees (experiment E10).",
		Kind:        instance.KindTree,
		DefaultAlgo: "arbitrary",
		Defaults:    Params{Demands: 44, Size: 32, Networks: 2},
		generate: func(p Params, rng *rand.Rand) *instance.Problem {
			return gen.TreeProblem(gen.TreeConfig{
				N: p.Size, Trees: p.Networks, Demands: p.Demands,
				HMin: 0.1, HMax: 1.0, Capacity: 1.6, CapJitter: 0.5, AccessProb: 0.6,
			}, rng)
		},
	})
	register(&Scenario{
		Name: "profit-ladder",
		Doc: "Auction-style profit spread: profits span three orders of magnitude so stage step " +
			"counts approach the 1+log₂(pmax/pmin) bound of Lemma 5.1 (experiment E8).",
		Kind:        instance.KindTree,
		DefaultAlgo: "tree-unit",
		Defaults:    Params{Demands: 48, Size: 32, Networks: 2},
		generate: func(p Params, rng *rand.Rand) *instance.Problem {
			return gen.TreeProblem(gen.TreeConfig{
				N: p.Size, Trees: p.Networks, Demands: p.Demands,
				Unit: true, PMin: 1, PMax: 1000, AccessProb: 0.6,
			}, rng)
		},
	})
	register(&Scenario{
		Name: "line-100k",
		Doc: "Scale stressor: 100k unit-height jobs with tight windows across thousands of line " +
			"resources — the §7 setting at the 10^4–10^5-link scale of the SINR scheduling " +
			"literature, driving the worker-pool BSP engine (experiment E14).",
		Kind:        instance.KindLine,
		DefaultAlgo: "dist-unit",
		Defaults:    Params{Demands: 100_000, Size: 256, Networks: 8192},
		Scale:       true,
		generate: func(p Params, rng *rand.Rand) *instance.Problem {
			return gen.LineProblem(gen.LineConfig{
				Slots: p.Size, Resources: p.Networks, Demands: p.Demands,
				Unit: true, AccessCount: 1, MaxProc: 6, Slack: 6,
			}, rng)
		},
	})
	register(&Scenario{
		Name: "random-tree-50k",
		Doc: "Scale stressor: 50k unit-height, locally-biased connections over thousands of random " +
			"routing trees — Theorem 5.3's round complexity at the network sizes where O(log m) " +
			"bounds matter (experiment E14).",
		Kind:        instance.KindTree,
		DefaultAlgo: "dist-unit",
		Defaults:    Params{Demands: 50_000, Size: 64, Networks: 4096},
		Scale:       true,
		generate: func(p Params, rng *rand.Rand) *instance.Problem {
			return gen.TreeProblem(gen.TreeConfig{
				N: p.Size, Trees: p.Networks, Demands: p.Demands,
				Unit: true, AccessCount: 1, LocalBias: 4,
			}, rng)
		},
	})
	register(&Scenario{
		Name: "caterpillar-20k",
		Doc: "Scale stressor: 20k unit-height connections on a thousand caterpillar backbones with " +
			"two-network access sets — the Lemma 4.1/4.3 decomposition shape at metro-network " +
			"scale (experiment E14).",
		Kind:        instance.KindTree,
		DefaultAlgo: "dist-unit",
		Defaults:    Params{Demands: 20_000, Size: 48, Networks: 1024},
		Scale:       true,
		generate: func(p Params, rng *rand.Rand) *instance.Problem {
			return gen.TreeProblem(gen.TreeConfig{
				N: p.Size, Trees: p.Networks, Demands: p.Demands,
				Shape: gen.ShapeCaterpillar, Unit: true, AccessCount: 2, LocalBias: 3,
			}, rng)
		},
	})
	register(&Scenario{
		Name: "binary-fanout",
		Doc: "Datacenter-style binary distribution trees across several parallel networks — the " +
			"round-scaling workload of Theorem 5.3's complexity claim (experiment E2).",
		Kind:        instance.KindTree,
		DefaultAlgo: "dist-unit",
		Defaults:    Params{Demands: 40, Size: 31, Networks: 3},
		generate: func(p Params, rng *rand.Rand) *instance.Problem {
			return gen.TreeProblem(gen.TreeConfig{
				N: p.Size, Trees: p.Networks, Demands: p.Demands,
				Shape: gen.ShapeBinary, Unit: true, AccessProb: 0.5,
			}, rng)
		},
	})
}
