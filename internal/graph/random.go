package graph

import (
	"fmt"
	"math/rand"
)

// RandomTree returns a uniformly random labelled tree on n vertices,
// generated from a random Prüfer sequence.
func RandomTree(n int, rng *rand.Rand) *Tree {
	if n == 1 {
		t, _ := NewTree(1, nil)
		return t
	}
	if n == 2 {
		t, _ := NewTree(2, [][2]int{{0, 1}})
		return t
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	return treeFromPrufer(n, prufer)
}

func treeFromPrufer(n int, prufer []int) *Tree {
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for _, v := range prufer {
		deg[v]++
	}
	edges := make([][2]int, 0, n-1)
	// ptr/leaf scan gives O(n) construction.
	ptr := 0
	for deg[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range prufer {
		edges = append(edges, [2]int{leaf, v})
		deg[v]--
		if deg[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	edges = append(edges, [2]int{leaf, n - 1})
	t, err := NewTree(n, edges)
	if err != nil {
		panic("graph: Prüfer construction produced a non-tree: " + err.Error())
	}
	return t
}

// RandomBinaryTree returns a random tree with maximum degree 3, built by
// attaching each new vertex to a uniformly random vertex that still has
// spare degree.
func RandomBinaryTree(n int, rng *rand.Rand) *Tree {
	if n == 1 {
		t, _ := NewTree(1, nil)
		return t
	}
	edges := make([][2]int, 0, n-1)
	deg := make([]int, n)
	avail := []int{0}
	for v := 1; v < n; v++ {
		i := rng.Intn(len(avail))
		u := avail[i]
		edges = append(edges, [2]int{u, v})
		deg[u]++
		deg[v]++
		maxDeg := 3
		if deg[u] >= maxDeg {
			avail[i] = avail[len(avail)-1]
			avail = avail[:len(avail)-1]
		}
		if deg[v] < maxDeg {
			avail = append(avail, v)
		}
	}
	t, err := NewTree(n, edges)
	if err != nil {
		panic("graph: binary tree construction failed: " + err.Error())
	}
	return t
}

// Caterpillar builds a caterpillar: a spine of length spine with legs
// leaves hanging off each spine vertex (round-robin). Total vertices =
// spine + legs.
func Caterpillar(spine, legs int) *Tree {
	if spine < 1 {
		panic(fmt.Sprintf("graph: Caterpillar needs spine >= 1, got %d", spine))
	}
	n := spine + legs
	edges := make([][2]int, 0, n-1)
	for v := 1; v < spine; v++ {
		edges = append(edges, [2]int{v - 1, v})
	}
	for i := 0; i < legs; i++ {
		leaf := spine + i
		edges = append(edges, [2]int{i % spine, leaf})
	}
	t, err := NewTree(n, edges)
	if err != nil {
		panic("graph: Caterpillar construction failed: " + err.Error())
	}
	return t
}

// CompleteBinaryTree builds the complete binary tree on n vertices with
// vertex v's children at 2v+1 and 2v+2.
func CompleteBinaryTree(n int) *Tree {
	edges := make([][2]int, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{v, (v - 1) / 2})
	}
	t, err := NewTree(n, edges)
	if err != nil {
		panic("graph: CompleteBinaryTree construction failed: " + err.Error())
	}
	return t
}

// Spider builds a spider: legs paths of length legLen joined at center 0.
// Total vertices = 1 + legs*legLen.
func Spider(legs, legLen int) *Tree {
	n := 1 + legs*legLen
	edges := make([][2]int, 0, n-1)
	next := 1
	for l := 0; l < legs; l++ {
		prev := 0
		for i := 0; i < legLen; i++ {
			edges = append(edges, [2]int{prev, next})
			prev = next
			next++
		}
	}
	t, err := NewTree(n, edges)
	if err != nil {
		panic("graph: Spider construction failed: " + err.Error())
	}
	return t
}

// PaperFigure6Tree reproduces the 14-vertex example tree-network of the
// paper's Figure 6. Paper vertices are 1-based; this constructor keeps the
// paper's numbering by allocating 15 vertices and leaving vertex 0 as an
// extra leaf attached to the root (vertex 1), so paper vertex k is vertex k.
//
// The edge set is reconstructed from the paper's worked examples:
// path(4,13) = 4-2-5-8-13 (so the demand ⟨4,13⟩ passes through 2, 5, 8);
// node 2 has component {2,4} with neighbors {1,5}; node 5's component is
// {5,9,8,2,12,13,4} with neighbor {1}; LCA(2,8)=5 in the decomposition of
// Figure 3 whose root is 1; demands ⟨1,10⟩, ⟨2,3⟩, ⟨12,13⟩ all share edge
// ⟨4,5⟩ in Figure 2's tree (a different tree; see PaperFigure2Tree).
func PaperFigure6Tree() *Tree {
	// 1 is the global root; 5 hangs under 1 and carries the subtree
	// {5,2,4,9,8,12,13}; the remaining vertices 3,6,7,10,11,14 hang off 1
	// in a shape consistent with Figure 3's balancing decomposition.
	// The figure itself is not fully recoverable from the text (the stated
	// pivot sets over-constrain a tree), so this variant keeps the
	// checkable facts: path(4,13) = 4-2-5-8-13 (passing through 2, 5, 8)
	// and the component structure of Figure 3's decomposition rooted at 1.
	// Golden tests assert exactly the properties the paper states.
	edges := [][2]int{
		{1, 0}, // filler leaf keeping paper numbering
		{1, 5}, // component C(5) hangs below 1
		{5, 2}, // C(2) = {2,4}
		{2, 4},
		{5, 9},
		{5, 8},
		{8, 12},
		{8, 13},
		{2, 3}, // 3 hangs off 2: the bending point of ⟨4,13⟩ w.r.t. 3 is 2
		{3, 7},
		{1, 6},
		{6, 10},
		{6, 11},
		{1, 14},
	}
	t, err := NewTree(15, edges)
	if err != nil {
		panic("graph: PaperFigure6Tree construction failed: " + err.Error())
	}
	return t
}

// PaperFigure2Tree reproduces the 14-vertex tree-network of Figure 2, in
// which the paths of demands ⟨1,10⟩, ⟨2,3⟩ and ⟨12,13⟩ all share the edge
// ⟨4,5⟩. Vertices are 1-based in the paper; vertex 0 is a filler leaf.
func PaperFigure2Tree() *Tree {
	edges := [][2]int{
		{1, 0}, // filler
		{1, 4}, // 1 below 4: path(1,10) climbs 1-4-5-...-10
		{2, 4}, // path(2,3) = 2-4-5-3
		{4, 5}, // the shared edge
		{5, 3},
		{5, 6},
		{6, 10}, // path(1,10) = 1-4-5-6-10
		{5, 12}, // 12 and 13 sit on opposite sides of edge 4-5,
		{4, 13}, // so path(12,13) = 12-5-4-13 crosses it
		{6, 7},
		{7, 8},
		{8, 9},
		{9, 11},
	}
	t, err := NewTree(14, edges)
	if err != nil {
		panic("graph: PaperFigure2Tree construction failed: " + err.Error())
	}
	return t
}
