// Package graph provides the tree-network substrate used throughout the
// library: undirected trees over a fixed vertex set with fast lowest common
// ancestor, path, distance, and median queries.
//
// Vertices are numbered 0..N-1. Every tree is stored in a rooted orientation
// (root 0 by convention) purely for query acceleration; the tree itself is
// undirected, exactly as in the paper's tree-networks (§2).
//
// Edges are identified by their child endpoint in the rooted orientation:
// EdgeID(v) is the edge between v and its parent. This gives each of the
// N-1 edges a dense id in 1..N-1 (vertex 0 has no parent edge), which the
// LP layer exploits to store dual variables in flat slices.
package graph

import (
	"errors"
	"fmt"
	"math/bits"
)

// EdgeID identifies an edge of a rooted tree by its child endpoint.
type EdgeID = int32

// Tree is an undirected tree over vertices 0..N-1 with O(log N) LCA,
// distance, and median queries. The zero value is not usable; construct
// with NewTree.
type Tree struct {
	n      int
	adj    [][]int32
	parent []int32 // parent[v] in the orientation rooted at 0; -1 for root
	depth  []int32 // depth[0] = 0
	order  []int32 // preorder of the rooted orientation
	up     [][]int32
	logN   int
}

// ErrNotATree is returned by NewTree when the edge set does not form a
// single connected acyclic graph over all n vertices.
var ErrNotATree = errors.New("graph: edge set is not a spanning tree")

// NewTree builds a tree over n vertices from exactly n-1 undirected edges.
// It validates connectivity and acyclicity.
func NewTree(n int, edges [][2]int) (*Tree, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: n must be positive, got %d", n)
	}
	if len(edges) != n-1 {
		return nil, fmt.Errorf("graph: want %d edges for %d vertices, got %d: %w", n-1, n, len(edges), ErrNotATree)
	}
	adj := make([][]int32, n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("graph: self-loop at %d: %w", u, ErrNotATree)
		}
		adj[u] = append(adj[u], int32(v))
		adj[v] = append(adj[v], int32(u))
	}
	t := &Tree{
		n:      n,
		adj:    adj,
		parent: make([]int32, n),
		depth:  make([]int32, n),
		order:  make([]int32, 0, n),
	}
	for i := range t.parent {
		t.parent[i] = -2 // unvisited
	}
	// Iterative DFS from root 0 establishes parents, depths, preorder,
	// and detects disconnection (unvisited vertices) or cycles (revisit).
	stack := make([]int32, 0, n)
	stack = append(stack, 0)
	t.parent[0] = -1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t.order = append(t.order, v)
		for _, w := range adj[v] {
			if w == t.parent[v] {
				continue
			}
			if t.parent[w] != -2 {
				return nil, fmt.Errorf("graph: cycle through edge (%d,%d): %w", v, w, ErrNotATree)
			}
			t.parent[w] = v
			t.depth[w] = t.depth[v] + 1
			stack = append(stack, w)
		}
	}
	if len(t.order) != n {
		return nil, fmt.Errorf("graph: only %d of %d vertices reachable from 0: %w", len(t.order), n, ErrNotATree)
	}
	t.buildLCA()
	return t, nil
}

// NewPath builds the path graph 0-1-2-...-(n-1), the line-network of §1.
func NewPath(n int) *Tree {
	edges := make([][2]int, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{v - 1, v})
	}
	t, err := NewTree(n, edges)
	if err != nil {
		panic("graph: NewPath constructed an invalid tree: " + err.Error())
	}
	return t
}

// NewStar builds the star with center 0 and leaves 1..n-1.
func NewStar(n int) *Tree {
	edges := make([][2]int, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{0, v})
	}
	t, err := NewTree(n, edges)
	if err != nil {
		panic("graph: NewStar constructed an invalid tree: " + err.Error())
	}
	return t
}

func (t *Tree) buildLCA() {
	logN := 1
	for 1<<logN < t.n {
		logN++
	}
	t.logN = logN
	t.up = make([][]int32, logN+1)
	t.up[0] = make([]int32, t.n)
	for v := 0; v < t.n; v++ {
		if t.parent[v] < 0 {
			t.up[0][v] = int32(v)
		} else {
			t.up[0][v] = t.parent[v]
		}
	}
	for k := 1; k <= logN; k++ {
		t.up[k] = make([]int32, t.n)
		prev := t.up[k-1]
		for v := 0; v < t.n; v++ {
			t.up[k][v] = prev[prev[v]]
		}
	}
}

// N returns the number of vertices.
func (t *Tree) N() int { return t.n }

// NumEdges returns the number of edges (N-1).
func (t *Tree) NumEdges() int { return t.n - 1 }

// Adj returns the neighbors of v. The returned slice must not be modified.
func (t *Tree) Adj(v int) []int32 { return t.adj[v] }

// Degree returns the number of neighbors of v.
func (t *Tree) Degree(v int) int { return len(t.adj[v]) }

// Parent returns the parent of v in the rooted orientation, or -1 for the root.
func (t *Tree) Parent(v int) int { return int(t.parent[v]) }

// Depth returns the number of edges from the root (vertex 0) to v.
func (t *Tree) Depth(v int) int { return int(t.depth[v]) }

// Preorder returns a preorder traversal of the rooted orientation.
// The returned slice must not be modified.
func (t *Tree) Preorder() []int32 { return t.order }

// Ancestor returns the k-th ancestor of v (0th is v itself). If k exceeds
// the depth of v it returns the root.
func (t *Tree) Ancestor(v, k int) int {
	u := int32(v)
	for k > 0 && u != 0 {
		step := bits.TrailingZeros(uint(k))
		if step > t.logN {
			step = t.logN
		}
		u = t.up[step][u]
		k -= 1 << step
	}
	return int(u)
}

// LCA returns the lowest common ancestor of u and v in the rooted
// orientation.
func (t *Tree) LCA(u, v int) int {
	if t.depth[u] < t.depth[v] {
		u, v = v, u
	}
	u = t.Ancestor(u, int(t.depth[u]-t.depth[v]))
	if u == v {
		return u
	}
	a, b := int32(u), int32(v)
	for k := t.logN; k >= 0; k-- {
		if t.up[k][a] != t.up[k][b] {
			a = t.up[k][a]
			b = t.up[k][b]
		}
	}
	return int(t.up[0][a])
}

// Dist returns the number of edges on the unique path between u and v.
func (t *Tree) Dist(u, v int) int {
	l := t.LCA(u, v)
	return int(t.depth[u] + t.depth[v] - 2*t.depth[l])
}

// OnPath reports whether x lies on the unique path between u and v
// (endpoints included).
func (t *Tree) OnPath(u, v, x int) bool {
	return t.Dist(u, x)+t.Dist(x, v) == t.Dist(u, v)
}

// Median returns the unique vertex that lies on all three pairwise paths
// among a, b, c (the "meeting point" of the tripod). For the bending point
// of a demand ⟨u,v⟩ with respect to a node w (§4.4), use Median(w, u, v).
func (t *Tree) Median(a, b, c int) int {
	ab := t.LCA(a, b)
	ac := t.LCA(a, c)
	bc := t.LCA(b, c)
	// Exactly two of the three LCAs coincide (the shallower one); the
	// remaining, deepest one is the median.
	if ab == ac {
		return bc
	}
	if ab == bc {
		return ac
	}
	return ab
}

// PathVertices returns the vertices on the path from u to v, in order
// (u first, v last).
func (t *Tree) PathVertices(u, v int) []int32 {
	l := t.LCA(u, v)
	var left []int32
	for x := int32(u); x != int32(l); x = t.parent[x] {
		left = append(left, x)
	}
	left = append(left, int32(l))
	var right []int32
	for x := int32(v); x != int32(l); x = t.parent[x] {
		right = append(right, x)
	}
	for i := len(right) - 1; i >= 0; i-- {
		left = append(left, right[i])
	}
	return left
}

// PathEdges returns the edge ids (child endpoints in the rooted
// orientation) of the path between u and v. The order is: edges ascending
// from u to the LCA, then edges descending from the LCA to v.
func (t *Tree) PathEdges(u, v int) []EdgeID {
	l := int32(t.LCA(u, v))
	out := make([]EdgeID, 0, t.Dist(u, v))
	for x := int32(u); x != l; x = t.parent[x] {
		out = append(out, x)
	}
	// Edges from l down to v are discovered bottom-up; reverse in place.
	mark := len(out)
	for x := int32(v); x != l; x = t.parent[x] {
		out = append(out, x)
	}
	for i, j := mark, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// EdgeOnPath reports whether the edge identified by child vertex e lies on
// the path between u and v. In a tree, an edge lies on a path exactly when
// both of its endpoints do.
func (t *Tree) EdgeOnPath(u, v int, e EdgeID) bool {
	p := t.parent[e]
	if p < 0 {
		return false
	}
	return t.OnPath(u, v, int(e)) && t.OnPath(u, v, int(p))
}

// EdgeEndpoints returns the two endpoints (child, parent) of edge e.
func (t *Tree) EdgeEndpoints(e EdgeID) (int, int) {
	return int(e), int(t.parent[e])
}

// EdgeBetween returns the edge id of the edge joining adjacent vertices u
// and v, or -1 if they are not adjacent.
func (t *Tree) EdgeBetween(u, v int) EdgeID {
	if t.parent[u] == int32(v) {
		return int32(u)
	}
	if t.parent[v] == int32(u) {
		return int32(v)
	}
	return -1
}

// PathsOverlap reports whether path(a,b) and path(c,d) share at least one
// edge. Two tree paths share an edge exactly when the projections of c and
// d onto path(a,b) are distinct vertices.
func (t *Tree) PathsOverlap(a, b, c, d int) bool {
	return t.Median(a, b, c) != t.Median(a, b, d)
}

// Wings returns the edges of path(u,v) incident to a vertex y that lies on
// the path: one edge if y is an endpoint, two otherwise (§4.4).
// It panics if y is not on the path.
func (t *Tree) Wings(u, v, y int) []EdgeID {
	if !t.OnPath(u, v, y) {
		panic(fmt.Sprintf("graph: Wings: vertex %d not on path (%d,%d)", y, u, v))
	}
	var out []EdgeID
	// The wing toward u exists when y != u; it is the first edge on
	// path(y, u). Identify it by the neighbor of y on that path.
	if y != u {
		w := t.neighborToward(y, u)
		out = append(out, t.EdgeBetween(y, w))
	}
	if y != v {
		w := t.neighborToward(y, v)
		e := t.EdgeBetween(y, w)
		if len(out) == 0 || out[0] != e {
			out = append(out, e)
		}
	}
	return out
}

// neighborToward returns the neighbor of y on the path from y to target
// (y != target).
func (t *Tree) neighborToward(y, target int) int {
	// If target is in the subtree of a child c of y, the neighbor is that
	// child; otherwise it is parent(y). The child is the ancestor of
	// target at depth(y)+1 when LCA(y,target)==y.
	if t.LCA(y, target) == y {
		c := t.Ancestor(target, t.Dist(y, target)-1)
		return c
	}
	return int(t.parent[y])
}

// Subtree returns the vertices of the subtree rooted at v (in the rooted
// orientation), including v.
func (t *Tree) Subtree(v int) []int32 {
	out := []int32{int32(v)}
	for i := 0; i < len(out); i++ {
		x := out[i]
		for _, w := range t.adj[x] {
			if w != t.parent[x] {
				out = append(out, w)
			}
		}
	}
	return out
}

// Edges returns all edges as (child, parent) pairs in a deterministic order.
func (t *Tree) Edges() [][2]int {
	out := make([][2]int, 0, t.n-1)
	for v := 1; v < t.n; v++ {
		out = append(out, [2]int{v, int(t.parent[v])})
	}
	return out
}
