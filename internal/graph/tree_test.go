package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustTree(t *testing.T, n int, edges [][2]int) *Tree {
	t.Helper()
	tr, err := NewTree(n, edges)
	if err != nil {
		t.Fatalf("NewTree(%d): %v", n, err)
	}
	return tr
}

func TestNewTreeValidation(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]int
	}{
		{"too few edges", 3, [][2]int{{0, 1}}},
		{"too many edges", 2, [][2]int{{0, 1}, {0, 1}}},
		{"self loop", 2, [][2]int{{1, 1}}},
		{"cycle", 3, [][2]int{{0, 1}, {1, 2}, {2, 0}}[:2:2]},
		{"out of range", 2, [][2]int{{0, 5}}},
		{"disconnected", 4, [][2]int{{0, 1}, {2, 3}, {3, 2}}},
		{"zero vertices", 0, nil},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if c.name == "cycle" {
				// A 3-cycle has 3 edges on 3 vertices: rejected by count;
				// build a 4-vertex graph with a real cycle instead.
				if _, err := NewTree(4, [][2]int{{0, 1}, {1, 2}, {2, 1}}); err == nil {
					t.Fatal("cycle accepted")
				}
				return
			}
			if _, err := NewTree(c.n, c.edges); err == nil {
				t.Fatalf("NewTree(%d, %v) accepted invalid input", c.n, c.edges)
			}
		})
	}
}

func TestSingleVertexTree(t *testing.T) {
	tr := mustTree(t, 1, nil)
	if tr.N() != 1 || tr.NumEdges() != 0 {
		t.Fatalf("got N=%d edges=%d", tr.N(), tr.NumEdges())
	}
	if tr.LCA(0, 0) != 0 || tr.Dist(0, 0) != 0 {
		t.Fatal("trivial queries wrong on single vertex")
	}
}

func TestPathTreeBasics(t *testing.T) {
	tr := NewPath(10)
	if d := tr.Dist(0, 9); d != 9 {
		t.Fatalf("Dist(0,9)=%d want 9", d)
	}
	if l := tr.LCA(3, 7); l != 3 {
		t.Fatalf("LCA(3,7)=%d want 3 (path rooted at 0)", l)
	}
	if !tr.OnPath(2, 8, 5) || tr.OnPath(2, 8, 1) {
		t.Fatal("OnPath wrong on path graph")
	}
	edges := tr.PathEdges(3, 6)
	if len(edges) != 3 {
		t.Fatalf("PathEdges(3,6) len=%d want 3", len(edges))
	}
	if m := tr.Median(1, 9, 4); m != 4 {
		t.Fatalf("Median(1,9,4)=%d want 4", m)
	}
}

func TestStarBasics(t *testing.T) {
	tr := NewStar(8)
	if d := tr.Dist(3, 5); d != 2 {
		t.Fatalf("Dist(3,5)=%d want 2", d)
	}
	if l := tr.LCA(3, 5); l != 0 {
		t.Fatalf("LCA(3,5)=%d want 0", l)
	}
	if m := tr.Median(1, 2, 3); m != 0 {
		t.Fatalf("Median(1,2,3)=%d want 0", m)
	}
	// Leaves 1..7 all have the center as the single wing vertex.
	w := tr.Wings(3, 5, 0)
	if len(w) != 2 {
		t.Fatalf("Wings at center: %v want 2 edges", w)
	}
}

// bruteDist computes distance by BFS, for cross-checking.
func bruteDist(tr *Tree, u, v int) int {
	dist := make([]int, tr.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[u] = 0
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x == v {
			return dist[x]
		}
		for _, w := range tr.Adj(x) {
			if dist[w] < 0 {
				dist[w] = dist[x] + 1
				queue = append(queue, int(w))
			}
		}
	}
	return dist[v]
}

// brutePathVerts computes the path vertex set by walking parent pointers.
func brutePathVerts(tr *Tree, u, v int) map[int]bool {
	set := map[int]bool{}
	for _, x := range tr.PathVertices(u, v) {
		set[int(x)] = true
	}
	return set
}

func TestQueriesAgainstBruteForceOnRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(60)
		tr := RandomTree(n, rng)
		for q := 0; q < 40; q++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if got, want := tr.Dist(u, v), bruteDist(tr, u, v); got != want {
				t.Fatalf("n=%d Dist(%d,%d)=%d want %d", n, u, v, got, want)
			}
			verts := tr.PathVertices(u, v)
			if len(verts) != tr.Dist(u, v)+1 {
				t.Fatalf("PathVertices length %d vs dist %d", len(verts), tr.Dist(u, v))
			}
			if int(verts[0]) != u || int(verts[len(verts)-1]) != v {
				t.Fatalf("PathVertices endpoints %v for (%d,%d)", verts, u, v)
			}
			// Consecutive path vertices must be adjacent.
			for i := 1; i < len(verts); i++ {
				if tr.EdgeBetween(int(verts[i-1]), int(verts[i])) < 0 {
					t.Fatalf("non-adjacent consecutive path vertices %d,%d", verts[i-1], verts[i])
				}
			}
			edges := tr.PathEdges(u, v)
			if len(edges) != tr.Dist(u, v) {
				t.Fatalf("PathEdges length %d vs dist %d", len(edges), tr.Dist(u, v))
			}
			// OnPath must agree with the materialized path.
			onPath := brutePathVerts(tr, u, v)
			x := rng.Intn(n)
			if tr.OnPath(u, v, x) != onPath[x] {
				t.Fatalf("OnPath(%d,%d,%d) mismatch", u, v, x)
			}
			// Every path edge must satisfy EdgeOnPath; a random non-path
			// edge must not.
			for _, e := range edges {
				if !tr.EdgeOnPath(u, v, e) {
					t.Fatalf("EdgeOnPath false for materialized path edge %d", e)
				}
			}
		}
	}
}

func TestMedianProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(50)
		tr := RandomTree(n, rng)
		for q := 0; q < 50; q++ {
			a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			m := tr.Median(a, b, c)
			// The median lies on all three pairwise paths.
			if !tr.OnPath(a, b, m) || !tr.OnPath(a, c, m) || !tr.OnPath(b, c, m) {
				t.Fatalf("median %d of (%d,%d,%d) not on all paths", m, a, b, c)
			}
			// And it is the unique such vertex: check by brute force.
			count := 0
			for x := 0; x < n; x++ {
				if tr.OnPath(a, b, x) && tr.OnPath(a, c, x) && tr.OnPath(b, c, x) {
					count++
				}
			}
			if count != 1 {
				t.Fatalf("expected unique median for (%d,%d,%d), found %d", a, b, c, count)
			}
		}
	}
}

// bruteOverlap checks edge-intersection of two paths by materializing them.
func bruteOverlap(tr *Tree, a, b, c, d int) bool {
	set := map[EdgeID]bool{}
	for _, e := range tr.PathEdges(a, b) {
		set[e] = true
	}
	for _, e := range tr.PathEdges(c, d) {
		if set[e] {
			return true
		}
	}
	return false
}

func TestPathsOverlapAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(40)
		tr := RandomTree(n, rng)
		for q := 0; q < 100; q++ {
			a, b := rng.Intn(n), rng.Intn(n)
			c, d := rng.Intn(n), rng.Intn(n)
			if got, want := tr.PathsOverlap(a, b, c, d), bruteOverlap(tr, a, b, c, d); got != want {
				t.Fatalf("PathsOverlap(%d,%d | %d,%d)=%v want %v (n=%d)", a, b, c, d, got, want, n)
			}
		}
	}
}

func TestWings(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		tr := RandomTree(n, rng)
		for q := 0; q < 50; q++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			verts := tr.PathVertices(u, v)
			y := verts[rng.Intn(len(verts))]
			w := tr.Wings(u, v, int(y))
			wantLen := 2
			if int(y) == u || int(y) == v {
				wantLen = 1
			}
			if len(w) != wantLen {
				t.Fatalf("Wings(%d,%d,%d) = %v, want %d edges", u, v, y, w, wantLen)
			}
			for _, e := range w {
				if !tr.EdgeOnPath(u, v, e) {
					t.Fatalf("wing %d not on path(%d,%d)", e, u, v)
				}
				a, b := tr.EdgeEndpoints(e)
				if a != int(y) && b != int(y) {
					t.Fatalf("wing %d not incident to %d", e, y)
				}
			}
		}
	}
}

func TestBendingPointDefinition(t *testing.T) {
	// The bending point of path(u,v) w.r.t. w is the unique y on the path
	// such that path(w,y) avoids every other vertex of path(u,v) (§4.4).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(40)
		tr := RandomTree(n, rng)
		for q := 0; q < 40; q++ {
			u, v, w := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			y := tr.Median(w, u, v)
			if !tr.OnPath(u, v, y) {
				t.Fatalf("bending point %d not on path(%d,%d)", y, u, v)
			}
			// No other path vertex may appear strictly inside path(w,y).
			for _, x := range tr.PathVertices(u, v) {
				if int(x) == y {
					continue
				}
				if tr.OnPath(w, y, int(x)) {
					t.Fatalf("path(%d,%d) hits path vertex %d before bending point %d", w, y, x, y)
				}
			}
		}
	}
}

func TestAncestorAndLCAEdge(t *testing.T) {
	tr := CompleteBinaryTree(31)
	if a := tr.Ancestor(30, 0); a != 30 {
		t.Fatalf("Ancestor(30,0)=%d", a)
	}
	if a := tr.Ancestor(30, 100); a != 0 {
		t.Fatalf("Ancestor(30,100)=%d want root", a)
	}
	if l := tr.LCA(7, 8); l != 3 {
		t.Fatalf("LCA(7,8)=%d want 3", l)
	}
	if l := tr.LCA(15, 22); l != 1 {
		t.Fatalf("LCA(15,22)=%d want 1", l)
	}
}

func TestSubtreeAndEdges(t *testing.T) {
	tr := CompleteBinaryTree(7)
	sub := tr.Subtree(1)
	if len(sub) != 3 {
		t.Fatalf("Subtree(1) = %v want {1,3,4}", sub)
	}
	seen := map[int32]bool{}
	for _, v := range sub {
		seen[v] = true
	}
	if !seen[1] || !seen[3] || !seen[4] {
		t.Fatalf("Subtree(1) = %v want {1,3,4}", sub)
	}
	if len(tr.Edges()) != 6 {
		t.Fatalf("Edges() len=%d", len(tr.Edges()))
	}
}

func TestGeneratorShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if tr := RandomBinaryTree(50, rng); tr.N() != 50 {
		t.Fatal("RandomBinaryTree size")
	} else {
		for v := 0; v < 50; v++ {
			if tr.Degree(v) > 3 {
				t.Fatalf("RandomBinaryTree degree(%d)=%d > 3", v, tr.Degree(v))
			}
		}
	}
	if tr := Caterpillar(5, 12); tr.N() != 17 {
		t.Fatal("Caterpillar size")
	}
	if tr := Spider(3, 4); tr.N() != 13 || tr.Degree(0) != 3 {
		t.Fatal("Spider shape")
	}
	if tr := CompleteBinaryTree(15); tr.Depth(14) != 3 {
		t.Fatal("CompleteBinaryTree depth")
	}
}

func TestPaperFigureTrees(t *testing.T) {
	t.Run("figure6", func(t *testing.T) {
		tr := PaperFigure6Tree()
		// "The demand instance ⟨4,13⟩ passes through nodes 2 and 8; it
		// also passes through LCA(2,8) = 5" (Figure 3 discussion).
		for _, x := range []int{2, 5, 8} {
			if !tr.OnPath(4, 13, x) {
				t.Fatalf("path(4,13) misses %d", x)
			}
		}
		// "With respect to nodes 3 and 9, the bending points of the
		// demand d = ⟨4,13⟩ are 2 and 5."
		if y := tr.Median(3, 4, 13); y != 2 {
			t.Fatalf("bending point wrt 3 = %d want 2", y)
		}
		if y := tr.Median(9, 4, 13); y != 5 {
			t.Fatalf("bending point wrt 9 = %d want 5", y)
		}
		// "With respect to path(d), node 4 has only one wing ⟨4,2⟩,
		// while node 8 has two wings ⟨5,8⟩ and ⟨8,13⟩."
		if w := tr.Wings(4, 13, 4); len(w) != 1 {
			t.Fatalf("wings at endpoint 4: %v", w)
		}
		if w := tr.Wings(4, 13, 8); len(w) != 2 {
			t.Fatalf("wings at 8: %v", w)
		}
	})
	t.Run("figure2", func(t *testing.T) {
		tr := PaperFigure2Tree()
		// All three demands share edge ⟨4,5⟩.
		e := tr.EdgeBetween(4, 5)
		if e < 0 {
			t.Fatal("edge 4-5 missing")
		}
		for _, d := range [][2]int{{1, 10}, {2, 3}, {12, 13}} {
			if !tr.EdgeOnPath(d[0], d[1], e) {
				t.Fatalf("demand %v does not cross edge 4-5", d)
			}
		}
	})
}

func TestRandomTreeIsUniformishAndValid(t *testing.T) {
	// Property-based: any seed yields a valid tree whose queries are
	// self-consistent.
	f := func(seed int64, rawN uint8) bool {
		n := 1 + int(rawN)%64
		rng := rand.New(rand.NewSource(seed))
		tr := RandomTree(n, rng)
		if tr.N() != n || tr.NumEdges() != n-1 {
			return false
		}
		for q := 0; q < 10; q++ {
			u, v := rng.Intn(n), rng.Intn(n)
			l := tr.LCA(u, v)
			if !tr.OnPath(u, v, l) {
				return false
			}
			if tr.Dist(u, l)+tr.Dist(l, v) != tr.Dist(u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLCA(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tr := RandomTree(4096, rng)
	us := make([]int, 1024)
	vs := make([]int, 1024)
	for i := range us {
		us[i], vs[i] = rng.Intn(4096), rng.Intn(4096)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(us)
		_ = tr.LCA(us[k], vs[k])
	}
}

func BenchmarkPathEdges(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tr := RandomTree(4096, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.PathEdges(i%4096, (i*2654435761)%4096)
	}
}
