package bench

// The distributed-runtime benchmark behind `schedbench -dist`:
// BENCH_core.json tracks the solver, BENCH_online.json the session path,
// this harness tracks the BSP execution substrate — the sharded
// worker-pool engine (core.Options.DistWorkers ≥ 0) against the
// goroutine-per-processor anchor (DistWorkers < 0) on the same protocol,
// network and seed. Two tiers:
//
//   - gate entries: moderate networks measured identically in quick and
//     full mode and regression-gated in CI (CheckDist);
//   - scale entries (full mode only): the 10^4–10^5-processor presets
//     (line-100k, random-tree-50k, caterpillar-20k) that demonstrate the
//     engine at the network sizes of the paper's round-complexity
//     claims. The blocking anchor is measured there too — a deliberate
//     multi-minute commitment when regenerating the baseline.
//
// Every run cross-checks that both engines produced byte-identical
// dist.Stats, so the benchmark doubles as an end-to-end equivalence
// tripwire.

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"treesched/internal/core"
	"treesched/internal/scenario"
)

// DistPair is one tracked workload: a scenario preset, optionally
// resized. Zero override fields keep the preset defaults.
type DistPair struct {
	Scenario string
	Demands  int
	Size     int
	Networks int
	Scale    bool // full-mode-only tier, exempt from the regression gate
}

// DistGatePairs are the CI-gated workloads: small enough that the
// blocking anchor runs in seconds, measured at identical sizes in quick
// and full mode so the checked-in baseline stays comparable.
var DistGatePairs = []DistPair{
	{Scenario: "binary-fanout"}, // the paper-scale E2 workload
	{Scenario: "line-100k", Demands: 4000, Networks: 512},
	{Scenario: "random-tree-50k", Demands: 2500, Networks: 256},
	{Scenario: "caterpillar-20k", Demands: 2000, Networks: 128},
}

// DistScalePairs are the full-size large-network runs (full mode only).
var DistScalePairs = []DistPair{
	{Scenario: "line-100k", Scale: true},
	{Scenario: "random-tree-50k", Scale: true},
	{Scenario: "caterpillar-20k", Scale: true},
}

// DistEntry is the measured cost of one workload on both engines.
type DistEntry struct {
	Scenario string `json:"scenario"`
	Algo     string `json:"algo"`
	Demands  int    `json:"demands"`
	Networks int    `json:"networks"`
	Scale    bool   `json:"scale,omitempty"`
	// Workers is the pool engine's worker count (GOMAXPROCS at record
	// time); the goroutine gate is relative to it.
	Workers int `json:"workers"`

	// The protocol's network cost — identical on both engines by
	// construction (cross-checked every run).
	Rounds       int   `json:"rounds"`
	Aggregations int   `json:"aggregations"`
	Messages     int64 `json:"messages"`
	Entries      int64 `json:"entries"`

	// Pool engine (DistWorkers = 0). RoundsPerSec counts all collectives
	// (exchange rounds + aggregations) per second of solve wall time.
	PoolNs             float64 `json:"pool_ns"`
	PoolRoundsPerSec   float64 `json:"pool_rounds_per_sec"`
	PoolMsgsPerSec     float64 `json:"pool_msgs_per_sec"`
	PoolPeakGoroutines int     `json:"pool_peak_goroutines"`

	// Blocking anchor (DistWorkers = -1): one goroutine per processor,
	// single-mutex barrier.
	BlockingNs             float64 `json:"blocking_ns"`
	BlockingRoundsPerSec   float64 `json:"blocking_rounds_per_sec"`
	BlockingPeakGoroutines int     `json:"blocking_peak_goroutines"`

	// SpeedupVsBlocking = BlockingNs / PoolNs — the hardware-normalized
	// rounds/sec ratio the CI gate tracks.
	SpeedupVsBlocking float64 `json:"speedup_vs_blocking"`
}

// DistKey identifies an entry in the baseline map.
func (e *DistEntry) DistKey() string {
	return fmt.Sprintf("%s/%s@%d", e.Scenario, e.Algo, e.Demands)
}

// DistReport is the BENCH_dist.json document.
type DistReport struct {
	Note       string      `json:"note"`
	Regenerate string      `json:"regenerate"`
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Entries    []DistEntry `json:"entries"`
}

// goroutineSampler polls runtime.NumGoroutine in the background and
// reports the peak when stopped. The blocking engine's peak is ~n (one
// goroutine per processor); the pool engine's must stay near the worker
// count — that bound is part of the CheckDist gate.
type goroutineSampler struct {
	stop chan struct{}
	peak chan int
}

func startGoroutineSampler() *goroutineSampler {
	s := &goroutineSampler{stop: make(chan struct{}), peak: make(chan int, 1)}
	go func() {
		max := runtime.NumGoroutine()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				if g := runtime.NumGoroutine(); g > max {
					max = g
				}
				s.peak <- max
				return
			case <-tick.C:
				if g := runtime.NumGoroutine(); g > max {
					max = g
				}
			}
		}
	}()
	return s
}

func (s *goroutineSampler) stopAndPeak() int {
	close(s.stop)
	return <-s.peak
}

// distSolve runs the pair's protocol once on the chosen engine,
// measuring wall time and peak goroutines. The sampler itself and the
// test harness contribute a few goroutines — the gate allows for them.
func distSolve(c *core.Compiled, algo string, distWorkers int) (*core.DistributedResult, time.Duration, int, error) {
	opts := core.Options{Seed: 1, DistWorkers: distWorkers}
	var run func(core.Options) (*core.DistributedResult, error)
	switch algo {
	case "dist-unit":
		run = c.DistributedUnit
	case "dist-narrow":
		run = c.DistributedNarrow
	case "dist-ps":
		run = c.DistributedPanconesiSozio
	default:
		return nil, 0, 0, fmt.Errorf("bench: untracked dist algo %q", algo)
	}
	sampler := startGoroutineSampler()
	begin := time.Now()
	r, err := run(opts)
	elapsed := time.Since(begin)
	peak := sampler.stopAndPeak()
	return r, elapsed, peak, err
}

// distMeasure times one engine, repeating until targetDur of wall time
// is observed (runs are deterministic, so repetition only sheds
// scheduler noise; millisecond-scale workloads would otherwise gate on
// jitter) and reporting the best run. A first run always happens;
// targetDur 0 means exactly one.
func distMeasure(c *core.Compiled, algo string, distWorkers int, targetDur time.Duration) (*core.DistributedResult, time.Duration, int, error) {
	const maxRuns = 200
	var best, total time.Duration
	var bestR *core.DistributedResult
	peakMax := 0
	for i := 0; i < maxRuns; i++ {
		r, el, peak, err := distSolve(c, algo, distWorkers)
		if err != nil {
			return nil, 0, 0, err
		}
		if bestR == nil || el < best {
			best, bestR = el, r
		}
		if peak > peakMax {
			peakMax = peak
		}
		total += el
		if total >= targetDur {
			break
		}
	}
	return bestR, best, peakMax, nil
}

func (p DistPair) params() scenario.Params {
	return scenario.Params{Demands: p.Demands, Size: p.Size, Networks: p.Networks}
}

// distEntry measures one pair on both engines and cross-checks their
// Stats. targetDur is the per-engine repetition budget (0 = one run).
func distEntry(pair DistPair, targetDur time.Duration) (*DistEntry, error) {
	s, ok := scenario.Get(pair.Scenario)
	if !ok {
		return nil, fmt.Errorf("bench: unknown scenario %q", pair.Scenario)
	}
	prob, err := s.Generate(pair.params(), 1)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %v", pair.Scenario, err)
	}
	c, err := core.Compile(prob, 0)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %v", pair.Scenario, err)
	}
	eff := s.Effective(pair.params())
	e := &DistEntry{
		Scenario: pair.Scenario,
		Algo:     s.DefaultAlgo,
		Demands:  eff.Demands,
		Networks: eff.Networks,
		Scale:    pair.Scale,
		Workers:  runtime.GOMAXPROCS(0),
	}

	pool, poolNs, poolPeak, err := distMeasure(c, e.Algo, 0, targetDur)
	if err != nil {
		return nil, fmt.Errorf("bench: %s pool: %v", pair.Scenario, err)
	}
	// The blocking anchor gets the same repetition budget; at gate sizes
	// one run is near a second so it rarely repeats, at scale (budget 0)
	// it runs exactly once — a deliberate multi-minute measurement.
	block, blockNs, blockPeak, err := distMeasure(c, e.Algo, -1, targetDur)
	if err != nil {
		return nil, fmt.Errorf("bench: %s blocking: %v", pair.Scenario, err)
	}
	if pool.Net != block.Net {
		return nil, fmt.Errorf("bench: %s: engines diverged: pool %+v vs blocking %+v — determinism bug",
			pair.Scenario, pool.Net, block.Net)
	}

	e.Rounds = pool.Net.Rounds
	e.Aggregations = pool.Net.Aggregations
	e.Messages = pool.Net.Messages
	e.Entries = pool.Net.Entries
	collectives := float64(e.Rounds + e.Aggregations)
	e.PoolNs = float64(poolNs.Nanoseconds())
	e.PoolRoundsPerSec = collectives / poolNs.Seconds()
	e.PoolMsgsPerSec = float64(e.Messages) / poolNs.Seconds()
	e.PoolPeakGoroutines = poolPeak
	e.BlockingNs = float64(blockNs.Nanoseconds())
	e.BlockingRoundsPerSec = collectives / blockNs.Seconds()
	e.BlockingPeakGoroutines = blockPeak
	e.SpeedupVsBlocking = e.BlockingNs / e.PoolNs
	return e, nil
}

// DistBench measures the tracked workloads and assembles the report.
// Quick measures only the gate tier, once per engine (the CI smoke);
// the checked-in baseline should be regenerated without it — which runs
// the scale tier too, including its multi-minute blocking anchors.
func DistBench(quick bool) (*DistReport, error) {
	report := &DistReport{
		Note: "BSP substrate: worker-pool engine (DistWorkers=0) vs goroutine-per-processor " +
			"anchor (DistWorkers=-1), same protocol/network/seed, byte-identical Stats " +
			"cross-checked per run; rounds/sec counts all collectives; scale entries are " +
			"the 10^4-10^5-processor presets and are exempt from the CI gate",
		Regenerate: "go run ./cmd/schedbench -dist -o BENCH_dist.json",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	target := 600 * time.Millisecond
	if quick {
		target = 200 * time.Millisecond
	}
	for _, pair := range DistGatePairs {
		e, err := distEntry(pair, target)
		if err != nil {
			return nil, err
		}
		report.Entries = append(report.Entries, *e)
	}
	if !quick {
		for _, pair := range DistScalePairs {
			e, err := distEntry(pair, 0)
			if err != nil {
				return nil, err
			}
			report.Entries = append(report.Entries, *e)
		}
	}
	return report, nil
}

// DistSmoke runs one scale preset at full size on the pool engine only —
// the CI large-network smoke (`schedbench -dist -smoke line-100k`).
// Returns a one-line summary.
func DistSmoke(name string) (string, error) {
	s, ok := scenario.Get(name)
	if !ok {
		return "", fmt.Errorf("bench: unknown scenario %q", name)
	}
	prob, err := s.Generate(scenario.Params{}, 1)
	if err != nil {
		return "", err
	}
	c, err := core.Compile(prob, 0)
	if err != nil {
		return "", err
	}
	r, elapsed, peak, err := distSolve(c, s.DefaultAlgo, 0)
	if err != nil {
		return "", err
	}
	workers := runtime.GOMAXPROCS(0)
	if peak > workers+16 {
		return "", fmt.Errorf("bench: smoke %s: peak %d goroutines exceeds workers+16 = %d",
			name, peak, workers+16)
	}
	return fmt.Sprintf(
		"smoke %s/%s: %d processors, %d rounds + %d aggregations, %d messages, %d selected, %s wall, peak %d goroutines (workers %d)",
		name, s.DefaultAlgo, len(prob.Demands), r.Net.Rounds, r.Net.Aggregations,
		r.Net.Messages, len(r.Selected), elapsed.Round(time.Millisecond), peak, workers), nil
}

// distGoroutineSlack is the gate's allowance above the worker count for
// the harness itself (main goroutine, sampler, runtime helpers).
const distGoroutineSlack = 16

// CheckDist compares a fresh gate-tier measurement against the
// checked-in baseline and errors when the substrate regressed:
//
//   - the pool-vs-blocking speedup (a same-machine rounds/sec ratio,
//     hardware-normalized) fell below (1−tolerance)× the recorded value
//     — e.g. 0.25 = fail below 0.75×;
//   - the absolute pool rounds/sec fell beyond the catastrophic
//     nsCatastropheFactor backstop (loose because CI hardware differs
//     from the baseline machine);
//   - the pool engine's goroutine peak exceeded workers + O(1) — the
//     scale property itself (checked on the current run, no baseline
//     needed).
//
// Entries present in only one report are ignored so the tracked set can
// evolve. Scale-tier entries are exempt from the baseline-relative gates
// (their timings are deliberate one-shot measurements); the absolute
// goroutine bound applies to every entry present — it is the scale
// property itself.
func CheckDist(current, baseline *DistReport, tolerance float64) error {
	base := make(map[string]*DistEntry, len(baseline.Entries))
	for i := range baseline.Entries {
		base[baseline.Entries[i].DistKey()] = &baseline.Entries[i]
	}
	var failures []string
	for i := range current.Entries {
		e := &current.Entries[i]
		if e.PoolPeakGoroutines > e.Workers+distGoroutineSlack {
			failures = append(failures, fmt.Sprintf(
				"%s: pool engine peaked at %d goroutines with %d workers (> workers+%d) — the scale property is broken",
				e.DistKey(), e.PoolPeakGoroutines, e.Workers, distGoroutineSlack))
		}
		if e.Scale {
			continue
		}
		want := base[e.DistKey()]
		if want == nil {
			continue
		}
		if want.SpeedupVsBlocking > 0 && e.SpeedupVsBlocking < want.SpeedupVsBlocking*(1-tolerance) {
			failures = append(failures, fmt.Sprintf(
				"%s: pool speedup vs blocking %.2fx, baseline %.2fx (%.2fx < allowed %.2fx)",
				e.DistKey(), e.SpeedupVsBlocking, want.SpeedupVsBlocking,
				e.SpeedupVsBlocking/want.SpeedupVsBlocking, 1-tolerance))
		}
		if want.PoolRoundsPerSec > 0 && e.PoolRoundsPerSec < want.PoolRoundsPerSec/nsCatastropheFactor {
			failures = append(failures, fmt.Sprintf(
				"%s: pool %.0f rounds/sec vs baseline %.0f (beyond the catastrophic %gx backstop)",
				e.DistKey(), e.PoolRoundsPerSec, want.PoolRoundsPerSec, nsCatastropheFactor))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: distributed-runtime regression against BENCH_dist.json:\n  %s",
			strings.Join(failures, "\n  "))
	}
	return nil
}
