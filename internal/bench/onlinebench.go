package bench

// The online benchmark behind `schedbench -online`: BENCH_core.json
// tracks the one-shot solver, this harness tracks the dynamic-session
// path — per scenario × churn rate, the cost of keeping a schedule fresh
// as jobs arrive and depart. Two arms replay the identical churn
// sequence: the delta arm re-solves through core.Compiled.WithJobs
// (incremental model rebuild, decomposition reuse, scratch adoption),
// the cold arm recompiles the effective problem from scratch each step —
// the regime a session-less service lives in. The speedup columns are
// the subsystem's reason to exist; CheckOnline gates them in CI on the
// hardware-independent allocation counts.

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"time"

	"treesched/internal/core"
	"treesched/internal/instance"
	"treesched/internal/scenario"
)

// OnlinePairs lists the tracked (scenario, algorithm) combinations: the
// BENCH_core set minus the distributed driver (whose cost is
// message-passing, not compilation), plus two more tree workloads so the
// report spans the full range of solve-to-compile ratios — videowall-line
// and narrow-stream are the honest hard cases (their warm solve is a
// large share of the cold total, capping any recompile win near 2.5×),
// the tree-unit pairs the representative sessions workload.
var OnlinePairs = []CorePair{
	{"videowall-line", "line-unit"},
	{"caterpillar-backbone", "tree-unit"},
	{"star-uplink", "tree-unit"},
	{"profit-ladder", "tree-unit"},
	{"narrow-stream", "narrow"},
	{"capacitated-tree", "arbitrary"},
}

// OnlineChurns are the tracked per-step churn rates (fraction of live
// jobs swapped between consecutive resolves).
var OnlineChurns = []float64{0.02, 0.10, 0.30}

// OnlineEntry is the measured cost of one (scenario, algo, churn) cell.
type OnlineEntry struct {
	Scenario string  `json:"scenario"`
	Algo     string  `json:"algo"`
	Churn    float64 `json:"churn"`
	Steps    int     `json:"steps"`
	Jobs     int     `json:"jobs"`
	// Delta: WithJobs + solve per churn step (the session path).
	DeltaNsPerResolve     float64 `json:"delta_ns_per_resolve"`
	DeltaAllocsPerResolve float64 `json:"delta_allocs_per_resolve"`
	// Cold: fresh core.Compile + solve of the identical effective
	// problem per step.
	ColdNsPerResolve     float64 `json:"cold_ns_per_resolve"`
	ColdAllocsPerResolve float64 `json:"cold_allocs_per_resolve"`
	// Speedups = cold / delta.
	SpeedupNs     float64 `json:"speedup_ns"`
	SpeedupAllocs float64 `json:"speedup_allocs"`
}

// OnlineKey identifies a cell in the baseline map.
func (e *OnlineEntry) OnlineKey() string {
	return fmt.Sprintf("%s/%s@%g", e.Scenario, e.Algo, e.Churn)
}

// OnlineReport is the BENCH_online.json document.
type OnlineReport struct {
	Note       string        `json:"note"`
	Regenerate string        `json:"regenerate"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Entries    []OnlineEntry `json:"entries"`
}

// onlineStep is one churn step of the deterministic sequence: the demand
// indices removed (against the live order before the step) and the
// demands admitted. effective is the resulting demand list, renumbered —
// the problem both arms must solve after the step.
type onlineStep struct {
	removed   []int
	added     []instance.Demand
	effective []instance.Demand
}

// onlineSequence builds the deterministic churn sequence for one cell.
// The live set starts as the scenario's canonical workload; arrivals
// recycle departed payloads through a FIFO so the set size stays fixed.
// Removal entries are positions in the pre-step order — exactly what
// Compiled.WithJobs consumes — and the effective list reproduces its
// splice (survivors in order, then arrivals).
func onlineSequence(pool []instance.Demand, churn float64, steps int, seed int64) []onlineStep {
	rng := rand.New(rand.NewSource(seed))
	live := append([]instance.Demand(nil), pool...)
	var queue []instance.Demand
	out := make([]onlineStep, 0, steps)
	for s := 0; s < steps; s++ {
		k := int(float64(len(live))*churn + 0.5)
		if k < 1 {
			k = 1
		}
		if k > len(live)-1 {
			k = len(live) - 1
		}
		st := onlineStep{}
		for _, at := range rng.Perm(len(live))[:k] {
			st.removed = append(st.removed, at)
		}
		sort.Ints(st.removed)
		rmSet := make(map[int]bool, k)
		for _, at := range st.removed {
			rmSet[at] = true
		}
		survivors := live[:0:0]
		for i, d := range live {
			if rmSet[i] {
				queue = append(queue, d)
			} else {
				survivors = append(survivors, d)
			}
		}
		live = survivors
		for i := 0; i < k && len(queue) > 0; i++ {
			d := queue[0]
			queue = queue[1:]
			st.added = append(st.added, d)
			live = append(live, d)
		}
		for i := range live {
			live[i].ID = i
		}
		st.effective = append([]instance.Demand(nil), live...)
		out = append(out, st)
	}
	return out
}

// measureLoop times fn over every step and returns per-step ns and
// allocs (single-goroutine; Mallocs is monotone so GC does not skew it).
func measureLoop(steps []onlineStep, fn func(i int, st *onlineStep) error) (nsPerOp, allocsPerOp float64, err error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	begin := time.Now()
	for i := range steps {
		if err := fn(i, &steps[i]); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(begin)
	runtime.ReadMemStats(&after)
	n := float64(len(steps))
	return float64(elapsed.Nanoseconds()) / n, float64(after.Mallocs-before.Mallocs) / n, nil
}

// OnlineBench measures every tracked cell. Quick shrinks the step count
// (CI smoke); the checked-in baseline should be regenerated without it.
func OnlineBench(quick bool) (*OnlineReport, error) {
	steps := 120
	if quick {
		steps = 25
	}
	report := &OnlineReport{
		Note: "dynamic sessions: per churn step, delta = WithJobs incremental recompile + solve, " +
			"cold = fresh core.Compile + solve of the identical effective problem; " +
			"speedups are cold/delta — the value of delta recompilation at each churn rate",
		Regenerate: "go run ./cmd/schedbench -online -o BENCH_online.json",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, pair := range OnlinePairs {
		s, ok := scenario.Get(pair.Scenario)
		if !ok {
			return nil, fmt.Errorf("bench: unknown scenario %q", pair.Scenario)
		}
		base, err := s.Generate(scenario.Params{}, 1)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %v", pair.Scenario, err)
		}
		for _, churn := range OnlineChurns {
			entry := OnlineEntry{Scenario: pair.Scenario, Algo: pair.Algo, Churn: churn, Steps: steps, Jobs: len(base.Demands)}
			seq := onlineSequence(base.Demands, churn, steps, 7)

			// Untimed splice check: the driver's effective list must
			// reproduce the WithJobs splice exactly, or the two arms
			// would silently solve different problems.
			vc, err := core.Compile(base, 0)
			if err != nil {
				return nil, err
			}
			for i := range seq {
				nc, err := vc.WithJobs(seq[i].added, seq[i].removed)
				if err != nil {
					return nil, fmt.Errorf("bench: %s@%g splice step %d: %v", pair.Scenario, churn, i, err)
				}
				if !reflect.DeepEqual(nc.Problem().Demands, seq[i].effective) {
					return nil, fmt.Errorf("bench: %s@%g step %d: driver and WithJobs splices diverged", pair.Scenario, churn, i)
				}
				vc = nc
			}

			// Delta arm. The starting compilation solves once untimed so
			// the full model exists, as a session's first resolve would
			// have ensured.
			cur, err := core.Compile(base, 0)
			if err != nil {
				return nil, err
			}
			if err := coreSolve(cur, pair.Algo); err != nil {
				return nil, fmt.Errorf("bench: %s/%s warmup: %v", pair.Scenario, pair.Algo, err)
			}
			entry.DeltaNsPerResolve, entry.DeltaAllocsPerResolve, err = measureLoop(seq, func(_ int, st *onlineStep) error {
				nc, err := cur.WithJobs(st.added, st.removed)
				if err != nil {
					return err
				}
				if err := coreSolve(nc, pair.Algo); err != nil {
					return err
				}
				cur = nc
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s@%g delta: %v", pair.Scenario, pair.Algo, churn, err)
			}

			// Cold arm: same effective problems, recompiled from scratch.
			problems := make([]*instance.Problem, len(seq))
			for i := range seq {
				p := *base
				p.Demands = seq[i].effective
				problems[i] = &p
			}
			entry.ColdNsPerResolve, entry.ColdAllocsPerResolve, err = measureLoop(seq, func(i int, _ *onlineStep) error {
				c, err := core.Compile(problems[i], 0)
				if err != nil {
					return err
				}
				return coreSolve(c, pair.Algo)
			})
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s@%g cold: %v", pair.Scenario, pair.Algo, churn, err)
			}

			if entry.DeltaNsPerResolve > 0 {
				entry.SpeedupNs = entry.ColdNsPerResolve / entry.DeltaNsPerResolve
			}
			if entry.DeltaAllocsPerResolve > 0 {
				entry.SpeedupAllocs = entry.ColdAllocsPerResolve / entry.DeltaAllocsPerResolve
			}
			report.Entries = append(report.Entries, entry)
		}
	}
	return report, nil
}

// CheckOnline compares a fresh measurement against the checked-in
// baseline and errors when any cell's delta-vs-cold advantage regressed:
// the allocation-count speedup (hardware-independent) below
// (1−tolerance)× the recorded value carries the strict gate, with a
// loose 4× backstop on the wall-clock speedup for catastrophic
// regressions. Cells present in only one report are ignored so the
// tracked set can evolve.
func CheckOnline(current, baseline *OnlineReport, tolerance float64) error {
	base := make(map[string]*OnlineEntry, len(baseline.Entries))
	for i := range baseline.Entries {
		base[baseline.Entries[i].OnlineKey()] = &baseline.Entries[i]
	}
	var failures []string
	for i := range current.Entries {
		e := &current.Entries[i]
		want := base[e.OnlineKey()]
		if want == nil {
			continue
		}
		if want.SpeedupAllocs > 0 && e.SpeedupAllocs < want.SpeedupAllocs*(1-tolerance) {
			failures = append(failures, fmt.Sprintf(
				"%s: alloc speedup %.2fx vs baseline %.2fx (below allowed %.2fx)",
				e.OnlineKey(), e.SpeedupAllocs, want.SpeedupAllocs, want.SpeedupAllocs*(1-tolerance)))
		}
		if want.SpeedupNs > 0 && e.SpeedupNs < want.SpeedupNs/nsCatastropheFactor {
			failures = append(failures, fmt.Sprintf(
				"%s: ns speedup %.2fx vs baseline %.2fx (below catastrophic %.2fx backstop)",
				e.OnlineKey(), e.SpeedupNs, want.SpeedupNs, want.SpeedupNs/nsCatastropheFactor))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: delta-recompile regression against BENCH_online.json:\n  %s",
			strings.Join(failures, "\n  "))
	}
	return nil
}
