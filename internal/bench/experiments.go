package bench

import (
	"fmt"
	"math"
	"math/rand"

	"treesched/internal/core"
	"treesched/internal/gen"
	"treesched/internal/instance"
	"treesched/internal/verify"
)

// Config scales the experiments.
type Config struct {
	// Seed makes every experiment deterministic.
	Seed int64
	// Trials is the number of sampled problems per table cell.
	Trials int
	// Quick shrinks sizes for test runs.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Trials == 0 {
		c.Trials = 5
		if c.Quick {
			c.Trials = 2
		}
	}
	return c
}

// ratioStats accumulates certified/true ratios over trials.
type ratioStats struct {
	certSum, trueSum float64
	certMax, trueMax float64
	trueN            int
	n                int
	profitSum        float64
	optSum           float64
}

func (s *ratioStats) addCert(r float64) {
	s.certSum += r
	if r > s.certMax {
		s.certMax = r
	}
	s.n++
}

func (s *ratioStats) addTrue(r float64) {
	s.trueSum += r
	if r > s.trueMax {
		s.trueMax = r
	}
	s.trueN++
}

func (s *ratioStats) certMean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.certSum / float64(s.n)
}

func (s *ratioStats) trueMean() float64 {
	if s.trueN == 0 {
		return math.NaN()
	}
	return s.trueSum / float64(s.trueN)
}

// instanceProblem keeps experiment signatures short.
type instanceProblem = instance.Problem

// E1 — Theorem 5.3 (unit-height tree networks, 7+ε): measured certified
// and true approximation ratios across tree shapes, against the paper
// bound.
func E1TreeUnitRatios(cfg Config) *Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:   "E1 — Unit-height tree networks (Thm 5.3): ratio vs the 7+ε bound",
		Headers: []string{"shape", "n", "trees", "demands", "cert.ratio(mean)", "cert.ratio(max)", "true ratio(mean)", "bound"},
	}
	shapes := []gen.TreeShape{gen.ShapeRandom, gen.ShapeBinary, gen.ShapeCaterpillar, gen.ShapeStar}
	sizes := [][3]int{{24, 2, 14}, {48, 3, 24}}
	if cfg.Quick {
		sizes = sizes[:1]
	}
	eps := 0.25
	var bound float64
	for _, shape := range shapes {
		for _, sz := range sizes {
			var st ratioStats
			for trial := 0; trial < cfg.Trials; trial++ {
				p := gen.TreeProblem(gen.TreeConfig{
					N: sz[0], Trees: sz[1], Demands: sz[2], Unit: true, Shape: shape,
				}, rng)
				res, err := core.TreeUnit(p, core.Options{Epsilon: eps, Seed: uint64(trial)})
				if err != nil {
					panic(err)
				}
				mustFeasible(p, res)
				bound = res.Bound
				st.addCert(res.CertifiedRatio)
				if opt, err := core.Exact(p, 4_000_000); err == nil && res.Profit > 0 {
					st.addTrue(opt.Profit / res.Profit)
				}
			}
			t.Add(shape.String(), sz[0], sz[1], sz[2], st.certMean(), st.certMax, st.trueMean(), bound)
		}
	}
	t.Note("cert.ratio = dual-UB/profit certifies OPT/profit ≤ cert.ratio on every run; bound = (∆+1)/λ = 7/(1−ε), ε=%.2f.", eps)
	t.Note("true ratio uses branch-and-bound optimum where it fits the node budget.")
	return t
}

// E2 — Theorem 5.3 round complexity: communication rounds of the
// goroutine message-passing execution as n grows; the paper predicts
// O(Time(MIS)·log n·log(1/ε)·log(pmax/pmin)).
func E2Rounds(cfg Config) *Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:   "E2 — Distributed rounds vs n (Thm 5.3): polylog scaling",
		Headers: []string{"n", "demands", "rounds", "msgs", "aggregations", "rounds(fixed)", "rounds/log2(n)^2"},
	}
	ns := []int{16, 32, 64, 128, 256}
	if cfg.Quick {
		ns = []int{16, 64}
	}
	for _, n := range ns {
		roundsSum, msgSum, aggSum, fixedSum := 0, int64(0), 0, 0
		for trial := 0; trial < cfg.Trials; trial++ {
			p := gen.TreeProblem(gen.TreeConfig{N: n, Trees: 2, Demands: 24, Unit: true}, rng)
			d, err := core.DistributedUnit(p, core.Options{Epsilon: 0.25, Seed: uint64(trial)})
			if err != nil {
				panic(err)
			}
			mustFeasible(p, d.Result)
			roundsSum += d.Net.Rounds
			msgSum += d.Net.Messages
			aggSum += d.Net.Aggregations
			f, err := core.DistributedUnit(p, core.Options{Epsilon: 0.25, Seed: uint64(trial), FixedRounds: true})
			if err != nil {
				panic(err)
			}
			mustFeasible(p, f.Result)
			fixedSum += f.Net.Rounds
		}
		fTrials := float64(cfg.Trials)
		rMean := float64(roundsSum) / fTrials
		l := math.Log2(float64(n))
		t.Add(n, 24, rMean, float64(msgSum)/fTrials, float64(aggSum)/fTrials, float64(fixedSum)/fTrials, rMean/(l*l))
	}
	t.Note("rounds = Exchange barriers; aggregations = global-OR terminations (each would cost O(diameter) rounds as a convergecast).")
	t.Note("rounds(fixed) runs the paper's deterministic schedule (pmax/pmin known): zero aggregations, rounds = epochs·stages·(1+log2 spread)·(Luby budget) — the exact O(Time(MIS)·log n·log(1/ε)·log(pmax/pmin)) shape of Thm 5.3.")
	t.Note("epochs track the ideal decomposition depth ≤ 2⌈log n⌉, so rounds/log²n staying flat-ish confirms the polylog claim.")
	return t
}

// E3 — Lemma 6.2: the narrow-instance algorithm's certified ratio against
// 2∆²+1 = 73 (trees), and the 1/hmin dependence of its stage count.
func E3Narrow(cfg Config) *Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:   "E3 — Narrow instances (Lemma 6.2): ratio and 1/hmin round scaling",
		Headers: []string{"hmin", "cert.ratio(mean)", "true ratio(mean)", "bound", "stages", "rounds", "aggregations"},
	}
	hmins := []float64{0.5, 0.25, 0.125, 0.0625}
	if cfg.Quick {
		hmins = []float64{0.5, 0.125}
	}
	for _, hmin := range hmins {
		var st ratioStats
		stages, rounds, aggs := 0, 0, 0
		var bound float64
		for trial := 0; trial < cfg.Trials; trial++ {
			p := gen.TreeProblem(gen.TreeConfig{
				N: 20, Trees: 2, Demands: 12, HMin: hmin, HMax: 0.5,
			}, rng)
			res, err := core.NarrowOnly(p, core.Options{Epsilon: 0.25, Seed: uint64(trial), CollectTrace: true})
			if err != nil {
				panic(err)
			}
			mustFeasible(p, res)
			bound = res.Bound
			st.addCert(res.CertifiedRatio)
			if opt, err := core.Exact(p, 4_000_000); err == nil && res.Profit > 0 {
				st.addTrue(opt.Profit / res.Profit)
			}
			if len(res.Trace.StepsPerStage) > 0 {
				stages = len(res.Trace.StepsPerStage[0])
			}
			d, err := core.DistributedNarrow(p, core.Options{Epsilon: 0.25, Seed: uint64(trial)})
			if err != nil {
				panic(err)
			}
			rounds += d.Net.Rounds
			aggs += d.Net.Aggregations
		}
		t.Add(hmin, st.certMean(), st.trueMean(), bound, stages, rounds/cfg.Trials, aggs/cfg.Trials)
	}
	t.Note("stages per epoch ≈ log_ξ(ε) with ξ = c/(c+hmin), c = 1+∆² — the 1/hmin growth (Lemma 6.2) shows in stages and aggregations; exchange rounds stay low because most stages converge instantly (empty U costs one aggregation, no exchange).")
	return t
}

// E4 — Theorem 6.3: the combined arbitrary-height tree algorithm (80+ε):
// certified/true ratios and comparison with greedy.
func E4Arbitrary(cfg Config) *Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:   "E4 — Arbitrary heights on trees (Thm 6.3): combined wide+narrow",
		Headers: []string{"workload", "cert.ratio(mean)", "true ratio(mean)", "bound", "profit vs greedy"},
	}
	type wl struct {
		name       string
		hmin, hmax float64
	}
	for _, w := range []wl{
		{"mixed 0.1–1.0", 0.1, 1.0},
		{"mostly wide 0.6–1.0", 0.6, 1.0},
		{"mostly narrow 0.1–0.5", 0.1, 0.5},
	} {
		var st ratioStats
		var bound, vsGreedy float64
		for trial := 0; trial < cfg.Trials; trial++ {
			p := gen.TreeProblem(gen.TreeConfig{
				N: 18, Trees: 2, Demands: 12, HMin: w.hmin, HMax: w.hmax,
			}, rng)
			res, err := core.Arbitrary(p, core.Options{Epsilon: 0.25, Seed: uint64(trial)})
			if err != nil {
				panic(err)
			}
			mustFeasible(p, res)
			bound = res.Bound
			st.addCert(res.CertifiedRatio)
			if opt, err := core.Exact(p, 4_000_000); err == nil && res.Profit > 0 {
				st.addTrue(opt.Profit / res.Profit)
			}
			g, err := core.Greedy(p)
			if err != nil {
				panic(err)
			}
			if g.Profit > 0 {
				vsGreedy += res.Profit / g.Profit
			}
		}
		t.Add(w.name, st.certMean(), st.trueMean(), bound, vsGreedy/float64(cfg.Trials))
	}
	t.Note("bound = (∆+1)/λ + (2∆²+1)/λ ≤ 80/(1−ε) per Theorem 6.3; measured ratios sit far below it.")
	return t
}

// E5 — Theorem 7.1 vs Panconesi–Sozio: unit-height line networks with
// windows; the multi-stage λ=1−ε schedule against the single-stage
// λ=1/(5+ε) baseline.
func E5LineUnit(cfg Config) *Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:   "E5 — Unit-height lines with windows (Thm 7.1): ours (4+ε) vs Panconesi–Sozio (20+ε)",
		Headers: []string{"algorithm", "bound", "cert.ratio(mean)", "true ratio(mean)", "profit (mean)"},
	}
	type accum struct {
		st     ratioStats
		profit float64
		bound  float64
	}
	ours, ps := &accum{}, &accum{}
	for trial := 0; trial < cfg.Trials*2; trial++ {
		p := gen.LineProblem(gen.LineConfig{
			Slots: 32, Resources: 2, Demands: 14, Unit: true, MaxProc: 8,
		}, rng)
		opt, optErr := core.Exact(p, 4_000_000)
		for _, run := range []struct {
			acc *accum
			f   func() (*core.Result, error)
		}{
			{ours, func() (*core.Result, error) {
				return core.LineUnit(p, core.Options{Epsilon: 0.25, Seed: uint64(trial)})
			}},
			{ps, func() (*core.Result, error) {
				return core.PanconesiSozioUnit(p, core.Options{Epsilon: 0.25, Seed: uint64(trial)})
			}},
		} {
			res, err := run.f()
			if err != nil {
				panic(err)
			}
			mustFeasible(p, res)
			run.acc.bound = res.Bound
			run.acc.st.addCert(res.CertifiedRatio)
			run.acc.profit += res.Profit
			if optErr == nil && res.Profit > 0 {
				run.acc.st.addTrue(opt.Profit / res.Profit)
			}
		}
	}
	n := float64(cfg.Trials * 2)
	t.Add("multi-stage (this paper)", ours.bound, ours.st.certMean(), ours.st.trueMean(), ours.profit/n)
	t.Add("single-stage (P–S [16])", ps.bound, ps.st.certMean(), ps.st.trueMean(), ps.profit/n)
	t.Note("the paper's factor-5 improvement is in λ: 1−ε vs 1/(5+ε); the certified ratio gap shows it directly.")
	return t
}

// E6 — Theorem 7.2: arbitrary heights on lines (23+ε vs P–S's published
// 55+ε, which the supplied text does not specify in enough detail to
// reimplement — see DESIGN.md).
func E6LineArbitrary(cfg Config) *Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:   "E6 — Arbitrary heights on lines with windows (Thm 7.2)",
		Headers: []string{"workload", "cert.ratio(mean)", "true ratio(mean)", "bound", "profit vs greedy"},
	}
	for _, res := range []struct {
		name       string
		hmin, hmax float64
	}{
		{"mixed 0.1–1.0", 0.1, 1.0},
		{"narrow 0.1–0.5", 0.1, 0.5},
	} {
		var st ratioStats
		var bound, vsGreedy float64
		for trial := 0; trial < cfg.Trials; trial++ {
			p := gen.LineProblem(gen.LineConfig{
				Slots: 28, Resources: 2, Demands: 12, HMin: res.hmin, HMax: res.hmax, MaxProc: 7,
			}, rng)
			r, err := core.Arbitrary(p, core.Options{Epsilon: 0.25, Seed: uint64(trial)})
			if err != nil {
				panic(err)
			}
			mustFeasible(p, r)
			bound = r.Bound
			st.addCert(r.CertifiedRatio)
			if opt, err := core.Exact(p, 4_000_000); err == nil && r.Profit > 0 {
				st.addTrue(opt.Profit / r.Profit)
			}
			g, err := core.Greedy(p)
			if err != nil {
				panic(err)
			}
			if g.Profit > 0 {
				vsGreedy += r.Profit / g.Profit
			}
		}
		t.Add(res.name, st.certMean(), st.trueMean(), bound, vsGreedy/float64(cfg.Trials))
	}
	t.Note("combined bound (4+ε)+(19+ε) = 23+2ε (Thm 7.2); [16]'s comparable guarantee is 55+ε.")
	return t
}

// mustFeasible panics when an algorithm emits an infeasible solution —
// experiments double as system tests.
func mustFeasible(p *instanceProblem, res *core.Result) {
	if err := verify.Solution(p, res.Selected); err != nil {
		panic(fmt.Sprintf("bench: %s produced infeasible solution: %v", res.Name, err))
	}
}
