package bench

import (
	"fmt"
	"math"
	"math/rand"

	"treesched/internal/core"
	"treesched/internal/gen"
	"treesched/internal/layered"
	"treesched/internal/treedecomp"
)

// E7 — Lemmas 4.1/4.3: decomposition quality. For each construction and
// tree family: depth, pivot size θ, and the layered ∆ = max |π(d)|,
// against the paper's bounds (ideal: depth ≤ 2⌈log n⌉, θ=2, ∆=6).
func E7Decomp(cfg Config) *Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:   "E7 — Tree decompositions (Lemmas 4.1, 4.3): depth, θ, ∆",
		Headers: []string{"construction", "shape", "n", "depth", "2⌈log n⌉", "θ", "∆"},
	}
	ns := []int{64, 256, 1024}
	if cfg.Quick {
		ns = []int{64, 256}
	}
	shapes := []gen.TreeShape{gen.ShapeRandom, gen.ShapePath, gen.ShapeStar, gen.ShapeCaterpillar}
	for _, kind := range []treedecomp.Kind{treedecomp.KindIdeal, treedecomp.KindBalancing, treedecomp.KindRootFixing} {
		for _, shape := range shapes {
			for _, n := range ns {
				tr := gen.MakeTree(shape, n, rng)
				d := treedecomp.Build(tr, kind)
				// ∆ from the Lemma 4.2 construction over sample demands.
				p := gen.TreeProblem(gen.TreeConfig{N: n, Trees: 1, Demands: 40, Unit: true, AccessProb: 1}, rng)
				p.Trees[0] = tr
				insts := p.Expand()
				asg, err := layered.ForTrees(p, insts, []*treedecomp.Decomposition{treedecomp.Build(tr, kind)})
				if err != nil {
					panic(err)
				}
				t.Add(kind.String(), shape.String(), n,
					d.MaxDepth(), 2*int(math.Ceil(math.Log2(float64(n)))),
					d.PivotSize(), asg.Delta)
			}
		}
	}
	t.Note("ideal: depth ≤ 2⌈log n⌉ with θ=2 and ∆ ≤ 6 everywhere (Lemma 4.1/4.3); root-fixing trades depth=n for θ=1; balancing trades θ≈log n for depth ⌈log n⌉+1.")
	return t
}

// E8 — Lemma 5.1: steps per stage stay ≤ 1+log2(pmax/pmin) as the profit
// spread grows.
func E8Steps(cfg Config) *Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:   "E8 — Steps per stage vs profit spread (Lemma 5.1)",
		Headers: []string{"pmax/pmin", "max steps/stage", "bound 1+log2(spread)", "total steps"},
	}
	spreads := []float64{1, 10, 100, 1000}
	if cfg.Quick {
		spreads = []float64{1, 100}
	}
	for _, spread := range spreads {
		maxSteps, totalSteps := 0, 0
		for trial := 0; trial < cfg.Trials; trial++ {
			p := gen.TreeProblem(gen.TreeConfig{
				N: 24, Trees: 2, Demands: 20, Unit: true, PMin: 1, PMax: spread,
			}, rng)
			if spread == 1 {
				for i := range p.Demands {
					p.Demands[i].Profit = 1
				}
			}
			res, err := core.TreeUnit(p, core.Options{Epsilon: 0.25, Seed: uint64(trial), CollectTrace: true})
			if err != nil {
				panic(err)
			}
			for _, epoch := range res.Trace.StepsPerStage {
				for _, s := range epoch {
					if s > maxSteps {
						maxSteps = s
					}
					totalSteps += s
				}
			}
		}
		t.Add(spread, maxSteps, 1+math.Ceil(math.Log2(spread)), totalSteps/cfg.Trials)
	}
	t.Note("Lemma 5.1: a kill chain doubles profits, so a stage runs at most 1+log2(pmax/pmin) steps; the measured maxima respect it.")
	return t
}

// E9 — Appendix A: the sequential algorithm's true ratio against its
// guarantee (3 for multiple trees, 2 for a single tree).
func E9Sequential(cfg Config) *Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:   "E9 — Sequential Appendix-A algorithm: ratio vs 2/3 guarantee",
		Headers: []string{"trees", "cert.ratio(mean)", "cert.ratio(max)", "true ratio(mean)", "bound"},
	}
	for _, trees := range []int{1, 3} {
		var st ratioStats
		var bound float64
		for trial := 0; trial < cfg.Trials*2; trial++ {
			p := gen.TreeProblem(gen.TreeConfig{
				N: 14, Trees: trees, Demands: 10, Unit: true,
			}, rng)
			res, err := core.Sequential(p, core.Options{})
			if err != nil {
				panic(err)
			}
			mustFeasible(p, res)
			bound = res.Bound
			st.addCert(res.CertifiedRatio)
			if opt, err := core.Exact(p, 4_000_000); err == nil && res.Profit > 0 {
				st.addTrue(opt.Profit / res.Profit)
			}
		}
		t.Add(fmt.Sprintf("tree ×%d", trees), st.certMean(), st.certMax, st.trueMean(), bound)
	}
	// The §1-cited line baseline: Bar-Noy et al. / Berman–Dasgupta style
	// 2-approximation, reformulated with π(d) = {end slot}.
	var st ratioStats
	for trial := 0; trial < cfg.Trials*2; trial++ {
		p := gen.LineProblem(gen.LineConfig{
			Slots: 20, Resources: 2, Demands: 10, Unit: true, MaxProc: 6,
		}, rng)
		res, err := core.SequentialLine(p, core.Options{})
		if err != nil {
			panic(err)
		}
		mustFeasible(p, res)
		st.addCert(res.CertifiedRatio)
		if opt, err := core.Exact(p, 4_000_000); err == nil && res.Profit > 0 {
			st.addTrue(opt.Profit / res.Profit)
		}
	}
	t.Add("line (Bar-Noy style)", st.certMean(), st.certMax, st.trueMean(), 2.0)
	t.Note("single tree drops the α variables (Lewin-Eytan et al. reformulated): ∆=2, λ=1 ⇒ ratio 2; multiple trees ⇒ 3; the line row is the [4,5] 2-approximation with π(d) = {end slot}, ∆=1.")
	return t
}

// E10 — the capacitated / non-uniform bandwidth extension (abstract;
// IPPS'13 title): feasibility and ratios under jittered edge capacities.
func E10Capacitated(cfg Config) *Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:   "E10 — Non-uniform bandwidths (capacitated extension)",
		Headers: []string{"kind", "capacity", "cert.ratio(mean)", "true ratio(mean)", "profit vs greedy"},
	}
	type wl struct {
		name     string
		tree     bool
		cap, jit float64
	}
	for _, w := range []wl{
		{"tree", true, 1.5, 0.5},
		{"tree", true, 3.0, 1.0},
		{"line", false, 2.0, 0.8},
	} {
		var st ratioStats
		var vsGreedy float64
		for trial := 0; trial < cfg.Trials; trial++ {
			var p *instanceProblem
			if w.tree {
				p = gen.TreeProblem(gen.TreeConfig{
					N: 16, Trees: 2, Demands: 12, HMin: 0.2, HMax: 1.0,
					Capacity: w.cap, CapJitter: w.jit,
				}, rng)
			} else {
				p = gen.LineProblem(gen.LineConfig{
					Slots: 24, Resources: 2, Demands: 12, HMin: 0.2, HMax: 1.0,
					MaxProc: 6, Capacity: w.cap, CapJitter: w.jit,
				}, rng)
			}
			res, err := core.Arbitrary(p, core.Options{Epsilon: 0.25, Seed: uint64(trial)})
			if err != nil {
				panic(err)
			}
			mustFeasible(p, res)
			st.addCert(res.CertifiedRatio)
			if opt, err := core.Exact(p, 4_000_000); err == nil && res.Profit > 0 {
				st.addTrue(opt.Profit / res.Profit)
			}
			g, err := core.Greedy(p)
			if err != nil {
				panic(err)
			}
			if g.Profit > 0 {
				vsGreedy += res.Profit / g.Profit
			}
		}
		t.Add(w.name, w.cap, st.certMean(), st.trueMean(), vsGreedy/float64(cfg.Trials))
	}
	t.Note("capacities drawn as cap ± jitter per edge; heights classified by effective (capacity-normalized) height; the Capacitated raise rule stores β pre-multiplied by cap (see internal/lp).")
	return t
}

// E11 — ablation: the algorithm run with each of the three tree
// decompositions. Ideal keeps both ∆ (ratio) and epochs (rounds) small;
// the simpler decompositions lose one or the other, exactly the paper's
// motivation for §4.3.
func E11DecompAblation(cfg Config) *Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:   "E11 — Ablation: tree decomposition choice (why 'ideal' matters)",
		Headers: []string{"decomposition", "∆", "epochs", "bound", "cert.ratio(mean)", "rounds(dist)"},
	}
	for _, kind := range []treedecomp.Kind{treedecomp.KindIdeal, treedecomp.KindBalancing, treedecomp.KindRootFixing} {
		var st ratioStats
		var bound float64
		delta, epochs, rounds := 0, 0, 0
		for trial := 0; trial < cfg.Trials; trial++ {
			// Caterpillars have linear root-fixing depth, so the epoch
			// blowup of the naive decomposition is visible at this size.
			p := gen.TreeProblem(gen.TreeConfig{
				N: 128, Trees: 2, Demands: 20, Unit: true, Shape: gen.ShapeCaterpillar,
			}, rng)
			res, err := core.TreeUnit(p, core.Options{Epsilon: 0.25, Seed: uint64(trial), DecompKind: kind})
			if err != nil {
				panic(err)
			}
			mustFeasible(p, res)
			bound = res.Bound
			st.addCert(res.CertifiedRatio)
			delta = res.Model.Delta
			epochs = res.Model.NumGroups
			d, err := core.DistributedUnit(p, core.Options{Epsilon: 0.25, Seed: uint64(trial), DecompKind: kind})
			if err != nil {
				panic(err)
			}
			rounds += d.Net.Rounds
		}
		t.Add(kind.String(), delta, epochs, bound, st.certMean(), rounds/cfg.Trials)
	}
	t.Note("root-fixing: ∆ ≤ 4 but epochs ≈ depth of the tree (rounds blow up); balancing: few epochs but ∆ grows with log n (bound blows up); ideal: ∆=6 and epochs ≤ 2⌈log n⌉ — both small (Lemma 4.1).")
	return t
}

// E12 — ablation: multi-stage λ = 1−ε vs single-stage λ = 1/(5+ε) on the
// same line workloads — the source of the paper's factor-5 improvement.
func E12StageAblation(cfg Config) *Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:   "E12 — Ablation: multi-stage vs single-stage slackness",
		Headers: []string{"schedule", "λ", "bound", "cert.ratio(mean)", "steps(total)"},
	}
	type acc struct {
		st     ratioStats
		lambda float64
		bound  float64
		steps  int
	}
	multi, single := &acc{}, &acc{}
	for trial := 0; trial < cfg.Trials*2; trial++ {
		p := gen.LineProblem(gen.LineConfig{
			Slots: 32, Resources: 2, Demands: 14, Unit: true, MaxProc: 8,
		}, rng)
		mres, err := core.LineUnit(p, core.Options{Epsilon: 0.25, Seed: uint64(trial), CollectTrace: true})
		if err != nil {
			panic(err)
		}
		sres, err := core.PanconesiSozioUnit(p, core.Options{Epsilon: 0.25, Seed: uint64(trial), CollectTrace: true})
		if err != nil {
			panic(err)
		}
		multi.st.addCert(mres.CertifiedRatio)
		single.st.addCert(sres.CertifiedRatio)
		multi.lambda, single.lambda = mres.Lambda, sres.Lambda
		multi.bound, single.bound = mres.Bound, sres.Bound
		multi.steps += mres.Trace.Steps()
		single.steps += sres.Trace.Steps()
	}
	n := cfg.Trials * 2
	t.Add("multi-stage (§5)", multi.lambda, multi.bound, multi.st.certMean(), multi.steps/n)
	t.Add("single-stage ([16])", single.lambda, single.bound, single.st.certMean(), single.steps/n)
	t.Note("the multi-stage schedule pays more steps per epoch to push λ from 1/(5+ε) to 1−ε, buying the 20+ε → 4+ε bound improvement.")
	return t
}

// All runs every experiment and returns the tables in order.
func All(cfg Config) []*Table {
	return []*Table{
		E1TreeUnitRatios(cfg),
		E2Rounds(cfg),
		E3Narrow(cfg),
		E4Arbitrary(cfg),
		E5LineUnit(cfg),
		E6LineArbitrary(cfg),
		E7Decomp(cfg),
		E8Steps(cfg),
		E9Sequential(cfg),
		E10Capacitated(cfg),
		E11DecompAblation(cfg),
		E12StageAblation(cfg),
	}
}
