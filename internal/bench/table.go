// Package bench is the experiment harness: it defines the E1–E12
// experiments of DESIGN.md (one per quantitative claim of the paper),
// runs them over generated workloads, and renders the result tables that
// EXPERIMENTS.md records. cmd/schedbench and bench_test.go drive it.
package bench

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Add appends a row, formatting each cell with %v (floats via %.3g
// when passed as float64).
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns in Markdown-compatible
// form.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}
