package bench

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Headers: []string{"a", "bb"},
	}
	tb.Add("x", 1.5)
	tb.Add("longer", 2)
	tb.Note("note %d", 7)
	out := tb.String()
	for _, want := range []string{"### demo", "| a ", "| bb", "1.500", "longer", "> note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// TestAllExperimentsQuick runs every experiment in quick mode: each one
// panics on infeasible output or violated certificates, so this doubles as
// an end-to-end system test of the full pipeline.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	tables := All(Config{Seed: 1, Quick: true, Trials: 1})
	if len(tables) != 12 {
		t.Fatalf("expected 12 experiment tables, got %d", len(tables))
	}
	for _, tb := range tables {
		out := tb.String()
		if len(tb.Rows) == 0 {
			t.Fatalf("experiment %q produced no rows", tb.Title)
		}
		if !strings.Contains(out, "|") {
			t.Fatalf("experiment %q rendered nothing", tb.Title)
		}
	}
}
