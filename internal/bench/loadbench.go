package bench

// The traffic-scale harness behind `schedbench -load`: where
// BENCH_service.json measures one closed-loop cache regime at a time,
// this drives service.Engine with open-loop traffic — arrivals fire on
// a clock regardless of completions, the regime a service facing
// millions of independent users actually lives in — and writes
// BENCH_load.json: per (arrival process × client concurrency) the
// closed-loop saturation rps, then open-loop p50/p99 latency measured
// from each request's scheduled arrival (queueing included), plus the
// coalescing and cache-hit rates of the singleflight + sharded-cache
// serving stack. A separate contention tier pits the default sharded
// caches against the single-lock oracle layout (CacheShards=1) on a
// result-hit-heavy closed loop, making the lock-layout win a number.
// CheckLoad gates the report in CI.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"treesched/internal/instance"
	"treesched/internal/obs"
	"treesched/internal/online"
	"treesched/internal/scenario"
	"treesched/internal/service"
)

// LoadPair is one component of the traffic mix: a scenario preset, the
// algorithm driven over it, and sized-down parameters so a single solve
// is sub-millisecond-ish — load tests need request counts, not heavy
// individual requests.
type LoadPair struct {
	Scenario string
	Algo     string
	Params   scenario.Params
}

// loadMix is the Zipf-weighted scenario×algorithm population: index 0
// is the hottest. It spans the line path, the tree path, the narrow
// solver and a second tree shape so the compiled cache holds genuinely
// different models.
var loadMix = []LoadPair{
	{"videowall-line", "line-unit", scenario.Params{Demands: 64, Size: 24, Networks: 2}},
	{"caterpillar-backbone", "tree-unit", scenario.Params{Demands: 64, Size: 20, Networks: 2}},
	{"profit-ladder", "tree-unit", scenario.Params{Demands: 48, Size: 24, Networks: 2}},
	{"narrow-stream", "narrow", scenario.Params{Demands: 48, Size: 20, Networks: 2}},
	{"spider-hub", "tree-unit", scenario.Params{Demands: 48, Size: 24, Networks: 2}},
}

// Session-traffic fixture: every session arrival opens a session on
// this preset, resolves, adds one job (a duplicate of demand 0 under a
// fresh ID — same network, so always valid), resolves again through
// the delta path, and closes.
const (
	loadSessionScenario = "caterpillar-backbone"
	loadSessionAlgo     = "tree-unit"
)

var loadSessionParams = scenario.Params{Demands: 48, Size: 20, Networks: 2}

// Arrival process names.
const (
	ArrivalPoisson = "poisson"
	ArrivalBursty  = "bursty"
)

// loadBurstSize is the bursty process's herd width: arrivals land in
// simultaneous groups of this size, and half the groups are "herds" —
// every member asks for the same never-seen problem, the thundering
// herd the singleflight layer exists for.
const loadBurstSize = 8

// loadHotSeeds is the hot scenario-seed population: request keys are
// Zipf-skewed over pair × seed, so a handful of (problem, algorithm)
// keys dominate — the regime where result memoization and the sharded
// hit path carry the service.
const loadHotSeeds = 12

// loadClientLevels are the tracked concurrency levels: closed-loop
// client counts for the saturation columns, kept fixed across
// recorders so entries match between baseline and checker.
var loadClientLevels = []int{4, 16}

// LoadEntry is one measured (arrival process × concurrency) regime.
type LoadEntry struct {
	Arrival string `json:"arrival"`
	// Clients is the closed-loop client count of the saturation phase;
	// the open-loop phase derives its offered rate from that ceiling.
	Clients int `json:"clients"`
	// SessionShare is the configured fraction of arrivals that are
	// dynamic-session interactions instead of stateless solves.
	SessionShare float64 `json:"session_share"`

	// SaturationRPS is closed-loop throughput: Clients goroutines
	// issuing back-to-back from the mix.
	SaturationRPS float64 `json:"saturation_rps"`

	// Open-loop phase: arrivals scheduled at OfferedRPS (a fixed
	// fraction of saturation) fire on the clock whether or not earlier
	// requests finished.
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	Requests    int64   `json:"requests"`
	Completed   int64   `json:"completed"`
	// Shed counts arrivals dropped at the in-flight cap — nonzero means
	// the offered rate outran the service for long enough to pile up
	// maxInFlight outstanding requests.
	Shed   int64 `json:"shed,omitempty"`
	Errors int64 `json:"errors,omitempty"`

	// Latency summarizes request latency (ns) measured from scheduled
	// arrival to completion — open-loop latency, queueing included —
	// on the repo's one quantile implementation (internal/obs).
	Latency obs.Summary `json:"latency"`

	// Serving-stack rates over the open-loop phase (deltas of the
	// engine's own counters divided by completed requests).
	SolvesCoalesced   int64   `json:"solves_coalesced"`
	CompilesCoalesced int64   `json:"compiles_coalesced"`
	CoalescingRate    float64 `json:"coalescing_rate"`
	ResultHitRate     float64 `json:"result_hit_rate"`
	CompiledHitRate   float64 `json:"compiled_hit_rate"`
}

// LoadShardEntry is one contention measurement: the identical
// result-hit-heavy closed loop against the single-lock oracle layout
// (CacheShards=1) and the default sharded layout.
type LoadShardEntry struct {
	Clients int `json:"clients"`
	// Shards is the effective shard count of the sharded column
	// (CacheShards=0 resolved against GOMAXPROCS).
	Shards         int     `json:"shards"`
	SingleShardRPS float64 `json:"single_shard_rps"`
	ShardedRPS     float64 `json:"sharded_rps"`
	// Speedup = ShardedRPS / SingleShardRPS: >1 means the sharded
	// layout measurably reduced lock contention. ~1.0 on a single-core
	// recorder; the CI gate judges it on >=4-core runners only.
	Speedup float64 `json:"speedup"`
}

// LoadRecorderEntry quantifies the flight recorder's serving cost on
// fixed work: per-client arrival schedules are drawn once from the
// saturation mix, then every engine — the pre-recorder oracle
// (DisableRecorder), the serving default (recorder on, span sampling
// off) and the fully traced mode (sample=1) — replays the byte-for-byte
// identical traffic. Repetitions rotate the mode order (so a
// process-level drift never lands on one mode) and each mode keeps its
// best wall clock: min-of-K over identical work is robust against GC
// and scheduler noise that dwarfs the true overhead per sample.
type LoadRecorderEntry struct {
	Clients int `json:"clients"`
	Rounds  int `json:"rounds"`
	// BaselineRPS is the DisableRecorder oracle; RecorderRPS the serving
	// default (sample=0); TracedRPS the sample=1 mode.
	BaselineRPS float64 `json:"baseline_rps"`
	RecorderRPS float64 `json:"recorder_rps"`
	TracedRPS   float64 `json:"traced_rps"`
	// RecorderOverhead/TracedOverhead are the denoised throughput costs
	// vs the baseline (0 = free; 0.03 = 3% slower). RecorderOverhead is
	// the gated number: the default serving configuration must stay
	// within the recorder-overhead tolerance.
	RecorderOverhead float64 `json:"recorder_overhead"`
	TracedOverhead   float64 `json:"traced_overhead"`
}

// LoadReport is the BENCH_load.json document.
type LoadReport struct {
	Note       string `json:"note"`
	Regenerate string `json:"regenerate"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Quick marks a sized-down -quick run (shorter phases; rates and
	// quantiles remain comparable, totals do not).
	Quick           bool                `json:"quick,omitempty"`
	Entries         []LoadEntry         `json:"entries"`
	ShardEntries    []LoadShardEntry    `json:"shard_entries"`
	RecorderEntries []LoadRecorderEntry `json:"recorder_entries"`
}

// arrival is one scheduled request of the open-loop phase.
type arrival struct {
	offset  time.Duration
	run     func(ctx context.Context, e *service.Engine) error
	session bool
}

// loadWorkload owns the deterministic request generators. One instance
// per entry, seeded per (arrival process, clients) so every run of the
// harness replays the same traffic.
type loadWorkload struct {
	rng      *rand.Rand
	pairZipf *rand.Zipf
	seedZipf *rand.Zipf
	coldSeq  int64 // next never-seen scenario seed
	jobSeq   int64 // unique session job ids
	donor    instance.Demand
	sessions float64 // session share of arrivals
}

func newLoadWorkload(seed int64, sessionShare float64) (*loadWorkload, error) {
	s, ok := scenario.Get(loadSessionScenario)
	if !ok {
		return nil, fmt.Errorf("bench: unknown load session scenario %q", loadSessionScenario)
	}
	donorProblem, err := s.Generate(loadSessionParams, 1)
	if err != nil {
		return nil, fmt.Errorf("bench: load session donor: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	return &loadWorkload{
		rng: rng,
		// s=1.4 over the pair population and the hot seed window: the
		// head pair×seed combinations dominate, the tail stays warm.
		pairZipf: rand.NewZipf(rng, 1.4, 1, uint64(len(loadMix)-1)),
		seedZipf: rand.NewZipf(rng, 1.4, 1, uint64(loadHotSeeds-1)),
		coldSeq:  1_000_000, // disjoint from the hot window
		donor:    donorProblem.Demands[0],
		sessions: sessionShare,
	}, nil
}

// solveArrival builds a stateless solve against pair p with the given
// scenario seed.
func solveArrival(p LoadPair, seed int64) arrival {
	req := &service.Request{
		Algo:           p.Algo,
		Scenario:       p.Scenario,
		ScenarioSeed:   seed,
		ScenarioParams: p.Params,
	}
	return arrival{run: func(ctx context.Context, e *service.Engine) error {
		_, err := e.Solve(ctx, req)
		return err
	}}
}

// sessionArrival builds one full session interaction: open, resolve,
// add one job, delta-resolve, close.
func (w *loadWorkload) sessionArrival() arrival {
	jobID := 10_000_000 + atomic.AddInt64(&w.jobSeq, 1)
	donor := w.donor
	return arrival{session: true, run: func(ctx context.Context, e *service.Engine) error {
		info, err := e.OpenSession(&service.SessionRequest{
			Algo:           loadSessionAlgo,
			Scenario:       loadSessionScenario,
			ScenarioSeed:   1,
			ScenarioParams: loadSessionParams,
		})
		if err != nil {
			return err
		}
		if _, err := e.SessionEvents(ctx, info.SessionID, []online.Event{{Op: online.OpResolve}}); err != nil {
			return sessionLoadErr(err)
		}
		if _, err := e.SessionEvents(ctx, info.SessionID, []online.Event{
			{Op: online.OpAdd, Job: &online.Job{ID: jobID, Demand: donor}},
			{Op: online.OpResolve},
		}); err != nil {
			return sessionLoadErr(err)
		}
		if err := e.CloseSession(info.SessionID); err != nil {
			return sessionLoadErr(err)
		}
		return nil
	}}
}

// sessionLoadErr tolerates LRU/idle eviction racing a load-generator
// session: an evicted session is correct engine behavior under
// pressure, not a workload failure.
func sessionLoadErr(err error) error {
	if errors.Is(err, service.ErrSessionNotFound) {
		return nil
	}
	return err
}

// hotArrival draws a Zipf-weighted (pair, hot seed) solve.
func (w *loadWorkload) hotArrival() arrival {
	p := loadMix[w.pairZipf.Uint64()]
	return solveArrival(p, int64(w.seedZipf.Uint64())+1)
}

// coldArrival draws a never-before-seen problem on a Zipf pair.
func (w *loadWorkload) coldArrival() arrival {
	p := loadMix[w.pairZipf.Uint64()]
	w.coldSeq++
	return solveArrival(p, w.coldSeq)
}

// drawClosed draws one closed-loop (saturation) arrival: the hot mix
// plus the configured session share, with a thin cold stream so the
// compiled path stays exercised.
func (w *loadWorkload) drawClosed() arrival {
	r := w.rng.Float64()
	switch {
	case r < w.sessions:
		return w.sessionArrival()
	case r < w.sessions+0.05:
		return w.coldArrival()
	default:
		return w.hotArrival()
	}
}

// poissonSchedule lays out n arrivals with exponential inter-arrival
// gaps at the offered rate: hot mix + session share + a thin
// independent cold stream.
func (w *loadWorkload) poissonSchedule(n int, offeredRPS float64) []arrival {
	sched := make([]arrival, 0, n)
	var t float64 // seconds
	for i := 0; i < n; i++ {
		t += w.rng.ExpFloat64() / offeredRPS
		// Same mix proportions as the saturation phase: the offered rate
		// is derived from that ceiling, so the open-loop traffic must
		// cost the same per request on average.
		a := w.drawClosed()
		a.offset = time.Duration(t * float64(time.Second))
		sched = append(sched, a)
	}
	return sched
}

// burstySchedule lays out n arrivals in simultaneous bursts of
// loadBurstSize with exponential gaps between bursts (burst starts are
// Poisson at rate offered/burstSize, so the mean rate matches). Half
// the bursts are coalescing herds: every member requests the same
// fresh problem.
func (w *loadWorkload) burstySchedule(n int, offeredRPS float64) []arrival {
	sched := make([]arrival, 0, n)
	var t float64
	for len(sched) < n {
		t += w.rng.ExpFloat64() * float64(loadBurstSize) / offeredRPS
		offset := time.Duration(t * float64(time.Second))
		herd := w.rng.Float64() < 0.5
		var herdArrival arrival
		if herd {
			herdArrival = w.coldArrival()
		}
		for b := 0; b < loadBurstSize && len(sched) < n; b++ {
			var a arrival
			switch {
			case herd:
				a = herdArrival // identical request, same instant
			case w.rng.Float64() < w.sessions*2:
				// Sessions keep their share: they only appear in
				// non-herd bursts, which are half the arrivals.
				a = w.sessionArrival()
			default:
				a = w.hotArrival()
			}
			a.offset = offset
			sched = append(sched, a)
		}
	}
	return sched
}

// loadEngine builds the engine under test. CompileWorkers=1 keeps each
// request's cost flat (no intra-request fan-out competing with the
// load's own concurrency); everything else is the serving default.
func loadEngine(cacheShards int) *service.Engine {
	return service.New(service.Config{
		CompileWorkers: 1,
		CacheShards:    cacheShards,
		MaxSessions:    512,
	})
}

// Recorder configurations of the overhead tier.
const (
	recModeOff    = "off"    // DisableRecorder: the pre-recorder oracle
	recModeOn     = "on"     // recorder on, span sampling off (serving default)
	recModeTraced = "traced" // sample=1: every request records its span timeline
)

// loadEngineRecorder is loadEngine with the recorder configuration of
// the overhead tier's mode.
func loadEngineRecorder(mode string) *service.Engine {
	cfg := service.Config{CompileWorkers: 1, MaxSessions: 512}
	switch mode {
	case recModeOff:
		cfg.DisableRecorder = true
	case recModeTraced:
		cfg.TraceSample = 1
	}
	return service.New(cfg)
}

// saturate measures closed-loop throughput: clients goroutines issuing
// back-to-back from per-client deterministic schedules. The first
// third of dur is an unmeasured warmup (caches fill, the scheduler
// settles) so the measured window reflects steady state — the offered
// open-loop rate is derived from this number, so its variance feeds
// straight into shed/latency noise.
func saturate(e *service.Engine, clients int, dur time.Duration, sessionShare float64, seed int64) (rps float64, err error) {
	ctx := context.Background()
	var total, errs atomic.Int64
	warmupOver := time.Now().Add(dur / 3)
	deadline := warmupOver.Add(dur)
	var wg sync.WaitGroup
	workloads := make([]*loadWorkload, clients)
	for i := range workloads {
		if workloads[i], err = newLoadWorkload(seed+int64(i)*7919, sessionShare); err != nil {
			return 0, err
		}
	}
	var begin atomic.Int64 // ns; set once by the first goroutine past warmup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(w *loadWorkload) {
			defer wg.Done()
			for {
				now := time.Now()
				if now.After(deadline) {
					return
				}
				measured := now.After(warmupOver)
				if measured {
					begin.CompareAndSwap(0, now.UnixNano())
				}
				if e := w.drawClosed().run(ctx, e); e != nil {
					errs.Add(1)
				}
				if measured {
					total.Add(1)
				}
			}
		}(workloads[i])
	}
	wg.Wait()
	if n := errs.Load(); n > 0 {
		return 0, fmt.Errorf("bench: %d saturation requests failed", n)
	}
	elapsed := float64(time.Now().UnixNano()-begin.Load()) / 1e9
	if elapsed <= 0 {
		return 0, fmt.Errorf("bench: empty saturation window")
	}
	return float64(total.Load()) / elapsed, nil
}

// maxInFlight caps outstanding open-loop requests; arrivals beyond it
// are shed (counted, never silently dropped) so a saturated run
// degrades like a real service with admission control instead of
// exhausting memory.
const maxInFlight = 512

// runOpenLoop dispatches the schedule on the clock and measures each
// request from its scheduled arrival to completion.
func runOpenLoop(e *service.Engine, sched []arrival) (hist *obs.Histogram, completed, shed, errs int64) {
	ctx := context.Background()
	hist = new(obs.Histogram)
	var completedA, shedA, errsA atomic.Int64
	sem := make(chan struct{}, maxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range sched {
		a := &sched[i]
		due := start.Add(a.offset)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		select {
		case sem <- struct{}{}:
		default:
			shedA.Add(1)
			continue
		}
		wg.Add(1)
		go func(a *arrival, due time.Time) {
			defer wg.Done()
			defer func() { <-sem }()
			err := a.run(ctx, e)
			hist.Observe(time.Since(due).Nanoseconds())
			completedA.Add(1)
			if err != nil {
				errsA.Add(1)
			}
		}(a, due)
	}
	wg.Wait()
	return hist, completedA.Load(), shedA.Load(), errsA.Load()
}

// loadPhases are the per-phase durations, shrunk by -quick.
type loadPhases struct {
	saturate time.Duration
	openLoop time.Duration
	maxReqs  int
}

func phasesFor(quick bool) loadPhases {
	if quick {
		return loadPhases{saturate: 350 * time.Millisecond, openLoop: 900 * time.Millisecond, maxReqs: 12_000}
	}
	return loadPhases{saturate: 1500 * time.Millisecond, openLoop: 3 * time.Second, maxReqs: 60_000}
}

// openLoopLoadFactor is the offered-rate fraction of measured
// saturation: high enough that queueing is real (p99 >> p50), low
// enough that an open-loop run converges instead of diverging.
const openLoopLoadFactor = 0.5

// loadSessionShare is the default sessions-vs-solves ratio of the
// tracked entries.
const loadSessionShare = 0.05

// measureLoadEntry runs one (arrival × clients) regime end to end on a
// fresh engine.
func measureLoadEntry(arrivalProc string, clients int, ph loadPhases, quick bool) (*LoadEntry, error) {
	e := loadEngine(0)
	defer e.Close()
	entry := &LoadEntry{Arrival: arrivalProc, Clients: clients, SessionShare: loadSessionShare}

	// Phase 1: closed-loop saturation (also warms the hot mix into the
	// caches, exactly what a steady-state service looks like).
	sat, err := saturate(e, clients, ph.saturate, loadSessionShare, 20_000+int64(clients))
	if err != nil {
		return nil, fmt.Errorf("bench: %s/%d: %v", arrivalProc, clients, err)
	}
	entry.SaturationRPS = sat

	// Phase 2: open loop at a fixed fraction of that ceiling.
	offered := sat * openLoopLoadFactor
	if offered < 1 {
		offered = 1
	}
	n := int(offered * ph.openLoop.Seconds())
	if n > ph.maxReqs {
		n = ph.maxReqs
	}
	if n < 64 {
		n = 64
	}
	w, err := newLoadWorkload(30_000+int64(clients), loadSessionShare)
	if err != nil {
		return nil, err
	}
	var sched []arrival
	switch arrivalProc {
	case ArrivalPoisson:
		sched = w.poissonSchedule(n, offered)
	case ArrivalBursty:
		sched = w.burstySchedule(n, offered)
	default:
		return nil, fmt.Errorf("bench: unknown arrival process %q", arrivalProc)
	}

	before := e.Metrics()
	beginOpen := time.Now()
	hist, completed, shed, errCount := runOpenLoop(e, sched)
	elapsed := time.Since(beginOpen).Seconds()
	after := e.Metrics()

	entry.OfferedRPS = offered
	entry.Requests = int64(len(sched))
	entry.Completed = completed
	entry.Shed = shed
	entry.Errors = errCount
	if elapsed > 0 {
		entry.AchievedRPS = float64(completed) / elapsed
	}
	entry.Latency = hist.Summarize()
	entry.SolvesCoalesced = after.SolvesCoalesced - before.SolvesCoalesced
	entry.CompilesCoalesced = after.CompilesCoalesced - before.CompilesCoalesced
	if completed > 0 {
		entry.CoalescingRate = float64(entry.SolvesCoalesced) / float64(completed)
		entry.ResultHitRate = float64(after.ResultHits-before.ResultHits) / float64(completed)
		entry.CompiledHitRate = clampRate(float64(after.CompiledHits-before.CompiledHits) / float64(after.CompiledHits-before.CompiledHits+after.CompiledMisses-before.CompiledMisses))
	}
	return entry, nil
}

func clampRate(r float64) float64 {
	if r != r { // NaN: no observations
		return 0
	}
	return r
}

// measureRecorderEntry runs the recorder-overhead tier: rounds of the
// mixed closed loop alternating between the three recorder
// configurations on paired seeds (each round's three engines replay
// identical traffic).
func measureRecorderEntry(clients int, ph loadPhases, quick bool) (*LoadRecorderEntry, error) {
	reps, perClient := 4, 4000
	if quick {
		reps, perClient = 2, 600
	}
	// Pre-draw deterministic per-client schedules once; every engine in
	// every repetition replays exactly this traffic. Session job ids and
	// cold seeds are fixed at draw time, so "identical" holds
	// byte-for-byte across engines.
	scheds := make([][]arrival, clients)
	for i := range scheds {
		w, err := newLoadWorkload(50_000+int64(clients)+int64(i)*7919, loadSessionShare)
		if err != nil {
			return nil, err
		}
		sched := make([]arrival, perClient)
		for j := range sched {
			sched[j] = w.drawClosed()
		}
		scheds[i] = sched
	}
	total := clients * perClient
	modes := []string{recModeOff, recModeOn, recModeTraced}
	bestRPS := make(map[string]float64, len(modes))
	for rep := 0; rep < reps; rep++ {
		for mi := range modes {
			mode := modes[(rep+mi)%len(modes)] // rotate order so drift never lands on one mode
			e := loadEngineRecorder(mode)
			wall, err := replayFixed(e, scheds)
			e.Close()
			if err != nil {
				return nil, fmt.Errorf("bench: recorder/%s rep %d: %v", mode, rep, err)
			}
			if rps := float64(total) / wall.Seconds(); rps > bestRPS[mode] {
				bestRPS[mode] = rps
			}
		}
	}
	overhead := func(v float64) float64 {
		base := bestRPS[recModeOff]
		if base <= 0 {
			return 0
		}
		o := 1 - v/base
		if o < 0 {
			return 0
		}
		return o
	}
	return &LoadRecorderEntry{
		Clients:          clients,
		Rounds:           reps,
		BaselineRPS:      bestRPS[recModeOff],
		RecorderRPS:      bestRPS[recModeOn],
		TracedRPS:        bestRPS[recModeTraced],
		RecorderOverhead: overhead(bestRPS[recModeOn]),
		TracedOverhead:   overhead(bestRPS[recModeTraced]),
	}, nil
}

// replayFixed runs every pre-drawn client schedule to completion on e
// and returns the wall clock of the whole fixed workload.
func replayFixed(e *service.Engine, scheds [][]arrival) (time.Duration, error) {
	ctx := context.Background()
	var errs atomic.Int64
	var wg sync.WaitGroup
	begin := time.Now()
	for _, sched := range scheds {
		wg.Add(1)
		go func(sched []arrival) {
			defer wg.Done()
			for _, a := range sched {
				if a.run(ctx, e) != nil {
					errs.Add(1)
				}
			}
		}(sched)
	}
	wg.Wait()
	wall := time.Since(begin)
	if n := errs.Load(); n > 0 {
		return 0, fmt.Errorf("%d requests failed", n)
	}
	return wall, nil
}

// shardContentionRPS measures the result-hit-heavy closed loop on an
// engine with the given shard layout: hot keys are prewarmed, then
// clients hammer cache hits — the regime where the cache lock is the
// entire hot path.
func shardContentionRPS(cacheShards, clients int, dur time.Duration) (rps float64, shards int, err error) {
	e := loadEngine(cacheShards)
	defer e.Close()
	shards = e.Metrics().CacheShards

	// Prewarm every hot (pair, seed) key once, serially.
	ctx := context.Background()
	var reqs []*service.Request
	for pi := range loadMix {
		p := loadMix[pi]
		for seed := int64(1); seed <= loadHotSeeds; seed++ {
			req := &service.Request{Algo: p.Algo, Scenario: p.Scenario, ScenarioSeed: seed, ScenarioParams: p.Params}
			if _, err := e.Solve(ctx, req); err != nil {
				return 0, shards, fmt.Errorf("bench: shard prewarm %s/%d: %v", p.Scenario, seed, err)
			}
			reqs = append(reqs, req)
		}
	}

	var total, errs atomic.Int64
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	begin := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				req := reqs[rng.Intn(len(reqs))]
				if _, err := e.Solve(ctx, req); err != nil {
					errs.Add(1)
				}
				total.Add(1)
			}
		}(int64(40_000 + c))
	}
	wg.Wait()
	elapsed := time.Since(begin).Seconds()
	if n := errs.Load(); n > 0 {
		return 0, shards, fmt.Errorf("bench: %d shard-contention requests failed", n)
	}
	return float64(total.Load()) / elapsed, shards, nil
}

// LoadBench measures every tracked regime and assembles the report.
func LoadBench(quick bool) (*LoadReport, error) {
	ph := phasesFor(quick)
	report := &LoadReport{
		Note: "open-loop traffic through internal/service: per (arrival process x clients), " +
			"closed-loop saturation rps, then open-loop latency at " +
			fmt.Sprintf("%.0f%%", openLoopLoadFactor*100) + " of saturation measured from scheduled " +
			"arrival (queueing included), with singleflight coalescing and cache-hit rates; " +
			"shard_entries = the same hit-heavy closed loop on single-lock vs sharded caches " +
			"(speedup gates apply only on >=4-core runners); recorder_entries = the mixed closed " +
			"loop with the flight recorder off / on (sample=0, the serving default) / fully traced " +
			"(sample=1), gated on the serving default's overhead",
		Regenerate: "go run ./cmd/schedbench -load -o BENCH_load.json",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
	}
	for _, arrivalProc := range []string{ArrivalPoisson, ArrivalBursty} {
		for _, clients := range loadClientLevels {
			entry, err := measureLoadEntry(arrivalProc, clients, ph, quick)
			if err != nil {
				return nil, err
			}
			report.Entries = append(report.Entries, *entry)
		}
	}

	contentionClients := loadClientLevels[len(loadClientLevels)-1]
	single, _, err := shardContentionRPS(1, contentionClients, ph.saturate)
	if err != nil {
		return nil, err
	}
	sharded, shards, err := shardContentionRPS(0, contentionClients, ph.saturate)
	if err != nil {
		return nil, err
	}
	se := LoadShardEntry{Clients: contentionClients, Shards: shards, SingleShardRPS: single, ShardedRPS: sharded}
	if single > 0 {
		se.Speedup = sharded / single
	}
	report.ShardEntries = append(report.ShardEntries, se)

	re, err := measureRecorderEntry(contentionClients, ph, quick)
	if err != nil {
		return nil, err
	}
	report.RecorderEntries = append(report.RecorderEntries, *re)
	return report, nil
}

// Load-gate tolerances. The latency/saturation gates compare against
// the committed baseline only when GOMAXPROCS matches it (same class
// of runner — the BENCH_core convention); a mismatched runner still
// gets the full structural sanity gate.
const (
	// loadRegressionTol is the p99/saturation regression budget vs the
	// baseline: fail beyond 25% worse.
	loadRegressionTol = 0.25
	// minShardSpeedup is the contention floor on >=scaleGateProcs-core
	// runners: the sharded layout must beat the single lock by at least
	// this factor on the hit-heavy loop.
	minShardSpeedup = 1.1
	// recorderOverheadTol / recorderOverheadTolQuick cap the serving
	// default's (recorder on, sampling off) denoised throughput cost vs
	// the DisableRecorder oracle. The gate is a within-run ratio, so it
	// applies on every runner; the quick tolerance is loose because
	// sub-second windows carry real scheduler noise.
	recorderOverheadTol      = 0.03
	recorderOverheadTolQuick = 0.25
)

// CheckLoad validates a fresh report and compares it against the
// checked-in baseline, returning an error on sanity or regression
// failures.
func CheckLoad(current, baseline *LoadReport) error {
	var failures []string

	// Structural sanity: the acceptance shape of the report.
	arrivals, levels := map[string]bool{}, map[int]bool{}
	for i := range current.Entries {
		e := &current.Entries[i]
		arrivals[e.Arrival] = true
		levels[e.Clients] = true
		id := fmt.Sprintf("%s/%d", e.Arrival, e.Clients)
		if e.Completed <= 0 {
			failures = append(failures, id+": no completed requests")
		}
		if e.Errors > 0 {
			failures = append(failures, fmt.Sprintf("%s: %d request errors", id, e.Errors))
		}
		if e.SaturationRPS <= 0 || e.AchievedRPS <= 0 {
			failures = append(failures, id+": non-positive throughput")
		}
		if e.Latency.P50Ns <= 0 || e.Latency.P99Ns < e.Latency.P50Ns {
			failures = append(failures, fmt.Sprintf("%s: implausible latency quantiles p50=%d p99=%d",
				id, e.Latency.P50Ns, e.Latency.P99Ns))
		}
		for _, r := range []struct {
			name string
			v    float64
		}{{"coalescing_rate", e.CoalescingRate}, {"result_hit_rate", e.ResultHitRate}, {"compiled_hit_rate", e.CompiledHitRate}} {
			if r.v < 0 || r.v > 1 {
				failures = append(failures, fmt.Sprintf("%s: %s %g outside [0,1]", id, r.name, r.v))
			}
		}
		// Bursty herds coalesce whenever two requests can genuinely
		// overlap; a single-core recorder serializes goroutines and may
		// legitimately record ~0.
		if e.Arrival == ArrivalBursty && current.GOMAXPROCS >= 2 && e.SolvesCoalesced == 0 {
			failures = append(failures, id+": bursty herds produced zero coalesced solves on a multicore runner")
		}
	}
	if len(arrivals) < 2 || len(levels) < 2 {
		failures = append(failures, fmt.Sprintf(
			"report covers %d arrival processes x %d concurrency levels, want >=2x2", len(arrivals), len(levels)))
	}
	if len(current.ShardEntries) == 0 {
		failures = append(failures, "report has no shard-contention entries")
	}
	if len(current.RecorderEntries) == 0 {
		failures = append(failures, "report has no recorder-overhead entries")
	}
	recTol := recorderOverheadTol
	if current.Quick {
		recTol = recorderOverheadTolQuick
	}
	for _, re := range current.RecorderEntries {
		id := fmt.Sprintf("recorder/%d clients", re.Clients)
		if re.BaselineRPS <= 0 || re.RecorderRPS <= 0 || re.TracedRPS <= 0 {
			failures = append(failures, id+": non-positive throughput")
		}
		if re.RecorderOverhead > recTol {
			failures = append(failures, fmt.Sprintf(
				"%s: recorder overhead %.1f%% vs the DisableRecorder oracle (> allowed %.1f%%)",
				id, re.RecorderOverhead*100, recTol*100))
		}
	}
	for _, se := range current.ShardEntries {
		if se.SingleShardRPS <= 0 || se.ShardedRPS <= 0 {
			failures = append(failures, fmt.Sprintf("shards/%d clients: non-positive throughput", se.Clients))
		}
		if se.Shards < 2 {
			failures = append(failures, fmt.Sprintf("shards/%d clients: sharded column ran with %d shards", se.Clients, se.Shards))
		}
	}

	// Regression gates vs the baseline, keyed on GOMAXPROCS like the
	// BENCH_core speedup gates (cross-machine wall-clock comparisons
	// carry no signal) and on matching workload size (a -quick run's
	// shorter windows are not comparable to a full recording — the
	// BENCH_core convention).
	if baseline != nil && current.GOMAXPROCS == baseline.GOMAXPROCS && current.Quick == baseline.Quick {
		base := make(map[string]*LoadEntry, len(baseline.Entries))
		for i := range baseline.Entries {
			b := &baseline.Entries[i]
			base[fmt.Sprintf("%s/%d", b.Arrival, b.Clients)] = b
		}
		for i := range current.Entries {
			e := &current.Entries[i]
			id := fmt.Sprintf("%s/%d", e.Arrival, e.Clients)
			want := base[id]
			if want == nil {
				continue
			}
			if want.SaturationRPS > 0 && e.SaturationRPS < want.SaturationRPS*(1-loadRegressionTol) {
				failures = append(failures, fmt.Sprintf(
					"%s: saturation %.0f rps vs baseline %.0f (more than %.0f%% down)",
					id, e.SaturationRPS, want.SaturationRPS, loadRegressionTol*100))
			}
			if want.Latency.P99Ns > 0 && float64(e.Latency.P99Ns) > float64(want.Latency.P99Ns)*(1+loadRegressionTol) {
				failures = append(failures, fmt.Sprintf(
					"%s: p99 %.2fms vs baseline %.2fms (more than %.0f%% up)",
					id, float64(e.Latency.P99Ns)/1e6, float64(want.Latency.P99Ns)/1e6, loadRegressionTol*100))
			}
		}
	}

	// Shard-contention gate: only meaningful with real parallelism.
	if current.GOMAXPROCS >= scaleGateProcs {
		best := 0.0
		for _, se := range current.ShardEntries {
			if se.Speedup > best {
				best = se.Speedup
			}
		}
		if best < minShardSpeedup {
			failures = append(failures, fmt.Sprintf(
				"sharded caches: best contention speedup %.2fx on %d cores (< required %.2fx vs single lock)",
				best, current.GOMAXPROCS, minShardSpeedup))
		}
		if baseline != nil && baseline.GOMAXPROCS >= scaleGateProcs {
			baseBest := 0.0
			for _, se := range baseline.ShardEntries {
				if se.Speedup > baseBest {
					baseBest = se.Speedup
				}
			}
			if baseBest > 0 && best < baseBest*0.75 {
				failures = append(failures, fmt.Sprintf(
					"sharded caches: contention speedup %.2fx vs baseline %.2fx (< 0.75x of baseline)", best, baseBest))
			}
		}
	}

	if len(failures) > 0 {
		return fmt.Errorf("bench: load gate failed against BENCH_load.json:\n  %s",
			strings.Join(failures, "\n  "))
	}
	return nil
}
