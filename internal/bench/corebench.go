package bench

// The cold-path benchmark behind `schedbench -core`: BENCH_service.json
// tracks the serving layer per cache regime, this harness tracks the
// solver itself — ns/solve and allocs/solve per scenario×algorithm pair,
// cold (fresh compilation per solve, the regime a service facing millions
// of distinct problems lives in) and warm (compiled model reused, the
// pooled-scratch steady state). The checked-in BENCH_core.json anchors
// the perf trajectory; CheckCore guards it in CI.

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"treesched/internal/core"
	"treesched/internal/scenario"
)

// CorePair is one tracked (scenario, algorithm) combination.
type CorePair struct {
	Scenario string
	Algo     string
}

// CorePairs lists the tracked combinations: the two acceptance workloads
// of the CSR/incremental refactor (videowall-line/line-unit,
// capacitated-tree/arbitrary) plus one plain tree run, one narrow run and
// one distributed run for breadth.
var CorePairs = []CorePair{
	{"videowall-line", "line-unit"},
	{"caterpillar-backbone", "tree-unit"},
	{"narrow-stream", "narrow"},
	{"capacitated-tree", "arbitrary"},
	{"binary-fanout", "dist-unit"},
}

// preRefactorColdNs is the cold ns/solve of each tracked pair measured
// with this exact harness immediately before the CSR + incremental-Phase1
// refactor (commit 19ef5e0, the PR 2 solver; best of two runs, GOMAXPROCS=1).
// It is the fixed anchor the speedup columns are computed against; do not
// remeasure it.
var preRefactorColdNs = map[string]float64{
	"videowall-line/line-unit":       1712860,
	"caterpillar-backbone/tree-unit": 169652,
	"narrow-stream/narrow":           433288,
	"capacitated-tree/arbitrary":     503787,
	"binary-fanout/dist-unit":        2793619,
}

// CoreEntry is the measured cost of one pair.
type CoreEntry struct {
	Scenario string `json:"scenario"`
	Algo     string `json:"algo"`
	// Cold: core.Compile + solve per iteration — every request is a new
	// problem, nothing reused.
	ColdNsPerSolve     float64 `json:"cold_ns_per_solve"`
	ColdAllocsPerSolve float64 `json:"cold_allocs_per_solve"`
	// Warm: one Compiled reused across iterations — compilation and
	// conflict structures cached, solver scratch pooled.
	WarmNsPerSolve     float64 `json:"warm_ns_per_solve"`
	WarmAllocsPerSolve float64 `json:"warm_allocs_per_solve"`
	// SpeedupVsPreRefactor is preRefactorColdNs / ColdNsPerSolve (0 when
	// the pair has no recorded anchor).
	SpeedupVsPreRefactor float64 `json:"speedup_vs_pre_refactor,omitempty"`
}

// Key returns the "scenario/algo" identifier used by the anchor map and
// the regression checker.
func (e *CoreEntry) Key() string { return e.Scenario + "/" + e.Algo }

// CoreReport is the BENCH_core.json document.
type CoreReport struct {
	Note              string             `json:"note"`
	Regenerate        string             `json:"regenerate"`
	GoVersion         string             `json:"go_version"`
	GOMAXPROCS        int                `json:"gomaxprocs"`
	PreRefactorColdNs map[string]float64 `json:"pre_refactor_cold_ns_per_solve,omitempty"`
	Entries           []CoreEntry        `json:"entries"`
}

// coreSolve dispatches one solve on a compiled problem. It mirrors the
// service registry for the tracked algorithms only; options are fixed so
// every measurement exercises the identical deterministic run.
func coreSolve(c *core.Compiled, algo string) error {
	opts := core.Options{Seed: 1}
	var err error
	switch algo {
	case "tree-unit":
		_, err = c.TreeUnit(opts)
	case "line-unit":
		_, err = c.LineUnit(opts)
	case "narrow":
		_, err = c.NarrowOnly(opts)
	case "arbitrary":
		_, err = c.Arbitrary(opts)
	case "dist-unit":
		_, err = c.DistributedUnit(opts)
	default:
		err = fmt.Errorf("bench: untracked core algo %q", algo)
	}
	return err
}

// measure runs fn repeatedly until targetDur of work is observed (after
// one calibration call) and returns ns/iteration and allocs/iteration.
func measure(targetDur time.Duration, fn func() error) (nsPerOp, allocsPerOp float64, err error) {
	// Calibration pass — also warms lazily-built state out of warm
	// measurements and pages code in for cold ones.
	begin := time.Now()
	if err := fn(); err != nil {
		return 0, 0, err
	}
	once := time.Since(begin)
	iters := 1
	if once < targetDur {
		iters = int(targetDur/once) + 1
	}
	if iters > 20000 {
		iters = 20000
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	begin = time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(begin)
	runtime.ReadMemStats(&after)
	nsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
	allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(iters)
	return nsPerOp, allocsPerOp, nil
}

// CoreBench measures every tracked pair and assembles the report. Quick
// shrinks the per-measurement time budget (CI smoke); the checked-in
// baseline should be regenerated without it.
func CoreBench(quick bool) (*CoreReport, error) {
	target := 400 * time.Millisecond
	if quick {
		target = 60 * time.Millisecond
	}
	report := &CoreReport{
		Note: "solver cold path: ns/solve and allocs/solve per scenario×algo; " +
			"cold = fresh core.Compile per solve, warm = one Compiled reused " +
			"(cached conflict structures + pooled scratch); speedups are " +
			"against the fixed pre-refactor anchor",
		Regenerate:        "go run ./cmd/schedbench -core -o BENCH_core.json",
		GoVersion:         runtime.Version(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		PreRefactorColdNs: preRefactorColdNs,
	}
	for _, pair := range CorePairs {
		s, ok := scenario.Get(pair.Scenario)
		if !ok {
			return nil, fmt.Errorf("bench: unknown scenario %q", pair.Scenario)
		}
		p, err := s.Generate(scenario.Params{}, 1)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %v", pair.Scenario, err)
		}
		entry := CoreEntry{Scenario: pair.Scenario, Algo: pair.Algo}

		entry.ColdNsPerSolve, entry.ColdAllocsPerSolve, err = measure(target, func() error {
			c, err := core.Compile(p, 0)
			if err != nil {
				return err
			}
			return coreSolve(c, pair.Algo)
		})
		if err != nil {
			return nil, fmt.Errorf("bench: %s/%s cold: %v", pair.Scenario, pair.Algo, err)
		}

		warmC, err := core.Compile(p, 0)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %v", pair.Scenario, err)
		}
		entry.WarmNsPerSolve, entry.WarmAllocsPerSolve, err = measure(target, func() error {
			return coreSolve(warmC, pair.Algo)
		})
		if err != nil {
			return nil, fmt.Errorf("bench: %s/%s warm: %v", pair.Scenario, pair.Algo, err)
		}

		if anchor := preRefactorColdNs[entry.Key()]; anchor > 0 && entry.ColdNsPerSolve > 0 {
			entry.SpeedupVsPreRefactor = anchor / entry.ColdNsPerSolve
		}
		report.Entries = append(report.Entries, entry)
	}
	return report, nil
}

// nsCatastropheFactor is the wall-clock backstop multiplier of
// CheckCore: ns/solve is only compared loosely because the baseline was
// recorded on different hardware than the checker runs on (a CI runner
// 30% slower than the baseline machine is not a code regression).
// Allocation counts are hardware-independent, so they carry the strict
// gate.
const nsCatastropheFactor = 4.0

// CheckCore compares a fresh measurement against the checked-in baseline
// and errors when any pair's cold path regressed: allocs/solve above
// (1+tolerance)× the recorded value (e.g. 0.25 = fail above 1.25×), or
// ns/solve beyond the catastrophic nsCatastropheFactor backstop. Pairs
// present in only one report are ignored so the tracked set can evolve.
func CheckCore(current, baseline *CoreReport, tolerance float64) error {
	base := make(map[string]*CoreEntry, len(baseline.Entries))
	for i := range baseline.Entries {
		base[baseline.Entries[i].Key()] = &baseline.Entries[i]
	}
	var failures []string
	for i := range current.Entries {
		e := &current.Entries[i]
		want := base[e.Key()]
		if want == nil {
			continue
		}
		if want.ColdAllocsPerSolve > 0 && e.ColdAllocsPerSolve > want.ColdAllocsPerSolve*(1+tolerance) {
			failures = append(failures, fmt.Sprintf(
				"%s: cold %.0f allocs/solve vs baseline %.0f (%.2fx > allowed %.2fx)",
				e.Key(), e.ColdAllocsPerSolve, want.ColdAllocsPerSolve,
				e.ColdAllocsPerSolve/want.ColdAllocsPerSolve, 1+tolerance))
		}
		if want.ColdNsPerSolve > 0 && e.ColdNsPerSolve > want.ColdNsPerSolve*nsCatastropheFactor {
			failures = append(failures, fmt.Sprintf(
				"%s: cold %.0f ns/solve vs baseline %.0f (%.2fx > catastrophic %gx backstop)",
				e.Key(), e.ColdNsPerSolve, want.ColdNsPerSolve,
				e.ColdNsPerSolve/want.ColdNsPerSolve, nsCatastropheFactor))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: cold-path regression against BENCH_core.json:\n  %s",
			strings.Join(failures, "\n  "))
	}
	return nil
}
