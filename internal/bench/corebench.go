package bench

// The cold-path benchmark behind `schedbench -core`: BENCH_service.json
// tracks the serving layer per cache regime, this harness tracks the
// solver itself — ns/solve and allocs/solve per scenario×algorithm pair,
// cold (fresh compilation per solve, the regime a service facing millions
// of distinct problems lives in) and warm (compiled model reused, the
// pooled-scratch steady state). The checked-in BENCH_core.json anchors
// the perf trajectory; CheckCore guards it in CI.

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"treesched/internal/core"
	"treesched/internal/instance"
	"treesched/internal/model"
	"treesched/internal/obs"
	"treesched/internal/scenario"
)

// CorePair is one tracked (scenario, algorithm) combination.
type CorePair struct {
	Scenario string
	Algo     string
}

// CorePairs lists the tracked combinations: the two acceptance workloads
// of the CSR/incremental refactor (videowall-line/line-unit,
// capacitated-tree/arbitrary) plus one plain tree run, one narrow run and
// one distributed run for breadth.
var CorePairs = []CorePair{
	{"videowall-line", "line-unit"},
	{"caterpillar-backbone", "tree-unit"},
	{"narrow-stream", "narrow"},
	{"capacitated-tree", "arbitrary"},
	{"binary-fanout", "dist-unit"},
}

// preRefactorColdNs is the cold ns/solve of each tracked pair measured
// with this exact harness immediately before the CSR + incremental-Phase1
// refactor (commit 19ef5e0, the PR 2 solver; best of two runs, GOMAXPROCS=1).
// It is the fixed anchor the speedup columns are computed against; do not
// remeasure it.
var preRefactorColdNs = map[string]float64{
	"videowall-line/line-unit":       1712860,
	"caterpillar-backbone/tree-unit": 169652,
	"narrow-stream/narrow":           433288,
	"capacitated-tree/arbitrary":     503787,
	"binary-fanout/dist-unit":        2793619,
}

// CoreEntry is the measured cost of one pair.
type CoreEntry struct {
	Scenario string `json:"scenario"`
	Algo     string `json:"algo"`
	// Cold: core.Compile + solve per iteration — every request is a new
	// problem, nothing reused.
	ColdNsPerSolve     float64 `json:"cold_ns_per_solve"`
	ColdAllocsPerSolve float64 `json:"cold_allocs_per_solve"`
	// Warm: one Compiled reused across iterations — compilation and
	// conflict structures cached, solver scratch pooled.
	WarmNsPerSolve     float64 `json:"warm_ns_per_solve"`
	WarmAllocsPerSolve float64 `json:"warm_allocs_per_solve"`
	// SpeedupVsPreRefactor is preRefactorColdNs / ColdNsPerSolve (0 when
	// the pair has no recorded anchor).
	SpeedupVsPreRefactor float64 `json:"speedup_vs_pre_refactor,omitempty"`
}

// Key returns the "scenario/algo" identifier used by the anchor map and
// the regression checker.
func (e *CoreEntry) Key() string { return e.Scenario + "/" + e.Algo }

// CoreReport is the BENCH_core.json document.
type CoreReport struct {
	Note              string             `json:"note"`
	Regenerate        string             `json:"regenerate"`
	GoVersion         string             `json:"go_version"`
	GOMAXPROCS        int                `json:"gomaxprocs"`
	PreRefactorColdNs map[string]float64 `json:"pre_refactor_cold_ns_per_solve,omitempty"`
	Entries           []CoreEntry        `json:"entries"`
	// ScaleEntries tracks the parallel-compile tier: serial vs full-width
	// cold model builds with per-phase breakdowns on the scale presets.
	ScaleEntries []CoreScaleEntry `json:"scale_entries,omitempty"`
	// BatchEntries tracks CompileBatch/SolveBatch against the equivalent
	// one-at-a-time loop over the same problems.
	BatchEntries []CoreBatchEntry `json:"batch_entries,omitempty"`
	// ObsEntries tracks the telemetry tier: warm solves with tracing off
	// vs on, the enabled-tracing overhead, the phase breakdown of the
	// traced run and latency quantiles across runs. CheckCore gates
	// OverheadPct at maxObsOverheadPct.
	ObsEntries []CoreObsEntry `json:"obs_entries,omitempty"`
}

// CoreScalePair names one scale preset of the parallel-compile tier and
// the sized-down parameters the -quick mode substitutes (CI smoke; the
// checked-in baseline uses the preset defaults).
type CoreScalePair struct {
	Scenario string
	Quick    scenario.Params
}

// CoreScalePairs lists the compile-scale workloads: the three Scale
// presets, spanning the line path (no decompositions), deep random trees
// (decomposition-heavy) and wide caterpillar fan-out.
var CoreScalePairs = []CoreScalePair{
	{"line-100k", scenario.Params{Demands: 20_000, Size: 256, Networks: 2048}},
	{"random-tree-50k", scenario.Params{Demands: 10_000, Size: 64, Networks: 1024}},
	{"caterpillar-20k", scenario.Params{Demands: 5_000, Size: 48, Networks: 256}},
}

// CoreScaleEntry is the measured cold-compile cost of one scale preset:
// the serial oracle (Workers=1) with its per-phase breakdown, the same
// build at full width, and the resulting speedup. Both builds produce
// byte-identical models (the equivalence suite pins this), so the two
// columns measure exactly one variable. Phase timings are recorded in
// serial mode too — they are what the parallel columns are judged
// against.
type CoreScaleEntry struct {
	Scenario string `json:"scenario"`
	Demands  int    `json:"demands"`
	// Workers is the fan-out of the parallel columns (GOMAXPROCS at
	// measurement time; the serial columns always use 1).
	Workers int `json:"workers"`

	SerialBuildNs  int64 `json:"serial_build_ns"`
	SerialDecompNs int64 `json:"serial_decomp_ns"`
	SerialLayerNs  int64 `json:"serial_layer_ns"`
	SerialPathNs   int64 `json:"serial_path_ns"`
	SerialIndexNs  int64 `json:"serial_index_ns"`

	ParallelBuildNs  int64 `json:"parallel_build_ns"`
	ParallelDecompNs int64 `json:"parallel_decomp_ns"`
	ParallelLayerNs  int64 `json:"parallel_layer_ns"`
	ParallelPathNs   int64 `json:"parallel_path_ns"`
	ParallelIndexNs  int64 `json:"parallel_index_ns"`

	// Speedup = SerialBuildNs / ParallelBuildNs. ~1.0 on a single-core
	// recorder; the CI gate only judges it on ≥4-core runners.
	Speedup float64 `json:"speedup"`
}

// CoreBatchEntry compares a one-at-a-time compile+solve loop against
// CompileBatch + SolveBatch over the same problem set.
type CoreBatchEntry struct {
	Scenario string `json:"scenario"`
	Algo     string `json:"algo"`
	// Problems is the batch width; Demands the per-problem demand count.
	Problems int `json:"problems"`
	Demands  int `json:"demands"`

	LoopNs  int64 `json:"loop_ns"`
	BatchNs int64 `json:"batch_ns"`
	// Speedup = LoopNs / BatchNs.
	Speedup float64 `json:"speedup"`
}

// CoreObsPair names one telemetry-overhead workload: a scale preset, the
// solver driven over it, and the sized-down -quick substitution.
type CoreObsPair struct {
	Scenario string
	Algo     string
	Quick    scenario.Params
}

// CoreObsPairs lists the telemetry-overhead workloads: the three scale
// presets, spanning the centralized line path, the centralized tree path
// and the message-passing runtime (whose per-round sampling is the
// busiest telemetry surface).
var CoreObsPairs = []CoreObsPair{
	{"line-100k", "line-unit", scenario.Params{Demands: 20_000, Size: 256, Networks: 2048}},
	{"random-tree-50k", "tree-unit", scenario.Params{Demands: 10_000, Size: 64, Networks: 1024}},
	{"caterpillar-20k", "dist-unit", scenario.Params{Demands: 5_000, Size: 48, Networks: 256}},
}

// CoreObsEntry is the measured telemetry cost of one pair: the same warm
// solve best-of-N with Options.Telemetry nil (the production default)
// and with a fresh obs.Trace attached, the relative overhead, the phase
// breakdown of the fastest traced run, and a latency summary over every
// run (both modes) from the obs histogram — the same quantile machinery
// /metrics and schedtool replay report through.
type CoreObsEntry struct {
	Scenario string `json:"scenario"`
	Algo     string `json:"algo"`
	Demands  int    `json:"demands"`
	Runs     int    `json:"runs"`
	// Quick marks a sized-down -quick measurement. Solves at quick size
	// finish in single-digit milliseconds, where both scheduler jitter
	// and the fixed per-span cost are a visible fraction of the run; the
	// strict overhead gate applies only to full-size measurements, quick
	// ones get the loose smoke backstop (see checkObs).
	Quick bool `json:"quick,omitempty"`

	PlainNsPerSolve  int64 `json:"plain_ns_per_solve"`
	TracedNsPerSolve int64 `json:"traced_ns_per_solve"`
	// OverheadPct is the enabled-tracing overhead, taken as the smaller
	// of two noise-robust estimates: the median of per-round
	// traced/plain ratios (each round times the two modes back to back,
	// in alternating order, so a load burst hits both sides of its pair)
	// and the ratio of the best traced run to the best plain run (each
	// mode's quietest moment). A shared runner's noise inflates either
	// estimate only under sustained one-sided load, but a real
	// systematic overhead — present in every round — shifts both.
	// Negative estimates (tracing "faster") read as zero.
	OverheadPct float64 `json:"overhead_pct"`

	// PhaseNs maps each top-level span of the fastest traced run
	// (compile, phase1, verify_lambda, phase2, assemble, protocol) to its
	// duration.
	PhaseNs map[string]int64 `json:"phase_ns"`
	// SolveLatency summarizes per-run wall time across all runs of both
	// modes.
	SolveLatency obs.Summary `json:"solve_latency"`
}

// coreSolve dispatches one solve on a compiled problem. It mirrors the
// service registry for the tracked algorithms only; options are fixed so
// every measurement exercises the identical deterministic run.
func coreSolve(c *core.Compiled, algo string) error {
	return coreSolveOpts(c, algo, core.Options{Seed: 1})
}

// coreSolveOpts is coreSolve with explicit options (the telemetry tier
// attaches Options.Telemetry).
func coreSolveOpts(c *core.Compiled, algo string, opts core.Options) error {
	var err error
	switch algo {
	case "tree-unit":
		_, err = c.TreeUnit(opts)
	case "line-unit":
		_, err = c.LineUnit(opts)
	case "narrow":
		_, err = c.NarrowOnly(opts)
	case "arbitrary":
		_, err = c.Arbitrary(opts)
	case "dist-unit":
		_, err = c.DistributedUnit(opts)
	default:
		err = fmt.Errorf("bench: untracked core algo %q", algo)
	}
	return err
}

// measure runs fn repeatedly until targetDur of work is observed (after
// one calibration call) and returns ns/iteration and allocs/iteration.
func measure(targetDur time.Duration, fn func() error) (nsPerOp, allocsPerOp float64, err error) {
	// Calibration pass — also warms lazily-built state out of warm
	// measurements and pages code in for cold ones.
	begin := time.Now()
	if err := fn(); err != nil {
		return 0, 0, err
	}
	once := time.Since(begin)
	iters := 1
	if once < targetDur {
		iters = int(targetDur/once) + 1
	}
	if iters > 20000 {
		iters = 20000
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	begin = time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(begin)
	runtime.ReadMemStats(&after)
	nsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
	allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(iters)
	return nsPerOp, allocsPerOp, nil
}

// CoreBench measures every tracked pair and assembles the report. Quick
// shrinks the per-measurement time budget (CI smoke); the checked-in
// baseline should be regenerated without it.
func CoreBench(quick bool) (*CoreReport, error) {
	target := 400 * time.Millisecond
	if quick {
		target = 60 * time.Millisecond
	}
	report := &CoreReport{
		Note: "solver cold path: ns/solve and allocs/solve per scenario×algo; " +
			"cold = fresh core.Compile per solve, warm = one Compiled reused " +
			"(cached conflict structures + pooled scratch); speedups are " +
			"against the fixed pre-refactor anchor; scale_entries = serial " +
			"(Workers=1) vs full-width cold model builds with per-phase " +
			"breakdowns on the Scale presets; batch_entries = one-at-a-time " +
			"loop vs CompileBatch/SolveBatch (parallel speedup gates apply " +
			"only on >=4-core runners); obs_entries = warm solves with " +
			"tracing off vs on (enabled-tracing overhead gated at 3%) with " +
			"phase breakdowns and latency quantiles",
		Regenerate:        "go run ./cmd/schedbench -core -o BENCH_core.json",
		GoVersion:         runtime.Version(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		PreRefactorColdNs: preRefactorColdNs,
	}
	for _, pair := range CorePairs {
		s, ok := scenario.Get(pair.Scenario)
		if !ok {
			return nil, fmt.Errorf("bench: unknown scenario %q", pair.Scenario)
		}
		p, err := s.Generate(scenario.Params{}, 1)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %v", pair.Scenario, err)
		}
		entry := CoreEntry{Scenario: pair.Scenario, Algo: pair.Algo}

		entry.ColdNsPerSolve, entry.ColdAllocsPerSolve, err = measure(target, func() error {
			c, err := core.Compile(p, 0)
			if err != nil {
				return err
			}
			return coreSolve(c, pair.Algo)
		})
		if err != nil {
			return nil, fmt.Errorf("bench: %s/%s cold: %v", pair.Scenario, pair.Algo, err)
		}

		warmC, err := core.Compile(p, 0)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %v", pair.Scenario, err)
		}
		entry.WarmNsPerSolve, entry.WarmAllocsPerSolve, err = measure(target, func() error {
			return coreSolve(warmC, pair.Algo)
		})
		if err != nil {
			return nil, fmt.Errorf("bench: %s/%s warm: %v", pair.Scenario, pair.Algo, err)
		}

		if anchor := preRefactorColdNs[entry.Key()]; anchor > 0 && entry.ColdNsPerSolve > 0 {
			entry.SpeedupVsPreRefactor = anchor / entry.ColdNsPerSolve
		}
		report.Entries = append(report.Entries, entry)
	}

	for _, pair := range CoreScalePairs {
		entry, err := scaleBench(pair, quick)
		if err != nil {
			return nil, err
		}
		report.ScaleEntries = append(report.ScaleEntries, *entry)
	}
	batch, err := batchBench(quick)
	if err != nil {
		return nil, err
	}
	report.BatchEntries = append(report.BatchEntries, *batch)
	for _, pair := range CoreObsPairs {
		entry, err := obsBench(pair, quick)
		if err != nil {
			return nil, err
		}
		report.ObsEntries = append(report.ObsEntries, *entry)
	}
	return report, nil
}

// obsRuns is the per-mode run count of the telemetry tier: enough
// paired rounds for a stable median and best-of on multi-millisecond
// solves without dominating the harness.
const obsRuns = 7

// obsBench measures one telemetry workload: the identical warm solve
// with tracing off and on. Both modes produce byte-identical results
// (TestTelemetryEquivalence pins this), so the two columns measure
// exactly the observability cost.
func obsBench(pair CoreObsPair, quick bool) (*CoreObsEntry, error) {
	s, ok := scenario.Get(pair.Scenario)
	if !ok {
		return nil, fmt.Errorf("bench: unknown obs scenario %q", pair.Scenario)
	}
	params := scenario.Params{}
	runs := obsRuns
	if quick {
		// Quick sizes solve in single-digit milliseconds where scheduler
		// jitter is a few percent per run; more paired rounds (still cheap
		// at these sizes) keep the 3% gate out of the noise.
		params = pair.Quick
		runs = 9
	}
	p, err := s.Generate(params, 1)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %v", pair.Scenario, err)
	}
	c, err := core.Compile(p, 0)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %v", pair.Scenario, err)
	}
	// Warm the lazy model and scratch pools out of the measurement.
	if err := coreSolve(c, pair.Algo); err != nil {
		return nil, fmt.Errorf("bench: %s/%s warmup: %v", pair.Scenario, pair.Algo, err)
	}

	entry := &CoreObsEntry{
		Scenario: pair.Scenario,
		Algo:     pair.Algo,
		Demands:  len(p.Demands),
		Runs:     runs,
		Quick:    quick,
	}
	hist := new(obs.Histogram)
	run := func(opts core.Options) (int64, *obs.Trace, error) {
		begin := time.Now()
		if err := coreSolveOpts(c, pair.Algo, opts); err != nil {
			return 0, nil, err
		}
		ns := time.Since(begin).Nanoseconds()
		hist.Observe(ns)
		return ns, opts.Telemetry, nil
	}
	var bestTrace *obs.Trace
	ratios := make([]float64, 0, runs)
	for r := 0; r < runs; r++ {
		var pns, tns int64
		var tel *obs.Trace
		// Alternate which mode runs first so time-correlated machine load
		// (GC pacing, a neighbor's burst) cannot systematically land on
		// one side of every pair.
		measure := func() error {
			var err error
			if pns, _, err = run(core.Options{Seed: 1}); err != nil {
				return fmt.Errorf("bench: %s/%s plain: %v", pair.Scenario, pair.Algo, err)
			}
			return nil
		}
		measureTraced := func() error {
			var err error
			if tns, tel, err = run(core.Options{Seed: 1, Telemetry: obs.NewTrace()}); err != nil {
				return fmt.Errorf("bench: %s/%s traced: %v", pair.Scenario, pair.Algo, err)
			}
			return nil
		}
		first, second := measure, measureTraced
		if r%2 == 1 {
			first, second = measureTraced, measure
		}
		if err := first(); err != nil {
			return nil, err
		}
		if err := second(); err != nil {
			return nil, err
		}
		if entry.PlainNsPerSolve == 0 || pns < entry.PlainNsPerSolve {
			entry.PlainNsPerSolve = pns
		}
		if entry.TracedNsPerSolve == 0 || tns < entry.TracedNsPerSolve {
			entry.TracedNsPerSolve = tns
			bestTrace = tel
		}
		if pns > 0 {
			ratios = append(ratios, float64(tns)/float64(pns))
		}
	}
	if len(ratios) > 0 && entry.PlainNsPerSolve > 0 {
		sort.Float64s(ratios)
		est := ratios[len(ratios)/2]
		if best := float64(entry.TracedNsPerSolve) / float64(entry.PlainNsPerSolve); best < est {
			est = best
		}
		if est > 1 {
			entry.OverheadPct = (est - 1) * 100
		}
	}
	entry.PhaseNs = make(map[string]int64)
	for _, sp := range bestTrace.Spans() {
		if sp.Parent == obs.NoSpan && sp.DurNs > 0 {
			entry.PhaseNs[sp.Name] += sp.DurNs
		}
	}
	entry.SolveLatency = hist.Summarize()
	return entry, nil
}

// buildRuns is the best-of count of the scale-tier builds: the presets
// are big enough that a repetition loop like measure's would dominate
// the harness, so each column takes the fastest of a few full builds.
const buildRuns = 3

// measureBuild cold-builds the model best-of-runs times at the given
// fan-out and returns the fastest run's wall clock and phase breakdown.
func measureBuild(p *instance.Problem, workers, runs int) (int64, model.BuildStats, error) {
	best := int64(-1)
	var bestStats model.BuildStats
	for r := 0; r < runs; r++ {
		var st model.BuildStats
		if _, err := model.Build(p, model.Options{Workers: workers, Stats: &st}); err != nil {
			return 0, model.BuildStats{}, err
		}
		if best < 0 || st.TotalNs < best {
			best, bestStats = st.TotalNs, st
		}
	}
	return best, bestStats, nil
}

// scaleBench measures one scale preset: serial-oracle build vs
// full-width build, phase by phase.
func scaleBench(pair CoreScalePair, quick bool) (*CoreScaleEntry, error) {
	s, ok := scenario.Get(pair.Scenario)
	if !ok {
		return nil, fmt.Errorf("bench: unknown scale scenario %q", pair.Scenario)
	}
	params := scenario.Params{}
	if quick {
		params = pair.Quick
	}
	p, err := s.Generate(params, 1)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %v", pair.Scenario, err)
	}
	entry := &CoreScaleEntry{
		Scenario: pair.Scenario,
		Demands:  len(p.Demands),
		Workers:  runtime.GOMAXPROCS(0),
	}
	var st model.BuildStats
	if entry.SerialBuildNs, st, err = measureBuild(p, 1, buildRuns); err != nil {
		return nil, fmt.Errorf("bench: %s serial build: %v", pair.Scenario, err)
	}
	entry.SerialDecompNs, entry.SerialLayerNs = st.DecompNs, st.LayerNs
	entry.SerialPathNs, entry.SerialIndexNs = st.PathNs, st.IndexNs

	if entry.ParallelBuildNs, st, err = measureBuild(p, 0, buildRuns); err != nil {
		return nil, fmt.Errorf("bench: %s parallel build: %v", pair.Scenario, err)
	}
	entry.ParallelDecompNs, entry.ParallelLayerNs = st.DecompNs, st.LayerNs
	entry.ParallelPathNs, entry.ParallelIndexNs = st.PathNs, st.IndexNs

	if entry.ParallelBuildNs > 0 {
		entry.Speedup = float64(entry.SerialBuildNs) / float64(entry.ParallelBuildNs)
	}
	return entry, nil
}

// batchBench measures the multi-network batch preset: the same problem
// set compiled and solved one at a time versus through
// CompileBatch/SolveBatch at full width.
func batchBench(quick bool) (*CoreBatchEntry, error) {
	const name, algo = "caterpillar-backbone", "tree-unit"
	s, ok := scenario.Get(name)
	if !ok {
		return nil, fmt.Errorf("bench: unknown batch scenario %q", name)
	}
	problems, params := 12, scenario.Params{Demands: 400, Size: 36, Networks: 4}
	if quick {
		problems, params.Demands = 8, 200
	}
	ps := make([]*instance.Problem, problems)
	for i := range ps {
		p, err := s.Generate(params, int64(i+1))
		if err != nil {
			return nil, fmt.Errorf("bench: %s seed %d: %v", name, i+1, err)
		}
		ps[i] = p
	}
	entry := &CoreBatchEntry{
		Scenario: name, Algo: algo,
		Problems: problems, Demands: params.Demands,
	}

	loop := func() (int64, error) {
		begin := time.Now()
		for _, p := range ps {
			c, err := core.Compile(p, 0)
			if err != nil {
				return 0, err
			}
			if err := coreSolve(c, algo); err != nil {
				return 0, err
			}
		}
		return time.Since(begin).Nanoseconds(), nil
	}
	batched := func() (int64, error) {
		begin := time.Now()
		cs, errs := core.CompileBatch(ps, 0, 0)
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		_, serrs := core.SolveBatch(cs, 0, func(_ int, c *core.Compiled) (*core.Result, error) {
			return nil, coreSolve(c, algo)
		})
		for _, err := range serrs {
			if err != nil {
				return 0, err
			}
		}
		return time.Since(begin).Nanoseconds(), nil
	}

	for r := 0; r < buildRuns; r++ {
		ns, err := loop()
		if err != nil {
			return nil, fmt.Errorf("bench: batch loop: %v", err)
		}
		if entry.LoopNs == 0 || ns < entry.LoopNs {
			entry.LoopNs = ns
		}
		if ns, err = batched(); err != nil {
			return nil, fmt.Errorf("bench: batch: %v", err)
		}
		if entry.BatchNs == 0 || ns < entry.BatchNs {
			entry.BatchNs = ns
		}
	}
	if entry.BatchNs > 0 {
		entry.Speedup = float64(entry.LoopNs) / float64(entry.BatchNs)
	}
	return entry, nil
}

// nsCatastropheFactor is the wall-clock backstop multiplier of
// CheckCore: ns/solve is only compared loosely because the baseline was
// recorded on different hardware than the checker runs on (a CI runner
// 30% slower than the baseline machine is not a code regression).
// Allocation counts are hardware-independent, so they carry the strict
// gate.
const nsCatastropheFactor = 4.0

// CheckCore compares a fresh measurement against the checked-in baseline
// and errors when any pair's cold path regressed: allocs/solve above
// (1+tolerance)× the recorded value (e.g. 0.25 = fail above 1.25×), or
// ns/solve beyond the catastrophic nsCatastropheFactor backstop. Pairs
// present in only one report are ignored so the tracked set can evolve.
func CheckCore(current, baseline *CoreReport, tolerance float64) error {
	base := make(map[string]*CoreEntry, len(baseline.Entries))
	for i := range baseline.Entries {
		base[baseline.Entries[i].Key()] = &baseline.Entries[i]
	}
	var failures []string
	for i := range current.Entries {
		e := &current.Entries[i]
		want := base[e.Key()]
		if want == nil {
			continue
		}
		if want.ColdAllocsPerSolve > 0 && e.ColdAllocsPerSolve > want.ColdAllocsPerSolve*(1+tolerance) {
			failures = append(failures, fmt.Sprintf(
				"%s: cold %.0f allocs/solve vs baseline %.0f (%.2fx > allowed %.2fx)",
				e.Key(), e.ColdAllocsPerSolve, want.ColdAllocsPerSolve,
				e.ColdAllocsPerSolve/want.ColdAllocsPerSolve, 1+tolerance))
		}
		if want.ColdNsPerSolve > 0 && e.ColdNsPerSolve > want.ColdNsPerSolve*nsCatastropheFactor {
			failures = append(failures, fmt.Sprintf(
				"%s: cold %.0f ns/solve vs baseline %.0f (%.2fx > catastrophic %gx backstop)",
				e.Key(), e.ColdNsPerSolve, want.ColdNsPerSolve,
				e.ColdNsPerSolve/want.ColdNsPerSolve, nsCatastropheFactor))
		}
	}
	failures = append(failures, checkScale(current, baseline)...)
	failures = append(failures, checkObs(current)...)
	if len(failures) > 0 {
		return fmt.Errorf("bench: cold-path regression against BENCH_core.json:\n  %s",
			strings.Join(failures, "\n  "))
	}
	return nil
}

// maxObsOverheadPct is the enabled-tracing overhead ceiling at the full
// scale-preset sizes: a traced warm solve may cost at most this much
// more than the identical untraced solve. The zero-overhead invariant
// for tracing *off* is pinned exactly (alloc-budget and equivalence
// tests); this gate bounds the cost of turning it on.
const maxObsOverheadPct = 3.0

// quickObsOverheadPct is the smoke backstop for -quick measurements:
// quick solves finish in milliseconds, where the fixed per-span cost
// and shared-runner jitter are each a visible fraction of the run and
// a 3% margin carries no signal. The loose bound still catches
// catastrophic regressions — tracing accidentally enabled on the plain
// path, a quadratic counter search — without flaking on noise.
const quickObsOverheadPct = 25.0

// minObsGateNs is the smallest plain solve the overhead gate judges:
// below ~1ms, scheduler jitter swamps any margin and the comparison
// carries no signal.
const minObsGateNs = int64(time.Millisecond)

// checkObs gates the telemetry tier on the current report alone — the
// overhead bound is absolute, not relative to a baseline.
func checkObs(current *CoreReport) []string {
	var failures []string
	for i := range current.ObsEntries {
		e := &current.ObsEntries[i]
		if e.PlainNsPerSolve < minObsGateNs {
			continue
		}
		limit := maxObsOverheadPct
		if e.Quick {
			limit = quickObsOverheadPct
		}
		if e.OverheadPct > limit {
			failures = append(failures, fmt.Sprintf(
				"%s/%s: enabled-tracing overhead %.2f%% (plain %d ns, traced %d ns; > allowed %.1f%%)",
				e.Scenario, e.Algo, e.OverheadPct, e.PlainNsPerSolve, e.TracedNsPerSolve, limit))
		}
	}
	return failures
}

// scaleGateProcs is the smallest GOMAXPROCS at which the parallel-compile
// speedup gates apply. Below it (laptops pinned to a core, 1–2 vCPU
// containers) parallel and serial resolve to nearly the same execution
// and the speedup carries no signal, so only the wall-clock catastrophe
// backstop runs; the baseline itself may legitimately be recorded on a
// single-core machine.
const scaleGateProcs = 4

// minScaleSpeedup is the parallel-compile floor on ≥scaleGateProcs-core
// runners: at least one scale preset must cold-compile ≥2× faster at full
// width than through the serial oracle.
const minScaleSpeedup = 2.0

// checkScale gates the parallel-compile tier. Wall-clock backstops apply
// whenever current and baseline measured the same workload size; the
// speedup gates additionally require a multicore runner (see
// scaleGateProcs) — and compare against the baseline's speedups only when
// the baseline was multicore too.
func checkScale(current, baseline *CoreReport) []string {
	var failures []string
	multicore := current.GOMAXPROCS >= scaleGateProcs

	base := make(map[string]*CoreScaleEntry, len(baseline.ScaleEntries))
	for i := range baseline.ScaleEntries {
		base[baseline.ScaleEntries[i].Scenario] = &baseline.ScaleEntries[i]
	}
	maxSpeedup := 0.0
	for i := range current.ScaleEntries {
		e := &current.ScaleEntries[i]
		if e.Speedup > maxSpeedup {
			maxSpeedup = e.Speedup
		}
		want := base[e.Scenario]
		if want == nil {
			continue
		}
		if want.Demands == e.Demands && want.SerialBuildNs > 0 &&
			e.SerialBuildNs > want.SerialBuildNs*nsCatastropheFactor {
			failures = append(failures, fmt.Sprintf(
				"%s: serial build %d ns vs baseline %d (%.2fx > catastrophic %gx backstop)",
				e.Scenario, e.SerialBuildNs, want.SerialBuildNs,
				float64(e.SerialBuildNs)/float64(want.SerialBuildNs), nsCatastropheFactor))
		}
		if multicore && baseline.GOMAXPROCS >= scaleGateProcs && want.Speedup > 0 &&
			e.Speedup < want.Speedup*0.75 {
			failures = append(failures, fmt.Sprintf(
				"%s: parallel compile speedup %.2fx vs baseline %.2fx (< 0.75x of baseline)",
				e.Scenario, e.Speedup, want.Speedup))
		}
	}
	if multicore && len(current.ScaleEntries) > 0 && maxSpeedup < minScaleSpeedup {
		failures = append(failures, fmt.Sprintf(
			"parallel compile: best scale-preset speedup %.2fx on %d cores (< required %.1fx)",
			maxSpeedup, current.GOMAXPROCS, minScaleSpeedup))
	}

	bbase := make(map[string]*CoreBatchEntry, len(baseline.BatchEntries))
	for i := range baseline.BatchEntries {
		b := &baseline.BatchEntries[i]
		bbase[b.Scenario+"/"+b.Algo] = b
	}
	for i := range current.BatchEntries {
		e := &current.BatchEntries[i]
		want := bbase[e.Scenario+"/"+e.Algo]
		if want == nil {
			continue
		}
		if want.Problems == e.Problems && want.Demands == e.Demands && want.LoopNs > 0 &&
			e.LoopNs > want.LoopNs*int64(nsCatastropheFactor) {
			failures = append(failures, fmt.Sprintf(
				"batch %s/%s: loop %d ns vs baseline %d (> catastrophic %gx backstop)",
				e.Scenario, e.Algo, e.LoopNs, want.LoopNs, nsCatastropheFactor))
		}
		if multicore && baseline.GOMAXPROCS >= scaleGateProcs && want.Speedup > 0 &&
			e.Speedup < want.Speedup*0.75 {
			failures = append(failures, fmt.Sprintf(
				"batch %s/%s: speedup %.2fx vs baseline %.2fx (< 0.75x of baseline)",
				e.Scenario, e.Algo, e.Speedup, want.Speedup))
		}
	}
	return failures
}
