package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"treesched/internal/instance"
)

func TestTreeProblemAlwaysValid(t *testing.T) {
	f := func(seed int64, rawN, rawR, rawM uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := TreeConfig{
			N:       2 + int(rawN)%60,
			Trees:   1 + int(rawR)%4,
			Demands: 1 + int(rawM)%30,
		}
		p := TreeProblem(cfg, rng)
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLineProblemAlwaysValid(t *testing.T) {
	f := func(seed int64, rawN, rawR, rawM uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := LineConfig{
			Slots:     2 + int(rawN)%80,
			Resources: 1 + int(rawR)%4,
			Demands:   1 + int(rawM)%30,
		}
		p := LineProblem(cfg, rng)
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAllShapesProduceRequestedSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range []TreeShape{ShapeRandom, ShapeBinary, ShapeCaterpillar, ShapePath, ShapeStar} {
		for _, n := range []int{2, 7, 33} {
			tr := MakeTree(shape, n, rng)
			if tr.N() != n {
				t.Fatalf("%v: got %d vertices, want %d", shape, tr.N(), n)
			}
		}
	}
	// Spider rounds to its own size; just require validity.
	if tr := MakeTree(ShapeSpider, 13, rng); tr.N() < 2 {
		t.Fatal("spider degenerate")
	}
}

func TestUnitFlagForcesHeightOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := TreeProblem(TreeConfig{N: 10, Trees: 2, Demands: 20, Unit: true}, rng)
	if !p.UnitHeight() {
		t.Fatal("Unit workload has non-unit heights")
	}
}

func TestHeightAndProfitRangesRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := TreeProblem(TreeConfig{
		N: 12, Trees: 1, Demands: 50, HMin: 0.2, HMax: 0.4, PMin: 5, PMax: 6,
	}, rng)
	for _, d := range p.Demands {
		if d.Height < 0.2 || d.Height > 0.4 {
			t.Fatalf("height %g outside [0.2,0.4]", d.Height)
		}
		if d.Profit < 5 || d.Profit > 6 {
			t.Fatalf("profit %g outside [5,6]", d.Profit)
		}
	}
}

func TestCapacityGeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := TreeProblem(TreeConfig{N: 10, Trees: 2, Demands: 5, Capacity: 2, CapJitter: 0.5}, rng)
	if p.Capacities == nil {
		t.Fatal("capacities not generated")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, row := range p.Capacities {
		for e := 1; e < len(row); e++ {
			if row[e] < 1.5-1e-9 || row[e] > 2.5+1e-9 {
				t.Fatalf("capacity %g outside jitter band", row[e])
			}
		}
	}
}

func TestLocalBiasShortensPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := TreeProblem(TreeConfig{N: 60, Trees: 1, Demands: 40, LocalBias: 2, Unit: true}, rng)
	for _, d := range p.Demands {
		if dist := p.Trees[0].Dist(d.U, d.V); dist > 2 {
			t.Fatalf("LocalBias 2 produced path of length %d", dist)
		}
	}
}

func TestAdversarialHubAllConflict(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := AdversarialHub(4, 3, 2, 12, rng)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	insts := p.Expand()
	// Every pair of instances on the same network must overlap (all
	// paths cross the hub).
	for i := range insts {
		for j := range insts {
			if i != j && insts[i].Net == insts[j].Net {
				if !p.Overlap(insts[i], insts[j]) {
					t.Fatalf("instances %d,%d on net %d do not overlap", i, j, insts[i].Net)
				}
			}
		}
	}
}

func TestPaperProblemsValidate(t *testing.T) {
	if err := PaperFigure1Problem().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := PaperFigure2Problem(true).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := PaperFigure2Problem(false).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExpansionDeterminism(t *testing.T) {
	mk := func() *instance.Problem {
		rng := rand.New(rand.NewSource(42))
		return LineProblem(LineConfig{Slots: 30, Resources: 2, Demands: 15}, rng)
	}
	a, b := mk().Expand(), mk().Expand()
	if len(a) != len(b) {
		t.Fatal("expansion size differs across identical seeds")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instance %d differs", i)
		}
	}
}
