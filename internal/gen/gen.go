// Package gen generates workloads for tests, examples and the experiment
// harness: random tree-network problems (§2) and line-network problems
// with windows (§7), with controllable profit spread, height distribution,
// accessibility density and network shape.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"treesched/internal/graph"
	"treesched/internal/instance"
)

// TreeShape selects the topology family of generated trees.
type TreeShape int

const (
	// ShapeRandom draws uniform labelled trees (Prüfer).
	ShapeRandom TreeShape = iota
	// ShapeBinary draws random max-degree-3 trees.
	ShapeBinary
	// ShapeCaterpillar builds caterpillars (half spine, half legs).
	ShapeCaterpillar
	// ShapePath builds path graphs (degenerate trees = lines).
	ShapePath
	// ShapeStar builds stars (all demands collide at the hub).
	ShapeStar
	// ShapeSpider builds spiders with 4 legs.
	ShapeSpider
)

func (s TreeShape) String() string {
	switch s {
	case ShapeRandom:
		return "random"
	case ShapeBinary:
		return "binary"
	case ShapeCaterpillar:
		return "caterpillar"
	case ShapePath:
		return "path"
	case ShapeStar:
		return "star"
	case ShapeSpider:
		return "spider"
	default:
		return fmt.Sprintf("TreeShape(%d)", int(s))
	}
}

// MakeTree builds one tree of the given shape on n vertices.
func MakeTree(shape TreeShape, n int, rng *rand.Rand) *graph.Tree {
	switch shape {
	case ShapeRandom:
		return graph.RandomTree(n, rng)
	case ShapeBinary:
		return graph.RandomBinaryTree(n, rng)
	case ShapeCaterpillar:
		spine := (n + 1) / 2
		return graph.Caterpillar(spine, n-spine)
	case ShapePath:
		return graph.NewPath(n)
	case ShapeStar:
		return graph.NewStar(n)
	case ShapeSpider:
		legs := 4
		legLen := (n - 1) / legs
		if legLen < 1 {
			return graph.NewStar(n)
		}
		sp := graph.Spider(legs, legLen)
		if sp.N() == n {
			return sp
		}
		// Round n down to the spider size by falling back to random.
		return graph.RandomTree(n, rng)
	default:
		panic("gen: unknown shape " + shape.String())
	}
}

// TreeConfig parameterizes TreeProblem.
type TreeConfig struct {
	N       int       // vertices per tree
	Trees   int       // number of tree-networks r
	Demands int       // number of demands/processors m
	Shape   TreeShape // topology family (default ShapeRandom)

	// Unit forces height 1 for all demands. Otherwise heights are drawn
	// uniformly from [HMin, HMax] (defaults 0.1, 1.0).
	Unit       bool
	HMin, HMax float64

	// PMin, PMax bound the uniform profit draw (defaults 1, 10).
	PMin, PMax float64

	// AccessProb is the probability a processor can access each tree
	// (≥ 1 access is always guaranteed). Default 0.5.
	AccessProb float64

	// AccessCount, when positive, overrides AccessProb: every demand
	// accesses exactly min(AccessCount, Trees) distinct trees, drawn
	// uniformly in O(AccessCount) per demand. This is the large-network
	// access model: with r networks and access sets of size k, the
	// communication graph (processors adjacent iff access sets
	// intersect) has expected degree ≈ k²m/r, so 10^5-processor
	// workloads stay sparse — Bernoulli AccessProb would cost O(r) rng
	// draws per demand and make degree control awkward.
	AccessCount int

	// LocalBias, when positive, draws demand endpoints at tree distance
	// ≤ LocalBias of each other when possible, producing short paths.
	LocalBias int

	// Capacity, when > 0, assigns every edge capacity Capacity.
	// CapJitter adds ±CapJitter uniform noise per edge (non-uniform
	// bandwidths, the IPPS'13 scope).
	Capacity  float64
	CapJitter float64
}

func (c *TreeConfig) fill() {
	if c.PMin == 0 && c.PMax == 0 {
		c.PMin, c.PMax = 1, 10
	}
	if c.HMin == 0 && c.HMax == 0 {
		c.HMin, c.HMax = 0.1, 1.0
	}
	if c.AccessProb == 0 {
		c.AccessProb = 0.5
	}
}

// TreeProblem generates a random tree-network problem.
func TreeProblem(cfg TreeConfig, rng *rand.Rand) *instance.Problem {
	cfg.fill()
	p := &instance.Problem{Kind: instance.KindTree, NumVertices: cfg.N}
	for q := 0; q < cfg.Trees; q++ {
		p.Trees = append(p.Trees, MakeTree(cfg.Shape, cfg.N, rng))
	}
	if cfg.Capacity > 0 {
		p.Capacities = make([][]float64, cfg.Trees)
		for q := range p.Capacities {
			p.Capacities[q] = make([]float64, cfg.N)
			for e := range p.Capacities[q] {
				c := cfg.Capacity
				if cfg.CapJitter > 0 {
					c += (rng.Float64()*2 - 1) * cfg.CapJitter
					if c < 0.05 {
						c = 0.05
					}
				}
				p.Capacities[q][e] = c
			}
		}
	}
	for i := 0; i < cfg.Demands; i++ {
		u := rng.Intn(cfg.N)
		v := rng.Intn(cfg.N)
		if cfg.LocalBias > 0 {
			// Walk a short random path from u (distances measured on the
			// first tree). A walk that returns to u takes one extra step
			// to a neighbor, keeping the distance bound.
			v = u
			steps := 1 + rng.Intn(cfg.LocalBias)
			t := p.Trees[0]
			for s := 0; s < steps; s++ {
				nb := t.Adj(v)
				v = int(nb[rng.Intn(len(nb))])
			}
			if v == u {
				nb := t.Adj(u)
				v = int(nb[rng.Intn(len(nb))])
			}
		}
		for v == u {
			v = rng.Intn(cfg.N)
		}
		h := 1.0
		if !cfg.Unit {
			h = cfg.HMin + rng.Float64()*(cfg.HMax-cfg.HMin)
		}
		p.Demands = append(p.Demands, instance.Demand{
			ID: i, U: u, V: v,
			Profit: cfg.PMin + rng.Float64()*(cfg.PMax-cfg.PMin),
			Height: h,
			Access: drawAccess(cfg.Trees, cfg.AccessCount, cfg.AccessProb, rng),
		})
	}
	return p
}

// LineConfig parameterizes LineProblem.
type LineConfig struct {
	Slots     int // timeline length n
	Resources int // resource count r
	Demands   int // demand count m

	Unit       bool
	HMin, HMax float64
	PMin, PMax float64
	AccessProb float64
	// AccessCount, when positive, overrides AccessProb: exactly
	// min(AccessCount, Resources) distinct resources per demand. See
	// TreeConfig.AccessCount for why large networks need this.
	AccessCount int

	// MaxProc caps processing times (default Slots/4, at least 1).
	MaxProc int
	// Slack is the extra window length beyond the processing time
	// (window = proctime + Uniform[0,Slack]). Default Slots/4.
	Slack int

	Capacity  float64
	CapJitter float64
}

func (c *LineConfig) fill() {
	if c.PMin == 0 && c.PMax == 0 {
		c.PMin, c.PMax = 1, 10
	}
	if c.HMin == 0 && c.HMax == 0 {
		c.HMin, c.HMax = 0.1, 1.0
	}
	if c.AccessProb == 0 {
		c.AccessProb = 0.5
	}
	if c.MaxProc == 0 {
		c.MaxProc = c.Slots / 4
	}
	if c.MaxProc < 1 {
		c.MaxProc = 1
	}
	if c.Slack == 0 {
		c.Slack = c.Slots / 4
	}
}

// LineProblem generates a random line-network (windows) problem.
func LineProblem(cfg LineConfig, rng *rand.Rand) *instance.Problem {
	cfg.fill()
	p := &instance.Problem{
		Kind:         instance.KindLine,
		NumSlots:     cfg.Slots,
		NumResources: cfg.Resources,
	}
	if cfg.Capacity > 0 {
		p.Capacities = make([][]float64, cfg.Resources)
		for q := range p.Capacities {
			p.Capacities[q] = make([]float64, cfg.Slots)
			for e := range p.Capacities[q] {
				c := cfg.Capacity
				if cfg.CapJitter > 0 {
					c += (rng.Float64()*2 - 1) * cfg.CapJitter
					if c < 0.05 {
						c = 0.05
					}
				}
				p.Capacities[q][e] = c
			}
		}
	}
	for i := 0; i < cfg.Demands; i++ {
		rho := 1 + rng.Intn(cfg.MaxProc)
		if rho > cfg.Slots {
			rho = cfg.Slots
		}
		window := rho + rng.Intn(cfg.Slack+1)
		if window > cfg.Slots {
			window = cfg.Slots
		}
		rt := rng.Intn(cfg.Slots - window + 1)
		h := 1.0
		if !cfg.Unit {
			h = cfg.HMin + rng.Float64()*(cfg.HMax-cfg.HMin)
		}
		p.Demands = append(p.Demands, instance.Demand{
			ID: i, Release: rt, Deadline: rt + window - 1, ProcTime: rho,
			Profit: cfg.PMin + rng.Float64()*(cfg.PMax-cfg.PMin),
			Height: h,
			Access: drawAccess(cfg.Resources, cfg.AccessCount, cfg.AccessProb, rng),
		})
	}
	return p
}

// drawAccess dispatches between the two access models: exact-count
// (count > 0) and Bernoulli (probability prob per network).
func drawAccess(r, count int, prob float64, rng *rand.Rand) []int {
	if count > 0 {
		return accessCountSet(r, count, rng)
	}
	return accessSet(r, prob, rng)
}

// accessSet draws a non-empty subset of 0..r-1.
func accessSet(r int, prob float64, rng *rand.Rand) []int {
	var out []int
	for q := 0; q < r; q++ {
		if rng.Float64() < prob {
			out = append(out, q)
		}
	}
	if len(out) == 0 {
		out = []int{rng.Intn(r)}
	}
	return out
}

// accessCountSet draws exactly min(k, r) distinct networks, ascending.
// Rejection sampling: k is a small constant in every caller (the point
// is k ≪ r), so the expected cost is O(k²) regardless of r.
func accessCountSet(r, k int, rng *rand.Rand) []int {
	if k >= r {
		out := make([]int, r)
		for q := range out {
			out[q] = q
		}
		return out
	}
	out := make([]int, 0, k)
draw:
	for len(out) < k {
		q := rng.Intn(r)
		for _, seen := range out {
			if seen == q {
				continue draw
			}
		}
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// AdversarialHub builds a workload designed to push the algorithms toward
// their worst case: a star-of-paths (spider) in which every demand has one
// endpoint on leg 0 and the other on a different leg, so every path uses
// leg 0's hub edge and all demands on a network pairwise conflict.
// Profits spread geometrically so that kill chains actually occur; OPT is
// a single demand per network and primal-dual slack accumulates maximally.
func AdversarialHub(legs, legLen, networks, demands int, rng *rand.Rand) *instance.Problem {
	p := &instance.Problem{Kind: instance.KindTree, NumVertices: 1 + legs*legLen}
	for q := 0; q < networks; q++ {
		p.Trees = append(p.Trees, graph.Spider(legs, legLen))
	}
	for i := 0; i < demands; i++ {
		// Leg l occupies vertices 1+l·legLen .. (l+1)·legLen, with
		// 1+l·legLen adjacent to the hub. Every leg-0 vertex reaches any
		// other leg through edge (1, hub).
		l2 := 1 + rng.Intn(legs-1)
		u := 1 + rng.Intn(legLen)
		v := 1 + l2*legLen + rng.Intn(legLen)
		var access []int
		for q := 0; q < networks; q++ {
			if rng.Intn(2) == 0 {
				access = append(access, q)
			}
		}
		if len(access) == 0 {
			access = []int{rng.Intn(networks)}
		}
		p.Demands = append(p.Demands, instance.Demand{
			ID: i, U: u, V: v,
			// Geometric profits: doubling chains are realizable.
			Profit: math.Pow(2, float64(i%10)),
			Height: 1,
			Access: access,
		})
	}
	return p
}

// PaperFigure1Problem reproduces Figure 1: one line resource, three
// demands A, B, C with heights 0.5, 0.7, 0.4 positioned so that {A,C} and
// {B,C} fit but {A,B} overlap with total height 1.2 > 1.
func PaperFigure1Problem() *instance.Problem {
	return &instance.Problem{
		Kind:         instance.KindLine,
		NumSlots:     10,
		NumResources: 1,
		Demands: []instance.Demand{
			// A: height 0.5, slots [1,5].
			{ID: 0, Release: 1, Deadline: 5, ProcTime: 5, Profit: 5, Height: 0.5, Access: []int{0}},
			// B: height 0.7, slots [3,8] — overlaps A on [3,5].
			{ID: 1, Release: 3, Deadline: 8, ProcTime: 6, Profit: 6, Height: 0.7, Access: []int{0}},
			// C: height 0.4, slots [0,2] — fits beside A (0.5+0.4 ≤ 1)
			// and is disjoint from B, so {A,C} and {B,C} both fit.
			{ID: 2, Release: 0, Deadline: 2, ProcTime: 3, Profit: 4, Height: 0.4, Access: []int{0}},
		},
	}
}

// PaperFigure2Problem reproduces Figure 2: the tree with demands ⟨1,10⟩,
// ⟨2,3⟩, ⟨12,13⟩ all sharing edge ⟨4,5⟩; unit heights mean only one can be
// scheduled, while heights (0.4, 0.7, 0.3) let the first and third
// coexist.
func PaperFigure2Problem(unit bool) *instance.Problem {
	h := []float64{0.4, 0.7, 0.3}
	if unit {
		h = []float64{1, 1, 1}
	}
	return &instance.Problem{
		Kind:        instance.KindTree,
		NumVertices: 14,
		Trees:       []*graph.Tree{graph.PaperFigure2Tree()},
		Demands: []instance.Demand{
			{ID: 0, U: 1, V: 10, Profit: 3, Height: h[0], Access: []int{0}},
			{ID: 1, U: 2, V: 3, Profit: 2, Height: h[1], Access: []int{0}},
			{ID: 2, U: 12, V: 13, Profit: 1, Height: h[2], Access: []int{0}},
		},
	}
}
