package respfreeze_test

import (
	"testing"

	"treesched/internal/lint/analysis/analysistest"
	"treesched/internal/lint/respfreeze"
)

func TestRespFreeze(t *testing.T) {
	analysistest.Run(t, "testdata", respfreeze.Analyzer, "./src/r")
}
