// Package r is the respfreeze fixture: it imports the real
// treesched/internal/service and exercises the frozen-response
// contract in both directions.
package r

import (
	"errors"

	"treesched/internal/service"
)

var errSolve = errors.New("solve failed")

// A parameter may alias a cached response — writes are forbidden.
func flagParam(r *service.Response) {
	r.Profit = 1 // want `write through \*service\.Response r that was not built in this function`
}

// A cache read is exactly the shape that aliases shared state.
func flagCacheRead(cache map[string]*service.Response, k string) {
	cache[k].Scheduled = 2 // want `write through \*service\.Response`
}

// Increments are writes too.
func flagIncrement(r *service.Response) {
	r.Demands++ // want `write through \*service\.Response r that was not built in this function`
}

// A freshly built response may be filled before it is shared.
func okFresh(profit float64) *service.Response {
	resp := &service.Response{Profit: profit}
	resp.Scheduled = 1
	resp.Algorithm = "greedy"
	return resp
}

// new() allocates fresh too.
func okNew() *service.Response {
	resp := new(service.Response)
	resp.Demands = 3
	return resp
}

// Clearing a named result in a panic-recovery defer assigns nil, which
// cannot alias a shared Response and keeps the variable fresh (the
// Engine.execute idiom).
func okRecoverClear() (resp *service.Response, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, errSolve
		}
	}()
	resp = &service.Response{}
	resp.Scheduled = 4
	return resp, nil
}

// The audited escape: the rationale must argue pre-publication.
func okAnnotated(r *service.Response) {
	r.Bound = 0 //schedlint:mutable helper runs before the response enters any cache; sole reference is the caller's local
}
