// Package respfreeze makes the serving tier's Response immutability
// contract (PR 8) a compile-time property: a *service.Response that
// has escaped its builder — entered the memoization cache, a
// singleflight, or any shared structure — must never be written again,
// because equal requests are served the same pointer and must marshal
// byte-identically forever.
//
// The analyzer flags every write through a *service.Response access
// path (resp.Field = v, resp.Selected[i] = x, *resp = ...) unless the
// pointer provably originates in the current function: the variable is
// declared there and every value it is ever assigned is a fresh
// &Response{...} or new(Response). Writes through parameters, call
// results, struct fields or cache reads are findings — exactly the
// shapes through which a cached Response could be reached. The audited
// escape is //schedlint:mutable <reason>, whose rationale must argue
// the Response has not yet been shared.
package respfreeze

import (
	"go/ast"
	"go/token"
	"go/types"

	"treesched/internal/lint/analysis"
	"treesched/internal/lint/schedlint"
)

var Analyzer = &analysis.Analyzer{
	Name: "respfreeze",
	Doc:  "forbids writes through *service.Response values not freshly built in the current function",
	Run:  run,
}

// isResponsePtr reports whether t is *service.Response (any package
// named "service", matching how fixtures and the real module both
// resolve).
func isResponsePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Name() == "service" && obj.Name() == "Response"
}

func run(pass *analysis.Pass) (any, error) {
	dirs := schedlint.ParseDirectives(pass)
	for _, f := range pass.Files {
		if schedlint.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		schedlint.WalkStack(f, func(stack []ast.Node, n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					checkWrite(pass, dirs, stack, lhs)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, dirs, stack, s.X)
			}
			return true
		})
	}
	return nil, nil
}

// checkWrite reports lhs when it writes through a non-fresh Response
// pointer.
func checkWrite(pass *analysis.Pass, dirs *schedlint.Directives, stack []ast.Node, lhs ast.Expr) {
	root := responseRoot(pass, lhs)
	if root == nil {
		return
	}
	if fresh(pass, stack, root) {
		return
	}
	if dirs.Allow(pass, lhs.Pos(), "mutable") {
		return
	}
	pass.Reportf(lhs.Pos(), "write through *service.Response %s that was not built in this function: cached responses are shared and frozen; build a fresh Response or annotate //schedlint:mutable <reason>", types.ExprString(root))
}

// responseRoot walks the write path of lhs and returns the expression
// of type *service.Response it goes through, or nil.
func responseRoot(pass *analysis.Pass, lhs ast.Expr) ast.Expr {
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if tv, ok := pass.TypesInfo.Types[x.X]; ok && isResponsePtr(tv.Type) {
				return ast.Unparen(x.X)
			}
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			if tv, ok := pass.TypesInfo.Types[x.X]; ok && isResponsePtr(tv.Type) {
				return ast.Unparen(x.X)
			}
			e = ast.Unparen(x.X)
		default:
			return nil
		}
	}
}

// fresh reports whether root is a local variable of the enclosing
// function whose every assigned value is a freshly allocated Response.
func fresh(pass *analysis.Pass, stack []ast.Node, root ast.Expr) bool {
	id, ok := root.(*ast.Ident)
	if !ok {
		return false // field, call result, map read... never provably fresh
	}
	obj, _ := objOf(pass, id).(*types.Var)
	if obj == nil {
		return false
	}
	fn := schedlint.EnclosingFunc(stack)
	if fn == nil || !schedlint.DeclaredWithin(obj, fn) {
		return false // parameter, captured or global
	}
	// Parameters are declared within the function node's extent too;
	// require at least one fresh assignment and no non-fresh ones.
	sawFresh, sawOther := false, false
	ast.Inspect(fn, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				lid, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || objOf(pass, lid) != types.Object(obj) {
					continue
				}
				if i < len(s.Rhs) && len(s.Lhs) == len(s.Rhs) && freshAlloc(pass, s.Rhs[i]) {
					sawFresh = true
				} else if i < len(s.Rhs) && len(s.Lhs) == len(s.Rhs) && isNilExpr(pass, s.Rhs[i]) {
					// Assigning nil (e.g. clearing a named result in a panic
					// recovery defer) cannot alias a shared Response.
				} else {
					sawOther = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if pass.TypesInfo.Defs[name] != types.Object(obj) {
					continue
				}
				if i < len(s.Values) && freshAlloc(pass, s.Values[i]) {
					sawFresh = true
				} else if len(s.Values) > 0 {
					sawOther = true
				}
				// var resp *Response (no init) counts as neither: writes
				// before a fresh assignment would be nil derefs anyway.
			}
		}
		return true
	})
	return sawFresh && !sawOther
}

// freshAlloc matches &Response{...}, &service.Response{...} and
// new(Response).
func freshAlloc(pass *analysis.Pass, rhs ast.Expr) bool {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		cl, ok := e.X.(*ast.CompositeLit)
		if !ok {
			return false
		}
		tv, ok := pass.TypesInfo.Types[cl]
		return ok && isResponsePtr(types.NewPointer(tv.Type))
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || id.Name != "new" {
			return false
		}
		if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
			return false
		}
		tv, ok := pass.TypesInfo.Types[e]
		return ok && isResponsePtr(tv.Type)
	}
	return false
}

func isNilExpr(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name != "nil" {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Nil)
	return ok
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}
