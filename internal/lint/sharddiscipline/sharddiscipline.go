// Package sharddiscipline checks the closures handed to the par
// fan-out helpers (par.Each, par.Shards, par.Go) against the rule that
// makes their results worker-count-invariant: a shard closure may
// write only through storage it owns — closure-local variables, or
// slots of captured slices reached through an index derived inside the
// closure (the shard index or bounds).
//
// Flagged inside such closures:
//
//   - writes to captured scalars/slices/interfaces (x = ..., x++,
//     xs = append(xs, ...)) — racy and order-dependent;
//   - writes into captured maps (m[k] = v) — the map's internal state
//     is shared and unsynchronized;
//   - writes to fields of captured structs and through captured
//     pointers — shared unless proven disjoint;
//   - captured-slice element writes whose index does not mention any
//     closure-local variable (out[0] = v races across shards).
//
// The escape hatch is //schedlint:owned <reason>, whose rationale must
// argue slot ownership or disjointness (par.Go thunks writing distinct
// fields of one struct are the canonical audited case). Calls through
// sync/atomic or mutexes are not writes in the AST sense and pass
// untouched — the analyzer polices the unsynchronized direct-write
// idiom the compile pipeline is built from.
package sharddiscipline

import (
	"go/ast"
	"go/types"

	"treesched/internal/lint/analysis"
	"treesched/internal/lint/schedlint"
)

var Analyzer = &analysis.Analyzer{
	Name: "sharddiscipline",
	Doc:  "restricts closures passed to par.Each/par.Shards/par.Go to index-owned slot writes",
	Run:  run,
}

// parPath is the fan-out helper package whose callees are checked.
const parPath = "treesched/internal/par"

func run(pass *analysis.Pass) (any, error) {
	dirs := schedlint.ParseDirectives(pass)
	for _, f := range pass.Files {
		if schedlint.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		lits := localFuncLits(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := schedlint.PkgFunc(pass.TypesInfo, call)
			if !ok || pkg != parPath {
				return true
			}
			switch name {
			case "Each", "Shards", "Go":
			default:
				return true
			}
			for _, arg := range call.Args {
				lit := resolveFuncLit(pass, lits, arg)
				if lit != nil {
					checkClosure(pass, dirs, name, lit)
				}
			}
			return true
		})
	}
	return nil, nil
}

// localFuncLits maps variables to the function literal they are bound
// to (`fn := func(...){...}` / `var fn = func(...){...}`), so naming a
// closure before passing it to par doesn't evade the check.
func localFuncLits(pass *analysis.Pass, f *ast.File) map[types.Object]*ast.FuncLit {
	lits := map[types.Object]*ast.FuncLit{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if i >= len(s.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if lit, ok := ast.Unparen(s.Rhs[i]).(*ast.FuncLit); ok {
					if obj := objOf(pass, id); obj != nil {
						lits[obj] = lit
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range s.Names {
				if i >= len(s.Values) {
					break
				}
				if lit, ok := ast.Unparen(s.Values[i]).(*ast.FuncLit); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						lits[obj] = lit
					}
				}
			}
		}
		return true
	})
	return lits
}

func resolveFuncLit(pass *analysis.Pass, lits map[types.Object]*ast.FuncLit, arg ast.Expr) *ast.FuncLit {
	switch a := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return a
	case *ast.Ident:
		if obj := objOf(pass, a); obj != nil {
			return lits[obj]
		}
	}
	return nil
}

// checkClosure walks one shard closure's body and reports every write
// that escapes slot ownership.
func checkClosure(pass *analysis.Pass, dirs *schedlint.Directives, helper string, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Defs[id] != nil {
					continue // new declaration, closure-local by construction
				}
				reportWrite(pass, dirs, helper, lit, lhs)
			}
		case *ast.IncDecStmt:
			reportWrite(pass, dirs, helper, lit, s.X)
		}
		return true
	})
}

// Write-path verdicts.
type verdict int

const (
	ownedLocal     verdict = iota // rooted in closure-local storage
	ownedSlot                     // reached an indexed slot of a captured slice
	capturedVar                   // captured scalar/slice/interface variable
	capturedMap                   // indexing into a captured map
	capturedField                 // field of a captured struct
	capturedPtr                   // through a captured pointer
	capturedNoSlot                // captured-slice element, index not closure-derived
)

var verdictMsg = map[verdict]string{
	capturedVar:    "writes captured variable %s",
	capturedMap:    "writes into captured map %s",
	capturedField:  "writes a field of captured %s",
	capturedPtr:    "writes through captured pointer %s",
	capturedNoSlot: "writes captured slice %s at an index not derived inside the closure",
}

func reportWrite(pass *analysis.Pass, dirs *schedlint.Directives, helper string, lit *ast.FuncLit, lhs ast.Expr) {
	v, root := classify(pass, lit, lhs)
	msg, bad := verdictMsg[v]
	if !bad {
		return
	}
	if dirs.Allow(pass, lhs.Pos(), "owned") {
		return
	}
	pass.Reportf(lhs.Pos(), "par.%s closure "+msg+": shard closures may write only index-owned slots; restructure or annotate //schedlint:owned <reason>", helper, root)
}

// classify resolves the ownership of a write path. It walks the access
// path left-to-right from its root: field selections preserve
// ownership, an index into a slice confers slot ownership (when the
// index mentions a closure-local variable), an index into a map keeps
// map semantics (shared structure), a deref follows the pointer's
// ownership, and call results are treated as local (untrackable).
func classify(pass *analysis.Pass, lit *ast.FuncLit, e ast.Expr) (verdict, string) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := objOf(pass, x)
		v, ok := obj.(*types.Var)
		if !ok {
			return ownedLocal, ""
		}
		if schedlint.DeclaredWithin(v, lit) {
			return ownedLocal, ""
		}
		return capturedVar, x.Name
	case *ast.SelectorExpr:
		// Package-qualified global (pkg.Var) or field path (x.f.g).
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
				return capturedVar, types.ExprString(x)
			}
		}
		v, root := classify(pass, lit, x.X)
		switch v {
		case capturedVar:
			return capturedField, root
		default:
			return v, root
		}
	case *ast.IndexExpr:
		baseV, root := classify(pass, lit, x.X)
		tv, ok := pass.TypesInfo.Types[x.X]
		if !ok {
			return ownedLocal, ""
		}
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			switch baseV {
			case capturedVar, capturedField, capturedPtr, capturedNoSlot:
				return capturedMap, root
			}
			return baseV, root
		default: // slice, array, pointer-to-array
			switch baseV {
			case capturedVar, capturedField, capturedPtr:
				if indexMentionsLocal(pass, lit, x.Index) {
					return ownedSlot, root
				}
				return capturedNoSlot, root
			}
			return baseV, root
		}
	case *ast.StarExpr:
		v, root := classify(pass, lit, x.X)
		switch v {
		case capturedVar, capturedField:
			return capturedPtr, root
		}
		return v, root
	default:
		// Call results, type assertions, channel receives: no static
		// ownership story — leave them to the race detector.
		return ownedLocal, ""
	}
}

// indexMentionsLocal reports whether the index expression references at
// least one variable declared inside the closure — the shard index, or
// bounds derived from it.
func indexMentionsLocal(pass *analysis.Pass, lit *ast.FuncLit, idx ast.Expr) bool {
	found := false
	ast.Inspect(idx, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if v, ok := objOf(pass, id).(*types.Var); ok && schedlint.DeclaredWithin(v, lit) {
			found = true
		}
		return true
	})
	return found
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}
