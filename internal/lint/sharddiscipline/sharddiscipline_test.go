package sharddiscipline_test

import (
	"testing"

	"treesched/internal/lint/analysis/analysistest"
	"treesched/internal/lint/sharddiscipline"
)

func TestShardDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", sharddiscipline.Analyzer, "./src/s")
}
