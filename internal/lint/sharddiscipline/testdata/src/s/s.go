// Package s is the sharddiscipline fixture. It imports the real
// treesched/internal/par so the analyzer sees the exact callee paths it
// polices in the compile pipeline (the cross-package case).
package s

import "treesched/internal/par"

// Captured-map and captured-scalar writes race across shards.
func flagSharedWrites(xs []int) (map[int]int, int) {
	m := map[int]int{}
	total := 0
	par.Each(4, len(xs), func(i int) {
		m[i] = xs[i]   // want `par.Each closure writes into captured map m`
		total += xs[i] // want `par.Each closure writes captured variable total`
	})
	return m, total
}

// Append reassigns the captured slice header: racy and order-dependent.
func flagAppend(xs []int) []int {
	var out []int
	par.Shards(4, len(xs), 8, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			out = append(out, xs[j]) // want `par.Shards closure writes captured variable out`
		}
	})
	return out
}

// A fixed index into a captured slice is not slot ownership.
func flagFixedIndex(xs []int) []int {
	out := make([]int, 1)
	par.Each(2, len(xs), func(i int) {
		out[0] = xs[i] // want `par.Each closure writes captured slice out at an index not derived inside the closure`
	})
	return out
}

// Naming the closure first does not evade the check.
func flagNamed(xs []int) map[int]int {
	m := map[int]int{}
	fn := func(i int) {
		m[i] = xs[i] // want `par.Each closure writes into captured map m`
	}
	par.Each(2, len(xs), fn)
	return m
}

// Index-owned slot writes are the sanctioned shard idiom.
func okSlots(xs []int) []int {
	out := make([]int, len(xs))
	par.Each(4, len(xs), func(i int) {
		out[i] = xs[i] * 2
	})
	return out
}

// Shard ranges own [lo,hi): every write index derives from the bounds.
func okShards(xs []int) []int {
	out := make([]int, len(xs))
	par.Shards(4, len(xs), 8, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			out[j] = xs[j] + 1
		}
	})
	return out
}

// Closure-local state is owned by construction.
func okLocals(xs []int, sums []int) {
	par.Shards(4, len(xs), 8, func(lo, hi int) {
		acc := 0
		for j := lo; j < hi; j++ {
			acc += xs[j]
		}
		sums[lo] = acc
	})
}

// par.Go thunks writing disjoint captured slots carry the audited
// annotation (the model.finalize idiom).
func okAnnotatedGo(xs []int) (int, int) {
	var lo, hi int
	par.Go(2,
		func() {
			//schedlint:owned sole writer of lo; read only after par.Go returns
			lo = min(xs)
		},
		func() {
			//schedlint:owned sole writer of hi; read only after par.Go returns
			hi = max(xs)
		},
	)
	return lo, hi
}

func min(xs []int) int {
	m := 0
	for i, v := range xs {
		if i == 0 || v < m {
			m = v
		}
	}
	return m
}

func max(xs []int) int {
	m := 0
	for i, v := range xs {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}
