package detrange_test

import (
	"testing"

	"treesched/internal/lint/analysis/analysistest"
	"treesched/internal/lint/detrange"
)

func TestDetrange(t *testing.T) {
	analysistest.Run(t, "testdata", detrange.Analyzer, "./src/a", "./src/b")
}
