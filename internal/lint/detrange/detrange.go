// Package detrange flags `range` over maps in determinism-critical
// packages.
//
// Go map iteration order is deliberately randomized, so any map range
// whose body's effect depends on visit order is a nondeterminism bug —
// exactly the class that once produced schedule byte-diffs only at the
// equivalence-test stage. The analyzer proves a small set of loop
// shapes order-insensitive and demands an audited rationale
// (//schedlint:ordered <reason>) for everything else:
//
//   - key collection feeding a sort: the body is a single
//     `xs = append(xs, ...)` and the enclosing function sorts xs;
//   - commutative accumulation: every statement is an integer ++/--,
//     += / -= / |= / &= / ^=, an if-guarded max/min fold, an assignment
//     of a constant, or delete(m, k) keyed by the ranged key (keys are
//     distinct per iteration, so keyed deletes into any map commute);
//   - statements composed of the above under if/blocks (early exits —
//     break/return — are order-sensitive and disqualify the loop).
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"

	"treesched/internal/lint/analysis"
	"treesched/internal/lint/schedlint"
)

var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc:  "flags order-sensitive map iteration in determinism-critical packages",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	dirs := schedlint.ParseDirectives(pass)
	if !schedlint.InCriticalScope(pass, dirs) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if schedlint.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		schedlint.WalkStack(f, func(stack []ast.Node, n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitive(pass, rs, schedlint.EnclosingFunc(stack)) {
				return true
			}
			if dirs.Allow(pass, rs.Pos(), "ordered") {
				return true
			}
			pass.Reportf(rs.Pos(), "range over map %s: iteration order is randomized; sort keys first, use an order-insensitive body, or annotate //schedlint:ordered <reason>", types.ExprString(rs.X))
			return true
		})
	}
	return nil, nil
}

// orderInsensitive reports whether the loop provably computes the same
// result under any iteration order.
func orderInsensitive(pass *analysis.Pass, rs *ast.RangeStmt, enclosing ast.Node) bool {
	if collectThenSort(pass, rs, enclosing) {
		return true
	}
	for _, stmt := range rs.Body.List {
		if !commutativeStmt(pass, rs, stmt) {
			return false
		}
	}
	return true
}

// collectThenSort matches `for k := range m { xs = append(xs, ...) }`
// with a sort of xs somewhere in the enclosing function.
func collectThenSort(pass *analysis.Pass, rs *ast.RangeStmt, enclosing ast.Node) bool {
	if len(rs.Body.List) != 1 || enclosing == nil {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || asg.Tok != token.ASSIGN {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) < 2 {
		return false
	}
	if arg0, ok := call.Args[0].(*ast.Ident); !ok || objOf(pass, arg0) != objOf(pass, dst) {
		return false
	}
	// Look for sort.X(..xs..) / slices.SortX(xs, ...) in the function.
	sorted := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if sorted {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := schedlint.PkgFunc(pass.TypesInfo, c)
		if !ok {
			return true
		}
		isSort := (pkg == "sort" || pkg == "slices") &&
			(len(name) >= 4 && name[:4] == "Sort" || pkg == "sort" && (name == "Strings" || name == "Ints" || name == "Float64s" || name == "Slice" || name == "SliceStable" || name == "Stable"))
		if !isSort {
			return true
		}
		for _, a := range c.Args {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok && objOf(pass, id) == objOf(pass, dst) {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// commutativeStmt reports whether stmt's effect is independent of the
// order it runs in relative to other iterations.
func commutativeStmt(pass *analysis.Pass, rs *ast.RangeStmt, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return isIntegral(pass, s.X)
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Commutative and associative on fixed-width integers (float
			// addition is not: rounding depends on order).
			return isIntegral(pass, s.Lhs[0])
		case token.ASSIGN:
			// Writing a constant is idempotent across iterations; a
			// per-key constant write (set[k] = struct{}{}) likewise.
			tv, ok := pass.TypesInfo.Types[s.Rhs[0]]
			return ok && (tv.Value != nil || isEmptyCompositeLit(s.Rhs[0]))
		}
		return false
	case *ast.ExprStmt:
		// delete(m, k) keyed by the ranged key: the key is distinct per
		// iteration, so deletes into ANY map commute — including the
		// drain pattern `for id := range pending { delete(jobs, id) }`.
		call, ok := s.X.(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call.Fun, "delete") || len(call.Args) != 2 {
			return false
		}
		return rs.Key != nil && types.ExprString(call.Args[1]) == types.ExprString(rs.Key)
	case *ast.IfStmt:
		if s.Init != nil {
			return false
		}
		if foldAssign(pass, s) {
			return true
		}
		for _, inner := range s.Body.List {
			if !commutativeStmt(pass, rs, inner) {
				return false
			}
		}
		if s.Else != nil {
			block, ok := s.Else.(*ast.BlockStmt)
			if !ok {
				return false
			}
			for _, inner := range block.List {
				if !commutativeStmt(pass, rs, inner) {
					return false
				}
			}
		}
		return true
	case *ast.BlockStmt:
		for _, inner := range s.List {
			if !commutativeStmt(pass, rs, inner) {
				return false
			}
		}
		return true
	}
	return false
}

// foldAssign matches the max/min fold `if a < b { a = b }` (any of
// < > <= >=, operands either order): the final value is the extremum,
// independent of iteration order.
func foldAssign(pass *analysis.Pass, s *ast.IfStmt) bool {
	cmp, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	switch cmp.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	asg, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	lhs, rhs := types.ExprString(asg.Lhs[0]), types.ExprString(asg.Rhs[0])
	a, b := types.ExprString(cmp.X), types.ExprString(cmp.Y)
	return (lhs == a && rhs == b) || (lhs == b && rhs == a)
}

func isEmptyCompositeLit(e ast.Expr) bool {
	cl, ok := ast.Unparen(e).(*ast.CompositeLit)
	return ok && len(cl.Elts) == 0
}

func isIntegral(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}
