// Package b has no //schedlint:critical opt-in and is not on the
// critical-path roster, so even an order-sensitive map range is out of
// scope: detrange polices determinism-critical packages only.
package b

func UnorderedJoin(m map[string]string) string {
	s := ""
	for _, v := range m {
		s += v
	}
	return s
}
