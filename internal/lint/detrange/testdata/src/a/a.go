// Package a is the detrange fixture: map ranges whose bodies are
// order-sensitive (flagged), provably order-insensitive (allowed), and
// annotated (allowed, audited).
package a

import "sort"

//schedlint:critical

// Appending map values with no later sort depends on visit order.
func flagAppendNoSort(m map[int]int) []int {
	out := []int{}
	for _, v := range m { // want `range over map m: iteration order is randomized`
		out = append(out, v)
	}
	return out
}

// String concatenation is order-sensitive (not an integer accumulator).
func flagConcat(m map[string]string) string {
	s := ""
	for _, v := range m { // want `range over map m: iteration order is randomized`
		s += v
	}
	return s
}

// Early exit makes the observed element order-dependent.
func flagEarlyExit(m map[int]int) int {
	for k, v := range m { // want `range over map m: iteration order is randomized`
		if v > 10 {
			return k
		}
	}
	return -1
}

// Collect-then-sort: the canonical deterministic iteration idiom.
func okCollectSort(m map[int]int) []int {
	keys := []int{}
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Pure counting commutes.
func okCount(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Integer accumulation and a max fold commute.
func okAccumulate(m map[int]int) (int, int) {
	sum, best := 0, 0
	for _, v := range m {
		sum += v
		if best < v {
			best = v
		}
	}
	return sum, best
}

// Keyed deletes into another map commute: each key occurs once.
func okDrain(pending map[int]struct{}, jobs map[int]string) {
	for id := range pending {
		delete(jobs, id)
	}
}

// Constant per-key writes commute (set building).
func okSet(m map[int]int) map[int]struct{} {
	set := make(map[int]struct{})
	for k := range m {
		set[k] = struct{}{}
	}
	return set
}

// The audited escape hatch: order-sensitivity argued away in review.
func okAnnotated(m map[int]int, dst map[int]int) {
	//schedlint:ordered keyed writes land in distinct slots; no cross-key state
	for k, v := range m {
		dst[k] = v + 1
	}
}

// A directive with no rationale still suppresses but is itself flagged.
func okBareDirective(m map[int]int, dst map[int]int) {
	// want+1 `//schedlint:ordered needs a one-line rationale`
	for k, v := range m { //schedlint:ordered
		dst[k] = v + 1
	}
}
