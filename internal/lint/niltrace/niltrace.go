// Package niltrace pins the zero-overhead telemetry contract
// structurally: obs handle types (Trace, Recorder, Req, RoundLog) flow
// nil through instrumented code by design, so their methods must be
// nil-safe and their values must never be dereferenced unguarded.
//
// Inside the obs package (any package named "obs" declaring these
// types) every pointer-receiver method must either open with a
// `if recv == nil` guard that returns, or never use its receiver. A
// method whose callers genuinely guarantee non-nil receivers is
// annotated //schedlint:nonnil <reason> — but the default posture is a
// guard, because one unguarded method turns every instrumented call
// site into a latent panic that only fires with telemetry disabled.
//
// Outside obs, dereferencing (*t, value copies) a *obs.Trace /
// *obs.Recorder / *obs.Req / *obs.RoundLog is flagged unless an
// enclosing `if x != nil` dominates it or the site carries
// //schedlint:nonnil <reason>. Method calls need no guard — that is
// the point of the contract.
package niltrace

import (
	"go/ast"
	"go/token"
	"go/types"

	"treesched/internal/lint/analysis"
	"treesched/internal/lint/schedlint"
)

var Analyzer = &analysis.Analyzer{
	Name: "niltrace",
	Doc:  "enforces nil-safety of obs telemetry handles (methods guard nil; call sites never deref)",
	Run:  run,
}

// handleTypes are the obs types whose pointers flow nil by contract.
var handleTypes = map[string]bool{
	"Trace": true, "Recorder": true, "Req": true, "RoundLog": true,
}

// isHandlePtr reports whether t is *obs.Trace (etc.) for any package
// named obs.
func isHandlePtr(t types.Type) (string, bool) {
	p, ok := t.(*types.Pointer)
	if !ok {
		return "", false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "obs" || !handleTypes[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}

func run(pass *analysis.Pass) (any, error) {
	dirs := schedlint.ParseDirectives(pass)
	if pass.Pkg.Name() == "obs" {
		checkMethods(pass, dirs)
		return nil, nil
	}
	checkCallSites(pass, dirs)
	return nil, nil
}

// checkMethods enforces the method side of the contract in obs itself.
func checkMethods(pass *analysis.Pass, dirs *schedlint.Directives) {
	for _, f := range pass.Files {
		if schedlint.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			recvType := pass.TypesInfo.Types[fd.Recv.List[0].Type]
			typeName, ok := isHandlePtr(recvType.Type)
			if !ok {
				continue
			}
			recv := receiverObj(pass, fd)
			if recv == nil || !receiverUsed(pass, fd, recv) {
				continue // no receiver use: vacuously nil-safe
			}
			if opensWithNilGuard(fd.Body, recv.Name()) {
				continue
			}
			if dirs.Allow(pass, fd.Pos(), "nonnil") {
				continue
			}
			pass.Reportf(fd.Pos(), "(*%s).%s is not nil-safe: obs handles flow nil by contract; open with `if %s == nil` or annotate //schedlint:nonnil <reason>", typeName, fd.Name.Name, recv.Name())
		}
	}
}

func receiverObj(pass *analysis.Pass, fd *ast.FuncDecl) *types.Var {
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	v, _ := pass.TypesInfo.Defs[names[0]].(*types.Var)
	return v
}

// receiverUsed reports whether the method body dereferences its
// receiver. Using the receiver purely as the target of another method
// call (r.completed(...)) is not a dereference: the contract makes
// every handle method nil-safe, so nil-safety composes through calls.
func receiverUsed(pass *analysis.Pass, fd *ast.FuncDecl, recv *types.Var) bool {
	used := false
	schedlint.WalkStack(fd.Body, func(stack []ast.Node, n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != recv || used {
			return !used
		}
		if len(stack) >= 2 {
			if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.X == id {
				if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == sel {
					if _, isMethod := pass.TypesInfo.Uses[sel.Sel].(*types.Func); isMethod {
						return true // method call on the receiver: nil-safe by contract
					}
				}
			}
		}
		used = true
		return false
	})
	return used
}

// opensWithNilGuard matches a first statement of the form
// `if recv == nil { ... return }` or `if recv == nil || <more> { ... return }`.
func opensWithNilGuard(body *ast.BlockStmt, recvName string) bool {
	if len(body.List) == 0 {
		return true // empty body
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil || !condChecksNil(ifs.Cond, recvName, token.EQL) {
		return false
	}
	if len(ifs.Body.List) == 0 {
		return false
	}
	_, isReturn := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt)
	return isReturn
}

// condChecksNil reports whether cond is `name <op> nil` or an `||`/`&&`
// chain whose leftmost comparison is.
func condChecksNil(cond ast.Expr, name string, op token.Token) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if c.Op == token.LOR || c.Op == token.LAND {
			return condChecksNil(c.X, name, op) || condChecksNil(c.Y, name, op)
		}
		if c.Op != op {
			return false
		}
		return (isIdentNamed(c.X, name) && isNil(c.Y)) || (isIdentNamed(c.Y, name) && isNil(c.X))
	}
	return false
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

func isNil(e ast.Expr) bool { return isIdentNamed(e, "nil") }

// checkCallSites flags unguarded dereferences of handle pointers
// outside obs.
func checkCallSites(pass *analysis.Pass, dirs *schedlint.Directives) {
	for _, f := range pass.Files {
		if schedlint.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		schedlint.WalkStack(f, func(stack []ast.Node, n ast.Node) bool {
			star, ok := n.(*ast.StarExpr)
			if !ok {
				return true
			}
			// Skip type expressions (*obs.Trace in signatures).
			if tv, ok := pass.TypesInfo.Types[star]; !ok || tv.IsType() {
				return true
			}
			opTV, ok := pass.TypesInfo.Types[star.X]
			if !ok {
				return true
			}
			typeName, ok := isHandlePtr(opTV.Type)
			if !ok {
				return true
			}
			if guardedNonNil(stack, star.X) {
				return true
			}
			if dirs.Allow(pass, star.Pos(), "nonnil") {
				return true
			}
			pass.Reportf(star.Pos(), "dereference of possibly-nil *obs.%s: telemetry handles flow nil by contract; guard with `if %s != nil` or annotate //schedlint:nonnil <reason>", typeName, types.ExprString(star.X))
			return true
		})
	}
}

// guardedNonNil reports whether an enclosing if's condition contains
// `expr != nil` for the dereferenced expression.
func guardedNonNil(stack []ast.Node, operand ast.Expr) bool {
	want := types.ExprString(ast.Unparen(operand))
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		if condMentionsNotNil(ifs.Cond, want) {
			return true
		}
	}
	return false
}

func condMentionsNotNil(cond ast.Expr, want string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != token.NEQ || found {
			return !found
		}
		if (types.ExprString(ast.Unparen(b.X)) == want && isNil(b.Y)) ||
			(types.ExprString(ast.Unparen(b.Y)) == want && isNil(b.X)) {
			found = true
		}
		return true
	})
	return found
}
