// Package obs is the niltrace method-side fixture: a package named obs
// declaring handle types is held to the nil-safe-method contract.
package obs

// Trace mirrors the real telemetry handle: nil means "telemetry off".
type Trace struct{ n int }

// Recorder mirrors the request recorder handle.
type Recorder struct {
	off bool
	n   int
}

// An unguarded receiver read panics the moment telemetry is disabled.
func (t *Trace) Bump() { t.n++ } // want `\(\*Trace\)\.Bump is not nil-safe`

func (r *Recorder) Seq() int { return r.n } // want `\(\*Recorder\)\.Seq is not nil-safe`

// The canonical guard: open with `if t == nil`.
func (t *Trace) Count() int {
	if t == nil {
		return 0
	}
	return t.n
}

// A compound guard whose first clause checks nil still dominates.
func (r *Recorder) Enabled() bool {
	if r == nil || r.off {
		return false
	}
	return true
}

// Using the receiver only to call other handle methods composes
// nil-safety: the callee guards.
func (t *Trace) Twice() int { return t.Count() + t.Count() }

// No receiver use: vacuously nil-safe.
func (t *Trace) Kind() string { return "trace" }

// The audited escape for methods with a proven non-nil calling context.
//
//schedlint:nonnil only reachable from Count past its own nil guard
func (t *Trace) raw() int { return t.n }
