// Package calls is the niltrace call-site fixture: it imports the real
// treesched/internal/obs and exercises the deref-side contract.
package calls

import "treesched/internal/obs"

// Copying through an unguarded handle pointer panics when telemetry is
// off (the handle is nil by design, not by accident).
func flagCopyTrace(t *obs.Trace) obs.Trace {
	return *t // want `dereference of possibly-nil \*obs\.Trace`
}

func flagCopyRecorder(r *obs.Recorder) obs.Recorder {
	return *r // want `dereference of possibly-nil \*obs\.Recorder`
}

// A dominating `!= nil` check makes the deref safe.
func okGuarded(t *obs.Trace) int {
	if t != nil {
		v := *t
		_ = v
		return 1
	}
	return 0
}

// Method calls never need a guard — that is the whole contract.
func okMethods(t *obs.Trace) {
	s := t.Begin("phase")
	t.End(s)
}

// The audited escape for call sites with external non-nil proof.
func okAnnotated(t *obs.Trace) obs.Trace {
	return *t //schedlint:nonnil caller constructs t unconditionally one frame up
}
