package niltrace_test

import (
	"testing"

	"treesched/internal/lint/analysis/analysistest"
	"treesched/internal/lint/niltrace"
)

func TestNilTrace(t *testing.T) {
	analysistest.Run(t, "testdata", niltrace.Analyzer, "./src/obs", "./src/calls")
}
