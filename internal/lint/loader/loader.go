// Package loader turns Go packages on disk into type-checked
// analysis-ready units without golang.org/x/tools: package discovery
// and export data come from `go list -export`, and type checking uses
// the standard library's gc importer fed those export files. Both
// schedvet drivers (standalone patterns and the `go vet -vettool`
// unitchecker protocol) and the analysistest harness load through this
// package, so every path type-checks fixtures and real code the same
// way.
package loader

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes. DepOnly marks packages present only as dependencies of the
// named patterns.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` on patterns in dir and
// decodes the JSON stream. -e keeps going on broken packages so the
// caller can surface a precise error.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Standard,Export,DepOnly,GoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// ExportsFor resolves importPaths (and their transitive dependencies)
// to export data files, for type-checking sources that import them.
// dir must lie inside the module.
func ExportsFor(dir string, importPaths []string) (map[string]string, error) {
	if len(importPaths) == 0 {
		return map[string]string{}, nil
	}
	sort.Strings(importPaths)
	pkgs, err := goList(dir, importPaths)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// NewImporter builds a types.Importer that reads gc export data from
// the files in exports (canonical import path -> export file), after
// translating source-level paths through importMap (nil when source
// paths are already canonical, as in module mode without vendoring).
func NewImporter(fset *token.FileSet, exports, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return &mappedImporter{
		base:      importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
		importMap: importMap,
	}
}

type mappedImporter struct {
	base      types.ImporterFrom
	importMap map[string]string
}

func (m *mappedImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *mappedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if canon, ok := m.importMap[path]; ok {
		path = canon
	}
	return m.base.ImportFrom(path, dir, mode)
}

// ParseFiles parses filenames (with comments — the schedlint escape
// hatches live there) into fset.
func ParseFiles(fset *token.FileSet, filenames []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// TypeCheck type-checks files as package importPath, resolving imports
// through imp. All type errors are collected and returned as one error.
func TypeCheck(fset *token.FileSet, importPath string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if len(typeErrs) > 0 {
		return pkg, info, errors.Join(typeErrs...)
	}
	if err != nil {
		return pkg, info, err
	}
	return pkg, info, nil
}

// LoadPatterns loads the packages named by patterns (relative to dir;
// "./..." by default) with full type information. Dependencies are
// imported from export data, so only the named packages pay source
// parsing and type checking.
func LoadPatterns(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset, exports, nil)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		// go list emits file names relative to the package directory.
		names := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			if filepath.IsAbs(f) {
				names[i] = f
			} else {
				names[i] = filepath.Join(p.Dir, f)
			}
		}
		files, err := ParseFiles(fset, names)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		tpkg, info, err := TypeCheck(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("%s: type checking: %v", p.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return out, nil
}
