// Package schedlint holds what the five analyzers share: the roster of
// determinism-critical packages, the //schedlint: escape-hatch
// directive grammar, and small AST/type helpers.
//
// # Escape hatches
//
// Every analyzer has exactly one annotation verb, and every annotation
// must carry a one-line rationale — the point is an audited exception,
// not a mute button:
//
//	//schedlint:ordered <why this map iteration is order-insensitive>
//	//schedlint:statsonly <why this clock/rand read cannot reach outputs>
//	//schedlint:owned <why this captured write is slot-owned or disjoint>
//	//schedlint:nonnil <why this receiver/value is provably non-nil here>
//	//schedlint:mutable <why this Response is not yet shared>
//
// A directive applies to the flagged line when written at the end of
// that line or on the line directly above it. A directive with no
// rationale is itself a diagnostic.
//
// The additional file-scope directive `//schedlint:critical` opts a
// package into the determinism-critical set regardless of import path
// (used by new packages that want coverage before joining the roster,
// and by the analyzers' own test fixtures).
package schedlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"treesched/internal/lint/analysis"
)

// CriticalPrefixes is the determinism-critical package roster: the
// packages whose outputs must be byte-identical across engines, worker
// counts and cache states. A package is in scope when its import path
// equals a prefix or sits beneath one (so internal/online/trace rides
// on internal/online).
var CriticalPrefixes = []string{
	"treesched/internal/core",
	"treesched/internal/model",
	"treesched/internal/dist",
	"treesched/internal/conflict",
	"treesched/internal/mis",
	"treesched/internal/lp",
	"treesched/internal/layered",
	"treesched/internal/online",
}

// prefix is the directive marker. Like all Go tool directives there is
// no space after "//".
const prefix = "//schedlint:"

// Directive is one parsed //schedlint: comment.
type Directive struct {
	Verb   string // "ordered", "statsonly", ...
	Reason string // rest of the line, trimmed
	Pos    token.Pos
}

// Directives indexes every //schedlint: comment of a pass by file and
// line, for the at-or-above lookup the analyzers use.
type Directives struct {
	fset     *token.FileSet
	byLine   map[string]map[int]Directive
	critical bool
}

// ParseDirectives scans all comments of the pass. Directives on lines
// of _test.go files are indexed too (harmless: analyzers skip test
// files before consulting them).
func ParseDirectives(pass *analysis.Pass) *Directives {
	d := &Directives{fset: pass.Fset, byLine: map[string]map[int]Directive{}}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, prefix)
				if !ok {
					continue
				}
				verb, reason, _ := strings.Cut(text, " ")
				if verb == "critical" {
					d.critical = true
					continue
				}
				p := pass.Fset.Position(c.Pos())
				lines := d.byLine[p.Filename]
				if lines == nil {
					lines = map[int]Directive{}
					d.byLine[p.Filename] = lines
				}
				lines[p.Line] = Directive{Verb: verb, Reason: strings.TrimSpace(reason), Pos: c.Pos()}
			}
		}
	}
	return d
}

// Critical reports whether any file of the pass carries the
// //schedlint:critical opt-in.
func (d *Directives) Critical() bool { return d.critical }

// At returns the directive covering pos — same line or the line
// directly above — if its verb matches.
func (d *Directives) At(pos token.Pos, verb string) (Directive, bool) {
	p := d.fset.Position(pos)
	lines := d.byLine[p.Filename]
	if lines == nil {
		return Directive{}, false
	}
	for _, line := range [...]int{p.Line, p.Line - 1} {
		if dir, ok := lines[line]; ok && dir.Verb == verb {
			return dir, true
		}
	}
	return Directive{}, false
}

// Allow is the analyzer-side escape-hatch check: if pos carries the
// verb's directive with a rationale it returns true; a directive with
// no rationale is reported and still suppresses the underlying finding
// (the annotation is present, just incomplete).
func (d *Directives) Allow(pass *analysis.Pass, pos token.Pos, verb string) bool {
	dir, ok := d.At(pos, verb)
	if !ok {
		return false
	}
	if dir.Reason == "" {
		pass.Reportf(dir.Pos, "//schedlint:%s needs a one-line rationale after the verb", verb)
	}
	return true
}

// InCriticalScope reports whether the pass's package is on the
// determinism-critical roster (or opted in via //schedlint:critical).
func InCriticalScope(pass *analysis.Pass, dirs *Directives) bool {
	if dirs.Critical() {
		return true
	}
	path := pass.Pkg.Path()
	// go vet type-checks external test packages as "<path>_test" and
	// test binaries as "<path>.test"; scope them with their subject.
	path = strings.TrimSuffix(strings.TrimSuffix(path, "_test"), ".test")
	for _, p := range CriticalPrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// IsTestFile reports whether pos lies in a _test.go file. The contracts
// cover solver and serving code; tests range maps and read clocks
// freely.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// PkgFunc resolves a call expression's callee to (package path,
// function name) when it is a package-level function selected via its
// package (time.Now, par.Each, rand.Float64...).
func PkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return "", "", false
	}
	// Require a package qualifier (not a method or a field of func type).
	if id, okID := ast.Unparen(sel.X).(*ast.Ident); okID {
		if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
			return obj.Pkg().Path(), obj.Name(), true
		}
	}
	return "", "", false
}

// WalkStack walks the file like ast.Inspect but hands the visitor the
// stack of enclosing nodes (outermost first, not including n itself).
func WalkStack(root ast.Node, visit func(stack []ast.Node, n ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := visit(stack, n)
		if !descend {
			// Children are skipped, so ast.Inspect sends no closing nil
			// for n — don't push it.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// EnclosingFunc returns the innermost function declaration or literal
// in stack, or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// DeclaredWithin reports whether obj's declaration position lies inside
// node's extent — the "captured vs local" test for closures.
func DeclaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() != token.NoPos && obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}
