// Package wallclock forbids nondeterministic value sources — the wall
// clock and the global math/rand stream — in determinism-critical
// packages.
//
// The solvers' byte-identical-schedule guarantee dies the moment a
// time.Now or an unseeded random draw can influence an output, so in
// the critical roster every use of time.Now/Since/Until and every
// math/rand package-level draw is a finding. Seeded *rand.Rand values
// (rand.New(rand.NewSource(seed)) threaded from Options.Seed) are the
// repo's sanctioned randomness and stay legal: only the constructors
// New/NewSource (and the v2 PCG/ChaCha8 equivalents) are exempt, since
// they produce deterministic streams from explicit seeds.
//
// Genuinely stats-only clock reads (build-phase timing, BSP superstep
// wall-time) are annotated //schedlint:statsonly <reason>; the reason
// must argue the value cannot flow into solver outputs, and for
// model.BuildStats that argument is additionally pinned by
// TestBuildStatsDoesNotInfluenceModel.
package wallclock

import (
	"go/ast"
	"go/types"

	"treesched/internal/lint/analysis"
	"treesched/internal/lint/schedlint"
)

var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "forbids time.Now/Since/Until and global math/rand draws in determinism-critical packages",
	Run:  run,
}

// timeFuncs are the clock reads that leak wall time as values.
// (time.Sleep changes timing, not values, and the solvers never call
// it; add it here if that changes.)
var timeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededConstructors build deterministic generators from explicit
// seeds and are therefore allowed.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	dirs := schedlint.ParseDirectives(pass)
	if !schedlint.InCriticalScope(pass, dirs) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if schedlint.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Only package-qualified references: methods on a seeded
			// *rand.Rand (rng.Float64()) resolve to a receiver, not a
			// PkgName, and stay legal.
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); !isPkg {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if timeFuncs[obj.Name()] && !dirs.Allow(pass, sel.Pos(), "statsonly") {
					pass.Reportf(sel.Pos(), "time.%s in determinism-critical package: wall time must not reach solver state; thread timing through stats hooks and annotate //schedlint:statsonly <reason>", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				if !seededConstructors[obj.Name()] && !dirs.Allow(pass, sel.Pos(), "statsonly") {
					pass.Reportf(sel.Pos(), "%s.%s draws from the global math/rand stream: use a seeded *rand.Rand from Options.Seed, or annotate //schedlint:statsonly <reason>", obj.Pkg().Name(), obj.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}
