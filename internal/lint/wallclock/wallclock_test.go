package wallclock_test

import (
	"testing"

	"treesched/internal/lint/analysis/analysistest"
	"treesched/internal/lint/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata", wallclock.Analyzer, "./src/w", "./src/w2")
}
