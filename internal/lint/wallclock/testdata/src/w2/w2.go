// Package w2 is out of scope (no roster match, no critical opt-in):
// harness and CLI code may read the clock freely.
package w2

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
