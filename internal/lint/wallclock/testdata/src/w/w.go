// Package w is the wallclock fixture: clock reads and global rand
// draws (flagged), seeded generators and annotated stats reads
// (allowed).
package w

import (
	"math/rand"
	"time"
)

//schedlint:critical

// Reading the wall clock in solver code breaks run-to-run determinism.
func flagNow() int64 {
	return time.Now().UnixNano() // want `time.Now in determinism-critical package`
}

// time.Since is a clock read too.
func flagSince(t0 time.Time) int64 {
	return time.Since(t0).Nanoseconds() // want `time.Since in determinism-critical package`
}

// The global math/rand stream is seeded from outside the solver's
// control.
func flagGlobalRand(n int) int {
	return rand.Intn(n) // want `rand.Intn draws from the global math/rand stream`
}

// A seeded *rand.Rand is the sanctioned randomness: the constructors
// are exempt and its methods resolve to a receiver, not the package.
func okSeeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// Formatting a caller-supplied time is not a clock read.
func okFormat(t0 time.Time) string {
	return t0.Format(time.RFC3339)
}

// The audited escape hatch for genuinely stats-only timing.
func okAnnotated() int64 {
	begin := time.Now() //schedlint:statsonly phase timing exported via stats; never read back into solver state
	return begin.UnixNano()
}

// A bare directive suppresses but is flagged for its missing rationale.
func okBareDirective() time.Time {
	// want+1 `//schedlint:statsonly needs a one-line rationale`
	return time.Now() //schedlint:statsonly
}
