// Package driver runs schedlint analyzers in the two ways CI and
// developers invoke them:
//
//   - standalone: `schedvet [-json] [packages]` loads packages via
//     `go list` and prints findings (humans and scripts);
//   - vettool: `go vet -vettool=$(which schedvet) ./...` speaks the
//     cmd/go unitchecker protocol — the -flags/-V=full handshake
//     followed by one vet.cfg invocation per package — so the suite
//     runs under the build cache with test files included, exactly
//     like a stock vet analyzer.
//
// The protocol implementation mirrors what x/tools' unitchecker does
// (that dependency is unavailable offline): respond to -flags with the
// tool's flag schema, respond to -V=full with a content hash of the
// tool binary (cmd/go keys its vet result cache on it), and treat a
// single *.cfg argument as a unitchecker config.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"treesched/internal/lint/analysis"
	"treesched/internal/lint/loader"
)

// Finding is the JSON shape of one diagnostic in -json mode.
type Finding struct {
	Analyzer string `json:"analyzer"`
	Package  string `json:"package"`
	Pos      string `json:"pos"` // file:line:col
	Message  string `json:"message"`
}

// Exit codes, matching the stock vet convention: 1 is a driver or
// typecheck failure, 2 means diagnostics were reported.
const (
	exitOK    = 0
	exitError = 1
	exitDiags = 2
)

// Main is the schedvet entry point. It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	os.Exit(run(analyzers))
}

func run(analyzers []*analysis.Analyzer) int {
	// The cmd/go handshake arrives before flag parsing: -V=full must
	// print a line whose final field is a buildID cmd/go can cache on,
	// and -flags must describe the tool's flags as JSON.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			printVersion()
			return exitOK
		case "-flags", "--flags":
			// No analyzer flags are exposed to cmd/go: -json and -list are
			// for direct invocations only.
			fmt.Println("[]")
			return exitOK
		}
	}

	fs := flag.NewFlagSet("schedvet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout (exit 0 even with findings)")
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: schedvet [-json] [-list] [package ...]\n")
		fmt.Fprintf(fs.Output(), "       go vet -vettool=$(command -v schedvet) ./...\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-16s %s\n", a.Name, firstLine(a.Doc))
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return exitError
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, firstLine(a.Doc))
		}
		return exitOK
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitcheck(args[0], analyzers)
	}
	return standalone(args, *jsonOut, analyzers)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// printVersion emits the -V=full line. cmd/go requires the form
// "<name> version <v> ... buildID=<id>" and caches vet results under
// the id, so hashing the binary's own contents makes rebuilt tools
// invalidate stale results automatically.
func printVersion() {
	name := filepath.Base(os.Args[0])
	data, err := os.ReadFile(os.Args[0])
	if err != nil {
		fmt.Printf("%s version devel schedlint\n", name)
		return
	}
	h := sha256.Sum256(data)
	fmt.Printf("%s version devel schedlint buildID=%02x\n", name, string(h[:12]))
}

// vetConfig is the unitchecker config cmd/go writes for each package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck runs one vet.cfg unit: typecheck from the supplied export
// data, run every analyzer, print findings to stderr.
func unitcheck(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedvet: %v\n", err)
		return exitError
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "schedvet: parsing %s: %v\n", cfgFile, err)
		return exitError
	}
	// Facts output: schedlint analyzers export none, but cmd/go caches
	// the (empty) file, so always produce it — including for VetxOnly
	// dependency units, which need nothing else.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "schedvet: %v\n", err)
			return exitError
		}
	}
	if cfg.VetxOnly {
		return exitOK
	}

	fset := token.NewFileSet()
	files, err := loader.ParseFiles(fset, cfg.GoFiles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedvet: %v\n", err)
		return exitError
	}
	imp := loader.NewImporter(fset, cfg.PackageFile, cfg.ImportMap)
	tpkg, info, err := loader.TypeCheck(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return exitOK
		}
		fmt.Fprintf(os.Stderr, "schedvet: %s: %v\n", cfg.ImportPath, err)
		return exitError
	}
	pkg := &loader.Package{
		ImportPath: cfg.ImportPath, Dir: cfg.Dir,
		Fset: fset, Files: files, Types: tpkg, Info: info,
	}
	findings, err := Analyze([]*loader.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedvet: %v\n", err)
		return exitError
	}
	if len(findings) == 0 {
		return exitOK
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", f.Pos, f.Message, f.Analyzer)
	}
	return exitDiags
}

// standalone loads patterns through go list and reports findings.
func standalone(patterns []string, jsonOut bool, analyzers []*analysis.Analyzer) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedvet: %v\n", err)
		return exitError
	}
	pkgs, err := loader.LoadPatterns(wd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedvet: %v\n", err)
		return exitError
	}
	findings, err := Analyze(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedvet: %v\n", err)
		return exitError
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "schedvet: %v\n", err)
			return exitError
		}
		return exitOK
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", f.Pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return exitDiags
	}
	return exitOK
}

// Analyze runs every analyzer over every package and returns findings
// ordered by (file, line, column, analyzer).
func Analyze(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Package:  pkg.ImportPath,
					Pos:      pkg.Fset.Position(d.Pos).String(),
					Message:  d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos != findings[j].Pos {
			return posLess(findings[i].Pos, findings[j].Pos)
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// posLess orders "file:line:col" strings by file then numeric position.
func posLess(a, b string) bool {
	fa, la, ca := splitPos(a)
	fb, lb, cb := splitPos(b)
	if fa != fb {
		return fa < fb
	}
	if la != lb {
		return la < lb
	}
	return ca < cb
}

func splitPos(p string) (file string, line, col int) {
	// Rightmost two colon-separated fields are line and column.
	i := strings.LastIndexByte(p, ':')
	if i < 0 {
		return p, 0, 0
	}
	fmt.Sscanf(p[i+1:], "%d", &col)
	j := strings.LastIndexByte(p[:i], ':')
	if j < 0 {
		return p[:i], 0, 0
	}
	fmt.Sscanf(p[j+1:i], "%d", &line)
	return p[:j], line, col
}
