// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against expectations written in the fixtures
// themselves, in the style of golang.org/x/tools analysistest (which
// this repo cannot vendor):
//
//	for _, v := range m { // want `range over map m`
//	}
//
// A `// want` comment holds one or more quoted regexps (double- or
// back-quoted); each must match exactly one diagnostic reported on the
// comment's line, and every diagnostic must be matched by some want.
// The variant `// want+N` expects the diagnostics N lines below the
// comment — needed when the expected diagnostic sits on a line whose
// comment slot is taken by a //schedlint: directive (a line comment
// runs to end of line, so directive and want cannot share one).
//
// Fixture packages live under each analyzer's testdata/src/ directory.
// They are real packages of this module — `go list` ignores testdata
// during ./... expansion, so builds and vet never see them, but they
// may import real module packages (par, obs, service), which keeps the
// fixtures type-identical to the code the analyzers police.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"treesched/internal/lint/analysis"
	"treesched/internal/lint/loader"
)

// Run loads the fixture packages named by patterns (relative to dir,
// conventionally "testdata") and checks a's diagnostics against the
// fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := loader.LoadPatterns(dir, patterns)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages matched %v", patterns)
	}
	for _, pkg := range pkgs {
		runPkg(t, a, pkg)
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

func runPkg(t *testing.T, a *analysis.Analyzer, pkg *loader.Package) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: running %s: %v", pkg.ImportPath, a.Name, err)
	}
	wants := collectWants(t, pkg)
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		ws := wants[lineKey{p.Filename, p.Line}]
		matched := false
		for i := range ws {
			if !ws[i].used && ws[i].re.MatchString(d.Message) {
				ws[i].used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.re)
			}
		}
	}
}

// wantRx matches `// want` and `// want+N` comment heads.
var wantRx = regexp.MustCompile(`^//\s*want(\+\d+)?\s+(.*)$`)

// collectWants indexes every want expectation of the package by the
// file and line its diagnostics are expected on.
func collectWants(t *testing.T, pkg *loader.Package) map[lineKey][]want {
	t.Helper()
	wants := map[lineKey][]want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				line := p.Line
				if m[1] != "" {
					off, _ := strconv.Atoi(m[1][1:])
					line += off
				}
				k := lineKey{p.Filename, line}
				for _, pat := range quotedStrings(t, p.String(), m[2]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", p, pat, err)
					}
					wants[k] = append(wants[k], want{re: re})
				}
			}
		}
	}
	return wants
}

// quotedStrings parses the sequence of Go string literals making up a
// want comment's body.
func quotedStrings(t *testing.T, at, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: want comment needs quoted regexps, got %q: %v", at, s, err)
		}
		u, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s: unquoting %s: %v", at, q, err)
		}
		out = append(out, u)
		s = s[len(q):]
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment with no patterns", at)
	}
	return out
}
