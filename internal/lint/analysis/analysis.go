// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface that the schedlint
// analyzers program against.
//
// The container this repo builds in has no module proxy, so the usual
// x/tools dependency cannot be fetched; rather than hand-rolling five
// ad-hoc AST walkers, the analyzers are written exactly as go/analysis
// analyzers (an Analyzer with a Run(*Pass) hook reporting Diagnostics)
// against this package, and the drivers — cmd/schedvet standalone mode,
// the `go vet -vettool` unitchecker protocol, and the analysistest
// harness — construct Passes the same way the real drivers do. If the
// proxy ever becomes reachable, swapping the import path back to
// x/tools is a mechanical change; no analyzer logic depends on anything
// beyond this file.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name (used in diagnostics,
// JSON output and escape-hatch documentation), a Doc string whose first
// line is the short summary, and the Run hook.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// Pass carries one analyzed package to an Analyzer's Run: the parsed
// files, the type-checked package and its use/def/selection maps, and
// the Report sink. A Pass is valid only for the duration of Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
