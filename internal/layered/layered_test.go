package layered

import (
	"math/rand"
	"testing"

	"treesched/internal/graph"
	"treesched/internal/instance"
	"treesched/internal/treedecomp"
)

// randomTreeProblem builds a random multi-tree unit-height problem.
func randomTreeProblem(rng *rand.Rand, n, r, m int) *instance.Problem {
	p := &instance.Problem{Kind: instance.KindTree, NumVertices: n}
	for q := 0; q < r; q++ {
		p.Trees = append(p.Trees, graph.RandomTree(n, rng))
	}
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		for v == u {
			v = rng.Intn(n)
		}
		var access []int
		for q := 0; q < r; q++ {
			if rng.Intn(2) == 0 {
				access = append(access, q)
			}
		}
		if len(access) == 0 {
			access = []int{rng.Intn(r)}
		}
		p.Demands = append(p.Demands, instance.Demand{
			ID: i, U: u, V: v, Profit: 1 + rng.Float64()*9, Height: 1, Access: access,
		})
	}
	return p
}

func randomLineProblem(rng *rand.Rand, slots, r, m int) *instance.Problem {
	p := &instance.Problem{Kind: instance.KindLine, NumSlots: slots, NumResources: r}
	for i := 0; i < m; i++ {
		rt := rng.Intn(slots - 1)
		dl := rt + rng.Intn(slots-rt)
		rho := 1 + rng.Intn(dl-rt+1)
		var access []int
		for q := 0; q < r; q++ {
			if rng.Intn(2) == 0 {
				access = append(access, q)
			}
		}
		if len(access) == 0 {
			access = []int{rng.Intn(r)}
		}
		p.Demands = append(p.Demands, instance.Demand{
			ID: i, Release: rt, Deadline: dl, ProcTime: rho,
			Profit: 1 + rng.Float64()*9, Height: 1, Access: access,
		})
	}
	return p
}

func TestTreeLayeringPropertyIdeal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		p := randomTreeProblem(rng, 4+rng.Intn(40), 1+rng.Intn(3), 2+rng.Intn(25))
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		insts := p.Expand()
		var decomps []*treedecomp.Decomposition
		for _, tr := range p.Trees {
			decomps = append(decomps, treedecomp.Ideal(tr))
		}
		a, err := ForTrees(p, insts, decomps)
		if err != nil {
			t.Fatal(err)
		}
		if a.Delta > 6 {
			t.Fatalf("trial %d: ∆=%d > 6 with ideal decomposition", trial, a.Delta)
		}
		if err := Verify(p, insts, a); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestTreeLayeringPropertyAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, kind := range []treedecomp.Kind{treedecomp.KindRootFixing, treedecomp.KindBalancing, treedecomp.KindIdeal} {
		for trial := 0; trial < 6; trial++ {
			p := randomTreeProblem(rng, 4+rng.Intn(30), 1+rng.Intn(2), 2+rng.Intn(20))
			insts := p.Expand()
			var decomps []*treedecomp.Decomposition
			for _, tr := range p.Trees {
				decomps = append(decomps, treedecomp.Build(tr, kind))
			}
			a, err := ForTrees(p, insts, decomps)
			if err != nil {
				t.Fatal(err)
			}
			// Lemma 4.2 bound: ∆ ≤ 2(θ+1).
			theta := 0
			for _, d := range decomps {
				if d.PivotSize() > theta {
					theta = d.PivotSize()
				}
			}
			if a.Delta > 2*(theta+1) {
				t.Fatalf("%v: ∆=%d > 2(θ+1)=%d", kind, a.Delta, 2*(theta+1))
			}
			if err := Verify(p, insts, a); err != nil {
				t.Fatalf("%v trial %d: %v", kind, trial, err)
			}
		}
	}
}

func TestLineLayeringProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		p := randomLineProblem(rng, 8+rng.Intn(50), 1+rng.Intn(3), 2+rng.Intn(15))
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		insts := p.Expand()
		a, err := ForLines(p, insts)
		if err != nil {
			t.Fatal(err)
		}
		if a.Delta > 3 {
			t.Fatalf("trial %d: line ∆=%d > 3", trial, a.Delta)
		}
		if err := Verify(p, insts, a); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestLineGroupsDoubleByLength(t *testing.T) {
	p := &instance.Problem{Kind: instance.KindLine, NumSlots: 64, NumResources: 1}
	lengths := []int{1, 1, 2, 3, 4, 7, 8, 16, 33}
	for i, l := range lengths {
		p.Demands = append(p.Demands, instance.Demand{
			ID: i, Release: 0, Deadline: l - 1, ProcTime: l, Profit: 1, Height: 1, Access: []int{0},
		})
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	insts := p.Expand()
	a, err := ForLines(p, insts)
	if err != nil {
		t.Fatal(err)
	}
	wantGroups := []int32{1, 1, 2, 2, 3, 3, 4, 5, 6}
	for i, want := range wantGroups {
		if a.Group[i] != want {
			t.Fatalf("length %d: group %d want %d", lengths[i], a.Group[i], want)
		}
	}
}

func TestKindMismatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tp := randomTreeProblem(rng, 10, 1, 3)
	lp := randomLineProblem(rng, 10, 1, 3)
	if _, err := ForLines(tp, tp.Expand()); err == nil {
		t.Fatal("ForLines accepted tree problem")
	}
	if _, err := ForTrees(lp, lp.Expand(), nil); err == nil {
		t.Fatal("ForTrees accepted line problem")
	}
	if _, err := ForTrees(tp, tp.Expand(), nil); err == nil {
		t.Fatal("ForTrees accepted missing decompositions")
	}
}

func TestSingleSlotInstancesCriticalSet(t *testing.T) {
	p := &instance.Problem{Kind: instance.KindLine, NumSlots: 4, NumResources: 1,
		Demands: []instance.Demand{
			{ID: 0, Release: 1, Deadline: 1, ProcTime: 1, Profit: 1, Height: 1, Access: []int{0}},
			{ID: 1, Release: 0, Deadline: 3, ProcTime: 2, Profit: 1, Height: 1, Access: []int{0}},
		}}
	insts := p.Expand()
	a, err := ForLines(p, insts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pi[0]) != 1 {
		t.Fatalf("length-1 instance should have |π|=1, got %v", a.Pi[0])
	}
	if len(a.Pi[1]) != 2 {
		t.Fatalf("length-2 instance should have |π|=2 (start=mid), got %v", a.Pi[1])
	}
}
